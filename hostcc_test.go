package hostcc

import "testing"

// TestFacadeSmoke exercises the public API end to end: build, run,
// and check the headline behaviour through the facade only.
func TestFacadeSmoke(t *testing.T) {
	opts := DefaultOptions()
	opts.Degree = 3
	opts.HostCC = true
	opts.MinRTO = 5 * msTime
	opts.Warmup = 25 * msTime
	opts.Measure = 8 * msTime
	m := Run(opts)
	if m.ThroughputGbps < 65 || m.ThroughputGbps > 90 {
		t.Fatalf("facade run: throughput %.1f, want near B_T=80", m.ThroughputGbps)
	}
	if m.MarkedPct == 0 {
		t.Fatal("facade run: hostCC inactive")
	}
}

func TestFacadeCustomCC(t *testing.T) {
	opts := DefaultOptions()
	opts.CC = Reno()
	opts.MinRTO = 5 * msTime
	opts.Warmup = 15 * msTime
	opts.Measure = 6 * msTime
	m := Run(opts)
	if m.ThroughputGbps < 80 {
		t.Fatalf("Reno uncongested: %.1f Gbps", m.ThroughputGbps)
	}
}

func TestFacadeTestbedAccess(t *testing.T) {
	opts := DefaultOptions()
	opts.Warmup = 2 * msTime
	opts.Measure = 2 * msTime
	tb := NewTestbed(opts)
	if tb.Receiver == nil || tb.HCC == nil {
		t.Fatal("testbed incomplete via facade")
	}
	tb.StartNetAppT()
	m := tb.RunWindow()
	if m.WindowMicros <= 0 {
		t.Fatal("no measurement window")
	}
	if DCTCP == nil || Cubic == nil || DelayCC(1000) == nil {
		t.Fatal("cc factories missing")
	}
	if Gbps(80) <= 0 {
		t.Fatal("rate helper broken")
	}
}

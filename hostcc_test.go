package hostcc

import (
	"testing"
	"time"
)

// TestFacadeSmoke exercises the public API end to end: build, run,
// and check the headline behaviour through the facade only.
func TestFacadeSmoke(t *testing.T) {
	x, err := New(
		WithHostCongestion(3),
		WithHostCC(),
		WithMinRTO(5*time.Millisecond),
		WithWarmup(25*time.Millisecond),
		WithMeasure(8*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	m := x.Run()
	if m.ThroughputGbps < 65 || m.ThroughputGbps > 90 {
		t.Fatalf("facade run: throughput %.1f, want near B_T=80", m.ThroughputGbps)
	}
	if m.MarkedPct == 0 {
		t.Fatal("facade run: hostCC inactive")
	}
}

func TestFacadeCustomCC(t *testing.T) {
	x, err := New(
		WithScheme("reno"),
		WithMinRTO(5*time.Millisecond),
		WithWarmup(15*time.Millisecond),
		WithMeasure(6*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if m := x.Run(); m.ThroughputGbps < 80 {
		t.Fatalf("Reno uncongested: %.1f Gbps", m.ThroughputGbps)
	}
}

func TestFacadeTestbedAccess(t *testing.T) {
	x, err := New(WithWarmup(2*time.Millisecond), WithMeasure(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	tb := x.Testbed()
	if tb.Receiver == nil || tb.HCC == nil {
		t.Fatal("testbed incomplete via facade")
	}
	tb.StartNetAppT()
	m := tb.RunWindow()
	if m.WindowMicros <= 0 {
		t.Fatal("no measurement window")
	}
	if CCDCTCP.String() != "dctcp" || CCCubic.String() != "cubic" || CCDelay(time.Microsecond).String() != "delay" {
		t.Fatal("cc selectors missing")
	}
	if Gbps(80) <= 0 {
		t.Fatal("rate helper broken")
	}
}

// Package hostcc is a simulation-backed reproduction of "Host Congestion
// Control" (Agarwal, Krishnamurthy, Agarwal — ACM SIGCOMM 2023).
//
// hostCC is a congestion control architecture that handles congestion
// inside the host — in the processor, memory and peripheral interconnects
// between the NIC and CPU/memory — in addition to classical network-fabric
// congestion. This package is the public facade over a full discrete-event
// model of that system:
//
//   - the host network datapath of the paper's Figure 1 (NIC buffer, PCIe
//     credit-based flow control, IIO buffer, DDIO cache, memory
//     controller),
//   - a network fabric (links + ECN-marking switch),
//   - a Linux-like transport (DCTCP/Reno/CUBIC/delay-based congestion
//     control, SACK, RTO, TLP, pacing), and
//   - the hostCC module itself: sub-µs host congestion signals read from
//     IIO hardware counters, a sub-RTT host-local response driving Intel
//     MBA throttle levels, and RTT-granularity ECN echo to the network
//     congestion control protocol.
//
// # Quick start
//
//	x, err := hostcc.New(
//	        hostcc.WithHostCongestion(3), // 3x host congestion (24 MApp cores)
//	        hostcc.WithHostCC(),          // enable the hostCC module
//	)
//	if err != nil {
//	        log.Fatal(err)
//	}
//	res := x.Run()
//	fmt.Printf("throughput %.1f Gbps, drops %.4f%%\n",
//	        res.ThroughputGbps, res.DropRatePct)
//
// Add hostcc.WithTelemetry() and write res.Timeline as a Chrome trace to
// visualize per-hop packet lifecycles and the hostCC decision audit in
// Perfetto (see api.go and README "Visualizing a run").
//
// Congestion control protocols live in a registry (Schemes, SchemeByName)
// and are selected by name with WithScheme; the harness in eval.go (Eval)
// compares every registered scheme across topologies, workloads and
// hostCC arms in one replay-verified matrix.
//
// Every figure of the paper's evaluation has a runner (RunFigure2 …
// RunFigure19); cmd/hostcc-bench prints their rows and the benchmarks in
// bench_test.go regenerate them under `go test -bench`.
package hostcc

import (
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Re-exported experiment configuration and results.
type (
	// Scale selects experiment fidelity (Quick / Default / Paper).
	Scale = testbed.Scale
	// Testbed is a fully constructed experiment (for advanced use:
	// attaching custom apps, sampling mid-run).
	Testbed = testbed.Testbed

	// Row types of the per-figure runners.
	CongestionRow    = testbed.CongestionRow
	MTUFlowRow       = testbed.MTUFlowRow
	LatencyRow       = testbed.LatencyRow
	SignalLatencyCDF = testbed.SignalLatencyCDF
	Trace            = testbed.Trace
	MBARow           = testbed.MBARow
	IncastRow        = testbed.IncastRow
	SensitivityRow   = testbed.SensitivityRow
	AblationRow      = testbed.AblationRow
	IOMMURow         = testbed.IOMMURow

	// Mode selects hostCC's active responses (ablations).
	Mode = core.Mode
)

// hostCC response modes (Figure 18 ablation).
const (
	ModeFull      = core.ModeFull
	ModeEchoOnly  = core.ModeEchoOnly
	ModeLocalOnly = core.ModeLocalOnly
	ModeOff       = core.ModeOff
)

// Experiment scales.
var (
	ScaleQuick   = testbed.ScaleQuick
	ScaleDefault = testbed.ScaleDefault
	ScalePaper   = testbed.ScalePaper
)

// Gbps converts gigabits per second into the rate type used by
// WithTargetBandwidth and the study configs.
func Gbps(g float64) sim.Rate { return sim.Gbps(g) }

// Figure runners: each regenerates the rows/series of one evaluation
// figure. See DESIGN.md for the experiment index.
var (
	RunFigure2  = testbed.RunFigure2
	RunFigure3  = testbed.RunFigure3
	RunFigure4  = testbed.RunFigure4
	RunFigure7  = testbed.RunFigure7
	RunFigure8  = testbed.RunFigure8
	RunFigure9  = testbed.RunFigure9
	RunFigure10 = testbed.RunFigure10
	RunFigure11 = testbed.RunFigure11
	RunFigure12 = testbed.RunFigure12
	RunFigure13 = testbed.RunFigure13
	RunFigure14 = testbed.RunFigure14
	RunFigure15 = testbed.RunFigure15
	RunFigure16 = testbed.RunFigure16
	RunFigure17 = testbed.RunFigure17
	RunFigure18 = testbed.RunFigure18
	RunFigure19 = testbed.RunFigure19
)

// RunIOMMUStudy is the §6 extension experiment: IOMMU-induced host
// congestion degrades throughput while the IIO occupancy signal stays
// low (hostCC's blind spot); the IOTLB miss rate identifies it instead.
var RunIOMMUStudy = testbed.RunIOMMUStudy

// RunFutureMBAStudy is the §6 "future hardware" experiment: hostCC under
// today's coarse 22 µs MBA versus a hypothetical fine-grained 1 µs
// mechanism.
var RunFutureMBAStudy = testbed.RunFutureMBAStudy

// FutureMBARow is one row of the future-hardware study.
type FutureMBARow = testbed.FutureMBARow

// Fault injection and chaos testing (see internal/faults and DESIGN.md
// "Fault model & graceful degradation").
type (
	// FaultPlan is a deterministic fault-injection scenario: a set of
	// injections scheduled on the simulation clock.
	FaultPlan = faults.Plan
	// FaultInjection is one scheduled fault (one-shot, periodic, or
	// probabilistic).
	FaultInjection = faults.Injection
	// FaultKind selects the hardware seam a fault targets.
	FaultKind = faults.Kind
	// ChaosConfig parameterizes one chaos run.
	ChaosConfig = testbed.ChaosConfig
	// ChaosResult reports baseline/fault/recovery goodput and failsafe
	// activity for one chaos run.
	ChaosResult = testbed.ChaosResult
	// WatchdogConfig parameterizes hostCC's failsafe (WithWatchdog).
	WatchdogConfig = core.WatchdogConfig
)

// Fault plan constructors.
var (
	FaultOneShot       = faults.OneShot
	FaultPeriodic      = faults.Periodic
	FaultProbabilistic = faults.Probabilistic
	BuiltinFaultPlan   = faults.Builtin
)

// Fault kinds (the hardware seam each fault targets).
const (
	FaultMSRStale   = faults.MSRStale
	FaultMSRFail    = faults.MSRFail
	FaultMSRLatency = faults.MSRLatency
	FaultMBADrop    = faults.MBADrop
	FaultMBADelay   = faults.MBADelay
	FaultNICDrop    = faults.NICDrop
	FaultLinkFlap   = faults.LinkFlap
	FaultPCIeStall  = faults.PCIeStall
	FaultMAppStall  = faults.MAppStall
	FaultMAppBurst  = faults.MAppBurst
)

// Millisecond/Microsecond re-exports for building fault plans without
// importing internal packages.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// DefaultWatchdogConfig returns the default failsafe parameters for
// WithWatchdog.
func DefaultWatchdogConfig() WatchdogConfig { return core.DefaultWatchdogConfig() }

// RunChaos executes one fault scenario against a loaded testbed with the
// watchdog armed and invariant checking on, returning recovery metrics.
// The run is deterministic from the config (seed included).
func RunChaos(cfg ChaosConfig) (ChaosResult, error) { return testbed.RunChaos(cfg) }

// ChaosScenarios lists the built-in fault scenario names accepted by
// ChaosConfig.Scenario and `hostcc-bench -chaos`.
func ChaosScenarios() []string { return testbed.ChaosScenarios() }

// Checkpoint/replay and liveness sentinel (see internal/snapshot and
// DESIGN.md "Deterministic snapshots & replay").
type (
	// ReplayReport is the outcome of a verified replay from a checkpoint
	// file (ResumeChaos).
	ReplayReport = testbed.ReplayReport
	// StallReport is the liveness sentinel's diagnostic for one detected
	// stall, including the classified wait-for graph.
	StallReport = sim.StallReport
	// SentinelPolicy selects the sentinel's recovery action.
	SentinelPolicy = sim.SentinelPolicy
)

// Sentinel recovery policies.
const (
	// SentinelAbort stops the run and writes a diagnostic snapshot.
	SentinelAbort = sim.SentinelAbort
	// SentinelEscape force-reclaims sequestered PCIe credits and keeps
	// running (the PFC-watchdog analogue).
	SentinelEscape = sim.SentinelEscape
)

// ResumeChaos resumes a chaos run from a checkpoint file written via
// ChaosConfig.CheckpointPath (or SnapshotOnStall), verifying the replay
// against the recorded digest timeline.
func ResumeChaos(path string) (ReplayReport, error) { return testbed.ResumeChaos(path) }

// Scale-out topology runs (see internal/fabric and DESIGN.md
// "Topology").
type (
	// ScaleOutConfig parameterizes a scale-out run: many senders fanning
	// flows across several hostCC-equipped receivers through a
	// multi-switch fabric.
	ScaleOutConfig = testbed.ScaleOutConfig
	// ScaleOutResult reports aggregate goodput, in-fabric congestion and
	// the determinism proof of one scale-out run.
	ScaleOutResult = testbed.ScaleOutResult
)

// RunScaleOut executes one scale-out run (twice under VerifyReplay,
// comparing the digest timelines frame by frame). The run is a
// deterministic function of its config.
func RunScaleOut(cfg ScaleOutConfig) (ScaleOutResult, error) { return testbed.RunScaleOut(cfg) }

// Lossless-fabric study (see DESIGN.md "Lossless fabrics").
type (
	// LosslessStudyConfig parameterizes the PFC + DCQCN
	// congestion-spreading study.
	LosslessStudyConfig = testbed.LosslessStudyConfig
	// LosslessStudyResult pairs the hostCC-off and hostCC-on arms.
	LosslessStudyResult = testbed.LosslessStudyResult
)

// RunLosslessStudy runs the identical congestion-spreading load on a
// PFC + DCQCN leaf–spine fabric twice — hostCC off, then on — and
// reports per-arm pause-storm metrics and victim-flow tail latency.
func RunLosslessStudy(cfg LosslessStudyConfig) (LosslessStudyResult, error) {
	return testbed.RunLosslessStudy(cfg)
}

// The examples are a separate module so they exercise only repro's
// public API — CI builds them as an external consumer would, which makes
// any accidental breaking change or internal-type leak a build failure.
module repro-examples

go 1.22

require repro v0.0.0

replace repro => ../

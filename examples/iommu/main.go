// IOMMU: the host congestion hostCC cannot see (§2.1, §6).
//
// The paper notes that memory-protection hardware (the IOMMU) is its own
// host congestion point, and that hostCC's IIO occupancy signal does not
// capture it: DMA writes stall in address translation *before* they enter
// the IIO buffer, so PCIe goes underutilized and packets drop at the NIC
// while occupancy stays low. This example reproduces that blind spot and
// shows the candidate replacement signal — the IOTLB miss rate.
//
//	go run ./examples/iommu
package main

import (
	"fmt"

	hostcc "repro"
)

func main() {
	fmt.Println("IOMMU-induced host congestion (no MApp; translation is the bottleneck)")
	fmt.Println()
	fmt.Printf("%-12s %12s %10s %10s %12s\n",
		"config", "tput(Gbps)", "IIO occ", "missRate", "nic drops")

	for _, r := range hostcc.RunIOMMUStudy(hostcc.ScaleQuick) {
		label := fmt.Sprintf("iotlb=%d", r.IOTLBEntries)
		if r.IOTLBEntries == 0 {
			label = "iommu off"
		}
		fmt.Printf("%-12s %12.1f %10.1f %10.2f %11.4f%%\n",
			label, r.M.ThroughputGbps, r.M.AvgIS, r.MissRate, r.M.DropRatePct)
	}

	fmt.Println()
	fmt.Println("With a thrashing IOTLB, throughput collapses while IIO occupancy")
	fmt.Println("stays BELOW the I_T threshold — hostCC's occupancy signal is blind")
	fmt.Println("to translation-induced congestion; the miss rate identifies it.")
}

// Custom congestion control: hostCC requires no modification to the
// network congestion control protocol — it just marks ECN like a switch
// would (§4.3). This example runs the same host-congestion scenario under
// DCTCP, Reno, CUBIC and a Swift-like delay-based controller, with and
// without hostCC.
//
// Reno and CUBIC are loss-based: they ignore the ECN echo, so hostCC's
// benefit for them comes from the host-local response alone; DCTCP gets
// the full architecture.
//
//	go run ./examples/custom-cc
package main

import (
	"fmt"

	hostcc "repro"
	"repro/internal/transport"
)

func main() {
	ccs := []struct {
		name string
		f    transport.CCFactory
	}{
		{"dctcp", hostcc.DCTCP()},
		{"reno", hostcc.Reno()},
		{"cubic", hostcc.Cubic()},
		{"delay (Swift-like)", hostcc.DelayCC(150_000)}, // 150us target
	}

	fmt.Println("3x host congestion under different congestion control protocols")
	fmt.Println()
	fmt.Printf("%-20s %14s %14s\n", "protocol", "baseline Gbps", "hostCC Gbps")
	for _, cc := range ccs {
		var res [2]hostcc.Metrics
		for i, enable := range []bool{false, true} {
			opts := hostcc.DefaultOptions()
			opts.Degree = 3
			opts.CC = cc.f
			opts.HostCC = enable
			opts.MinRTO = 5e6
			res[i] = hostcc.Run(opts)
		}
		fmt.Printf("%-20s %14.1f %14.1f\n", cc.name, res[0].ThroughputGbps, res[1].ThroughputGbps)
	}

	fmt.Println()
	fmt.Println("hostCC composes with every protocol; ECN-capable ones (DCTCP)")
	fmt.Println("additionally converge to the target without drops.")
}

// Custom congestion control: hostCC requires no modification to the
// network congestion control protocol — it just marks ECN like a switch
// would (§4.3). This example runs the same host-congestion scenario under
// DCTCP, Reno, CUBIC and a Swift-like delay-based controller, with and
// without hostCC.
//
// Reno and CUBIC are loss-based: they ignore the ECN echo, so hostCC's
// benefit for them comes from the host-local response alone; DCTCP gets
// the full architecture.
//
//	go run ./examples/custom-cc
package main

import (
	"fmt"
	"log"
	"time"

	hostcc "repro"
)

func main() {
	ccs := []struct {
		name string
		cc   hostcc.CC
	}{
		{"dctcp", hostcc.CCDCTCP},
		{"reno", hostcc.CCReno},
		{"cubic", hostcc.CCCubic},
		{"delay (Swift-like)", hostcc.CCDelay(150 * time.Microsecond)},
	}

	fmt.Println("3x host congestion under different congestion control protocols")
	fmt.Println()
	fmt.Printf("%-20s %14s %14s\n", "protocol", "baseline Gbps", "hostCC Gbps")
	for _, cc := range ccs {
		var res [2]hostcc.Metrics
		for i, enable := range []bool{false, true} {
			opts := []hostcc.Option{
				hostcc.WithHostCongestion(3),
				hostcc.WithCC(cc.cc),
				hostcc.WithMinRTO(5 * time.Millisecond),
			}
			if enable {
				opts = append(opts, hostcc.WithHostCC())
			}
			x, err := hostcc.New(opts...)
			if err != nil {
				log.Fatal(err)
			}
			res[i] = x.Run().Metrics
		}
		fmt.Printf("%-20s %14.1f %14.1f\n", cc.name, res[0].ThroughputGbps, res[1].ThroughputGbps)
	}

	fmt.Println()
	fmt.Println("hostCC composes with every protocol; ECN-capable ones (DCTCP)")
	fmt.Println("additionally converge to the target without drops.")
}

// Custom congestion control: hostCC requires no modification to the
// network congestion control protocol — it just marks ECN like a switch
// would (§4.3). This example runs the same host-congestion scenario
// under every scheme in the registry, with and without hostCC.
//
// Reno and CUBIC are loss-based: they ignore the ECN echo, so hostCC's
// benefit for them comes from the host-local response alone; DCTCP gets
// the full architecture; DCQCN brings its own PFC lossless fabric
// (WithScheme configures it automatically); BBR probes delivery rate
// and HPCC steers on in-network telemetry that host congestion never
// touches.
//
//	go run ./examples/custom-cc
package main

import (
	"fmt"
	"log"
	"time"

	hostcc "repro"
)

func main() {
	fmt.Println("3x host congestion under every registered congestion control scheme")
	fmt.Println()
	fmt.Printf("%-10s %14s %14s   %s\n", "scheme", "baseline Gbps", "hostCC Gbps", "summary")
	for _, scheme := range hostcc.Schemes() {
		var res [2]hostcc.Metrics
		for i, enable := range []bool{false, true} {
			opts := []hostcc.Option{
				hostcc.WithHostCongestion(3),
				hostcc.WithScheme(scheme.Name()),
				hostcc.WithMinRTO(5 * time.Millisecond),
			}
			if enable {
				opts = append(opts, hostcc.WithHostCC())
			}
			x, err := hostcc.New(opts...)
			if err != nil {
				log.Fatal(err)
			}
			res[i] = x.Run().Metrics
		}
		fmt.Printf("%-10s %14.1f %14.1f   %s\n",
			scheme.Name(), res[0].ThroughputGbps, res[1].ThroughputGbps, scheme.Summary())
	}

	fmt.Println()
	fmt.Println("hostCC composes with every protocol; ECN-capable ones (DCTCP)")
	fmt.Println("additionally converge to the target without drops.")
}

// Quickstart: reproduce the paper's headline result in ~20 lines.
//
// A receiver whose MApp hammers the memory controller (3x host
// congestion) degrades DCTCP badly; enabling hostCC restores throughput
// to the target bandwidth and all but eliminates drops at the host.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	hostcc "repro"
)

func main() {
	fmt.Println("hostCC quickstart: 4 DCTCP flows into a host with 3x host congestion")
	fmt.Println()

	for _, enable := range []bool{false, true} {
		opts := []hostcc.Option{
			hostcc.WithHostCongestion(3), // 24 MApp cores generating CPU-to-memory traffic
			hostcc.WithMinRTO(5 * time.Millisecond), // settle the startup transient quickly
		}
		if enable {
			opts = append(opts, hostcc.WithHostCC()) // the paper's contribution, on/off
		}
		x, err := hostcc.New(opts...)
		if err != nil {
			log.Fatal(err)
		}
		m := x.Run()

		name := "DCTCP          "
		if enable {
			name = "DCTCP + hostCC "
		}
		fmt.Printf("%s throughput %5.1f Gbps | drops %8.4f%% | IIO occupancy %5.1f | MApp %4.1f GBps\n",
			name, m.ThroughputGbps, m.DropRatePct, m.AvgIS, m.MAppGBps)
	}

	fmt.Println()
	fmt.Println("hostCC holds network throughput at the 80 Gbps target and keeps")
	fmt.Println("IIO occupancy below the congestion threshold, so the NIC buffer")
	fmt.Println("never overflows (compare Figures 2 and 10 of the paper).")
}

// RPC latency: the tail-latency story of Figures 4 and 12.
//
// A latency-sensitive RPC application shares the receiver with bulk flows
// and a memory-hungry MApp. Host congestion drops packets at the NIC, and
// a dropped single-packet RPC can only recover via the 200 ms minimum
// retransmission timeout — inflating P99.9 by three orders of magnitude.
// hostCC eliminates the drops and with them the timeout tail.
//
//	go run ./examples/rpc-latency
package main

import (
	"fmt"

	hostcc "repro"
)

func main() {
	fmt.Println("closed-loop 2KB RPCs alongside NetApp-T and a 3x MApp")
	fmt.Println("(RPC recovery uses the real Linux 200ms min RTO)")
	fmt.Println()

	scale := hostcc.ScaleQuick
	scale.RPCSizes = []int{2048}

	rows := hostcc.RunFigure12(scale)
	fmt.Printf("%-20s %10s %10s %12s %10s\n", "scenario", "p50(us)", "p99(us)", "p99.9(us)", "timeouts")
	for _, r := range rows {
		fmt.Printf("%-20s %10.1f %10.1f %12.1f %10d\n",
			r.Scenario, r.P50us, r.P99us, r.P999us, r.Timeouts)
	}

	fmt.Println()
	fmt.Println("Under host congestion the P99.9 approaches the 200 ms RTO;")
	fmt.Println("hostCC keeps the whole distribution near the uncongested case.")
}

// Sensitivity: hostCC has exactly two parameters — the target network
// bandwidth B_T and the IIO occupancy threshold I_T (§5.3). This example
// sweeps both at 3x host congestion (Figures 16 and 17).
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"
	"time"

	hostcc "repro"
)

func run(opts ...hostcc.Option) hostcc.Metrics {
	base := []hostcc.Option{
		hostcc.WithHostCongestion(3),
		hostcc.WithHostCC(),
		hostcc.WithMinRTO(5 * time.Millisecond),
	}
	x, err := hostcc.New(append(base, opts...)...)
	if err != nil {
		log.Fatal(err)
	}
	return x.Run().Metrics
}

func main() {
	fmt.Println("B_T sweep (I_T = 70), 3x host congestion:")
	fmt.Printf("%8s %12s %12s %10s %10s\n", "B_T", "tput(Gbps)", "drops", "memNet", "memMApp")
	for _, bt := range []float64{20, 40, 60, 80, 100} {
		m := run(hostcc.WithTargetBandwidth(bt))
		fmt.Printf("%7.0fG %12.1f %11.4f%% %10.2f %10.2f\n",
			bt, m.ThroughputGbps, m.DropRatePct, m.MemUtilNet, m.MemUtilMApp)
	}

	fmt.Println()
	fmt.Println("I_T sweep (B_T = 80G), 3x host congestion:")
	fmt.Printf("%8s %12s %12s %10s %10s\n", "I_T", "tput(Gbps)", "drops", "memNet", "memMApp")
	for _, it := range []float64{70, 75, 80, 85, 90} {
		m := run(hostcc.WithOccupancyThreshold(it))
		fmt.Printf("%8.0f %12.1f %11.4f%% %10.2f %10.2f\n",
			it, m.ThroughputGbps, m.DropRatePct, m.MemUtilNet, m.MemUtilMApp)
	}

	fmt.Println()
	fmt.Println("Lower B_T leaves more memory bandwidth to the MApp; higher I_T")
	fmt.Println("reacts later to congestion, trading drops for MApp bandwidth.")
}

// Incast: network-fabric congestion combined with host congestion
// (the paper's Figure 13 scenario).
//
// Two senders incast a growing number of flows into one receiver. With
// only network congestion, hostCC behaves like plain DCTCP (no overhead);
// when the receiver also suffers host congestion, hostCC keeps throughput
// near the target while the baseline collapses.
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"log"
	"time"

	hostcc "repro"
)

func main() {
	fmt.Println("incast: 2 senders -> 1 receiver, 4..10 concurrent flows")
	fmt.Println()
	fmt.Printf("%-28s %8s %12s %12s\n", "scenario", "flows", "tput(Gbps)", "nic drops")

	for _, degree := range []float64{0, 3} {
		for _, enable := range []bool{false, true} {
			for _, flows := range []int{4, 10} {
				opts := []hostcc.Option{
					hostcc.WithSenders(2),
					hostcc.WithFlows(flows),
					hostcc.WithHostCongestion(degree),
					hostcc.WithMinRTO(5 * time.Millisecond),
				}
				if enable {
					opts = append(opts, hostcc.WithHostCC())
				}
				x, err := hostcc.New(opts...)
				if err != nil {
					log.Fatal(err)
				}
				m := x.Run()

				name := fmt.Sprintf("%gx host cong., hostCC=%v", degree, enable)
				fmt.Printf("%-28s %8d %12.1f %11.4f%%\n",
					name, flows, m.ThroughputGbps, m.DropRatePct)
			}
		}
	}

	fmt.Println()
	fmt.Println("With no host congestion hostCC matches DCTCP (minimal overhead);")
	fmt.Println("with host + network congestion it recovers most of the loss.")
}

// api.go is the core public API: functional options into an Experiment,
// stable Metrics/Timeline result types, and an Observe hook over the
// telemetry registry. The scheme registry lives in scheme.go and the
// evaluation harness in eval.go; hostcc.go re-exports the study runners.
package hostcc

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/transport"
)

// CC selects the network congestion control protocol for WithCC. The zero
// value keeps the default (DCTCP).
type CC struct {
	factory transport.CCFactory
	name    string
}

// String returns the protocol name.
func (c CC) String() string {
	if c.name == "" {
		return "dctcp"
	}
	return c.name
}

// Built-in congestion control protocols.
var (
	// CCDCTCP is DCTCP (the paper's default; gets the full hostCC
	// architecture including the ECN echo).
	CCDCTCP = CC{factory: transport.NewDCTCP(), name: "dctcp"}
	// CCReno is loss-based NewReno (ignores ECN; benefits from the
	// host-local response alone).
	CCReno = CC{factory: transport.NewReno(), name: "reno"}
	// CCCubic is loss-based CUBIC.
	CCCubic = CC{factory: transport.NewCubic(), name: "cubic"}
	// CCDCQCN is DCQCN rate-based congestion control (the protocol PFC
	// fabrics deploy): CNP-driven multiplicative decrease with timer- and
	// byte-counter recovery. Pair with WithLossless — without a PFC
	// fabric no CNPs are generated and the sender never slows.
	CCDCQCN = CC{factory: transport.NewDCQCN(), name: "dcqcn"}
)

// CCDelay returns a Swift-like delay-based congestion control targeting
// the given RTT (the §6 extension; pair with the delay signal).
func CCDelay(target time.Duration) CC {
	return CC{factory: transport.NewDelayCC(sim.Time(target.Nanoseconds())), name: "delay"}
}

// HostCCMode selects which hostCC responses are active (the Figure 18
// ablation axis).
type HostCCMode int

// hostCC modes for WithHostCCMode.
const (
	// HostCCFull runs the host-local MBA response and the ECN echo.
	HostCCFull HostCCMode = iota
	// HostCCEchoOnly only echoes host congestion to the network CC.
	HostCCEchoOnly
	// HostCCLocalOnly only runs the host-local MBA response.
	HostCCLocalOnly
	// HostCCOff disables hostCC (signals are still sampled).
	HostCCOff
)

// Option configures an Experiment (see New).
type Option func(*Experiment)

// WithSeed sets the deterministic simulation seed (default 42).
func WithSeed(seed int64) Option { return func(x *Experiment) { x.cfg.Seed = seed } }

// WithMTU sets the network MTU in bytes (default 4096).
func WithMTU(bytes int) Option { return func(x *Experiment) { x.cfg.MTU = bytes } }

// WithDDIO enables or disables Data Direct I/O at every host (default
// off, the paper's primary configuration).
func WithDDIO(enabled bool) Option { return func(x *Experiment) { x.cfg.DDIO = enabled } }

// WithFlows sets the number of NetApp-T throughput flows (default 4).
func WithFlows(n int) Option { return func(x *Experiment) { x.cfg.Flows = n } }

// WithSenders sets the number of sending hosts (default 1; 2 for incast).
func WithSenders(n int) Option { return func(x *Experiment) { x.cfg.Senders = n } }

// WithReceivers sets the number of receiving hosts (default 1). Every
// receiver runs hostCC and the configured host congestion; NetApp-T
// flows fan in round-robin across receivers.
func WithReceivers(n int) Option { return func(x *Experiment) { x.cfg.Receivers = n } }

// WithLeafSpine replaces the single-switch star with a leaf–spine
// fabric: `leaves` top-of-rack switches fully meshed to `spines` spine
// switches over trunk links with their own queues and ECN marking
// (0, 0 selects the defaults: 2 leaves, 2 spines). Hosts are placed
// round-robin across racks, so most traffic crosses the spine.
func WithLeafSpine(leaves, spines int) Option {
	return func(x *Experiment) { x.cfg.Topology = fabric.LeafSpine(leaves, spines) }
}

// WithDumbbell replaces the single-switch star with the classic
// two-switch dumbbell: receivers on one switch, senders on the other,
// one trunk bottleneck between them.
func WithDumbbell() Option {
	return func(x *Experiment) { x.cfg.Topology = fabric.Dumbbell() }
}

// WithLossless converts the fabric and NICs to PFC lossless operation:
// switch ingresses pause their upstream instead of dropping, NIC rx
// buffers pause the leaf instead of overflowing, and the default
// congestion control becomes DCQCN (override with WithCC). The watchdog
// duration, when positive, force-releases any pause asserted longer
// than that (0 leaves stuck pauses wedged — the storm failure mode).
func WithLossless(watchdog time.Duration) Option {
	return func(x *Experiment) {
		x.cfg.Lossless = true
		x.cfg.PauseWatchdog = sim.Time(watchdog.Nanoseconds())
	}
}

// WithHostCongestion sets the degree of host congestion: MApp units
// generating CPU-to-memory traffic at the receiver (default 0; the
// paper's headline scenario uses 3).
func WithHostCongestion(degree float64) Option {
	return func(x *Experiment) { x.cfg.Degree = degree }
}

// WithCC selects the network congestion control protocol.
func WithCC(cc CC) Option {
	return func(x *Experiment) { x.cfg.CC = cc.factory }
}

// WithHostCC enables the hostCC module in full mode.
func WithHostCC() Option {
	return func(x *Experiment) {
		x.cfg.HostCC = true
		x.cfg.Mode = core.ModeFull
	}
}

// WithHostCCMode enables the hostCC module in a specific response mode
// (ablations); WithHostCCMode(HostCCOff) is the same as the default.
func WithHostCCMode(m HostCCMode) Option {
	return func(x *Experiment) {
		x.cfg.HostCC = m != HostCCOff
		x.cfg.Mode = core.Mode(m)
	}
}

// WithLinkRate sets every fabric link's rate and each NIC's line rate, in
// gigabits per second (default 100).
func WithLinkRate(gbps float64) Option {
	return func(x *Experiment) { x.cfg.LinkRate = sim.Gbps(gbps) }
}

// WithTargetBandwidth sets hostCC's target network bandwidth B_T in
// gigabits per second (default 80).
func WithTargetBandwidth(gbps float64) Option {
	return func(x *Experiment) { x.cfg.BT = sim.Gbps(gbps) }
}

// WithOccupancyThreshold sets hostCC's IIO occupancy threshold I_T in
// cache lines (default 70, or 50 with DDIO).
func WithOccupancyThreshold(lines float64) Option {
	return func(x *Experiment) { x.cfg.IT = lines }
}

// WithSampleInterval sets hostCC's signal sampling period (default 2µs).
func WithSampleInterval(d time.Duration) Option {
	return func(x *Experiment) { x.cfg.SampleInterval = sim.Time(d.Nanoseconds()) }
}

// WithFixedLevel disables the dynamic response and hard-codes the MBA
// throttle level (the Figure 9 calibration experiment).
func WithFixedLevel(level int) Option {
	return func(x *Experiment) { x.cfg.FixedLevel = level }
}

// WithMinRTO sets the transport's minimum retransmission timeout
// (default 200ms, the Linux default; throughput experiments lower it so
// the startup transient settles within an affordable warmup).
func WithMinRTO(d time.Duration) Option {
	return func(x *Experiment) { x.cfg.MinRTO = sim.Time(d.Nanoseconds()) }
}

// WithWarmup sets the simulated warmup before the measurement window
// (default 4ms).
func WithWarmup(d time.Duration) Option {
	return func(x *Experiment) { x.cfg.Warmup = sim.Time(d.Nanoseconds()) }
}

// WithMeasure sets the simulated measurement window (default 16ms).
func WithMeasure(d time.Duration) Option {
	return func(x *Experiment) { x.cfg.Measure = sim.Time(d.Nanoseconds()) }
}

// WithWireLoss injects independent random packet loss on every fabric
// link with the given probability (failure injection; default 0).
func WithWireLoss(prob float64) Option {
	return func(x *Experiment) { x.cfg.WireLossProb = prob }
}

// WithFaultPlan arms a deterministic fault-injection plan against the
// receiver's hardware seams (build plans with FaultOneShot, FaultPeriodic,
// FaultProbabilistic and the Fault* kinds).
func WithFaultPlan(p *FaultPlan) Option {
	return func(x *Experiment) { x.cfg.Faults = p }
}

// WithWatchdog arms hostCC's signal/actuation failsafe. The zero
// WatchdogConfig selects all defaults.
func WithWatchdog(cfg WatchdogConfig) Option {
	return func(x *Experiment) { x.cfg.Watchdog = &cfg }
}

// WithInvariants runs the datapath invariant checker during the run
// (packet conservation, PCIe credit accounting, MBA level bounds);
// violations panic.
func WithInvariants() Option {
	return func(x *Experiment) { x.cfg.Invariants = true }
}

// WithTelemetry enables the event tracer: per-hop packet-lifecycle spans
// and counter tracks, returned as Result.Timeline. Telemetry reads
// simulation state and never perturbs event order — a run produces
// bit-identical results with telemetry on or off. Instrument registration
// (Observe, Instruments) is always available; only span/track recording
// is gated on this option.
func WithTelemetry() Option {
	return func(x *Experiment) { x.cfg.Telemetry = true }
}

// Experiment is one configured experiment: a receiver under optional host
// congestion, one or more senders, a switch, and the hostCC module.
// Construct with New, then Run.
type Experiment struct {
	cfg testbed.Config
	tb  *testbed.Testbed
	err error // first option error (e.g. unknown scheme name)

	observers []struct {
		name string
		fn   func(Sample)
	}
}

// New builds an experiment from functional options, validating the
// resulting configuration.
//
//	x, err := hostcc.New(hostcc.WithHostCongestion(3), hostcc.WithHostCC())
//	if err != nil { ... }
//	res := x.Run()
func New(opts ...Option) (*Experiment, error) {
	x := &Experiment{cfg: testbed.DefaultConfig()}
	for _, opt := range opts {
		opt(x)
	}
	if x.err != nil {
		return nil, x.err
	}
	if err := x.cfg.Validate(); err != nil {
		return nil, err
	}
	x.tb = testbed.New(x.cfg)
	return x, nil
}

// Testbed exposes the fully constructed experiment for advanced use:
// attaching custom apps or packet hooks, sampling mid-run, driving the
// engine clock directly. The Experiment's own Run must not be combined
// with manual testbed driving.
func (x *Experiment) Testbed() *Testbed { return x.tb }

// Instruments returns the sorted names of every registered telemetry
// instrument (counters, gauges, histograms) across all devices.
func (x *Experiment) Instruments() []string { return x.tb.Reg.Names() }

// Sample is one instrument reading, delivered to Observe callbacks.
type Sample struct {
	Name  string  // instrument name, e.g. "receiver/iio/occupancy"
	Kind  string  // "counter", "gauge", "histogram" or "series"
	Unit  string  // e.g. "bytes", "lines", "pkts"
	Help  string  // one-line description
	Value float64 // current value (histograms report their sample count)
}

// Observe registers fn to receive the named instrument's final reading
// when Run completes. It returns an error if no such instrument is
// registered (see Instruments for the catalogue).
func (x *Experiment) Observe(instrument string, fn func(Sample)) error {
	if _, ok := x.tb.Reg.Get(instrument); !ok {
		return fmt.Errorf("hostcc: unknown instrument %q", instrument)
	}
	x.observers = append(x.observers, struct {
		name string
		fn   func(Sample)
	}{instrument, fn})
	return nil
}

// Metrics summarizes one measurement window. It is a stable result type:
// field-for-field identical to the internal testbed's metrics.
type Metrics struct {
	ThroughputGbps float64 // NetApp-T goodput
	DropRatePct    float64 // receiver NIC drops / arrivals
	SwitchDropPct  float64 // switch drops / NIC arrivals (incast runs)

	MemUtilNet   float64 // network-side memory bandwidth / theoretical
	MemUtilMApp  float64 // MApp memory bandwidth / theoretical
	MemUtilTotal float64

	MAppGBps     float64 // MApp memory bandwidth
	MAppTputGbps float64 // MApp application throughput

	AvgIS     float64 // window-average IIO occupancy (lines)
	AvgBSGbps float64 // window-average PCIe bandwidth

	MarkedPct    float64 // packets CE-marked by hostCC / NIC arrivals
	ResponseLvl  int     // MBA level at window end
	NetTimeouts  int64   // RTOs across NetApp-T flows
	NetRetx      int64   // retransmissions across NetApp-T flows
	WindowMicros float64
}

// Timeline is the recorded telemetry of one run (nil unless the
// experiment was built WithTelemetry).
type Timeline struct {
	tl *telemetry.Timeline
}

// WriteChromeTrace writes the timeline in Chrome Trace Event Format
// (load the file at https://ui.perfetto.dev or chrome://tracing): one
// thread track per datapath hop with per-packet spans, plus counter
// tracks for IIO occupancy, MBA level, PCIe credits and the rest.
func (t *Timeline) WriteChromeTrace(w io.Writer) error { return t.tl.WriteChromeTrace(w) }

// Spans returns the number of recorded spans.
func (t *Timeline) Spans() int { return len(t.tl.Spans) }

// Tracks returns the number of recorded counter tracks.
func (t *Timeline) Tracks() int { return len(t.tl.Tracks) }

// Dropped returns the number of spans discarded at the recording cap.
func (t *Timeline) Dropped() int64 { return t.tl.Dropped }

// Result is the outcome of Experiment.Run.
type Result struct {
	Metrics
	// Timeline holds the recorded telemetry (nil without WithTelemetry).
	Timeline *Timeline
}

// Run executes the NetApp-T throughput experiment: warmup, then one
// measurement window. Observe callbacks fire after the window closes.
func (x *Experiment) Run() Result {
	x.tb.StartNetAppT()
	tm := x.tb.RunWindow()
	res := Result{Metrics: Metrics(tm)}
	if x.tb.Tr != nil {
		res.Timeline = &Timeline{tl: x.tb.Tr.Timeline()}
	}
	for _, ob := range x.observers {
		inst, _ := x.tb.Reg.Get(ob.name)
		ob.fn(Sample{
			Name:  inst.Name,
			Kind:  inst.Kind.String(),
			Unit:  inst.Unit,
			Help:  inst.Help,
			Value: inst.Value(),
		})
	}
	return res
}

package hostcc

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// quick returns options for a fast smoke-scale run.
func quick(extra ...Option) []Option {
	opts := []Option{
		WithWarmup(500 * time.Microsecond),
		WithMeasure(2 * time.Millisecond),
		WithMinRTO(5 * time.Millisecond),
	}
	return append(opts, extra...)
}

func TestNewValidatesOptions(t *testing.T) {
	if _, err := New(WithFlows(-1)); err == nil {
		t.Fatal("negative flows accepted")
	}
	if _, err := New(WithWireLoss(1.5)); err == nil {
		t.Fatal("loss probability above 1 accepted")
	}
	if _, err := New(quick()...); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
}

func TestFunctionalOptionsRun(t *testing.T) {
	x, err := New(quick(WithHostCongestion(3), WithHostCC())...)
	if err != nil {
		t.Fatal(err)
	}
	res := x.Run()
	if res.ThroughputGbps <= 0 {
		t.Fatalf("no throughput: %+v", res.Metrics)
	}
	if res.Timeline != nil {
		t.Fatal("timeline recorded without WithTelemetry")
	}
}

func TestObserve(t *testing.T) {
	x, err := New(quick()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Observe("no/such/instrument", func(Sample) {}); err == nil {
		t.Fatal("unknown instrument accepted")
	}
	if len(x.Instruments()) == 0 {
		t.Fatal("no instruments registered")
	}
	var got Sample
	if err := x.Observe("receiver/nic/arrivals", func(s Sample) { got = s }); err != nil {
		t.Fatal(err)
	}
	x.Run()
	if got.Name != "receiver/nic/arrivals" || got.Kind != "counter" {
		t.Fatalf("bad sample: %+v", got)
	}
	if got.Value <= 0 {
		t.Fatalf("no arrivals observed: %+v", got)
	}
}

func TestTelemetryTimeline(t *testing.T) {
	x, err := New(quick(WithHostCongestion(3), WithHostCC(), WithTelemetry())...)
	if err != nil {
		t.Fatal(err)
	}
	res := x.Run()
	if res.Timeline == nil {
		t.Fatal("WithTelemetry produced no timeline")
	}
	if res.Timeline.Spans() == 0 || res.Timeline.Tracks() == 0 {
		t.Fatalf("empty timeline: %d spans, %d tracks",
			res.Timeline.Spans(), res.Timeline.Tracks())
	}

	var buf bytes.Buffer
	if err := res.Timeline.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome trace is not valid JSON")
	}
	out := buf.String()
	for _, want := range []string{
		`"nic-queue"`, `"iio-mem"`, `"cpu-rx"`, // per-hop packet spans
		"receiver/iio/occupancy", "receiver/mba/level", // counter tracks
		"hostcc-sample", // decision-audit spans
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
}

// TestTelemetryDoesNotPerturb runs the same experiment with and without
// the tracer and requires bit-identical metrics: telemetry only reads
// simulation state, so it must not change event order.
func TestTelemetryDoesNotPerturb(t *testing.T) {
	run := func(tel bool) Metrics {
		opts := quick(WithHostCongestion(3), WithHostCC(), WithFlows(4))
		if tel {
			opts = append(opts, WithTelemetry())
		}
		x, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		return x.Run().Metrics
	}
	if off, on := run(false), run(true); off != on {
		t.Fatalf("telemetry perturbed the run:\noff: %+v\non:  %+v", off, on)
	}
}

// TestSchemeRegistry pins the public scheme registry: the full name
// set in stable order, resolvable by name, each handing out a working
// CC selector.
func TestSchemeRegistry(t *testing.T) {
	want := []string{"dctcp", "reno", "cubic", "dcqcn", "delay", "bbr", "hpcc"}
	schemes := Schemes()
	if len(schemes) != len(want) {
		t.Fatalf("got %d schemes, want %d", len(schemes), len(want))
	}
	for i, s := range schemes {
		if s.Name() != want[i] {
			t.Fatalf("scheme %d is %q, want %q", i, s.Name(), want[i])
		}
		if s.Summary() == "" {
			t.Fatalf("scheme %q has no summary", s.Name())
		}
		if s.CC().String() != s.Name() {
			t.Fatalf("scheme %q CC selector names itself %q", s.Name(), s.CC().String())
		}
		if s.RequiresLossless() != (s.Name() == "dcqcn") {
			t.Fatalf("scheme %q lossless flag wrong", s.Name())
		}
	}
	if _, err := SchemeByName("bbr"); err != nil {
		t.Fatal(err)
	}
	if _, err := SchemeByName("vegas"); err == nil {
		t.Fatal("unknown scheme resolved")
	}
}

// TestWithScheme: the registry path drives an experiment end to end,
// and an unknown name surfaces as a New error.
func TestWithScheme(t *testing.T) {
	if _, err := New(quick(WithScheme("vegas"))...); err == nil {
		t.Fatal("unknown scheme accepted by New")
	}
	x, err := New(quick(WithScheme("reno"))...)
	if err != nil {
		t.Fatal(err)
	}
	if res := x.Run(); res.ThroughputGbps <= 0 {
		t.Fatalf("no throughput under reno: %+v", res.Metrics)
	}
	// A lossless scheme configures its fabric automatically.
	if _, err := New(quick(WithScheme("dcqcn"))...); err != nil {
		t.Fatalf("dcqcn did not self-configure a lossless fabric: %v", err)
	}
}

// TestEvalMini drives the public evaluation harness: a one-scheme
// matrix with both hostCC arms, replay-verified.
func TestEvalMini(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed cells; skipped in -short")
	}
	rep, err := Eval(EvalMatrix{
		Schemes:    []string{"dctcp"},
		Topologies: []string{"star"},
		Workloads:  []string{"hostbound"},
	}, EvalWindows(500*time.Microsecond, 4*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(rep.Cells))
	}
	for i, c := range rep.Cells {
		if !c.Verified {
			t.Fatalf("cell %d not replay-verified", i)
		}
		if c.GoodputGbps <= 0 {
			t.Fatalf("cell %d reports no goodput", i)
		}
	}
	if rep.Cells[1].GoodputVsOffPct == 0 {
		t.Fatal("on arm carries no vs-off comparison")
	}
	if _, err := Eval(EvalMatrix{Schemes: []string{"vegas"}}); err == nil {
		t.Fatal("Eval accepted an unknown scheme")
	}
}

package hostcc

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// quick returns options for a fast smoke-scale run.
func quick(extra ...Option) []Option {
	opts := []Option{
		WithWarmup(500 * time.Microsecond),
		WithMeasure(2 * time.Millisecond),
		WithMinRTO(5 * time.Millisecond),
	}
	return append(opts, extra...)
}

func TestNewValidatesOptions(t *testing.T) {
	if _, err := New(WithFlows(-1)); err == nil {
		t.Fatal("negative flows accepted")
	}
	if _, err := New(WithWireLoss(1.5)); err == nil {
		t.Fatal("loss probability above 1 accepted")
	}
	if _, err := New(quick()...); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
}

func TestFunctionalOptionsRun(t *testing.T) {
	x, err := New(quick(WithHostCongestion(3), WithHostCC())...)
	if err != nil {
		t.Fatal(err)
	}
	res := x.Run()
	if res.ThroughputGbps <= 0 {
		t.Fatalf("no throughput: %+v", res.Metrics)
	}
	if res.Timeline != nil {
		t.Fatal("timeline recorded without WithTelemetry")
	}
}

func TestObserve(t *testing.T) {
	x, err := New(quick()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Observe("no/such/instrument", func(Sample) {}); err == nil {
		t.Fatal("unknown instrument accepted")
	}
	if len(x.Instruments()) == 0 {
		t.Fatal("no instruments registered")
	}
	var got Sample
	if err := x.Observe("receiver/nic/arrivals", func(s Sample) { got = s }); err != nil {
		t.Fatal(err)
	}
	x.Run()
	if got.Name != "receiver/nic/arrivals" || got.Kind != "counter" {
		t.Fatalf("bad sample: %+v", got)
	}
	if got.Value <= 0 {
		t.Fatalf("no arrivals observed: %+v", got)
	}
}

func TestTelemetryTimeline(t *testing.T) {
	x, err := New(quick(WithHostCongestion(3), WithHostCC(), WithTelemetry())...)
	if err != nil {
		t.Fatal(err)
	}
	res := x.Run()
	if res.Timeline == nil {
		t.Fatal("WithTelemetry produced no timeline")
	}
	if res.Timeline.Spans() == 0 || res.Timeline.Tracks() == 0 {
		t.Fatalf("empty timeline: %d spans, %d tracks",
			res.Timeline.Spans(), res.Timeline.Tracks())
	}

	var buf bytes.Buffer
	if err := res.Timeline.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome trace is not valid JSON")
	}
	out := buf.String()
	for _, want := range []string{
		`"nic-queue"`, `"iio-mem"`, `"cpu-rx"`, // per-hop packet spans
		"receiver/iio/occupancy", "receiver/mba/level", // counter tracks
		"hostcc-sample", // decision-audit spans
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
}

// TestTelemetryDoesNotPerturb runs the same experiment with and without
// the tracer and requires bit-identical metrics: telemetry only reads
// simulation state, so it must not change event order.
func TestTelemetryDoesNotPerturb(t *testing.T) {
	run := func(tel bool) Metrics {
		opts := quick(WithHostCongestion(3), WithHostCC(), WithFlows(4))
		if tel {
			opts = append(opts, WithTelemetry())
		}
		x, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		return x.Run().Metrics
	}
	if off, on := run(false), run(true); off != on {
		t.Fatalf("telemetry perturbed the run:\noff: %+v\non:  %+v", off, on)
	}
}

// TestDeprecatedSurface keeps the pre-redesign API compiling and
// consistent with the new one.
func TestDeprecatedSurface(t *testing.T) {
	opts := DefaultOptions()
	opts.Degree = 3
	opts.HostCC = true
	opts.Warmup = 500 * Microsecond
	opts.Measure = 2 * Millisecond
	opts.MinRTO = 5 * Millisecond
	old := Run(opts)

	x, err := New(quick(WithHostCongestion(3), WithHostCC())...)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Run().Metrics; got != old {
		t.Fatalf("old and new API disagree:\nold: %+v\nnew: %+v", old, got)
	}
}

package hostcc

// One benchmark per evaluation figure of the paper (the paper reports all
// results as figures; it has no numbered tables). Each benchmark runs the
// corresponding experiment at bench scale and reports the figure's
// headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation. Use cmd/hostcc-bench for complete rows
// at higher fidelity.

import (
	"testing"

	"repro/internal/testbed"
)

var benchScale = testbed.ScaleBench

// report tags a metric set onto the benchmark output.
func reportCongestion(b *testing.B, rows []CongestionRow) {
	b.Helper()
	for _, r := range rows {
		if r.Degree == 3 {
			suffix := "_baseline"
			if r.HostCC {
				suffix = "_hostcc"
			}
			b.ReportMetric(r.M.ThroughputGbps, "Gbps3x"+suffix)
			b.ReportMetric(r.M.DropRatePct, "drop%3x"+suffix)
		}
	}
}

func BenchmarkFigure02_HostCongestionBaseline(b *testing.B) {
	var rows []CongestionRow
	for i := 0; i < b.N; i++ {
		rows = RunFigure2(benchScale)
	}
	reportCongestion(b, rows)
}

func BenchmarkFigure03_MTUAndFlows(b *testing.B) {
	var rows []MTUFlowRow
	for i := 0; i < b.N; i++ {
		rows = RunFigure3(benchScale)
	}
	for _, r := range rows {
		if r.MTU == 9000 && !r.DDIO {
			b.ReportMetric(r.M.DropRatePct, "drop%_mtu9000")
		}
	}
}

func BenchmarkFigure04_TailLatencyBaseline(b *testing.B) {
	var rows []LatencyRow
	for i := 0; i < b.N; i++ {
		rows = RunFigure4(benchScale)
	}
	for _, r := range rows {
		if r.SizeBytes == 128 {
			switch r.Scenario {
			case "uncongested":
				b.ReportMetric(r.P99us, "p99us_idle")
			case "congested":
				b.ReportMetric(r.P99us, "p99us_cong")
				b.ReportMetric(r.P999us, "p999us_cong")
			}
		}
	}
}

func BenchmarkFigure07_SignalReadLatency(b *testing.B) {
	var cdfs []SignalLatencyCDF
	for i := 0; i < b.N; i++ {
		cdfs = RunFigure7(benchScale)
	}
	for _, c := range cdfs {
		name := "meanUs_idle"
		if c.Congested {
			name = "meanUs_congested"
		}
		b.ReportMetric(c.MeanUs, name)
	}
}

func BenchmarkFigure08_SignalTimeSeries(b *testing.B) {
	var traces []Trace
	for i := 0; i < b.N; i++ {
		traces = RunFigure8(benchScale)
	}
	b.ReportMetric(traces[0].IS.Mean(), "IS_idle")
	b.ReportMetric(traces[1].IS.Mean(), "IS_congested")
	b.ReportMetric(traces[1].BS.Mean(), "BSGbps_congested")
}

func BenchmarkFigure09_MBALevels(b *testing.B) {
	var rows []MBARow
	for i := 0; i < b.N; i++ {
		rows = RunFigure9(benchScale)
	}
	for _, r := range rows {
		if !r.DDIO && (r.Level == 0 || r.Level == 4) {
			b.ReportMetric(r.NetGbps, "netGbps_l"+string(rune('0'+r.Level)))
		}
	}
}

func BenchmarkFigure10_HostCCBenefits(b *testing.B) {
	var rows []CongestionRow
	for i := 0; i < b.N; i++ {
		rows = RunFigure10(benchScale)
	}
	reportCongestion(b, rows)
}

func BenchmarkFigure11_HostCCMTUFlows(b *testing.B) {
	var rows []MTUFlowRow
	for i := 0; i < b.N; i++ {
		rows = RunFigure11(benchScale)
	}
	for _, r := range rows {
		if r.MTU == 9000 && r.HostCC {
			b.ReportMetric(r.M.ThroughputGbps, "Gbps_mtu9000_hostcc")
		}
	}
}

func BenchmarkFigure12_HostCCTailLatency(b *testing.B) {
	var rows []LatencyRow
	for i := 0; i < b.N; i++ {
		rows = RunFigure12(benchScale)
	}
	for _, r := range rows {
		if r.SizeBytes == 128 && r.Scenario == "congested+hostcc" {
			b.ReportMetric(r.P99us, "p99us_hostcc")
			b.ReportMetric(r.P999us, "p999us_hostcc")
		}
	}
}

func BenchmarkFigure13_Incast(b *testing.B) {
	var rows []IncastRow
	for i := 0; i < b.N; i++ {
		rows = RunFigure13(benchScale)
	}
	for _, r := range rows {
		if r.FlowsTotal == 10 && r.Degree == 3 {
			name := "Gbps_incast2.5x_baseline"
			if r.HostCC {
				name = "Gbps_incast2.5x_hostcc"
			}
			b.ReportMetric(r.M.ThroughputGbps, name)
		}
	}
}

func BenchmarkFigure14_HostCCDDIO(b *testing.B) {
	var rows []CongestionRow
	for i := 0; i < b.N; i++ {
		rows = RunFigure14(benchScale)
	}
	reportCongestion(b, rows)
}

func BenchmarkFigure15_HostCCDDIOLatency(b *testing.B) {
	var rows []LatencyRow
	for i := 0; i < b.N; i++ {
		rows = RunFigure15(benchScale)
	}
	for _, r := range rows {
		if r.SizeBytes == 128 && r.Scenario == "congested+hostcc" {
			b.ReportMetric(r.P999us, "p999us_ddio_hostcc")
		}
	}
}

func BenchmarkFigure16_SensitivityBT(b *testing.B) {
	var rows []SensitivityRow
	for i := 0; i < b.N; i++ {
		rows = RunFigure16(benchScale)
	}
	for _, r := range rows {
		if r.BTGbps == 10 || r.BTGbps == 100 {
			b.ReportMetric(r.M.ThroughputGbps, "GbpsAtBT"+itoa(int(r.BTGbps)))
		}
	}
}

func BenchmarkFigure17_SensitivityIT(b *testing.B) {
	var rows []SensitivityRow
	for i := 0; i < b.N; i++ {
		rows = RunFigure17(benchScale)
	}
	for _, r := range rows {
		if r.IT == 70 || r.IT == 90 {
			b.ReportMetric(r.M.DropRatePct, "drop%AtIT"+itoa(int(r.IT)))
		}
	}
}

func BenchmarkFigure18_Ablation(b *testing.B) {
	var rows []AblationRow
	for i := 0; i < b.N; i++ {
		rows = RunFigure18(benchScale)
	}
	for _, r := range rows {
		b.ReportMetric(r.M.ThroughputGbps, "Gbps_"+r.Mode.String())
	}
}

func BenchmarkFigure19_SteadyState(b *testing.B) {
	var tr Trace
	for i := 0; i < b.N; i++ {
		tr = RunFigure19(benchScale)
	}
	b.ReportMetric(tr.BS.Mean(), "BSGbps_mean")
	b.ReportMetric(tr.IS.FractionAbove(70)*100, "IS>IT_%time")
}

// --- Ablation benchmarks for hostCC design choices (§4.1, §6) ----------

// BenchmarkAblationEWMAWeight sweeps the I_S filter weight: large weights
// overreact to bursts, small weights delay the congestion response.
func BenchmarkAblationEWMAWeight(b *testing.B) {
	for _, w := range []float64{1.0 / 2, 1.0 / 8, 1.0 / 64} {
		w := w
		b.Run(fmtWeight(w), func(b *testing.B) {
			var m Metrics
			for i := 0; i < b.N; i++ {
				m = runWithHCCConfig(func(o *testbed.Config) {}, w, 0, 0)
			}
			b.ReportMetric(m.ThroughputGbps, "Gbps")
			b.ReportMetric(m.DropRatePct, "drop%")
		})
	}
}

// BenchmarkAblationSamplingInterval sweeps the signal sampling period
// (the paper collects signals at sub-µs granularity; coarser sampling
// delays both responses).
func BenchmarkAblationSamplingInterval(b *testing.B) {
	for _, us := range []int{2, 10, 50} {
		us := us
		b.Run(itoa(us)+"us", func(b *testing.B) {
			var m Metrics
			for i := 0; i < b.N; i++ {
				m = runWithHCCConfig(func(o *testbed.Config) {}, 0, us, 0)
			}
			b.ReportMetric(m.ThroughputGbps, "Gbps")
			b.ReportMetric(m.DropRatePct, "drop%")
		})
	}
}

// BenchmarkAblationMBAWriteLatency sweeps the MBA MSR write cost — the
// hardware limitation §6 calls out (22 µs today; ~1 µs would enable a
// finer-grained host-local response).
func BenchmarkAblationMBAWriteLatency(b *testing.B) {
	for _, us := range []int{1, 22, 100} {
		us := us
		b.Run(itoa(us)+"us", func(b *testing.B) {
			var m Metrics
			for i := 0; i < b.N; i++ {
				m = runWithHCCConfig(func(o *testbed.Config) {}, 0, 0, us)
			}
			b.ReportMetric(m.ThroughputGbps, "Gbps")
			b.ReportMetric(m.DropRatePct, "drop%")
		})
	}
}

// BenchmarkExtensionIOMMU runs the §6 IOMMU study: translation-induced
// congestion that IIO occupancy cannot see.
func BenchmarkExtensionIOMMU(b *testing.B) {
	var rows []IOMMURow
	for i := 0; i < b.N; i++ {
		rows = RunIOMMUStudy(benchScale)
	}
	for _, r := range rows {
		if r.IOTLBEntries == 32 {
			b.ReportMetric(r.M.ThroughputGbps, "Gbps_thrashed")
			b.ReportMetric(r.M.AvgIS, "IS_thrashed")
			b.ReportMetric(r.MissRate*100, "missRate%")
		}
	}
}

// BenchmarkEngineThroughput measures raw simulator performance: events
// processed per second for a congested full-system run.
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := testbed.DefaultConfig()
		opts.Degree = 3
		opts.HostCC = true
		opts.Warmup = 2 * msTime
		opts.Measure = 4 * msTime
		opts.MinRTO = 4 * msTime
		tb := testbed.New(opts)
		tb.StartNetAppT()
		tb.RunWindow()
		b.ReportMetric(float64(tb.E.Processed), "events/op")
	}
}

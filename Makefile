# Tier-1 verification: everything here must stay green.
#
#   make verify     build + full test suite (the tier-1 gate)
#   make race       race-detector job (short mode: the figure-scale
#                   simulations are pure compute on one goroutine and
#                   would take >10 min under the detector for no extra
#                   race coverage; -short keeps the concurrent paths —
#                   sweeps, meters — under the detector in ~2 min)
#   make chaos      fault-injection suite only
#   make chaos-race chaos acceptance + sentinel tests under the race
#                   detector (-short), its own CI job
#   make bench      microbenchmarks (engine + datapath + full-system
#                   throughput) -> BENCH_baseline.json
#   make api-compat build + vet the examples module against the public
#                   API only (fails if an internal type leaks)
#   make telemetry-overhead
#                   rerun BenchmarkEngineThroughput and gate the delta
#                   vs BENCH_baseline.json (telemetry disabled-path
#                   budget, default 2%; override TOLERANCE_PCT=N)
#   make figures    regenerate the quick-scale figures
#   make topology-smoke
#                   short leaf-spine scale-out run, replay-verified
#                   (two runs must produce bit-identical digests)
#   make fluid-smoke
#                   hybrid fluid/packet tier gate: fluid-vs-packet
#                   validation bands, promote/demote determinism,
#                   sharded replay, plus a replay-verified CLI run with
#                   a fluid background population
#   make bench-fluid
#                   time the fluid-tier leaf-spine scale-out across
#                   10k/100k/1M background flows at 1, 2 and 4 shards
#                   -> BENCH_fluid.json (wall clock vs flow count)
#   make bench-parallel
#                   time the 128-sender leaf-spine scale-out at 1, 2 and
#                   4 shards -> BENCH_parallel.json (speedup report; the
#                   recorded speedup is only meaningful on >=4 cores)
#   make parallel-determinism
#                   sharded-engine gate: single-shard goldens unchanged,
#                   multi-shard runs replay-deterministic, chaos
#                   acceptance at 4 shards
#   make crucible-smoke
#                   chaos search over fixed seeds (must pass clean) plus
#                   the planted-canary hunt (must find and minimize it)
#   make crucible-corpus
#                   replay every checked-in minimized repro under
#                   -race -short; each must reproduce its recorded
#                   oracle verdict
#   make eval-smoke CC evaluation matrix gate: the full scheme registry
#                   through the default 2-topology x 2-workload matrix
#                   (every cell replay-verified, hostCC must re-rank the
#                   schemes under the host-bottleneck workload), then a
#                   mini-matrix rendered twice must be byte-identical
#                   -> BENCH_evalharness.json

GO ?= go

.PHONY: all build test verify race chaos chaos-race bench bench-smoke bench-parallel bench-fluid parallel-determinism api-compat telemetry-overhead figures vet staticcheck replay topology-smoke fluid-smoke crucible-smoke crucible-corpus eval-smoke

all: verify race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify: build vet staticcheck test api-compat

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when installed, skip with a
# notice otherwise (CI images without it must not fail the gate).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Determinism gate: golden digests, checkpoint replay, sentinel.
replay:
	$(GO) test ./internal/testbed/ -run 'TestGoldenDigest|TestReplay|TestSentinel|TestDivergence|TestCheckpoint' -count=1

# Scale-out smoke: a short leaf-spine run with replay verification — the
# bench runs the fabric twice and fails unless every digest frame and the
# final combined digest match bit-for-bit. Fast enough for CI (~2 s).
topology-smoke:
	$(GO) run ./cmd/hostcc-bench -topology leafspine -senders 32 -seed 42

# Hybrid fluid/packet tier gate: the checked-in validation bands
# (fluid-vs-packet utilization on star and dumbbell), promote/demote
# determinism under a trunk-flap window, sharded replay stability, and
# one replay-verified CLI run carrying a fluid background population.
fluid-smoke:
	$(GO) test ./internal/fluid/ ./internal/testbed/ -run 'TestFluid' -short -count=1
	$(GO) run ./cmd/hostcc-bench -topology leafspine -senders 16 -seed 42 -shards 2 		-fluid-hosts 64 -fluid-promotable 4

# Fluid-tier scaling report: wall clock vs background flow count
# (10k/100k/1M) at 1, 2 and 4 shards. The coarse-tick integrator is the
# point — a million background flows cost minutes, not the hours a
# packet-level population would.
bench-fluid:
	$(GO) run ./cmd/hostcc-bench -bench-fluid BENCH_fluid.json -seed 42

# Parallel-engine speedup report: the 128-sender leaf-spine scale-out
# timed at 1, 2 and 4 shards. The JSON records the core count alongside
# the wall times — interpret the speedup only on >=4 cores.
bench-parallel:
	$(GO) run ./cmd/hostcc-bench -bench-parallel BENCH_parallel.json -leaves 4 -spines 2 -senders 128 -seed 42

# Sharded-engine determinism gate: (1) single-shard runs still match the
# golden digests byte for byte (the -shards 1 path is the untouched
# serial engine); (2) multi-shard runs are run-twice deterministic
# (VerifyReplay executes every sharded run twice and compares digest
# timelines frame by frame); (3) the chaos acceptance rows hold at 4
# shards.
parallel-determinism:
	$(GO) test ./internal/testbed/ -run 'TestGoldenDigest|TestTopologyGoldenDigests' -count=1
	$(GO) test ./internal/testbed/ ./internal/sim/ -run 'TestSharded|TestShard' -count=1
	$(GO) run ./cmd/hostcc-bench -topology leafspine -leaves 4 -spines 2 -senders 32 -seed 42 -shards 4

race:
	$(GO) test -race -short ./...

# CC evaluation matrix gate, two halves: (1) the full scheme registry
# {dctcp, reno, cubic, dcqcn, delay, bbr, hpcc} through the default
# star+leafspine x fanin+hostbound matrix, both hostCC arms, every cell
# replay-verified (run twice, digest timelines compared frame by frame);
# -eval-expect-shift fails the run unless hostCC re-ranks the schemes in
# a host-bottleneck pane — the paper's qualitative claim as an exit
# code. (2) Determinism: a mini-matrix rendered twice must produce
# byte-identical markdown (each row embeds the cell's state digest, so
# report equality is digest equality).
eval-smoke:
	$(GO) run ./cmd/hostcc-bench -eval -eval-expect-shift -seed 42 		-eval-md /tmp/eval_full.md -eval-json BENCH_evalharness.json
	$(GO) run ./cmd/hostcc-bench -eval -seed 42 -eval-schemes dctcp,bbr 		-eval-topos star,leafspine -eval-workloads hostbound -eval-md /tmp/eval_smoke_a.md
	$(GO) run ./cmd/hostcc-bench -eval -seed 42 -eval-schemes dctcp,bbr 		-eval-topos star,leafspine -eval-workloads hostbound -eval-md /tmp/eval_smoke_b.md
	cmp /tmp/eval_smoke_a.md /tmp/eval_smoke_b.md
	@echo "eval-smoke: full matrix verified; mini-matrix reports byte-identical"

# Chaos-search smoke: a fixed-seed sweep that must come up clean, then
# the planted-canary self-test — the harness must find the flag-guarded
# PCIe credit bug and shrink it, or the oracle battery has gone blind.
crucible-smoke:
	$(GO) run ./cmd/hostcc-crucible -seeds 24 -q
	@if $(GO) run ./cmd/hostcc-crucible -seeds 8 -canary pcie-extra-credit -stop -q >/dev/null 2>&1; then \
		echo "crucible-smoke: canary hunt found nothing — the oracle battery is blind"; exit 1; \
	else \
		echo "crucible-smoke: canary found and minimized (expected failure observed)"; \
	fi

# Corpus replay gate: every checked-in minimized repro must reproduce
# its recorded oracle verdict, under the race detector.
crucible-corpus:
	$(GO) test -race -short ./internal/crucible/ -run TestCorpus -count=1 -v

chaos:
	$(GO) test ./internal/faults/ ./internal/testbed/ -run 'TestChaos' -count=1

# Chaos acceptance under the race detector: the acceptance table (incl.
# the replay-verified lossless scenarios) and the sentinel tests, -short
# so the full-scenario sweep stays out of the detector. This is the
# "faults + pause machinery + sentinel classifier race-free" gate; the
# blanket `make race` already covers the rest of the tree.
chaos-race:
	$(GO) test -race -short ./internal/faults/ ./internal/testbed/ -run 'TestChaos|TestSentinel|TestSharded' -count=1

# Microbenchmark suite. The -json stream is written to BENCH_baseline.json
# (one test2json object per line); reconstruct benchstat input with
#   jq -r 'select(.Action=="output").Output' BENCH_baseline.json | benchstat /dev/stdin
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine|BenchmarkDatapath' -benchmem -count=1 -json ./internal/sim/ ./internal/host/ . > BENCH_baseline.json
	@sed -n 's/.*"Output":"\(Benchmark[^"]*\)\\n".*/\1/p' BENCH_baseline.json | sed 's/\\t/	/g'
	@echo "wrote BENCH_baseline.json"

# bench-smoke is the CI gate: every benchmark must still run (one
# iteration) and the zero-alloc guards must hold.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine|BenchmarkDatapath' -benchtime=1x 		-benchmem -count=1 -json ./internal/sim/ ./internal/host/ . > BENCH_baseline.json
	$(GO) test ./internal/sim/ ./internal/ring/ ./internal/packet/ ./internal/host/ ./internal/telemetry/ 		-run 'ZeroAlloc|NoAlloc' -count=1 -v | grep -E '^(=== RUN|--- |ok|FAIL)'

# API-compat gate: examples/ is a separate module that can only see the
# repo's exported API, so building it fails the moment a public signature
# breaks or an internal type leaks into the examples.
api-compat:
	cd examples && $(GO) build ./... && $(GO) vet ./...

# Telemetry-overhead gate: with telemetry disabled (the default),
# full-system simulation throughput must stay within TOLERANCE_PCT of the
# recorded baseline. Record the baseline with `make bench` on the same
# machine first.
TOLERANCE_PCT ?= 2
telemetry-overhead:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineThroughput' -benchmem -count=1 -json . > /tmp/bench_current.json
	$(GO) run ./cmd/benchgate -baseline BENCH_baseline.json -current /tmp/bench_current.json 		-bench BenchmarkEngineThroughput -tolerance $(TOLERANCE_PCT)

figures:
	$(GO) run ./cmd/hostcc-bench -fig all -scale quick

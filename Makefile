# Tier-1 verification: everything here must stay green.
#
#   make verify     build + full test suite (the tier-1 gate)
#   make race       race-detector job (short mode: the figure-scale
#                   simulations are pure compute on one goroutine and
#                   would take >10 min under the detector for no extra
#                   race coverage; -short keeps the concurrent paths —
#                   sweeps, meters — under the detector in ~2 min)
#   make chaos      fault-injection suite only
#   make bench      regenerate the quick-scale figures

GO ?= go

.PHONY: all build test verify race chaos bench vet staticcheck replay

all: verify race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify: build vet staticcheck test

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when installed, skip with a
# notice otherwise (CI images without it must not fail the gate).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Determinism gate: golden digests, checkpoint replay, sentinel.
replay:
	$(GO) test ./internal/testbed/ -run 'TestGoldenDigest|TestReplay|TestSentinel|TestDivergence|TestCheckpoint' -count=1

race:
	$(GO) test -race -short ./...

chaos:
	$(GO) test ./internal/faults/ ./internal/testbed/ -run 'TestChaos' -count=1

bench:
	$(GO) run ./cmd/hostcc-bench -fig all -scale quick

# Tier-1 verification: everything here must stay green.
#
#   make verify     build + full test suite (the tier-1 gate)
#   make race       race-detector job (short mode: the figure-scale
#                   simulations are pure compute on one goroutine and
#                   would take >10 min under the detector for no extra
#                   race coverage; -short keeps the concurrent paths —
#                   sweeps, meters — under the detector in ~2 min)
#   make chaos      fault-injection suite only
#   make bench      regenerate the quick-scale figures

GO ?= go

.PHONY: all build test verify race chaos bench vet

all: verify race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify: build vet test

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

chaos:
	$(GO) test ./internal/faults/ ./internal/testbed/ -run 'TestChaos' -count=1

bench:
	$(GO) run ./cmd/hostcc-bench -fig all -scale quick

// eval.go is the public face of the CC evaluation harness
// (internal/evalharness): a scheme × topology × workload × hostCC-arm
// matrix where every cell is a full replay-verified testbed experiment
// reporting goodput, Jain fairness, convergence time and victim tail
// latency.
package hostcc

import (
	"time"

	"repro/internal/evalharness"
	"repro/internal/sim"
)

// EvalMatrix selects the axes of one evaluation matrix. A nil axis
// selects its documented default (all schemes; star + leafspine;
// fanin + hostbound; both hostCC arms).
type EvalMatrix struct {
	// Schemes are scheme registry names (see Schemes).
	Schemes []string
	// Topologies are fabric names: "star", "leafspine", "dumbbell".
	Topologies []string
	// Workloads are traffic shapes: "fanin" (switch-port bottleneck),
	// "hostbound" (the paper's host-bottleneck regime).
	Workloads []string
	// Arms selects the hostCC axis: "off", "on".
	Arms []string
}

// Typed results of Eval, re-exported from the harness.
type (
	// EvalConfig is the full harness configuration Eval assembles from
	// an EvalMatrix and EvalOptions (advanced callers can inspect its
	// Validate for the accepted ranges).
	EvalConfig = evalharness.Config
	// EvalReport is the full matrix outcome: per-cell results plus
	// per-pane scheme rankings, renderable as Markdown or JSON.
	EvalReport = evalharness.Report
	// EvalResult is one cell's measurements.
	EvalResult = evalharness.CellResult
	// EvalCell identifies one matrix cell.
	EvalCell = evalharness.CellSpec
	// EvalRanking orders one topology × workload pane's schemes by
	// goodput, per hostCC arm.
	EvalRanking = evalharness.Ranking
)

// EvalOption tunes an evaluation run (see Eval).
type EvalOption func(*EvalConfig)

// EvalSeed sets the seed every cell seed derives from (default 42).
func EvalSeed(seed int64) EvalOption {
	return func(c *EvalConfig) { c.Seed = seed }
}

// EvalWindows sets each cell's warmup and measurement window (defaults
// 1 ms and 4 ms of simulated time).
func EvalWindows(warmup, measure time.Duration) EvalOption {
	return func(c *EvalConfig) {
		c.Warmup = sim.Time(warmup.Nanoseconds())
		c.Measure = sim.Time(measure.Nanoseconds())
	}
}

// EvalWorkers bounds concurrently running cells (default NumCPU).
func EvalWorkers(n int) EvalOption {
	return func(c *EvalConfig) { c.Workers = n }
}

// EvalShards partitions each multi-switch cell across N parallel engine
// shards (default serial; star cells always run serial).
func EvalShards(n int) EvalOption {
	return func(c *EvalConfig) { c.Shards = n }
}

// EvalNoVerify skips the run-twice replay verification, halving the
// cost; result cells then carry Verified=false.
func EvalNoVerify() EvalOption {
	return func(c *EvalConfig) { c.NoVerify = true }
}

// Eval runs the evaluation matrix: every cell is one full testbed
// experiment, run twice with frame-by-frame digest comparison (replay
// verification), fanned out across the worker pool. The report's cell
// order, numbers and rendered Markdown are a deterministic function of
// the matrix and options.
//
//	rep, err := hostcc.Eval(hostcc.EvalMatrix{
//	        Schemes:   []string{"dctcp", "bbr"},
//	        Workloads: []string{"hostbound"},
//	})
func Eval(m EvalMatrix, opts ...EvalOption) (EvalReport, error) {
	cfg := EvalConfig{
		Schemes:    m.Schemes,
		Topologies: m.Topologies,
		Workloads:  m.Workloads,
		Arms:       m.Arms,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return evalharness.Run(cfg)
}

package hostcc

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/testbed"
)

// msTime is one millisecond of simulated time.
const msTime = sim.Millisecond

// itoa is a tiny integer formatter for benchmark sub-names.
func itoa(n int) string { return fmt.Sprintf("%d", n) }

// fmtWeight renders an EWMA weight like 1/8 as "w1_8".
func fmtWeight(w float64) string { return fmt.Sprintf("w1_%d", int(1/w+0.5)) }

// runWithHCCConfig runs the standard 3x hostCC scenario with ablation
// overrides: weightIS (0 = default 1/8), sampleUs (signal sampling period,
// 0 = default 2 µs) and mbaUs (MBA MSR write latency, 0 = default 22 µs).
func runWithHCCConfig(mod func(*testbed.Config), weightIS float64, sampleUs, mbaUs int) Metrics {
	opts := testbed.DefaultConfig()
	opts.Degree = 3
	opts.HostCC = true
	opts.Warmup = benchScale.Warmup
	opts.Measure = benchScale.Measure
	opts.MinRTO = benchScale.ThroughputMinRTO
	opts.SignalWeightIS = weightIS
	if sampleUs > 0 {
		opts.SampleInterval = sim.Time(sampleUs) * sim.Microsecond
	}
	if mbaUs > 0 {
		opts.MBAWriteLatency = sim.Time(mbaUs) * sim.Microsecond
	}
	if mod != nil {
		mod(&opts)
	}
	return Metrics(testbed.RunNetAppTOnly(opts))
}

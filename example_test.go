package hostcc_test

import (
	"fmt"

	hostcc "repro"
)

// The headline result: under heavy host congestion, hostCC restores
// network throughput to the target bandwidth and eliminates drops at the
// host. (Coarse checks keep the example stable across recalibrations.)
func Example() {
	baseline := hostcc.DefaultOptions()
	baseline.Degree = 3 // 3x host congestion
	baseline.MinRTO = 5 * 1e6
	baseline.Warmup = 25 * 1e6
	baseline.Measure = 8 * 1e6

	withCC := baseline
	withCC.HostCC = true

	b, c := hostcc.Run(baseline), hostcc.Run(withCC)
	fmt.Println("baseline under 50 Gbps:", b.ThroughputGbps < 50)
	fmt.Println("hostCC above 70 Gbps:", c.ThroughputGbps > 70)
	fmt.Println("hostCC dropped less:", c.DropRatePct <= b.DropRatePct)
	// Output:
	// baseline under 50 Gbps: true
	// hostCC above 70 Gbps: true
	// hostCC dropped less: true
}

// Custom congestion control: hostCC composes with any protocol.
func ExampleRun_customCC() {
	opts := hostcc.DefaultOptions()
	opts.CC = hostcc.Cubic()
	opts.MinRTO = 5 * 1e6
	opts.Warmup = 15 * 1e6
	opts.Measure = 5 * 1e6
	m := hostcc.Run(opts)
	fmt.Println("cubic saturates an uncongested host:", m.ThroughputGbps > 90)
	// Output:
	// cubic saturates an uncongested host: true
}

// Direct testbed access for custom instrumentation.
func ExampleNewTestbed() {
	opts := hostcc.DefaultOptions()
	opts.Degree = 2
	opts.HostCC = true
	opts.MinRTO = 5 * 1e6
	opts.Warmup = 25 * 1e6
	opts.Measure = 5 * 1e6
	tb := hostcc.NewTestbed(opts)
	tb.StartNetAppT()
	m := tb.RunWindow()
	fmt.Println("signals sampled:", tb.HCC.Samples.Total() > 0)
	fmt.Println("occupancy held below threshold:", m.AvgIS < 70)
	// Output:
	// signals sampled: true
	// occupancy held below threshold: true
}

package hostcc_test

import (
	"fmt"
	"time"

	hostcc "repro"
)

// The headline result: under heavy host congestion, hostCC restores
// network throughput to the target bandwidth and eliminates drops at the
// host. (Coarse checks keep the example stable across recalibrations.)
func Example() {
	common := []hostcc.Option{
		hostcc.WithHostCongestion(3), // 3x host congestion
		hostcc.WithMinRTO(5 * time.Millisecond),
		hostcc.WithWarmup(25 * time.Millisecond),
		hostcc.WithMeasure(8 * time.Millisecond),
	}
	baseline, err := hostcc.New(common...)
	if err != nil {
		panic(err)
	}
	withCC, err := hostcc.New(append(common, hostcc.WithHostCC())...)
	if err != nil {
		panic(err)
	}

	b, c := baseline.Run(), withCC.Run()
	fmt.Println("baseline under 50 Gbps:", b.ThroughputGbps < 50)
	fmt.Println("hostCC above 70 Gbps:", c.ThroughputGbps > 70)
	fmt.Println("hostCC dropped less:", c.DropRatePct <= b.DropRatePct)
	// Output:
	// baseline under 50 Gbps: true
	// hostCC above 70 Gbps: true
	// hostCC dropped less: true
}

// Scheme registry: hostCC composes with any registered congestion
// control protocol, selected by name.
func ExampleWithScheme() {
	x, err := hostcc.New(
		hostcc.WithScheme("cubic"),
		hostcc.WithMinRTO(5*time.Millisecond),
		hostcc.WithWarmup(15*time.Millisecond),
		hostcc.WithMeasure(5*time.Millisecond),
	)
	if err != nil {
		panic(err)
	}
	m := x.Run()
	fmt.Println("cubic saturates an uncongested host:", m.ThroughputGbps > 90)
	// Output:
	// cubic saturates an uncongested host: true
}

// Direct testbed access for custom instrumentation.
func ExampleExperiment_Testbed() {
	x, err := hostcc.New(
		hostcc.WithHostCongestion(2),
		hostcc.WithHostCC(),
		hostcc.WithMinRTO(5*time.Millisecond),
		hostcc.WithWarmup(25*time.Millisecond),
		hostcc.WithMeasure(5*time.Millisecond),
	)
	if err != nil {
		panic(err)
	}
	tb := x.Testbed()
	tb.StartNetAppT()
	m := tb.RunWindow()
	fmt.Println("signals sampled:", tb.HCC.Samples.Total() > 0)
	fmt.Println("occupancy held below threshold:", m.AvgIS < 70)
	// Output:
	// signals sampled: true
	// occupancy held below threshold: true
}

// scheme.go is the public face of the transport scheme registry: every
// congestion control protocol the simulator implements, discoverable by
// name and selectable with WithScheme. The registry is the primary way
// to pick a protocol; the typed CC selectors (CCDCTCP, CCDelay, ...)
// remain for callers that want a compile-time handle.
package hostcc

import (
	"repro/internal/sim"
	"repro/internal/transport"
)

// Scheme describes one registered congestion control scheme. Obtain
// schemes from Schemes or SchemeByName; the zero value is not valid.
type Scheme struct {
	info transport.SchemeInfo
}

// Name returns the registry name ("dctcp", "bbr", ...), accepted by
// WithScheme, EvalMatrix.Schemes and `hostcc-bench -eval-schemes`.
func (s Scheme) Name() string { return s.info.Name }

// Summary is a one-line description of the scheme's congestion signal
// and response.
func (s Scheme) Summary() string { return s.info.Summary }

// RequiresLossless reports that the scheme is designed for a PFC
// lossless fabric (DCQCN: without PFC no CNPs are generated and the
// sender never slows). WithScheme configures the fabric automatically.
func (s Scheme) RequiresLossless() bool { return s.info.Lossless }

// CC returns the scheme as a WithCC selector (a fresh factory per call;
// congestion control state is never shared between experiments).
func (s Scheme) CC() CC { return CC{factory: s.info.Factory(), name: s.info.Name} }

// Schemes lists every registered congestion control scheme in stable
// registry order (dctcp, reno, cubic, dcqcn, delay, bbr, hpcc).
func Schemes() []Scheme {
	infos := transport.Schemes()
	out := make([]Scheme, len(infos))
	for i, info := range infos {
		out[i] = Scheme{info: info}
	}
	return out
}

// SchemeByName resolves a registry name; the error lists the valid
// names.
func SchemeByName(name string) (Scheme, error) {
	info, err := transport.SchemeByName(name)
	if err != nil {
		return Scheme{}, err
	}
	return Scheme{info: info}, nil
}

// WithScheme selects the congestion control scheme by registry name —
// the primary way to pick a protocol. A scheme that requires a lossless
// fabric (DCQCN) also enables PFC with a 150 µs pause watchdog, unless
// WithLossless already configured one. An unknown name surfaces as an
// error from New.
func WithScheme(name string) Option {
	return func(x *Experiment) {
		s, err := SchemeByName(name)
		if err != nil {
			x.err = err
			return
		}
		x.cfg.CC = s.info.Factory()
		if s.info.Lossless && !x.cfg.Lossless {
			x.cfg.Lossless = true
			x.cfg.PauseWatchdog = 150 * sim.Microsecond
		}
	}
}

// Command benchgate compares one benchmark between two `go test -json`
// streams (the recorded BENCH_baseline.json and a fresh run) and fails
// when the current ns/op regresses beyond a tolerance. It is the CI gate
// that keeps the telemetry layer's disabled-path overhead inside its
// budget.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkEngineThroughput -benchmem -count=1 -json . > current.json
//	benchgate -baseline BENCH_baseline.json -current current.json \
//	    -bench BenchmarkEngineThroughput -tolerance 2
//
// Benchmarks are noisy: for a strict budget check, record baseline and
// current on the same quiet machine (see `make telemetry-overhead`).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "recorded `go test -json` benchmark stream")
	current := flag.String("current", "", "fresh `go test -json` benchmark stream to compare")
	bench := flag.String("bench", "BenchmarkEngineThroughput", "benchmark name to compare")
	tolerance := flag.Float64("tolerance", 2, "maximum allowed ns/op regression, percent")
	maxAllocs := flag.Int64("max-allocs", -1, "fail if the current run exceeds this allocs/op (-1 disables)")
	flag.Parse()

	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	base, err := extract(*baseline, *bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := extract(*current, *bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	delta := (cur.nsPerOp - base.nsPerOp) / base.nsPerOp * 100
	fmt.Printf("%s: baseline %.0f ns/op, current %.0f ns/op, delta %+.2f%% (tolerance %.1f%%)\n",
		*bench, base.nsPerOp, cur.nsPerOp, delta, *tolerance)
	fail := false
	if delta > *tolerance {
		fmt.Printf("FAIL: regression %.2f%% exceeds tolerance\n", delta)
		fail = true
	}
	if *maxAllocs >= 0 && cur.allocsPerOp > *maxAllocs {
		fmt.Printf("FAIL: %d allocs/op exceeds limit %d\n", cur.allocsPerOp, *maxAllocs)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("ok")
}

type result struct {
	nsPerOp     float64
	allocsPerOp int64
}

// resultRE matches a benchmark result line, e.g.
//
//	BenchmarkEngineThroughput 	 7	 157548394 ns/op	 2824874 B/op	 109316 allocs/op
var resultRE = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9]+) allocs/op)?`)

// extract reconstructs the benchmark output from a test2json stream
// (result lines may be split across several Output events) and returns
// the figures for the named benchmark.
func extract(path, bench string) (result, error) {
	f, err := os.Open(path)
	if err != nil {
		return result{}, err
	}
	defer f.Close()

	var out strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action string
			Output string
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return result{}, fmt.Errorf("%s: not a `go test -json` stream: %w", path, err)
		}
		if ev.Action == "output" {
			out.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return result{}, fmt.Errorf("%s: %w", path, err)
	}

	for _, line := range strings.Split(out.String(), "\n") {
		m := resultRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		// Trim a -8 style GOMAXPROCS suffix before comparing names.
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if name != bench {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return result{}, fmt.Errorf("%s: bad ns/op in %q", path, line)
		}
		r := result{nsPerOp: ns, allocsPerOp: -1}
		if m[3] != "" {
			r.allocsPerOp, _ = strconv.ParseInt(m[3], 10, 64)
		}
		return r, nil
	}
	return result{}, fmt.Errorf("%s: benchmark %q not found", path, bench)
}

// Command hostcc-trace dumps the microscopic time-series figures (8, 18,
// 19) as CSV files for plotting, and optionally a full Chrome/Perfetto
// trace of an instrumented run.
//
// Usage:
//
//	hostcc-trace -out /tmp/traces -scale quick
//	hostcc-trace -perfetto /tmp/traces/run.json -degree 3
//
// -perfetto skips the CSV figures and instead records one
// telemetry-enabled experiment (per-hop packet spans plus counter tracks
// for IIO occupancy, MBA level, queue depths and the hostCC signals) in
// Chrome Trace Event Format; open the file at https://ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	hostcc "repro"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hostcc-trace:", err)
		os.Exit(1)
	}
}

// traceFlags holds every hostcc-trace flag; registerFlags binds them to
// a FlagSet so the usage output is testable (see usage_test.go).
type traceFlags struct {
	out       *string
	scaleName *string
	perfetto  *string
	degree    *float64
	seed      *int64
}

func registerFlags(fs *flag.FlagSet) traceFlags {
	return traceFlags{
		out:       fs.String("out", "traces", "output directory for CSV files"),
		scaleName: fs.String("scale", "quick", "experiment scale: quick, default, paper"),
		perfetto:  fs.String("perfetto", "", "write a Chrome/Perfetto trace of one telemetry-enabled run to this file (skips the CSV figures)"),
		degree:    fs.Float64("degree", 3, "with -perfetto: degree of host congestion"),
		seed:      fs.Int64("seed", 42, "with -perfetto: simulation seed"),
	}
}

func run() error {
	fs := flag.NewFlagSet("hostcc-trace", flag.ExitOnError)
	f := registerFlags(fs)
	fs.Parse(os.Args[1:])
	out := f.out
	scaleName := f.scaleName
	perfetto := f.perfetto
	degree := f.degree
	seed := f.seed

	if *perfetto != "" {
		return dumpPerfetto(*perfetto, *degree, *seed)
	}

	scale := map[string]hostcc.Scale{
		"quick":   hostcc.ScaleQuick,
		"default": hostcc.ScaleDefault,
		"paper":   hostcc.ScalePaper,
	}[*scaleName]
	if scale.Name == "" {
		return fmt.Errorf("unknown scale %q (have quick, default, paper)", *scaleName)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("create output directory: %w", err)
	}

	fmt.Println("Figure 8 traces (baseline, 1 ms)...")
	for _, tr := range hostcc.RunFigure8(scale) {
		if err := dump(*out, "fig8_"+tr.Label+"_is", tr.IS); err != nil {
			return err
		}
		if err := dump(*out, "fig8_"+tr.Label+"_bs", tr.BS); err != nil {
			return err
		}
	}

	fmt.Println("Figure 18 traces (ablation, 1 ms)...")
	for _, row := range hostcc.RunFigure18(scale) {
		if err := dump(*out, "fig18_"+row.Mode.String()+"_is", row.Trace.IS); err != nil {
			return err
		}
		if err := dump(*out, "fig18_"+row.Mode.String()+"_bs", row.Trace.BS); err != nil {
			return err
		}
	}

	fmt.Println("Figure 19 trace (steady state, 250 us)...")
	tr := hostcc.RunFigure19(scale)
	for _, series := range []struct {
		name string
		s    *stats.Series
	}{
		{"fig19_is", tr.IS}, {"fig19_bs", tr.BS}, {"fig19_level", tr.Level},
	} {
		if err := dump(*out, series.name, series.s); err != nil {
			return err
		}
	}
	return nil
}

// dumpPerfetto records one hostCC run with the event tracer attached and
// writes the resulting timeline in Chrome Trace Event Format.
func dumpPerfetto(path string, degree float64, seed int64) error {
	x, err := hostcc.New(
		hostcc.WithSeed(seed),
		hostcc.WithHostCongestion(degree),
		hostcc.WithHostCC(),
		hostcc.WithTelemetry(),
		hostcc.WithMinRTO(5*time.Millisecond),
	)
	if err != nil {
		return fmt.Errorf("perfetto: %w", err)
	}
	res := x.Run()
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("perfetto: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("perfetto: %w", err)
	}
	if err := res.Timeline.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Printf("wrote %s (%d spans, %d tracks); open at https://ui.perfetto.dev\n",
		path, res.Timeline.Spans(), res.Timeline.Tracks())
	return nil
}

// dump writes one series as CSV, closing the file before reporting
// success so buffered data is never silently lost.
func dump(dir, name string, s *stats.Series) error {
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := s.WriteCSV(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Println("wrote", path)
	return nil
}

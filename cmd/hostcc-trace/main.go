// Command hostcc-trace dumps the microscopic time-series figures (8, 18,
// 19) as CSV files for plotting.
//
// Usage:
//
//	hostcc-trace -out /tmp/traces -scale quick
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	hostcc "repro"
	"repro/internal/stats"
)

func main() {
	out := flag.String("out", "traces", "output directory for CSV files")
	scaleName := flag.String("scale", "quick", "experiment scale: quick, default, paper")
	flag.Parse()

	scale := map[string]hostcc.Scale{
		"quick":   hostcc.ScaleQuick,
		"default": hostcc.ScaleDefault,
		"paper":   hostcc.ScalePaper,
	}[*scaleName]
	if scale.Name == "" {
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	dump := func(name string, s *stats.Series) {
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := s.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}

	fmt.Println("Figure 8 traces (baseline, 1 ms)...")
	for _, tr := range hostcc.RunFigure8(scale) {
		dump("fig8_"+tr.Label+"_is", tr.IS)
		dump("fig8_"+tr.Label+"_bs", tr.BS)
	}

	fmt.Println("Figure 18 traces (ablation, 1 ms)...")
	for _, row := range hostcc.RunFigure18(scale) {
		dump("fig18_"+row.Mode.String()+"_is", row.Trace.IS)
		dump("fig18_"+row.Mode.String()+"_bs", row.Trace.BS)
	}

	fmt.Println("Figure 19 trace (steady state, 250 us)...")
	tr := hostcc.RunFigure19(scale)
	dump("fig19_is", tr.IS)
	dump("fig19_bs", tr.BS)
	dump("fig19_level", tr.Level)
}

// Command hostcc-pcap captures the packets crossing the receiver's
// NetFilter hook position during a short experiment and writes them as a
// wire-format capture file (the simulator's tcpdump). It can also read a
// capture back and print a summary.
//
// Usage:
//
//	hostcc-pcap -out run.hcp -degree 3 -hostcc -ms 5
//	hostcc-pcap -read run.hcp
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	hostcc "repro"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hostcc-pcap:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "", "write a capture to this file")
	read := flag.String("read", "", "read and summarize a capture file")
	degree := flag.Float64("degree", 3, "degree of host congestion")
	withCC := flag.Bool("hostcc", false, "enable hostCC")
	ms := flag.Int("ms", 2, "capture window in milliseconds")
	keep := flag.Int("keep", 100000, "max packets retained")
	flag.Parse()

	switch {
	case *read != "":
		return summarize(*read)
	case *out != "":
		return capture(*out, *degree, *withCC, *ms, *keep)
	default:
		return fmt.Errorf("need -out or -read")
	}
}

func capture(path string, degree float64, withCC bool, ms, keep int) error {
	const warmup = 25 * time.Millisecond
	opts := []hostcc.Option{
		hostcc.WithHostCongestion(degree),
		hostcc.WithMinRTO(5 * time.Millisecond),
		hostcc.WithWarmup(warmup),
	}
	if withCC {
		opts = append(opts, hostcc.WithHostCC())
	}
	x, err := hostcc.New(opts...)
	if err != nil {
		return err
	}
	tb := x.Testbed()
	tb.StartNetAppT()

	log := trace.NewPacketLog(tb.E, keep)
	tb.Receiver.AddReceiveHook(log.Hook())

	tb.E.RunUntil(sim.Time(warmup.Nanoseconds()))
	tb.MarkWindow()
	tb.E.RunFor(sim.Time(ms) * sim.Millisecond)

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write capture %s: %w", path, err)
	}
	if _, err := log.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("write capture %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close capture %s: %w", path, err)
	}
	s := trace.Summarize(log.Records())
	fmt.Printf("captured %s -> %s\n", s, path)
	m := tb.Collect()
	fmt.Printf("window: tput=%.1fG drop=%.4f%% IS=%.1f marked=%.1f%%\n",
		m.ThroughputGbps, m.DropRatePct, m.AvgIS, m.MarkedPct)
	return nil
}

func summarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open capture %s: %w", path, err)
	}
	defer f.Close()
	recs, err := trace.Read(f)
	if err != nil {
		return fmt.Errorf("read capture %s: %w", path, err)
	}
	fmt.Println(trace.Summarize(recs))
	// Per-flow breakdown, in stable flow order.
	perFlow := map[string]int{}
	for _, r := range recs {
		perFlow[r.Pkt.Flow.String()]++
	}
	flows := make([]string, 0, len(perFlow))
	for flow := range perFlow {
		flows = append(flows, flow)
	}
	sort.Strings(flows)
	for _, flow := range flows {
		fmt.Printf("  %-24s %d packets\n", flow, perFlow[flow])
	}
	return nil
}

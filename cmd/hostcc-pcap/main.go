// Command hostcc-pcap captures the packets crossing the receiver's
// NetFilter hook position during a short experiment and writes them as a
// wire-format capture file (the simulator's tcpdump). It can also read a
// capture back and print a summary.
//
// Usage:
//
//	hostcc-pcap -out run.hcp -degree 3 -hostcc -ms 5
//	hostcc-pcap -read run.hcp
package main

import (
	"flag"
	"fmt"
	"os"

	hostcc "repro"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	out := flag.String("out", "", "write a capture to this file")
	read := flag.String("read", "", "read and summarize a capture file")
	degree := flag.Float64("degree", 3, "degree of host congestion")
	withCC := flag.Bool("hostcc", false, "enable hostCC")
	ms := flag.Int("ms", 2, "capture window in milliseconds")
	keep := flag.Int("keep", 100000, "max packets retained")
	flag.Parse()

	switch {
	case *read != "":
		summarize(*read)
	case *out != "":
		capture(*out, *degree, *withCC, *ms, *keep)
	default:
		fmt.Fprintln(os.Stderr, "need -out or -read")
		os.Exit(2)
	}
}

func capture(path string, degree float64, withCC bool, ms, keep int) {
	opts := hostcc.DefaultOptions()
	opts.Degree = degree
	opts.HostCC = withCC
	opts.MinRTO = 5 * sim.Millisecond
	opts.Warmup = 25 * sim.Millisecond
	tb := hostcc.NewTestbed(opts)
	tb.StartNetAppT()

	log := trace.NewPacketLog(tb.E, keep)
	tb.Receiver.AddReceiveHook(log.Hook())

	tb.E.RunUntil(opts.Warmup)
	tb.MarkWindow()
	tb.E.RunFor(sim.Time(ms) * sim.Millisecond)

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if _, err := log.WriteTo(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := trace.Summarize(log.Records())
	fmt.Printf("captured %s -> %s\n", s, path)
	m := tb.Collect()
	fmt.Printf("window: tput=%.1fG drop=%.4f%% IS=%.1f marked=%.1f%%\n",
		m.ThroughputGbps, m.DropRatePct, m.AvgIS, m.MarkedPct)
}

func summarize(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	recs, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(trace.Summarize(recs))
	// Per-flow breakdown.
	perFlow := map[string]int{}
	for _, r := range recs {
		perFlow[r.Pkt.Flow.String()]++
	}
	for flow, n := range perFlow {
		fmt.Printf("  %-24s %d packets\n", flow, n)
	}
}

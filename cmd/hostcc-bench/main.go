// Command hostcc-bench regenerates any figure of the paper's evaluation
// and prints its rows.
//
// Usage:
//
//	hostcc-bench -fig 10 -scale quick
//	hostcc-bench -fig all -scale default
//	hostcc-bench -chaos link-flap
//	hostcc-bench -chaos all
//	hostcc-bench -chaos credit-stall -checkpoint run.ckpt -verify-replay
//	hostcc-bench -resume run.ckpt
//	hostcc-bench -timeline out.json -degree 3
//	hostcc-bench -topology leafspine -senders 128
//	hostcc-bench -topology leafspine -senders 128 -shards 4
//	hostcc-bench -topology leafspine -shards 4 -fluid-hosts 10000 -fluid-flows 1000000
//	hostcc-bench -bench-parallel BENCH_parallel.json -leaves 4 -spines 2 -senders 128
//	hostcc-bench -bench-fluid BENCH_fluid.json
//	hostcc-bench -chaos link-flap -scheme bbr
//	hostcc-bench -lossless
//	hostcc-bench -eval
//	hostcc-bench -eval -eval-schemes dctcp,bbr -eval-topos star -eval-json BENCH_evalharness.json
//
// -eval runs the CC evaluation matrix (internal/evalharness through the
// public hostcc.Eval API): every registered scheme × topology × workload
// × hostCC arm, each cell a full replay-verified testbed experiment
// reporting goodput, Jain fairness, convergence time and victim-flow
// P99.9 latency, with the hostCC-on arm compared against its
// identically-seeded off twin. The markdown report (stdout or -eval-md)
// and -eval-json output are byte-deterministic functions of the matrix;
// -eval-expect-shift turns the paper's qualitative claim — hostCC
// re-ranks the schemes under a host bottleneck — into an exit code.
//
// -topology runs a scale-out experiment through a multi-switch fabric
// (leaf–spine or dumbbell): many senders fanning NetApp-T flows across
// several hostCC-equipped receivers, run twice with frame-by-frame
// digest verification (replay determinism) unless -no-verify. -shards
// partitions the run across parallel engine shards (one goroutine per
// shard, trunk propagation delay as conservative lookahead); sharded
// runs are replay-deterministic but not byte-identical to serial runs.
//
// -bench-parallel times the same leaf-spine workload at 1, 2 and 4
// shards and writes the wall-clock speedup report to the named JSON
// file (BENCH_parallel.json in CI).
//
// -lossless runs the congestion-spreading study on a PFC + DCQCN
// leaf–spine fabric: the same MApp squeeze with hostCC off and on,
// comparing pause-storm frequency (pause asserts, trunk paused time)
// and the victim RPC flow's tail latency between the two arms.
//
// -timeline records one telemetry-enabled throughput run and writes it in
// Chrome Trace Event Format; open the file at https://ui.perfetto.dev to
// see per-hop packet spans and the counter tracks (IIO occupancy, MBA
// level, PCIe credits, hostCC signals).
//
// Figures: 2 3 4 7 8 9 10 11 12 13 14 15 16 17 18 19 (or "all").
// Chaos scenarios: see `hostcc-bench -chaos list`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strings"
	"time"

	hostcc "repro"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hostcc-bench:", err)
		os.Exit(1)
	}
}

// benchFlags holds every hostcc-bench flag; registerFlags binds them to
// a FlagSet so the usage output is testable (see usage_test.go).
type benchFlags struct {
	fig             *string
	scaleName       *string
	chaos           *string
	seed            *int64
	checkpoint      *string
	checkpointEvery *uint64
	resume          *string
	verifyReplay    *bool
	cpuprofile      *string
	memprofile      *string
	tracePath       *string
	timeline        *string
	degree          *float64
	noHostCC        *bool
	topology        *string
	scheme          *string
	senders         *int
	receivers       *int
	flows           *int
	leaves          *int
	spines          *int
	shards          *int
	noVerify        *bool
	lossless        *bool
	benchParallel   *string
	fluidHosts      *int
	fluidFlows      *int
	fluidPromotable *int
	benchFluid      *string
	eval            *bool
	evalSchemes     *string
	evalTopos       *string
	evalWorkloads   *string
	evalArms        *string
	evalWarmupUs    *int
	evalMeasureUs   *int
	evalWorkers     *int
	evalJSON        *string
	evalMD          *string
	evalExpectShift *bool
}

func registerFlags(fs *flag.FlagSet) benchFlags {
	return benchFlags{
		fig:             fs.String("fig", "10", "figure number to regenerate, or 'all'"),
		scaleName:       fs.String("scale", "quick", "experiment scale: bench, quick, default, paper"),
		chaos:           fs.String("chaos", "", "run a chaos scenario ('list' to enumerate, 'all' for every one) and print recovery metrics"),
		seed:            fs.Int64("seed", 42, "simulation seed (chaos, timeline, topology and lossless runs)"),
		checkpoint:      fs.String("checkpoint", "", "with -chaos: record digest frames and write checkpoints to this file"),
		checkpointEvery: fs.Uint64("checkpoint-every", 100_000, "with -checkpoint: processed events between checkpoint captures"),
		resume:          fs.String("resume", "", "resume a chaos run from a checkpoint file (verified replay)"),
		verifyReplay:    fs.Bool("verify-replay", false, "with -chaos and -checkpoint: replay from the written checkpoint afterwards and verify digests"),
		cpuprofile:      fs.String("cpuprofile", "", "write a CPU profile of the run to this file"),
		memprofile:      fs.String("memprofile", "", "write a heap profile to this file on exit"),
		tracePath:       fs.String("trace", "", "write a runtime execution trace to this file"),
		timeline:        fs.String("timeline", "", "run one telemetry-enabled experiment and write its Chrome trace (Perfetto JSON) to this file"),
		degree:          fs.Float64("degree", 3, "with -timeline or -lossless: degree of host congestion"),
		noHostCC:        fs.Bool("no-hostcc", false, "with -timeline: disable the hostCC module"),
		topology:        fs.String("topology", "", "run a scale-out topology experiment: star, leafspine, dumbbell"),
		scheme:          fs.String("scheme", "", "with -topology or -chaos: transport congestion-control scheme by registry name (empty = dctcp)"),
		senders:         fs.Int("senders", 32, "with -topology: number of sending hosts"),
		receivers:       fs.Int("receivers", 0, "with -topology: number of receiving hosts (0 = one per 16 senders)"),
		flows:           fs.Int("flows", 0, "with -topology: NetApp-T flows (0 = one per sender)"),
		leaves:          fs.Int("leaves", 0, "with -topology leafspine or -bench-parallel: leaf switch count (0 = 2)"),
		spines:          fs.Int("spines", 0, "with -topology leafspine or -bench-parallel: spine switch count (0 = 2)"),
		shards:          fs.Int("shards", 0, "with -topology or -chaos: partition the run across N parallel engine shards (0/1 = serial)"),
		noVerify:        fs.Bool("no-verify", false, "with -topology: skip the second run that verifies replay determinism"),
		lossless:        fs.Bool("lossless", false, "run the lossless-fabric study: PFC + DCQCN congestion spreading, hostCC off vs on"),
		benchParallel:   fs.String("bench-parallel", "", "time the leaf-spine scale-out at 1, 2 and 4 shards and write the speedup report (JSON) to this file"),
		fluidHosts:      fs.Int("fluid-hosts", 0, "with -topology: add the hybrid fluid tier with this many virtual background hosts (0 = off)"),
		fluidFlows:      fs.Int("fluid-flows", 0, "with -topology or -bench-fluid: fluid background flow count (0 = 4 x fluid-hosts; for -bench-fluid, 0 sweeps 10k/100k/1M)"),
		fluidPromotable: fs.Int("fluid-promotable", 0, "with -topology: fluid flows given packet-level twins that promote under congestion"),
		benchFluid:      fs.String("bench-fluid", "", "time the fluid-tier leaf-spine scale-out across flow counts at 1, 2 and 4 shards and write the report (JSON) to this file"),
		eval:            fs.Bool("eval", false, "run the CC evaluation matrix: scheme x topology x workload x hostCC arm, every cell replay-verified"),
		evalSchemes:     fs.String("eval-schemes", "", "with -eval: comma-separated scheme registry names (empty = all)"),
		evalTopos:       fs.String("eval-topos", "", "with -eval: comma-separated topologies (empty = star,leafspine)"),
		evalWorkloads:   fs.String("eval-workloads", "", "with -eval: comma-separated workloads (empty = fanin,hostbound)"),
		evalArms:        fs.String("eval-arms", "", "with -eval: comma-separated hostCC arms from off,on (empty = both)"),
		evalWarmupUs:    fs.Int("eval-warmup-us", 0, "with -eval: per-cell warmup in simulated microseconds (0 = 1000)"),
		evalMeasureUs:   fs.Int("eval-measure-us", 0, "with -eval: per-cell measurement window in simulated microseconds (0 = 4000)"),
		evalWorkers:     fs.Int("eval-workers", 0, "with -eval: concurrent cells (0 = NumCPU)"),
		evalJSON:        fs.String("eval-json", "", "with -eval: write the machine-readable report (BENCH_evalharness.json schema) to this file"),
		evalMD:          fs.String("eval-md", "", "with -eval: write the markdown report to this file (empty = stdout)"),
		evalExpectShift: fs.Bool("eval-expect-shift", false, "with -eval: fail unless hostCC re-ranks the schemes in a host-bottleneck pane (the paper's qualitative claim)"),
	}
}

func run() error {
	fs := flag.NewFlagSet("hostcc-bench", flag.ExitOnError)
	f := registerFlags(fs)
	fs.Parse(os.Args[1:])
	fig := f.fig
	scaleName := f.scaleName
	chaos := f.chaos
	seed := f.seed
	checkpoint := f.checkpoint
	checkpointEvery := f.checkpointEvery
	resume := f.resume
	verifyReplay := f.verifyReplay
	cpuprofile := f.cpuprofile
	memprofile := f.memprofile
	tracePath := f.tracePath
	timeline := f.timeline
	degree := f.degree
	noHostCC := f.noHostCC
	topology := f.topology
	senders := f.senders
	receivers := f.receivers
	flows := f.flows
	leaves := f.leaves
	spines := f.spines
	shards := f.shards
	noVerify := f.noVerify
	lossless := f.lossless
	benchParallel := f.benchParallel

	stopProf, err := startProfiling(*cpuprofile, *memprofile, *tracePath)
	if err != nil {
		return err
	}
	defer stopProf()

	if *f.eval {
		return runEval(f)
	}
	if *timeline != "" {
		return runTimeline(*timeline, *degree, !*noHostCC, *seed)
	}
	if *benchParallel != "" {
		return runBenchParallel(*benchParallel, *leaves, *spines, *senders, *receivers, *flows, *seed)
	}
	if *f.benchFluid != "" {
		return runBenchFluid(*f.benchFluid, *leaves, *spines, *f.fluidFlows, *seed)
	}
	if *topology != "" {
		return runScaleOut(*topology, *f.scheme, *senders, *receivers, *flows, *leaves, *spines, *shards,
			*f.fluidHosts, *f.fluidFlows, *f.fluidPromotable, *seed, !*noVerify)
	}
	if *lossless {
		return runLossless(*seed, *degree)
	}
	if *resume != "" {
		return resumeChaos(*resume)
	}
	if *chaos != "" {
		return runChaos(*chaos, *f.scheme, *seed, *shards, *checkpoint, *checkpointEvery, *verifyReplay)
	}
	if *checkpoint != "" || *verifyReplay {
		return fmt.Errorf("-checkpoint and -verify-replay require -chaos <scenario>")
	}

	scale, ok := map[string]hostcc.Scale{
		"bench":   testbed.ScaleBench,
		"quick":   hostcc.ScaleQuick,
		"default": hostcc.ScaleDefault,
		"paper":   hostcc.ScalePaper,
	}[*scaleName]
	if !ok {
		return fmt.Errorf("unknown scale %q (have bench, quick, default, paper)", *scaleName)
	}

	runners := map[string]func(hostcc.Scale){
		"2": func(s hostcc.Scale) { printRows("Figure 2 — baseline under host congestion", hostcc.RunFigure2(s)) },
		"3": func(s hostcc.Scale) {
			printRows("Figure 3 — MTU and flow count (baseline, 3x)", hostcc.RunFigure3(s))
		},
		"4":  func(s hostcc.Scale) { printRows("Figure 4 — baseline RPC tail latency", hostcc.RunFigure4(s)) },
		"7":  func(s hostcc.Scale) { printFig7(s) },
		"8":  func(s hostcc.Scale) { printTraces("Figure 8 — signal time series (1 ms)", hostcc.RunFigure8(s)) },
		"9":  func(s hostcc.Scale) { printRows("Figure 9 — MBA response levels (3x)", hostcc.RunFigure9(s)) },
		"10": func(s hostcc.Scale) { printRows("Figure 10 — DCTCP vs DCTCP+hostCC", hostcc.RunFigure10(s)) },
		"11": func(s hostcc.Scale) {
			printRows("Figure 11 — hostCC across MTU and flows (3x)", hostcc.RunFigure11(s))
		},
		"12": func(s hostcc.Scale) { printRows("Figure 12 — hostCC RPC tail latency", hostcc.RunFigure12(s)) },
		"13": func(s hostcc.Scale) {
			printRows("Figure 13 — incast, network +/- host congestion", hostcc.RunFigure13(s))
		},
		"14": func(s hostcc.Scale) { printRows("Figure 14 — hostCC with DDIO enabled", hostcc.RunFigure14(s)) },
		"15": func(s hostcc.Scale) {
			printRows("Figure 15 — hostCC latency with DDIO enabled", hostcc.RunFigure15(s))
		},
		"16": func(s hostcc.Scale) { printRows("Figure 16 — sensitivity to B_T (3x)", hostcc.RunFigure16(s)) },
		"17": func(s hostcc.Scale) { printRows("Figure 17 — sensitivity to I_T (3x)", hostcc.RunFigure17(s)) },
		"18": func(s hostcc.Scale) {
			printRows("Figure 18 — ablation of hostCC's responses (3x)", hostcc.RunFigure18(s))
		},
		"19": func(s hostcc.Scale) { printFig19(s) },
		"iommu": func(s hostcc.Scale) {
			printRows("Extension — IOMMU-induced host congestion (§6)", hostcc.RunIOMMUStudy(s))
		},
		"futuremba": func(s hostcc.Scale) {
			printRows("Extension — today's vs future MBA hardware (§6)", hostcc.RunFutureMBAStudy(s))
		},
	}

	var figs []string
	if *fig == "all" {
		for k := range runners {
			figs = append(figs, k)
		}
		sort.Slice(figs, func(i, j int) bool { return atoi(figs[i]) < atoi(figs[j]) })
	} else {
		figs = strings.Split(*fig, ",")
	}
	for _, f := range figs {
		runFig, ok := runners[strings.TrimSpace(f)]
		if !ok {
			return fmt.Errorf("unknown figure %q", f)
		}
		start := time.Now()
		runFig(scale)
		fmt.Printf("  [figure %s regenerated in %.1fs at scale %q]\n\n", f, time.Since(start).Seconds(), *scaleName)
	}
	return nil
}

// startProfiling arms the requested profilers and returns the function
// that stops them and writes the exit-time heap profile.
func startProfiling(cpuprofile, memprofile, tracePath string) (stop func(), err error) {
	var stops []func()
	stop = func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return stop, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() { pprof.StopCPUProfile(); f.Close() })
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return stop, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return stop, fmt.Errorf("trace: %w", err)
		}
		stops = append(stops, func() { trace.Stop(); f.Close() })
	}
	if memprofile != "" {
		stops = append(stops, func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hostcc-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hostcc-bench: memprofile:", err)
			}
		})
	}
	return stop, nil
}

func runChaos(name, scheme string, seed int64, shards int, checkpoint string, checkpointEvery uint64, verifyReplay bool) error {
	if name == "list" {
		for _, s := range hostcc.ChaosScenarios() {
			fmt.Println(s)
		}
		return nil
	}
	scenarios := []string{name}
	if name == "all" {
		scenarios = hostcc.ChaosScenarios()
		if checkpoint != "" {
			return fmt.Errorf("-checkpoint records one run; use it with a single scenario, not 'all'")
		}
	}
	fmt.Printf("== Chaos — fault injection and recovery (seed %d)\n", seed)
	for _, sc := range scenarios {
		start := time.Now()
		cfg := hostcc.ChaosConfig{Scenario: sc, Scheme: scheme, Seed: seed, Shards: shards}
		if checkpoint != "" {
			cfg.CheckpointPath = checkpoint
			cfg.CheckpointEvery = checkpointEvery
			cfg.DigestEvery = 500 * sim.Microsecond
		}
		r, err := hostcc.RunChaos(cfg)
		if err != nil {
			return fmt.Errorf("chaos %s: %w", sc, err)
		}
		fmt.Printf("   %s\n", r)
		if r.WatchdogTrips > 0 {
			fmt.Printf("     watchdog: state=%s trips=%d rearms=%d failed-samples=%d\n",
				r.WatchdogState, r.WatchdogTrips, r.WatchdogRearms, r.FailedSamples)
		}
		if r.Checkpoints > 0 {
			fmt.Printf("     checkpoint: %s (%d captures, %d digest frames, final digest %#x)\n",
				checkpoint, r.Checkpoints, r.Frames, r.Digest)
		}
		fmt.Printf("     [%.1fs, %d invariant checks, %d fault events]\n",
			time.Since(start).Seconds(), r.InvariantChecks, r.FaultEvents)
		if verifyReplay {
			if r.Checkpoints == 0 {
				return fmt.Errorf("chaos %s: -verify-replay set but no checkpoint was written (is -checkpoint set and -checkpoint-every low enough?)", sc)
			}
			if err := resumeChaos(checkpoint); err != nil {
				return fmt.Errorf("chaos %s: %w", sc, err)
			}
		}
	}
	return nil
}

// splitCSV parses a comma-separated flag value; empty means "use the
// harness default" and maps to nil.
func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// runEval executes the CC evaluation matrix through the public Eval API
// and renders the deterministic markdown + JSON reports.
func runEval(f benchFlags) error {
	m := hostcc.EvalMatrix{
		Schemes:    splitCSV(*f.evalSchemes),
		Topologies: splitCSV(*f.evalTopos),
		Workloads:  splitCSV(*f.evalWorkloads),
		Arms:       splitCSV(*f.evalArms),
	}
	opts := []hostcc.EvalOption{
		hostcc.EvalSeed(*f.seed),
		hostcc.EvalWorkers(*f.evalWorkers),
		hostcc.EvalShards(*f.shards),
	}
	if *f.evalWarmupUs > 0 || *f.evalMeasureUs > 0 {
		warmup := time.Duration(*f.evalWarmupUs) * time.Microsecond
		if warmup == 0 {
			warmup = time.Millisecond
		}
		measure := time.Duration(*f.evalMeasureUs) * time.Microsecond
		if measure == 0 {
			measure = 4 * time.Millisecond
		}
		opts = append(opts, hostcc.EvalWindows(warmup, measure))
	}
	if *f.noVerify {
		opts = append(opts, hostcc.EvalNoVerify())
	}

	start := time.Now()
	rep, err := hostcc.Eval(m, opts...)
	if err != nil {
		return fmt.Errorf("eval: %w", err)
	}
	verified := 0
	for _, c := range rep.Cells {
		if c.Verified {
			verified++
		}
	}
	shifted := 0
	hostboundShift := false
	for _, r := range rep.Rankings {
		if r.OrderingChanged {
			shifted++
			if r.Workload == "hostbound" {
				hostboundShift = true
			}
		}
	}
	fmt.Fprintf(os.Stderr, "eval: %d cells (%d replay-verified), %d/%d panes re-ranked by hostCC [%.1fs]\n",
		len(rep.Cells), verified, shifted, len(rep.Rankings), time.Since(start).Seconds())

	md := rep.Markdown()
	if *f.evalMD != "" {
		if err := os.WriteFile(*f.evalMD, []byte(md), 0o644); err != nil {
			return fmt.Errorf("eval: %w", err)
		}
		fmt.Fprintf(os.Stderr, "eval: wrote %s\n", *f.evalMD)
	} else {
		fmt.Print(md)
	}
	if *f.evalJSON != "" {
		out, err := rep.JSON()
		if err != nil {
			return fmt.Errorf("eval: %w", err)
		}
		if err := os.WriteFile(*f.evalJSON, append(out, '\n'), 0o644); err != nil {
			return fmt.Errorf("eval: %w", err)
		}
		fmt.Fprintf(os.Stderr, "eval: wrote %s\n", *f.evalJSON)
	}
	if *f.evalExpectShift && !hostboundShift {
		return fmt.Errorf("eval: no host-bottleneck pane changed its scheme ordering between hostCC arms")
	}
	return nil
}

// runTimeline runs one telemetry-enabled throughput experiment and writes
// its Chrome trace (loadable at https://ui.perfetto.dev) to path.
func runTimeline(path string, degree float64, enableHostCC bool, seed int64) error {
	opts := []hostcc.Option{
		hostcc.WithSeed(seed),
		hostcc.WithHostCongestion(degree),
		hostcc.WithTelemetry(),
		hostcc.WithMinRTO(5 * time.Millisecond),
	}
	if enableHostCC {
		opts = append(opts, hostcc.WithHostCC())
	}
	x, err := hostcc.New(opts...)
	if err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	start := time.Now()
	res := x.Run()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	defer f.Close()
	if err := res.Timeline.WriteChromeTrace(f); err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	fmt.Printf("== Timeline — %gx host congestion, hostCC=%v (seed %d)\n", degree, enableHostCC, seed)
	fmt.Printf("   throughput %.1f Gbps, drops %.4f%%\n", res.ThroughputGbps, res.DropRatePct)
	fmt.Printf("   %d spans, %d counter tracks, %d dropped -> %s [%.1fs]\n",
		res.Timeline.Spans(), res.Timeline.Tracks(), res.Timeline.Dropped(), path, time.Since(start).Seconds())
	fmt.Println("   open at https://ui.perfetto.dev (or chrome://tracing)")
	return nil
}

// runScaleOut runs one scale-out topology experiment (run twice with
// frame-by-frame digest verification unless -no-verify).
func runScaleOut(topology, scheme string, senders, receivers, flows, leaves, spines, shards,
	fluidHosts, fluidFlows, fluidPromotable int, seed int64, verify bool) error {
	start := time.Now()
	r, err := hostcc.RunScaleOut(hostcc.ScaleOutConfig{
		Topology:        topology,
		Scheme:          scheme,
		Senders:         senders,
		Receivers:       receivers,
		Flows:           flows,
		Leaves:          leaves,
		Spines:          spines,
		Shards:          shards,
		FluidHosts:      fluidHosts,
		FluidFlows:      fluidFlows,
		FluidPromotable: fluidPromotable,
		Seed:            seed,
		VerifyReplay:    verify,
	})
	if err != nil {
		return fmt.Errorf("topology %s: %w", topology, err)
	}
	fmt.Printf("== Scale-out — %s fabric (seed %d)\n", r.Topology, r.Seed)
	fmt.Printf("   %s\n", r)
	fmt.Printf("   event heap: peak %d pending of %d reserved\n", r.MaxPending, r.HeapCap)
	fmt.Printf("   [%.1fs]\n", time.Since(start).Seconds())
	return nil
}

// parallelRun is one timed execution in the -bench-parallel report.
type parallelRun struct {
	Shards         int     `json:"shards"`
	Seconds        float64 `json:"seconds"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	ThroughputGbps float64 `json:"throughput_gbps"`
	Digest         string  `json:"digest"`
}

// parallelReport is the BENCH_parallel.json schema: wall-clock timings of
// the same scale-out workload at 1, 2 and 4 shards, plus the speedup of
// each sharded run over the serial engine. Cores records how much
// hardware parallelism the timings had available — on a single-core
// machine the sharded runs pay the barrier protocol with no speedup to
// show for it, so consumers must gate speedup assertions on cores.
type parallelReport struct {
	Cores    int           `json:"cores"`
	Topology string        `json:"topology"`
	Leaves   int           `json:"leaves"`
	Spines   int           `json:"spines"`
	Senders  int           `json:"senders"`
	Seed     int64         `json:"seed"`
	Runs     []parallelRun `json:"runs"`
	// Speedup maps shard count (as a string key) to serial-seconds /
	// sharded-seconds.
	Speedup map[string]float64 `json:"speedup"`
}

// runBenchParallel times the 128-sender-class leaf-spine scale-out at 1,
// 2 and 4 shards and writes the speedup report. Runs are single-pass (no
// replay verification) so the timings measure the engine, not the
// verifier; determinism has its own test and CI job.
func runBenchParallel(path string, leaves, spines, senders, receivers, flows int, seed int64) error {
	report := parallelReport{
		Cores:    runtime.NumCPU(),
		Topology: "leafspine",
		Leaves:   leaves,
		Spines:   spines,
		Senders:  senders,
		Seed:     seed,
		Speedup:  map[string]float64{},
	}
	fmt.Printf("== Parallel engine bench — leafspine %dx%d, %d senders, %d cores (seed %d)\n",
		leaves, spines, senders, report.Cores, seed)
	var serial float64
	for _, shards := range []int{1, 2, 4} {
		start := time.Now()
		r, err := hostcc.RunScaleOut(hostcc.ScaleOutConfig{
			Topology:  "leafspine",
			Leaves:    leaves,
			Spines:    spines,
			Senders:   senders,
			Receivers: receivers,
			Flows:     flows,
			Shards:    shards,
			Seed:      seed,
		})
		if err != nil {
			return fmt.Errorf("bench-parallel (%d shards): %w", shards, err)
		}
		wall := time.Since(start).Seconds()
		run := parallelRun{
			Shards:         shards,
			Seconds:        wall,
			Events:         r.Events,
			EventsPerSec:   float64(r.Events) / wall,
			ThroughputGbps: r.ThroughputGbps,
			Digest:         fmt.Sprintf("%#016x", r.Digest),
		}
		report.Runs = append(report.Runs, run)
		if shards == 1 {
			serial = wall
		} else if wall > 0 {
			report.Speedup[fmt.Sprint(shards)] = serial / wall
		}
		fmt.Printf("   %d shard(s): %.2fs wall, %d events (%.2fM ev/s), %.1f Gbps\n",
			shards, wall, r.Events, run.EventsPerSec/1e6, r.ThroughputGbps)
	}
	for _, k := range []string{"2", "4"} {
		if s, ok := report.Speedup[k]; ok {
			fmt.Printf("   speedup at %s shards: %.2fx (over %d cores)\n", k, s, report.Cores)
		}
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("bench-parallel: %w", err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench-parallel: %w", err)
	}
	fmt.Printf("   wrote %s\n", path)
	return nil
}

// fluidRun is one timed execution in the BENCH_fluid.json report.
type fluidRun struct {
	Shards           int     `json:"shards"`
	FluidFlows       int     `json:"fluid_flows"`
	Seconds          float64 `json:"seconds"`
	Events           uint64  `json:"events"`
	FluidGoodputGbps float64 `json:"fluid_goodput_gbps"`
	ThroughputGbps   float64 `json:"throughput_gbps"`
	Digest           string  `json:"digest"`
}

// fluidReport is the BENCH_fluid.json schema: wall clock of the hybrid
// fluid/packet leaf-spine scale-out across background flow counts at 1,
// 2 and 4 shards. The headline is the scaling curve — wall clock grows
// with flow count far below linearly in events because the background
// advances per coarse tick, not per packet.
type fluidReport struct {
	Cores  int        `json:"cores"`
	Seed   int64      `json:"seed"`
	Leaves int        `json:"leaves"`
	Spines int        `json:"spines"`
	Runs   []fluidRun `json:"runs"`
}

// runBenchFluid times the fluid-tier scale-out. flowsOverride > 0 pins a
// single population size; 0 sweeps 10k / 100k / 1M background flows.
func runBenchFluid(path string, leaves, spines, flowsOverride int, seed int64) error {
	flowCounts := []int{10_000, 100_000, 1_000_000}
	if flowsOverride > 0 {
		flowCounts = []int{flowsOverride}
	}
	report := fluidReport{Cores: runtime.NumCPU(), Seed: seed, Leaves: leaves, Spines: spines}
	fmt.Printf("== Fluid tier bench — leafspine, %d cores (seed %d)\n", report.Cores, seed)
	for _, flows := range flowCounts {
		for _, shards := range []int{1, 2, 4} {
			start := time.Now()
			r, err := hostcc.RunScaleOut(hostcc.ScaleOutConfig{
				Topology: "leafspine",
				Leaves:   leaves,
				Spines:   spines,
				Senders:  8, Receivers: 2, Flows: 8,
				Shards:     shards,
				FluidHosts: max(flows/100, 2),
				FluidFlows: flows,
				Seed:       seed,
			})
			if err != nil {
				return fmt.Errorf("bench-fluid (%d flows, %d shards): %w", flows, shards, err)
			}
			wall := time.Since(start).Seconds()
			report.Runs = append(report.Runs, fluidRun{
				Shards:           shards,
				FluidFlows:       r.FluidFlows,
				Seconds:          wall,
				Events:           r.Events,
				FluidGoodputGbps: r.FluidGoodputGbps,
				ThroughputGbps:   r.ThroughputGbps,
				Digest:           fmt.Sprintf("%#016x", r.Digest),
			})
			fmt.Printf("   %7d flows, %d shard(s): %6.2fs wall, fluid %.0f Gbps, packet %.1f Gbps\n",
				r.FluidFlows, shards, wall, r.FluidGoodputGbps, r.ThroughputGbps)
		}
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("bench-fluid: %w", err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench-fluid: %w", err)
	}
	fmt.Printf("   wrote %s\n", path)
	return nil
}

// runLossless runs the PFC + DCQCN congestion-spreading study: the same
// load with hostCC off and on, one table row per arm.
func runLossless(seed int64, degree float64) error {
	start := time.Now()
	r, err := hostcc.RunLosslessStudy(hostcc.LosslessStudyConfig{Seed: seed, Degree: degree})
	if err != nil {
		return fmt.Errorf("lossless: %w", err)
	}
	fmt.Printf("== Lossless fabric — PFC + DCQCN congestion spreading, %gx MApp squeeze (seed %d)\n", degree, seed)
	fmt.Printf("   %s\n   %s\n", r.Off, r.On)
	fmt.Printf("   [%.1fs]\n", time.Since(start).Seconds())
	return nil
}

func resumeChaos(path string) error {
	start := time.Now()
	rep, err := hostcc.ResumeChaos(path)
	if err != nil {
		return fmt.Errorf("resume %s: %w", path, err)
	}
	if !rep.Verified {
		return fmt.Errorf("resume %s: replay diverged from recorded digests: %s", path, rep.Divergence)
	}
	fmt.Printf("== Replay of %s verified: %d digest frames matched [%.1fs]\n", path, rep.FramesChecked, time.Since(start).Seconds())
	fmt.Printf("   %s\n", rep.Result)
	if rep.Result.Stall != nil {
		fmt.Printf("   %s\n", rep.Result.Stall)
	}
	return nil
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

func printRows[T fmt.Stringer](title string, rows []T) {
	fmt.Println("==", title)
	for _, r := range rows {
		fmt.Println("  ", r.String())
	}
}

func printFig7(s hostcc.Scale) {
	fmt.Println("== Figure 7 — MSR read latency CDFs (independent of congestion)")
	for _, c := range hostcc.RunFigure7(s) {
		fmt.Printf("   congested=%-5v mean=%.2fus max=%.2fus points=%d\n",
			c.Congested, c.MeanUs, c.MaxUs, len(c.ValuesUs))
	}
}

func printTraces(title string, traces []hostcc.Trace) {
	fmt.Println("==", title)
	for _, tr := range traces {
		lo, hi := tr.IS.MinMax()
		fmt.Printf("   %-20s IS mean=%5.1f min=%5.1f max=%5.1f | BS mean=%6.1fG\n",
			tr.Label, tr.IS.Mean(), lo, hi, tr.BS.Mean())
	}
}

func printFig19(s hostcc.Scale) {
	tr := hostcc.RunFigure19(s)
	fmt.Println("== Figure 19 — hostCC steady state (250 us)")
	lo, hi := tr.Level.MinMax()
	fmt.Printf("   BS mean=%.1fG (target 80G + PCIe overhead)\n", tr.BS.Mean())
	fmt.Printf("   IS mean=%.1f, above I_T=70 %.0f%% of the time\n", tr.IS.Mean(), tr.IS.FractionAbove(70)*100)
	fmt.Printf("   response level range [%.0f, %.0f]\n", lo, hi)
}

package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// TestUsageGolden pins the -h output. Flag help text is documentation
// that rots silently — a renamed mode or a new flag must show up here,
// and a stale cross-reference fails the diff. Regenerate with
// UPDATE_GOLDEN=1.
func TestUsageGolden(t *testing.T) {
	fs := flag.NewFlagSet("hostcc-crucible", flag.ContinueOnError)
	registerFlags(fs)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.PrintDefaults()
	got := buf.String()

	golden := filepath.Join("testdata", "usage.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("usage output drifted from %s.\nGot:\n%s\nWant:\n%s\nIf the change is intentional, regenerate with UPDATE_GOLDEN=1.",
			golden, got, want)
	}
}

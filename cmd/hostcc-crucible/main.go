// Command hostcc-crucible drives the deterministic chaos search: it
// generates seeded random scenarios (topology × congestion control ×
// workload × fault plan), judges each against the oracle battery
// (conservation invariants, liveness verdicts, replay determinism,
// snapshot round-trips, goodput-floor and victim tail-latency
// properties), and delta-debugs every failure to a minimal JSON repro.
//
// Usage:
//
//	hostcc-crucible -seeds 64
//	hostcc-crucible -seeds 64 -out found/
//	hostcc-crucible -seeds 64 -canary pcie-extra-credit -stop
//	hostcc-crucible -repro internal/crucible/testdata/corpus/pause-loss-wedge.json
//	hostcc-crucible -corpus internal/crucible/testdata/corpus
//
// Search mode exits 1 when any scenario fails its battery (the findings
// and their minimized repros are printed, and written with -out); replay
// modes exit 1 when a repro no longer reproduces its recorded verdict.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/crucible"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hostcc-crucible:", err)
		os.Exit(1)
	}
}

// crucibleFlags holds every hostcc-crucible flag; registerFlags binds
// them to a FlagSet so the usage output is testable (see usage_test.go).
type crucibleFlags struct {
	seeds     *int
	seedStart *int64
	budget    *int
	maxInj    *int
	floor     *float64
	rttBudget *int
	victim    *time.Duration
	canary    *string
	stop      *bool
	out       *string
	repro     *string
	corpus    *string
	quiet     *bool
}

func registerFlags(fs *flag.FlagSet) *crucibleFlags {
	return &crucibleFlags{
		seeds:     fs.Int("seeds", 16, "number of consecutive generator seeds to search"),
		seedStart: fs.Int64("seed-start", 1, "first generator seed"),
		budget:    fs.Int("budget", 40, "oracle-battery runs allowed per shrink"),
		maxInj:    fs.Int("max-injections", 3, "max fault injections per generated scenario"),
		floor:     fs.Float64("floor", 30, "goodput-floor oracle: required recovery percentage of the pre-fault baseline (negative disables)"),
		rttBudget: fs.Int("rtt-budget", 150, "goodput-floor oracle: recovery budget in RTTs"),
		victim:    fs.Duration("victim-p999", 0, "victim tail oracle: P99.9 RPC latency bound (0 disables)"),
		canary:    fs.String("canary", "", "arm a planted bug on every scenario (self-test; only \"pcie-extra-credit\")"),
		stop:      fs.Bool("stop", false, "stop the search at the first failing scenario"),
		out:       fs.String("out", "", "directory to write minimized repro JSON files into"),
		repro:     fs.String("repro", "", "replay one repro file and verify its recorded verdict, then exit"),
		corpus:    fs.String("corpus", "", "replay every repro in a directory and verify each verdict, then exit"),
		quiet:     fs.Bool("q", false, "suppress per-seed progress lines"),
	}
}

func run() error {
	fs := flag.NewFlagSet("hostcc-crucible", flag.ExitOnError)
	f := registerFlags(fs)
	fs.Parse(os.Args[1:])

	switch {
	case *f.repro != "":
		return replayOne(*f.repro)
	case *f.corpus != "":
		return replayCorpus(*f.corpus)
	}
	return search(f)
}

func replayOne(path string) error {
	r, err := crucible.ReadRepro(path)
	if err != nil {
		return err
	}
	v, err := crucible.Replay(r)
	if err != nil {
		return fmt.Errorf("%s: %w\nverdict: %s", path, err, v)
	}
	fmt.Printf("%s: reproduced %s\n", path, v.Signature())
	return nil
}

func replayCorpus(dir string) error {
	paths, err := crucible.CorpusFiles(dir)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no repro files in %s", dir)
	}
	var failed int
	for _, path := range paths {
		if err := replayOne(path); err != nil {
			failed++
			fmt.Fprintln(os.Stderr, "hostcc-crucible:", err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d repros no longer reproduce", failed, len(paths))
	}
	fmt.Printf("corpus ok: %d repros reproduced\n", len(paths))
	return nil
}

func search(f *crucibleFlags) error {
	if *f.canary != "" && *f.canary != crucible.CanaryPCIeExtraCredit {
		return fmt.Errorf("unknown canary %q (only %q)", *f.canary, crucible.CanaryPCIeExtraCredit)
	}
	cfg := crucible.SearchConfig{
		SeedStart: *f.seedStart,
		Seeds:     *f.seeds,
		Gen: crucible.GenConfig{
			MaxInjections:     *f.maxInj,
			GoodputFloorPct:   *f.floor,
			RecoveryRTTBudget: *f.rttBudget,
			VictimP999Ns:      int64(*f.victim),
			Canary:            *f.canary,
		},
		ShrinkBudget: *f.budget,
		StopAtFirst:  *f.stop,
	}
	if !*f.quiet {
		cfg.Log = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	start := time.Now()
	res := crucible.Search(cfg)
	st := res.Stats
	fmt.Printf("searched %d scenario(s), %d battery run(s) (%d shrinking) in %v: %d failure(s)\n",
		st.Scenarios, st.Runs, st.ShrinkRuns, time.Since(start).Round(time.Millisecond), st.Failures)
	for oracle, n := range st.ByOracle {
		fmt.Printf("  failed %s: %d\n", oracle, n)
	}
	for _, fd := range res.Findings {
		fmt.Printf("seed %d: %s\n  minimized to %d injection(s): %s\n",
			fd.Seed, fd.Verdict, len(fd.Minimized.Faults), fd.MinVerdict)
		if *f.out != "" {
			if err := os.MkdirAll(*f.out, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*f.out, fmt.Sprintf("seed-%d-%s.json", fd.Seed, fd.MinVerdict.Signature()))
			note := fmt.Sprintf("found by hostcc-crucible seed sweep; original draw had %d injection(s)", len(fd.Scenario.Faults))
			if err := crucible.WriteRepro(path, fd.Repro(note)); err != nil {
				return err
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}
	if len(res.Findings) > 0 {
		return fmt.Errorf("%d scenario(s) failed the oracle battery", len(res.Findings))
	}
	return nil
}

package pcie

import (
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Snapshot encodes the link's credit and serializer state. The waiter list
// holds closures; its length is encoded (it is part of the observable state
// a digest must cover) but cannot be reconstituted by Restore.
func (l *Link) Snapshot(e *snapshot.Encoder) {
	e.Int(l.credits)
	e.I64(int64(l.busyUntil))
	e.Int(len(l.waiters))
	e.Bool(l.stalled)
	e.Int(l.stalledCredits)
	l.Stalls.Snapshot(e)
	l.Sent.Snapshot(e)
	l.Releases.Snapshot(e)
}

// Restore reverses Snapshot for the scalar state; waiter callbacks are
// replay-reconstructed (see package snapshot).
func (l *Link) Restore(d *snapshot.Decoder) error {
	l.credits = d.Int()
	l.busyUntil = sim.Time(d.I64())
	_ = d.Int() // waiter count: digest-only
	l.stalled = d.Bool()
	l.stalledCredits = d.Int()
	if err := l.Stalls.Restore(d); err != nil {
		return err
	}
	if err := l.Sent.Restore(d); err != nil {
		return err
	}
	return l.Releases.Restore(d)
}

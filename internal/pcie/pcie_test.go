package pcie

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func mkPkt(size int) *packet.Packet {
	return &packet.Packet{PayloadLen: size - packet.HeaderLen}
}

func TestSegmentation(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewLink(e, DefaultConfig(), func(*TLP) {})
	p := mkPkt(4096 + packet.HeaderLen) // wire = 4166
	tlps := l.Segment(p)
	if len(tlps) != 9 { // ceil(4166/512)
		t.Fatalf("got %d TLPs, want 9", len(tlps))
	}
	total := 0
	for i, tlp := range tlps {
		total += tlp.DataBytes
		if tlp.WireBytes != tlp.DataBytes+26 {
			t.Fatalf("TLP %d wire bytes %d", i, tlp.WireBytes)
		}
		if tlp.First != (i == 0) || tlp.Last != (i == len(tlps)-1) {
			t.Fatalf("TLP %d first/last flags wrong", i)
		}
		if want := (tlp.WireBytes + 63) / 64; tlp.Lines != want {
			t.Fatalf("TLP %d lines = %d, want %d", i, tlp.Lines, want)
		}
	}
	if total != p.WireLen() {
		t.Fatalf("TLP data sums to %d, want %d", total, p.WireLen())
	}
}

func TestCreditsConsumeAndRelease(t *testing.T) {
	e := sim.NewEngine(1)
	var got []*TLP
	l := NewLink(e, DefaultConfig(), func(tlp *TLP) { got = append(got, tlp) })
	tlps := l.Segment(mkPkt(4096 + packet.HeaderLen))

	sent := 0
	for _, tlp := range tlps {
		if !l.TrySend(tlp) {
			break
		}
		sent++
	}
	// The packet has 9 TLPs (8 full at 8 lines + final 304B at 5 lines =
	// 69 lines), all fitting within the 93-line pool.
	if sent != 9 {
		t.Fatalf("sent %d TLPs before stalling, want 9", sent)
	}
	if l.Credits() != 93-69 {
		t.Fatalf("credits = %d, want 24", l.Credits())
	}
	// A second packet must stall after three TLPs (24 - 3x8 = 0).
	tlps2 := l.Segment(mkPkt(4096 + packet.HeaderLen))
	sent2 := 0
	for _, tlp := range tlps2 {
		if !l.TrySend(tlp) {
			break
		}
		sent2++
	}
	if sent2 != 3 {
		t.Fatalf("second packet sent %d TLPs, want 3", sent2)
	}
	if l.Stalls.Total() != 1 {
		t.Fatalf("stalls = %d", l.Stalls.Total())
	}

	woke := false
	l.NotifyCredits(func() { woke = true })
	l.ReleaseCredits(8)
	if !woke {
		t.Fatal("credit release did not wake waiter")
	}
	e.Run()
	if len(got) != 12 {
		t.Fatalf("delivered %d TLPs, want 12", len(got))
	}
}

func TestSerializationAndLatency(t *testing.T) {
	e := sim.NewEngine(1)
	var at []sim.Time
	cfg := DefaultConfig()
	l := NewLink(e, cfg, func(*TLP) { at = append(at, e.Now()) })
	tlps := l.Segment(mkPkt(1024 + packet.HeaderLen)) // 1094B: 3 TLPs
	for _, tlp := range tlps {
		if !l.TrySend(tlp) {
			t.Fatal("unexpected stall")
		}
	}
	e.Run()
	if len(at) != 3 {
		t.Fatalf("delivered %d", len(at))
	}
	// First TLP: 512B wire at 128Gbps = 32ns, plus the 60ns link latency.
	want0 := cfg.Rate.TimeFor(512) + cfg.Latency
	if at[0] != want0 {
		t.Fatalf("first TLP at %v, want %v", at[0], want0)
	}
	// Deliveries are serialized back-to-back, strictly increasing.
	if !(at[0] < at[1] && at[1] < at[2]) {
		t.Fatalf("deliveries not serialized: %v", at)
	}
}

func TestThroughputBoundedByLineRate(t *testing.T) {
	e := sim.NewEngine(1)
	delivered := 0
	var l *Link
	l = NewLink(e, DefaultConfig(), func(tlp *TLP) {
		delivered += tlp.WireBytes
		l.ReleaseCredits(tlp.Lines) // instant replenish: best case
	})
	var feed func()
	feed = func() {
		if e.Now() > 1*sim.Millisecond {
			return
		}
		for _, tlp := range l.Segment(mkPkt(4096 + packet.HeaderLen)) {
			if !l.TrySend(tlp) {
				l.NotifyCredits(feed)
				return
			}
		}
		e.After(0, feed)
	}
	feed()
	e.RunUntil(1 * sim.Millisecond)
	rate := sim.Rate(float64(delivered) / e.Now().Seconds())
	if rate.Gbps() > 128.1 {
		t.Fatalf("delivered %.1f Gbps > 128 raw", rate.Gbps())
	}
	if rate.Gbps() < 120 {
		t.Fatalf("delivered %.1f Gbps; expected near line rate with instant credits", rate.Gbps())
	}
}

func TestCreditOverflowPanics(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewLink(e, DefaultConfig(), func(*TLP) {})
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	l.ReleaseCredits(1)
}

func TestOversizedTLPPanics(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewLink(e, DefaultConfig(), func(*TLP) {})
	defer func() {
		if recover() == nil {
			t.Error("oversized TLP did not panic")
		}
	}()
	l.TrySend(&TLP{Lines: 94, WireBytes: 94 * 64})
}

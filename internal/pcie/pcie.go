// Package pcie models the peripheral interconnect between the NIC and the
// IIO: a lossless link with credit-based flow control (§2.1).
//
// DMA is executed as Transaction Layer Packets (TLPs). The NIC may issue a
// TLP only while enough credits are available; the IIO replenishes a TLP's
// credits only once it has issued the corresponding write to the memory
// system. When memory is congested, replenishment slows, credits run out,
// the PCIe link goes idle, and the NIC buffer backs up — the middle of the
// paper's domino effect.
//
// Credits are accounted in 64-byte-line units so that IIO occupancy (the
// hostCC congestion signal) and the credit cap live on the same scale: the
// paper's servers show occupancy ≈65 uncongested and ≈93 (the credit
// limit) at saturation.
package pcie

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Config parameterizes the link. Defaults model PCIe 3.0 x16: 128 Gbps
// raw, with 26 B of TLP header per 486 B payload (so a full TLP occupies
// exactly eight 64 B lines, and ≈105 Gbps of PCIe bandwidth carries a
// 100 Gbps packet stream — the ~103 Gbps "including PCIe overheads"
// measured in Figure 8).
type Config struct {
	Rate        sim.Rate // raw link bandwidth
	Latency     sim.Time // NIC-to-IIO propagation (ℓp)
	TLPBytes    int      // max payload per TLP
	TLPOverhead int      // header bytes per TLP
	CreditLines int      // credit pool, in 64 B lines (P in §3.1)
}

// DefaultConfig returns the paper-calibrated link.
func DefaultConfig() Config {
	return Config{
		Rate:        sim.Gbps(128),
		Latency:     60 * sim.Nanosecond,
		TLPBytes:    486,
		TLPOverhead: 26,
		CreditLines: 93,
	}
}

// TLP is one transaction in flight from NIC to IIO. TLPs are recycled
// through a per-link free list: the NIC acquires them via SegmentInto and
// the IIO returns them with ReleaseTLP once the DMA write has been issued.
type TLP struct {
	Pkt       *packet.Packet
	DataBytes int  // packet bytes carried
	WireBytes int  // DataBytes + header overhead
	Lines     int  // credit lines consumed (ceil(WireBytes/64))
	First     bool // first TLP of its packet
	Last      bool // last TLP of its packet
}

// Link is the credit-flow-controlled NIC→IIO path.
type Link struct {
	e   *sim.Engine
	cfg Config

	credits   int
	busyUntil sim.Time
	deliver   func(*TLP)

	// waiters/waiterScratch double-buffer the credit waiter list: waking
	// waiters swaps the buffers instead of nil-ing the slice, so the NIC's
	// stall/resume cycle (one NotifyCredits per stall) never reallocates.
	waiters       []func()
	waiterScratch []func()

	// deliverH + inflight carry TLPs through propagation-delay events
	// without a closure per TLP; tlpFree recycles TLP structs.
	deliverH sim.HandlerID
	inflight sim.Slots[*TLP]
	tlpFree  []*TLP

	// Credit-stall fault injection: while engaged, credits released by
	// the IIO are sequestered instead of returning to the pool.
	stalled        bool
	stalledCredits int

	// canaryExtraCredit is a deliberately planted off-by-one: when armed,
	// clearing a credit stall returns one credit line more than was
	// sequestered. It exists so the crucible chaos search has a known bug
	// to find (the pool overflows the moment the leaked line meets a full
	// pool) and must never be set outside that self-test.
	canaryExtraCredit bool

	// Telemetry tracks (nil when disabled — Set is then a nil check).
	trCredits *telemetry.Track
	trStalls  *telemetry.Track

	// Stalls counts TLP issue attempts deferred for lack of credits.
	Stalls stats.Counter
	// Sent counts TLPs delivered to the IIO.
	Sent stats.Counter
	// Releases counts credit lines actually returned to the pool
	// (sequestered releases do NOT count — the liveness sentinel uses this
	// as its credit-motion probe, and a wedged release path must read flat).
	Releases stats.Counter
}

// NewLink creates a link delivering TLPs to the IIO via deliver.
func NewLink(e *sim.Engine, cfg Config, deliver func(*TLP)) *Link {
	if cfg.Rate <= 0 || cfg.TLPBytes <= 0 || cfg.CreditLines <= 0 {
		panic("pcie: invalid config")
	}
	if deliver == nil {
		panic("pcie: nil deliver")
	}
	l := &Link{e: e, cfg: cfg, credits: cfg.CreditLines, deliver: deliver}
	l.deliverH = e.Handler(l.deliverTLP)
	return l
}

// deliverTLP is the propagation-delay event handler; arg0 is the slot of
// the in-flight TLP.
func (l *Link) deliverTLP(slot, _ uint64) {
	t := l.inflight.Take(slot)
	l.Sent.Inc()
	l.deliver(t)
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// SetTracer attaches counter tracks for the credit pool and credit-stall
// count, named under prefix.
func (l *Link) SetTracer(t *telemetry.Tracer, prefix string) {
	l.trCredits = t.NewTrack(prefix+"/pcie/credits", "lines")
	l.trStalls = t.NewTrack(prefix+"/pcie/credit-stalls", "stalls")
	l.trCredits.Set(l.e.Now(), float64(l.credits))
}

// RegisterInstruments registers the link's metrics under prefix.
func (l *Link) RegisterInstruments(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/pcie/sent", "tlps", "TLPs delivered to the IIO",
		func() float64 { return float64(l.Sent.Total()) })
	reg.Counter(prefix+"/pcie/credit-stalls", "stalls", "TLP issues deferred for lack of credits",
		func() float64 { return float64(l.Stalls.Total()) })
	reg.Counter(prefix+"/pcie/credit-releases", "lines", "credit lines returned to the pool",
		func() float64 { return float64(l.Releases.Total()) })
	reg.Gauge(prefix+"/pcie/credits", "lines", "available credit lines",
		func() float64 { return float64(l.credits) })
}

// Credits returns the currently available credit lines.
func (l *Link) Credits() int { return l.credits }

// Segment splits a packet into TLPs.
func (l *Link) Segment(p *packet.Packet) []*TLP {
	return l.SegmentInto(p, nil)
}

// SegmentInto splits a packet into TLPs, appending to buf (reusing its
// backing array) and drawing TLP structs from the link's free list. The
// caller must hand every TLP onward to the IIO, which returns it with
// ReleaseTLP; in steady state segmentation allocates nothing.
func (l *Link) SegmentInto(p *packet.Packet, buf []*TLP) []*TLP {
	total := p.WireLen()
	tlps := buf[:0]
	for off := 0; off < total; off += l.cfg.TLPBytes {
		data := min(l.cfg.TLPBytes, total-off)
		wire := data + l.cfg.TLPOverhead
		t := l.getTLP()
		*t = TLP{
			Pkt:       p,
			DataBytes: data,
			WireBytes: wire,
			Lines:     (wire + 63) / 64,
			First:     off == 0,
			Last:      off+data >= total,
		}
		tlps = append(tlps, t)
	}
	return tlps
}

func (l *Link) getTLP() *TLP {
	if n := len(l.tlpFree); n > 0 {
		t := l.tlpFree[n-1]
		l.tlpFree[n-1] = nil
		l.tlpFree = l.tlpFree[:n-1]
		return t
	}
	return &TLP{}
}

// ReleaseTLP returns a TLP to the link's free list. The IIO calls this
// once it is done with the transaction; the TLP must not be referenced
// afterwards.
func (l *Link) ReleaseTLP(t *TLP) {
	t.Pkt = nil
	l.tlpFree = append(l.tlpFree, t)
}

// TrySend issues one TLP if credits allow, consuming its credits and
// occupying the link for its serialization time. It reports whether the
// TLP was accepted. On refusal the caller should wait for NotifyCredits.
func (l *Link) TrySend(t *TLP) bool {
	if t.Lines > l.cfg.CreditLines {
		panic("pcie: TLP larger than the entire credit pool")
	}
	if l.credits < t.Lines {
		l.Stalls.Inc()
		l.trStalls.Set(l.e.Now(), float64(l.Stalls.Total()))
		return false
	}
	l.credits -= t.Lines
	l.trCredits.Set(l.e.Now(), float64(l.credits))
	start := max(l.e.Now(), l.busyUntil)
	txDone := start + l.cfg.Rate.TimeFor(t.WireBytes)
	l.busyUntil = txDone
	l.e.Schedule(txDone+l.cfg.Latency, l.deliverH, l.inflight.Put(t), 0)
	return true
}

// SerializerBusy reports whether the link is currently transmitting.
func (l *Link) SerializerBusy() bool { return l.busyUntil > l.e.Now() }

// ReleaseCredits returns lines to the pool (called by the IIO when a write
// has been issued to memory) and wakes any waiters. While a credit stall
// is engaged (fault injection) the lines are sequestered instead; they
// return to the pool when the stall clears.
func (l *Link) ReleaseCredits(lines int) {
	if lines <= 0 {
		panic("pcie: releasing non-positive credits")
	}
	if l.stalled {
		l.stalledCredits += lines
		if l.credits+l.stalledCredits > l.cfg.CreditLines {
			panic("pcie: credit pool overflow — release without matching consume")
		}
		return
	}
	l.credits += lines
	if l.credits > l.cfg.CreditLines {
		panic("pcie: credit pool overflow — release without matching consume")
	}
	l.Releases.Add(int64(lines))
	l.trCredits.Set(l.e.Now(), float64(l.credits))
	l.wakeWaiters()
}

// wakeWaiters runs and clears the registered credit waiters. Waiters
// registered during the wake (a resumed pump stalling again) land in the
// scratch buffer, which becomes the active list for the next release.
func (l *Link) wakeWaiters() {
	if len(l.waiters) == 0 {
		return
	}
	ws := l.waiters
	l.waiters = l.waiterScratch[:0]
	for i, w := range ws {
		ws[i] = nil
		w()
	}
	l.waiterScratch = ws[:0]
}

// ForceReclaim returns sequestered credits to the pool without clearing the
// stall — the sentinel's credit-timeout escape hatch, analogous to a PFC
// watchdog freeing a wedged priority. It returns the number of lines
// reclaimed. Releases issued while the stall remains engaged continue to be
// sequestered, so a persistent fault re-wedges until it clears.
func (l *Link) ForceReclaim() int {
	if l.stalledCredits == 0 {
		return 0
	}
	n := l.stalledCredits
	l.stalledCredits = 0
	l.credits += n
	if l.credits > l.cfg.CreditLines {
		panic("pcie: credit pool overflow — reclaim without matching consume")
	}
	l.Releases.Add(int64(n))
	l.trCredits.Set(l.e.Now(), float64(l.credits))
	l.wakeWaiters()
	return n
}

// NotifyCredits registers a one-shot callback invoked on the next credit
// release (the NIC's DMA engine uses this to resume a stalled pump).
func (l *Link) NotifyCredits(fn func()) {
	l.waiters = append(l.waiters, fn)
}

// SetStall engages or clears a replenishment stall (fault injection: a
// wedged IIO credit return path). While engaged, released credits are
// sequestered, the pool drains as the NIC keeps issuing, and DMA stops
// when it hits zero — the domino effect of §2.1 forced from the middle.
// Clearing the stall returns the sequestered credits and wakes waiters.
func (l *Link) SetStall(on bool) {
	if l.stalled == on {
		return
	}
	l.stalled = on
	if !on && l.stalledCredits > 0 {
		n := l.stalledCredits
		l.stalledCredits = 0
		if l.canaryExtraCredit {
			n++ // planted off-by-one: see ArmCanaryExtraCredit
		}
		l.ReleaseCredits(n)
	}
}

// ArmCanaryExtraCredit plants the canary bug: every credit-stall clear
// returns one extra line. FOR THE CRUCIBLE SELF-TEST ONLY — an armed
// canary breaks credit conservation by design.
func (l *Link) ArmCanaryExtraCredit() { l.canaryExtraCredit = true }

// CreditStalled reports whether a replenishment stall is engaged.
func (l *Link) CreditStalled() bool { return l.stalled }

// SequesteredCredits returns credits withheld by an engaged stall.
func (l *Link) SequesteredCredits() int { return l.stalledCredits }

// Validate reports the first invalid parameter (NewLink panics on the
// same conditions; Validate lets callers check first).
func (c Config) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("pcie: Rate %v must be positive", c.Rate)
	}
	if c.TLPBytes <= 0 {
		return fmt.Errorf("pcie: TLPBytes %d must be positive", c.TLPBytes)
	}
	if c.TLPOverhead < 0 {
		return fmt.Errorf("pcie: negative TLPOverhead %d", c.TLPOverhead)
	}
	if c.CreditLines <= 0 {
		return fmt.Errorf("pcie: CreditLines %d must be positive", c.CreditLines)
	}
	return nil
}

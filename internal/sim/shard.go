package sim

import "sort"

// ShardGroup couples several Engines into one parallel simulation using
// conservative (lookahead-based) synchronization, the loose coupling
// SimBricks applies between component simulators. Each shard owns its
// device models and runs on its own goroutine; shards interact only
// through Boundaries — timestamped message channels whose minimum delay
// is the group's lookahead L. The coordinator advances the group in
// windows: with every shard quiesced at barrier time T and the earliest
// pending event anywhere at E >= T, no shard can emit a message before E,
// and a message emitted at t arrives at t+delay >= E+L — so every shard
// may safely run to E+L without missing a cross-shard arrival. At the
// barrier the coordinator drains every boundary outbox and schedules the
// messages into their destination engines in a deterministic merge order:
// ascending arrival time, ties broken by boundary creation order and
// per-boundary sequence. Destination-side event seq assignment therefore
// never depends on goroutine interleaving, which is what makes a
// multi-shard run reproduce its digest timeline run over run.
//
// Degenerate boundaries whose delay is below MinLookahead do not shrink
// the window to zero (that would deadlock progress): the window is
// clamped to at least MinLookahead and their messages are delivered at
// max(arrival time, barrier time) — the group degrades to lockstep with
// a bounded delivery skew instead of hanging.
type ShardGroup struct {
	shards []*Engine
	bounds []*Boundary   // creation order (the deterministic tiebreak)
	inBnd  [][]*Boundary // boundaries grouped by destination shard
	hooks  []*GroupHook

	now       Time
	minLA     Time
	stopped   bool
	workers   []*shardWorker
	scratch   []inflightMsg
	exchanged uint64 // cross-shard messages delivered so far
}

// DefaultMinLookahead is the smallest synchronization window the group
// will use even when a boundary's delay is (near-)zero.
const DefaultMinLookahead = Microsecond

// farFuture is the horizon used when no boundary constrains progress; it
// is effectively "run to the deadline" while staying safely below Time
// overflow when lookahead is added to an event timestamp.
const farFuture = Time(1) << 61

// NewShardGroup creates n engines with deterministically derived
// per-shard seeds. Shard 0's engine uses the group seed itself.
func NewShardGroup(seed int64, n int) *ShardGroup {
	if n < 1 {
		panic("sim: ShardGroup needs at least one shard")
	}
	g := &ShardGroup{minLA: DefaultMinLookahead}
	for i := 0; i < n; i++ {
		s := seed
		if i > 0 {
			// Spread the streams so shard i of seed s never aliases
			// shard j of seed s' (golden-ratio multiplicative hash).
			s = seed ^ (int64(i) * -0x61c8864680b583eb)
		}
		g.shards = append(g.shards, NewEngine(s))
		g.inBnd = append(g.inBnd, nil)
	}
	return g
}

// Shards returns the shard count.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i's engine. Models built on it must only be
// touched from that engine's events (or between Run calls, when every
// shard is quiesced at the same barrier time).
func (g *ShardGroup) Shard(i int) *Engine { return g.shards[i] }

// SetMinLookahead overrides the lower clamp of the synchronization
// window (see DefaultMinLookahead). Call before the first Run.
func (g *ShardGroup) SetMinLookahead(d Time) {
	if d <= 0 {
		panic("sim: non-positive minimum lookahead")
	}
	g.minLA = d
}

// Lookahead returns the group's conservative window: the minimum
// boundary delay, clamped from below by the minimum lookahead.
func (g *ShardGroup) Lookahead() Time {
	la := farFuture
	for _, b := range g.bounds {
		if b.delay < la {
			la = b.delay
		}
	}
	if la < g.minLA {
		la = g.minLA
	}
	return la
}

// Now returns the group's barrier time. Between Run calls every shard's
// clock equals it.
func (g *ShardGroup) Now() Time { return g.now }

// Pending sums queued events across shards (quiesced reads only).
func (g *ShardGroup) Pending() int {
	n := 0
	for _, e := range g.shards {
		n += e.Pending()
	}
	return n
}

// ProcessedEvents sums executed events across shards.
func (g *ShardGroup) ProcessedEvents() uint64 {
	var n uint64
	for _, e := range g.shards {
		n += e.Processed
	}
	return n
}

// Exchanged returns how many cross-shard messages have been delivered.
func (g *ShardGroup) Exchanged() uint64 { return g.exchanged }

// Stop makes the current RunUntil return at the next barrier. Safe to
// call from a coordinator hook (or between runs); shard events must not
// call it — they would stop only their own engine's window.
func (g *ShardGroup) Stop() { g.stopped = true }

// boundMsg is one cross-shard message in flight.
type boundMsg struct {
	at      Time
	seq     uint64 // per-boundary sequence: the stable tiebreak
	a0, a1  uint64
	payload any
}

// inflightMsg pairs a drained message with its boundary during the merge.
type inflightMsg struct {
	b *Boundary
	m boundMsg
}

// Boundary is a one-directional cross-shard message channel with a fixed
// minimum delay (its lookahead contribution). The source shard appends
// messages to the outbox during its window (no locking: the outbox is
// only touched by the source worker inside a window and by the
// coordinator at barriers, which the worker handshake orders). The
// coordinator merges outboxes deterministically and schedules delivery
// events on the destination engine; deliveries pop the boundary's FIFO
// inbox, whose order matches the scheduled order by construction.
type Boundary struct {
	g        *ShardGroup
	src, dst int
	delay    Time
	deliver  func(a0, a1 uint64, payload any)
	recvH    HandlerID // on the destination engine

	seq    uint64
	outbox []boundMsg
	inbox  []boundMsg
	head   int
}

// Connect creates a boundary from shard src to shard dst whose messages
// take at least delay to cross (delay is exported as lookahead). deliver
// runs on the destination engine at each message's arrival time. Must be
// called at build time, before the group runs.
func (g *ShardGroup) Connect(src, dst int, delay Time, deliver func(a0, a1 uint64, payload any)) *Boundary {
	if src < 0 || src >= len(g.shards) || dst < 0 || dst >= len(g.shards) {
		panic("sim: boundary endpoint outside the shard group")
	}
	if delay < 0 {
		panic("sim: negative boundary delay")
	}
	if deliver == nil {
		panic("sim: nil boundary deliver")
	}
	b := &Boundary{g: g, src: src, dst: dst, delay: delay, deliver: deliver}
	b.recvH = g.shards[dst].Handler(b.recvEvent)
	g.bounds = append(g.bounds, b)
	g.inBnd[dst] = append(g.inBnd[dst], b)
	return b
}

// Delay returns the boundary's minimum crossing delay.
func (b *Boundary) Delay() Time { return b.delay }

// Send queues one message for arrival at absolute time at (>= source
// now + the boundary delay for full timing fidelity; earlier arrivals
// are clamped to the delivering barrier). Call only from the source
// shard's events.
func (b *Boundary) Send(at Time, a0, a1 uint64, payload any) {
	b.seq++
	b.outbox = append(b.outbox, boundMsg{at: at, seq: b.seq, a0: a0, a1: a1, payload: payload})
}

// recvEvent runs on the destination engine; deliveries pop the FIFO
// inbox, which the coordinator filled in scheduled order.
func (b *Boundary) recvEvent(_, _ uint64) {
	m := b.inbox[b.head]
	b.inbox[b.head] = boundMsg{}
	b.head++
	if b.head == len(b.inbox) {
		b.inbox = b.inbox[:0]
		b.head = 0
	}
	b.deliver(m.a0, m.a1, m.payload)
}

// GroupHook is a periodic coordinator callback: it runs at barriers,
// with every shard quiesced at the same time — the sharded analogue of a
// Ticker for digest recorders, sentinels and window marks. Hook times
// bound the window, so a hook fires exactly at its due time.
type GroupHook struct {
	period  Time
	next    Time
	fn      func()
	stopped bool
}

// Every registers a hook firing every period, first at now+period.
func (g *ShardGroup) Every(period Time, fn func()) *GroupHook {
	if period <= 0 {
		panic("sim: non-positive hook period")
	}
	if fn == nil {
		panic("sim: nil hook")
	}
	h := &GroupHook{period: period, next: g.now + period, fn: fn}
	g.hooks = append(g.hooks, h)
	return h
}

// Stop halts the hook.
func (h *GroupHook) Stop() { h.stopped = true }

// shardWorker is one shard's persistent run goroutine. The channel
// handshake orders every coordinator access to a shard's state against
// the worker's window (and vice versa), so barrier-time reads and the
// outbox drain need no locks.
type shardWorker struct {
	e    *Engine
	cmd  chan Time
	done chan struct{}
}

func (w *shardWorker) loop() {
	for deadline := range w.cmd {
		w.e.RunUntil(deadline)
		w.done <- struct{}{}
	}
}

// start spawns the workers on first use.
func (g *ShardGroup) start() {
	if g.workers != nil {
		return
	}
	for _, e := range g.shards {
		w := &shardWorker{e: e, cmd: make(chan Time), done: make(chan struct{})}
		g.workers = append(g.workers, w)
		go w.loop()
	}
}

// Close terminates the worker goroutines. The group may not run again.
func (g *ShardGroup) Close() {
	for _, w := range g.workers {
		close(w.cmd)
	}
	g.workers = nil
}

// minNextEvent returns the earliest pending event timestamp across
// shards (quiesced read).
func (g *ShardGroup) minNextEvent() (Time, bool) {
	var at Time
	any := false
	for _, e := range g.shards {
		if t, ok := e.NextEventAt(); ok && (!any || t < at) {
			at, any = t, true
		}
	}
	return at, any
}

// nextHookAt returns the earliest due time among live hooks.
func (g *ShardGroup) nextHookAt() (Time, bool) {
	var at Time
	any := false
	for _, h := range g.hooks {
		if !h.stopped && (!any || h.next < at) {
			at, any = h.next, true
		}
	}
	return at, any
}

// safeHorizon picks the next barrier: the conservative bound E+L capped
// by the deadline and the next hook time.
func (g *ShardGroup) safeHorizon(deadline, lookahead Time) Time {
	target := deadline
	if earliest, any := g.minNextEvent(); any {
		base := earliest
		if base < g.now {
			base = g.now
		}
		if t := base + lookahead; t < target {
			target = t
		}
	}
	if h, ok := g.nextHookAt(); ok && h < target {
		target = h
	}
	if target <= g.now {
		// Only reachable through a hook already due at the barrier (fired
		// there) or a zero-length window request; force progress.
		target = g.now + lookahead
		if target > deadline {
			target = deadline
		}
	}
	return target
}

// runWindow advances every shard to target in parallel and waits for all
// of them (the barrier).
func (g *ShardGroup) runWindow(target Time) {
	for _, w := range g.workers {
		w.cmd <- target
	}
	for _, w := range g.workers {
		<-w.done
	}
}

// exchange drains every boundary outbox and schedules the messages into
// their destination engines in the deterministic merge order.
func (g *ShardGroup) exchange() {
	for dst, bl := range g.inBnd {
		if len(bl) == 0 {
			continue
		}
		g.scratch = g.scratch[:0]
		for _, b := range bl {
			for i := range b.outbox {
				g.scratch = append(g.scratch, inflightMsg{b: b, m: b.outbox[i]})
				b.outbox[i] = boundMsg{}
			}
			b.outbox = b.outbox[:0]
		}
		if len(g.scratch) == 0 {
			continue
		}
		// Stable sort by arrival time: ties keep collection order, i.e.
		// (boundary creation order, per-boundary sequence) — the
		// deterministic tiebreak. Restricted to one boundary the order is
		// its send order, so FIFO inbox pops match the scheduled order.
		sort.SliceStable(g.scratch, func(i, j int) bool {
			return g.scratch[i].m.at < g.scratch[j].m.at
		})
		e := g.shards[dst]
		for _, im := range g.scratch {
			at := im.m.at
			if at < e.Now() {
				at = e.Now() // degenerate-delay clamp: deliver at the barrier
			}
			im.b.inbox = append(im.b.inbox, im.m)
			e.Schedule(at, im.b.recvH, 0, 0)
			g.exchanged++
		}
	}
	clear(g.scratch)
}

// fireHooks runs every hook due at the current barrier.
func (g *ShardGroup) fireHooks() {
	for _, h := range g.hooks {
		for !h.stopped && h.next <= g.now {
			h.fn()
			h.next += h.period
		}
	}
}

// RunUntil advances the group to deadline through conservative windows,
// then leaves every shard's clock at the deadline (or at the aborting
// barrier if Stop was called from a hook).
func (g *ShardGroup) RunUntil(deadline Time) {
	g.start()
	g.stopped = false
	lookahead := g.Lookahead()
	for !g.stopped && g.now < deadline {
		target := g.safeHorizon(deadline, lookahead)
		g.runWindow(target)
		g.now = target
		g.exchange()
		g.fireHooks()
	}
}

// RunFor advances the group by d.
func (g *ShardGroup) RunFor(d Time) { g.RunUntil(g.now + d) }

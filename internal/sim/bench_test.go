package sim

import "testing"

// BenchmarkEngineScheduleDispatch measures the allocation-free hot path:
// one Schedule + one dispatched event per iteration, with the self-
// rescheduling shape (handler schedules the next event) that dominates
// the simulator's steady state.
func BenchmarkEngineScheduleDispatch(b *testing.B) {
	e := NewEngine(1)
	var h HandlerID
	h = e.Handler(func(arg0, _ uint64) {
		e.ScheduleAfter(1, h, arg0+1, 0)
	})
	e.ScheduleAfter(1, h, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineHeap measures heap push/pop with a realistic standing
// population (hundreds of pending events), which is where heap arity and
// memory layout matter.
func BenchmarkEngineHeap(b *testing.B) {
	e := NewEngine(1)
	h := e.Handler(func(_, _ uint64) {})
	const standing = 512
	for i := 0; i < standing; i++ {
		// Pseudo-random insertion times so the heap actually reorders.
		e.Schedule(Time((i*2654435761)%100000), h, 0, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+Time((i*2654435761)%100000)+1, h, 0, 0)
		e.Step()
	}
}

// BenchmarkEngineClosureShim measures the At/After compatibility path:
// one closure event per iteration (costs the caller's closure allocation,
// but no queue-side allocation).
func BenchmarkEngineClosureShim(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Step()
	}
}

// BenchmarkEngineTimerReset measures the Timer Reset/fire cycle used by
// every transport retransmission and delayed-ACK timer.
func BenchmarkEngineTimerReset(b *testing.B) {
	e := NewEngine(1)
	fired := 0
	t := NewTimer(e, func() { fired++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Reset(1)
		e.Step()
	}
	if fired != b.N {
		b.Fatalf("fired %d of %d", fired, b.N)
	}
}

// TestEngineZeroAllocPerEvent is the regression guard behind the
// benchmarks: the Schedule/Step cycle must not allocate in steady state.
func TestEngineZeroAllocPerEvent(t *testing.T) {
	e := NewEngine(1)
	var h HandlerID
	h = e.Handler(func(arg0, _ uint64) {
		e.ScheduleAfter(1, h, arg0+1, 0)
	})
	e.ScheduleAfter(1, h, 0, 0)
	// Warm the heap and closure tables.
	for i := 0; i < 1000; i++ {
		e.Step()
	}
	if allocs := testing.AllocsPerRun(1000, func() { e.Step() }); allocs != 0 {
		t.Fatalf("Schedule/Step allocates %.1f per event; want 0", allocs)
	}
}

// TestTimerZeroAllocSteadyState guards the Timer Reset/fire cycle.
func TestTimerZeroAllocSteadyState(t *testing.T) {
	e := NewEngine(1)
	tm := NewTimer(e, func() {})
	for i := 0; i < 100; i++ {
		tm.Reset(1)
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Reset(1)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("Timer Reset/fire allocates %.1f per cycle; want 0", allocs)
	}
}

// TestHeapZeroAllocWarm guards the heap: once the backing array has grown
// to the standing population, push/pop never allocate.
func TestHeapZeroAllocWarm(t *testing.T) {
	e := NewEngine(1)
	h := e.Handler(func(_, _ uint64) {})
	for i := 0; i < 600; i++ {
		e.Schedule(Time((i*2654435761)%100000), h, 0, 0)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		e.Schedule(e.Now()+Time((i*2654435761)%100000)+1, h, 0, 0)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("warm heap push/pop allocates %.1f per cycle; want 0", allocs)
	}
}

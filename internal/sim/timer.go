package sim

// Timer is a cancellable, resettable one-shot timer, analogous to
// time.Timer but driven by simulated time. It is the building block for
// transport retransmission timers (RTO, TLP) and periodic samplers.
//
// The zero value is not usable; create timers with NewTimer.
type Timer struct {
	e   *Engine
	fn  func()
	h   HandlerID
	gen uint64 // incremented on Stop/Reset to invalidate in-flight events
	at  Time
	set bool
}

// NewTimer returns an unarmed timer that will invoke fn when it fires.
// The timer registers one engine handler at construction, so Reset/Stop
// cycles are allocation-free no matter how often the timer re-arms.
func NewTimer(e *Engine, fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	t := &Timer{e: e, fn: fn}
	t.h = e.Handler(t.fire)
	return t
}

// fire is the timer's engine handler; arg0 carries the generation the
// firing was scheduled under, so stale events from before a Reset/Stop
// are recognized and dropped.
func (t *Timer) fire(gen, _ uint64) {
	if t.gen != gen || !t.set {
		return // superseded by Reset or Stop
	}
	t.set = false
	t.fn()
}

// Reset (re-)arms the timer to fire d from now, replacing any pending firing.
func (t *Timer) Reset(d Time) {
	t.gen++
	t.set = true
	t.at = t.e.Now() + max(d, 0)
	t.e.Schedule(t.at, t.h, t.gen, 0)
}

// ResetAt arms the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.Reset(at - t.e.Now())
}

// Stop disarms the timer. It reports whether a firing was pending.
func (t *Timer) Stop() bool {
	was := t.set
	t.set = false
	t.gen++
	return was
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.set }

// Deadline returns the absolute fire time; meaningful only when Pending.
func (t *Timer) Deadline() Time { return t.at }

// Ticker invokes fn every interval until stopped. It is used for the
// hostCC signal sampler and for time-series recorders.
type Ticker struct {
	t        *Timer
	interval Time
	fn       func()
}

// NewTicker starts a ticker whose first tick is one interval from now.
func NewTicker(e *Engine, interval Time, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: NewTicker with non-positive interval")
	}
	tk := &Ticker{interval: interval, fn: fn}
	tk.t = NewTimer(e, tk.tick)
	tk.t.Reset(interval)
	return tk
}

func (tk *Ticker) tick() {
	tk.fn()
	tk.t.Reset(tk.interval)
}

// SetInterval changes the tick period, effective from the next rearm.
func (tk *Ticker) SetInterval(d Time) {
	if d <= 0 {
		panic("sim: SetInterval with non-positive interval")
	}
	tk.interval = d
}

// Stop halts the ticker.
func (tk *Ticker) Stop() { tk.t.Stop() }

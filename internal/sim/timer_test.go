package sim

import "testing"

// Timer edge cases around generation invalidation: events already in the
// engine queue must not fire a timer that was cancelled or re-armed after
// they were scheduled.

func TestTimerCancelThenFireSameTick(t *testing.T) {
	// Stop the timer at the exact instant its firing event runs. The
	// cancel event is scheduled first, so it executes first at t=100;
	// the already-queued firing must then be a no-op.
	e := NewEngine(1)
	fires := 0
	tm := NewTimer(e, func() { fires++ })
	e.At(100, func() { tm.Stop() })
	tm.Reset(100)
	e.Run()
	if fires != 0 {
		t.Fatalf("timer fired %d times after same-tick cancel", fires)
	}
	if tm.Pending() {
		t.Fatal("timer still pending after Stop")
	}
}

func TestTimerCancelThenRearm(t *testing.T) {
	// Stop then Reset before the original deadline: only the new deadline
	// fires, exactly once.
	e := NewEngine(1)
	var fired []Time
	tm := NewTimer(e, func() { fired = append(fired, e.Now()) })
	tm.Reset(100)
	e.At(40, func() {
		tm.Stop()
		tm.Reset(100) // new deadline 140
	})
	e.Run()
	if len(fired) != 1 || fired[0] != 140 {
		t.Fatalf("fired = %v, want [140]", fired)
	}
}

func TestTimerRearmInsideCallback(t *testing.T) {
	// Re-arming from inside the firing callback must schedule a fresh
	// firing and not be suppressed by the generation check.
	e := NewEngine(1)
	var fired []Time
	var tm *Timer
	tm = NewTimer(e, func() {
		fired = append(fired, e.Now())
		if len(fired) < 3 {
			tm.Reset(50)
		}
	})
	tm.Reset(50)
	e.Run()
	want := []Time{50, 100, 150}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
	if tm.Pending() {
		t.Fatal("timer pending after final fire without re-arm")
	}
}

func TestTimerZeroDelayFiresAfterCurrentEvent(t *testing.T) {
	// Reset(0) from inside an event runs strictly after that event
	// completes (same instant, later sequence number).
	e := NewEngine(1)
	var order []string
	tm := NewTimer(e, func() { order = append(order, "timer") })
	e.At(10, func() {
		tm.Reset(0)
		order = append(order, "event")
	})
	e.Run()
	if len(order) != 2 || order[0] != "event" || order[1] != "timer" {
		t.Fatalf("order = %v, want [event timer]", order)
	}
	if e.Now() != 10 {
		t.Fatalf("now = %v, want 10", e.Now())
	}
}

func TestTimerSameTickOrdering(t *testing.T) {
	// Two timers armed for the same instant fire in arming order (FIFO by
	// engine sequence), and a third armed later at the same instant runs
	// after both.
	e := NewEngine(1)
	var order []string
	a := NewTimer(e, func() { order = append(order, "a") })
	b := NewTimer(e, func() { order = append(order, "b") })
	c := NewTimer(e, func() { order = append(order, "c") })
	a.Reset(20)
	b.Reset(20)
	c.Reset(20)
	// Re-arm a for the same deadline: its firing event is now the newest,
	// so it must run after b and c.
	a.Reset(20)
	e.Run()
	want := []string{"b", "c", "a"}
	if len(order) != 3 {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

package sim

// Slots is a recycling slot table that maps values to dense uint64 keys,
// letting components thread pointers through the scalar args of a
// handler-table event without allocating. Put parks a value and returns
// its slot; Take retrieves it and frees the slot for reuse. The zero
// value is ready to use.
//
// Slot indices recycle LIFO, so a component that parks one value per
// in-flight event keeps its table as small as its peak concurrency.
type Slots[T any] struct {
	vals []T
	free []uint32
}

// Put parks v and returns its slot key.
func (s *Slots[T]) Put(v T) uint64 {
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		s.vals[slot] = v
		return uint64(slot)
	}
	s.vals = append(s.vals, v)
	return uint64(len(s.vals) - 1)
}

// Take retrieves the value parked at slot and frees the slot. The vacated
// entry is zeroed so the table never retains pointers past their event.
func (s *Slots[T]) Take(slot uint64) T {
	v := s.vals[slot]
	var zero T
	s.vals[slot] = zero
	s.free = append(s.free, uint32(slot))
	return v
}

// Len reports how many slots are currently occupied.
func (s *Slots[T]) Len() int { return len(s.vals) - len(s.free) }

// Reset drops all parked values and recycled slots.
func (s *Slots[T]) Reset() {
	var zero T
	for i := range s.vals {
		s.vals[i] = zero
	}
	s.vals = s.vals[:0]
	s.free = s.free[:0]
}

package sim

import (
	"reflect"
	"testing"
)

// pingPongTrace runs a two-shard ping-pong (each side echoes back after
// a local timer) and returns the delivery trace.
func pingPongTrace(t *testing.T, delay Time, rounds int) []Time {
	t.Helper()
	g := NewShardGroup(7, 2)
	defer g.Close()
	var trace []Time
	var b01, b10 *Boundary
	left := 0
	b01 = g.Connect(0, 1, delay, func(a0, _ uint64, _ any) {
		e := g.Shard(1)
		trace = append(trace, e.Now())
		if int(a0) < rounds {
			b10.Send(e.Now()+delay, a0+1, 0, nil)
		}
	})
	b10 = g.Connect(1, 0, delay, func(a0, _ uint64, _ any) {
		e := g.Shard(0)
		trace = append(trace, e.Now())
		left++
		if int(a0) < rounds {
			b01.Send(e.Now()+delay, a0+1, 0, nil)
		}
	})
	g.Shard(0).At(0, func() { b01.Send(g.Shard(0).Now()+delay, 1, 0, nil) })
	g.RunUntil(Time(rounds+2) * (delay + Millisecond))
	return trace
}

func TestShardPingPongTiming(t *testing.T) {
	const delay = 5 * Microsecond
	trace := pingPongTrace(t, delay, 8)
	if len(trace) != 8 {
		t.Fatalf("got %d deliveries, want 8", len(trace))
	}
	for i, at := range trace {
		want := Time(i+1) * delay
		if at != want {
			t.Fatalf("delivery %d at %v, want %v", i, at, want)
		}
	}
}

// TestShardZeroDelayLockstep: a zero-delay boundary must degrade to
// minimum-lookahead lockstep windows, not deadlock, and deliveries are
// clamped to at most one window late.
func TestShardZeroDelayLockstep(t *testing.T) {
	g := NewShardGroup(1, 2)
	defer g.Close()
	if got := g.Lookahead(); got != farFuture {
		t.Fatalf("unconstrained lookahead = %v, want farFuture", got)
	}
	var arrivals []Time
	b := g.Connect(0, 1, 0, func(_, _ uint64, _ any) {
		arrivals = append(arrivals, g.Shard(1).Now())
	})
	if got := g.Lookahead(); got != DefaultMinLookahead {
		t.Fatalf("zero-delay lookahead = %v, want MinLookahead %v", got, DefaultMinLookahead)
	}
	const n = 50
	tick := 0
	NewTicker(g.Shard(0), Microsecond/2, func() {
		tick++
		if tick <= n {
			b.Send(g.Shard(0).Now(), uint64(tick), 0, nil)
		}
	})
	g.RunUntil(Millisecond) // would hang forever on deadlock
	if len(arrivals) != n {
		t.Fatalf("got %d arrivals, want %d", len(arrivals), n)
	}
	for i, at := range arrivals {
		sent := Time(i+1) * (Microsecond / 2)
		if at < sent {
			t.Fatalf("arrival %d at %v before send %v", i, at, sent)
		}
		if at > sent+DefaultMinLookahead {
			t.Fatalf("arrival %d at %v, > one lockstep window after send %v", i, at, sent)
		}
	}
}

// TestShardTimerOnHorizon: a timer due exactly at a window horizon must
// fire exactly once at its due time — horizon T belongs to the closing
// window (RunUntil is inclusive), and the next window starts after it.
func TestShardTimerOnHorizon(t *testing.T) {
	const delay = 10 * Microsecond
	g := NewShardGroup(3, 2)
	defer g.Close()
	b := g.Connect(0, 1, delay, func(_, _ uint64, _ any) {})
	// Window 1 covers (0, E+L] with E=0: horizon is exactly `delay`.
	g.Shard(0).At(0, func() { b.Send(delay, 0, 0, nil) })
	fired := 0
	var firedAt Time
	tm := NewTimer(g.Shard(1), func() { fired++; firedAt = g.Shard(1).Now() })
	tm.ResetAt(delay) // exactly on shard 1's first horizon
	g.RunUntil(Millisecond)
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1", fired)
	}
	if firedAt != delay {
		t.Fatalf("timer fired at %v, want %v (the horizon)", firedAt, delay)
	}
}

// TestShardHookCadence: coordinator hooks fire at exact multiples of
// their period even when the lookahead windows don't align with them.
func TestShardHookCadence(t *testing.T) {
	g := NewShardGroup(9, 2)
	defer g.Close()
	b := g.Connect(0, 1, 7*Microsecond, func(_, _ uint64, _ any) {})
	NewTicker(g.Shard(0), 3*Microsecond, func() {
		b.Send(g.Shard(0).Now()+7*Microsecond, 0, 0, nil)
	})
	var at []Time
	g.Every(10*Microsecond, func() {
		if g.Now() != g.Shard(0).Now() || g.Now() != g.Shard(1).Now() {
			t.Fatalf("hook ran unquiesced: group %v, shards %v/%v",
				g.Now(), g.Shard(0).Now(), g.Shard(1).Now())
		}
		at = append(at, g.Now())
	})
	g.RunUntil(100 * Microsecond)
	if len(at) != 10 {
		t.Fatalf("hook fired %d times, want 10", len(at))
	}
	for i, ht := range at {
		if want := Time(i+1) * 10 * Microsecond; ht != want {
			t.Fatalf("hook %d at %v, want %v", i, ht, want)
		}
	}
}

// TestShardRunTwiceDeterministic: identical builds produce identical
// delivery traces (and identical RNG draw counts) despite goroutine
// scheduling being out of our control.
func TestShardRunTwiceDeterministic(t *testing.T) {
	run := func() ([4][]Time, [4][]uint64, uint64) {
		g := NewShardGroup(11, 4)
		defer g.Close()
		// Per-shard traces: delivery closures run on their own shard's
		// goroutine, so they must not share mutable state across shards.
		var trace [4][]Time
		var order [4][]uint64
		bs := make([]*Boundary, 4)
		for i := 0; i < 4; i++ {
			src, dst := i, (i+1)%4
			id := uint64(i)
			bs[i] = g.Connect(src, dst, Time(3+i)*Microsecond, func(a0, _ uint64, _ any) {
				e := g.Shard(dst)
				trace[dst] = append(trace[dst], e.Now())
				order[dst] = append(order[dst], id<<32|a0)
				if a0 < 40 {
					bs[dst].Send(e.Now()+bs[dst].Delay()+Time(e.Rand().Intn(5))*Microsecond, a0+1, 0, nil)
				}
			})
		}
		for i := 0; i < 4; i++ {
			e := g.Shard(i)
			i := i
			e.At(Time(i)*Microsecond, func() { bs[i].Send(e.Now()+bs[i].Delay(), 1, 0, nil) })
		}
		g.RunUntil(2 * Millisecond)
		return trace, order, g.Exchanged()
	}
	t1, o1, x1 := run()
	t2, o2, x2 := run()
	if x1 == 0 {
		t.Fatal("no cross-shard messages exchanged")
	}
	if x1 != x2 || !reflect.DeepEqual(t1, t2) || !reflect.DeepEqual(o1, o2) {
		t.Fatalf("runs diverged: %d vs %d messages", x1, x2)
	}
}

// TestShardStopFromHook: Stop from a coordinator hook halts at that
// barrier with every shard aligned.
func TestShardStopFromHook(t *testing.T) {
	g := NewShardGroup(5, 2)
	defer g.Close()
	g.Connect(0, 1, Microsecond, func(_, _ uint64, _ any) {})
	NewTicker(g.Shard(0), Microsecond, func() {})
	var h *GroupHook
	h = g.Every(20*Microsecond, func() {
		if g.Now() >= 60*Microsecond {
			g.Stop()
			h.Stop()
		}
	})
	g.RunUntil(Millisecond)
	if g.Now() != 60*Microsecond {
		t.Fatalf("stopped at %v, want 60µs", g.Now())
	}
	if g.Shard(0).Now() != g.Now() || g.Shard(1).Now() != g.Now() {
		t.Fatalf("shards misaligned after stop: %v/%v vs %v",
			g.Shard(0).Now(), g.Shard(1).Now(), g.Now())
	}
	// The group must be restartable after a stop.
	g.RunUntil(Millisecond)
	if g.Now() != Millisecond {
		t.Fatalf("resume ended at %v, want 1ms", g.Now())
	}
}

// TestShardSentinelBarrierWait: a sentinel watching a quiesced-but-
// progressing group must not trip, and a wait graph whose only "waiting"
// nodes are shard barrier waits (Moving=true) classifies as idle, not
// deadlock.
func TestShardSentinelBarrierWait(t *testing.T) {
	g := NewShardGroup(13, 2)
	defer g.Close()
	b := g.Connect(0, 1, 5*Microsecond, func(_, _ uint64, _ any) {})
	var delivered uint64
	b2 := g.Connect(1, 0, 5*Microsecond, func(_, _ uint64, _ any) { delivered++ })
	_ = b2
	NewTicker(g.Shard(0), 10*Microsecond, func() {
		b.Send(g.Shard(0).Now()+5*Microsecond, 0, 0, nil)
	})
	s := NewSentinelOn(g, SentinelConfig{Window: 40 * Microsecond, Policy: SentinelAbort})
	s.AddProbe("exchanged", g.Exchanged)
	s.SetGraphBuilder(func() *WaitGraph {
		w := NewWaitGraph()
		// Barrier waits are not wedged: the shard is demand-less from the
		// graph's perspective (Moving=true), so classification can never
		// report a deadlock out of ordinary windowed synchronization.
		w.AddNodeKind("shard/0", "barrier", true, true, "at barrier")
		w.AddNodeKind("shard/1", "barrier", true, true, "at barrier")
		w.AddEdge("shard/0", "shard/1", "awaits horizon")
		w.AddEdge("shard/1", "shard/0", "awaits horizon")
		return w
	})
	s.Start()
	g.Every(10*Microsecond, s.Check)
	g.RunUntil(500 * Microsecond)
	if g.Now() != 500*Microsecond {
		t.Fatalf("sentinel aborted a healthy sharded run at %v", g.Now())
	}
	if s.Report() != nil {
		t.Fatalf("unexpected stall report: %v", s.Report())
	}
	if s.Checks == 0 {
		t.Fatal("sentinel never checked")
	}
	// Even when forced to classify, pure barrier waits are StallIdle.
	w := NewWaitGraph()
	w.AddNodeKind("shard/0", "barrier", true, true, "at barrier")
	w.AddNodeKind("shard/1", "barrier", true, true, "at barrier")
	w.AddEdge("shard/0", "shard/1", "awaits horizon")
	w.AddEdge("shard/1", "shard/0", "awaits horizon")
	if class, _ := w.Classify(); class != StallIdle {
		t.Fatalf("barrier-wait graph classified as %v, want %v", class, StallIdle)
	}
}

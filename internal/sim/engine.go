package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same instant
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler.
//
// All model callbacks run from (*Engine).Run variants on the calling
// goroutine; models therefore never need synchronization. The engine owns a
// seeded RNG so that runs are deterministic and reproducible.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	seed    int64
	src     *countingSource
	rng     *rand.Rand
	stopped bool

	// Processed counts events executed so far; useful for perf accounting.
	Processed uint64
}

// countingSource wraps the standard seeded source and counts draws, making
// RNG state snapshotable: the sequence is unchanged (every call delegates),
// and a snapshot records only (seed, draws) — Restore fast-forwards a fresh
// source by the same number of draws. Int63 and Uint64 both advance the
// underlying generator by exactly one step, so the fast-forward does not
// need to know which mix of calls consumed the draws.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// NewEngine returns an engine at time zero with a deterministic RNG.
func NewEngine(seed int64) *Engine {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Engine{seed: seed, src: src, rng: rand.New(src)}
}

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// RNGDraws returns how many values have been drawn from the engine RNG's
// source (the replay cursor of the RNG state).
func (e *Engine) RNGDraws() uint64 { return e.src.draws }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: silently reordering time would corrupt every
// queueing model built on the engine.
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative delays clamp
// to zero (run "immediately after" the current event).
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.events) }

// Stop makes the current Run call return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	e.Processed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to the deadline (even if the queue still holds later events).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 || e.events[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

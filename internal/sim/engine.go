package sim

import (
	"fmt"
	"math/rand"
)

// HandlerID names a pre-registered event handler (see Engine.Handler).
// The zero value is reserved as "no handler", so a zero Callback is inert.
type HandlerID uint32

// Callback pairs a handler with its scalar arguments. Components whose
// completion paths are allocation-sensitive (the memory controller, the
// IIO) accept a Callback instead of a closure: scheduling one costs no
// allocation, while a closure costs one per event.
type Callback struct {
	ID         HandlerID
	Arg0, Arg1 uint64
}

// Set reports whether the callback names a handler.
func (cb Callback) Set() bool { return cb.ID != 0 }

// event is one scheduled occurrence. It is all scalars — no closure, no
// interface — so the heap is a flat []event that the GC never scans and
// push/pop never allocate.
type event struct {
	at         Time
	seq        uint64 // FIFO tie-break for events at the same instant
	id         HandlerID
	arg0, arg1 uint64
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by (at, seq). 4-ary
// beats binary here: one fewer level per ~2x fan-out means fewer cache
// lines touched per pop, and the hot comparison loop over four children
// stays in one or two lines of the backing array. Because (at, seq) is a
// total order (seq is unique), the pop sequence is identical to any other
// min-heap's — heap shape cannot perturb simulation order.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

func evLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	ev := h.ev
	i := len(ev) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !evLess(&e, &ev[p]) {
			break
		}
		ev[i] = ev[p]
		i = p
	}
	ev[i] = e
}

// pop removes and returns the minimum event. Unlike the old
// container/heap implementation there is no per-pop boxed copy and no
// zeroing write of the vacated slot: events hold no pointers, so the
// shrunken tail needs no clearing for the GC's sake.
func (h *eventHeap) pop() event {
	ev := h.ev
	root := ev[0]
	n := len(ev) - 1
	last := ev[n]
	h.ev = ev[:n]
	if n > 0 {
		h.siftDown(last)
	}
	return root
}

// siftDown places e starting at the root, moving smaller children up.
func (h *eventHeap) siftDown(e event) {
	ev := h.ev
	n := len(ev)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if evLess(&ev[j], &ev[m]) {
				m = j
			}
		}
		if !evLess(&ev[m], &e) {
			break
		}
		ev[i] = ev[m]
		i = m
	}
	ev[i] = e
}

// Engine is a single-threaded discrete-event scheduler.
//
// All model callbacks run from (*Engine).Run variants on the calling
// goroutine; models therefore never need synchronization. The engine owns a
// seeded RNG so that runs are deterministic and reproducible.
//
// The hot-path API is handler-based: register a handler once with Handler,
// then Schedule/ScheduleAfter events carrying two scalar arguments — zero
// allocations per event in steady state. The closure API (At/After) remains
// as a compatibility shim for low-rate callers; each closure event parks
// its func in a recycled slot table and costs only the closure allocation
// the caller already made.
type Engine struct {
	now     Time
	seq     uint64
	q       eventHeap
	seed    int64
	src     *countingSource
	rng     *rand.Rand
	stopped bool

	handlers []func(arg0, arg1 uint64)

	// Closure-shim slot table: At/After park their func here and schedule
	// the trampoline handler with the slot index as arg0. Slots recycle
	// through a free list, so sustained closure traffic does not grow it.
	closureH    HandlerID
	closures    []func()
	closureFree []uint32

	// Processed counts events executed so far; useful for perf accounting.
	Processed uint64

	// maxPending is the high-water mark of the event queue — diagnostic
	// only (Reserve sizing audits), deliberately excluded from Snapshot.
	maxPending int
}

// countingSource wraps the standard seeded source and counts draws, making
// RNG state snapshotable: the sequence is unchanged (every call delegates),
// and a snapshot records only (seed, draws) — Restore fast-forwards a fresh
// source by the same number of draws. Int63 and Uint64 both advance the
// underlying generator by exactly one step, so the fast-forward does not
// need to know which mix of calls consumed the draws.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// defaultHeapHint pre-sizes the event heap: a loaded testbed keeps a few
// hundred events pending, so starting at 1024 avoids every warm-up
// regrowth without wasting memory on unit-test engines.
const defaultHeapHint = 1024

// NewEngine returns an engine at time zero with a deterministic RNG.
func NewEngine(seed int64) *Engine {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	e := &Engine{seed: seed, src: src, rng: rand.New(src)}
	e.q.ev = make([]event, 0, defaultHeapHint)
	e.closureH = e.Handler(e.runClosure)
	return e
}

// Reserve pre-sizes the event heap's backing array for at least n pending
// events (a Config hint from the experiment harness), so warm-up never
// pays heap regrowth copies. It never shrinks.
func (e *Engine) Reserve(n int) {
	if n <= cap(e.q.ev) {
		return
	}
	grown := make([]event, len(e.q.ev), n)
	copy(grown, e.q.ev)
	e.q.ev = grown
}

// Handler registers fn and returns its ID for use with Schedule. Handlers
// are registered once per component at construction time; registration
// order must be deterministic (it is, under the single-threaded engine),
// but IDs carry no meaning across engines and are never serialized.
func (e *Engine) Handler(fn func(arg0, arg1 uint64)) HandlerID {
	if fn == nil {
		panic("sim: Handler with nil func")
	}
	e.handlers = append(e.handlers, fn)
	return HandlerID(len(e.handlers)) // IDs start at 1; 0 means "unset"
}

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// RNGDraws returns how many values have been drawn from the engine RNG's
// source (the replay cursor of the RNG state).
func (e *Engine) RNGDraws() uint64 { return e.src.draws }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule arranges for handler id to run at absolute time t with the
// given arguments. This is the allocation-free hot path. Scheduling in the
// past is a programming error and panics: silently reordering time would
// corrupt every queueing model built on the engine.
func (e *Engine) Schedule(t Time, id HandlerID, arg0, arg1 uint64) {
	if id == 0 || int(id) > len(e.handlers) {
		panic(fmt.Sprintf("sim: Schedule with unregistered handler %d", id))
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	e.q.push(event{at: t, seq: e.seq, id: id, arg0: arg0, arg1: arg1})
	if n := len(e.q.ev); n > e.maxPending {
		e.maxPending = n
	}
}

// ScheduleAfter schedules handler id to run d nanoseconds from now.
// Negative delays clamp to zero.
func (e *Engine) ScheduleAfter(d Time, id HandlerID, arg0, arg1 uint64) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, id, arg0, arg1)
}

// Invoke schedules a Callback at absolute time t (no-op when unset).
func (e *Engine) Invoke(t Time, cb Callback) {
	e.Schedule(t, cb.ID, cb.Arg0, cb.Arg1)
}

// Dispatch invokes a handler synchronously, without scheduling an event.
// Components use it to run a caller-supplied Callback from inside their
// own event (e.g. a completion notification) exactly as they would have
// called a closure.
func (e *Engine) Dispatch(id HandlerID, arg0, arg1 uint64) {
	if id == 0 || int(id) > len(e.handlers) {
		panic(fmt.Sprintf("sim: Dispatch with unregistered handler %d", id))
	}
	e.handlers[id-1](arg0, arg1)
}

// At schedules fn to run at absolute time t (closure compatibility shim;
// prefer Handler/Schedule on high-rate paths).
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	var slot uint32
	if n := len(e.closureFree); n > 0 {
		slot = e.closureFree[n-1]
		e.closureFree = e.closureFree[:n-1]
		e.closures[slot] = fn
	} else {
		slot = uint32(len(e.closures))
		e.closures = append(e.closures, fn)
	}
	e.Schedule(t, e.closureH, uint64(slot), 0)
}

// runClosure is the trampoline handler behind the At/After shim.
func (e *Engine) runClosure(slot, _ uint64) {
	fn := e.closures[slot]
	e.closures[slot] = nil // release the closure; the slot recycles
	e.closureFree = append(e.closureFree, uint32(slot))
	fn()
}

// After schedules fn to run d nanoseconds from now. Negative delays clamp
// to zero (run "immediately after" the current event).
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return e.q.len() }

// NextEventAt peeks the timestamp of the earliest queued event. The
// second return is false when the queue is empty. ShardGroup uses this
// at barriers to bound the next conservative window.
func (e *Engine) NextEventAt() (Time, bool) {
	if e.q.len() == 0 {
		return 0, false
	}
	return e.q.ev[0].at, true
}

// MaxPending reports the high-water mark of the event queue over the
// engine's lifetime (Reserve sizing audits).
func (e *Engine) MaxPending() int { return e.maxPending }

// HeapCap reports the event heap's backing capacity. Comparing it before
// and after a run detects regrowth — a Reserve hint that was too small —
// with no hot-path cost.
func (e *Engine) HeapCap() int { return cap(e.q.ev) }

// Stop makes the current Run call return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if e.q.len() == 0 {
		return false
	}
	ev := e.q.pop()
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	e.Processed++
	e.handlers[ev.id-1](ev.arg0, ev.arg1)
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to the deadline (even if the queue still holds later events).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if e.q.len() == 0 || e.q.ev[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

package sim

import (
	"fmt"
	"strings"
)

// WaitNode is one resource or actor in a wait-for graph. A node is "wedged"
// when it has demand (work it wants to do) but is not moving (made no
// progress over the observation window). Only wedged nodes participate in
// deadlock detection: a cycle through a node that is still moving is a
// pipeline, not a deadlock.
type WaitNode struct {
	Name   string
	Demand bool
	Moving bool
	Detail string // human-readable state, e.g. "0/64 credit lines free"
	// Kind tags the resource class the node represents ("" for the
	// classic host datapath resources, "pfc" for paused fabric ports).
	// Classification uses it to name a cycle made entirely of PFC pauses
	// as a pfc-cycle rather than a generic deadlock.
	Kind string
}

type waitEdge struct {
	to    int
	label string
}

// WaitGraph is a small directed graph of "X waits for Y" relations, built
// by the testbed at stall-detection time and classified by the sentinel.
// Node and edge insertion order is preserved, so traversal — and therefore
// the reported cycle — is deterministic.
type WaitGraph struct {
	nodes []WaitNode
	index map[string]int
	edges [][]waitEdge
}

// NewWaitGraph returns an empty graph.
func NewWaitGraph() *WaitGraph {
	return &WaitGraph{index: make(map[string]int)}
}

// AddNode inserts a node. Re-adding a name panics: the builder constructs
// the graph in one pass, so a duplicate is a programming error.
func (g *WaitGraph) AddNode(name string, demand, moving bool, detail string) {
	g.AddNodeKind(name, "", demand, moving, detail)
}

// AddNodeKind inserts a node tagged with a resource kind (see WaitNode.Kind).
func (g *WaitGraph) AddNodeKind(name, kind string, demand, moving bool, detail string) {
	if _, dup := g.index[name]; dup {
		panic(fmt.Sprintf("sim: duplicate wait-graph node %q", name))
	}
	g.index[name] = len(g.nodes)
	g.nodes = append(g.nodes, WaitNode{Name: name, Demand: demand, Moving: moving, Detail: detail, Kind: kind})
	g.edges = append(g.edges, nil)
}

// AddEdge records "from waits for to". Both nodes must already exist.
func (g *WaitGraph) AddEdge(from, to, label string) {
	fi, ok := g.index[from]
	if !ok {
		panic(fmt.Sprintf("sim: wait-graph edge from unknown node %q", from))
	}
	ti, ok := g.index[to]
	if !ok {
		panic(fmt.Sprintf("sim: wait-graph edge to unknown node %q", to))
	}
	g.edges[fi] = append(g.edges[fi], waitEdge{to: ti, label: label})
}

// Nodes returns the nodes in insertion order.
func (g *WaitGraph) Nodes() []WaitNode {
	return append([]WaitNode(nil), g.nodes...)
}

func (g *WaitGraph) wedged(i int) bool {
	return g.nodes[i].Demand && !g.nodes[i].Moving
}

// StallClass is the sentinel's verdict on a detected stall.
type StallClass int

const (
	// StallIdle: nothing is wedged — the quiescence was benign (no node
	// both wants progress and is blocked).
	StallIdle StallClass = iota
	// StallStarvation: wedged nodes exist but form no wait cycle; something
	// is blocked on a resource that is simply not being produced.
	StallStarvation
	// StallDeadlock: a cycle of wedged nodes each waiting on the next —
	// e.g. a PCIe credit loop where the NIC waits for credits and the
	// credit-release path is itself wedged.
	StallDeadlock
	// StallPFCCycle: a deadlock whose cycle consists entirely of paused
	// fabric ports (WaitNode.Kind "pfc") — a PFC pause loop across trunks,
	// the lossless-fabric storm/deadlock signature. Distinct from
	// StallDeadlock so the verdict names the failing layer: the fabric's
	// flow control, not the host's credit machinery.
	StallPFCCycle
)

func (c StallClass) String() string {
	switch c {
	case StallIdle:
		return "idle"
	case StallStarvation:
		return "starvation"
	case StallDeadlock:
		return "deadlock"
	case StallPFCCycle:
		return "pfc-cycle"
	}
	return fmt.Sprintf("StallClass(%d)", int(c))
}

// FindCycle searches for a cycle among wedged nodes, following only edges
// whose endpoints are both wedged. It returns the cycle's node names in
// traversal order, or nil. The DFS visits nodes and edges in insertion
// order, so the answer is deterministic for a deterministically built graph.
func (g *WaitGraph) FindCycle() []string {
	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	state := make([]int, len(g.nodes))
	var stack []int
	var cycle []string
	var dfs func(n int) bool
	dfs = func(n int) bool {
		state[n] = onStack
		stack = append(stack, n)
		for _, e := range g.edges[n] {
			if !g.wedged(e.to) {
				continue
			}
			switch state[e.to] {
			case onStack:
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] == e.to {
						for _, m := range stack[i:] {
							cycle = append(cycle, g.nodes[m].Name)
						}
						return true
					}
				}
			case unvisited:
				if dfs(e.to) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = done
		return false
	}
	for i := range g.nodes {
		if g.wedged(i) && state[i] == unvisited {
			if dfs(i) {
				return cycle
			}
		}
	}
	return nil
}

// Classify renders the verdict: pfc-cycle (a cycle made entirely of
// paused fabric ports), deadlock (with the cycle members), starvation
// (with the wedged nodes), or idle.
func (g *WaitGraph) Classify() (StallClass, []string) {
	if cycle := g.FindCycle(); cycle != nil {
		allPFC := true
		for _, name := range cycle {
			if g.nodes[g.index[name]].Kind != "pfc" {
				allPFC = false
				break
			}
		}
		if allPFC {
			return StallPFCCycle, cycle
		}
		return StallDeadlock, cycle
	}
	var wedged []string
	for i := range g.nodes {
		if g.wedged(i) {
			wedged = append(wedged, g.nodes[i].Name)
		}
	}
	if len(wedged) > 0 {
		return StallStarvation, wedged
	}
	return StallIdle, nil
}

// String renders the graph as a multi-line diagnostic.
func (g *WaitGraph) String() string {
	var b strings.Builder
	b.WriteString("wait-for graph:\n")
	for i, n := range g.nodes {
		flags := make([]string, 0, 2)
		if n.Demand {
			flags = append(flags, "demand")
		}
		if n.Moving {
			flags = append(flags, "moving")
		}
		if g.wedged(i) {
			flags = append(flags, "WEDGED")
		}
		fmt.Fprintf(&b, "  %-14s [%s] %s\n", n.Name, strings.Join(flags, " "), n.Detail)
	}
	for i, es := range g.edges {
		for _, e := range es {
			fmt.Fprintf(&b, "  %s -> %s: %s\n", g.nodes[i].Name, g.nodes[e.to].Name, e.label)
		}
	}
	class, members := g.Classify()
	fmt.Fprintf(&b, "  classification: %s", class)
	if len(members) > 0 {
		fmt.Fprintf(&b, " [%s]", strings.Join(members, " -> "))
	}
	return b.String()
}

// Package sim provides a deterministic, nanosecond-resolution
// discrete-event simulation engine used by every substrate in this
// repository: the host network datapath (NIC, PCIe, IIO, memory
// controller), the network fabric, the transport, and the hostCC module
// itself.
//
// The engine is single-threaded by design: all model state is mutated
// only from event callbacks, so models need no locking and every run is
// bit-for-bit reproducible for a given seed.
package sim

import (
	"fmt"
	"time"
)

// Time is simulation time in nanoseconds since the start of the run.
//
// It is deliberately a distinct type from time.Duration so that wall
// clock time and simulated time cannot be mixed accidentally.
type Time int64

// Convenient simulated-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t expressed in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Duration converts t to a time.Duration (both are nanoseconds).
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time with an adaptive unit, e.g. "13.2us".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Millis())
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// FromDuration converts a wall-clock duration literal (e.g. 5*time.Millisecond)
// into simulated time.
func FromDuration(d time.Duration) Time { return Time(d) }

// Rate is a data rate in bytes per second.
//
// Networking figures in the paper are quoted in Gbps (bits) while memory
// bandwidth is quoted in GBps (bytes); the constructors below keep the two
// conventions straight.
type Rate float64

// Gbps constructs a Rate from gigabits per second.
func Gbps(g float64) Rate { return Rate(g * 1e9 / 8) }

// GBps constructs a Rate from gigabytes per second (10^9 bytes).
func GBps(g float64) Rate { return Rate(g * 1e9) }

// Gbps reports the rate in gigabits per second.
func (r Rate) Gbps() float64 { return float64(r) * 8 / 1e9 }

// GBps reports the rate in gigabytes per second.
func (r Rate) GBps() float64 { return float64(r) / 1e9 }

// BytesPerSec reports the rate in bytes per second.
func (r Rate) BytesPerSec() float64 { return float64(r) }

// TimeFor returns the time needed to move n bytes at rate r.
// A non-positive rate yields an effectively infinite time.
func (r Rate) TimeFor(n int) Time {
	if r <= 0 {
		return Time(1) << 62
	}
	ns := float64(n) / float64(r) * 1e9
	t := Time(ns)
	if float64(t) < ns { // round up so serialization never undershoots
		t++
	}
	return t
}

// BytesIn returns how many bytes move in d at rate r.
func (r Rate) BytesIn(d Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(r) * d.Seconds()
}

func (r Rate) String() string {
	if r >= GBps(1) {
		return fmt.Sprintf("%.4gGbps", r.Gbps())
	}
	return fmt.Sprintf("%.4gMbps", r.Gbps()*1e3)
}

package sim

import "fmt"

// SentinelPolicy selects what a Sentinel does when it detects a stall.
type SentinelPolicy int

const (
	// SentinelAbort stops the engine after invoking the OnStall callback
	// (which typically writes a diagnostic snapshot for replay).
	SentinelAbort SentinelPolicy = iota
	// SentinelEscape invokes the configured escape action (e.g. a PCIe
	// credit-timeout reclaim), then keeps monitoring with a fresh window.
	SentinelEscape
)

func (p SentinelPolicy) String() string {
	switch p {
	case SentinelAbort:
		return "abort"
	case SentinelEscape:
		return "escape"
	}
	return fmt.Sprintf("SentinelPolicy(%d)", int(p))
}

// SentinelConfig tunes stall detection.
type SentinelConfig struct {
	// Window is how long every progress probe must be flat — while demand
	// exists and the event queue is non-empty — before a stall is declared.
	Window Time
	// Check is the probe sampling period; defaults to Window/4.
	Check Time
	// Policy selects the recovery action.
	Policy SentinelPolicy
}

// ProbeSample is one probe's value at stall-detection time.
type ProbeSample struct {
	Name  string
	Value uint64
}

// StallReport is the sentinel's diagnostic for one detected stall.
type StallReport struct {
	DetectedAt     Time
	LastProgressAt Time
	Window         Time
	Pending        int // engine events queued at detection
	Class          StallClass
	Cycle          []string // wedged members (cycle for deadlock, wedged set for starvation)
	Diagnostic     string   // rendered wait-for graph
	Probes         []ProbeSample
	Escaped        bool // true when the escape policy ran instead of aborting
}

func (r *StallReport) String() string {
	return fmt.Sprintf("stall (%s) detected at t=%.3fms: no progress for %.3fms with %d events pending\n%s",
		r.Class, r.DetectedAt.Millis(), (r.DetectedAt - r.LastProgressAt).Millis(), r.Pending, r.Diagnostic)
}

type probe struct {
	name string
	fn   func() uint64
}

// Clock is the simulation driver a Sentinel monitors: a single Engine or
// a ShardGroup. Stop aborts the run (the abort policy's action).
type Clock interface {
	Now() Time
	Pending() int
	Stop()
}

// Sentinel watches a set of monotonic progress counters and declares a
// stall when none of them move for a full window while the datapath still
// has demand and the event queue is non-empty. Time-driven checking means a
// stall is detected even when the wedged components have stopped scheduling
// events entirely (some other actor — an app loop, a ticker — keeps virtual
// time advancing; a truly empty queue is plain termination, not a stall).
type Sentinel struct {
	clk     Clock
	tick    *Engine // self-scheduling via Ticker; nil when externally driven
	cfg     SentinelConfig
	probes  []probe
	demand  func() bool
	build   func() *WaitGraph
	onStall func(*StallReport)
	escape  func() bool

	last     []uint64
	lastMove Time
	ticker   *Ticker
	report   *StallReport

	// Checks and Stalls count sentinel activations and stall detections
	// (escape mode can detect repeatedly; Report keeps the first).
	Checks int64
	Stalls int64
}

// NewSentinel creates a sentinel that self-schedules its checks on e's
// clock; call Start to begin monitoring.
func NewSentinel(e *Engine, cfg SentinelConfig) *Sentinel {
	s := NewSentinelOn(e, cfg)
	s.tick = e
	return s
}

// NewSentinelOn creates a sentinel over any Clock (e.g. a ShardGroup)
// without a self-scheduled ticker: after Start, the owner drives it by
// calling Check on its own cadence — for a ShardGroup, from a coordinator
// hook, where every shard is quiesced and the probes are safe to sample.
func NewSentinelOn(clk Clock, cfg SentinelConfig) *Sentinel {
	if cfg.Window <= 0 {
		panic("sim: sentinel window must be positive")
	}
	if cfg.Check <= 0 {
		cfg.Check = cfg.Window / 4
		if cfg.Check <= 0 {
			cfg.Check = 1
		}
	}
	return &Sentinel{clk: clk, cfg: cfg}
}

// AddProbe registers a named monotonic progress counter. Any change in any
// probe between two checks counts as progress.
func (s *Sentinel) AddProbe(name string, fn func() uint64) {
	s.probes = append(s.probes, probe{name: name, fn: fn})
	s.last = append(s.last, 0)
}

// SetDemand registers the demand predicate: a flat window only counts as a
// stall while demand is true (work is queued somewhere). Without one, any
// flat window with pending events trips the sentinel.
func (s *Sentinel) SetDemand(fn func() bool) { s.demand = fn }

// SetGraphBuilder registers the wait-for graph constructor invoked at
// stall-detection time to classify the stall.
func (s *Sentinel) SetGraphBuilder(fn func() *WaitGraph) { s.build = fn }

// OnStall registers a callback invoked with the report on every detection
// (before the engine is stopped under the abort policy).
func (s *Sentinel) OnStall(fn func(*StallReport)) { s.onStall = fn }

// SetEscape registers the escape action for SentinelEscape; it reports
// whether it freed anything.
func (s *Sentinel) SetEscape(fn func() bool) { s.escape = fn }

// Start begins monitoring from the current virtual time. Externally
// driven sentinels (NewSentinelOn) only take their probe baselines here;
// the owner then calls Check periodically.
func (s *Sentinel) Start() {
	if s.ticker != nil {
		return
	}
	s.lastMove = s.clk.Now()
	for i, p := range s.probes {
		s.last[i] = p.fn()
	}
	if s.tick != nil {
		s.ticker = NewTicker(s.tick, s.cfg.Check, s.check)
	}
}

// Stop halts monitoring.
func (s *Sentinel) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
}

// Report returns the first stall report, or nil if none was detected.
func (s *Sentinel) Report() *StallReport { return s.report }

// Check runs one stall probe now. Self-scheduled sentinels call it from
// their ticker; externally driven ones (NewSentinelOn) have their owner
// call it at quiesced points.
func (s *Sentinel) Check() { s.check() }

func (s *Sentinel) check() {
	s.Checks++
	now := s.clk.Now()
	moved := false
	for i, p := range s.probes {
		v := p.fn()
		if v != s.last[i] {
			moved = true
			s.last[i] = v
		}
	}
	demand := s.demand == nil || s.demand()
	if moved || !demand || s.clk.Pending() == 0 {
		s.lastMove = now
		return
	}
	if now-s.lastMove < s.cfg.Window {
		return
	}

	rep := &StallReport{
		DetectedAt:     now,
		LastProgressAt: s.lastMove,
		Window:         s.cfg.Window,
		Pending:        s.clk.Pending(),
	}
	for i, p := range s.probes {
		rep.Probes = append(rep.Probes, ProbeSample{Name: p.name, Value: s.last[i]})
	}
	if s.build != nil {
		g := s.build()
		rep.Class, rep.Cycle = g.Classify()
		rep.Diagnostic = g.String()
	} else {
		rep.Class = StallStarvation
	}
	s.Stalls++
	if s.report == nil {
		s.report = rep
	}

	switch s.cfg.Policy {
	case SentinelEscape:
		if s.escape != nil {
			rep.Escaped = s.escape()
		}
		s.lastMove = now // fresh window for the escape to take effect
		if s.onStall != nil {
			s.onStall(rep)
		}
	default: // SentinelAbort
		if s.onStall != nil {
			s.onStall(rep)
		}
		s.Stop()
		s.clk.Stop()
	}
}

package sim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/snapshot"
)

func TestEngineSnapshotRoundTrip(t *testing.T) {
	e := NewEngine(42)
	for i := 0; i < 10; i++ {
		e.After(Time(i*10), func() { e.Rand().Float64() })
	}
	e.Run()
	drawsBefore := e.RNGDraws()
	nextBefore := []float64{e.Rand().Float64(), e.Rand().Float64()}

	// Snapshot a second engine advanced to the same point and restore it
	// into a third: the restored engine must produce the same draws.
	e2 := NewEngine(42)
	for i := 0; i < 10; i++ {
		e2.After(Time(i*10), func() { e2.Rand().Float64() })
	}
	e2.Run()
	var enc snapshot.Encoder
	e2.Snapshot(&enc)

	e3 := NewEngine(0)
	if err := e3.Restore(snapshot.NewDecoder(enc.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if e3.Now() != e2.Now() || e3.Processed != e2.Processed || e3.Seed() != 42 {
		t.Fatalf("restored position = (%v, %d, seed %d)", e3.Now(), e3.Processed, e3.Seed())
	}
	if e3.RNGDraws() != drawsBefore {
		t.Fatalf("restored draws = %d, want %d", e3.RNGDraws(), drawsBefore)
	}
	got := []float64{e3.Rand().Float64(), e3.Rand().Float64()}
	if got[0] != nextBefore[0] || got[1] != nextBefore[1] {
		t.Fatalf("restored RNG stream %v, want %v", got, nextBefore)
	}
}

func TestEngineRestoreRejectsPendingEvents(t *testing.T) {
	e := NewEngine(1)
	e.After(100, func() {})
	var enc snapshot.Encoder
	e.Snapshot(&enc) // snapshot with a queued event

	e2 := NewEngine(1)
	if err := e2.Restore(snapshot.NewDecoder(enc.Bytes())); err == nil {
		t.Fatal("expected error restoring a snapshot with pending events")
	}

	// And the receiving engine must itself be quiescent.
	e3 := NewEngine(1)
	e3.Run()
	var enc2 snapshot.Encoder
	e3.Snapshot(&enc2)
	e4 := NewEngine(1)
	e4.After(5, func() {})
	if err := e4.Restore(snapshot.NewDecoder(enc2.Bytes())); err == nil {
		t.Fatal("expected error restoring into an engine with pending events")
	}
}

func TestCountingSourcePreservesSequence(t *testing.T) {
	// The counting wrapper must not perturb the standard sequence.
	plain := NewEngineRandReference(7, 100)
	e := NewEngine(7)
	for i, want := range plain {
		if got := e.Rand().Int63(); got != want {
			t.Fatalf("draw %d = %d, want %d", i, got, want)
		}
	}
	if e.RNGDraws() != 100 {
		t.Fatalf("draws = %d, want 100", e.RNGDraws())
	}
}

func TestWaitGraphClassify(t *testing.T) {
	// Deadlock: two wedged nodes waiting on each other.
	g := NewWaitGraph()
	g.AddNode("nic-dma", true, false, "8 packets queued")
	g.AddNode("pcie-credits", true, false, "0/64 lines free")
	g.AddNode("iio-release", true, false, "64 lines sequestered")
	g.AddNode("fabric", true, true, "draining")
	g.AddEdge("nic-dma", "pcie-credits", "needs 8 lines")
	g.AddEdge("pcie-credits", "iio-release", "pool refills on release")
	g.AddEdge("iio-release", "pcie-credits", "release path wedged")
	class, cycle := g.Classify()
	if class != StallDeadlock {
		t.Fatalf("class = %v, want deadlock", class)
	}
	if len(cycle) != 2 || cycle[0] != "pcie-credits" || cycle[1] != "iio-release" {
		t.Fatalf("cycle = %v", cycle)
	}
	if s := g.String(); !strings.Contains(s, "deadlock") || !strings.Contains(s, "WEDGED") {
		t.Errorf("rendered graph missing verdict:\n%s", s)
	}

	// Starvation: wedged but acyclic.
	g2 := NewWaitGraph()
	g2.AddNode("a", true, false, "")
	g2.AddNode("b", false, false, "")
	g2.AddEdge("a", "b", "waiting")
	if class, members := g2.Classify(); class != StallStarvation || len(members) != 1 || members[0] != "a" {
		t.Fatalf("class = %v members = %v, want starvation [a]", class, members)
	}

	// Idle: demand satisfied or absent.
	g3 := NewWaitGraph()
	g3.AddNode("a", false, false, "")
	g3.AddNode("b", true, true, "")
	if class, _ := g3.Classify(); class != StallIdle {
		t.Fatalf("class = %v, want idle", class)
	}
}

func TestSentinelDetectsStall(t *testing.T) {
	e := NewEngine(1)
	var progress uint64
	demand := true

	s := NewSentinel(e, SentinelConfig{Window: 100, Check: 25, Policy: SentinelAbort})
	s.AddProbe("work", func() uint64 { return progress })
	s.SetDemand(func() bool { return demand })
	s.SetGraphBuilder(func() *WaitGraph {
		g := NewWaitGraph()
		g.AddNode("worker", true, false, "blocked")
		g.AddNode("resource", true, false, "empty")
		g.AddEdge("worker", "resource", "needs one")
		g.AddEdge("resource", "worker", "refilled by worker")
		return g
	})
	var gotReport *StallReport
	s.OnStall(func(r *StallReport) { gotReport = r })
	s.Start()

	// Progress until t=200, then wedge. A background ticker keeps the
	// event queue non-empty (the stalled components schedule nothing).
	app := NewTicker(e, 10, func() {
		if e.Now() <= 200 {
			progress++
		}
	})
	defer app.Stop()

	e.RunUntil(1000)
	if gotReport == nil {
		t.Fatal("sentinel did not trip")
	}
	if s.Report() != gotReport {
		t.Fatal("Report() does not return the first report")
	}
	// Stall begins at 200; detection must land within [300, 300+Check].
	if gotReport.DetectedAt < 300 || gotReport.DetectedAt > 325 {
		t.Errorf("detected at %v, want within one check of 300", gotReport.DetectedAt)
	}
	if gotReport.Class != StallDeadlock || len(gotReport.Cycle) != 2 {
		t.Errorf("class = %v cycle = %v", gotReport.Class, gotReport.Cycle)
	}
	// Abort policy must have stopped the engine at detection time.
	if e.Now() != 1000 {
		t.Errorf("now = %v, want 1000 after RunUntil completes the clock", e.Now())
	}
	if s.Stalls != 1 {
		t.Errorf("stalls = %d, want 1 (sentinel stops after abort)", s.Stalls)
	}
}

func TestSentinelIgnoresIdleAndProgress(t *testing.T) {
	e := NewEngine(1)
	var progress uint64
	s := NewSentinel(e, SentinelConfig{Window: 100, Check: 25})
	s.AddProbe("work", func() uint64 { return progress })
	s.SetDemand(func() bool { return false }) // never demand
	s.Start()
	tick := NewTicker(e, 10, func() {})
	e.RunUntil(2000)
	tick.Stop()
	if s.Report() != nil {
		t.Fatal("sentinel tripped without demand")
	}

	// With demand but steady progress: no trip either.
	e2 := NewEngine(1)
	var p2 uint64
	s2 := NewSentinel(e2, SentinelConfig{Window: 100, Check: 25})
	s2.AddProbe("work", func() uint64 { return p2 })
	s2.SetDemand(func() bool { return true })
	s2.Start()
	t2 := NewTicker(e2, 50, func() { p2++ })
	e2.RunUntil(2000)
	t2.Stop()
	s2.Stop()
	if s2.Report() != nil {
		t.Fatal("sentinel tripped despite steady progress")
	}
}

func TestSentinelEscapePolicy(t *testing.T) {
	e := NewEngine(1)
	var progress uint64
	wedged := true

	s := NewSentinel(e, SentinelConfig{Window: 100, Check: 25, Policy: SentinelEscape})
	s.AddProbe("work", func() uint64 { return progress })
	s.SetDemand(func() bool { return wedged })
	escapes := 0
	s.SetEscape(func() bool {
		escapes++
		wedged = false // escape frees the resource
		return true
	})
	s.Start()
	app := NewTicker(e, 10, func() {})
	e.RunUntil(1000)
	app.Stop()
	s.Stop()

	if escapes != 1 {
		t.Fatalf("escape ran %d times, want 1", escapes)
	}
	if s.Report() == nil || !s.Report().Escaped {
		t.Fatal("report missing or not marked escaped")
	}
	// Escape policy must not stop the engine.
	if e.Now() != 1000 {
		t.Fatalf("now = %v, want 1000", e.Now())
	}
}

func TestTimerSnapshotState(t *testing.T) {
	e := NewEngine(1)
	tm := NewTimer(e, func() {})
	tm.Reset(500)
	var enc snapshot.Encoder
	tm.SnapshotState(&enc)

	tm2 := NewTimer(e, func() { t.Fatal("restored timer must not fire") })
	dec := snapshot.NewDecoder(enc.Bytes())
	tm2.RestoreState(dec)
	if dec.Err() != nil {
		t.Fatalf("decode: %v", dec.Err())
	}
	if !tm2.Pending() || tm2.Deadline() != 500 {
		t.Fatalf("restored timer pending=%v deadline=%v", tm2.Pending(), tm2.Deadline())
	}
	tm.Stop()
	e.Run() // tm2 has no scheduled event; nothing fires
}

// NewEngineRandReference returns the first n Int63 draws of the unwrapped
// standard source for seed, as the reference sequence for the counting
// wrapper test.
func NewEngineRandReference(seed int64, n int) []int64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63()
	}
	return out
}

package sim

import "testing"

// TestCoarseClockEngineBinding: ticks fire every period in registration
// order, interleaved with the event heap.
func TestCoarseClockEngineBinding(t *testing.T) {
	e := NewEngine(1)
	c := NewCoarseClock(10 * Microsecond)
	var order []string
	var at []Time
	c.Register("a", func(now Time) { order = append(order, "a"); at = append(at, now) })
	c.Register("b", func(_ Time) { order = append(order, "b") })
	c.BindEngine(e)
	e.RunUntil(35 * Microsecond)

	if c.Ticks() != 3 {
		t.Fatalf("%d ticks in 35µs at a 10µs period, want 3", c.Ticks())
	}
	if len(order) != 6 || order[0] != "a" || order[1] != "b" || order[2] != "a" {
		t.Fatalf("tick order %v, want a,b repeating", order)
	}
	for i, ts := range at {
		if want := Time(i+1) * 10 * Microsecond; ts != want {
			t.Fatalf("tick %d at %v, want %v", i, ts, want)
		}
	}
}

// TestCoarseClockGroupBinding: bound to a shard group, ticks run at
// barriers with every shard quiesced at the tick time.
func TestCoarseClockGroupBinding(t *testing.T) {
	g := NewShardGroup(1, 2)
	defer g.Close()
	c := NewCoarseClock(10 * Microsecond)
	var ticks int
	c.Register("probe", func(now Time) {
		ticks++
		for i := 0; i < g.Shards(); i++ {
			if g.Shard(i).Now() > now {
				t.Fatalf("shard %d at %v past the tick time %v", i, g.Shard(i).Now(), now)
			}
		}
	})
	c.BindGroup(g)
	g.RunUntil(50 * Microsecond)
	if ticks < 4 {
		t.Fatalf("%d group ticks in 50µs at a 10µs period, want ≥4", ticks)
	}
}

// TestCoarseClockMisuse: binding twice or registering after binding is
// a build bug, caught loudly.
func TestCoarseClockMisuse(t *testing.T) {
	e := NewEngine(1)
	c := NewCoarseClock(Microsecond)
	c.Register("x", func(Time) {})
	c.BindEngine(e)
	mustPanic(t, "double bind", func() { c.BindEngine(e) })
	mustPanic(t, "late register", func() { c.Register("y", func(Time) {}) })
	mustPanic(t, "zero period", func() { NewCoarseClock(0) })
	mustPanic(t, "nil fn", func() { NewCoarseClock(Microsecond).Register("z", nil) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/snapshot"
)

// Snapshot encodes the engine's replayable state: clock, sequence counter,
// processed-event count, stop flag, and the RNG replay cursor (seed + number
// of draws). The event queue itself holds closures and is not serializable;
// its length is recorded so Restore can refuse snapshots that captured
// in-flight events (live resumption is replay-based — see package snapshot).
func (e *Engine) Snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(e.now))
	enc.U64(e.seq)
	enc.U64(e.Processed)
	enc.Int(e.q.len())
	enc.Bool(e.stopped)
	enc.I64(e.seed)
	enc.U64(e.src.draws)
}

// Restore reverses Snapshot. The RNG is reconstructed by re-seeding and
// fast-forwarding the recorded number of draws, which reproduces the exact
// generator state regardless of which mix of Int63/Uint64/Float64 calls
// consumed them. Restore fails if either the snapshot or the receiving
// engine has pending events: queued callbacks cannot be round-tripped.
func (e *Engine) Restore(dec *snapshot.Decoder) error {
	now := Time(dec.I64())
	seq := dec.U64()
	processed := dec.U64()
	pending := dec.Int()
	stopped := dec.Bool()
	seed := dec.I64()
	draws := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if pending != 0 {
		return fmt.Errorf("sim: snapshot captured %d pending events; the event queue is not restorable (resume by replay instead)", pending)
	}
	if e.q.len() != 0 {
		return fmt.Errorf("sim: cannot restore into an engine with %d pending events", e.q.len())
	}
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	for i := uint64(0); i < draws; i++ {
		src.src.Uint64()
	}
	src.draws = draws
	e.now = now
	e.seq = seq
	e.Processed = processed
	e.stopped = stopped
	e.seed = seed
	e.src = src
	e.rng = rand.New(src)
	return nil
}

// SnapshotState encodes the timer's armed/deadline state. The pending
// engine event backing an armed timer is not serialized; see RestoreState.
func (t *Timer) SnapshotState(enc *snapshot.Encoder) {
	enc.Bool(t.set)
	enc.I64(int64(t.at))
	enc.U64(t.gen)
}

// RestoreState reverses SnapshotState for inspection and round-trip
// verification. It bumps the generation so any in-flight firing from before
// the restore is invalidated, and it does NOT schedule a new engine event:
// a restored timer reports Pending/Deadline faithfully but will not fire.
// Live resumption re-creates timers by replaying the run.
func (t *Timer) RestoreState(dec *snapshot.Decoder) {
	t.set = dec.Bool()
	t.at = Time(dec.I64())
	gen := dec.U64()
	if gen > t.gen {
		t.gen = gen
	}
	t.gen++ // invalidate any event scheduled before the restore
}

package sim

// CoarseClock is a fixed-period integrator registry that runs alongside
// the event heap: coarse-tick models (the fluid-flow tier) advance once
// per period while packet-level models keep per-event fidelity. The
// clock itself is engine-agnostic — bind it to a serial Engine (a
// Ticker drives it between packet events) or to a ShardGroup (a
// coordinator hook drives it at barriers, when every shard is quiesced
// at the same time, so tick functions may touch any shard's state
// without racing a shard worker). Tick functions run in registration
// order, which is what keeps a multi-integrator tick deterministic.
type CoarseClock struct {
	period Time
	fns    []coarseFn
	ticks  uint64
	bound  bool
}

type coarseFn struct {
	name string
	fn   func(now Time)
}

// NewCoarseClock creates a clock ticking every period.
func NewCoarseClock(period Time) *CoarseClock {
	if period <= 0 {
		panic("sim: non-positive coarse-clock period")
	}
	return &CoarseClock{period: period}
}

// Period returns the tick period.
func (c *CoarseClock) Period() Time { return c.period }

// Ticks returns how many ticks have run.
func (c *CoarseClock) Ticks() uint64 { return c.ticks }

// Register appends a named tick function. Registration order is the
// execution order within a tick; register before binding.
func (c *CoarseClock) Register(name string, fn func(now Time)) {
	if fn == nil {
		panic("sim: nil coarse tick function")
	}
	if c.bound {
		panic("sim: Register after the coarse clock was bound")
	}
	c.fns = append(c.fns, coarseFn{name: name, fn: fn})
}

func (c *CoarseClock) tick(now Time) {
	c.ticks++
	for _, f := range c.fns {
		f.fn(now)
	}
}

// BindEngine drives the clock from a serial engine: a Ticker fires the
// tick every period, interleaved deterministically with packet events.
func (c *CoarseClock) BindEngine(e *Engine) *Ticker {
	c.bind()
	return NewTicker(e, c.period, func() { c.tick(e.Now()) })
}

// BindGroup drives the clock from a shard group's coordinator: the tick
// runs at barriers with every shard quiesced, so integrators may read
// packet counters and write back fluid demand on any shard. The period
// also bounds the group's synchronization window, so ticks land exactly
// on their due times.
func (c *CoarseClock) BindGroup(g *ShardGroup) *GroupHook {
	c.bind()
	return g.Every(c.period, func() { c.tick(g.Now()) })
}

func (c *CoarseClock) bind() {
	if c.bound {
		panic("sim: coarse clock bound twice")
	}
	c.bound = true
}

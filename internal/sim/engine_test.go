package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, d := range []Time{50, 10, 30, 10, 70} {
		d := d
		e.After(d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{10, 10, 30, 50, 70}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			e.After(10, step)
		}
	}
	e.After(10, step)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("now = %v, want 50", e.Now())
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(100, func() { fired = true })
	e.RunUntil(50)
	if fired {
		t.Fatal("event at 100 fired before deadline 50")
	}
	if e.Now() != 50 {
		t.Fatalf("now = %v, want 50", e.Now())
	}
	e.RunFor(50)
	if !fired {
		t.Fatal("event at 100 did not fire by 100")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.At(1, func() { n++; e.Stop() })
	e.At(2, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("ran %d events after Stop, want 1", n)
	}
	e.Run() // resumes
	if n != 2 {
		t.Fatalf("ran %d events total, want 2", n)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine(seed)
		var ts []Time
		var step func()
		step = func() {
			ts = append(ts, e.Now())
			if len(ts) < 100 {
				e.After(Time(e.Rand().Intn(1000)), step)
			}
		}
		e.After(0, step)
		e.Run()
		return ts
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs with same seed diverge at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of delays, events execute in nondecreasing time
// order and the final clock equals the max delay.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var seen []Time
		var maxD Time
		for _, d := range delays {
			d := Time(d)
			if d > maxD {
				maxD = d
			}
			e.After(d, func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		if !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] }) {
			return false
		}
		return len(delays) == 0 || e.Now() == maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerResetSupersedes(t *testing.T) {
	e := NewEngine(1)
	fires := 0
	tm := NewTimer(e, func() { fires++ })
	tm.Reset(100)
	e.At(50, func() { tm.Reset(200) }) // push deadline out
	e.Run()
	if fires != 1 {
		t.Fatalf("timer fired %d times, want 1", fires)
	}
	if e.Now() != 250 {
		t.Fatalf("fired at %v, want 250", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fires := 0
	tm := NewTimer(e, func() { fires++ })
	tm.Reset(100)
	if !tm.Pending() {
		t.Fatal("timer not pending after Reset")
	}
	e.At(50, func() {
		if !tm.Stop() {
			t.Error("Stop reported no pending firing")
		}
	})
	e.Run()
	if fires != 0 {
		t.Fatalf("stopped timer fired %d times", fires)
	}
	if tm.Stop() {
		t.Fatal("second Stop reported a pending firing")
	}
}

func TestTickerTicksAtInterval(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := NewTicker(e, 10, func() { ticks = append(ticks, e.Now()) })
	e.At(35, func() { tk.Stop() })
	e.Run()
	want := []Time{10, 20, 30}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestRateConversions(t *testing.T) {
	r := Gbps(100)
	if got := r.Gbps(); got != 100 {
		t.Fatalf("Gbps roundtrip = %v", got)
	}
	if got := r.GBps(); got != 12.5 {
		t.Fatalf("100Gbps = %v GBps, want 12.5", got)
	}
	// 4KB at 100 Gbps is 327.68ns; TimeFor rounds up.
	if d := r.TimeFor(4096); d != 328 {
		t.Fatalf("TimeFor(4096) = %v, want 328", d)
	}
	if b := r.BytesIn(1 * Microsecond); b != 12500 {
		t.Fatalf("BytesIn(1us) = %v, want 12500", b)
	}
	if d := Rate(0).TimeFor(1); d < Time(1)<<61 {
		t.Fatalf("zero rate should yield huge time, got %v", d)
	}
}

func TestTimeFormattingAndConversions(t *testing.T) {
	cases := []struct {
		t Time
		s string
	}{
		{500, "500ns"},
		{13200, "13.2us"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.s {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.s)
		}
	}
	if FromDuration(5*time.Millisecond) != 5*Millisecond {
		t.Error("FromDuration mismatch")
	}
	if (2 * Millisecond).Micros() != 2000 {
		t.Error("Micros mismatch")
	}
}

// Package sweep runs independent simulations in parallel. Every
// experiment in this repository is a self-contained deterministic
// simulation (its own engine, hosts and RNG), so parameter sweeps are
// embarrassingly parallel; the figure runners use this package to fan out
// across cores while keeping results in deterministic order.
//
// All Map calls share one bounded pool of long-lived workers instead of
// spawning goroutines per call: a figure suite makes hundreds of Map
// calls, and churning worker goroutines (plus their stacks) for each one
// is measurable overhead. The caller always participates in its own
// batch and helpers are recruited without blocking, so a Map issued from
// inside another Map's fn can never deadlock — worst case it runs on the
// caller alone.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// poolTask is one helper recruitment: the worker runs the batch's runner
// loop (which exits once the batch's indices are exhausted) and then
// signals the recruiting Map call.
type poolTask struct {
	run func()
	wg  *sync.WaitGroup
}

var (
	poolOnce sync.Once
	poolCh   chan poolTask
)

// pool returns the shared task channel, starting the workers on first
// use. The pool is bounded at GOMAXPROCS workers: sweeps are CPU-bound
// simulations, so more would only add scheduling overhead.
func pool() chan poolTask {
	poolOnce.Do(func() {
		poolCh = make(chan poolTask, 4*runtime.GOMAXPROCS(0))
		for w := 0; w < runtime.GOMAXPROCS(0); w++ {
			go func() {
				for t := range poolCh {
					t.run()
					t.wg.Done()
				}
			}()
		}
	})
	return poolCh
}

// Map evaluates fn(0..n-1) using up to workers concurrent evaluations
// (workers <= 0 selects NumCPU) and returns the results in index order.
// fn must be safe to call concurrently for distinct indices — trivially
// true for independent simulations. Map may be called from inside
// another Map's fn: recruitment never blocks, and the inner caller
// executes its own indices, so nesting degrades to serial rather than
// deadlocking when the pool is saturated.
func Map[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	// The batch is a shared index cursor; every participant (caller and
	// recruited helpers) pulls the next unclaimed index until none remain.
	var next atomic.Int64
	runner := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			out[i] = fn(i)
		}
	}

	// Recruit up to workers-1 helpers without blocking: if the pool's
	// queue is full the batch simply runs with fewer helpers (the caller
	// always participates, so progress never depends on recruitment).
	var helpers sync.WaitGroup
	ch := pool()
	for w := 0; w < workers-1; w++ {
		helpers.Add(1)
		select {
		case ch <- poolTask{run: runner, wg: &helpers}:
		default:
			helpers.Done()
		}
	}
	runner()
	helpers.Wait()
	return out
}

// Map2 evaluates a two-axis sweep (the common figure shape: parameter ×
// variant), returning results in row-major order.
func Map2[T any](rows, cols, workers int, fn func(r, c int) T) []T {
	return Map(rows*cols, workers, func(i int) T {
		return fn(i/cols, i%cols)
	})
}

// SeedFor derives the simulation seed for index i of a sweep rooted at
// base. It is a splitmix64 step over base+i, so neighbouring indices get
// statistically independent seeds — seeding engines with base+i directly
// would correlate their RNG streams.
func SeedFor(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// MapSeeded is Map for seed-dependent work: fn receives both the index
// and a per-index seed derived from base via SeedFor. Results are
// independent of worker count and scheduling, so seeded sweeps stay
// reproducible under parallelism.
func MapSeeded[T any](n, workers int, base int64, fn func(i int, seed int64) T) []T {
	return Map(n, workers, func(i int) T {
		return fn(i, SeedFor(base, i))
	})
}

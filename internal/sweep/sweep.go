// Package sweep runs independent simulations in parallel. Every
// experiment in this repository is a self-contained deterministic
// simulation (its own engine, hosts and RNG), so parameter sweeps are
// embarrassingly parallel; the figure runners use this package to fan out
// across cores while keeping results in deterministic order.
package sweep

import (
	"runtime"
	"sync"
)

// Map evaluates fn(0..n-1) using up to workers goroutines (workers <= 0
// selects NumCPU) and returns the results in index order. fn must be safe
// to call concurrently for distinct indices — trivially true for
// independent simulations.
func Map[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Map2 evaluates a two-axis sweep (the common figure shape: parameter ×
// variant), returning results in row-major order.
func Map2[T any](rows, cols, workers int, fn func(r, c int) T) []T {
	return Map(rows*cols, workers, func(i int) T {
		return fn(i/cols, i%cols)
	})
}

package sweep

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	got := Map(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapActuallyParallel(t *testing.T) {
	// Each task sleeps ~2ms; 16 tasks on 4 workers must finish far sooner
	// than the 32ms a serial run would take.
	start := time.Now()
	var calls int64
	Map(16, 4, func(i int) int {
		atomic.AddInt64(&calls, 1)
		time.Sleep(2 * time.Millisecond)
		return i
	})
	if calls != 16 {
		t.Fatalf("calls = %d", calls)
	}
	if el := time.Since(start); el > 24*time.Millisecond {
		t.Fatalf("took %v; 4 workers should need ~8ms", el)
	}
}

func TestMapEdgeCases(t *testing.T) {
	if got := Map(0, 4, func(int) int { return 1 }); got != nil {
		t.Fatal("n=0 should return nil")
	}
	got := Map(3, 100, func(i int) int { return i }) // workers > n
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	got = Map(5, 1, func(i int) int { return i }) // serial path
	for i, v := range got {
		if v != i {
			t.Fatal("serial path wrong")
		}
	}
	got = Map(4, -1, func(i int) int { return i }) // auto workers
	if len(got) != 4 {
		t.Fatal("auto workers wrong")
	}
}

func TestMap2RowMajor(t *testing.T) {
	got := Map2(3, 4, 4, func(r, c int) [2]int { return [2]int{r, c} })
	if len(got) != 12 {
		t.Fatalf("len = %d", len(got))
	}
	for i, rc := range got {
		if rc[0] != i/4 || rc[1] != i%4 {
			t.Fatalf("index %d = %v", i, rc)
		}
	}
}

// Property: Map equals the serial evaluation for any n and worker count.
func TestMapMatchesSerialProperty(t *testing.T) {
	f := func(n, workers uint8) bool {
		nn := int(n % 64)
		fn := func(i int) int { return i*31 + 7 }
		par := Map(nn, int(workers%8), fn)
		for i := 0; i < nn; i++ {
			if par[i] != fn(i) {
				return false
			}
		}
		return len(par) == nn || (nn == 0 && par == nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

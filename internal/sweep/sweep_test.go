package sweep

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	got := Map(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapActuallyParallel(t *testing.T) {
	// Each task sleeps ~2ms; 16 tasks on 4 workers must finish far sooner
	// than the 32ms a serial run would take.
	start := time.Now()
	var calls int64
	Map(16, 4, func(i int) int {
		atomic.AddInt64(&calls, 1)
		time.Sleep(2 * time.Millisecond)
		return i
	})
	if calls != 16 {
		t.Fatalf("calls = %d", calls)
	}
	if el := time.Since(start); el > 24*time.Millisecond {
		t.Fatalf("took %v; 4 workers should need ~8ms", el)
	}
}

func TestMapEdgeCases(t *testing.T) {
	if got := Map(0, 4, func(int) int { return 1 }); got != nil {
		t.Fatal("n=0 should return nil")
	}
	got := Map(3, 100, func(i int) int { return i }) // workers > n
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	got = Map(5, 1, func(i int) int { return i }) // serial path
	for i, v := range got {
		if v != i {
			t.Fatal("serial path wrong")
		}
	}
	got = Map(4, -1, func(i int) int { return i }) // auto workers
	if len(got) != 4 {
		t.Fatal("auto workers wrong")
	}
}

func TestMap2RowMajor(t *testing.T) {
	got := Map2(3, 4, 4, func(r, c int) [2]int { return [2]int{r, c} })
	if len(got) != 12 {
		t.Fatalf("len = %d", len(got))
	}
	for i, rc := range got {
		if rc[0] != i/4 || rc[1] != i%4 {
			t.Fatalf("index %d = %v", i, rc)
		}
	}
}

// Property: Map equals the serial evaluation for any n and worker count.
func TestMapMatchesSerialProperty(t *testing.T) {
	f := func(n, workers uint8) bool {
		nn := int(n % 64)
		fn := func(i int) int { return i*31 + 7 }
		par := Map(nn, int(workers%8), fn)
		for i := 0; i < nn; i++ {
			if par[i] != fn(i) {
				return false
			}
		}
		return len(par) == nn || (nn == 0 && par == nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapNestedNoDeadlock(t *testing.T) {
	// A Map inside a Map's fn must complete even when the outer batch
	// saturates every pool worker: recruitment never blocks and the inner
	// caller executes its own indices.
	done := make(chan []int, 1)
	go func() {
		done <- Map(8, 8, func(i int) int {
			inner := Map(8, 8, func(j int) int { return i*8 + j })
			sum := 0
			for _, v := range inner {
				sum += v
			}
			return sum
		})
	}()
	select {
	case out := <-done:
		for i, v := range out {
			want := 0
			for j := 0; j < 8; j++ {
				want += i*8 + j
			}
			if v != want {
				t.Fatalf("out[%d] = %d, want %d", i, v, want)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("nested Map deadlocked")
	}
}

func TestMapReusesWorkers(t *testing.T) {
	// Warm the pool, then check that hundreds of Map calls do not grow the
	// goroutine count: workers are recruited from the shared pool, not
	// spawned per call.
	Map(8, 4, func(i int) int { return i })
	before := runtime.NumGoroutine()
	for k := 0; k < 300; k++ {
		Map(16, 4, func(i int) int { return i * k })
	}
	// Allow slack for test-framework goroutines and helpers mid-exit.
	if after := runtime.NumGoroutine(); after > before+8 {
		t.Fatalf("goroutines grew from %d to %d across 300 Map calls", before, after)
	}
}

func TestSeedForIndependence(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		s := SeedFor(42, i)
		if seen[s] {
			t.Fatalf("duplicate seed at index %d", i)
		}
		seen[s] = true
	}
	// Distinct bases give distinct streams.
	if SeedFor(1, 0) == SeedFor(2, 0) {
		t.Fatal("bases 1 and 2 collide at index 0")
	}
	// Derivation is pure: same inputs, same seed.
	if SeedFor(42, 7) != SeedFor(42, 7) {
		t.Fatal("SeedFor is not deterministic")
	}
}

func TestMapSeededDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []int64 {
		return MapSeeded(32, workers, 42, func(i int, seed int64) int64 {
			return seed ^ int64(i)
		})
	}
	serial := run(1)
	for _, w := range []int{2, 4, 8} {
		par := run(w)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, par[i], serial[i])
			}
		}
	}
}

package crucible

import "repro/internal/telemetry"

// SearchConfig parameterizes one chaos search.
type SearchConfig struct {
	// SeedStart is the first generator seed (default 1).
	SeedStart int64
	// Seeds is how many consecutive seeds to try (default 16).
	Seeds int
	// Gen parameterizes the scenario generator.
	Gen GenConfig
	// ShrinkBudget bounds Run calls per shrink (default 40).
	ShrinkBudget int
	// StopAtFirst ends the search at the first failing scenario.
	StopAtFirst bool
	// Log, when set, receives one progress line per scenario.
	Log func(format string, args ...any)
}

func (c SearchConfig) withDefaults() SearchConfig {
	if c.SeedStart == 0 {
		c.SeedStart = 1
	}
	if c.Seeds == 0 {
		c.Seeds = 16
	}
	if c.ShrinkBudget == 0 {
		c.ShrinkBudget = 40
	}
	return c
}

// Finding is one failing scenario with its minimized form.
type Finding struct {
	Seed       int64
	Scenario   Scenario
	Verdict    Verdict
	Minimized  Scenario
	MinVerdict Verdict
	ShrinkRuns int
}

// Repro packages the finding as a corpus artifact.
func (f Finding) Repro(note string) Repro {
	return Repro{
		Version:          ReproVersion,
		Note:             note,
		FoundSeed:        f.Seed,
		ExpectedFailures: f.MinVerdict.FailedOracles(),
		Scenario:         f.Minimized,
	}
}

// Stats is the search's telemetry: scenario and oracle accounting.
type Stats struct {
	// Scenarios counts generated scenarios; Runs counts oracle-battery
	// executions (each is two engine runs); ShrinkRuns counts the subset
	// spent minimizing; Failures counts failing scenarios.
	Scenarios  int
	Runs       int
	ShrinkRuns int
	Failures   int
	// ByOracle counts failing scenarios per failed oracle name.
	ByOracle map[string]int
}

// RegisterInstruments exposes the counters on a telemetry registry under
// prefix (e.g. "crucible/scenarios").
func (s *Stats) RegisterInstruments(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/scenarios", "count", "scenarios generated and judged",
		func() float64 { return float64(s.Scenarios) })
	reg.Counter(prefix+"/runs", "count", "oracle-battery executions (search + shrink)",
		func() float64 { return float64(s.Runs) })
	reg.Counter(prefix+"/shrink-runs", "count", "oracle-battery executions spent minimizing",
		func() float64 { return float64(s.ShrinkRuns) })
	reg.Counter(prefix+"/failures", "count", "scenarios that failed at least one oracle",
		func() float64 { return float64(s.Failures) })
	for _, oracle := range []string{
		OraclePanic, OracleInvariant, OracleLiveness, OracleDeterminism,
		OracleSnapshot, OracleGoodput, OracleVictim,
	} {
		oracle := oracle
		reg.Counter(prefix+"/failed/"+oracle, "count", "scenarios that failed the "+oracle+" oracle",
			func() float64 { return float64(s.ByOracle[oracle]) })
	}
}

// Result is one completed search.
type Result struct {
	Findings []Finding
	Stats    Stats
}

// Search sweeps generator seeds, runs each scenario's oracle battery,
// and delta-debugs every failure to a minimal repro. Deterministic:
// identical configs produce identical results, finding for finding.
func Search(cfg SearchConfig) Result {
	cfg = cfg.withDefaults()
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := Result{Stats: Stats{ByOracle: map[string]int{}}}
	for i := 0; i < cfg.Seeds; i++ {
		seed := cfg.SeedStart + int64(i)
		sc := Generate(seed, cfg.Gen)
		res.Stats.Scenarios++
		v, err := Run(sc)
		res.Stats.Runs++
		if err != nil {
			// Generate guarantees validity; a scenario Run rejects is a
			// generator bug worth surfacing loudly.
			panic("crucible: generated scenario invalid: " + err.Error())
		}
		if v.Pass() {
			logf("seed %d: pass (baseline %.1f Gbps)", seed, v.BaselineGbps)
			continue
		}
		res.Stats.Failures++
		for _, name := range v.FailedOracles() {
			res.Stats.ByOracle[name]++
		}
		logf("seed %d: FAIL %s — shrinking...", seed, v.Signature())
		minSc, runs := Shrink(sc, v.Signature(), cfg.ShrinkBudget)
		res.Stats.Runs += runs
		res.Stats.ShrinkRuns += runs
		minV, err := Run(minSc)
		res.Stats.Runs++
		if err != nil {
			panic("crucible: shrunk scenario invalid: " + err.Error())
		}
		logf("seed %d: minimized to %d injection(s) in %d runs: %s",
			seed, len(minSc.Faults), runs, minV.Signature())
		res.Findings = append(res.Findings, Finding{
			Seed:       seed,
			Scenario:   sc,
			Verdict:    v,
			Minimized:  minSc,
			MinVerdict: minV,
			ShrinkRuns: runs,
		})
		if cfg.StopAtFirst {
			break
		}
	}
	return res
}

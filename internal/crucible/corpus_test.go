package crucible

import (
	"testing"
)

// TestCorpus replays every checked-in minimized repro and verifies each
// reproduces its recorded oracle verdict. The corpus is the regression
// suite the search has earned: any datapath change that silently fixes
// or shifts one of these failures shows up here as a signature mismatch.
// Runs under -short (and -race in CI): each entry is minimized, so a
// replay costs well under a second.
func TestCorpus(t *testing.T) {
	paths, err := CorpusFiles("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("corpus has %d repros, want at least 3", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(path, func(t *testing.T) {
			r, err := ReadRepro(path)
			if err != nil {
				t.Fatal(err)
			}
			v, err := Replay(r)
			if err != nil {
				t.Fatalf("%v\nverdict: %s", err, v)
			}
		})
	}
}

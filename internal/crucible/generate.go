package crucible

import (
	"math/rand"

	"repro/internal/faults"
	"repro/internal/sim"
)

// GenConfig parameterizes the scenario generator.
type GenConfig struct {
	// MaxInjections bounds the fault count per scenario (default 3).
	MaxInjections int
	// GoodputFloorPct arms the goodput-floor oracle on every generated
	// scenario (default 30; negative disables).
	GoodputFloorPct float64
	// RecoveryRTTBudget bounds the recovery probe (default 150 RTTs).
	RecoveryRTTBudget int
	// VictimP999Ns arms the victim tail-latency oracle (0 disables; it
	// is off by default because the bound is workload-specific).
	VictimP999Ns int64
	// Canary arms a planted bug on every generated scenario — the
	// harness self-test (see CanaryPCIeExtraCredit).
	Canary string
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxInjections == 0 {
		c.MaxInjections = 3
	}
	if c.GoodputFloorPct == 0 {
		c.GoodputFloorPct = 30
	}
	if c.GoodputFloorPct < 0 {
		c.GoodputFloorPct = 0
	}
	if c.RecoveryRTTBudget == 0 {
		c.RecoveryRTTBudget = 150
	}
	return c
}

// genWarmup is the warmup every generated scenario uses: long enough for
// the transports to exit slow start so the pre-fault baseline means
// something.
const genWarmup = 4 * sim.Millisecond

// Generate draws one valid scenario from the seed. Every choice —
// topology, congestion control, workload shape, and a fault plan over
// the full injection DSL — comes from a single seeded RNG, so the
// mapping seed → scenario is deterministic and stable. Generated
// scenarios always pass Validate (asserted by TestGenerateAlwaysValid):
// the draws are constrained so illegal combinations (pause kinds on a
// lossy fabric, trunk faults on a star, MApp kinds with no MApp, fault
// windows outlasting the liveness watch) cannot be expressed.
func Generate(seed int64, cfg GenConfig) Scenario {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(seed))
	sc := Scenario{Seed: seed, MTU: 4096, WarmupNs: int64(genWarmup)}

	// Topology: the paper's star half the time, the multi-switch fabrics
	// the other half (they exercise trunk queues, cross-rack striping and
	// the PFC machinery).
	switch p := r.Float64(); {
	case p < 0.5:
		sc.Topology = "star"
	case p < 0.8:
		sc.Topology = "leafspine"
	default:
		sc.Topology = "dumbbell"
	}
	multiSwitch := sc.Topology != "star"

	// Lossless fabrics always arm the PFC watchdog: a lost XON wedging a
	// port forever is a known, *permitted* failure mode without it, and
	// the generator only emits scenarios that are supposed to survive.
	sc.Lossless = r.Float64() < 0.3
	if sc.Lossless {
		sc.PauseWatchdogNs = int64(150 * sim.Microsecond)
		sc.CC = "dcqcn"
	} else {
		// Lossy draw across the registry's lossy schemes, weighted toward
		// dctcp (the paper's baseline). bbr and hpcc are the rate-based
		// additions — chaos search must cover them too.
		sc.CC = [...]string{"dctcp", "dctcp", "reno", "cubic", "bbr", "hpcc"}[r.Intn(6)]
	}

	sc.Senders = 1 + r.Intn(3)
	sc.Receivers = 1
	sc.Flows = 2 + r.Intn(6)
	sc.Degree = float64(r.Intn(5))
	sc.HostCC = r.Float64() < 0.7
	if multiSwitch {
		sc.FaultTrunks = r.Float64() < 0.3
	}

	// Fault plan: 1..MaxInjections windows inside the measure phase.
	kinds := []faults.Kind{
		faults.MSRStale, faults.MSRFail, faults.MSRLatency,
		faults.MBADrop, faults.MBADelay, faults.NICDrop,
		faults.LinkFlap, faults.PCIeStall,
	}
	if sc.Degree > 0 {
		kinds = append(kinds, faults.MAppStall, faults.MAppBurst)
	}
	if sc.Lossless && multiSwitch {
		kinds = append(kinds, faults.PauseStorm, faults.PauseLoss)
	}
	n := 1 + r.Intn(cfg.MaxInjections)
	var planEnd sim.Time
	for i := 0; i < n; i++ {
		kind := kinds[r.Intn(len(kinds))]
		at := genWarmup + 500*sim.Microsecond + sim.Time(r.Int63n(int64(1500*sim.Microsecond)))
		dur := 100*sim.Microsecond + sim.Time(r.Int63n(int64(500*sim.Microsecond)))
		inj := Injection{Kind: kind.String(), AtNs: int64(at), DurationNs: int64(dur)}
		switch kind {
		case faults.MSRLatency, faults.MBADelay:
			inj.Magnitude = float64(sim.Time(5+r.Intn(16)) * sim.Microsecond)
			inj.Prob = 0.2 + 0.6*r.Float64()
		case faults.MAppBurst:
			inj.Magnitude = 2 + 4*r.Float64()
		case faults.MSRFail, faults.MSRStale, faults.MBADrop:
			if r.Float64() < 0.5 {
				inj.Prob = 0.2 + 0.6*r.Float64()
			}
		case faults.NICDrop:
			inj.Prob = 0.1 + 0.4*r.Float64()
		case faults.PauseLoss:
			inj.Prob = 0.2 + 0.5*r.Float64()
		}
		// A quarter of the windows repeat: period strictly beyond the
		// duration, a small bounded count.
		if r.Float64() < 0.25 {
			inj.PeriodNs = inj.DurationNs + int64(100*sim.Microsecond) + r.Int63n(int64(400*sim.Microsecond))
			inj.Count = 2 + r.Intn(2)
		}
		end := sim.Time(inj.AtNs + inj.DurationNs)
		if inj.PeriodNs > 0 {
			end = sim.Time(inj.AtNs + int64(inj.Count-1)*inj.PeriodNs + inj.DurationNs)
		}
		if end > planEnd {
			planEnd = end
		}
		sc.Faults = append(sc.Faults, inj)
	}
	// PauseStorm pins the fabric (testbedConfig compiles it to the
	// 2-leaf/1-spine shape); reflect that in the scenario itself so the
	// JSON stays an honest description of what runs.
	if sc.hasKind("pause-storm") {
		sc.Topology = "leafspine"
		sc.Lossless = true
		if sc.PauseWatchdogNs == 0 {
			sc.PauseWatchdogNs = int64(150 * sim.Microsecond)
		}
		sc.CC = "dcqcn"
	}

	// Measure window: cover every fault window plus a 3 ms drain before
	// the recovery probes start.
	sc.MeasureNs = int64(planEnd-genWarmup) + int64(3*sim.Millisecond)

	sc.Oracles = Oracles{
		GoodputFloorPct:   cfg.GoodputFloorPct,
		RecoveryRTTBudget: cfg.RecoveryRTTBudget,
		VictimP999Ns:      cfg.VictimP999Ns,
	}
	sc.Canary = cfg.Canary
	return sc
}

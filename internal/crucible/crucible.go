// Package crucible is a deterministic chaos-search harness: it generates
// valid random scenarios (topology × congestion control × workload ×
// fault plan) from a single seed, runs each against an oracle battery
// (conservation invariants, liveness verdicts, replay determinism,
// snapshot round-trips, goodput-floor and tail-latency properties), and
// delta-debugs any failure down to a minimal self-contained JSON repro
// that replays bit-for-bit.
//
// Everything downstream of a seed is deterministic: the generator draws
// from its own seeded RNG, the testbed run is a pure function of the
// scenario, and the shrinker only accepts transforms that preserve the
// exact failure signature. A repro file therefore carries everything
// needed to reproduce a finding on any machine, forever.
package crucible

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/transport"
)

// CanaryPCIeExtraCredit names the deliberately planted off-by-one in the
// PCIe credit-return path (pcie.Link.ArmCanaryExtraCredit): clearing a
// credit stall returns one line more than was sequestered. It exists so
// the harness can prove, in CI, that the search finds a real injected
// bug and shrinks it — the crucible's own self-test.
const CanaryPCIeExtraCredit = "pcie-extra-credit"

// Injection is the JSON form of one faults.Injection. Kind uses the
// stable string names (faults.Kind.String / faults.ParseKind) so repro
// files survive any renumbering of the Kind enum.
type Injection struct {
	Kind       string  `json:"kind"`
	AtNs       int64   `json:"at_ns"`
	DurationNs int64   `json:"duration_ns"`
	PeriodNs   int64   `json:"period_ns,omitempty"`
	Count      int     `json:"count,omitempty"`
	Prob       float64 `json:"prob,omitempty"`
	Magnitude  float64 `json:"magnitude,omitempty"`
}

// Oracles configures the property oracles that need thresholds. The
// structural oracles (panic, invariant, liveness, determinism, snapshot)
// are always armed.
type Oracles struct {
	// GoodputFloorPct, when > 0, requires NetApp-T goodput to return to
	// this percentage of the pre-fault baseline within RecoveryRTTBudget
	// RTTs of the last fault window clearing.
	GoodputFloorPct float64 `json:"goodput_floor_pct,omitempty"`
	// RecoveryRTTBudget bounds the recovery probe (default 150 RTTs).
	RecoveryRTTBudget int `json:"recovery_rtt_budget,omitempty"`
	// VictimP999Ns, when > 0, runs a victim RPC app beside the load and
	// requires its P99.9 completion time to stay at or below this bound.
	VictimP999Ns int64 `json:"victim_p999_ns,omitempty"`
}

// Scenario is one self-contained chaos experiment: the full testbed
// shape, workload, fault plan and oracle thresholds, JSON-serializable
// so a failing draw can be checked in verbatim as a regression repro.
type Scenario struct {
	Seed     int64  `json:"seed"`
	Topology string `json:"topology"` // "star", "leafspine", "dumbbell"
	Lossless bool   `json:"lossless,omitempty"`
	// PauseWatchdogNs arms the PFC watchdog on lossless fabrics (0 leaves
	// a lost XON wedged — the storm failure mode).
	PauseWatchdogNs int64  `json:"pause_watchdog_ns,omitempty"`
	CC              string `json:"cc"` // a transport scheme name ("dctcp", "reno", "cubic", "dcqcn", "delay", "bbr", "hpcc")

	Senders   int     `json:"senders"`
	Receivers int     `json:"receivers,omitempty"` // 0 = 1
	Flows     int     `json:"flows"`
	Degree    float64 `json:"degree"` // MApp units at each receiver
	MTU       int     `json:"mtu,omitempty"`
	HostCC    bool    `json:"hostcc"`
	// FaultTrunks aims link-flap injections at the inter-switch trunks
	// (requires a multi-switch topology).
	FaultTrunks bool `json:"fault_trunks,omitempty"`

	WarmupNs  int64 `json:"warmup_ns"`
	MeasureNs int64 `json:"measure_ns"`

	Faults  []Injection `json:"faults"`
	Oracles Oracles     `json:"oracles"`

	// Canary arms a planted bug for the harness's self-test (see
	// CanaryPCIeExtraCredit). Never set outside that test path.
	Canary string `json:"canary,omitempty"`
}

// Plan converts the JSON fault list back into a faults.Plan.
func (s Scenario) Plan() (faults.Plan, error) {
	p := faults.Plan{Name: "crucible"}
	for i, inj := range s.Faults {
		k, err := faults.ParseKind(inj.Kind)
		if err != nil {
			return faults.Plan{}, fmt.Errorf("crucible: fault %d: %w", i, err)
		}
		p.Injections = append(p.Injections, faults.Injection{
			Kind:      k,
			At:        sim.Time(inj.AtNs),
			Duration:  sim.Time(inj.DurationNs),
			Period:    sim.Time(inj.PeriodNs),
			Count:     inj.Count,
			Prob:      inj.Prob,
			Magnitude: inj.Magnitude,
		})
	}
	return p, nil
}

// hasKind reports whether the scenario injects the named fault kind.
func (s Scenario) hasKind(name string) bool {
	for _, inj := range s.Faults {
		if inj.Kind == name {
			return true
		}
	}
	return false
}

// ccFactory resolves the congestion-control name through the transport
// scheme registry (the single naming authority); "" means dctcp.
func ccFactory(name string) (transport.CCFactory, error) {
	if name == "" {
		name = "dctcp"
	}
	s, err := transport.SchemeByName(name)
	if err != nil {
		return nil, fmt.Errorf("crucible: %w", err)
	}
	return s.Factory(), nil
}

// testbedConfig compiles the scenario into a testbed configuration. The
// mapping is a pure function of the scenario, which is what makes repro
// files self-contained. Pause-storm scenarios are pinned to the 2-leaf
// 1-spine fabric with the sender rack's trunk pair stormed — the one
// shape where the storm provably freezes all cross-rack traffic.
func (s Scenario) testbedConfig() (testbed.Config, error) {
	plan, err := s.Plan()
	if err != nil {
		return testbed.Config{}, err
	}
	if err := plan.Validate(); err != nil {
		return testbed.Config{}, err
	}
	kind, err := fabric.ParseTopologyKind(s.Topology)
	if err != nil {
		return testbed.Config{}, err
	}
	cc, err := ccFactory(s.CC)
	if err != nil {
		return testbed.Config{}, err
	}
	if s.Canary != "" && s.Canary != CanaryPCIeExtraCredit {
		return testbed.Config{}, fmt.Errorf("crucible: unknown canary %q", s.Canary)
	}

	opts := testbed.DefaultConfig()
	opts.Seed = s.Seed
	opts.Topology = fabric.Topology{Kind: kind}
	opts.Senders = s.Senders
	opts.Receivers = s.Receivers
	opts.Flows = s.Flows
	opts.Degree = s.Degree
	if s.MTU > 0 {
		opts.MTU = s.MTU
	}
	opts.CC = cc
	opts.HostCC = s.HostCC
	if s.HostCC {
		wd := core.DefaultWatchdogConfig()
		opts.Watchdog = &wd
	}
	opts.Lossless = s.Lossless
	opts.PauseWatchdog = sim.Time(s.PauseWatchdogNs)
	opts.FaultTrunks = s.FaultTrunks
	// RTO-driven recovery (flaps kill in-flight windows) must settle
	// inside an affordable horizon; same choice as the chaos harness.
	opts.MinRTO = sim.Millisecond
	opts.Invariants = true
	opts.Faults = &plan
	opts.Warmup = sim.Time(s.WarmupNs)
	opts.Measure = sim.Time(s.MeasureNs)

	if s.hasKind("pause-storm") {
		opts.Lossless = true
		opts.Topology = fabric.Topology{Kind: fabric.TopoLeafSpine, Leaves: 2, Spines: 1}
		// Up leaf1->spine0 and down spine0->leaf1 (the sender rack).
		opts.StormTrunks = []int{2, 3}
	}
	if err := opts.Validate(); err != nil {
		return testbed.Config{}, err
	}
	if opts.Warmup <= 0 || opts.Measure <= 0 {
		return testbed.Config{}, fmt.Errorf("crucible: scenario needs positive warmup and measure windows")
	}
	return opts, nil
}

// Validate reports the first reason the scenario cannot run: an unknown
// kind/topology/CC name, an ill-formed fault plan, or testbed parameters
// the builder would reject.
func (s Scenario) Validate() error {
	_, err := s.testbedConfig()
	return err
}

package crucible

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/testbed"
)

// rtt is the nominal base RTT used to express recovery budgets, matching
// the chaos harness's accounting unit.
const rtt = 44 * sim.Microsecond

// digestEvery is the digest-frame recording period for the determinism
// oracle. Both executions of a scenario record with the same period, so
// the timelines are comparable frame for frame.
const digestEvery = 250 * sim.Microsecond

// Oracle names, in the order they are evaluated. A Verdict's signature
// is the sorted subset that failed.
const (
	OraclePanic       = "panic"
	OracleInvariant   = "invariant"
	OracleLiveness    = "liveness"
	OracleDeterminism = "determinism"
	OracleSnapshot    = "snapshot"
	OracleGoodput     = "goodput-floor"
	OracleVictim      = "victim-p999"
)

// Failure is one failed oracle with its diagnostic.
type Failure struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

// Verdict is the oracle battery's judgment of one scenario.
type Verdict struct {
	Failures []Failure `json:"failures,omitempty"`

	// Observables from the first execution (the second exists only to
	// feed the determinism oracle).
	BaselineGbps    float64 `json:"baseline_gbps"`
	FinalGbps       float64 `json:"final_gbps"`
	Recovered       bool    `json:"recovered"`
	VictimP999Ns    float64 `json:"victim_p999_ns,omitempty"`
	InvariantChecks int64   `json:"invariant_checks"`
	StallClass      string  `json:"stall_class,omitempty"`
	Digest          uint64  `json:"digest"`
	Frames          int     `json:"frames"`
}

// Pass reports whether every oracle held.
func (v Verdict) Pass() bool { return len(v.Failures) == 0 }

// FailedOracles lists the failed oracle names, sorted and deduplicated.
func (v Verdict) FailedOracles() []string {
	seen := map[string]bool{}
	var names []string
	for _, f := range v.Failures {
		if !seen[f.Oracle] {
			seen[f.Oracle] = true
			names = append(names, f.Oracle)
		}
	}
	sort.Strings(names)
	return names
}

// Signature is the canonical failure fingerprint — the sorted failed
// oracle names joined with "+", or "pass". The shrinker only accepts
// transforms that preserve it, so a minimized repro fails for the same
// reason as the original draw, not some easier-to-reach one.
func (v Verdict) Signature() string {
	names := v.FailedOracles()
	if len(names) == 0 {
		return "pass"
	}
	return strings.Join(names, "+")
}

// String renders the verdict as a one-line summary.
func (v Verdict) String() string {
	if v.Pass() {
		return fmt.Sprintf("pass (baseline %.1f Gbps, digest %016x)", v.BaselineGbps, v.Digest)
	}
	parts := make([]string, 0, len(v.Failures))
	for _, f := range v.Failures {
		parts = append(parts, f.Oracle+": "+f.Detail)
	}
	return "FAIL " + v.Signature() + " — " + strings.Join(parts, "; ")
}

// outcome captures everything one execution of a scenario produced that
// an oracle might judge.
type outcome struct {
	panicMsg   string
	violations []string
	stallClass string
	stallDiag  string
	baseline   float64
	final      float64
	recovered  bool
	p999       float64
	invChecks  int64

	midImg     []byte // mid-run state image (nil if the run never got there)
	midErr     string // first mid-run snapshot-oracle error
	restoreErr string // post-run restore-accept error

	timeline *snapshot.Timeline
	digest   uint64
}

// faultSpan returns the first window opening and last window clearing of
// the plan on the scenario clock.
func faultSpan(plan faults.Plan) (start, end sim.Time) {
	for i, inj := range plan.Injections {
		if i == 0 || inj.At < start {
			start = inj.At
		}
	}
	return start, plan.End()
}

// sentinelWindow sizes the liveness watch so that no injected fault
// window can outlast it: a stall that trips the sentinel is then a
// genuine failure to drain after the fault cleared, not the fault
// itself. Scenarios whose windows exceed the result (handcrafted repros)
// declare their expected stall via permittedStalls.
func sentinelWindow(plan faults.Plan) sim.Time {
	var maxDur sim.Time
	for _, inj := range plan.Injections {
		if inj.Duration > maxDur {
			maxDur = inj.Duration
		}
	}
	w := 2*maxDur + 200*sim.Microsecond
	if w < 500*sim.Microsecond {
		w = 500 * sim.Microsecond
	}
	return w
}

// permittedStalls lists the stall classes the scenario legitimately
// produces: a fault window longer than the sentinel watch is *supposed*
// to read as wedged while it holds.
func (s Scenario) permittedStalls(window sim.Time) map[string]bool {
	m := map[string]bool{}
	for _, inj := range s.Faults {
		if sim.Time(inj.DurationNs) < window {
			continue
		}
		switch inj.Kind {
		case "pause-storm":
			m["pfc-cycle"] = true
			m["deadlock"] = true
		case "pcie-stall":
			m["deadlock"] = true
			m["starvation"] = true
		case "link-flap", "pause-loss":
			m["starvation"] = true
			m["deadlock"] = true
		}
	}
	return m
}

// runOnce executes the scenario once and collects every observable the
// oracles judge. Panics (the canary's credit-pool overflow, or any real
// modeling bug) are recovered into the outcome so the battery can report
// them as an oracle failure instead of killing the search.
func runOnce(sc Scenario, opts testbed.Config, plan faults.Plan) (o *outcome) {
	o = &outcome{timeline: &snapshot.Timeline{}}
	defer func() {
		if r := recover(); r != nil {
			o.panicMsg = fmt.Sprint(r)
		}
	}()

	tb := testbed.New(opts)
	// Collect violations instead of panicking: a broken conservation law
	// is a finding, not a crash.
	tb.Inv.OnViolation = func(string) {}
	if sc.Canary == CanaryPCIeExtraCredit {
		tb.Receiver.Link.ArmCanaryExtraCredit()
	}
	tb.StartNetAppT()
	var victim *apps.NetAppL
	if sc.Oracles.VictimP999Ns > 0 {
		victim = tb.StartNetAppL(4096, 0, nil)
	}

	reg := tb.Registry()
	recorder := sim.NewTicker(tb.E, digestEvery, func() {
		o.timeline.Append(snapshot.Frame{
			At:      int64(tb.E.Now()),
			Events:  tb.E.Processed,
			Digests: reg.Digests(),
		})
	})

	window := sentinelWindow(plan)
	sen := tb.StartSentinel(sim.SentinelConfig{Window: window, Policy: sim.SentinelAbort})
	// RunUntil clears the engine's stop flag on entry, so a sentinel
	// abort must short-circuit the remaining phases explicitly.
	aborted := func() bool { return sen.Report() != nil }

	// Mid-run snapshot oracle: while the fault is live (the most state-
	// rich instant of the run), the state image must decode to exactly
	// the digests of the live registry, and a checkpoint built from it
	// must survive an encode → decode → re-encode round trip untouched.
	faultStart, faultEnd := faultSpan(plan)
	mid := faultStart + (faultEnd-faultStart)/2
	if mid <= opts.Warmup {
		mid = opts.Warmup + 100*sim.Microsecond
	}
	tb.E.At(mid, func() {
		img := reg.EncodeAll()
		o.midImg = img
		live := reg.Digests()
		decoded, _, err := snapshot.DecodeState(img)
		if err != nil {
			o.midErr = fmt.Sprintf("decode mid-run image: %v", err)
			return
		}
		if len(decoded) != len(live) {
			o.midErr = fmt.Sprintf("mid-run image has %d components, registry %d", len(decoded), len(live))
			return
		}
		for i := range decoded {
			if decoded[i] != live[i] {
				o.midErr = fmt.Sprintf("component %q digests diverge between image (%016x) and live registry (%016x)",
					decoded[i].Component, decoded[i].Hash, live[i].Hash)
				return
			}
		}
		ck := &snapshot.Checkpoint{
			Meta:        map[string]string{"scenario": "crucible", "seed": strconv.FormatInt(sc.Seed, 10)},
			VirtualTime: int64(tb.E.Now()),
			Events:      tb.E.Processed,
			State:       img,
		}
		b := ck.Encode()
		ck2, err := snapshot.Decode(b)
		if err != nil {
			o.midErr = fmt.Sprintf("checkpoint decode: %v", err)
			return
		}
		if !bytes.Equal(ck2.Encode(), b) {
			o.midErr = "checkpoint encode → decode → encode is not byte-identical"
		}
	})

	// Phases: warmup, fault-free baseline, through the fault windows,
	// drain to the horizon, then recovery probes for the goodput oracle.
	tb.E.RunUntil(opts.Warmup)
	tb.MarkWindow()
	if !aborted() && faultStart > opts.Warmup {
		tb.E.RunUntil(faultStart)
		o.baseline = tb.NetT.Throughput().Gbps()
	}
	if !aborted() {
		tb.NetT.MarkWindow()
		tb.E.RunUntil(faultEnd)
	}
	horizon := opts.Warmup + opts.Measure
	if !aborted() && tb.E.Now() < horizon {
		tb.E.RunUntil(horizon)
	}
	if sc.Oracles.GoodputFloorPct > 0 {
		budget := sc.Oracles.RecoveryRTTBudget
		if budget <= 0 {
			budget = 150
		}
		target := sc.Oracles.GoodputFloorPct / 100 * o.baseline
		const probeRTTs = 5
		for rtts := 0; rtts < budget && !aborted(); rtts += probeRTTs {
			tb.NetT.MarkWindow()
			tb.E.RunFor(probeRTTs * rtt)
			o.final = tb.NetT.Throughput().Gbps()
			if o.final >= target {
				o.recovered = true
				break
			}
		}
	} else {
		o.final = tb.NetT.Throughput().Gbps()
		o.recovered = true
	}

	if victim != nil {
		o.p999 = victim.Latency.Quantile(0.999)
	}
	tb.Inv.Check() // one final audit at quiescence
	o.invChecks = tb.Inv.Checks.Total()
	o.violations = tb.Inv.Violations
	if rep := sen.Report(); rep != nil {
		o.stallClass = rep.Class.String()
		o.stallDiag = strings.SplitN(rep.String(), "\n", 2)[0]
	}
	tb.HCC.Stop()
	tb.Inv.Stop()
	sen.Stop()
	recorder.Stop()

	o.digest = snapshot.Combined(reg.Digests())

	// Restore-accept: every component must take back its own final state
	// image (full byte consumption, no error). The engine is exempt — it
	// refuses restores while events are pending, by design; pending
	// closures have no serializable form and resumption is replay-based.
	// Runs after the final digest capture, when mutation is harmless.
	img := reg.EncodeAll()
	decoded, blobs, err := snapshot.DecodeState(img)
	if err != nil {
		o.restoreErr = fmt.Sprintf("decode final image: %v", err)
		return o
	}
	for _, dg := range decoded {
		if dg.Component == "engine" {
			continue
		}
		dec := snapshot.NewDecoder(blobs[dg.Component])
		if err := reg.Component(dg.Component).Restore(dec); err != nil {
			o.restoreErr = fmt.Sprintf("component %q rejects its own snapshot: %v", dg.Component, err)
			return o
		}
		if err := dec.Err(); err != nil {
			o.restoreErr = fmt.Sprintf("component %q under-decodes its snapshot: %v", dg.Component, err)
			return o
		}
		if n := dec.Remaining(); n != 0 {
			o.restoreErr = fmt.Sprintf("component %q left %d snapshot bytes unconsumed", dg.Component, n)
			return o
		}
	}
	return o
}

// Run executes the scenario's full oracle battery: two independent
// executions (the second feeds the determinism oracle) judged against
// every armed oracle. The returned error covers only invalid scenarios;
// failures of a valid scenario are reported in the Verdict.
func Run(sc Scenario) (Verdict, error) {
	opts, err := sc.testbedConfig()
	if err != nil {
		return Verdict{}, err
	}
	plan, _ := sc.Plan() // testbedConfig already validated it

	o1 := runOnce(sc, opts, plan)
	o2 := runOnce(sc, opts, plan)

	v := Verdict{
		BaselineGbps:    o1.baseline,
		FinalGbps:       o1.final,
		Recovered:       o1.recovered,
		VictimP999Ns:    o1.p999,
		InvariantChecks: o1.invChecks,
		StallClass:      o1.stallClass,
		Digest:          o1.digest,
		Frames:          o1.timeline.Len(),
	}
	fail := func(oracle, detail string) {
		v.Failures = append(v.Failures, Failure{Oracle: oracle, Detail: detail})
	}

	if o1.panicMsg != "" {
		fail(OraclePanic, o1.panicMsg)
	}
	if len(o1.violations) > 0 {
		fail(OracleInvariant, fmt.Sprintf("%d violation(s), first: %s", len(o1.violations), o1.violations[0]))
	}
	if o1.stallClass != "" && !sc.permittedStalls(sentinelWindow(plan))[o1.stallClass] {
		fail(OracleLiveness, o1.stallClass+" — "+o1.stallDiag)
	}

	// Determinism: two executions of the same scenario must agree on
	// everything. A panic must reproduce verbatim; panic-free runs must
	// match digest for digest.
	if o1.panicMsg != o2.panicMsg {
		fail(OracleDeterminism, fmt.Sprintf("panic diverges between runs: %q vs %q", o1.panicMsg, o2.panicMsg))
	} else if o1.panicMsg == "" {
		if o1.digest != o2.digest {
			fail(OracleDeterminism, fmt.Sprintf("final digest diverges: %016x vs %016x", o1.digest, o2.digest))
		} else if div, found := snapshot.FirstDivergence(o1.timeline, o2.timeline); found {
			fail(OracleDeterminism, fmt.Sprintf("digest timeline diverges at frame %d, component %q", div.FrameIndex, div.Component))
		} else if !bytes.Equal(o1.midImg, o2.midImg) {
			fail(OracleDeterminism, "mid-run state images differ between runs")
		}
	}

	// Snapshot oracles only judge runs that got far enough to produce a
	// coherent image; a panicked run's partial state proves nothing.
	if o1.panicMsg == "" {
		if o1.midErr != "" {
			fail(OracleSnapshot, o1.midErr)
		} else if o1.restoreErr != "" {
			fail(OracleSnapshot, o1.restoreErr)
		}
	}

	if o1.panicMsg == "" && sc.Oracles.GoodputFloorPct > 0 && !o1.recovered {
		fail(OracleGoodput, fmt.Sprintf("goodput %.2f Gbps never reached %.0f%% of baseline %.2f Gbps within the budget",
			o1.final, sc.Oracles.GoodputFloorPct, o1.baseline))
	}
	if o1.panicMsg == "" && sc.Oracles.VictimP999Ns > 0 && o1.p999 > float64(sc.Oracles.VictimP999Ns) {
		fail(OracleVictim, fmt.Sprintf("victim P99.9 %.0f ns exceeds bound %d ns", o1.p999, sc.Oracles.VictimP999Ns))
	}
	return v, nil
}

package crucible

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// Every generated scenario must pass its own validation — the generator
// is constrained so illegal combinations cannot be drawn.
func TestGenerateAlwaysValid(t *testing.T) {
	drawn := map[string]int{}
	for seed := int64(1); seed <= 200; seed++ {
		sc := Generate(seed, GenConfig{})
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d generates invalid scenario: %v", seed, err)
		}
		if len(sc.Faults) == 0 {
			t.Fatalf("seed %d generates no faults", seed)
		}
		if sc.MeasureNs <= 0 || sc.WarmupNs <= 0 {
			t.Fatalf("seed %d: non-positive windows", seed)
		}
		drawn[sc.CC]++
	}
	// Chaos search must cover the rate-based registry additions: across
	// 200 seeds the lossy draw has to surface both bbr and hpcc.
	for _, cc := range []string{"dctcp", "reno", "cubic", "dcqcn", "bbr", "hpcc"} {
		if drawn[cc] == 0 {
			t.Fatalf("200 seeds never drew cc=%q (draws: %v)", cc, drawn)
		}
	}
}

// The seed → scenario mapping is deterministic and JSON round-trips
// losslessly.
func TestGenerateDeterministicAndJSONRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a := Generate(seed, GenConfig{})
		b := Generate(seed, GenConfig{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
		blob, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		var c Scenario
		if err := json.Unmarshal(blob, &c); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, c) {
			t.Fatalf("seed %d: scenario does not survive JSON round trip", seed)
		}
		pa, err := a.Plan()
		if err != nil {
			t.Fatal(err)
		}
		pc, err := c.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pa, pc) {
			t.Fatalf("seed %d: fault plan does not survive JSON round trip", seed)
		}
	}
}

func TestScenarioValidateRejects(t *testing.T) {
	base := Generate(1, GenConfig{})
	for name, mutate := range map[string]func(*Scenario){
		"unknown-kind":     func(s *Scenario) { s.Faults[0].Kind = "warp-core-breach" },
		"unknown-topology": func(s *Scenario) { s.Topology = "torus" },
		"unknown-cc":       func(s *Scenario) { s.CC = "vegas" },
		"unknown-canary":   func(s *Scenario) { s.Canary = "gremlin" },
		"negative-count":   func(s *Scenario) { s.Faults[0].Count = -1 },
		"zero-warmup":      func(s *Scenario) { s.WarmupNs = 0 },
	} {
		sc := clone(base)
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid scenario", name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base scenario invalid: %v", err)
	}
}

func TestVerdictSignature(t *testing.T) {
	v := Verdict{}
	if v.Signature() != "pass" || !v.Pass() {
		t.Fatalf("empty verdict: got %q", v.Signature())
	}
	v.Failures = []Failure{
		{Oracle: OracleLiveness, Detail: "x"},
		{Oracle: OracleDeterminism, Detail: "y"},
		{Oracle: OracleLiveness, Detail: "z"}, // duplicate oracle collapses
	}
	if got := v.Signature(); got != "determinism+liveness" {
		t.Fatalf("signature = %q, want determinism+liveness", got)
	}
	if got := v.FailedOracles(); !reflect.DeepEqual(got, []string{"determinism", "liveness"}) {
		t.Fatalf("failed oracles = %v", got)
	}
}

// A handful of clean seeds must pass the full oracle battery — the
// generator's false-positive guard in tier-1 (the wider sweep runs in
// the crucible-smoke CI target).
func TestCleanSeedsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full oracle battery is slow under -short")
	}
	for seed := int64(1); seed <= 4; seed++ {
		sc := Generate(seed, GenConfig{})
		v, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !v.Pass() {
			t.Errorf("seed %d: %s", seed, v)
		}
		if v.Frames == 0 {
			t.Errorf("seed %d: no digest frames recorded", seed)
		}
		if v.InvariantChecks == 0 {
			t.Errorf("seed %d: invariant checker never audited", seed)
		}
	}
}

func TestReproReadWriteValidate(t *testing.T) {
	r := Repro{
		Version:          ReproVersion,
		Note:             "round trip",
		FoundSeed:        7,
		ExpectedFailures: []string{OraclePanic},
		Scenario:         Generate(7, GenConfig{Canary: CanaryPCIeExtraCredit}),
	}
	path := filepath.Join(t.TempDir(), "r.json")
	if err := WriteRepro(path, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("repro does not round-trip:\n%+v\n%+v", r, got)
	}

	bad := r
	bad.ExpectedFailures = nil
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted a repro with no expected failures")
	}
	bad = r
	bad.Version = 99
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted an unknown repro version")
	}
}

func TestStatsInstruments(t *testing.T) {
	s := &Stats{Scenarios: 5, Runs: 9, ShrinkRuns: 3, Failures: 1,
		ByOracle: map[string]int{OraclePanic: 1}}
	reg := telemetry.NewRegistry()
	s.RegisterInstruments(reg, "crucible")
	want := map[string]float64{
		"crucible/scenarios":    5,
		"crucible/runs":         9,
		"crucible/shrink-runs":  3,
		"crucible/failures":     1,
		"crucible/failed/panic": 1,
	}
	for name, val := range want {
		inst, ok := reg.Get(name)
		if !ok {
			t.Errorf("instrument %s not registered", name)
			continue
		}
		if got := inst.Value(); got != val {
			t.Errorf("instrument %s = %v, want %v", name, got, val)
		}
	}
}

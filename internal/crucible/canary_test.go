package crucible

import (
	"path/filepath"
	"reflect"
	"testing"
)

// The crucible's self-test: with the planted PCIe credit-return
// off-by-one armed, a 64-seed search must find the bug, shrink it to a
// minimal repro (≤ 2 injections), and the emitted repro must replay to
// the identical oracle verdict twice. This is the end-to-end proof that
// the harness detects real datapath bugs rather than vacuously passing.
func TestCanaryHuntFindsPlantedBug(t *testing.T) {
	if testing.Short() {
		t.Skip("search is slow under -short")
	}
	res := Search(SearchConfig{
		Seeds:       64,
		Gen:         GenConfig{Canary: CanaryPCIeExtraCredit},
		StopAtFirst: true,
		Log:         t.Logf,
	})
	if len(res.Findings) != 1 {
		t.Fatalf("expected the canary to be found, got %d findings", len(res.Findings))
	}
	f := res.Findings[0]
	if got := f.Verdict.Signature(); got != OraclePanic {
		t.Fatalf("canary surfaced as %q, want %q", got, OraclePanic)
	}
	if !f.Scenario.hasKind("pcie-stall") {
		t.Fatal("canary fired without a pcie-stall injection — wrong trigger path")
	}

	// The shrinker must reduce the draw to at most 2 injections while
	// preserving the exact failure signature.
	if n := len(f.Minimized.Faults); n > 2 {
		t.Fatalf("minimized repro still has %d injections, want <= 2", n)
	}
	if got, want := f.MinVerdict.Signature(), f.Verdict.Signature(); got != want {
		t.Fatalf("shrink changed the signature: %q -> %q", want, got)
	}
	if !f.Minimized.hasKind("pcie-stall") {
		t.Fatal("shrink removed the pcie-stall injection the canary needs")
	}

	// The emitted repro is self-contained: write it, read it back, and
	// replay it twice — both replays must reach the identical verdict.
	path := filepath.Join(t.TempDir(), "canary.json")
	if err := WriteRepro(path, f.Repro("canary self-test")); err != nil {
		t.Fatal(err)
	}
	r, err := ReadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := Replay(r)
	if err != nil {
		t.Fatalf("first replay: %v", err)
	}
	v2, err := Replay(r)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("replays diverge:\n%+v\n%+v", v1, v2)
	}

	// Search telemetry accounted for the hunt.
	if res.Stats.Failures != 1 || res.Stats.ByOracle[OraclePanic] != 1 {
		t.Errorf("stats miscounted: %+v", res.Stats)
	}
	if res.Stats.ShrinkRuns == 0 || res.Stats.Runs <= res.Stats.Scenarios {
		t.Errorf("shrink accounting missing: %+v", res.Stats)
	}
}

// Without the canary, the same seeds pass — the finding above is the
// planted bug, not harness noise. Kept cheap: only the seeds up to and
// including the first canary hit are swept.
func TestCanarySeedsPassWithoutCanary(t *testing.T) {
	if testing.Short() {
		t.Skip("search is slow under -short")
	}
	res := Search(SearchConfig{Seeds: 3, Gen: GenConfig{}})
	if len(res.Findings) != 0 {
		t.Fatalf("canary-free search found %d findings: %s",
			len(res.Findings), res.Findings[0].Verdict)
	}
}

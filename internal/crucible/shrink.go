package crucible

import "repro/internal/sim"

// minDur is the floor the shrinker halves fault windows down to; below
// ~50 µs a window is shorter than one RTT and stops meaning anything.
const minDur = int64(50 * sim.Microsecond)

// Shrink delta-debugs a failing scenario toward a minimal one with the
// same failure signature. Transforms — dropping injections, collapsing
// periodic windows to one-shots, halving durations, sender counts, flow
// counts and MApp degree, disabling hostCC — are tried greedily; a
// candidate is accepted only when its full oracle battery reproduces the
// exact signature (sorted failed-oracle set), so the minimized repro
// fails for the original reason. The budget bounds total Run calls;
// Shrink returns the best scenario found and the runs spent.
func Shrink(sc Scenario, signature string, budget int) (Scenario, int) {
	if budget <= 0 {
		budget = 40
	}
	runs := 0
	improved := true
	for improved && runs < budget {
		improved = false
		for _, cand := range candidates(sc) {
			if runs >= budget {
				break
			}
			v, err := Run(cand)
			runs++
			if err == nil && v.Signature() == signature {
				sc = cand
				improved = true
				break // restart the transform list from the smaller scenario
			}
		}
	}
	return sc, runs
}

// candidates enumerates the one-step reductions of a scenario, most
// aggressive first (dropping a whole injection beats trimming one).
func candidates(sc Scenario) []Scenario {
	var out []Scenario

	// Drop each injection (keep at least one — an empty plan fails
	// nothing and can't preserve a failure signature).
	if len(sc.Faults) > 1 {
		for i := range sc.Faults {
			c := clone(sc)
			c.Faults = append(c.Faults[:i], c.Faults[i+1:]...)
			out = append(out, c)
		}
	}
	// Collapse periodic windows to one-shots.
	for i, inj := range sc.Faults {
		if inj.PeriodNs > 0 {
			c := clone(sc)
			c.Faults[i].PeriodNs = 0
			c.Faults[i].Count = 0
			out = append(out, c)
		}
	}
	// Halve window durations.
	for i, inj := range sc.Faults {
		if inj.DurationNs > minDur {
			c := clone(sc)
			c.Faults[i].DurationNs = max64(inj.DurationNs/2, minDur)
			out = append(out, c)
		}
	}
	// Shrink the workload around the faults.
	if sc.Senders > 1 {
		c := clone(sc)
		c.Senders = sc.Senders / 2
		out = append(out, c)
	}
	if sc.Flows > 1 {
		c := clone(sc)
		c.Flows = sc.Flows / 2
		out = append(out, c)
	}
	if sc.Degree > 0 && !sc.hasKind("mapp-stall") && !sc.hasKind("mapp-burst") {
		c := clone(sc)
		c.Degree = 0
		out = append(out, c)
	} else if sc.Degree > 1 {
		c := clone(sc)
		c.Degree = sc.Degree / 2
		out = append(out, c)
	}
	if sc.HostCC {
		c := clone(sc)
		c.HostCC = false
		out = append(out, c)
	}
	// Fall back from the lossless fabric when no pause machinery is
	// under test.
	if sc.Lossless && !sc.hasKind("pause-storm") && !sc.hasKind("pause-loss") {
		c := clone(sc)
		c.Lossless = false
		c.PauseWatchdogNs = 0
		out = append(out, c)
	}
	return out
}

// clone deep-copies the scenario (the fault slice is the only reference
// field).
func clone(sc Scenario) Scenario {
	c := sc
	c.Faults = append([]Injection(nil), sc.Faults...)
	return c
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package crucible

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ReproVersion is the repro file format version.
const ReproVersion = 1

// Repro is a checked-in regression artifact: a minimized failing
// scenario plus the oracle verdict it must reproduce. The file is
// self-contained — replaying needs nothing but this JSON.
type Repro struct {
	Version int    `json:"version"`
	Note    string `json:"note,omitempty"`
	// FoundSeed is the generator seed the failure was originally drawn
	// from (the minimized scenario may since have drifted from what that
	// seed generates; Scenario.Seed is what actually runs).
	FoundSeed int64 `json:"found_seed"`
	// ExpectedFailures is the sorted failed-oracle set the scenario must
	// reproduce (the failure signature).
	ExpectedFailures []string `json:"expected_failures"`
	Scenario         Scenario `json:"scenario"`
}

// Validate reports the first reason the repro cannot replay.
func (r Repro) Validate() error {
	if r.Version != ReproVersion {
		return fmt.Errorf("crucible: repro version %d, want %d", r.Version, ReproVersion)
	}
	if len(r.ExpectedFailures) == 0 {
		return fmt.Errorf("crucible: repro expects no failures — nothing to reproduce")
	}
	return r.Scenario.Validate()
}

// signature renders the expected failure set in Verdict.Signature form.
func (r Repro) signature() string {
	names := append([]string(nil), r.ExpectedFailures...)
	sort.Strings(names)
	return strings.Join(names, "+")
}

// WriteRepro writes the repro as indented JSON.
func WriteRepro(path string, r Repro) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadRepro loads and validates one repro file.
func ReadRepro(path string) (Repro, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Repro{}, err
	}
	var r Repro
	if err := json.Unmarshal(b, &r); err != nil {
		return Repro{}, fmt.Errorf("crucible: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return Repro{}, fmt.Errorf("crucible: %s: %w", path, err)
	}
	return r, nil
}

// CorpusFiles lists the repro files (*.json) in a corpus directory,
// sorted by name.
func CorpusFiles(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// Replay runs the repro's scenario through the full oracle battery and
// verifies the verdict matches the expected failure set. The Verdict is
// returned either way so callers can print the diagnostics.
func Replay(r Repro) (Verdict, error) {
	if err := r.Validate(); err != nil {
		return Verdict{}, err
	}
	v, err := Run(r.Scenario)
	if err != nil {
		return Verdict{}, err
	}
	if got, want := v.Signature(), r.signature(); got != want {
		return v, fmt.Errorf("crucible: repro replays to signature %q, expected %q", got, want)
	}
	return v, nil
}

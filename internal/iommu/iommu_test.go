package iommu

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func newTestIOMMU(e *sim.Engine, entries, workingSet int) (*IOMMU, *mem.Controller) {
	mc := mem.NewController(e, mem.DefaultConfig())
	cfg := DefaultConfig()
	cfg.IOTLBEntries = entries
	cfg.WorkingSetPages = workingSet
	return New(e, mc, cfg), mc
}

func TestHitAndMissAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	u, _ := newTestIOMMU(e, 16, 512)
	done := 0
	u.Translate(5, func() { done++ })
	e.Run()
	if u.Misses.Total() != 1 || u.Hits.Total() != 0 {
		t.Fatalf("first access: hits=%d misses=%d", u.Hits.Total(), u.Misses.Total())
	}
	u.Translate(5, func() { done++ })
	e.Run()
	if u.Hits.Total() != 1 {
		t.Fatalf("second access should hit: hits=%d", u.Hits.Total())
	}
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if u.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", u.MissRate())
	}
}

func TestMissSlowerThanHitAndConsumesBandwidth(t *testing.T) {
	e := sim.NewEngine(1)
	u, mc := newTestIOMMU(e, 16, 512)
	mc.MarkAll()
	var missDone, hitDone sim.Time
	u.Translate(7, func() { missDone = e.Now() })
	e.Run()
	start := e.Now()
	u.Translate(7, func() { hitDone = e.Now() - start })
	e.Run()
	if missDone <= hitDone {
		t.Fatalf("miss (%v) should be slower than hit (%v)", missDone, hitDone)
	}
	// 4 walk levels x 64B page-table reads.
	if got := mc.BytesOf(mem.ClassOther); got != 4*64 {
		t.Fatalf("walk read bytes = %d, want 256", got)
	}
	if u.WalkTime <= 0 {
		t.Fatal("walk time not accounted")
	}
}

func TestLRUEviction(t *testing.T) {
	e := sim.NewEngine(1)
	u, _ := newTestIOMMU(e, 2, 512)
	for _, p := range []uint64{1, 2, 3} { // 3 evicts 1
		u.Translate(p, func() {})
		e.Run()
	}
	if u.Resident() != 2 {
		t.Fatalf("resident = %d, want 2", u.Resident())
	}
	u.Translate(2, func() {}) // still cached
	e.Run()
	if u.Hits.Total() != 1 {
		t.Fatalf("page 2 should hit, hits=%d", u.Hits.Total())
	}
	u.Translate(1, func() {}) // evicted
	e.Run()
	if u.Misses.Total() != 4 {
		t.Fatalf("page 1 should miss after eviction, misses=%d", u.Misses.Total())
	}
}

func TestLRUOrderRefreshedByHits(t *testing.T) {
	e := sim.NewEngine(1)
	u, _ := newTestIOMMU(e, 2, 512)
	for _, p := range []uint64{1, 2} {
		u.Translate(p, func() {})
		e.Run()
	}
	u.Translate(1, func() {}) // refresh 1; LRU victim becomes 2
	e.Run()
	u.Translate(3, func() {}) // evicts 2
	e.Run()
	u.Translate(1, func() {})
	e.Run()
	if u.Hits.Total() != 2 {
		t.Fatalf("page 1 should still be resident, hits=%d", u.Hits.Total())
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// Working set >> IOTLB: a cyclic sweep must miss nearly always.
	e := sim.NewEngine(1)
	u, _ := newTestIOMMU(e, 64, 512)
	for round := 0; round < 3; round++ {
		for i := 0; i < 512; i++ {
			u.Translate(u.NextBufferPage(), func() {})
			e.Run()
		}
	}
	if u.MissRate() < 0.99 {
		t.Fatalf("cyclic sweep miss rate = %.3f, want ~1.0", u.MissRate())
	}
	// A working set that fits stays cached after the first round.
	u2, _ := newTestIOMMU(e, 64, 32)
	for round := 0; round < 4; round++ {
		for i := 0; i < 32; i++ {
			u2.Translate(u2.NextBufferPage(), func() {})
			e.Run()
		}
	}
	if u2.MissRate() > 0.3 {
		t.Fatalf("fitting working set miss rate = %.3f, want 0.25 (cold misses only)", u2.MissRate())
	}
}

func TestNextBufferPageCycles(t *testing.T) {
	e := sim.NewEngine(1)
	u, _ := newTestIOMMU(e, 4, 8)
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		seen[u.NextBufferPage()] = true
	}
	if len(seen) != 8 {
		t.Fatalf("pages cycled over %d values, want 8", len(seen))
	}
}

func TestValidation(t *testing.T) {
	e := sim.NewEngine(1)
	mc := mem.NewController(e, mem.DefaultConfig())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad config did not panic")
			}
		}()
		New(e, mc, Config{IOTLBEntries: 0, PageBytes: 4096, WalkLevels: 4})
	}()
	u := New(e, mc, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("nil done did not panic")
		}
	}()
	u.Translate(1, nil)
}

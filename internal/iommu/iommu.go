// Package iommu models the IO memory management unit on the DMA path.
//
// The paper identifies memory protection hardware as a distinct host
// congestion point (§2.1: "hardware components required for memory
// protection from peripheral devices") and calls out IOMMU-induced host
// congestion as future work precisely because hostCC's IIO occupancy
// signal does not capture it (§6): when the IOTLB thrashes, DMA stalls in
// translation *before* entering the IIO buffer — PCIe goes underutilized
// and packets drop at the NIC while IIO occupancy stays low. This package
// lets the repository reproduce that blind spot and evaluate candidate
// signals for it (the IOTLB miss rate).
//
// Model: an IOTLB of N entries with LRU replacement, 4 KB pages, and a
// multi-level page-table walk on miss. Each walk level is a dependent
// 64 B read through the memory controller, so walks both delay the
// transaction and consume memory bandwidth — and get slower when the
// memory controller is loaded.
package iommu

import (
	"fmt"

	"container/list"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Config parameterizes the IOMMU.
type Config struct {
	// Enabled activates translation on the DMA path.
	Enabled bool
	// IOTLBEntries is the translation cache size (tens to a few hundred
	// on real parts; rIOMMU-style designs enlarge it).
	IOTLBEntries int
	// PageBytes is the translation granularity.
	PageBytes int
	// WalkLevels is the page-table depth (4 on x86-64).
	WalkLevels int
	// HitLatency is the IOTLB hit cost.
	HitLatency sim.Time
	// WorkingSetPages is the number of distinct IO buffer pages the NIC
	// descriptor ring cycles through; a working set far above
	// IOTLBEntries thrashes the cache.
	WorkingSetPages int
}

// DefaultConfig returns a thrash-prone configuration modeled on
// commodity parts (64-entry IOTLB vs a 512-page receive ring).
func DefaultConfig() Config {
	return Config{
		Enabled:         true,
		IOTLBEntries:    64,
		PageBytes:       4096,
		WalkLevels:      4,
		HitLatency:      20 * sim.Nanosecond,
		WorkingSetPages: 512,
	}
}

// IOMMU is one host's IO translation unit.
type IOMMU struct {
	e   *sim.Engine
	mc  *mem.Controller
	cfg Config

	lru     *list.List // front = most recent; values are page numbers
	entries map[uint64]*list.Element

	nextPage uint64 // allocator for descriptor buffer pages

	// Hits and Misses count translations.
	Hits   stats.Counter
	Misses stats.Counter
	// WalkTime accumulates total time spent walking page tables.
	WalkTime sim.Time
}

// New creates an IOMMU backed by the given memory controller.
func New(e *sim.Engine, mc *mem.Controller, cfg Config) *IOMMU {
	if cfg.IOTLBEntries <= 0 || cfg.PageBytes <= 0 || cfg.WalkLevels <= 0 {
		panic("iommu: invalid config")
	}
	if cfg.WorkingSetPages <= 0 {
		cfg.WorkingSetPages = 512
	}
	return &IOMMU{
		e:       e,
		mc:      mc,
		cfg:     cfg,
		lru:     list.New(),
		entries: make(map[uint64]*list.Element),
	}
}

// Config returns the configuration.
func (u *IOMMU) Config() Config { return u.cfg }

// NextBufferPage returns the IO virtual page for the next receive buffer,
// cycling through the descriptor ring's working set.
func (u *IOMMU) NextBufferPage() uint64 {
	p := u.nextPage
	u.nextPage = (u.nextPage + 1) % uint64(u.cfg.WorkingSetPages)
	return p
}

// Translate resolves one IO virtual page and invokes done when the
// translation is available. Hits cost HitLatency; misses perform a
// dependent chain of page-table reads through the memory controller and
// then install the entry (evicting the LRU victim if full).
func (u *IOMMU) Translate(page uint64, done func()) {
	if done == nil {
		panic("iommu: nil done")
	}
	if el, ok := u.entries[page]; ok {
		u.Hits.Inc()
		u.lru.MoveToFront(el)
		u.e.After(u.cfg.HitLatency, done)
		return
	}
	u.Misses.Inc()
	start := u.e.Now()
	u.walk(u.cfg.WalkLevels, func() {
		u.WalkTime += u.e.Now() - start
		u.install(page)
		done()
	})
}

// walk performs n dependent page-table reads.
func (u *IOMMU) walk(n int, done func()) {
	if n == 0 {
		done()
		return
	}
	u.mc.Submit(mem.Request{
		Size:  mem.CacheLine,
		Class: mem.ClassOther,
		OnComplete: func(sim.Time) {
			u.walk(n-1, done)
		},
	})
}

func (u *IOMMU) install(page uint64) {
	if _, dup := u.entries[page]; dup {
		return // raced with a concurrent walk for the same page
	}
	for u.lru.Len() >= u.cfg.IOTLBEntries {
		victim := u.lru.Back()
		u.lru.Remove(victim)
		delete(u.entries, victim.Value.(uint64))
	}
	u.entries[page] = u.lru.PushFront(page)
}

// MissRate returns lifetime misses/translations — the candidate
// congestion signal for IOMMU-induced host congestion (§6).
func (u *IOMMU) MissRate() float64 {
	total := u.Hits.Total() + u.Misses.Total()
	if total == 0 {
		return 0
	}
	return float64(u.Misses.Total()) / float64(total)
}

// Resident returns the number of cached translations.
func (u *IOMMU) Resident() int { return u.lru.Len() }

// RegisterInstruments registers the IOMMU's metrics under prefix.
func (u *IOMMU) RegisterInstruments(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/iommu/hits", "xlats", "IOTLB hits",
		func() float64 { return float64(u.Hits.Total()) })
	reg.Counter(prefix+"/iommu/misses", "xlats", "IOTLB misses (page walks)",
		func() float64 { return float64(u.Misses.Total()) })
}

// Validate reports the first invalid parameter. The zero Config (Enabled
// false) is valid: a disabled IOMMU needs no other parameters.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.IOTLBEntries <= 0 {
		return fmt.Errorf("iommu: IOTLBEntries %d must be positive", c.IOTLBEntries)
	}
	if c.PageBytes <= 0 {
		return fmt.Errorf("iommu: PageBytes %d must be positive", c.PageBytes)
	}
	if c.WalkLevels <= 0 {
		return fmt.Errorf("iommu: WalkLevels %d must be positive", c.WalkLevels)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("iommu: negative HitLatency %v", c.HitLatency)
	}
	if c.WorkingSetPages <= 0 {
		return fmt.Errorf("iommu: WorkingSetPages %d must be positive", c.WorkingSetPages)
	}
	return nil
}

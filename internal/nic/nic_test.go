package nic

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/packet"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// stubIIO releases credits after a configurable latency, emulating the
// IIO+memory side of the PCIe link.
type stubIIO struct {
	e       *sim.Engine
	link    *pcie.Link
	latency sim.Time
	tlps    []*pcie.TLP
}

func (s *stubIIO) onTLP(t *pcie.TLP) {
	s.tlps = append(s.tlps, t)
	s.e.After(s.latency, func() { s.link.ReleaseCredits(t.Lines) })
}

func newNICUnderTest(e *sim.Engine, cfg Config, creditLatency sim.Time) (*NIC, *stubIIO) {
	s := &stubIIO{e: e, latency: creditLatency}
	link := pcie.NewLink(e, pcie.DefaultConfig(), s.onTLP)
	s.link = link
	n := New(e, cfg, link, nil)
	return n, s
}

func pkt(size int, seq uint64) *packet.Packet {
	return &packet.Packet{
		Flow:       packet.FlowID{Src: 1, Dst: 2, SrcPort: 7, DstPort: 9},
		Seq:        seq,
		PayloadLen: size - packet.HeaderLen,
	}
}

func TestRxBufferOverflowDrops(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.RxBufferBytes = 10000
	// Credits never released after the pool empties: DMA stalls, so only
	// the in-flight packet leaves the buffer.
	n, _ := newNICUnderTest(e, cfg, 1<<40)
	for i := 0; i < 10; i++ {
		n.Receive(pkt(4096, uint64(i)))
	}
	// Buffer holds 2x4166 after the first is consumed by DMA; rest drop.
	if n.Drops.Total() == 0 {
		t.Fatal("expected drops on rx buffer overflow")
	}
	if n.Arrivals.Total() != 10 {
		t.Fatalf("arrivals = %d", n.Arrivals.Total())
	}
	if got := n.RxQueuedBytes(); got > cfg.RxBufferBytes {
		t.Fatalf("rx buffer %d exceeds cap %d", got, cfg.RxBufferBytes)
	}
	if n.DropRate() <= 0 {
		t.Fatal("drop rate should be positive")
	}
}

func TestDescriptorExhaustionStallsDMA(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.RxDescriptors = 2
	n, s := newNICUnderTest(e, cfg, 0)
	for i := 0; i < 5; i++ {
		n.Receive(pkt(4096, uint64(i)))
	}
	e.Run()
	// Only 2 packets' worth of TLPs can be DMA'd (9 TLPs each).
	if len(s.tlps) != 18 {
		t.Fatalf("DMA'd %d TLPs, want 18 (2 packets)", len(s.tlps))
	}
	if n.FreeDescriptors() != 0 {
		t.Fatalf("free descriptors = %d", n.FreeDescriptors())
	}
	n.ReleaseDescriptor()
	e.Run()
	if len(s.tlps) != 27 {
		t.Fatalf("after descriptor release: %d TLPs, want 27", len(s.tlps))
	}
}

func TestDescriptorOverReleasePanics(t *testing.T) {
	e := sim.NewEngine(1)
	n, _ := newNICUnderTest(e, DefaultConfig(), 0)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	n.ReleaseDescriptor()
}

func TestPacketLeavesBufferAtDMAInitiation(t *testing.T) {
	e := sim.NewEngine(1)
	n, _ := newNICUnderTest(e, DefaultConfig(), 0)
	p := pkt(4096, 0)
	n.Receive(p)
	// DMA initiates synchronously (credits available), so the buffer is
	// already empty even though TLPs are still serializing.
	if n.RxQueuedBytes() != 0 {
		t.Fatalf("rx buffer = %d right after receive, want 0 (DMA initiated)", n.RxQueuedBytes())
	}
	e.Run()
}

func TestQueueDelayRecorded(t *testing.T) {
	e := sim.NewEngine(1)
	// Slow credit release: later packets wait in the buffer.
	n, _ := newNICUnderTest(e, DefaultConfig(), 10*sim.Microsecond)
	for i := 0; i < 8; i++ {
		n.Receive(pkt(4096, uint64(i)))
	}
	e.Run()
	if n.QueueDelay.Count() != 8 {
		t.Fatalf("recorded %d queue delays", n.QueueDelay.Count())
	}
	if n.QueueDelay.Max() <= 0 {
		t.Fatal("stalled packets should record positive queueing delay")
	}
}

func TestTransmitSerializesAtLineRate(t *testing.T) {
	e := sim.NewEngine(1)
	n, _ := newNICUnderTest(e, DefaultConfig(), 0)
	var outAt []sim.Time
	n.SetOutput(func(*packet.Packet) { outAt = append(outAt, e.Now()) })
	for i := 0; i < 3; i++ {
		n.Transmit(pkt(4096, uint64(i)))
	}
	e.Run()
	if len(outAt) != 3 {
		t.Fatalf("transmitted %d", len(outAt))
	}
	// 4096B wire at 100Gbps = 327.68 -> 328ns each, back to back.
	per := sim.Gbps(100).TimeFor(4096)
	for i, at := range outAt {
		want := sim.Time(i+1) * per
		if at != want {
			t.Fatalf("packet %d sent at %v, want %v", i, at, want)
		}
	}
	if n.TxSent.Total() != 3 {
		t.Fatalf("TxSent = %d", n.TxSent.Total())
	}
}

func TestTransmitChargesMemoryReads(t *testing.T) {
	e := sim.NewEngine(1)
	mc := mem.NewController(e, mem.DefaultConfig())
	link := pcie.NewLink(e, pcie.DefaultConfig(), func(*pcie.TLP) {})
	n := New(e, DefaultConfig(), link, mc)
	n.SetOutput(func(*packet.Packet) {})
	mc.MarkAll()
	n.Transmit(pkt(4096, 0))
	e.Run()
	if mc.BytesOf(mem.ClassNetCopy) != 4096 {
		t.Fatalf("tx read bytes = %d, want 4096", mc.BytesOf(mem.ClassNetCopy))
	}
}

func TestTxBlockingReadsDelayTransmit(t *testing.T) {
	run := func(blocking bool) sim.Time {
		e := sim.NewEngine(1)
		cfg := mem.DefaultConfig()
		cfg.EffectiveBW = sim.GBps(1) // slow memory: read takes ~4.2us
		mc := mem.NewController(e, cfg)
		nicCfg := DefaultConfig()
		nicCfg.TxBlockingReads = blocking
		link := pcie.NewLink(e, pcie.DefaultConfig(), func(*pcie.TLP) {})
		n := New(e, nicCfg, link, mc)
		var at sim.Time
		n.SetOutput(func(*packet.Packet) { at = e.Now() })
		n.Transmit(pkt(4096, 0))
		e.Run()
		return at
	}
	posted, blocking := run(false), run(true)
	if blocking <= posted {
		t.Fatalf("blocking tx (%v) should be slower than posted (%v)", blocking, posted)
	}
}

func TestWindowDropRate(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.RxBufferBytes = 5000
	n, _ := newNICUnderTest(e, cfg, 1<<40)
	for i := 0; i < 5; i++ {
		n.Receive(pkt(4096, uint64(i)))
	}
	n.MarkWindow()
	if n.WindowDropRate() != 0 {
		t.Fatal("window drop rate should reset at mark")
	}
	n.Receive(pkt(4096, 9))
	if n.WindowDropRate() != 1 {
		t.Fatalf("window drop rate = %v, want 1", n.WindowDropRate())
	}
}

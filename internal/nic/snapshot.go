package nic

import (
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/stats"
)

// Snapshot encodes the NIC's queue and DMA-engine state. Queued packets are
// encoded as (wire length, arrival time) pairs: enough for digests to
// distinguish queue composition. Restore recovers the scalar state; the
// packet objects themselves are replay-reconstructed.
func (n *NIC) Snapshot(e *snapshot.Encoder) {
	e.U32(uint32(n.rxQ.Len()))
	for i := 0; i < n.rxQ.Len(); i++ {
		ent := n.rxQ.At(i)
		e.Int(ent.p.WireLen())
		e.I64(int64(ent.at))
	}
	e.Int(n.rxBytes)
	e.Int(n.descFree)
	e.U32(uint32(len(n.cur) - n.curIdx))
	for _, t := range n.cur[n.curIdx:] {
		e.Int(t.Lines)
	}
	e.Bool(n.waiting)
	e.U32(uint32(n.txQ.Len()))
	e.Bool(n.txBusy)
	e.Int(n.txBytes)
	n.Arrivals.Snapshot(e)
	n.Drops.Snapshot(e)
	n.FaultDrops.Snapshot(e)
	n.DMAStarted.Snapshot(e)
	n.TxSent.Snapshot(e)
	n.rxOcc.Snapshot(e)
	n.QueueDelay.Snapshot(e)
	// PFC state is appended only in lossless mode so non-lossless images
	// stay byte-identical to the pre-PFC encoding.
	if n.cfg.PFC.Enabled {
		e.Bool(n.rxXoff)
		e.Bool(n.txPaused)
		e.I64(int64(n.txPausedAt))
		e.I64(int64(n.txPausedTotal))
		e.U32(uint32(len(n.cnpLast)))
		n.PauseAsserts.Snapshot(e)
		n.WatchdogReleases.Snapshot(e)
		n.CNPsSent.Snapshot(e)
		n.HeadroomDrops.Snapshot(e)
	}
}

// Restore reverses Snapshot for scalars and counters; queue contents are
// digest-only (packet pointers have no serializable identity).
func (n *NIC) Restore(d *snapshot.Decoder) error {
	nrx := int(d.U32())
	for i := 0; i < nrx && d.Err() == nil; i++ {
		_ = d.Int()
		_ = d.I64()
	}
	n.rxBytes = d.Int()
	n.descFree = d.Int()
	ncur := int(d.U32())
	for i := 0; i < ncur && d.Err() == nil; i++ {
		_ = d.Int()
	}
	n.waiting = d.Bool()
	_ = d.U32() // tx queue length: digest-only
	n.txBusy = d.Bool()
	n.txBytes = d.Int()
	for _, c := range []*stats.Counter{&n.Arrivals, &n.Drops, &n.FaultDrops, &n.DMAStarted, &n.TxSent} {
		if err := c.Restore(d); err != nil {
			return err
		}
	}
	if err := n.rxOcc.Restore(d); err != nil {
		return err
	}
	if err := n.QueueDelay.Restore(d); err != nil {
		return err
	}
	if n.cfg.PFC.Enabled {
		n.rxXoff = d.Bool()
		n.txPaused = d.Bool()
		n.txPausedAt = sim.Time(d.I64())
		n.txPausedTotal = sim.Time(d.I64())
		_ = d.U32() // CNP rate-limiter population: digest-only
		for _, c := range []*stats.Counter{&n.PauseAsserts, &n.WatchdogReleases, &n.CNPsSent, &n.HeadroomDrops} {
			if err := c.Restore(d); err != nil {
				return err
			}
		}
	}
	return d.Err()
}

var _ snapshot.Snapshotter = (*NIC)(nil)

package nic

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// PFCConfig makes the NIC's rx buffer lossless: instead of dropping at
// the buffer limit, the NIC asserts PFC pause toward the fabric when
// occupancy crosses XoffBytes and releases it at XonBytes; the region
// above XOFF is headroom for data already in flight. The transmit side
// honours pause frames from the switch (SetTxPaused). CE-marked arrivals
// additionally generate CNPs — the NIC-hardware half of DCQCN.
type PFCConfig struct {
	Enabled bool
	// XoffBytes: rx occupancy above which pause is asserted upstream.
	XoffBytes int
	// XonBytes: occupancy at or below which pause is released.
	XonBytes int
	// ResumeTimeout, when positive, force-releases a stuck transmit
	// pause (PFC watchdog against lost XON frames).
	ResumeTimeout sim.Time
	// CNPInterval is the minimum per-flow spacing of congestion
	// notification packets (RoCEv2 NICs rate-limit CNP generation;
	// ~50 µs in hardware).
	CNPInterval sim.Time
}

// DefaultPFCConfig derives lossless NIC thresholds from the rx buffer:
// XOFF at half, XON at a quarter, leaving half the buffer as headroom
// (512 KiB against a ~225 KiB 2×BDP requirement at 100 Gbps / 9 µs).
func DefaultPFCConfig(rxBufferBytes int) PFCConfig {
	return PFCConfig{
		Enabled:     true,
		XoffBytes:   rxBufferBytes / 2,
		XonBytes:    rxBufferBytes / 4,
		CNPInterval: 50 * sim.Microsecond,
	}
}

// Validate reports the first inconsistent PFC parameter against the
// given rx buffer size.
func (c PFCConfig) Validate(rxBufferBytes int) error {
	if !c.Enabled {
		return nil
	}
	if c.XoffBytes <= 0 || c.XoffBytes >= rxBufferBytes {
		return fmt.Errorf("nic: PFC XoffBytes %d must be in (0, RxBufferBytes %d)", c.XoffBytes, rxBufferBytes)
	}
	if c.XonBytes <= 0 || c.XonBytes > c.XoffBytes {
		return fmt.Errorf("nic: PFC XonBytes %d must be in (0, XoffBytes %d]", c.XonBytes, c.XoffBytes)
	}
	if c.ResumeTimeout < 0 {
		return fmt.Errorf("nic: negative PFC ResumeTimeout %v", c.ResumeTimeout)
	}
	if c.CNPInterval <= 0 {
		return fmt.Errorf("nic: PFC CNPInterval %v must be positive", c.CNPInterval)
	}
	return nil
}

// SetPauseUpstream installs the rx buffer's pause target — typically
// fabric.HostPauser, which models the pause frame's flight to the leaf
// switch. Called with true on XOFF, false on XON.
func (n *NIC) SetPauseUpstream(fn func(bool)) { n.pauseUpstream = fn }

// SetTxPaused gates the transmit serializer (a pause frame from the
// switch). The packet being serialized finishes; only new transmissions
// wait. With ResumeTimeout configured, a stuck pause is force-released.
func (n *NIC) SetTxPaused(on bool) {
	if on == n.txPaused {
		return
	}
	n.txPaused = on
	n.txPauseGen++
	if on {
		n.txPausedAt = n.e.Now()
		if to := n.cfg.PFC.ResumeTimeout; to > 0 {
			gen := n.txPauseGen
			n.e.After(to, func() {
				if n.txPauseGen == gen && n.txPaused {
					n.WatchdogReleases.Inc()
					n.SetTxPaused(false)
				}
			})
		}
		return
	}
	n.txPausedTotal += n.e.Now() - n.txPausedAt
	n.txPump()
}

// TxPaused reports whether the transmit path is pause-gated.
func (n *NIC) TxPaused() bool { return n.txPaused }

// TxPausedFor returns cumulative transmit pause time, including the
// current pause if one is in progress.
func (n *NIC) TxPausedFor() sim.Time {
	t := n.txPausedTotal
	if n.txPaused {
		t += n.e.Now() - n.txPausedAt
	}
	return t
}

// RxXoff reports whether the rx buffer currently holds the fabric paused.
func (n *NIC) RxXoff() bool { return n.rxXoff }

// setRxXoff transitions the rx-side pause state and notifies upstream.
func (n *NIC) setRxXoff(on bool) {
	n.rxXoff = on
	if on {
		n.PauseAsserts.Inc()
	}
	if n.pauseUpstream != nil {
		n.pauseUpstream(on)
	}
}

// maybeSendCNP generates a congestion notification packet toward the
// sender of a CE-marked arrival, rate-limited per flow — the hardware
// CNP generation of a RoCEv2 NIC. The CNP travels the reverse flow and
// is consumed by the sender's DCQCN rate controller.
func (n *NIC) maybeSendCNP(p *packet.Packet) {
	if last, ok := n.cnpLast[p.Flow]; ok && n.e.Now()-last < n.cfg.PFC.CNPInterval {
		return
	}
	if n.cnpLast == nil {
		n.cnpLast = make(map[packet.FlowID]sim.Time)
	}
	n.cnpLast[p.Flow] = n.e.Now()
	cnp := n.pool.Get()
	cnp.Flow = p.Flow.Reverse()
	cnp.Flags = packet.FlagCNP
	n.CNPsSent.Inc()
	n.Transmit(cnp)
}

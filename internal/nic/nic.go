// Package nic models the network interface card.
//
// Receive side: arriving packets enter a small on-NIC SRAM buffer. A DMA
// engine takes the head packet, fetches a receive descriptor, and issues
// the packet's TLPs over the PCIe link as credits allow; the packet leaves
// the buffer as soon as its DMA is initiated (PCIe is lossless, §2.1).
// When credits or descriptors run out the buffer fills and arriving
// packets are dropped — this is where host congestion becomes packet loss.
//
// Transmit side: a line-rate serializer feeding the fabric, optionally
// charging the host's memory controller for the DMA reads.
package nic

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/packet"
	"repro/internal/pcie"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Config parameterizes the NIC.
type Config struct {
	// RxBufferBytes is the on-NIC packet buffer (small SRAM). The paper
	// observes worst-case NIC queueing delay of 60-100 µs at ~100 Gbps,
	// implying roughly a megabyte.
	RxBufferBytes int
	// RxDescriptors is the receive descriptor pool; a descriptor is
	// consumed when a packet's DMA starts and recycled when the CPU has
	// processed the packet. Exhaustion (CPU bottleneck) stalls DMA.
	RxDescriptors int
	// LineRate is the Ethernet rate (100 Gbps).
	LineRate sim.Rate
	// TxBlockingReads makes the transmit path wait for the host memory
	// read of each packet before serializing it, exposing sender-side
	// host congestion to the transmit path (used by sender-side hostCC
	// experiments). Off by default: reads are posted.
	TxBlockingReads bool
	// PFC makes the rx buffer lossless (pause instead of drop) and
	// enables CNP generation; see PFCConfig. Disabled by default.
	PFC PFCConfig
}

// DefaultConfig returns the paper-calibrated NIC.
func DefaultConfig() Config {
	return Config{
		RxBufferBytes: 1 << 20,
		RxDescriptors: 1024,
		LineRate:      sim.Gbps(100),
	}
}

// NIC is one network interface.
type NIC struct {
	e    *sim.Engine
	cfg  Config
	link *pcie.Link
	mc   *mem.Controller // transmit DMA reads; may be nil

	// Receive state.
	rxQ      ring.Queue[rxEntry]
	rxBytes  int
	descFree int
	cur      []*pcie.TLP // TLPs of the packet being DMA'd (reused array)
	curIdx   int         // next TLP of cur to issue
	waiting  bool        // a credit wakeup is registered

	// creditResume is the one-shot credit wakeup handed to the PCIe link;
	// created once so a stall does not allocate.
	creditResume func()

	// pool, when set, receives packets the NIC drops (rx overflow, rx
	// fault); nil keeps drops GC-managed.
	pool *packet.Pool

	// Transmit state.
	txQ     ring.Queue[*packet.Packet]
	txBusy  bool
	txBytes int
	out     func(*packet.Packet)

	// Handler-table plumbing for the transmit path: txSlots parks the
	// packet being serialized (or awaiting its blocking DMA read).
	txDoneH     sim.HandlerID
	txReadDoneH sim.HandlerID
	txSlots     sim.Slots[*packet.Packet]

	// rxFault, when set, is consulted per arriving packet; returning
	// true drops it before buffer admission (fault injection: PHY-level
	// burst loss, a resetting MAC).
	rxFault func(*packet.Packet) bool

	// PFC state (lossless mode; see PFCConfig). pauseUpstream carries
	// XOFF/XON toward the fabric; txPaused gates the serializer when the
	// switch pauses us; cnpLast rate-limits CNP generation per flow
	// (lookup/insert only — never iterated, so map order cannot leak
	// into the simulation).
	pauseUpstream func(bool)
	rxXoff        bool
	txPaused      bool
	txPauseGen    uint64
	txPausedAt    sim.Time
	txPausedTotal sim.Time
	cnpLast       map[packet.FlowID]sim.Time

	// tr records rx-buffer residence spans and drop events (nil when
	// telemetry is disabled); stallCause remembers what most recently
	// blocked the DMA pump, attributing queueing to credits/descriptors.
	tr         *telemetry.Tracer
	stallCause string

	// Metrics.
	Arrivals   stats.Counter
	Drops      stats.Counter
	FaultDrops stats.Counter // drops forced by the rx fault hook
	DMAStarted stats.Counter // packets whose DMA has been initiated
	TxSent     stats.Counter
	rxOcc      stats.TimeWeighted
	QueueDelay *stats.Histogram // ns spent in the rx buffer before DMA

	// PFC metrics (counted only in lossless mode). HeadroomDrops are
	// packets lost despite PFC — the headroom above XOFF was exhausted —
	// also counted in Drops so conservation invariants keep holding.
	PauseAsserts     stats.Counter
	WatchdogReleases stats.Counter
	CNPsSent         stats.Counter
	HeadroomDrops    stats.Counter
}

// New creates a NIC. link is the PCIe path to the IIO; mc (optional)
// is charged for transmit DMA reads; out forwards transmitted packets to
// the attached fabric link.
func New(e *sim.Engine, cfg Config, link *pcie.Link, mc *mem.Controller) *NIC {
	if cfg.RxBufferBytes <= 0 || cfg.RxDescriptors <= 0 || cfg.LineRate <= 0 {
		panic("nic: invalid config")
	}
	if link == nil {
		panic("nic: nil PCIe link")
	}
	n := &NIC{
		e:          e,
		cfg:        cfg,
		link:       link,
		mc:         mc,
		descFree:   cfg.RxDescriptors,
		QueueDelay: stats.NewHistogram(30),
	}
	n.creditResume = func() {
		n.waiting = false
		n.pump()
	}
	n.txDoneH = e.Handler(n.txDone)
	n.txReadDoneH = e.Handler(n.txReadDone)
	return n
}

// rxEntry is one buffered rx packet plus its arrival time.
type rxEntry struct {
	p  *packet.Packet
	at sim.Time
}

// SetPool directs dropped packets back to pool (nil disables recycling).
func (n *NIC) SetPool(pool *packet.Pool) { n.pool = pool }

// SetTracer attaches the packet-lifecycle tracer (nil disables).
func (n *NIC) SetTracer(t *telemetry.Tracer) { n.tr = t }

// RegisterInstruments registers the NIC's metrics under prefix.
func (n *NIC) RegisterInstruments(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/nic/arrivals", "pkts", "packets arriving from the wire",
		func() float64 { return float64(n.Arrivals.Total()) })
	reg.Counter(prefix+"/nic/drops", "pkts", "rx-buffer overflow drops",
		func() float64 { return float64(n.Drops.Total()) })
	reg.Counter(prefix+"/nic/fault-drops", "pkts", "drops forced by fault injection",
		func() float64 { return float64(n.FaultDrops.Total()) })
	reg.Counter(prefix+"/nic/dma-started", "pkts", "packets whose DMA has been initiated",
		func() float64 { return float64(n.DMAStarted.Total()) })
	reg.Counter(prefix+"/nic/tx-sent", "pkts", "packets serialized onto the wire",
		func() float64 { return float64(n.TxSent.Total()) })
	reg.Gauge(prefix+"/nic/rx-bytes", "bytes", "rx buffer occupancy",
		func() float64 { return float64(n.rxBytes) })
	reg.Gauge(prefix+"/nic/free-descriptors", "descriptors", "available rx descriptors",
		func() float64 { return float64(n.descFree) })
	reg.Histogram(prefix+"/nic/queue-delay", "ns", "rx-buffer residence before DMA",
		n.QueueDelay)
	if n.cfg.PFC.Enabled {
		reg.Counter(prefix+"/nic/pfc/pause-asserts", "events", "rx-buffer XOFF assertions toward the fabric",
			func() float64 { return float64(n.PauseAsserts.Total()) })
		reg.Counter(prefix+"/nic/pfc/watchdog-releases", "events", "tx pauses force-released by the watchdog",
			func() float64 { return float64(n.WatchdogReleases.Total()) })
		reg.Counter(prefix+"/nic/pfc/cnps-sent", "pkts", "congestion notification packets generated from CE marks",
			func() float64 { return float64(n.CNPsSent.Total()) })
		reg.Counter(prefix+"/nic/pfc/headroom-drops", "pkts", "packets lost despite PFC (headroom exhausted)",
			func() float64 { return float64(n.HeadroomDrops.Total()) })
		reg.Gauge(prefix+"/nic/pfc/tx-paused", "bool", "transmit path pause-gated by the switch",
			func() float64 {
				if n.txPaused {
					return 1
				}
				return 0
			})
	}
}

// SetOutput attaches the transmit side to the fabric.
func (n *NIC) SetOutput(out func(*packet.Packet)) { n.out = out }

// Receive accepts a packet from the wire; it is dropped if the rx buffer
// is full (the only loss point in the host network).
func (n *NIC) Receive(p *packet.Packet) {
	n.Arrivals.Inc()
	if n.rxFault != nil && n.rxFault(p) {
		n.FaultDrops.Inc()
		if n.tr != nil {
			n.tr.Instant(telemetry.HopNICQueue, "nic-fault-drop", n.e.Now(),
				telemetry.KV{Key: "seq", Val: float64(p.Seq)})
		}
		n.pool.Put(p)
		return
	}
	if n.rxBytes+p.WireLen() > n.cfg.RxBufferBytes {
		// In lossless mode this is a headroom overrun: pause was asserted
		// at XOFF and the in-flight data still overran the buffer — an
		// accounted provisioning failure, not normal operation.
		n.Drops.Inc()
		if n.cfg.PFC.Enabled {
			n.HeadroomDrops.Inc()
		}
		if n.tr != nil {
			n.tr.Instant(telemetry.HopNICQueue, "nic-drop", n.e.Now(),
				telemetry.KV{Key: "seq", Val: float64(p.Seq)},
				telemetry.KV{Key: "bytes", Val: float64(p.WireLen())})
		}
		n.pool.Put(p)
		return
	}
	if n.cfg.PFC.Enabled && p.ECN == packet.CE && p.IsData() {
		n.maybeSendCNP(p)
	}
	n.tr.PacketSpanBegin(telemetry.HopNICQueue, p, n.e.Now())
	n.rxQ.Push(rxEntry{p: p, at: n.e.Now()})
	n.rxBytes += p.WireLen()
	n.rxOcc.Set(n.e.Now(), float64(n.rxBytes))
	if n.cfg.PFC.Enabled && !n.rxXoff && n.rxBytes > n.cfg.PFC.XoffBytes {
		n.setRxXoff(true)
	}
	n.pump()
}

// pump advances the DMA engine: it issues TLPs of the head packet while
// credits allow, consuming a descriptor per packet.
func (n *NIC) pump() {
	for {
		if n.curIdx >= len(n.cur) {
			if n.rxQ.Len() == 0 {
				return
			}
			if n.descFree == 0 {
				n.stallCause = "rx-descriptors"
				return
			}
			p := n.rxQ.Peek().p
			n.cur = n.link.SegmentInto(p, n.cur[:0])
			n.curIdx = 0
		}
		t := n.cur[n.curIdx]
		if !n.link.TrySend(t) {
			n.stallCause = "pcie-credits"
			if !n.waiting {
				n.waiting = true
				n.link.NotifyCredits(n.creditResume)
			}
			return
		}
		if t.First {
			// DMA initiated: the packet leaves the NIC buffer and a
			// descriptor is consumed.
			n.DMAStarted.Inc()
			ent := n.rxQ.Pop()
			if n.tr != nil {
				cause := ""
				if n.e.Now() > ent.at {
					cause = n.stallCause
				}
				n.tr.PacketSpanEnd(telemetry.HopNICQueue, t.Pkt, n.e.Now(), cause)
			}
			n.QueueDelay.Add(float64(n.e.Now() - ent.at))
			n.rxBytes -= t.Pkt.WireLen()
			n.rxOcc.Set(n.e.Now(), float64(n.rxBytes))
			if n.rxXoff && n.rxBytes <= n.cfg.PFC.XonBytes {
				n.setRxXoff(false)
			}
			n.descFree--
		}
		n.cur[n.curIdx] = nil // ownership moved to the PCIe link
		n.curIdx++
	}
}

// ReleaseDescriptor recycles one rx descriptor once the CPU has processed
// a packet (driver replenishment, §2.1 step 2).
func (n *NIC) ReleaseDescriptor() {
	if n.descFree >= n.cfg.RxDescriptors {
		panic("nic: descriptor released without matching consume")
	}
	n.descFree++
	n.pump()
}

// Transmit queues a packet for sending.
func (n *NIC) Transmit(p *packet.Packet) {
	n.txQ.Push(p)
	n.txBytes += p.WireLen()
	n.txPump()
}

func (n *NIC) txPump() {
	if n.txBusy || n.txPaused || n.txQ.Len() == 0 {
		return
	}
	n.txBusy = true
	p := n.txQ.Pop()
	n.txBytes -= p.WireLen()

	if n.mc == nil {
		n.serialize(p)
		return
	}
	req := mem.Request{Size: p.WireLen(), Class: mem.ClassNetCopy}
	if n.cfg.TxBlockingReads {
		req.CompleteCB = sim.Callback{ID: n.txReadDoneH, Arg0: n.txSlots.Put(p)}
		n.mc.Submit(req)
		return
	}
	n.mc.Submit(req) // posted read
	n.serialize(p)
}

// serialize occupies the line for the packet's wire time, then txDone.
func (n *NIC) serialize(p *packet.Packet) {
	n.e.ScheduleAfter(n.cfg.LineRate.TimeFor(p.WireLen()), n.txDoneH, n.txSlots.Put(p), 0)
}

// txReadDone fires when a blocking transmit DMA read completes; arg0 is
// the packet's slot.
func (n *NIC) txReadDone(slot, _ uint64) {
	n.serialize(n.txSlots.Take(slot))
}

// txDone fires when the serializer finishes a packet; arg0 is its slot.
func (n *NIC) txDone(slot, _ uint64) {
	p := n.txSlots.Take(slot)
	n.TxSent.Inc()
	if n.out != nil {
		n.out(p)
	}
	n.txBusy = false
	n.txPump()
}

// SetRxFault installs the receive fault hook (nil removes it).
func (n *NIC) SetRxFault(fn func(*packet.Packet) bool) { n.rxFault = fn }

// RxQueuedBytes returns the current rx buffer occupancy.
func (n *NIC) RxQueuedBytes() int { return n.rxBytes }

// RxQueuedPackets returns the number of packets buffered awaiting DMA,
// including the one whose DMA is in progress (invariant accounting).
func (n *NIC) RxQueuedPackets() int { return n.rxQ.Len() }

// WaitingForCredits reports whether the DMA engine is parked on a PCIe
// credit wakeup (the free pool cannot cover the head TLP).
func (n *NIC) WaitingForCredits() bool { return n.waiting }

// TxQueuedBytes returns bytes waiting in the transmit queue.
func (n *NIC) TxQueuedBytes() int { return n.txBytes }

// FreeDescriptors returns the available descriptor count.
func (n *NIC) FreeDescriptors() int { return n.descFree }

// DropRate returns lifetime drops/arrivals (use counters' Mark/SinceMark
// for windowed rates).
func (n *NIC) DropRate() float64 {
	if n.Arrivals.Total() == 0 {
		return 0
	}
	return float64(n.Drops.Total()) / float64(n.Arrivals.Total())
}

// WindowDropRate returns drops/arrivals since the counters were marked.
func (n *NIC) WindowDropRate() float64 {
	a := n.Arrivals.SinceMark()
	if a == 0 {
		return 0
	}
	return float64(n.Drops.SinceMark()) / float64(a)
}

// MarkWindow begins a measurement window on the NIC counters.
func (n *NIC) MarkWindow() {
	n.Arrivals.Mark()
	n.Drops.Mark()
	n.TxSent.Mark()
}

// Validate reports the first invalid parameter (New panics on the same
// conditions; Validate lets callers check first).
func (c Config) Validate() error {
	if c.RxBufferBytes <= 0 {
		return fmt.Errorf("nic: RxBufferBytes %d must be positive", c.RxBufferBytes)
	}
	if c.RxDescriptors <= 0 {
		return fmt.Errorf("nic: RxDescriptors %d must be positive", c.RxDescriptors)
	}
	if c.LineRate <= 0 {
		return fmt.Errorf("nic: LineRate %v must be positive", c.LineRate)
	}
	return c.PFC.Validate(c.RxBufferBytes)
}

package testbed

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// TestShardedScaleOutDeterministic: a multi-shard run must be a pure
// function of its config despite the shards running on real goroutines —
// two executions produce identical digest timelines frame for frame
// (VerifyReplay runs the second execution and compares). This is the
// run-twice determinism bar for the parallel engine; byte-identity with
// the serial engine is deliberately not required (the shard boundaries
// legitimately reorder same-timestamp events across shards).
func TestShardedScaleOutDeterministic(t *testing.T) {
	shapes := []struct {
		name    string
		shards  int
		leaves  int
		spines  int
		senders int
		big     bool
	}{
		{"2-shards", 2, 2, 2, 8, false},
		{"4-shards", 4, 4, 2, 32, true},
	}
	for _, c := range shapes {
		t.Run(c.name, func(t *testing.T) {
			if c.big && testing.Short() {
				t.Skip("large shape")
			}
			r, err := RunScaleOut(ScaleOutConfig{
				Topology:     "leafspine",
				Leaves:       c.leaves,
				Spines:       c.spines,
				Senders:      c.senders,
				Shards:       c.shards,
				Warmup:       1 * sim.Millisecond,
				Measure:      3 * sim.Millisecond,
				VerifyReplay: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Verified {
				t.Fatal("replay verification did not run")
			}
			if r.Frames == 0 {
				t.Fatal("no digest frames recorded")
			}
			if r.ThroughputGbps <= 0 {
				t.Fatalf("no goodput through the sharded fabric: %s", r)
			}
			if r.Shards != c.shards {
				t.Fatalf("result reports %d shards, configured %d", r.Shards, c.shards)
			}
		})
	}
}

// TestShardedChaosAcceptance reruns the multi-switch rows of the chaos
// acceptance suite on a 4-shard engine: same bars — invariants hold,
// goodput recovers within budget, and the run is replay-deterministic.
// The per-shard injectors must fire the same fault windows the serial
// injector does (FaultEvents counts shard 0's log).
func TestShardedChaosAcceptance(t *testing.T) {
	cases := []struct {
		scenario string
		budget   int
	}{
		{"trunk-flap", 150},
		{"pfc-storm", 50},
		{"pause-loss", 150},
		{"congestion-spread", 50},
	}
	for _, c := range cases {
		t.Run(c.scenario, func(t *testing.T) {
			r, err := RunChaos(ChaosConfig{
				Scenario:          c.scenario,
				Seed:              7,
				Shards:            4,
				RecoveryRTTBudget: c.budget,
				VerifyReplay:      true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Violations) != 0 {
				t.Fatalf("invariant violations: %v", r.Violations)
			}
			if r.BaselineGbps < 30 {
				t.Fatalf("implausible baseline %.1f Gbps", r.BaselineGbps)
			}
			if !r.Recovered {
				t.Fatalf("did not recover to 90%% of %.1f Gbps within %d RTTs (final %.1f): %s",
					r.BaselineGbps, c.budget, r.FinalGbps, r.Scenario)
			}
			if r.FaultEvents == 0 {
				t.Error("no fault window transitions recorded — injector not armed?")
			}
			if !r.ReplayVerified {
				t.Error("replay verification failed: second execution diverged from the first")
			}
		})
	}
}

// TestShardedSentinelNoFalseStall: the sentinel runs from the coordinator
// in sharded mode, and shards parked at window barriers must read as
// waiting-on-lookahead, not as a wedged cycle — a healthy loaded run is
// never aborted.
func TestShardedSentinelNoFalseStall(t *testing.T) {
	o := DefaultOptions()
	o.Topology = fabric.LeafSpine(2, 2)
	o.Senders = 8
	o.Receivers = 2
	o.Flows = 8
	o.HostCC = true
	o.MinRTO = sim.Millisecond
	o.Shards = 2
	tb := New(o)
	defer tb.Close()
	tb.StartNetAppT()
	s := tb.StartSentinel(sim.SentinelConfig{
		Window: 500 * sim.Microsecond,
		Policy: sim.SentinelAbort,
	})
	tb.RunUntil(4 * sim.Millisecond)
	if s.Checks == 0 {
		t.Fatal("sentinel never checked — coordinator hook not driving it")
	}
	if rep := s.Report(); rep != nil {
		t.Fatalf("healthy sharded run flagged as stalled: %s", rep)
	}
	if tb.Now() != 4*sim.Millisecond {
		t.Fatalf("run aborted early at %v", tb.Now())
	}
}

// TestShardedConfigValidation: sharding requires a topology with trunks
// to cut (star has none) and is incompatible with the shared-tracer
// telemetry path.
func TestShardedConfigValidation(t *testing.T) {
	o := DefaultOptions()
	o.Shards = 2
	if err := o.Validate(); err == nil {
		t.Error("star topology with 2 shards validated; want error")
	}
	o.Topology = fabric.LeafSpine(2, 2)
	o.Telemetry = true
	if err := o.Validate(); err == nil {
		t.Error("telemetry with 2 shards validated; want error")
	}
	o.Telemetry = false
	if err := o.Validate(); err != nil {
		t.Errorf("valid sharded config rejected: %v", err)
	}
	o.Shards = -1
	if err := o.Validate(); err == nil {
		t.Error("negative shard count validated; want error")
	}
}

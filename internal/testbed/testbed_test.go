package testbed

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestBaselineUncongested(t *testing.T) {
	opts := ScaleQuick.throughputOpts()
	tb := New(opts)
	tb.StartNetAppT()
	m := tb.RunWindow()
	if m.ThroughputGbps < 93 {
		t.Fatalf("uncongested throughput = %.1f, want ~98", m.ThroughputGbps)
	}
	if m.DropRatePct != 0 {
		t.Fatalf("uncongested drop rate = %f%%", m.DropRatePct)
	}
	if m.AvgIS < 55 || m.AvgIS > 75 {
		t.Fatalf("idle IS = %.1f, want ~65", m.AvgIS)
	}
	if m.AvgBSGbps < 98 || m.AvgBSGbps > 112 {
		t.Fatalf("idle BS = %.1f, want ~105", m.AvgBSGbps)
	}
	// NetApp-T memory amplification ~2.1 B/B (§4.2).
	amp := m.MemUtilNet * 46.9 / (m.ThroughputGbps / 8)
	if amp < 1.8 || amp > 2.4 {
		t.Fatalf("memory amplification = %.2f, want ~2.1", amp)
	}
}

func TestHostCongestionDegradesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	rows := RunCongestionSweep(ScaleQuick, false, false, []float64{0, 3})
	base, congested := rows[0].M, rows[1].M
	// Paper: >35% throughput degradation at high congestion.
	if congested.ThroughputGbps > base.ThroughputGbps*0.65 {
		t.Fatalf("3x throughput %.1f vs 0x %.1f: degradation under 35%%",
			congested.ThroughputGbps, base.ThroughputGbps)
	}
	if congested.DropRatePct == 0 {
		t.Fatal("no drops at 3x host congestion")
	}
	if congested.AvgIS <= base.AvgIS {
		t.Fatalf("IS did not rise: %.1f -> %.1f", base.AvgIS, congested.AvgIS)
	}
}

func TestHostCCRestoresThroughputAndEliminatesDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	// The headline result (Figure 10) at 3x.
	base := RunCongestionSweep(ScaleQuick, false, false, []float64{3})[0].M
	cc := RunCongestionSweep(ScaleQuick, false, true, []float64{3})[0].M
	if cc.ThroughputGbps < 70 || cc.ThroughputGbps > 85 {
		t.Fatalf("hostCC throughput %.1f, want near B_T=80", cc.ThroughputGbps)
	}
	if cc.ThroughputGbps < base.ThroughputGbps*1.4 {
		t.Fatalf("hostCC %.1f not a big win over baseline %.1f", cc.ThroughputGbps, base.ThroughputGbps)
	}
	// Orders-of-magnitude drop reduction.
	if cc.DropRatePct > base.DropRatePct/5 {
		t.Fatalf("hostCC drops %.4f%% vs baseline %.4f%%: insufficient reduction",
			cc.DropRatePct, base.DropRatePct)
	}
	if cc.MarkedPct == 0 {
		t.Fatal("hostCC never echoed congestion")
	}
	// MApp is not starved outright.
	if cc.MemUtilMApp <= 0.03 {
		t.Fatalf("MApp starved: util %.3f", cc.MemUtilMApp)
	}
}

func TestHostCCNegligibleWithoutCongestion(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	base := RunCongestionSweep(ScaleQuick, false, false, []float64{0})[0].M
	cc := RunCongestionSweep(ScaleQuick, false, true, []float64{0})[0].M
	if cc.ThroughputGbps < base.ThroughputGbps*0.97 {
		t.Fatalf("hostCC overhead at 0x: %.1f vs %.1f", cc.ThroughputGbps, base.ThroughputGbps)
	}
	if cc.MarkedPct > 1 {
		t.Fatalf("hostCC marked %.1f%% of packets without congestion", cc.MarkedPct)
	}
}

func TestFigure9LevelsMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	prevNet, prevMApp := -1.0, 1e18
	for level := 0; level < 5; level++ {
		opts := ScaleQuick.throughputOpts()
		opts.Degree = 3
		opts.FixedLevel = level
		tb := New(opts)
		tb.StartNetAppT()
		m := tb.RunWindow()
		if m.ThroughputGbps <= prevNet {
			t.Fatalf("level %d: net throughput %.1f not above previous %.1f",
				level, m.ThroughputGbps, prevNet)
		}
		if m.MAppTputGbps >= prevMApp {
			t.Fatalf("level %d: MApp throughput %.1f not below previous %.1f",
				level, m.MAppTputGbps, prevMApp)
		}
		prevNet, prevMApp = m.ThroughputGbps, m.MAppTputGbps
		if level == 4 {
			if m.ThroughputGbps < 93 {
				t.Fatalf("level 4 (pause) throughput %.1f, want line rate", m.ThroughputGbps)
			}
			if m.MAppTputGbps > 0.1 {
				t.Fatalf("level 4 MApp throughput %.1f, want 0", m.MAppTputGbps)
			}
		}
	}
}

func TestFigure16SensitivityToBT(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	for _, bt := range []float64{20, 50, 90} {
		opts := ScaleQuick.throughputOpts()
		opts.Degree = 3
		opts.HostCC = true
		opts.BT = sim.Gbps(bt)
		tb := New(opts)
		tb.StartNetAppT()
		m := tb.RunWindow()
		// Above the echo-equilibrium floor (~33G in this model, see
		// EXPERIMENTS.md) throughput should track B_T.
		if bt >= 50 && (m.ThroughputGbps < bt*0.72 || m.ThroughputGbps > bt*1.25+6) {
			t.Errorf("BT=%.0f: throughput %.1f does not track target", bt, m.ThroughputGbps)
		}
		// Low targets: drops stay minimal (arrival below drain, §5.3) and
		// MApp keeps most of the memory bandwidth.
		if bt == 20 {
			if m.DropRatePct > 0.05 {
				t.Errorf("BT=20: drop rate %.4f%%, want ~0", m.DropRatePct)
			}
			if m.MemUtilMApp < 0.25 {
				t.Errorf("BT=20: MApp util %.2f; low targets should leave MApp alone", m.MemUtilMApp)
			}
		}
	}
}

func TestFigure17SensitivityToIT(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	// Higher I_T = less aggressive reaction = more MApp bandwidth.
	low := func() Metrics {
		opts := ScaleQuick.throughputOpts()
		opts.Degree = 3
		opts.HostCC = true
		opts.IT = 70
		tb := New(opts)
		tb.StartNetAppT()
		return tb.RunWindow()
	}()
	high := func() Metrics {
		opts := ScaleQuick.throughputOpts()
		opts.Degree = 3
		opts.HostCC = true
		opts.IT = 90
		tb := New(opts)
		tb.StartNetAppT()
		return tb.RunWindow()
	}()
	if high.MemUtilMApp <= low.MemUtilMApp {
		t.Fatalf("IT=90 MApp util %.2f should exceed IT=70's %.2f",
			high.MemUtilMApp, low.MemUtilMApp)
	}
}

func TestFigure18AblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	rows := RunFigure18(ScaleQuick)
	byMode := map[core.Mode]Metrics{}
	for _, r := range rows {
		byMode[r.Mode] = r.M
	}
	echo, local, full := byMode[core.ModeEchoOnly], byMode[core.ModeLocalOnly], byMode[core.ModeFull]
	// Echo-only: low drops but degraded throughput (paper: ~28G).
	if echo.ThroughputGbps >= full.ThroughputGbps*0.85 {
		t.Errorf("echo-only throughput %.1f should trail full %.1f",
			echo.ThroughputGbps, full.ThroughputGbps)
	}
	// Local-only: throughput restored, but without the echo the host
	// runs hotter (deeper IIO occupancy; in the paper this appears as
	// IS pinned at the cap plus residual drops — our paced senders
	// absorb the overshoot at the transmit queue, so the excess shows
	// up as occupancy rather than loss; see EXPERIMENTS.md).
	if local.ThroughputGbps < full.ThroughputGbps*0.9 {
		t.Errorf("local-only throughput %.1f should be near full %.1f",
			local.ThroughputGbps, full.ThroughputGbps)
	}
	if local.DropRatePct < full.DropRatePct {
		t.Errorf("local-only drops %.4f%% below full %.4f%%",
			local.DropRatePct, full.DropRatePct)
	}
	if local.AvgIS <= full.AvgIS {
		t.Errorf("local-only IS %.1f should exceed full mode's %.1f (no echo)",
			local.AvgIS, full.AvgIS)
	}
	// Full: both good.
	if full.ThroughputGbps < 70 {
		t.Errorf("full hostCC throughput %.1f", full.ThroughputGbps)
	}
}

func TestFigure7SignalLatencyIndependentOfCongestion(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	cdfs := RunFigure7(ScaleQuick)
	if len(cdfs) != 2 {
		t.Fatalf("cdfs = %d", len(cdfs))
	}
	for _, c := range cdfs {
		if c.MaxUs > 1.3 {
			t.Errorf("congested=%v: max read latency %.2fus, want sub-1.2us", c.Congested, c.MaxUs)
		}
		if c.MeanUs < 0.4 || c.MeanUs > 0.8 {
			t.Errorf("congested=%v: mean read latency %.2fus", c.Congested, c.MeanUs)
		}
	}
	diff := cdfs[0].MeanUs - cdfs[1].MeanUs
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05 {
		t.Errorf("read latency depends on congestion: %.3f vs %.3f", cdfs[0].MeanUs, cdfs[1].MeanUs)
	}
}

func TestFigure8TraceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	traces := RunFigure8(ScaleQuick)
	idle, congested := traces[0], traces[1]
	if idle.IS.Mean() < 55 || idle.IS.Mean() > 75 {
		t.Errorf("idle IS trace mean %.1f, want ~65", idle.IS.Mean())
	}
	if congested.IS.Mean() <= idle.IS.Mean() {
		t.Errorf("congested IS %.1f not above idle %.1f", congested.IS.Mean(), idle.IS.Mean())
	}
	_, hi := congested.IS.MinMax()
	if hi < 80 {
		t.Errorf("congested IS max %.1f; should approach the ~93 credit cap", hi)
	}
	if hi > 95 {
		t.Errorf("congested IS max %.1f exceeds the credit cap", hi)
	}
	if congested.BS.Mean() >= idle.BS.Mean()*0.8 {
		t.Errorf("congested BS %.1f vs idle %.1f: insufficient PCIe degradation",
			congested.BS.Mean(), idle.BS.Mean())
	}
}

func TestFigure19SteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	tr := RunFigure19(ScaleQuick)
	// PCIe bandwidth hugs B_T (80G + ~5% overhead = 84G).
	if m := tr.BS.Mean(); m < 70 || m > 95 {
		t.Errorf("steady-state BS mean %.1f, want ~84", m)
	}
	// I_S stays mostly below I_T.
	if f := tr.IS.FractionAbove(70); f > 0.5 {
		t.Errorf("IS above threshold %.0f%% of the time", f*100)
	}
	// The response level is actively managed (not pinned at 0).
	if lo, hi := tr.Level.MinMax(); hi == 0 || hi-lo < 1 {
		t.Errorf("response level static: min=%v max=%v", lo, hi)
	}
}

func TestIncastWithAndWithoutHostCongestion(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	run := func(degree float64, hostcc bool) Metrics {
		opts := ScaleQuick.throughputOpts()
		opts.Senders = 2
		opts.Flows = 10 // 2.5x incast
		opts.Degree = degree
		opts.HostCC = hostcc
		tb := New(opts)
		tb.StartNetAppT()
		return tb.RunWindow()
	}
	// Network congestion only: hostCC ~= baseline (minimal overhead).
	b0 := run(0, false)
	h0 := run(0, true)
	if h0.ThroughputGbps < b0.ThroughputGbps*0.93 {
		t.Errorf("incast w/o host congestion: hostCC %.1f vs baseline %.1f",
			h0.ThroughputGbps, b0.ThroughputGbps)
	}
	// Host + network congestion: hostCC wins on both metrics.
	b3 := run(3, false)
	h3 := run(3, true)
	if h3.ThroughputGbps < b3.ThroughputGbps*1.2 {
		t.Errorf("incast with host congestion: hostCC %.1f vs baseline %.1f",
			h3.ThroughputGbps, b3.ThroughputGbps)
	}
	// Drops stay minimal (short windows make exact comparisons noisy
	// when the baseline happens to be mid-backoff).
	if h3.DropRatePct > b3.DropRatePct+0.1 {
		t.Errorf("incast with host congestion: hostCC drops %.4f%% vs %.4f%%",
			h3.DropRatePct, b3.DropRatePct)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MTU != 4096 || o.Flows != 4 || o.Senders != 1 || o.Seed == 0 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	tb := New(Options{})
	if tb.Receiver == nil || len(tb.Senders) != 1 || tb.HCC == nil {
		t.Fatal("testbed incomplete")
	}
	defer func() {
		if recover() == nil {
			t.Error("double StartNetAppT did not panic")
		}
	}()
	tb.StartNetAppT()
	tb.StartNetAppT()
}

func TestFlowsShareFairly(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	// Both uncongested and hostCC-managed runs should share the bottleneck
	// fairly across the 4 flows (Jain index near 1).
	for _, cfg := range []struct {
		name   string
		degree float64
		hostcc bool
	}{{"uncongested", 0, false}, {"hostcc-3x", 3, true}} {
		opts := ScaleQuick.throughputOpts()
		opts.Degree = cfg.degree
		opts.HostCC = cfg.hostcc
		tb := New(opts)
		nt := tb.StartNetAppT()
		tb.RunWindow()
		j := stats.JainIndex(nt.FlowShares())
		if j < 0.85 {
			t.Errorf("%s: Jain index %.3f across flows %v", cfg.name, j, nt.FlowShares())
		}
	}
}

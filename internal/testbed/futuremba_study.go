package testbed

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// This file implements the "future hardware" study motivated by §6:
// "Existing tools for host resource allocation are insufficient" — Intel
// MBA offers coarse non-linear levels and its MSR writes take ~22 µs. The
// paper observes (§5.1) that this coarseness makes hostCC over-backpressure
// the MApp (total memory utilization drops when switching levels 3→4).
// The study compares today's MBA against a hypothetical finer mechanism:
// more, linearly spaced levels and ~1 µs writes.

// MBAVariant describes one host-resource-allocation mechanism.
type MBAVariant struct {
	Name         string
	Levels       []cpu.Level
	WriteLatency sim.Time
}

// TodayMBA is the paper's mechanism: 5 coarse levels, 22 µs writes.
func TodayMBA() MBAVariant {
	return MBAVariant{
		Name:         "today (coarse, 22us)",
		Levels:       cpu.DefaultMBAConfig().Levels,
		WriteLatency: cpu.DefaultMBAConfig().WriteLatency,
	}
}

// FutureMBA is the §6 wish: 10 linearly spaced levels and 1 µs writes.
func FutureMBA() MBAVariant {
	levels := make([]cpu.Level, 10)
	for i := 0; i < 9; i++ {
		levels[i] = cpu.Level{Delay: sim.Time(i) * 400 * sim.Nanosecond}
	}
	levels[9] = cpu.Level{Pause: true}
	return MBAVariant{
		Name:         "future (fine, 1us)",
		Levels:       levels,
		WriteLatency: 1 * sim.Microsecond,
	}
}

// FutureMBARow is one variant's outcome.
type FutureMBARow struct {
	Variant string
	M       Metrics
}

func (r FutureMBARow) String() string {
	return fmt.Sprintf("%-22s tput=%6.1fG drop=%8.4f%% memMApp=%.2f memTotal=%.2f",
		r.Variant, r.M.ThroughputGbps, r.M.DropRatePct, r.M.MemUtilMApp, r.M.MemUtilTotal)
}

// RunFutureMBAStudy runs hostCC at 3x host congestion under each MBA
// variant. Finer-grained allocation should hold the same network target
// while leaving more bandwidth to the MApp (higher MApp and total memory
// utilization) — quantifying how much the 22 µs/coarse-level limitation
// costs today.
func RunFutureMBAStudy(s Scale) []FutureMBARow {
	var rows []FutureMBARow
	for _, v := range []MBAVariant{TodayMBA(), FutureMBA()} {
		opts := s.throughputOpts()
		opts.Degree = 3
		opts.HostCC = true
		opts.mba = &cpu.MBAConfig{Levels: v.Levels, WriteLatency: v.WriteLatency}
		tb := New(opts)
		tb.StartNetAppT()
		m := tb.RunWindow()
		rows = append(rows, FutureMBARow{Variant: v.Name, M: m})
	}
	return rows
}

package testbed

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestSentinelPFCCycle: a PFC pause storm that never clears wedges the
// trunk pair between leaf 1 and spine 0 into a pause cycle. The sentinel
// must catch it within bounded virtual time and name the failing layer —
// the verdict is "pfc-cycle" listing the paused trunks, NOT the generic
// credit deadlock — and the abort snapshot must resume to the exact same
// verdict.
func TestSentinelPFCCycle(t *testing.T) {
	const faultAt = 6 * sim.Millisecond
	const window = 500 * sim.Microsecond
	snapPath := filepath.Join(t.TempDir(), "storm.ckpt")
	r, err := RunChaos(ChaosConfig{
		Scenario: "pfc-storm",
		Seed:     7,
		FaultAt:  faultAt,
		// 50 ms storm: never clears within the run, so only the sentinel
		// ends it.
		FaultFor:        50 * sim.Millisecond,
		DigestEvery:     500 * sim.Microsecond,
		SentinelWindow:  window,
		SentinelPolicy:  sim.SentinelAbort,
		SnapshotOnStall: snapPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stall == nil {
		t.Fatal("sentinel never detected the pause-wedged fabric")
	}
	latest := faultAt + 3*window
	if r.Stall.DetectedAt > latest {
		t.Fatalf("stall detected at %v, want <= %v", r.Stall.DetectedAt, latest)
	}
	// The verdict must name the layer: a cycle of paused trunks is a
	// pfc-cycle, not the credit deadlock the PCIe wedge produces.
	if r.Stall.Class != sim.StallPFCCycle {
		t.Fatalf("classified %v, want pfc-cycle\n%s", r.Stall.Class, r.Stall.Diagnostic)
	}
	if r.Stall.Class == sim.StallDeadlock || r.Stall.Class.String() != "pfc-cycle" {
		t.Fatalf("pfc-cycle verdict not distinct from credit deadlock: %v", r.Stall.Class)
	}
	want := []string{"trunk/leaf1->spine0", "trunk/spine0->leaf1"}
	if !reflect.DeepEqual(r.Stall.Cycle, want) {
		t.Fatalf("cycle = %v, want the paused trunk pair %v\n%s", r.Stall.Cycle, want, r.Stall.Diagnostic)
	}
	if !strings.Contains(r.Stall.Diagnostic, "WEDGED") {
		t.Fatalf("diagnostic does not render wedged nodes:\n%s", r.Stall.Diagnostic)
	}

	// pfc-storm is a builtin, so the abort snapshot is resumable: the
	// replay must verify against the recorded digest frames and reach the
	// identical verdict.
	rep, err := ResumeChaos(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("resumed storm diverged from the recording: %v", rep.Divergence)
	}
	if rep.FramesChecked == 0 {
		t.Fatal("resume verified zero digest frames")
	}
	if rep.Result.Stall == nil {
		t.Fatal("resumed run did not reproduce the stall")
	}
	if rep.Result.Stall.Class != sim.StallPFCCycle || !reflect.DeepEqual(rep.Result.Stall.Cycle, r.Stall.Cycle) {
		t.Fatalf("resumed verdict %v %v != original %v %v",
			rep.Result.Stall.Class, rep.Result.Stall.Cycle, r.Stall.Class, r.Stall.Cycle)
	}
}

// TestReplayFidelityDumbbell: checkpoint/resume of the dumbbell topology.
// The two-switch shape round-trips through checkpoint meta and replays to
// the same digest timeline — the same bar the star and leaf–spine shapes
// already clear in TestReplayFidelity.
func TestReplayFidelityDumbbell(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := ChaosConfig{
		Scenario:        "credit-stall",
		Topology:        "dumbbell",
		Seed:            7,
		DigestEvery:     500 * sim.Microsecond,
		CheckpointEvery: 100_000,
		CheckpointPath:  path,
	}
	orig, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Checkpoints == 0 {
		t.Fatal("no checkpoint written — lower CheckpointEvery")
	}
	if orig.Frames == 0 {
		t.Fatal("no digest frames recorded")
	}
	rep, err := ResumeChaos(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("dumbbell replay diverged from checkpoint: %v", rep.Divergence)
	}
	if rep.FramesChecked == 0 {
		t.Fatal("replay verified zero frames")
	}
	if rep.Result.Digest != orig.Digest {
		t.Fatalf("replayed final digest %#x != original %#x", rep.Result.Digest, orig.Digest)
	}
}

// TestLosslessStudyHostCCWins pins the paper's claim on the lossless
// fabric: with the identical MApp squeeze, turning hostCC on must reduce
// PFC pause storms (fewer pause asserts, less trunk pause-gating) and
// keep goodput higher than the hostcc-off arm. The victim flow must
// complete its RPCs in both arms — a lossless fabric parks traffic, it
// does not lose it.
func TestLosslessStudyHostCCWins(t *testing.T) {
	if testing.Short() {
		t.Skip("two 10 ms testbed arms in -short mode")
	}
	r, err := RunLosslessStudy(LosslessStudyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Off.PauseAsserts == 0 {
		t.Fatalf("hostcc-off arm saw no pause storm — the squeeze is not filling the NIC buffer:\n%s", r)
	}
	if r.On.PauseAsserts >= r.Off.PauseAsserts {
		t.Errorf("hostCC did not reduce pause storms: asserts on=%d off=%d\n%s",
			r.On.PauseAsserts, r.Off.PauseAsserts, r)
	}
	if r.On.TrunkPausedUs >= r.Off.TrunkPausedUs {
		t.Errorf("hostCC did not contain congestion spreading: trunk-paused on=%.1fus off=%.1fus\n%s",
			r.On.TrunkPausedUs, r.Off.TrunkPausedUs, r)
	}
	if r.On.ThroughputGbps <= r.Off.ThroughputGbps {
		t.Errorf("hostCC did not recover goodput: on=%.1f off=%.1f Gbps\n%s",
			r.On.ThroughputGbps, r.Off.ThroughputGbps, r)
	}
	for _, arm := range []LosslessArm{r.Off, r.On} {
		if arm.VictimCompleted == 0 {
			t.Errorf("victim flow completed zero RPCs (hostcc=%v)\n%s", arm.HostCC, r)
		}
		if arm.NICHeadroomDrops != 0 {
			t.Errorf("lossless guarantee failed: %d headroom drops (hostcc=%v)", arm.NICHeadroomDrops, arm.HostCC)
		}
	}
}

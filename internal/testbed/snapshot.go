package testbed

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Registry builds the snapshot registry for this testbed: every stateful
// component, named and ordered along the datapath (engine first, then the
// receiver wire-to-app, then senders, fabric, hostCC, faults). Two runs
// built from identical Options produce identical registries, which is what
// makes their digest timelines comparable — and makes FirstDivergence
// report the most upstream divergent component.
//
// Call after the testbed is fully composed (after StartMApp / fault
// arming), so every optional component is present.
func (tb *Testbed) Registry() *snapshot.Registry {
	reg := snapshot.NewRegistry()
	reg.Register("engine", tb.E)
	if tb.Group != nil {
		// Sharded runs serialize every shard's engine; "engine" stays shard
		// 0 (tb.E) so single- and multi-shard timelines share a prefix.
		for i := 1; i < tb.Group.Shards(); i++ {
			reg.Register(fmt.Sprintf("engine/s%d", i), tb.Group.Shard(i))
		}
	}
	for i, r := range tb.Receivers {
		prefix := "rx"
		if i > 0 {
			prefix = fmt.Sprintf("rx%d", i+1)
		}
		r.RegisterSnapshots(reg, prefix)
	}
	for i, s := range tb.Senders {
		s.RegisterSnapshots(reg, fmt.Sprintf("s%d", i+1))
	}
	// SwitchName keeps the star's historical component name ("switch")
	// and names multi-switch fabrics by role (leafN/spineN/swN).
	for i, sw := range tb.Fabric.Switches {
		reg.Register(tb.Fabric.SwitchName(i), sw)
	}
	for i, l := range tb.Links {
		reg.Register(fmt.Sprintf("link/%d", i), l)
	}
	for i, l := range tb.Trunks {
		reg.Register(fmt.Sprintf("trunk/%d", i), l)
	}
	for i, h := range tb.HCCs {
		name := "hostcc"
		if i > 0 {
			name = fmt.Sprintf("hostcc%d", i+1)
		}
		reg.Register(name, h)
	}
	if tb.FluidNet != nil {
		reg.Register("fluid", tb.FluidNet)
	}
	if tb.Injector != nil {
		reg.Register("faults", tb.Injector)
		// Sharded runs arm one injector per shard; shard 0's is "faults"
		// above, the rest get per-shard names.
		for i := 1; i < len(tb.Injectors); i++ {
			reg.Register(fmt.Sprintf("faults/s%d", i), tb.Injectors[i])
		}
	}
	return reg
}

// StartSentinel arms a liveness sentinel over the receiver datapath. The
// probes cover each stage that can wedge: application goodput, NIC DMA
// starts, PCIe TLP sends, and PCIe credit returns to the free pool (the
// Releases counter deliberately excludes sequestered credits, so a
// credit-stall fault reads as a flat probe, not fake progress). Demand is
// "packets are waiting in the NIC buffer or credits are hostage", so a
// drained testbed never trips it.
// In a sharded testbed the sentinel monitors the whole ShardGroup and is
// driven from a coordinator hook (every shard quiesced at the barrier, so
// probes may safely read any shard's state) instead of an engine ticker.
func (tb *Testbed) StartSentinel(cfg sim.SentinelConfig) *sim.Sentinel {
	var s *sim.Sentinel
	if tb.Group != nil {
		s = sim.NewSentinelOn(tb.Group, cfg)
		check := cfg.Check
		if check <= 0 {
			check = cfg.Window / 4
			if check <= 0 {
				check = 1
			}
		}
		tb.Group.Every(check, func() { s.Check() })
	} else {
		s = sim.NewSentinel(tb.E, cfg)
	}
	nic, link := tb.Receiver.NIC, tb.Receiver.Link
	s.AddProbe("goodput", func() uint64 {
		if tb.NetT == nil {
			return 0
		}
		return uint64(tb.NetT.DeliveredBytes())
	})
	s.AddProbe("nic-dma", func() uint64 { return uint64(nic.DMAStarted.Total()) })
	s.AddProbe("pcie-sent", func() uint64 { return uint64(link.Sent.Total()) })
	s.AddProbe("pcie-release", func() uint64 { return uint64(link.Releases.Total()) })
	s.SetDemand(func() bool {
		if nic.RxQueuedPackets() > 0 || link.SequesteredCredits() > 0 {
			return true
		}
		// Lossless fabrics add a demand source the host probes can't see:
		// frames parked behind a paused trunk port. Without this a pause
		// storm reads as benign quiescence once the host-side queues drain.
		if tb.Opts.Lossless {
			for _, tp := range tb.Fabric.TrunkPorts {
				if tp.Sw.PortPaused(tp.Port) && tp.Sw.PortQueueBytes(tp.Port) > 0 {
					return true
				}
			}
		}
		return false
	})
	s.SetGraphBuilder(tb.buildWaitGraph)
	s.SetEscape(func() bool { return link.ForceReclaim() > 0 })
	s.Start()
	return s
}

// buildWaitGraph captures who-waits-for-whom across the receive datapath
// at stall-detection time. The structural cycle — DMA needs credit lines,
// lines come back through the IIO completion path, and a credit-stall
// fault wedges that path while sequestering every returned line — is what
// lets the classifier tell a credit deadlock from plain starvation.
func (tb *Testbed) buildWaitGraph() *sim.WaitGraph {
	nic, link := tb.Receiver.NIC, tb.Receiver.Link
	queued := nic.RxQueuedPackets()
	waiting := nic.WaitingForCredits()
	credits := link.Credits()
	seq := link.SequesteredCredits()
	stalled := link.CreditStalled()
	var downLinks int
	for _, l := range tb.Links {
		if l.IsDown() {
			downLinks++
		}
	}
	for _, l := range tb.Trunks {
		if l.IsDown() {
			downLinks++
		}
	}

	g := sim.NewWaitGraph()
	g.AddNode("nic-dma", queued > 0, !waiting,
		fmt.Sprintf("%d packets queued, %d descriptors free", queued, nic.FreeDescriptors()))
	g.AddNode("pcie-credits", waiting || seq > 0, !waiting,
		fmt.Sprintf("%d/%d credit lines free, %d sequestered", credits, link.Config().CreditLines, seq))
	g.AddNode("iio-release", seq > 0, !stalled,
		fmt.Sprintf("credit return path stalled=%v, %d lines held", stalled, seq))
	g.AddNode("fabric", downLinks > 0, downLinks == 0,
		fmt.Sprintf("%d/%d links down", downLinks, len(tb.Links)+len(tb.Trunks)))

	g.AddEdge("nic-dma", "pcie-credits", "DMA engine needs TLP credit lines")
	g.AddEdge("pcie-credits", "iio-release", "lines return on IIO write completion")
	if stalled {
		g.AddEdge("iio-release", "pcie-credits", "release path sequesters returned lines")
	}
	if downLinks > 0 {
		g.AddEdge("fabric", "nic-dma", "deliveries blocked on down link")
	}

	// Lossless fabrics add one node per directed trunk port, tagged "pfc":
	// wedged when frames are queued behind an asserted pause. Edges follow
	// the buffer dependency — a paused port's frames can only drain through
	// the switch it feeds — so a pause loop across tiers closes into a
	// cycle of all-"pfc" nodes, which Classify names pfc-cycle (distinct
	// from the host's credit deadlock).
	if tb.Opts.Lossless {
		tps := tb.Fabric.TrunkPorts
		for _, tp := range tps {
			queued := tp.Sw.PortQueueBytes(tp.Port)
			paused := tp.Sw.PortPaused(tp.Port)
			g.AddNodeKind("trunk/"+tp.Name, "pfc", queued > 0, !paused,
				fmt.Sprintf("%d bytes queued, paused=%v", queued, paused))
		}
		for i, a := range tps {
			for j, b := range tps {
				if i != j && a.To == b.From {
					g.AddEdge("trunk/"+a.Name, "trunk/"+b.Name,
						"queued frames drain through the downstream switch")
				}
			}
		}
	}

	// A sharded run adds one node per shard, tagged "barrier". A shard
	// parked at a window barrier is waiting on lookahead, not wedged, so
	// the nodes are always Moving — the classifier reads a pure
	// barrier-wait graph as idle rather than a deadlock, even though the
	// neighbor-horizon edges form a cycle.
	if tb.Group != nil {
		n := tb.Group.Shards()
		for i := 0; i < n; i++ {
			e := tb.Group.Shard(i)
			g.AddNodeKind(fmt.Sprintf("shard/%d", i), "barrier", e.Pending() > 0, true,
				fmt.Sprintf("at barrier t=%.3fms, %d events pending", e.Now().Millis(), e.Pending()))
		}
		for i := 0; n > 1 && i < n; i++ {
			g.AddEdge(fmt.Sprintf("shard/%d", i), fmt.Sprintf("shard/%d", (i+1)%n),
				"window advance waits on neighbor horizon")
		}
	}
	return g
}

package testbed

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/transport"
)

// ScaleOutConfig parameterizes a scale-out run: many senders fanning
// flows across several hostCC-equipped receivers through a multi-switch
// fabric. Where ChaosConfig studies fault recovery, ScaleOutConfig
// studies scale — the run is fault-free and the interesting outputs are
// aggregate goodput, in-fabric congestion (trunk queues, switch drops
// and marks), and the determinism proof (two runs, identical digest
// timelines).
type ScaleOutConfig struct {
	// Topology names the fabric shape ("star", "leafspine", "dumbbell";
	// "" = leafspine, the scale-out default).
	Topology string
	// Leaves / Spines size a leaf–spine fabric (0 keeps the topology
	// defaults: 2 leaves, 2 spines).
	Leaves, Spines int

	// Senders is the sending-host count (0 = 32). Receivers defaults to
	// one per 16 senders (min 2, so cross-rack fan-in actually fans);
	// Flows defaults to one per sender.
	Senders   int
	Receivers int
	Flows     int

	// Scheme selects the transport congestion control by public scheme
	// name ("" = dctcp). Lossless schemes (dcqcn) run on their native PFC
	// fabric with the pause watchdog armed, as in the evaluation harness.
	Scheme string

	// FluidHosts, when > 0, enables the hybrid fluid/packet tier with
	// that many virtual background hosts. FluidFlows sets the background
	// flow count (0 = 4 × FluidHosts); FluidPromotable gives that many
	// lead flows packet-level twins that promote under congestion.
	FluidHosts      int
	FluidFlows      int
	FluidPromotable int

	Seed int64
	// Shards partitions the run across parallel engine shards (0/1 =
	// classic serial engine). Requires a multi-switch topology.
	Shards int
	// Degree of host congestion at every receiver (default 2x).
	Degree float64
	// Warmup / Measure bound the run (defaults 2 ms / 8 ms — shorter
	// than the figure runners because the event population scales with
	// Senders).
	Warmup  sim.Time
	Measure sim.Time

	// DigestEvery is the digest-frame recording period (0 = 500 µs).
	DigestEvery sim.Time
	// VerifyReplay re-executes the run from the same config and compares
	// the two digest timelines frame by frame; a divergence is returned
	// as an error naming the most upstream divergent component.
	VerifyReplay bool
}

func (c ScaleOutConfig) withDefaults() ScaleOutConfig {
	if c.Topology == "" {
		c.Topology = "leafspine"
	}
	if c.Scheme == "" {
		c.Scheme = "dctcp"
	}
	if c.Senders == 0 {
		c.Senders = 32
	}
	if c.Receivers == 0 {
		c.Receivers = max(2, c.Senders/16)
	}
	if c.Flows == 0 {
		c.Flows = c.Senders
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Degree == 0 {
		c.Degree = 2
	}
	if c.Warmup == 0 {
		c.Warmup = 2 * sim.Millisecond
	}
	if c.Measure == 0 {
		c.Measure = 8 * sim.Millisecond
	}
	if c.DigestEvery == 0 {
		c.DigestEvery = 500 * sim.Microsecond
	}
	return c
}

// ScaleOutResult summarizes one scale-out run.
type ScaleOutResult struct {
	Topology  string
	Switches  int
	Trunks    int
	Senders   int
	Receivers int
	Flows     int
	Scheme    string
	Seed      int64
	Shards    int

	// Fluid tier outputs (zero without FluidHosts): background flow
	// count, their aggregate goodput over the whole run, and how many
	// promote/demote transitions the run saw.
	FluidFlows       int
	FluidGoodputGbps float64
	Promotions       uint64
	Demotions        uint64

	// Aggregate NetApp-T goodput over the measurement window, and the
	// in-fabric congestion it produced.
	ThroughputGbps float64
	SwitchDrops    int64
	SwitchMarks    int64
	NetTimeouts    int64
	NetRetx        int64

	// MaxPending / HeapCap report the engine's peak pending-event count
	// against its reserved capacity — the Reserve-sizing audit. Sharded
	// runs report the maximum across shards. Events is the total events
	// processed (summed across shards).
	MaxPending int
	HeapCap    int
	Events     uint64

	// Digest is the combined final-state hash; ComponentDigests the
	// per-component breakdown; Frames the digest frames recorded;
	// Verified whether a second run reproduced every frame (false when
	// VerifyReplay is off).
	Digest           uint64
	ComponentDigests []snapshot.Digest
	Frames           int
	Verified         bool
}

// String renders the result as a one-line summary.
func (r ScaleOutResult) String() string {
	v := ""
	if r.Verified {
		v = ", replay verified"
	}
	shape := r.Topology
	if r.Shards > 1 {
		shape = fmt.Sprintf("%s x%d shards", r.Topology, r.Shards)
	}
	fl := ""
	if r.FluidFlows > 0 {
		fl = fmt.Sprintf("; fluid %d flows %.1f Gbps (%d promote, %d demote)",
			r.FluidFlows, r.FluidGoodputGbps, r.Promotions, r.Demotions)
	}
	return fmt.Sprintf(
		"%s %s (%d switches, %d trunks): %d senders -> %d receivers, %d flows: %.1f Gbps; switch drops=%d marks=%d rto=%d retx=%d%s; digest %#016x over %d frames%s",
		shape, r.Scheme, r.Switches, r.Trunks, r.Senders, r.Receivers, r.Flows,
		r.ThroughputGbps, r.SwitchDrops, r.SwitchMarks, r.NetTimeouts, r.NetRetx,
		fl, r.Digest, r.Frames, v)
}

// RunScaleOut executes one scale-out run (twice under VerifyReplay) and
// returns the aggregate metrics. The run is a deterministic function of
// cfg: same config, same digest timeline, frame for frame.
func RunScaleOut(cfg ScaleOutConfig) (ScaleOutResult, error) {
	cfg = cfg.withDefaults()
	res, tl, err := runScaleOut(cfg)
	if err != nil {
		return res, err
	}
	if cfg.VerifyReplay {
		res2, tl2, err := runScaleOut(cfg)
		if err != nil {
			return res, fmt.Errorf("testbed: scale-out replay: %w", err)
		}
		if div, found := snapshot.FirstDivergence(tl, tl2); found {
			return res, fmt.Errorf("testbed: scale-out replay diverged: %s", div)
		}
		if res2.Digest != res.Digest {
			return res, fmt.Errorf("testbed: scale-out replay final digest %#016x != %#016x",
				res2.Digest, res.Digest)
		}
		res.Verified = true
	}
	return res, nil
}

// runScaleOut is one execution: build, load, record, measure.
func runScaleOut(cfg ScaleOutConfig) (ScaleOutResult, *snapshot.Timeline, error) {
	kind, err := fabric.ParseTopologyKind(cfg.Topology)
	if err != nil {
		return ScaleOutResult{}, nil, err
	}
	topo := fabric.Topology{Kind: kind, Leaves: cfg.Leaves, Spines: cfg.Spines}
	scheme, err := transport.SchemeByName(cfg.Scheme)
	if err != nil {
		return ScaleOutResult{}, nil, err
	}

	opts := DefaultOptions()
	opts.Seed = cfg.Seed
	opts.CC = scheme.Factory()
	if scheme.Lossless {
		// DCQCN runs on its native lossless fabric, watchdog armed, the
		// same pairing the evaluation harness uses.
		opts.Lossless = true
		opts.PauseWatchdog = 150 * sim.Microsecond
	}
	opts.HostCC = true
	opts.Degree = cfg.Degree
	opts.Topology = topo
	opts.Senders = cfg.Senders
	opts.Receivers = cfg.Receivers
	opts.Flows = cfg.Flows
	opts.Warmup = cfg.Warmup
	opts.Measure = cfg.Measure
	// Incast at scale recovers by RTO; the Linux 200 ms default would
	// park most flows for the entire measurement window.
	opts.MinRTO = sim.Millisecond
	opts.Shards = cfg.Shards
	if cfg.FluidHosts > 0 {
		opts.FluidBackground = &FluidBackground{
			Hosts:      cfg.FluidHosts,
			Flows:      cfg.FluidFlows,
			Promotable: cfg.FluidPromotable,
		}
	}
	if err := opts.Validate(); err != nil {
		return ScaleOutResult{}, nil, err
	}

	tb := New(opts)
	defer tb.Close()
	res := ScaleOutResult{
		Topology:  kind.String(),
		Switches:  topo.Switches(),
		Trunks:    len(tb.Trunks),
		Senders:   opts.Senders,
		Receivers: opts.Receivers,
		Flows:     opts.Flows,
		Scheme:    scheme.Name,
		Seed:      opts.Seed,
		Shards:    opts.Shards,
	}
	tb.StartNetAppT()

	// The recorder runs on the coordinator in sharded mode: every shard is
	// quiesced at the hook, so the registry digest reads a consistent
	// global state at one virtual time.
	reg := tb.Registry()
	timeline := &snapshot.Timeline{}
	recording := true
	tb.Every(cfg.DigestEvery, func() {
		if !recording {
			return
		}
		timeline.Append(snapshot.Frame{
			At:      int64(tb.Now()),
			Events:  tb.Processed(),
			Digests: reg.Digests(),
		})
	})

	m := tb.RunWindow()
	res.ThroughputGbps = m.ThroughputGbps
	res.NetTimeouts = m.NetTimeouts
	res.NetRetx = m.NetRetx
	res.SwitchDrops = tb.Fabric.Drops()
	res.SwitchMarks = tb.Fabric.Marks()
	res.MaxPending = tb.MaxPendingEvents()
	res.HeapCap = tb.EventHeapCap()
	res.Events = tb.Processed()
	if tb.FluidNet != nil {
		res.FluidFlows = tb.FluidNet.Flows()
		elapsed := tb.Now().Seconds()
		if elapsed > 0 {
			delivered := tb.FluidNet.DeliveredBytes()
			if tb.FluidTwins != nil {
				delivered += float64(tb.FluidTwins.DeliveredBytes())
			}
			res.FluidGoodputGbps = delivered * 8 / elapsed / 1e9
		}
		res.Promotions = tb.FluidNet.Promotions()
		res.Demotions = tb.FluidNet.Demotions()
	}

	for _, h := range tb.HCCs {
		h.Stop()
	}
	recording = false
	res.Frames = timeline.Len()
	res.ComponentDigests = reg.Digests()
	res.Digest = snapshot.Combined(res.ComponentDigests)
	return res, timeline, nil
}

package testbed

import "testing"

func TestIOMMUStudyShowsTheBlindSpot(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	rows := RunIOMMUStudy(ScaleBench)
	byEntries := map[int]IOMMURow{}
	for _, r := range rows {
		byEntries[r.IOTLBEntries] = r
	}
	off, thrashed, big := byEntries[0], byEntries[32], byEntries[1024]

	// An undersized IOTLB degrades throughput substantially.
	if thrashed.M.ThroughputGbps > off.M.ThroughputGbps*0.8 {
		t.Errorf("thrashed IOTLB throughput %.1f vs baseline %.1f: no degradation",
			thrashed.M.ThroughputGbps, off.M.ThroughputGbps)
	}
	// ... while the IIO occupancy signal goes DOWN, not up: stock hostCC
	// cannot see this congestion (§6).
	if thrashed.M.AvgIS >= off.M.AvgIS {
		t.Errorf("thrashed IS %.1f should be below baseline %.1f (the blind spot)",
			thrashed.M.AvgIS, off.M.AvgIS)
	}
	if thrashed.M.AvgIS > 65 {
		t.Errorf("thrashed IS %.1f would cross the I_T threshold; blind spot not reproduced",
			thrashed.M.AvgIS)
	}
	// The candidate signal identifies it.
	if thrashed.MissRate < 0.9 {
		t.Errorf("thrashed miss rate %.2f, want ~1.0", thrashed.MissRate)
	}
	// A large-enough IOTLB restores line rate.
	if big.M.ThroughputGbps < off.M.ThroughputGbps*0.97 {
		t.Errorf("large IOTLB throughput %.1f vs baseline %.1f",
			big.M.ThroughputGbps, off.M.ThroughputGbps)
	}
	if big.MissRate > 0.05 {
		t.Errorf("large IOTLB miss rate %.3f, want ~0", big.MissRate)
	}
}

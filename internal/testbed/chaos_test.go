package testbed

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
)

// TestChaosGracefulDegradation is the acceptance suite: for each core
// fault scenario the system must keep its invariants, avoid deadlock (the
// run completing at all), and return to ≥90% of fault-free goodput within
// 50 RTTs of the fault clearing.
func TestChaosGracefulDegradation(t *testing.T) {
	cases := []struct {
		scenario string
		// wantTrip: the watchdog must trip (signal-path faults) and then
		// re-arm once the signal returns.
		wantTrip bool
		// wantRetries: the read-back loop must re-issue at least one
		// silently dropped MBA write.
		wantRetries bool
		// budget: recovery bar in RTTs (0 = the default 50). trunk-flap
		// gets 150: a spine partition kills every cross-rack in-flight
		// packet at once, so recovery is pure RTO — and whether the first
		// 1 ms retry lands inside or after the 600 µs flap window (one
		// extra backoff doubling) is seed-dependent timing.
		budget int
		// verifyReplay: run twice and require the digest timelines to
		// match frame for frame (the lossless scenarios' acceptance bar).
		verifyReplay bool
	}{
		{"msr-stale", true, false, 0, false},
		{"mba-drop", false, true, 0, false},
		{"link-flap", false, false, 0, false},
		// trunk-flap runs on its natural leaf–spine topology: the fabric
		// partitions at the spine while access links stay up, and recovery
		// is RTO-driven through the re-healed trunks.
		{"trunk-flap", false, false, 150, false},
		{"credit-stall", false, false, 0, false},
		// The lossless scenarios run on a PFC + DCQCN leaf–spine fabric,
		// each replay-verified (two executions, identical digest frames).
		// pfc-storm: forced trunk pauses freeze cross-rack traffic, the
		// fabric must drain when the storm clears. pause-loss gets a wide
		// budget: which pause frames vanish is seed-dependent, and a lost
		// XON wedges a port until the 150 µs PFC watchdog force-releases
		// it, so recovery stacks watchdog timeouts on RTO backoff.
		{"pfc-storm", false, false, 0, true},
		{"pause-loss", false, false, 150, true},
		{"congestion-spread", false, false, 0, true},
	}
	for _, c := range cases {
		t.Run(c.scenario, func(t *testing.T) {
			budget := c.budget
			if budget == 0 {
				budget = 50
			}
			r, err := RunChaos(ChaosConfig{
				Scenario:          c.scenario,
				Seed:              7,
				RecoveryRTTBudget: budget,
				VerifyReplay:      c.verifyReplay,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Violations) != 0 {
				t.Fatalf("invariant violations: %v", r.Violations)
			}
			if r.BaselineGbps < 30 {
				t.Fatalf("implausible baseline %.1f Gbps", r.BaselineGbps)
			}
			if !r.Recovered {
				t.Fatalf("did not recover to 90%% of %.1f Gbps within %d RTTs (final %.1f): %s",
					r.BaselineGbps, budget, r.FinalGbps, r)
			}
			if r.RecoveryRTTs > float64(budget) {
				t.Fatalf("recovery took %.0f RTTs, budget %d", r.RecoveryRTTs, budget)
			}
			if c.wantTrip {
				if r.WatchdogTrips == 0 {
					t.Error("signal fault did not trip the watchdog")
				}
				if r.WatchdogRearms == 0 || r.WatchdogState != "armed" {
					t.Errorf("watchdog did not re-arm after the signal returned (state %q, rearms %d)",
						r.WatchdogState, r.WatchdogRearms)
				}
			}
			if c.wantRetries && r.MBARetries == 0 {
				t.Error("dropped MBA writes were never re-issued by the read-back loop")
			}
			if r.FaultEvents == 0 {
				t.Error("no fault window transitions recorded — injector not armed?")
			}
			if c.verifyReplay {
				if !r.ReplayVerified {
					t.Error("replay verification failed: second execution diverged from the first")
				}
				if r.ReplayFrames == 0 {
					t.Error("replay verified zero digest frames")
				}
			}
		})
	}
}

// TestChaosDeterministic: a chaos run is a pure function of its config —
// same seed, same scenario, bit-identical result. Uses the storm scenario
// because it exercises the most RNG draws (three probabilistic injectors).
func TestChaosDeterministic(t *testing.T) {
	run := func() ChaosResult {
		r, err := RunChaos(ChaosConfig{Scenario: "storm", Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n  %+v\n  %+v", a, b)
	}
}

// TestChaosAllScenarios runs every built-in scenario end to end: no
// panics, no invariant violations, and the injector actually fired.
func TestChaosAllScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep in -short mode")
	}
	for _, sc := range ChaosScenarios() {
		t.Run(sc, func(t *testing.T) {
			r, err := RunChaos(ChaosConfig{Scenario: sc, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Violations) != 0 {
				t.Fatalf("invariant violations: %v", r.Violations)
			}
			if r.FaultEvents == 0 {
				t.Fatal("no fault events recorded")
			}
			if r.InvariantChecks == 0 {
				t.Fatal("invariant checker never ran")
			}
		})
	}
}

// TestChaosMSRFailKeepsThroughput: with every MSR read failing, the
// watchdog's conservative fallback must keep network goodput up (it
// over-throttles the MApp; the alternative — a controller acting on a
// decayed-to-zero signal — would hand the host to the MApp and tank
// network throughput). Degradation is graceful by construction.
func TestChaosMSRFailKeepsThroughput(t *testing.T) {
	r, err := RunChaos(ChaosConfig{Scenario: "msr-fail", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.FailedSamples == 0 {
		t.Fatal("no failed samples — fault not injected")
	}
	if r.FaultGbps < 0.9*r.BaselineGbps {
		t.Fatalf("goodput during MSR blackout %.1f Gbps fell below 90%% of baseline %.1f",
			r.FaultGbps, r.BaselineGbps)
	}
	if r.WatchdogTrips == 0 {
		t.Fatal("sustained read failures did not trip the watchdog")
	}
}

// TestChaosCustomPlan: RunChaos accepts an explicit plan in place of a
// built-in scenario name.
func TestChaosCustomPlan(t *testing.T) {
	p := faults.Plan{Name: "custom", Injections: []faults.Injection{
		faults.OneShot(faults.MSRStale, 6*sim.Millisecond, 300*sim.Microsecond),
		faults.Probabilistic(faults.NICDrop, 6*sim.Millisecond, 300*sim.Microsecond, 0.05),
	}}
	r, err := RunChaos(ChaosConfig{Plan: &p, Seed: 5, FaultFor: 300 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scenario != "custom" {
		t.Errorf("scenario = %q, want custom", r.Scenario)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("invariant violations: %v", r.Violations)
	}
}

func TestChaosUnknownScenario(t *testing.T) {
	if _, err := RunChaos(ChaosConfig{Scenario: "no-such-fault"}); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

// TestChaosBBRLinkFlapRecovers pins the BBR idle-restart fix at system
// level: a link flap silences the path long past the 10 s RTprop filter
// window's worth of samples, and before the fix the pinned stale RTprop
// (measured on an idle, queue-free path) capped the post-fault inflight
// so hard that goodput never returned to baseline. With the filter
// expiring on idle restart, BBR must ride through the flap and recover
// inside the standard budget.
func TestChaosBBRLinkFlapRecovers(t *testing.T) {
	res, err := RunChaos(ChaosConfig{Scenario: "link-flap", Scheme: "bbr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("invariant violations: %v", res.Violations)
	}
	if !res.Recovered {
		t.Fatalf("BBR did not recover from link-flap: %s", res)
	}
}

// Package testbed wires hosts, fabric, applications and hostCC into the
// paper's experimental setups and provides one runner per evaluation
// figure. Every figure in §2 and §5 has a corresponding Run function
// returning typed rows; the bench harness at the repository root and
// cmd/hostcc-bench both print them.
package testbed

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/host"
	"repro/internal/iommu"
	"repro/internal/msr"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Config selects one experimental configuration.
//
// Naming convention (repo-wide): the parameter struct a package's New
// function takes is named Config, built by DefaultConfig, and checked by
// Validate. testbed.Options is a deprecated alias from before the
// convention.
type Config struct {
	Seed    int64
	MTU     int
	DDIO    bool
	Flows   int     // NetApp-T flows
	Senders int     // sending hosts (2 for incast)
	Degree  float64 // degree of host congestion (MApp units at receiver)

	// LinkRate overrides every fabric link's rate and each NIC's line
	// rate together (0 keeps the paper's 100 Gbps).
	LinkRate sim.Rate

	// Telemetry enables the event tracer: per-hop packet spans and
	// counter tracks, collected into a telemetry.Timeline. Instrument
	// registration is always on (it costs nothing per event); the tracer
	// is opt-in because it records per-packet state.
	Telemetry bool

	// CC is the network congestion control (nil = DCTCP).
	CC transport.CCFactory

	// HostCC enables the hostCC module; Mode refines it for ablations.
	HostCC bool
	Mode   core.Mode
	IT     float64  // 0 = paper default (70 / 50 with DDIO)
	BT     sim.Rate // 0 = paper default (80 Gbps)

	// FixedLevel, when >= 0, disables the dynamic response and hard-codes
	// the MBA level (the Figure 9 calibration experiment).
	FixedLevel int

	// MinRTO overrides the transport's minimum RTO (0 keeps the Linux
	// default of 200 ms). Throughput experiments lower it so the startup
	// transient settles within an affordable warmup.
	MinRTO sim.Time

	// Ablation overrides (0 keeps the paper defaults): the I_S EWMA
	// weight (§4.1), the signal sampling interval, and the MBA MSR write
	// latency (§6 discusses the 22 µs hardware limitation).
	SignalWeightIS  float64
	SampleInterval  sim.Time
	MBAWriteLatency sim.Time

	// WireLossProb injects independent random packet loss on every
	// fabric link (failure injection; 0 for the paper's lossless links).
	WireLossProb float64

	// Faults, when non-nil, arms a fault-injection plan against the
	// receiver's hardware seams (internal/faults). The plan's events run
	// on the testbed engine, so the whole chaotic run is reproducible
	// from Seed.
	Faults *faults.Plan

	// Watchdog enables hostCC's failsafe with the given config (nil
	// disables it, the pre-hardening behavior).
	Watchdog *core.WatchdogConfig

	// Invariants runs the datapath invariant checker during the run;
	// violations panic (a chaotic run that broke conservation laws has
	// no valid results).
	Invariants bool

	Warmup  sim.Time
	Measure sim.Time

	// iommu, when set, enables DMA translation at the receiver (used by
	// the IOMMU study; see iommu_study.go).
	iommu *iommu.Config
	// mba, when set, replaces the receiver's MBA mechanism (used by the
	// future-hardware study; see futuremba_study.go).
	mba *cpu.MBAConfig
}

// Options is the pre-convention name for Config.
//
// Deprecated: use Config.
type Options = Config

// Validate reports the first invalid parameter. Zero values are not
// errors — withDefaults fills them — so this catches only parameters no
// default can repair.
func (o Config) Validate() error {
	if o.MTU < 0 {
		return fmt.Errorf("testbed: negative MTU %d", o.MTU)
	}
	if o.Flows < 0 {
		return fmt.Errorf("testbed: negative Flows %d", o.Flows)
	}
	if o.Senders < 0 {
		return fmt.Errorf("testbed: negative Senders %d", o.Senders)
	}
	if o.Degree < 0 {
		return fmt.Errorf("testbed: negative Degree %v", o.Degree)
	}
	if o.LinkRate < 0 {
		return fmt.Errorf("testbed: negative LinkRate %v", o.LinkRate)
	}
	if o.WireLossProb < 0 || o.WireLossProb > 1 {
		return fmt.Errorf("testbed: WireLossProb %v outside [0,1]", o.WireLossProb)
	}
	if o.Warmup < 0 || o.Measure < 0 {
		return fmt.Errorf("testbed: negative window (warmup %v, measure %v)", o.Warmup, o.Measure)
	}
	if o.Mode < core.ModeFull || o.Mode > core.ModeOff {
		return fmt.Errorf("testbed: unknown hostCC mode %d", o.Mode)
	}
	if o.FixedLevel < -1 {
		return fmt.Errorf("testbed: FixedLevel %d below -1 (use -1 for dynamic)", o.FixedLevel)
	}
	if o.Watchdog != nil {
		if err := o.Watchdog.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// DefaultConfig returns the baseline single-sender setup.
func DefaultConfig() Config {
	return Config{
		Seed:       42,
		MTU:        4096,
		Flows:      4,
		Senders:    1,
		FixedLevel: -1,
		Warmup:     4 * sim.Millisecond,
		Measure:    16 * sim.Millisecond,
	}
}

// DefaultOptions is the pre-convention name for DefaultConfig.
//
// Deprecated: use DefaultConfig.
func DefaultOptions() Options { return DefaultConfig() }

func (o Config) withDefaults() Config {
	d := DefaultConfig()
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.MTU == 0 {
		o.MTU = d.MTU
	}
	if o.Flows == 0 {
		o.Flows = d.Flows
	}
	if o.Senders == 0 {
		o.Senders = d.Senders
	}
	if o.Warmup == 0 {
		o.Warmup = d.Warmup
	}
	if o.Measure == 0 {
		o.Measure = d.Measure
	}
	return o
}

// Testbed is one constructed experiment.
type Testbed struct {
	E        *sim.Engine
	Opts     Options
	Receiver *host.Host
	Senders  []*host.Host
	Sw       *fabric.Switch
	HCC      *core.HostCC
	NetT     *apps.NetAppT

	// Links holds every fabric link (receiver first, then senders; up
	// link before down link) — the LinkFlap fault seam.
	Links []*fabric.Link
	// Injector is the armed fault injector (nil without Options.Faults).
	Injector *faults.Injector
	// Inv is the invariant checker (nil without Options.Invariants).
	Inv *core.InvariantChecker

	// Reg indexes every instrument of the testbed (always built — a
	// registered instrument is a name plus a read closure, with no
	// per-event cost). Prefixes: receiver, senderN, switch, fabric/linkN.
	Reg *telemetry.Registry
	// Tr is the event tracer (nil unless Config.Telemetry).
	Tr *telemetry.Tracer

	// Window bookkeeping for exact signal averages.
	winStart   sim.Time
	winROCC    uint64
	winRINS    uint64
	winMarked  int64
	winSwDrops int64
}

// receiverID is the receiver's host ID; senders are 2, 3, ...
const receiverID packet.HostID = 1

// New builds the testbed: hosts, bidirectional links through one switch,
// hostCC on the receiver (in ModeOff when disabled, so signals are still
// measured), and the receiver-side MApp at the requested degree.
func New(opts Options) *Testbed {
	opts = opts.withDefaults()
	e := sim.NewEngine(opts.Seed)
	// A loaded multi-host run keeps a few thousand events pending (timers,
	// per-packet serialization/propagation events across every link);
	// reserving up front means warm-up never pays a heap regrowth copy.
	e.Reserve(4096 * (1 + opts.Senders))
	tb := &Testbed{E: e, Opts: opts, Reg: telemetry.NewRegistry()}
	if opts.Telemetry {
		tb.Tr = telemetry.NewTracer()
	}

	// One pool for the whole testbed: sender transports Get the packets
	// that the receiver's rx path Puts, so the free list must be shared.
	pool := packet.NewPool(1024)

	tcfg := transport.DefaultConfig(opts.MTU)
	if opts.CC != nil {
		tcfg.CC = opts.CC
	}
	if opts.MinRTO > 0 {
		tcfg.MinRTO = opts.MinRTO
		tcfg.InitialRTO = opts.MinRTO
	}

	mkHost := func(id packet.HostID) *host.Host {
		hcfg := host.DefaultConfig(id, opts.MTU, opts.DDIO)
		hcfg.Transport = tcfg
		hcfg.Pool = pool
		if opts.LinkRate > 0 {
			hcfg.NIC.LineRate = opts.LinkRate
		}
		if opts.MBAWriteLatency > 0 {
			hcfg.MBA.WriteLatency = opts.MBAWriteLatency
		}
		if id == receiverID && opts.iommu != nil {
			hcfg.IOMMU = *opts.iommu
		}
		if id == receiverID && opts.mba != nil {
			hcfg.MBA = *opts.mba
		}
		return host.New(e, hcfg)
	}

	tb.Receiver = mkHost(receiverID)
	for i := 0; i < opts.Senders; i++ {
		tb.Senders = append(tb.Senders, mkHost(receiverID+1+packet.HostID(i)))
	}

	// Topology: every host connects to the single switch. SetTracer must
	// precede AttachPort so per-port queue tracks exist from the start.
	tb.Sw = fabric.NewSwitch(e, fabric.DefaultSwitchConfig())
	if tb.Tr != nil {
		tb.Sw.SetTracer(tb.Tr, "switch")
	}
	lcfg := fabric.DefaultLinkConfig()
	lcfg.LossProb = opts.WireLossProb
	if opts.LinkRate > 0 {
		lcfg.Rate = opts.LinkRate
	}
	attach := func(h *host.Host) {
		up := fabric.NewLink(e, lcfg, tb.Sw.Inject)
		up.SetPool(pool)
		h.SetOutput(up.Send)
		down := fabric.NewLink(e, lcfg, h.ReceiveFromWire)
		down.SetPool(pool)
		tb.Sw.AttachPort(h.ID(), down)
		tb.Links = append(tb.Links, up, down)
	}
	attach(tb.Receiver)
	for _, s := range tb.Senders {
		attach(s)
	}

	// hostCC on the receiver. When disabled we still run the module in
	// ModeOff so every experiment measures I_S and B_S identically.
	ccfg := core.DefaultConfig(opts.DDIO)
	if opts.IT > 0 {
		ccfg.IT = opts.IT
	}
	if opts.BT > 0 {
		ccfg.BT = opts.BT
	}
	if opts.SignalWeightIS > 0 {
		ccfg.WeightIS = opts.SignalWeightIS
	}
	if opts.SampleInterval > 0 {
		ccfg.SampleInterval = opts.SampleInterval
	}
	ccfg.Mode = core.ModeOff
	if opts.HostCC {
		ccfg.Mode = core.ModeFull
		if opts.Mode != core.ModeFull {
			ccfg.Mode = opts.Mode
		}
	}
	ccfg.Watchdog = opts.Watchdog
	tb.HCC = core.New(e, tb.Receiver.MSR, tb.Receiver.MBA, ccfg)
	if tb.Tr != nil {
		tb.Receiver.AttachTracer(tb.Tr, "receiver")
		tb.HCC.SetTracer(tb.Tr, "receiver")
	}
	tb.Receiver.AddReceiveHook(tb.HCC.ReceiveHook())
	tb.HCC.Start()

	// Host-local traffic at the receiver.
	if opts.Degree > 0 {
		tb.Receiver.StartMApp(opts.Degree)
	}

	// Hard-coded response level (Figure 9).
	if opts.FixedLevel >= 0 {
		tb.Receiver.MBA.RequestLevel(opts.FixedLevel)
	}

	// Fault injection against the receiver's hardware seams. Armed last
	// so the MApp (if any) exists.
	if opts.Faults != nil {
		tb.Injector = faults.MustNewInjector(e, *opts.Faults, faults.Seams{
			MSR:   tb.Receiver.MSR,
			MBA:   tb.Receiver.MBA,
			NIC:   tb.Receiver.NIC,
			PCIe:  tb.Receiver.Link,
			Links: tb.Links,
			MApp:  tb.Receiver.MApp(),
		})
		tb.Injector.Arm()
	}

	// Invariant checker: audits packet conservation, PCIe credit
	// accounting, and MBA level bounds every ~sample interval.
	if opts.Invariants {
		nic, link, mba := tb.Receiver.NIC, tb.Receiver.Link, tb.Receiver.MBA
		tb.Inv = core.NewInvariantChecker(e, ccfg.SampleInterval, core.InvariantProbes{
			NICArrivals:   func() int64 { return nic.Arrivals.Total() },
			NICDrops:      func() int64 { return nic.Drops.Total() },
			NICFaultDrops: func() int64 { return nic.FaultDrops.Total() },
			NICQueued:     nic.RxQueuedPackets,
			NICDMAStarted: func() int64 { return nic.DMAStarted.Total() },
			PCIeCredits: func() (int, int, int) {
				return link.Credits(), link.SequesteredCredits(), link.Config().CreditLines
			},
			MBALevel:  mba.Level,
			MBALevels: mba.NumLevels,
		})
		tb.Inv.Start()
	}

	// Instrument registration, last so every component exists. Order is
	// fixed (registry iteration follows registration order).
	tb.Receiver.RegisterInstruments(tb.Reg, "receiver")
	tb.HCC.RegisterInstruments(tb.Reg, "receiver")
	for i, s := range tb.Senders {
		s.RegisterInstruments(tb.Reg, fmt.Sprintf("sender%d", i+1))
	}
	tb.Sw.RegisterInstruments(tb.Reg, "switch")
	for i, l := range tb.Links {
		l.RegisterInstruments(tb.Reg, fmt.Sprintf("fabric/link%d", i))
	}

	return tb
}

// StartNetAppT launches the throughput flows.
func (tb *Testbed) StartNetAppT() *apps.NetAppT {
	if tb.NetT != nil {
		panic("testbed: NetApp-T already started")
	}
	tb.NetT = apps.NewNetAppT(tb.E, tb.Senders, tb.Receiver, tb.Opts.Flows)
	return tb.NetT
}

// StartNetAppL launches the latency app from the first sender.
func (tb *Testbed) StartNetAppL(size, maxCount int, onDone func()) *apps.NetAppL {
	l := apps.NewNetAppL(tb.E, tb.Senders[0], tb.Receiver, size, maxCount, onDone)
	l.Start()
	return l
}

// MarkWindow begins the measurement window.
func (tb *Testbed) MarkWindow() {
	tb.Receiver.MarkWindow()
	for _, s := range tb.Senders {
		s.MarkWindow()
	}
	if tb.NetT != nil {
		tb.NetT.MarkWindow()
	}
	tb.winStart = tb.E.Now()
	tb.winROCC = tb.Receiver.IIO.ROCC()
	tb.winRINS = tb.Receiver.IIO.RINS()
	tb.winMarked = tb.HCC.MarkedPackets.Total()
	tb.winSwDrops = tb.Sw.Drops.Total()
}

// Metrics summarizes one measurement window.
type Metrics struct {
	ThroughputGbps float64 // NetApp-T goodput
	DropRatePct    float64 // receiver NIC drops / arrivals
	SwitchDropPct  float64 // switch drops / NIC arrivals (incast runs)

	MemUtilNet   float64 // network-side memory bandwidth / theoretical
	MemUtilMApp  float64 // MApp memory bandwidth / theoretical
	MemUtilTotal float64

	MAppGBps     float64 // MApp memory bandwidth
	MAppTputGbps float64 // MApp application throughput (1.33 B/B, §4.2)

	AvgIS     float64 // window-average IIO occupancy (lines)
	AvgBSGbps float64 // window-average PCIe bandwidth

	MarkedPct    float64 // packets CE-marked by hostCC / NIC arrivals
	ResponseLvl  int     // MBA level at window end
	NetTimeouts  int64   // RTOs across NetApp-T flows
	NetRetx      int64   // retransmissions across NetApp-T flows
	WindowMicros float64
}

// Collect computes metrics for the window opened by MarkWindow.
func (tb *Testbed) Collect() Metrics {
	now := tb.E.Now()
	dt := now - tb.winStart
	m := Metrics{WindowMicros: dt.Micros()}
	if tb.NetT != nil {
		m.ThroughputGbps = tb.NetT.Throughput().Gbps()
		m.NetRetx = tb.NetT.Retransmits()
		for _, c := range tb.NetT.Conns() {
			m.NetTimeouts += c.Timeouts.Total()
		}
	}
	m.DropRatePct = tb.Receiver.NIC.WindowDropRate() * 100

	arrivals := tb.Receiver.NIC.Arrivals.SinceMark()
	if arrivals > 0 {
		m.SwitchDropPct = float64(tb.Sw.Drops.Total()-tb.winSwDrops) / float64(arrivals) * 100
		m.MarkedPct = float64(tb.HCC.MarkedPackets.Total()-tb.winMarked) / float64(arrivals) * 100
	}

	mc := tb.Receiver.MC
	m.MemUtilNet = mc.UtilizationOf(memClassIIO) + mc.UtilizationOf(memClassEvict) + mc.UtilizationOf(memClassNetCopy)
	m.MemUtilMApp = mc.UtilizationOf(memClassMApp)
	m.MemUtilTotal = mc.TotalUtilization()
	m.MAppGBps = mc.RateOf(memClassMApp).GBps()
	m.MAppTputGbps = m.MAppGBps * 8 / 1.33

	if dt > 0 {
		m.AvgIS = float64(tb.Receiver.IIO.ROCC()-tb.winROCC) / (dt.Seconds() * msr.FIIOHz)
		m.AvgBSGbps = float64(tb.Receiver.IIO.RINS()-tb.winRINS) * 64 * 8 / dt.Seconds() / 1e9
	}
	m.ResponseLvl = tb.Receiver.MBA.Level()
	return m
}

// RunWindow performs the standard warmup + measurement cycle.
func (tb *Testbed) RunWindow() Metrics {
	tb.E.RunUntil(tb.Opts.Warmup)
	tb.MarkWindow()
	tb.E.RunFor(tb.Opts.Measure)
	return tb.Collect()
}

// Package testbed wires hosts, fabric, applications and hostCC into the
// paper's experimental setups and provides one runner per evaluation
// figure. Every figure in §2 and §5 has a corresponding Run function
// returning typed rows; the bench harness at the repository root and
// cmd/hostcc-bench both print them.
package testbed

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/fluid"
	"repro/internal/host"
	"repro/internal/iommu"
	"repro/internal/msr"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Config selects one experimental configuration.
//
// Naming convention (repo-wide): the parameter struct a package's New
// function takes is named Config, built by DefaultConfig, and checked by
// Validate. testbed.Options is a deprecated alias from before the
// convention.
type Config struct {
	Seed    int64
	MTU     int
	DDIO    bool
	Flows   int     // NetApp-T flows
	Senders int     // sending hosts (2 for incast)
	Degree  float64 // degree of host congestion (MApp units at receivers)

	// Topology selects the fabric shape (zero value = the paper's
	// single-switch star). Leaf–spine and dumbbell fabrics add trunk
	// links with their own queues and ECN marking; hosts are placed
	// round-robin across racks (dumbbell: receivers right, senders left).
	Topology fabric.Topology

	// Receivers is the number of receiving hosts (0 = 1). Every receiver
	// runs hostCC (ModeOff when disabled) and the MApp at Degree;
	// NetApp-T flows fan in round-robin across receivers.
	Receivers int

	// Shards, when > 1, partitions the simulation across that many
	// parallel engine shards (one goroutine each): each switch and the
	// hosts behind it run on the shard of their rack, and inter-switch
	// trunks become conservative-lookahead boundaries whose propagation
	// delay bounds the synchronization window. Requires a multi-switch
	// Topology (the star has no trunks to cut) and is incompatible with
	// Telemetry (the tracer is a single shared timeline). 0 or 1 runs the
	// classic single-engine testbed, byte-identical to before.
	Shards int

	// FaultTrunks aims link-flap faults at the inter-switch trunk links
	// instead of the host access links (requires a multi-switch
	// Topology).
	FaultTrunks bool

	// LinkRate overrides every fabric link's rate and each NIC's line
	// rate together (0 keeps the paper's 100 Gbps).
	LinkRate sim.Rate

	// Lossless converts the fabric and NICs to PFC lossless operation:
	// switch ingresses pause their upstream instead of dropping, NIC rx
	// buffers pause the leaf instead of overflowing, and the default
	// transport CC becomes DCQCN (rate control driven by CNPs the
	// receiver NIC generates from ECN marks). Off by default — every
	// pre-existing experiment runs the lossy fabric unchanged.
	Lossless bool
	// PauseWatchdog arms the PFC watchdog: any pause asserted longer
	// than this is force-released (0 disables — a lost XON then wedges
	// the port until the peer re-pauses and re-releases, the storm
	// failure mode). Only meaningful with Lossless.
	PauseWatchdog sim.Time
	// StormTrunks lists trunk indices (into Fabric.TrunkPorts) whose
	// transmit ports a pause-storm fault forces paused for its window.
	// Requires Lossless and a multi-switch Topology.
	StormTrunks []int

	// Telemetry enables the event tracer: per-hop packet spans and
	// counter tracks, collected into a telemetry.Timeline. Instrument
	// registration is always on (it costs nothing per event); the tracer
	// is opt-in because it records per-packet state.
	Telemetry bool

	// FluidBackground, when non-nil, adds the hybrid fluid/packet tier: a
	// background flow population advanced as rate ODEs on coarse ticks,
	// coupled to the packet fabric through conservation seams (see
	// fluid.go). nil runs the pure packet testbed, byte-identical to
	// before.
	FluidBackground *FluidBackground

	// CC is the network congestion control (nil = DCTCP).
	CC transport.CCFactory

	// HostCC enables the hostCC module; Mode refines it for ablations.
	HostCC bool
	Mode   core.Mode
	IT     float64  // 0 = paper default (70 / 50 with DDIO)
	BT     sim.Rate // 0 = paper default (80 Gbps)

	// FixedLevel, when >= 0, disables the dynamic response and hard-codes
	// the MBA level (the Figure 9 calibration experiment).
	FixedLevel int

	// MinRTO overrides the transport's minimum RTO (0 keeps the Linux
	// default of 200 ms). Throughput experiments lower it so the startup
	// transient settles within an affordable warmup.
	MinRTO sim.Time

	// Ablation overrides (0 keeps the paper defaults): the I_S EWMA
	// weight (§4.1), the signal sampling interval, and the MBA MSR write
	// latency (§6 discusses the 22 µs hardware limitation).
	SignalWeightIS  float64
	SampleInterval  sim.Time
	MBAWriteLatency sim.Time

	// WireLossProb injects independent random packet loss on every
	// fabric link (failure injection; 0 for the paper's lossless links).
	WireLossProb float64

	// Faults, when non-nil, arms a fault-injection plan against the
	// receiver's hardware seams (internal/faults). The plan's events run
	// on the testbed engine, so the whole chaotic run is reproducible
	// from Seed.
	Faults *faults.Plan

	// Watchdog enables hostCC's failsafe with the given config (nil
	// disables it, the pre-hardening behavior).
	Watchdog *core.WatchdogConfig

	// Invariants runs the datapath invariant checker during the run;
	// violations panic (a chaotic run that broke conservation laws has
	// no valid results).
	Invariants bool

	Warmup  sim.Time
	Measure sim.Time

	// iommu, when set, enables DMA translation at the receiver (used by
	// the IOMMU study; see iommu_study.go).
	iommu *iommu.Config
	// mba, when set, replaces the receiver's MBA mechanism (used by the
	// future-hardware study; see futuremba_study.go).
	mba *cpu.MBAConfig
}

// Options is the pre-convention name for Config.
//
// Deprecated: use Config.
type Options = Config

// trunkCount returns how many directed trunks (Fabric.TrunkPorts entries)
// Build will create for the topology.
func trunkCount(t fabric.Topology) int {
	switch t.Kind {
	case fabric.TopoLeafSpine:
		return 2 * t.Racks() * (t.Switches() - t.Racks())
	case fabric.TopoDumbbell:
		return 2
	}
	return 0
}

// Validate reports the first invalid parameter. Zero values are not
// errors — withDefaults fills them — so this catches only parameters no
// default can repair.
func (o Config) Validate() error {
	if o.MTU < 0 {
		return fmt.Errorf("testbed: negative MTU %d", o.MTU)
	}
	if o.Flows < 0 {
		return fmt.Errorf("testbed: negative Flows %d", o.Flows)
	}
	if o.Senders < 0 {
		return fmt.Errorf("testbed: negative Senders %d", o.Senders)
	}
	if o.Receivers < 0 {
		return fmt.Errorf("testbed: negative Receivers %d", o.Receivers)
	}
	if err := o.Topology.Validate(); err != nil {
		return err
	}
	if o.FaultTrunks && o.Topology.Switches() < 2 {
		return fmt.Errorf("testbed: FaultTrunks requires a multi-switch Topology")
	}
	if o.Degree < 0 {
		return fmt.Errorf("testbed: negative Degree %v", o.Degree)
	}
	if o.LinkRate < 0 {
		return fmt.Errorf("testbed: negative LinkRate %v", o.LinkRate)
	}
	if o.WireLossProb < 0 || o.WireLossProb > 1 {
		return fmt.Errorf("testbed: WireLossProb %v outside [0,1]", o.WireLossProb)
	}
	if o.PauseWatchdog < 0 {
		return fmt.Errorf("testbed: negative PauseWatchdog %v", o.PauseWatchdog)
	}
	if len(o.StormTrunks) > 0 {
		if !o.Lossless {
			return fmt.Errorf("testbed: StormTrunks requires Lossless")
		}
		n := trunkCount(o.Topology)
		if n == 0 {
			return fmt.Errorf("testbed: StormTrunks requires a multi-switch Topology")
		}
		for _, ti := range o.StormTrunks {
			if ti < 0 || ti >= n {
				return fmt.Errorf("testbed: StormTrunks index %d outside [0,%d)", ti, n)
			}
		}
	}
	if o.Shards < 0 {
		return fmt.Errorf("testbed: negative Shards %d", o.Shards)
	}
	if o.Shards > 1 {
		if o.Topology.Switches() < 2 {
			return fmt.Errorf("testbed: Shards %d requires a multi-switch Topology (the star has no trunk boundaries)", o.Shards)
		}
		if o.Telemetry {
			return fmt.Errorf("testbed: Telemetry is a single shared timeline and cannot run sharded")
		}
	}
	if o.Warmup < 0 || o.Measure < 0 {
		return fmt.Errorf("testbed: negative window (warmup %v, measure %v)", o.Warmup, o.Measure)
	}
	if o.Mode < core.ModeFull || o.Mode > core.ModeOff {
		return fmt.Errorf("testbed: unknown hostCC mode %d", o.Mode)
	}
	if o.FixedLevel < -1 {
		return fmt.Errorf("testbed: FixedLevel %d below -1 (use -1 for dynamic)", o.FixedLevel)
	}
	if o.Watchdog != nil {
		if err := o.Watchdog.Validate(); err != nil {
			return err
		}
	}
	if o.FluidBackground != nil {
		if err := o.FluidBackground.validate(o.MTU); err != nil {
			return err
		}
	}
	return nil
}

// DefaultConfig returns the baseline single-sender setup.
func DefaultConfig() Config {
	return Config{
		Seed:       42,
		MTU:        4096,
		Flows:      4,
		Senders:    1,
		FixedLevel: -1,
		Warmup:     4 * sim.Millisecond,
		Measure:    16 * sim.Millisecond,
	}
}

// DefaultOptions is the pre-convention name for DefaultConfig.
//
// Deprecated: use DefaultConfig.
func DefaultOptions() Options { return DefaultConfig() }

func (o Config) withDefaults() Config {
	d := DefaultConfig()
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.MTU == 0 {
		o.MTU = d.MTU
	}
	if o.Flows == 0 {
		o.Flows = d.Flows
	}
	if o.Senders == 0 {
		o.Senders = d.Senders
	}
	if o.Receivers == 0 {
		o.Receivers = 1
	}
	if o.Warmup == 0 {
		o.Warmup = d.Warmup
	}
	if o.Measure == 0 {
		o.Measure = d.Measure
	}
	return o
}

// Testbed is one constructed experiment.
type Testbed struct {
	// E is the simulation engine — shard 0's engine when sharded. Runner
	// code must advance time through RunUntil/RunFor/Now on the Testbed
	// (they dispatch to the shard group when present); reading E directly
	// is safe only at quiesced points, where every shard clock is equal.
	E *sim.Engine
	// Group is the parallel shard group (nil when Opts.Shards <= 1).
	Group *sim.ShardGroup
	Opts  Options
	// Receiver, Sw and HCC are the primary receiver, first switch and
	// primary hostCC instance — the full sets live in Receivers,
	// Fabric.Switches and HCCs (all length 1 in the default star).
	Receiver  *host.Host
	Receivers []*host.Host
	Senders   []*host.Host
	Sw        *fabric.Switch
	Fabric    *fabric.Fabric
	HCC       *core.HostCC
	HCCs      []*core.HostCC
	NetT      *apps.NetAppT

	// Links holds every host access link (receivers first, then senders;
	// up link before down link) — the default LinkFlap fault seam.
	Links []*fabric.Link
	// Trunks holds the inter-switch links (empty in the star) — the
	// LinkFlap seam under Config.FaultTrunks.
	Trunks []*fabric.Link
	// Injector is the armed fault injector (nil without Options.Faults).
	// When sharded it is shard 0's injector; every shard arms the same
	// plan against the seams it owns, and Injectors holds all of them.
	Injector  *faults.Injector
	Injectors []*faults.Injector
	// Inv is the invariant checker (nil without Options.Invariants).
	Inv *core.InvariantChecker

	// FluidNet is the fluid background tier (nil without
	// Config.FluidBackground); FluidTwins holds the promotable flows'
	// packet twins (nil when Promotable is 0) and FluidClock the coarse
	// tick driver.
	FluidNet   *fluid.Network
	FluidTwins *apps.FluidTwins
	FluidClock *sim.CoarseClock

	// Reg indexes every instrument of the testbed (always built — a
	// registered instrument is a name plus a read closure, with no
	// per-event cost). Prefixes: receiver, senderN, switch, fabric/linkN.
	Reg *telemetry.Registry
	// Tr is the event tracer (nil unless Config.Telemetry).
	Tr *telemetry.Tracer

	// Window bookkeeping for exact signal averages.
	winStart   sim.Time
	winROCC    uint64
	winRINS    uint64
	winMarked  int64
	winSwDrops int64
}

// receiverID is the primary receiver's host ID; with R receivers, the
// receivers hold IDs 1..R and the senders R+1, R+2, ...
const receiverID packet.HostID = 1

// eventHeapHint derives the Reserve pre-size from the experiment shape.
// The pending-event population of a loaded run is bounded by: per flow,
// the receive-window's worth of in-flight packets (each holds at most
// one serializer or propagation event at a time, and each delivered
// window generates up to as many ACKs in flight) plus the connection
// timer set on both ends; per host, the bounded device pipeline (NIC,
// PCIe, IIO, memory, MApp completions); a constant floor for the
// harness (hostCC sampler, watchdog, chaos recorders, sentinel); and
// the stale-timer population — sim.Timer cancellation is lazy (a Reset
// leaves the superseded event in the heap until its old deadline), and
// the transport re-arms its RTO timer on every ACK, so stale events
// accumulate at the per-receiver packet rate for up to one RTO (or the
// run length, whichever ends first). The pre-topology hint —
// 4096*(1+Senders) — ignored Flows and the stale-timer term entirely:
// it under-reserved both flow-heavy incast and long-RTO runs (regrowth
// copies mid-run) while reserving megabytes that sender-heavy,
// flow-light runs never touched.
func eventHeapHint(opts Config, tcfg transport.Config) int {
	winPkts := tcfg.RcvWnd/tcfg.MSS + 1
	perFlow := 2*winPkts + 16
	hosts := opts.Receivers + opts.Senders

	rate := opts.LinkRate
	if rate == 0 {
		rate = sim.Gbps(100)
	}
	staleWindow := min(tcfg.MinRTO, opts.Warmup+opts.Measure)
	stalePkts := float64(rate) * staleWindow.Seconds() / float64(opts.MTU)
	stale := opts.Receivers * int(stalePkts)

	return 2048 + 64*hosts + opts.Flows*perFlow + stale
}

// receiverName is the telemetry prefix of receiver i ("receiver" for the
// primary, matching the single-receiver testbed's historical names).
func receiverName(i int) string {
	if i == 0 {
		return "receiver"
	}
	return fmt.Sprintf("receiver%d", i+1)
}

// rackFor places host i (global index, receivers first) in the topology:
// the star keeps everyone on the one switch; the dumbbell puts receivers
// right of the bottleneck (rack 1) and senders left; leaf–spine strides
// receivers and senders round-robin across leaves in opposite
// directions, so a flow's round-robin endpoints (sender i%S → receiver
// i%R) land in different racks and the traffic matrix crosses the spine
// (same-direction striping would pin every flow intra-rack whenever the
// counts share the rack count's parity).
func rackFor(t fabric.Topology, i, receivers int) int {
	switch t.Kind {
	case fabric.TopoLeafSpine:
		if i < receivers {
			return i % t.Racks()
		}
		return t.Racks() - 1 - (i-receivers)%t.Racks()
	case fabric.TopoDumbbell:
		if i < receivers {
			return 1
		}
		return 0
	}
	return 0
}

// New builds the testbed: hosts, bidirectional links through the
// compiled fabric topology, hostCC on every receiver (in ModeOff when
// disabled, so signals are still measured), and the receiver-side MApps
// at the requested degree.
func New(opts Options) *Testbed {
	opts = opts.withDefaults()
	if opts.Shards > 1 {
		return newSharded(opts)
	}
	e := sim.NewEngine(opts.Seed)
	tb := &Testbed{E: e, Opts: opts, Reg: telemetry.NewRegistry()}
	if opts.Telemetry {
		tb.Tr = telemetry.NewTracer()
	}

	// One pool for the whole testbed: sender transports Get the packets
	// that the receiver's rx path Puts, so the free list must be shared.
	pool := packet.NewPool(1024)

	tcfg := transport.DefaultConfig(opts.MTU)
	if opts.CC != nil {
		tcfg.CC = opts.CC
	} else if opts.Lossless {
		// DCQCN is the congestion control PFC fabrics deploy (RoCEv2):
		// the switches still ECN-mark, the receiver NIC turns CE arrivals
		// into CNPs, and the sender rate-paces on them.
		tcfg.CC = transport.NewDCQCN()
	}
	if opts.MinRTO > 0 {
		tcfg.MinRTO = opts.MinRTO
		tcfg.InitialRTO = opts.MinRTO
	}
	// Pre-size the event heap so warm-up never pays a regrowth copy.
	e.Reserve(eventHeapHint(opts, tcfg))

	mkHost := func(id packet.HostID) *host.Host {
		hcfg := host.DefaultConfig(id, opts.MTU, opts.DDIO)
		hcfg.Transport = tcfg
		hcfg.Pool = pool
		if opts.LinkRate > 0 {
			hcfg.NIC.LineRate = opts.LinkRate
		}
		if opts.MBAWriteLatency > 0 {
			hcfg.MBA.WriteLatency = opts.MBAWriteLatency
		}
		if opts.Lossless {
			hcfg.NIC.PFC = nic.DefaultPFCConfig(hcfg.NIC.RxBufferBytes)
			hcfg.NIC.PFC.ResumeTimeout = opts.PauseWatchdog
		}
		if id == receiverID && opts.iommu != nil {
			hcfg.IOMMU = *opts.iommu
		}
		if id == receiverID && opts.mba != nil {
			hcfg.MBA = *opts.mba
		}
		return host.New(e, hcfg)
	}

	for i := 0; i < opts.Receivers; i++ {
		tb.Receivers = append(tb.Receivers, mkHost(receiverID+packet.HostID(i)))
	}
	tb.Receiver = tb.Receivers[0]
	senderBase := receiverID + packet.HostID(opts.Receivers)
	for i := 0; i < opts.Senders; i++ {
		tb.Senders = append(tb.Senders, mkHost(senderBase+packet.HostID(i)))
	}

	// Fabric: compile the topology. For the star this reproduces the
	// exact pre-topology construction order (switch, then per host: up
	// link, down link, switch port), keeping digests bit-identical.
	lcfg := fabric.DefaultLinkConfig()
	lcfg.LossProb = opts.WireLossProb
	if opts.LinkRate > 0 {
		lcfg.Rate = opts.LinkRate
	}
	hosts := make([]*host.Host, 0, len(tb.Receivers)+len(tb.Senders))
	hosts = append(hosts, tb.Receivers...)
	hosts = append(hosts, tb.Senders...)
	ports := make([]fabric.HostPort, len(hosts))
	for i, h := range hosts {
		ports[i] = fabric.HostPort{
			ID:      h.ID(),
			Rack:    rackFor(opts.Topology, i, opts.Receivers),
			Deliver: h.ReceiveFromWire,
		}
		if opts.Lossless {
			// Leaf XOFF toward this host gates the NIC's transmit path.
			ports[i].Pause = h.NIC.SetTxPaused
		}
	}
	topo := opts.Topology
	if opts.Lossless {
		swcfg := topo.Switch
		if swcfg == (fabric.SwitchConfig{}) {
			swcfg = fabric.DefaultSwitchConfig()
		}
		swcfg.PFC = fabric.DefaultPFCConfig(swcfg.PortBufferBytes)
		swcfg.PFC.ResumeTimeout = opts.PauseWatchdog
		topo.Switch = swcfg
	}
	fb, err := fabric.Build(e, topo, lcfg, ports, pool, tb.Tr)
	if err != nil {
		panic(err) // Config.Validate rejects invalid topologies up front
	}
	tb.Fabric = fb
	tb.Sw = fb.Switches[0]
	tb.Links = fb.Access
	tb.Trunks = fb.Trunks
	for i, h := range hosts {
		h.SetOutput(fb.HostSend(i))
	}
	if opts.Lossless {
		// NIC rx XOFF emits a pause frame toward the leaf's host port.
		for i, h := range hosts {
			h.NIC.SetPauseUpstream(fb.HostPauser(i))
		}
	}

	// hostCC on every receiver. When disabled we still run the module in
	// ModeOff so every experiment measures I_S and B_S identically.
	ccfg := core.DefaultConfig(opts.DDIO)
	if opts.IT > 0 {
		ccfg.IT = opts.IT
	}
	if opts.BT > 0 {
		ccfg.BT = opts.BT
	}
	if opts.SignalWeightIS > 0 {
		ccfg.WeightIS = opts.SignalWeightIS
	}
	if opts.SampleInterval > 0 {
		ccfg.SampleInterval = opts.SampleInterval
	}
	ccfg.Mode = core.ModeOff
	if opts.HostCC {
		ccfg.Mode = core.ModeFull
		if opts.Mode != core.ModeFull {
			ccfg.Mode = opts.Mode
		}
	}
	ccfg.Watchdog = opts.Watchdog
	for i, r := range tb.Receivers {
		hcc := core.New(e, r.MSR, r.MBA, ccfg)
		if tb.Tr != nil {
			r.AttachTracer(tb.Tr, receiverName(i))
			hcc.SetTracer(tb.Tr, receiverName(i))
		}
		r.AddReceiveHook(hcc.ReceiveHook())
		hcc.Start()
		tb.HCCs = append(tb.HCCs, hcc)
	}
	tb.HCC = tb.HCCs[0]

	// Host-local traffic at the receivers.
	if opts.Degree > 0 {
		for _, r := range tb.Receivers {
			r.StartMApp(opts.Degree)
		}
	}

	// Hard-coded response level (Figure 9).
	if opts.FixedLevel >= 0 {
		for _, r := range tb.Receivers {
			r.MBA.RequestLevel(opts.FixedLevel)
		}
	}

	// Fault injection against the primary receiver's hardware seams.
	// Armed last so the MApp (if any) exists. FaultTrunks retargets link
	// flaps at the inter-switch trunks.
	if opts.Faults != nil {
		flapLinks := tb.Links
		if opts.FaultTrunks {
			flapLinks = tb.Trunks
		}
		seams := faults.Seams{
			MSR:   tb.Receiver.MSR,
			MBA:   tb.Receiver.MBA,
			NIC:   tb.Receiver.NIC,
			PCIe:  tb.Receiver.Link,
			Links: flapLinks,
			MApp:  tb.Receiver.MApp(),
		}
		if opts.Lossless {
			seams.Switches = fb.Switches
			for _, ti := range opts.StormTrunks {
				tp := fb.TrunkPorts[ti]
				seams.Pause = append(seams.Pause, func(on bool) {
					tp.Sw.SetPortForcedPause(tp.Port, on)
				})
			}
		}
		tb.Injector = faults.MustNewInjector(e, *opts.Faults, seams)
		tb.Injector.Arm()
	}

	// Invariant checker: audits packet conservation, PCIe credit
	// accounting, and MBA level bounds every ~sample interval.
	if opts.Invariants {
		nic, link, mba := tb.Receiver.NIC, tb.Receiver.Link, tb.Receiver.MBA
		tb.Inv = core.NewInvariantChecker(e, ccfg.SampleInterval, core.InvariantProbes{
			NICArrivals:   func() int64 { return nic.Arrivals.Total() },
			NICDrops:      func() int64 { return nic.Drops.Total() },
			NICFaultDrops: func() int64 { return nic.FaultDrops.Total() },
			NICQueued:     nic.RxQueuedPackets,
			NICDMAStarted: func() int64 { return nic.DMAStarted.Total() },
			PCIeCredits: func() (int, int, int) {
				return link.Credits(), link.SequesteredCredits(), link.Config().CreditLines
			},
			MBALevel:  mba.Level,
			MBALevels: mba.NumLevels,
		})
		tb.Inv.Start()
	}

	// Instrument registration, last so every component exists. Order is
	// fixed (registry iteration follows registration order).
	for i, r := range tb.Receivers {
		r.RegisterInstruments(tb.Reg, receiverName(i))
		tb.HCCs[i].RegisterInstruments(tb.Reg, receiverName(i))
	}
	for i, s := range tb.Senders {
		s.RegisterInstruments(tb.Reg, fmt.Sprintf("sender%d", i+1))
	}
	for i, sw := range fb.Switches {
		sw.RegisterInstruments(tb.Reg, fb.SwitchName(i))
	}
	for i, l := range tb.Links {
		l.RegisterInstruments(tb.Reg, fmt.Sprintf("fabric/link%d", i))
	}
	for i, l := range tb.Trunks {
		l.RegisterInstruments(tb.Reg, fmt.Sprintf("fabric/trunk%d", i))
	}
	if opts.Lossless {
		for _, tp := range tb.Fabric.TrunkPorts {
			tp := tp
			tb.Reg.Gauge("fabric/pfc/"+tp.Name+"/paused-ns", "ns",
				"cumulative PFC pause time of this trunk transmit port",
				func() float64 { return float64(tp.Sw.PortPausedFor(tp.Port)) })
			tb.Reg.Gauge("fabric/pfc/"+tp.Name+"/queue-bytes", "bytes",
				"instantaneous queue depth behind this trunk port",
				func() float64 { return float64(tp.Sw.PortQueueBytes(tp.Port)) })
		}
	}

	if opts.FluidBackground != nil {
		tb.buildFluid()
	}

	return tb
}

// StartNetAppT launches the throughput flows, fanned in round-robin
// across every receiver (cross-rack in multi-rack topologies).
func (tb *Testbed) StartNetAppT() *apps.NetAppT {
	if tb.NetT != nil {
		panic("testbed: NetApp-T already started")
	}
	tb.NetT = apps.NewNetAppTAcross(tb.E, tb.Senders, tb.Receivers, tb.Opts.Flows)
	return tb.NetT
}

// StartNetAppL launches the latency app from the first sender.
func (tb *Testbed) StartNetAppL(size, maxCount int, onDone func()) *apps.NetAppL {
	l := apps.NewNetAppL(tb.E, tb.Senders[0], tb.Receiver, size, maxCount, onDone)
	l.Start()
	return l
}

// MarkWindow begins the measurement window.
func (tb *Testbed) MarkWindow() {
	for _, r := range tb.Receivers {
		r.MarkWindow()
	}
	for _, s := range tb.Senders {
		s.MarkWindow()
	}
	if tb.NetT != nil {
		tb.NetT.MarkWindow()
	}
	tb.winStart = tb.E.Now()
	tb.winROCC = tb.Receiver.IIO.ROCC()
	tb.winRINS = tb.Receiver.IIO.RINS()
	tb.winMarked = tb.markedPackets()
	tb.winSwDrops = tb.Fabric.Drops()
}

// markedPackets sums hostCC CE marks across receivers.
func (tb *Testbed) markedPackets() int64 {
	var n int64
	for _, h := range tb.HCCs {
		n += h.MarkedPackets.Total()
	}
	return n
}

// Metrics summarizes one measurement window.
type Metrics struct {
	ThroughputGbps float64 // NetApp-T goodput
	DropRatePct    float64 // receiver NIC drops / arrivals
	SwitchDropPct  float64 // switch drops / NIC arrivals (incast runs)

	MemUtilNet   float64 // network-side memory bandwidth / theoretical
	MemUtilMApp  float64 // MApp memory bandwidth / theoretical
	MemUtilTotal float64

	MAppGBps     float64 // MApp memory bandwidth
	MAppTputGbps float64 // MApp application throughput (1.33 B/B, §4.2)

	AvgIS     float64 // window-average IIO occupancy (lines)
	AvgBSGbps float64 // window-average PCIe bandwidth

	MarkedPct    float64 // packets CE-marked by hostCC / NIC arrivals
	ResponseLvl  int     // MBA level at window end
	NetTimeouts  int64   // RTOs across NetApp-T flows
	NetRetx      int64   // retransmissions across NetApp-T flows
	WindowMicros float64
}

// Collect computes metrics for the window opened by MarkWindow.
func (tb *Testbed) Collect() Metrics {
	now := tb.E.Now()
	dt := now - tb.winStart
	m := Metrics{WindowMicros: dt.Micros()}
	if tb.NetT != nil {
		m.ThroughputGbps = tb.NetT.Throughput().Gbps()
		m.NetRetx = tb.NetT.Retransmits()
		for _, c := range tb.NetT.Conns() {
			m.NetTimeouts += c.Timeouts.Total()
		}
	}
	m.DropRatePct = tb.Receiver.NIC.WindowDropRate() * 100

	arrivals := tb.Receiver.NIC.Arrivals.SinceMark()
	if arrivals > 0 {
		m.SwitchDropPct = float64(tb.Fabric.Drops()-tb.winSwDrops) / float64(arrivals) * 100
		m.MarkedPct = float64(tb.markedPackets()-tb.winMarked) / float64(arrivals) * 100
	}

	mc := tb.Receiver.MC
	m.MemUtilNet = mc.UtilizationOf(memClassIIO) + mc.UtilizationOf(memClassEvict) + mc.UtilizationOf(memClassNetCopy)
	m.MemUtilMApp = mc.UtilizationOf(memClassMApp)
	m.MemUtilTotal = mc.TotalUtilization()
	m.MAppGBps = mc.RateOf(memClassMApp).GBps()
	m.MAppTputGbps = m.MAppGBps * 8 / 1.33

	if dt > 0 {
		m.AvgIS = float64(tb.Receiver.IIO.ROCC()-tb.winROCC) / (dt.Seconds() * msr.FIIOHz)
		m.AvgBSGbps = float64(tb.Receiver.IIO.RINS()-tb.winRINS) * 64 * 8 / dt.Seconds() / 1e9
	}
	m.ResponseLvl = tb.Receiver.MBA.Level()
	return m
}

// RunWindow performs the standard warmup + measurement cycle.
func (tb *Testbed) RunWindow() Metrics {
	tb.RunUntil(tb.Opts.Warmup)
	tb.MarkWindow()
	tb.RunFor(tb.Opts.Measure)
	return tb.Collect()
}

// RunUntil advances simulation time to deadline — through the shard
// group's conservative windows when sharded, directly otherwise.
func (tb *Testbed) RunUntil(deadline sim.Time) {
	if tb.Group != nil {
		tb.Group.RunUntil(deadline)
		return
	}
	tb.E.RunUntil(deadline)
}

// RunFor advances simulation time by d.
func (tb *Testbed) RunFor(d sim.Time) { tb.RunUntil(tb.Now() + d) }

// Now returns the current simulation time (the barrier time when
// sharded; between runs every shard clock equals it).
func (tb *Testbed) Now() sim.Time {
	if tb.Group != nil {
		return tb.Group.Now()
	}
	return tb.E.Now()
}

// Processed returns executed events, summed across shards.
func (tb *Testbed) Processed() uint64 {
	if tb.Group != nil {
		return tb.Group.ProcessedEvents()
	}
	return tb.E.Processed
}

// PendingEvents returns queued events, summed across shards.
func (tb *Testbed) PendingEvents() int {
	if tb.Group != nil {
		return tb.Group.Pending()
	}
	return tb.E.Pending()
}

// MaxPendingEvents returns the event-queue high-water mark (the worst
// shard when sharded — each shard pre-sizes its own heap).
func (tb *Testbed) MaxPendingEvents() int {
	if tb.Group != nil {
		m := 0
		for i := 0; i < tb.Group.Shards(); i++ {
			m = max(m, tb.Group.Shard(i).MaxPending())
		}
		return m
	}
	return tb.E.MaxPending()
}

// EventHeapCap returns the event heap capacity (the largest shard's when
// sharded).
func (tb *Testbed) EventHeapCap() int {
	if tb.Group != nil {
		m := 0
		for i := 0; i < tb.Group.Shards(); i++ {
			m = max(m, tb.Group.Shard(i).HeapCap())
		}
		return m
	}
	return tb.E.HeapCap()
}

// Every schedules fn at the given period: a plain Ticker on the engine,
// or — when sharded — a coordinator hook running at barriers with every
// shard quiesced, which is what makes digest recorders and sentinels
// safe to read cross-shard state.
func (tb *Testbed) Every(period sim.Time, fn func()) {
	if tb.Group != nil {
		tb.Group.Every(period, fn)
		return
	}
	sim.NewTicker(tb.E, period, fn)
}

// Close releases the shard workers (no-op for single-engine testbeds).
// Runners that build sharded testbeds must call it.
func (tb *Testbed) Close() {
	if tb.Group != nil {
		tb.Group.Close()
	}
}

package testbed

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/fabric"
	"repro/internal/fluid"
	"repro/internal/sim"
)

// FluidBackground configures the hybrid fluid/packet tier: a population
// of long-lived background flows advanced as per-flow rate ODEs on
// coarse ticks instead of per-packet events. The population lives on
// virtual hosts (no host.Host is built for them — that is what makes
// million-flow scale affordable) but shares the real fabric's trunk and
// access capacities through conservation seams, so the packet-level
// foreground sees the congestion the background causes and vice versa.
// The leading Promotable flows additionally get packet-level twin
// connections between the real senders and receivers, promoted to full
// packet fidelity when their path leaves the fluid model's valid regime
// (deep queue, overflow loss, or a fault window) and demoted back once
// it calms.
type FluidBackground struct {
	// Hosts is the virtual background host count (≥ 2), placed
	// round-robin across the topology's racks.
	Hosts int
	// Flows is the background flow count (default 4 × Hosts). Flow j
	// runs virtual host j%Hosts → a deterministically strided peer.
	Flows int
	// Promotable is how many leading flows get packet twins (default 0).
	Promotable int

	// Tick, RTT, Scheme and InitRate feed fluid.Config (zero = that
	// package's defaults: 20 µs, 44 µs, dctcp, 100 Mbps). The AIMD MSS
	// is the testbed MTU.
	Tick     sim.Time
	RTT      sim.Time
	Scheme   string
	InitRate sim.Rate
}

func (f FluidBackground) withDefaults() FluidBackground {
	if f.Flows == 0 {
		f.Flows = 4 * f.Hosts
	}
	return f
}

func (f FluidBackground) validate(mtu int) error {
	f = f.withDefaults()
	if f.Hosts < 2 {
		return fmt.Errorf("testbed: FluidBackground.Hosts %d (need at least 2)", f.Hosts)
	}
	if f.Flows <= 0 {
		return fmt.Errorf("testbed: FluidBackground.Flows %d must be positive", f.Flows)
	}
	if f.Promotable < 0 || f.Promotable > f.Flows {
		return fmt.Errorf("testbed: FluidBackground.Promotable %d outside [0, Flows=%d]", f.Promotable, f.Flows)
	}
	return f.fluidConfig(mtu).Validate()
}

func (f FluidBackground) fluidConfig(mtu int) fluid.Config {
	return fluid.Config{
		Tick:     f.Tick,
		RTT:      f.RTT,
		MSS:      mtu,
		Scheme:   f.Scheme,
		InitRate: f.InitRate,
	}
}

// buildFluid wires the fluid tier into a fully built testbed: seam
// resources over every real access link and trunk port, virtual
// resources for the background hosts, the flow population, promote/
// demote hooks into the packet twins, fault-window coupling, and the
// coarse clock (a Ticker on the serial engine; a coordinator hook — so
// ticks run with every shard quiesced — when sharded). Construction
// order is fixed, which makes resource and flow indices, and therefore
// the fluid snapshot layout, identical run over run.
func (tb *Testbed) buildFluid() {
	opts := tb.Opts
	fbCfg := opts.FluidBackground.withDefaults()
	net := fluid.New(fbCfg.fluidConfig(opts.MTU))
	topo := opts.Topology
	racks := topo.Racks()
	spines := topo.Switches() - racks

	swcfg := topo.Switch
	if swcfg == (fabric.SwitchConfig{}) {
		swcfg = fabric.DefaultSwitchConfig()
	}
	buf, ecn := swcfg.PortBufferBytes, swcfg.ECNThresholdBytes
	lrate := fabric.DefaultLinkConfig().Rate
	if opts.LinkRate > 0 {
		lrate = opts.LinkRate
	}

	// Seam resources: real host access paths (host index order —
	// receivers then senders; up before down), then trunk ports.
	nHosts := len(tb.Receivers) + len(tb.Senders)
	upRes := make([]fluid.ResourceID, nHosts)
	downRes := make([]fluid.ResourceID, nHosts)
	for i := 0; i < nHosts; i++ {
		up, down := tb.Fabric.HostFluidTaps(i)
		upRes[i] = net.AddResource(fmt.Sprintf("up/%d", i), lrate, buf, ecn)
		net.BindSeam(upRes[i], up)
		downRes[i] = net.AddResource(fmt.Sprintf("down/%d", i), lrate, buf, ecn)
		net.BindSeam(downRes[i], down)
	}
	trunkRes := make([]fluid.ResourceID, len(tb.Fabric.TrunkPorts))
	for i, tp := range tb.Fabric.TrunkPorts {
		trunkRes[i] = net.AddResource("trunk/"+tp.Name, lrate, buf, ecn)
		net.BindSeam(trunkRes[i], tp.Sw.FluidTap(tp.Port))
	}

	// Virtual background hosts: capacity-only resources, no seam.
	vUp := make([]fluid.ResourceID, fbCfg.Hosts)
	vDown := make([]fluid.ResourceID, fbCfg.Hosts)
	for v := 0; v < fbCfg.Hosts; v++ {
		vUp[v] = net.AddResource(fmt.Sprintf("vup/%d", v), lrate, buf, ecn)
		vDown[v] = net.AddResource(fmt.Sprintf("vdown/%d", v), lrate, buf, ecn)
	}

	// trunkPath mirrors the fabric's static routing between racks: the
	// leaf–spine picks its spine by destination (the fabric's ECMP
	// rule), the dumbbell has one pair.
	trunkPath := func(a, b, dst int) []fluid.ResourceID {
		if a == b || len(trunkRes) == 0 {
			return nil
		}
		switch topo.Kind {
		case fabric.TopoLeafSpine:
			sp := dst % spines
			return []fluid.ResourceID{
				trunkRes[2*(a*spines+sp)],
				trunkRes[2*(b*spines+sp)+1],
			}
		case fabric.TopoDumbbell:
			if a == 0 {
				return []fluid.ResourceID{trunkRes[0]}
			}
			return []fluid.ResourceID{trunkRes[1]}
		}
		return nil
	}

	// Promotable flows first (flow index == twin index), between real
	// sender/receiver pairs over the real seams.
	if fbCfg.Promotable > 0 {
		tb.FluidTwins = apps.NewFluidTwins(tb.Senders, tb.Receivers, fbCfg.Promotable,
			net.Config().RTT, tb.Now)
		for j := 0; j < fbCfg.Promotable; j++ {
			si := len(tb.Receivers) + j%len(tb.Senders)
			ri := j % len(tb.Receivers)
			path := []fluid.ResourceID{upRes[si]}
			path = append(path, trunkPath(
				rackFor(topo, si, opts.Receivers),
				rackFor(topo, ri, opts.Receivers),
				int(tb.Receivers[ri].ID()))...)
			path = append(path, downRes[ri])
			idx := net.AddFlow(path...)
			net.SetPromotable(idx, true)
		}
		net.SetPromoteHooks(
			func(i int, rate sim.Rate) { tb.FluidTwins.Promote(i, rate) },
			func(i int) sim.Rate { return tb.FluidTwins.Demote(i) },
		)
	}

	// Virtual background flows: source strides the hosts, destination
	// strides a coprime-ish offset so the matrix mixes intra- and
	// cross-rack paths deterministically.
	for j := fbCfg.Promotable; j < fbCfg.Flows; j++ {
		src := j % fbCfg.Hosts
		dst := (src + 1 + (j/fbCfg.Hosts)%(fbCfg.Hosts-1)) % fbCfg.Hosts
		path := []fluid.ResourceID{vUp[src]}
		path = append(path, trunkPath(src%racks, dst%racks, dst)...)
		path = append(path, vDown[dst])
		net.AddFlow(path...)
	}

	// Coarse clock: the fault poll runs before the integrator each tick
	// so a flapped trunk or access link reads as a faulted resource —
	// flows entering a fault window promote — within one tick.
	clock := sim.NewCoarseClock(net.Config().Tick)
	trunkLinks := tb.Fabric.Trunks
	accessLinks := tb.Links
	clock.Register("fluid/faults", func(sim.Time) {
		for i, r := range trunkRes {
			net.SetFault(r, trunkLinks[i].IsDown())
		}
		for i := 0; i < nHosts; i++ {
			net.SetFault(upRes[i], accessLinks[2*i].IsDown())
			net.SetFault(downRes[i], accessLinks[2*i+1].IsDown())
		}
	})
	net.Register(clock)
	if tb.Group != nil {
		clock.BindGroup(tb.Group)
	} else {
		clock.BindEngine(tb.E)
	}
	tb.FluidNet = net
	tb.FluidClock = clock
}

package testbed

import "repro/internal/mem"

// Memory accounting class aliases, for readability in Collect.
const (
	memClassIIO     = mem.ClassIIO
	memClassEvict   = mem.ClassEviction
	memClassNetCopy = mem.ClassNetCopy
	memClassMApp    = mem.ClassMApp
)

package testbed

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

// goldenDigestFile holds per-scenario digest recordings captured before the
// allocation-free scheduler/datapath rewrite. The rewrite is required to be
// behaviour-identical, so every builtin chaos scenario re-run with the same
// seed and recording cadence must reproduce these digests exactly — engine
// clock, event counts, every component's counters and queue state included.
//
// Regenerate (only when an intentional behaviour change is made) with:
//
//	UPDATE_GOLDEN=1 go test ./internal/testbed -run TestGoldenDigestsMatchRecorded
const goldenDigestFile = "testdata/golden_digests.txt"

const goldenSeed = 42

func goldenChaosConfig(scenario string) ChaosConfig {
	return ChaosConfig{
		Scenario:    scenario,
		Seed:        goldenSeed,
		DigestEvery: 500 * sim.Microsecond,
	}
}

func formatGolden(res ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario=%s seed=%d frames=%d combined=%#016x\n",
		res.Scenario, res.Seed, res.Frames, res.Digest)
	for _, d := range res.ComponentDigests {
		fmt.Fprintf(&b, "  %s=%#016x\n", d.Component, d.Hash)
	}
	return b.String()
}

// TestGoldenDigestsMatchRecorded runs every builtin chaos scenario with
// digest recording and compares the full per-component digest breakdown
// against the pre-rewrite recordings. Any divergence in event scheduling
// order, RNG draws, packet handling or component state shows up here as a
// mismatched component hash.
func TestGoldenDigestsMatchRecorded(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos suite")
	}
	var got strings.Builder
	for _, sc := range ChaosScenarios() {
		res, err := RunChaos(goldenChaosConfig(sc))
		if err != nil {
			t.Fatalf("chaos %s: %v", sc, err)
		}
		if res.Frames == 0 {
			t.Fatalf("chaos %s: no digest frames recorded", sc)
		}
		got.WriteString(formatGolden(res))
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenDigestFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenDigestFile, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded golden digests for %d scenarios", len(ChaosScenarios()))
		return
	}

	want, err := os.ReadFile(goldenDigestFile)
	if err != nil {
		t.Fatalf("no golden recording (%v); run with UPDATE_GOLDEN=1 to create", err)
	}
	if got.String() == string(want) {
		return
	}
	// Pinpoint the first differing line so the report names the scenario
	// and component rather than dumping two multi-KB blobs.
	gs := bufio.NewScanner(strings.NewReader(got.String()))
	ws := bufio.NewScanner(strings.NewReader(string(want)))
	line := 0
	for {
		gok, wok := gs.Scan(), ws.Scan()
		line++
		if !gok && !wok {
			break
		}
		if gs.Text() != ws.Text() {
			t.Fatalf("digest divergence at line %d:\n  recorded: %s\n  got:      %s",
				line, ws.Text(), gs.Text())
		}
		if gok != wok {
			t.Fatalf("digest recording length changed at line %d (recorded %v, got %v)", line, wok, gok)
		}
	}
	t.Fatal("digest recordings differ (whitespace only?)")
}

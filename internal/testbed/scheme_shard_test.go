package testbed

import (
	"testing"

	"repro/internal/sim"
)

// TestShardedSchemeReplay audits the cross-shard telemetry paths of the
// stateful schemes: HPCC's INT stamps accumulate per hop and cross
// trunk boundaries inside the packet, DCQCN's CNPs travel the reverse
// path from receiver NIC to sender, and BBR's bandwidth/RTprop filters
// integrate delivery samples whose segments crossed shards. Each scheme
// runs a 4-shard leaf–spine incast twice; the digest timelines must
// reproduce frame for frame — any shard-boundary nondeterminism in the
// stamp/CNP/sample paths shows up as the most upstream divergent
// component.
func TestShardedSchemeReplay(t *testing.T) {
	for _, scheme := range []string{"bbr", "hpcc", "dcqcn"} {
		t.Run(scheme, func(t *testing.T) {
			res, err := RunScaleOut(ScaleOutConfig{
				Scheme:  scheme,
				Senders: 8, Receivers: 2, Flows: 8,
				Shards: 4,
				Warmup: sim.Millisecond, Measure: 3 * sim.Millisecond,
				VerifyReplay: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatalf("%s: 4-shard replay not verified", scheme)
			}
			if res.ThroughputGbps <= 0 {
				t.Fatalf("%s: no goodput measured", scheme)
			}
		})
	}
}

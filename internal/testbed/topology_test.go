package testbed

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// TestEventHeapReservation: the Reserve pre-size must cover the peak
// pending-event population of every experiment shape — flow-heavy,
// sender-heavy, and multi-switch — without a single mid-run regrowth
// copy, and without reserving more than a small multiple of what the
// run actually uses. The pre-topology hint (4096 events per sender,
// flows ignored) failed both ways.
func TestEventHeapReservation(t *testing.T) {
	shapes := []struct {
		name string
		big  bool // skipped in -short
		opts Config
	}{
		{"star-default", false, func() Config {
			o := DefaultOptions()
			o.Degree = 3
			o.HostCC = true
			return o
		}()},
		{"star-flow-heavy", false, func() Config {
			o := DefaultOptions()
			o.Senders = 2
			o.Flows = 256
			o.MinRTO = sim.Millisecond
			return o
		}()},
		{"leafspine-64", true, func() Config {
			o := DefaultOptions()
			o.Topology = fabric.LeafSpine(0, 0)
			o.Senders = 64
			o.Receivers = 4
			o.Flows = 64
			o.Degree = 2
			o.HostCC = true
			o.MinRTO = sim.Millisecond
			o.Warmup = 2 * sim.Millisecond
			o.Measure = 4 * sim.Millisecond
			return o
		}()},
		// The sharded variant sizes each shard's heap from the hosts and
		// flows assigned to that shard (shardHeapHint), so the guards below
		// apply per shard: no shard may regrow, and no shard may reserve
		// more than 32x what it peaks at.
		{"leafspine-64-sharded", true, func() Config {
			o := DefaultOptions()
			o.Topology = fabric.LeafSpine(4, 2)
			o.Senders = 64
			o.Receivers = 4
			o.Flows = 64
			o.Degree = 2
			o.HostCC = true
			o.MinRTO = sim.Millisecond
			o.Warmup = 2 * sim.Millisecond
			o.Measure = 4 * sim.Millisecond
			o.Shards = 4
			return o
		}()},
	}
	for _, c := range shapes {
		t.Run(c.name, func(t *testing.T) {
			if c.big && testing.Short() {
				t.Skip("large shape")
			}
			tb := New(c.opts)
			defer tb.Close()
			engines := []*sim.Engine{tb.E}
			if tb.Group != nil {
				engines = engines[:0]
				for i := 0; i < tb.Group.Shards(); i++ {
					engines = append(engines, tb.Group.Shard(i))
				}
			}
			reserved := make([]int, len(engines))
			for i, e := range engines {
				reserved[i] = e.HeapCap()
			}
			tb.StartNetAppT()
			tb.RunWindow()
			for i, e := range engines {
				peak, cap := e.MaxPending(), e.HeapCap()
				t.Logf("shard %d: peak %d pending of %d reserved", i, peak, cap)
				if cap != reserved[i] {
					t.Fatalf("shard %d event heap regrew mid-run: reserved %d, ended at %d (peak %d) — the heap hint under-reserves this shape",
						i, reserved[i], cap, peak)
				}
				if peak > reserved[i] {
					t.Fatalf("shard %d peak pending %d exceeded the reservation %d", i, peak, reserved[i])
				}
				if reserved[i] > 32*peak {
					t.Fatalf("shard %d reserved %d events for a peak of %d (>32x) — the heap hint over-reserves this shape",
						i, reserved[i], peak)
				}
			}
		})
	}
}

// TestScaleOutReplayDeterminism (leaf–spine and dumbbell): a scale-out
// run is a pure function of its config — the second run's digest
// timeline must match the first frame for frame. This is the 32-sender
// determinism bar for the map-iteration sweep: any map-ordered
// scheduling on the hot path diverges within a frame or two at this
// scale.
func TestScaleOutReplayDeterminism(t *testing.T) {
	topos := []string{"leafspine", "dumbbell"}
	senders := 32
	if testing.Short() {
		topos, senders = topos[:1], 8
	}
	for _, topo := range topos {
		t.Run(topo, func(t *testing.T) {
			r, err := RunScaleOut(ScaleOutConfig{
				Topology:     topo,
				Senders:      senders,
				Warmup:       1 * sim.Millisecond,
				Measure:      3 * sim.Millisecond,
				VerifyReplay: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Verified {
				t.Fatal("replay verification did not run")
			}
			if r.Frames == 0 {
				t.Fatal("no digest frames recorded")
			}
			if r.Trunks == 0 {
				t.Fatalf("%s fabric built no trunk links", topo)
			}
			if r.ThroughputGbps <= 0 {
				t.Fatalf("no goodput through the %s fabric: %s", topo, r)
			}
		})
	}
}

// TestScaleOutSeedChangesOutcome: the seed must actually perturb a
// multi-switch run (RNG plumbed through the topology build).
func TestScaleOutSeedChangesOutcome(t *testing.T) {
	run := func(seed int64) uint64 {
		r, err := RunScaleOut(ScaleOutConfig{
			Topology: "leafspine",
			Senders:  8,
			Seed:     seed,
			Warmup:   1 * sim.Millisecond,
			Measure:  2 * sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.Digest
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical final digests")
	}
}

// goldenTopologyFile pins the final-state digests of one fixed
// scale-out run per multi-switch topology, the analogue of the chaos
// golden recordings for the routed fabric. Regenerate (only on an
// intentional behaviour change) with:
//
//	UPDATE_GOLDEN=1 go test ./internal/testbed -run TestTopologyGoldenDigests
const goldenTopologyFile = "testdata/golden_topology_digests.txt"

func goldenScaleOutConfig(topo string) ScaleOutConfig {
	return ScaleOutConfig{
		Topology:  topo,
		Senders:   16,
		Receivers: 2,
		Flows:     16,
		Seed:      goldenSeed,
		Warmup:    1 * sim.Millisecond,
		Measure:   3 * sim.Millisecond,
	}
}

// TestTopologyGoldenDigests runs a fixed leaf–spine and dumbbell
// scale-out configuration and compares every component digest against
// the recorded goldens — the routed-fabric determinism anchor future
// refactors must preserve.
func TestTopologyGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	var got strings.Builder
	for _, topo := range []string{"leafspine", "dumbbell"} {
		r, err := RunScaleOut(goldenScaleOutConfig(topo))
		if err != nil {
			t.Fatalf("scale-out %s: %v", topo, err)
		}
		if r.Frames == 0 {
			t.Fatalf("scale-out %s: no digest frames recorded", topo)
		}
		fmt.Fprintf(&got, "topology=%s senders=%d receivers=%d flows=%d seed=%d frames=%d combined=%#016x\n",
			r.Topology, r.Senders, r.Receivers, r.Flows, r.Seed, r.Frames, r.Digest)
		for _, d := range r.ComponentDigests {
			fmt.Fprintf(&got, "  %s=%#016x\n", d.Component, d.Hash)
		}
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenTopologyFile, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("recorded topology golden digests")
		return
	}

	want, err := os.ReadFile(goldenTopologyFile)
	if err != nil {
		t.Fatalf("no golden recording (%v); run with UPDATE_GOLDEN=1 to create", err)
	}
	if got.String() == string(want) {
		return
	}
	gs := bufio.NewScanner(strings.NewReader(got.String()))
	ws := bufio.NewScanner(strings.NewReader(string(want)))
	line := 0
	for {
		gok, wok := gs.Scan(), ws.Scan()
		line++
		if !gok && !wok {
			break
		}
		if gs.Text() != ws.Text() {
			t.Fatalf("digest divergence at line %d:\n  recorded: %s\n  got:      %s",
				line, ws.Text(), gs.Text())
		}
		if gok != wok {
			t.Fatalf("digest recording length changed at line %d", line)
		}
	}
	t.Fatal("digest recordings differ (whitespace only?)")
}

// TestStarTopologyIsDefault: an explicit star Topology must behave
// exactly like the zero value — same construction, same digests.
func TestStarTopologyIsDefault(t *testing.T) {
	run := func(topo fabric.Topology) Metrics {
		opts := DefaultOptions()
		opts.Topology = topo
		opts.Degree = 2
		opts.HostCC = true
		opts.Warmup = 2 * sim.Millisecond
		opts.Measure = 3 * sim.Millisecond
		tb := New(opts)
		tb.StartNetAppT()
		return tb.RunWindow()
	}
	if a, b := run(fabric.Topology{}), run(fabric.Star()); a != b {
		t.Fatalf("explicit star differs from zero-value topology:\n%+v\n%+v", a, b)
	}
}

// TestCrossRackIncast: the headline multi-switch experiment — incast
// across the spine into hostCC-equipped receivers — must move traffic
// over every trunk (cross-rack placement working) and keep hostCC's
// marking active at the receivers.
func TestCrossRackIncast(t *testing.T) {
	opts := DefaultOptions()
	opts.Topology = fabric.LeafSpine(0, 0)
	opts.Senders = 16
	opts.Receivers = 2
	opts.Flows = 16
	opts.Degree = 2
	opts.HostCC = true
	opts.MinRTO = sim.Millisecond
	opts.Warmup = 1 * sim.Millisecond
	opts.Measure = 3 * sim.Millisecond
	tb := New(opts)
	tb.StartNetAppT()
	m := tb.RunWindow()
	if m.ThroughputGbps <= 0 {
		t.Fatalf("no cross-rack goodput: %+v", m)
	}
	for i, trunk := range tb.Trunks {
		if trunk.Bytes.Total() == 0 {
			t.Errorf("trunk %d carried no bytes — routing not crossing the spine", i)
		}
	}
	if len(tb.Receivers) != 2 || len(tb.HCCs) != 2 {
		t.Fatalf("expected 2 receivers with hostCC, got %d/%d", len(tb.Receivers), len(tb.HCCs))
	}
}

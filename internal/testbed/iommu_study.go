package testbed

import (
	"fmt"

	"repro/internal/iommu"
)

// This file implements the IOMMU extension study motivated by §2.1 and
// §6: memory-protection hardware is a host congestion point of its own,
// and — crucially — one that hostCC's IIO occupancy signal cannot see,
// because DMA stalls in address translation *before* entering the IIO
// buffer. The study measures throughput, the IIO occupancy signal, and
// the candidate replacement signal (IOTLB miss rate) across IOTLB sizes.

// IOMMURow is one cell of the IOMMU study.
type IOMMURow struct {
	// IOTLBEntries is the translation cache size; 0 = IOMMU disabled.
	IOTLBEntries int
	// MissRate is the IOTLB miss rate (the §6 candidate signal).
	MissRate float64
	// WalkTimeFrac is the fraction of the measurement window spent
	// walking page tables.
	M Metrics
}

func (r IOMMURow) String() string {
	label := fmt.Sprintf("iotlb=%d", r.IOTLBEntries)
	if r.IOTLBEntries == 0 {
		label = "iommu=off"
	}
	return fmt.Sprintf("%-12s tput=%6.1fG drop=%8.4f%% IS=%5.1f BS=%6.1fG missRate=%.2f",
		label, r.M.ThroughputGbps, r.M.DropRatePct, r.M.AvgIS, r.M.AvgBSGbps, r.MissRate)
}

// RunIOMMUStudy measures the IOMMU-induced host congestion blind spot: an
// undersized IOTLB degrades throughput while the IIO occupancy signal
// stays low (so stock hostCC would not react), and the IOTLB miss rate
// identifies the bottleneck instead. No MApp runs: the congestion here is
// purely translation-induced.
func RunIOMMUStudy(s Scale) []IOMMURow {
	var rows []IOMMURow
	for _, entries := range []int{0, 32, 128, 1024} {
		opts := s.throughputOpts()
		tb := NewWithIOMMU(opts, entries)
		tb.StartNetAppT()
		m := tb.RunWindow()
		row := IOMMURow{IOTLBEntries: entries, M: m}
		if u := tb.Receiver.IOMMU; u != nil {
			row.MissRate = u.MissRate()
		}
		rows = append(rows, row)
	}
	return rows
}

// NewWithIOMMU builds a testbed whose receiver has an IOMMU with the
// given IOTLB size (0 disables translation).
func NewWithIOMMU(opts Options, iotlbEntries int) *Testbed {
	if iotlbEntries <= 0 {
		return New(opts)
	}
	cfg := iommu.DefaultConfig()
	cfg.IOTLBEntries = iotlbEntries
	opts.iommu = &cfg
	return New(opts)
}

package testbed

import "testing"

// TestDeterminism: identical options (including the seed) must produce
// bit-identical metrics — the property that makes every figure in
// EXPERIMENTS.md reproducible.
func TestDeterminism(t *testing.T) {
	run := func() Metrics {
		opts := DefaultOptions()
		opts.Degree = 3
		opts.HostCC = true
		opts.MinRTO = 5_000_000
		opts.Warmup = 10_000_000
		opts.Measure = 5_000_000
		tb := New(opts)
		tb.StartNetAppT()
		return tb.RunWindow()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// TestSeedChangesOutcome: different seeds should actually perturb the
// run (otherwise the RNG is not wired through).
func TestSeedChangesOutcome(t *testing.T) {
	// DDIO on: cache pollution consumes the seeded RNG on the datapath.
	run := func(seed int64) Metrics {
		opts := DefaultOptions()
		opts.Seed = seed
		opts.Degree = 3
		opts.DDIO = true
		opts.MinRTO = 5_000_000
		opts.Warmup = 10_000_000
		opts.Measure = 5_000_000
		tb := New(opts)
		tb.StartNetAppT()
		return tb.RunWindow()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical metrics; RNG not plumbed")
	}
}

// TestFailureInjectionWireLoss: with random wire corruption on every
// link, the system still delivers (transport recovers) and hostCC still
// helps under host congestion.
func TestFailureInjectionWireLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	run := func(hostcc bool) Metrics {
		opts := ScaleQuick.throughputOpts()
		opts.Degree = 3
		opts.HostCC = hostcc
		opts.WireLossProb = 1e-4
		tb := New(opts)
		tb.StartNetAppT()
		return tb.RunWindow()
	}
	base, cc := run(false), run(true)
	if base.ThroughputGbps < 15 {
		t.Fatalf("baseline collapsed under 0.01%% wire loss: %.1f Gbps", base.ThroughputGbps)
	}
	if cc.ThroughputGbps < base.ThroughputGbps {
		t.Fatalf("hostCC (%.1f) should still beat baseline (%.1f) despite wire loss",
			cc.ThroughputGbps, base.ThroughputGbps)
	}
}

package testbed

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/transport"
)

// chaosRTT is the nominal base RTT of the testbed topology (4 × 9 µs
// propagation plus serialization and host turnaround) used to express
// recovery times in RTTs, the unit the acceptance criterion is stated in.
const chaosRTT = 44 * sim.Microsecond

// ChaosConfig parameterizes one chaos run: a fault scenario injected into
// a loaded testbed, with throughput tracked through the fault and out the
// other side.
type ChaosConfig struct {
	// Scenario names a built-in fault scenario (faults.BuiltinNames), or
	// set Plan for a custom one.
	Scenario string
	// Plan overrides Scenario with an explicit fault plan. Its window
	// should open at FaultAt and clear by FaultAt+FaultFor for the
	// recovery accounting to be meaningful.
	Plan *faults.Plan

	// Topology names the fabric shape ("star", "leafspine", "dumbbell";
	// "" selects the scenario's natural topology — leaf–spine for
	// trunk-flap, star otherwise).
	Topology string

	// Scheme selects the transport congestion control by public scheme
	// name. Blank keeps what every chaos run used before the field
	// existed: dcqcn on lossless scenarios/fabrics, dctcp elsewhere.
	// Lossless schemes (dcqcn) imply the PFC fabric.
	Scheme string

	Seed int64
	// Shards partitions the run across parallel engine shards (0/1 =
	// classic serial engine). Requires a multi-switch topology.
	Shards int
	// Degree of host congestion at the receiver (default 2x).
	Degree float64
	// FaultAt / FaultFor position the fault window (defaults: 6 ms into
	// the run, lasting 600 µs ≈ 14 RTTs).
	FaultAt  sim.Time
	FaultFor sim.Time
	// RecoveryRTTBudget bounds how long after the fault clears the run
	// keeps probing for recovery (default 50 RTTs, the acceptance bar).
	RecoveryRTTBudget int

	// DigestEvery records a per-component state digest frame at this
	// virtual period (0 disables recording). Recording schedules its own
	// events, so digest timelines are only comparable between runs using
	// the same recording configuration.
	DigestEvery sim.Time
	// CheckpointEvery writes a checkpoint to CheckpointPath each time the
	// processed-event count crosses a multiple of this value (0 disables).
	// Checkpoints are captured inside recorder ticks, so enabling them
	// implies digest recording (DigestEvery defaults to 500 µs if unset).
	CheckpointEvery uint64
	CheckpointPath  string

	// SentinelWindow arms the liveness sentinel with this stall window
	// (0 disables). SentinelPolicy selects abort-with-diagnostic vs
	// credit-timeout escape; SnapshotOnStall, when non-empty, is where the
	// abort path writes the diagnostic checkpoint for offline replay.
	SentinelWindow  sim.Time
	SentinelPolicy  sim.SentinelPolicy
	SnapshotOnStall string

	// Lossless runs the scenario on a PFC + DCQCN fabric (implied by the
	// lossless scenarios pfc-storm, pause-loss and congestion-spread;
	// settable to put any other scenario on the lossless fabric).
	Lossless bool
	// VerifyReplay re-executes the completed run and confirms the digest
	// timeline reproduces frame for frame (the scale-out testbed's replay
	// verification applied to chaos). Implies digest recording.
	VerifyReplay bool
}

// scenarioInfo looks up the shared scenario registry (faults.Scenarios is
// the single source of truth for lossless/topology/trunk constraints;
// this harness and the crucible generator both read it). Unknown names
// return the zero info — Builtin will report the real error.
func scenarioInfo(name string) faults.ScenarioInfo {
	for _, info := range faults.Scenarios() {
		if info.Name == name {
			return info
		}
	}
	return faults.ScenarioInfo{Name: name, Topology: "star"}
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if scenarioInfo(c.Scenario).Lossless {
		c.Lossless = true
	}
	if c.Scheme == "" {
		// What every chaos run used before the field existed: dcqcn on
		// the PFC fabric (the CC lossless fabrics deploy), dctcp
		// elsewhere — keeps pre-scheme golden digests byte-identical.
		if c.Lossless {
			c.Scheme = "dcqcn"
		} else {
			c.Scheme = "dctcp"
		}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Degree == 0 {
		c.Degree = 2
	}
	if c.FaultAt == 0 {
		c.FaultAt = 6 * sim.Millisecond
	}
	if c.FaultFor == 0 {
		c.FaultFor = 600 * sim.Microsecond
	}
	if c.RecoveryRTTBudget == 0 {
		c.RecoveryRTTBudget = 50
		// A spine partition kills every cross-rack in-flight packet at
		// once, so trunk-flap recovery is pure RTO backoff — 10–120 RTTs
		// depending on whether the first retry lands inside the flap
		// window. 50 RTTs would truncate the probe before the retry fires.
		if c.Scenario == "trunk-flap" {
			c.RecoveryRTTBudget = 150
		}
	}
	if c.VerifyReplay && c.DigestEvery == 0 {
		c.DigestEvery = 500 * sim.Microsecond
	}
	if c.CheckpointEvery > 0 && c.DigestEvery == 0 {
		c.DigestEvery = 500 * sim.Microsecond
	}
	return c
}

// ChaosResult reports how the system rode through one fault scenario.
type ChaosResult struct {
	Scenario string
	Seed     int64

	// BaselineGbps is fault-free NetApp-T goodput before the fault;
	// FaultGbps the goodput during the fault window; FinalGbps the
	// goodput over the last probe window.
	BaselineGbps float64
	FaultGbps    float64
	FinalGbps    float64

	// Recovered reports whether goodput returned to ≥90% of baseline
	// within the recovery budget after the fault cleared; RecoveryRTTs
	// is when (in RTTs after clearing; -1 if it never did).
	Recovered    bool
	RecoveryRTTs float64

	// Failsafe activity during the run.
	WatchdogTrips  int64
	WatchdogRearms int64
	WatchdogState  string
	TripReason     string
	MBARetries     int64
	FailedSamples  int64

	// Fault and audit bookkeeping.
	FaultEvents     int
	InvariantChecks int64
	Violations      []string

	// Determinism instrumentation. Digest is the combined hash over every
	// component's final state (always computed); ComponentDigests is the
	// per-component breakdown; Frames counts digest frames recorded and
	// Checkpoints the checkpoint files written during the run.
	Digest           uint64
	ComponentDigests []snapshot.Digest
	Frames           int
	Checkpoints      int

	// Stall is the sentinel's first report (nil when no stall was
	// detected); StallSnapshot is the diagnostic checkpoint path written
	// on abort ("" when none was written).
	Stall         *sim.StallReport
	StallSnapshot string

	// ReplayVerified reports that the VerifyReplay re-execution matched
	// the recording (always false when VerifyReplay was off);
	// ReplayFrames is how many digest frames were compared.
	ReplayVerified bool
	ReplayFrames   int
}

// RunChaos executes one chaos scenario: build a loaded testbed with the
// watchdog armed and the invariant checker auditing, measure a fault-free
// baseline, open the fault window, and probe goodput in 5-RTT windows
// after it clears until goodput reaches 90% of baseline or the budget
// runs out. The entire run — fault timing, probabilistic drops, transport
// behavior — is a deterministic function of cfg.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	cfg = cfg.withDefaults()
	res, tl, err := runChaos(cfg)
	if err != nil || !cfg.VerifyReplay {
		return res, err
	}
	// Replay verification: the run is a pure function of cfg, so a second
	// execution must reproduce every digest frame and the final combined
	// digest bit for bit.
	res2, tl2, err := runChaos(cfg)
	if err != nil {
		return res, fmt.Errorf("testbed: chaos replay: %w", err)
	}
	if _, diverged := snapshot.FirstDivergence(tl, tl2); !diverged && res.Digest == res2.Digest && tl.Len() > 0 {
		res.ReplayVerified = true
		res.ReplayFrames = tl.Len()
	}
	return res, nil
}

// runChaos is RunChaos plus the recorded digest timeline (used by the
// replay verifier).
func runChaos(cfg ChaosConfig) (ChaosResult, *snapshot.Timeline, error) {
	cfg = cfg.withDefaults()
	plan := cfg.Plan
	scenarioKey := ""
	if plan == nil {
		p, err := faults.Builtin(cfg.Scenario, cfg.FaultAt, cfg.FaultFor)
		if err != nil {
			return ChaosResult{}, nil, err
		}
		plan = &p
		scenarioKey = plan.Name
	} else {
		// Custom plans live only in the caller's process; a checkpoint
		// carrying this marker cannot be resumed.
		scenarioKey = "custom:" + plan.Name
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointPath == "" {
		return ChaosResult{}, nil, fmt.Errorf("testbed: ChaosConfig.CheckpointEvery set without CheckpointPath")
	}
	info := scenarioInfo(plan.Name)
	topoName := cfg.Topology
	if topoName == "" && info.Topology != "star" {
		topoName = info.Topology
	}
	topoKind, err := fabric.ParseTopologyKind(topoName)
	if err != nil {
		return ChaosResult{}, nil, err
	}
	scheme, err := transport.SchemeByName(cfg.Scheme)
	if err != nil {
		return ChaosResult{}, nil, err
	}
	wd := core.DefaultWatchdogConfig()
	opts := DefaultOptions()
	opts.Seed = cfg.Seed
	opts.CC = scheme.Factory()
	if scheme.Lossless {
		cfg.Lossless = true
	}
	opts.HostCC = true
	opts.Degree = cfg.Degree
	opts.Topology = fabric.Topology{Kind: topoKind}
	// Trunk scenarios (trunk-flap) aim the link-flap seam at the
	// inter-switch trunks.
	opts.FaultTrunks = info.Trunks
	// A 1 ms MinRTO keeps RTO-driven recovery (link flaps kill every
	// in-flight packet) well inside the 50-RTT acceptance window; the
	// Linux 200 ms default would dwarf any host-side effect.
	opts.MinRTO = sim.Millisecond
	opts.Shards = cfg.Shards
	opts.Faults = plan
	opts.Watchdog = &wd
	opts.Invariants = true
	opts.Lossless = cfg.Lossless
	switch plan.Name {
	case "pfc-storm":
		// Two leaves, one spine: every cross-rack byte transits the
		// stormed trunk pair, so the forced pauses freeze both directions
		// and the wait graph closes into a pfc cycle. No PFC watchdog —
		// the storm is supposed to wedge the fabric until it clears.
		if topoKind != fabric.TopoLeafSpine {
			return ChaosResult{}, nil, fmt.Errorf("testbed: pfc-storm requires the leafspine topology, not %q", topoKind)
		}
		opts.Topology = fabric.Topology{Kind: fabric.TopoLeafSpine, Leaves: 2, Spines: 1}
		// Trunk pair of leaf 1 (the sender rack): up leaf1->spine0 and
		// down spine0->leaf1, indices 2*(1*spines+0) and +1.
		opts.StormTrunks = []int{2, 3}
	case "pause-loss":
		// Lost XONs wedge ports; the PFC watchdog is the recovery
		// mechanism under test.
		opts.PauseWatchdog = 150 * sim.Microsecond
	}
	if err := opts.Validate(); err != nil {
		return ChaosResult{}, nil, err
	}

	tb := New(opts)
	defer tb.Close()
	res := ChaosResult{Scenario: plan.Name, Seed: cfg.Seed}
	// Collect violations instead of panicking so the result reports them
	// (the chaos tests assert the list is empty — still a loud failure).
	tb.Inv.OnViolation = func(string) {}

	tb.StartNetAppT()

	// Determinism instrumentation: the registry covers every component,
	// the recorder samples digest frames (and captures checkpoints inside
	// its own ticks, so the capture never perturbs event ordering relative
	// to a same-config run), and the sentinel watches for stalled progress.
	reg := tb.Registry()
	timeline := &snapshot.Timeline{}
	meta := chaosMeta(cfg, scenarioKey, topoKind.String())
	capture := func() *snapshot.Checkpoint {
		return &snapshot.Checkpoint{
			Meta:        meta,
			VirtualTime: int64(tb.Now()),
			Events:      tb.Processed(),
			Timeline:    *timeline,
			State:       reg.EncodeAll(),
		}
	}
	recording := false
	var lastBucket uint64
	if cfg.DigestEvery > 0 {
		// In sharded mode the recorder runs as a coordinator hook: every
		// shard is quiesced at the hook point, so the registry digest reads
		// one consistent global state.
		recording = true
		tb.Every(cfg.DigestEvery, func() {
			if !recording {
				return
			}
			timeline.Append(snapshot.Frame{
				At:      int64(tb.Now()),
				Events:  tb.Processed(),
				Digests: reg.Digests(),
			})
			if cfg.CheckpointEvery > 0 {
				if bucket := tb.Processed() / cfg.CheckpointEvery; bucket > lastBucket {
					lastBucket = bucket
					if err := capture().WriteFile(cfg.CheckpointPath); err == nil {
						res.Checkpoints++
					}
				}
			}
		})
	}

	var sen *sim.Sentinel
	if cfg.SentinelWindow > 0 {
		sen = tb.StartSentinel(sim.SentinelConfig{
			Window: cfg.SentinelWindow,
			Policy: cfg.SentinelPolicy,
		})
		sen.OnStall(func(*sim.StallReport) {
			if cfg.SnapshotOnStall != "" && res.StallSnapshot == "" {
				if err := capture().WriteFile(cfg.SnapshotOnStall); err == nil {
					res.StallSnapshot = cfg.SnapshotOnStall
				}
			}
		})
	}
	// RunUntil clears the engine's stop flag on entry, so a sentinel abort
	// must short-circuit the remaining phases explicitly.
	aborted := func() bool {
		return sen != nil && cfg.SentinelPolicy == sim.SentinelAbort && sen.Report() != nil
	}

	// Fault-free baseline: warmup, then measure up to the fault window.
	tb.RunUntil(opts.Warmup)
	tb.MarkWindow()
	if !aborted() {
		tb.RunUntil(cfg.FaultAt)
		res.BaselineGbps = tb.NetT.Throughput().Gbps()
	}

	// Through the fault window.
	if !aborted() {
		tb.NetT.MarkWindow()
		tb.RunUntil(cfg.FaultAt + cfg.FaultFor)
		res.FaultGbps = tb.NetT.Throughput().Gbps()
	}

	// Probe recovery in 5-RTT windows after the fault clears.
	const probeRTTs = 5
	probe := probeRTTs * chaosRTT
	target := 0.9 * res.BaselineGbps
	res.RecoveryRTTs = -1
	for rtts := 0; rtts < cfg.RecoveryRTTBudget && !aborted(); rtts += probeRTTs {
		tb.NetT.MarkWindow()
		tb.RunFor(probe)
		res.FinalGbps = tb.NetT.Throughput().Gbps()
		if res.FinalGbps >= target {
			res.Recovered = true
			res.RecoveryRTTs = float64(rtts + probeRTTs)
			break
		}
	}

	if w := tb.HCC.Watchdog(); w != nil {
		res.WatchdogTrips = w.Trips.Total()
		res.WatchdogRearms = w.Rearms.Total()
		res.WatchdogState = w.State().String()
		res.TripReason = w.Reason()
		res.MBARetries = w.Retries.Total()
	}
	res.FailedSamples = tb.HCC.FailedSamples.Total()
	res.FaultEvents = len(tb.Injector.Events)
	tb.Inv.Check() // one final audit at quiescence
	res.InvariantChecks = tb.Inv.Checks.Total()
	res.Violations = tb.Inv.Violations
	tb.HCC.Stop()
	tb.Inv.Stop()
	if sen != nil {
		res.Stall = sen.Report()
		sen.Stop()
	}
	recording = false
	res.Frames = timeline.Len()
	res.ComponentDigests = reg.Digests()
	res.Digest = snapshot.Combined(res.ComponentDigests)
	return res, timeline, nil
}

// chaosMeta flattens the (defaulted) run configuration into checkpoint
// metadata, enough to re-execute the run deterministically.
func chaosMeta(cfg ChaosConfig, scenarioKey, topology string) map[string]string {
	return map[string]string{
		"scenario":       scenarioKey,
		"topology":       topology,
		"scheme":         cfg.Scheme,
		"seed":           strconv.FormatInt(cfg.Seed, 10),
		"degree":         strconv.FormatFloat(cfg.Degree, 'g', -1, 64),
		"faultAt":        strconv.FormatInt(int64(cfg.FaultAt), 10),
		"faultFor":       strconv.FormatInt(int64(cfg.FaultFor), 10),
		"budget":         strconv.Itoa(cfg.RecoveryRTTBudget),
		"digestEvery":    strconv.FormatInt(int64(cfg.DigestEvery), 10),
		"sentinelWindow": strconv.FormatInt(int64(cfg.SentinelWindow), 10),
		"sentinelPolicy": strconv.Itoa(int(cfg.SentinelPolicy)),
		"lossless":       strconv.FormatBool(cfg.Lossless),
		"shards":         strconv.Itoa(cfg.Shards),
	}
}

// chaosConfigFromCheckpoint reconstructs the run configuration a
// checkpoint records. Only builtin scenarios are resumable: a custom
// fault plan lives in the recording process and has no serialized form.
func chaosConfigFromCheckpoint(ck *snapshot.Checkpoint) (ChaosConfig, error) {
	scen := ck.Get("scenario")
	if scen == "" {
		return ChaosConfig{}, fmt.Errorf("testbed: checkpoint records no scenario")
	}
	if strings.HasPrefix(scen, "custom:") {
		return ChaosConfig{}, fmt.Errorf("testbed: checkpoint records custom fault plan %q; only builtin scenarios are resumable",
			strings.TrimPrefix(scen, "custom:"))
	}
	var firstErr error
	geti := func(key string) int64 {
		v, err := strconv.ParseInt(ck.Get(key), 10, 64)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("testbed: checkpoint meta %q: %w", key, err)
		}
		return v
	}
	degree, err := strconv.ParseFloat(ck.Get("degree"), 64)
	if err != nil {
		firstErr = fmt.Errorf("testbed: checkpoint meta \"degree\": %w", err)
	}
	cfg := ChaosConfig{
		Scenario: scen,
		// Checkpoints from before the topology field carry no key; the
		// blank value selects the scenario's natural topology, which is
		// what those runs used.
		Topology: ck.Get("topology"),
		// Checkpoints from before the scheme field carry no key; the blank
		// value re-selects dctcp, which is what those runs used.
		Scheme:            ck.Get("scheme"),
		Seed:              geti("seed"),
		Degree:            degree,
		FaultAt:           sim.Time(geti("faultAt")),
		FaultFor:          sim.Time(geti("faultFor")),
		RecoveryRTTBudget: int(geti("budget")),
		DigestEvery:       sim.Time(geti("digestEvery")),
		SentinelWindow:    sim.Time(geti("sentinelWindow")),
		SentinelPolicy:    sim.SentinelPolicy(geti("sentinelPolicy")),
		// Checkpoints from before the lossless field carry no key; those
		// runs were lossy, which is exactly what the blank value selects
		// (withDefaults re-implies lossless for the lossless scenarios).
		Lossless: ck.Get("lossless") == "true",
	}
	// Checkpoints from before the shards field carry no key; those runs
	// were serial, which is what the zero value selects.
	if s := ck.Get("shards"); s != "" {
		cfg.Shards = int(geti("shards"))
	}
	return cfg, firstErr
}

// ReplayReport is the outcome of a verified replay from a checkpoint.
type ReplayReport struct {
	// Result is the completed run (replayed past the checkpoint to the
	// end, or to the same sentinel abort the original hit).
	Result ChaosResult
	// Verified reports that every digest frame recorded in the checkpoint
	// matched the replay; FramesChecked is how many frames were compared.
	Verified      bool
	FramesChecked int
	// Divergence names the first mismatching component when !Verified.
	Divergence *snapshot.Divergence
}

// ResumeChaos resumes the run recorded in a checkpoint file. Resumption
// is replay-based — pending event closures have no serializable form, but
// a chaos run is a deterministic function of its recorded configuration —
// so the run is re-executed from its initial conditions and the recorded
// digest timeline is verified frame by frame against the replay before
// the completed result is returned.
func ResumeChaos(path string) (ReplayReport, error) {
	ck, err := snapshot.ReadFile(path)
	if err != nil {
		return ReplayReport{}, err
	}
	cfg, err := chaosConfigFromCheckpoint(ck)
	if err != nil {
		return ReplayReport{}, err
	}
	res, tl, err := runChaos(cfg)
	if err != nil {
		return ReplayReport{}, fmt.Errorf("testbed: replay %s: %w", path, err)
	}
	rep := ReplayReport{Result: res}
	rep.FramesChecked = min(len(ck.Timeline.Frames), tl.Len())
	if div, found := snapshot.FirstDivergence(&ck.Timeline, tl); found {
		rep.Divergence = &div
	} else {
		rep.Verified = rep.FramesChecked > 0
	}
	return rep, nil
}

// ChaosScenarios returns the built-in scenario names (the vocabulary of
// RunChaos and `hostcc-bench -chaos`).
func ChaosScenarios() []string { return faults.BuiltinNames() }

// String renders the result as a one-line summary.
func (r ChaosResult) String() string {
	rec := "did NOT recover"
	if r.Recovered {
		rec = fmt.Sprintf("recovered in %.0f RTTs", r.RecoveryRTTs)
	}
	return fmt.Sprintf(
		"%s: baseline %.1f Gbps, during fault %.1f Gbps, %s (final %.1f Gbps); watchdog trips=%d rearms=%d retries=%d; violations=%d",
		r.Scenario, r.BaselineGbps, r.FaultGbps, rec, r.FinalGbps,
		r.WatchdogTrips, r.WatchdogRearms, r.MBARetries, len(r.Violations))
}

package testbed

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

// chaosRTT is the nominal base RTT of the testbed topology (4 × 9 µs
// propagation plus serialization and host turnaround) used to express
// recovery times in RTTs, the unit the acceptance criterion is stated in.
const chaosRTT = 44 * sim.Microsecond

// ChaosConfig parameterizes one chaos run: a fault scenario injected into
// a loaded testbed, with throughput tracked through the fault and out the
// other side.
type ChaosConfig struct {
	// Scenario names a built-in fault scenario (faults.BuiltinNames), or
	// set Plan for a custom one.
	Scenario string
	// Plan overrides Scenario with an explicit fault plan. Its window
	// should open at FaultAt and clear by FaultAt+FaultFor for the
	// recovery accounting to be meaningful.
	Plan *faults.Plan

	Seed int64
	// Degree of host congestion at the receiver (default 2x).
	Degree float64
	// FaultAt / FaultFor position the fault window (defaults: 6 ms into
	// the run, lasting 600 µs ≈ 14 RTTs).
	FaultAt  sim.Time
	FaultFor sim.Time
	// RecoveryRTTBudget bounds how long after the fault clears the run
	// keeps probing for recovery (default 50 RTTs, the acceptance bar).
	RecoveryRTTBudget int
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Degree == 0 {
		c.Degree = 2
	}
	if c.FaultAt == 0 {
		c.FaultAt = 6 * sim.Millisecond
	}
	if c.FaultFor == 0 {
		c.FaultFor = 600 * sim.Microsecond
	}
	if c.RecoveryRTTBudget == 0 {
		c.RecoveryRTTBudget = 50
	}
	return c
}

// ChaosResult reports how the system rode through one fault scenario.
type ChaosResult struct {
	Scenario string
	Seed     int64

	// BaselineGbps is fault-free NetApp-T goodput before the fault;
	// FaultGbps the goodput during the fault window; FinalGbps the
	// goodput over the last probe window.
	BaselineGbps float64
	FaultGbps    float64
	FinalGbps    float64

	// Recovered reports whether goodput returned to ≥90% of baseline
	// within the recovery budget after the fault cleared; RecoveryRTTs
	// is when (in RTTs after clearing; -1 if it never did).
	Recovered    bool
	RecoveryRTTs float64

	// Failsafe activity during the run.
	WatchdogTrips  int64
	WatchdogRearms int64
	WatchdogState  string
	TripReason     string
	MBARetries     int64
	FailedSamples  int64

	// Fault and audit bookkeeping.
	FaultEvents     int
	InvariantChecks int64
	Violations      []string
}

// RunChaos executes one chaos scenario: build a loaded testbed with the
// watchdog armed and the invariant checker auditing, measure a fault-free
// baseline, open the fault window, and probe goodput in 5-RTT windows
// after it clears until goodput reaches 90% of baseline or the budget
// runs out. The entire run — fault timing, probabilistic drops, transport
// behavior — is a deterministic function of cfg.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	cfg = cfg.withDefaults()
	plan := cfg.Plan
	if plan == nil {
		p, err := faults.Builtin(cfg.Scenario, cfg.FaultAt, cfg.FaultFor)
		if err != nil {
			return ChaosResult{}, err
		}
		plan = &p
	}
	wd := core.DefaultWatchdogConfig()
	opts := DefaultOptions()
	opts.Seed = cfg.Seed
	opts.HostCC = true
	opts.Degree = cfg.Degree
	// A 1 ms MinRTO keeps RTO-driven recovery (link flaps kill every
	// in-flight packet) well inside the 50-RTT acceptance window; the
	// Linux 200 ms default would dwarf any host-side effect.
	opts.MinRTO = sim.Millisecond
	opts.Faults = plan
	opts.Watchdog = &wd
	opts.Invariants = true

	tb := New(opts)
	res := ChaosResult{Scenario: plan.Name, Seed: cfg.Seed}
	// Collect violations instead of panicking so the result reports them
	// (the chaos tests assert the list is empty — still a loud failure).
	tb.Inv.OnViolation = func(string) {}

	tb.StartNetAppT()

	// Fault-free baseline: warmup, then measure up to the fault window.
	tb.E.RunUntil(opts.Warmup)
	tb.MarkWindow()
	tb.E.RunUntil(cfg.FaultAt)
	res.BaselineGbps = tb.NetT.Throughput().Gbps()

	// Through the fault window.
	tb.NetT.MarkWindow()
	tb.E.RunUntil(cfg.FaultAt + cfg.FaultFor)
	res.FaultGbps = tb.NetT.Throughput().Gbps()

	// Probe recovery in 5-RTT windows after the fault clears.
	const probeRTTs = 5
	probe := probeRTTs * chaosRTT
	target := 0.9 * res.BaselineGbps
	res.RecoveryRTTs = -1
	for rtts := 0; rtts < cfg.RecoveryRTTBudget; rtts += probeRTTs {
		tb.NetT.MarkWindow()
		tb.E.RunFor(probe)
		res.FinalGbps = tb.NetT.Throughput().Gbps()
		if res.FinalGbps >= target {
			res.Recovered = true
			res.RecoveryRTTs = float64(rtts + probeRTTs)
			break
		}
	}

	if w := tb.HCC.Watchdog(); w != nil {
		res.WatchdogTrips = w.Trips.Total()
		res.WatchdogRearms = w.Rearms.Total()
		res.WatchdogState = w.State().String()
		res.TripReason = w.Reason()
		res.MBARetries = w.Retries.Total()
	}
	res.FailedSamples = tb.HCC.FailedSamples.Total()
	res.FaultEvents = len(tb.Injector.Events)
	tb.Inv.Check() // one final audit at quiescence
	res.InvariantChecks = tb.Inv.Checks.Total()
	res.Violations = tb.Inv.Violations
	tb.HCC.Stop()
	tb.Inv.Stop()
	return res, nil
}

// ChaosScenarios returns the built-in scenario names (the vocabulary of
// RunChaos and `hostcc-bench -chaos`).
func ChaosScenarios() []string { return faults.BuiltinNames() }

// String renders the result as a one-line summary.
func (r ChaosResult) String() string {
	rec := "did NOT recover"
	if r.Recovered {
		rec = fmt.Sprintf("recovered in %.0f RTTs", r.RecoveryRTTs)
	}
	return fmt.Sprintf(
		"%s: baseline %.1f Gbps, during fault %.1f Gbps, %s (final %.1f Gbps); watchdog trips=%d rearms=%d retries=%d; violations=%d",
		r.Scenario, r.BaselineGbps, r.FaultGbps, rec, r.FinalGbps,
		r.WatchdogTrips, r.WatchdogRearms, r.MBARetries, len(r.Violations))
}

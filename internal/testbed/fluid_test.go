package testbed

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Fluid-vs-packet validation tolerance, checked in with the tests that
// enforce it (the DESIGN.md hybrid-tier section documents the
// methodology). The fluid tier models only fabric serialization and
// AIMD dynamics — no host pipeline, no slow start, no per-packet
// timing — so the packet runs use DDIO (a non-DDIO receiver is
// host-limited near 65 Gbps, a regime the fluid tier deliberately does
// not model), per-bottleneck goodput is compared as a fraction of the
// shared bottleneck's line rate, and the two tiers must land within
// this absolute utilization distance of each other.
const fluidValidationTolUtil = 0.15

// fluidGoodputGbps runs a pure-fluid background population (no packet
// flows started) and returns per-bottleneck goodput in Gbps: warmup,
// then delivered-bytes delta over the measure window, divided across
// the identical destination bottlenecks.
func fluidGoodputGbps(t *testing.T, opts Config, bottlenecks int) float64 {
	t.Helper()
	tb := New(opts)
	defer tb.Close()
	tb.RunUntil(opts.Warmup)
	start := tb.FluidNet.DeliveredBytes()
	tb.RunFor(opts.Measure)
	delta := tb.FluidNet.DeliveredBytes() - start
	return delta * 8 / opts.Measure.Seconds() / 1e9 / float64(bottlenecks)
}

// packetGoodputGbps runs the matching packet-level population and
// returns NetApp-T goodput per bottleneck.
func packetGoodputGbps(t *testing.T, opts Config, bottlenecks int) float64 {
	t.Helper()
	tb := New(opts)
	defer tb.Close()
	tb.StartNetAppT()
	m := tb.RunWindow()
	return m.ThroughputGbps / float64(bottlenecks)
}

// TestFluidVsPacketValidation compares the fluid tier's converged
// per-bottleneck utilization against a pure packet run with the same
// flow fan-in, on the star and the dumbbell — the checked-in tolerance
// bands the tentpole's acceptance criterion names.
func TestFluidVsPacketValidation(t *testing.T) {
	link := sim.Gbps(100)
	cases := []struct {
		name        string
		packet      Config
		fluid       Config
		pktBN, flBN int // shared destination bottlenecks per tier
	}{
		{
			// Star: 4 flows fanning into one receiver down-link vs 8
			// fluid flows fanning 4-to-1 onto two virtual down-links.
			name: "star",
			packet: Config{
				DDIO: true, Senders: 4, Flows: 4, MinRTO: sim.Millisecond,
				Warmup: 4 * sim.Millisecond, Measure: 8 * sim.Millisecond,
			},
			fluid: Config{
				Senders: 1, Flows: 1,
				FluidBackground: &FluidBackground{Hosts: 2, Flows: 8},
				Warmup:          4 * sim.Millisecond, Measure: 8 * sim.Millisecond,
			},
			pktBN: 1, flBN: 2,
		},
		{
			// Dumbbell: cross-rack fan-in through the trunk vs fluid
			// flows alternating directions across the same trunk pair.
			name: "dumbbell",
			packet: Config{
				DDIO: true, Topology: fabric.Dumbbell(), Senders: 4, Receivers: 2, Flows: 4,
				MinRTO: sim.Millisecond,
				Warmup: 4 * sim.Millisecond, Measure: 8 * sim.Millisecond,
			},
			fluid: Config{
				Topology: fabric.Dumbbell(), Senders: 1, Flows: 1,
				FluidBackground: &FluidBackground{Hosts: 2, Flows: 8},
				Warmup:          4 * sim.Millisecond, Measure: 8 * sim.Millisecond,
			},
			pktBN: 1, flBN: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkt := packetGoodputGbps(t, tc.packet, tc.pktBN)
			fl := fluidGoodputGbps(t, tc.fluid, tc.flBN)
			pu, fu := pkt/link.Gbps(), fl/link.Gbps()
			t.Logf("packet %.1f Gbps (util %.2f), fluid %.1f Gbps (util %.2f)", pkt, pu, fl, fu)
			if d := fu - pu; d < -fluidValidationTolUtil || d > fluidValidationTolUtil {
				t.Fatalf("fluid utilization %.2f vs packet %.2f: outside ±%.2f band",
					fu, pu, fluidValidationTolUtil)
			}
		})
	}
}

// fluidChaosDigest builds a loaded dumbbell with promotable fluid flows
// and a trunk-flap fault window, runs it, and returns the digest
// timeline plus transition counts. The flap faults the trunk seam
// resources, so the promotable flows crossing them must promote during
// the window and demote after it clears.
func fluidChaosDigest(t *testing.T) (*snapshot.Timeline, uint64, uint64, uint64) {
	t.Helper()
	plan, err := faults.Builtin("trunk-flap", 3*sim.Millisecond, 600*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultConfig()
	opts.Topology = fabric.Dumbbell()
	opts.Senders = 2
	opts.Receivers = 2
	opts.Flows = 4
	opts.MinRTO = sim.Millisecond
	opts.FaultTrunks = true
	opts.Faults = &plan
	opts.FluidBackground = &FluidBackground{Hosts: 2, Flows: 8, Promotable: 2}
	opts.Warmup = 2 * sim.Millisecond
	opts.Measure = 6 * sim.Millisecond
	if err := opts.Validate(); err != nil {
		t.Fatal(err)
	}

	tb := New(opts)
	defer tb.Close()
	tb.StartNetAppT()
	reg := tb.Registry()
	tl := &snapshot.Timeline{}
	tb.Every(500*sim.Microsecond, func() {
		tl.Append(snapshot.Frame{At: int64(tb.Now()), Events: tb.Processed(), Digests: reg.Digests()})
	})
	tb.RunWindow()
	return tl, tb.FluidNet.Promotions(), tb.FluidNet.Demotions(),
		snapshot.Combined(reg.Digests())
}

// TestFluidPromoteDemoteDeterminism: a trunk-flap window promotes the
// promotable flows to packet twins and demotes them after recovery, and
// two identically configured runs reproduce the digest timeline —
// including the "fluid" component — frame for frame.
func TestFluidPromoteDemoteDeterminism(t *testing.T) {
	tl1, promos, demos, d1 := fluidChaosDigest(t)
	if promos == 0 {
		t.Fatal("trunk-flap window promoted no fluid flows")
	}
	if demos == 0 {
		t.Fatal("no fluid flow demoted after the fault cleared")
	}
	tl2, _, _, d2 := fluidChaosDigest(t)
	if div, found := snapshot.FirstDivergence(tl1, tl2); found {
		t.Fatalf("fluid chaos replay diverged: %s", div)
	}
	if d1 != d2 {
		t.Fatalf("final digests differ: %#016x vs %#016x", d1, d2)
	}
	if tl1.Len() == 0 {
		t.Fatal("no digest frames recorded")
	}
}

// TestFluidShardedReplay: the fluid tier rides the sharded testbed
// (coarse ticks at coordinator barriers) and stays digest-stable over a
// run-twice replay.
func TestFluidShardedReplay(t *testing.T) {
	res, err := RunScaleOut(ScaleOutConfig{
		Senders: 8, Receivers: 2, Flows: 8,
		Shards:     2,
		FluidHosts: 8, FluidPromotable: 2,
		Warmup: sim.Millisecond, Measure: 4 * sim.Millisecond,
		VerifyReplay: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("sharded fluid replay not verified")
	}
	if res.FluidFlows != 32 {
		t.Fatalf("fluid flows %d, want 32 (4 × FluidHosts)", res.FluidFlows)
	}
	if res.FluidGoodputGbps <= 0 {
		t.Fatalf("fluid goodput %.2f Gbps, want > 0", res.FluidGoodputGbps)
	}
}

// TestFluidSnapshotInRegistry: a testbed with the fluid tier registers
// the "fluid" component and its digest changes as the model advances.
func TestFluidSnapshotInRegistry(t *testing.T) {
	opts := DefaultConfig()
	opts.FluidBackground = &FluidBackground{Hosts: 2}
	tb := New(opts)
	defer tb.Close()
	reg := tb.Registry()
	before := snapshot.Combined(reg.Digests())
	tb.RunFor(sim.Millisecond)
	if tb.FluidNet.Ticks() == 0 {
		t.Fatal("fluid network never ticked")
	}
	if after := snapshot.Combined(reg.Digests()); after == before {
		t.Fatal("fluid state advanced but the registry digest did not change")
	}
}

// TestFluidMillionFlowScale is the tentpole's scale acceptance: 10k
// virtual background hosts carrying one million fluid flows across a
// 4-shard leaf–spine fabric, 5 ms of simulated time, completing in
// seconds of wall clock (versus hours for a packet-level population of
// that size). The packet-level subset's replay stability is pinned
// separately by TestFluidShardedReplay.
func TestFluidMillionFlowScale(t *testing.T) {
	if testing.Short() {
		t.Skip("million-flow scale run in -short mode")
	}
	res, err := RunScaleOut(ScaleOutConfig{
		Senders: 8, Receivers: 2, Flows: 8,
		Shards:     4,
		FluidHosts: 10_000, FluidFlows: 1_000_000,
		Warmup: sim.Millisecond, Measure: 4 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FluidFlows != 1_000_000 {
		t.Fatalf("fluid flows %d, want 1M", res.FluidFlows)
	}
	if res.FluidGoodputGbps <= 0 {
		t.Fatal("million-flow population delivered nothing")
	}
	if res.ThroughputGbps <= 0 {
		t.Fatal("packet foreground starved")
	}
}

package testbed

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// Scale selects experiment fidelity: Quick for benchmarks/CI, Default for
// EXPERIMENTS.md numbers, Paper for the longest runs.
type Scale struct {
	Name    string
	Warmup  sim.Time
	Measure sim.Time
	// ThroughputMinRTO reduces the min RTO for throughput experiments so
	// the initial slow-start transient settles within an affordable
	// warmup (steady-state throughput is insensitive to the RTO floor;
	// latency experiments always keep the full 200 ms).
	ThroughputMinRTO sim.Time
	// LatencyWarmup precedes RPC recording; it must exceed the min RTO so
	// the background flows are past their startup transient.
	LatencyWarmup sim.Time
	// LatencyMinRTO, when non-zero, scales down the 200 ms min RTO for
	// latency runs (bench scale only: the RTO tail then appears at the
	// reduced scale; real-RTO numbers belong to the larger scales).
	LatencyMinRTO sim.Time
	RPCCount      int
	RPCSizes      []int
}

// Predefined scales.
var (
	// ScaleBench is the smallest sensible scale, used by the benchmark
	// harness so every figure regenerates in seconds.
	ScaleBench = Scale{
		Name: "bench", Warmup: 25 * sim.Millisecond, Measure: 8 * sim.Millisecond,
		ThroughputMinRTO: 4 * sim.Millisecond,
		LatencyWarmup:    50 * sim.Millisecond,
		LatencyMinRTO:    25 * sim.Millisecond,
		RPCCount:         60, RPCSizes: []int{128, 32768},
	}
	ScaleQuick = Scale{
		Name: "quick", Warmup: 40 * sim.Millisecond, Measure: 20 * sim.Millisecond,
		ThroughputMinRTO: 5 * sim.Millisecond,
		LatencyWarmup:    250 * sim.Millisecond,
		RPCCount:         200, RPCSizes: []int{128, 2048, 32768},
	}
	ScaleDefault = Scale{
		Name: "default", Warmup: 80 * sim.Millisecond, Measure: 60 * sim.Millisecond,
		ThroughputMinRTO: 10 * sim.Millisecond,
		LatencyWarmup:    300 * sim.Millisecond,
		RPCCount:         600, RPCSizes: []int{128, 512, 2048, 8192, 32768},
	}
	ScalePaper = Scale{
		Name: "paper", Warmup: 150 * sim.Millisecond, Measure: 150 * sim.Millisecond,
		ThroughputMinRTO: 10 * sim.Millisecond,
		LatencyWarmup:    450 * sim.Millisecond,
		RPCCount:         2500, RPCSizes: []int{128, 512, 2048, 8192, 32768},
	}
)

func (s Scale) throughputOpts() Options {
	o := DefaultOptions()
	o.Warmup = s.Warmup
	o.Measure = s.Measure
	o.MinRTO = s.ThroughputMinRTO
	return o
}

// ---------------------------------------------------------------------------
// Figures 2, 10, 14: throughput / drops / memory shares vs degree of host
// congestion.

// CongestionRow is one cell of the host-congestion sweeps.
type CongestionRow struct {
	Degree float64
	DDIO   bool
	HostCC bool
	M      Metrics
}

func (r CongestionRow) String() string {
	return fmt.Sprintf("degree=%gx ddio=%-5v hostcc=%-5v tput=%6.1fG drop=%8.4f%% memNet=%.2f memMApp=%.2f IS=%5.1f BS=%6.1fG marked=%.1f%%",
		r.Degree, r.DDIO, r.HostCC, r.M.ThroughputGbps, r.M.DropRatePct,
		r.M.MemUtilNet, r.M.MemUtilMApp, r.M.AvgIS, r.M.AvgBSGbps, r.M.MarkedPct)
}

// RunCongestionSweep measures NetApp-T + MApp across degrees. The runs
// are independent simulations and execute in parallel.
func RunCongestionSweep(s Scale, ddio, hostcc bool, degrees []float64) []CongestionRow {
	return sweep.Map(len(degrees), 0, func(i int) CongestionRow {
		opts := s.throughputOpts()
		opts.DDIO = ddio
		opts.Degree = degrees[i]
		opts.HostCC = hostcc
		tb := New(opts)
		tb.StartNetAppT()
		m := tb.RunWindow()
		return CongestionRow{Degree: degrees[i], DDIO: ddio, HostCC: hostcc, M: m}
	})
}

// RunFigure2 reproduces Figure 2: baseline DCTCP under 0-3x host
// congestion, DDIO off and on.
func RunFigure2(s Scale) []CongestionRow {
	degrees := []float64{0, 1, 2, 3}
	rows := RunCongestionSweep(s, false, false, degrees)
	return append(rows, RunCongestionSweep(s, true, false, degrees)...)
}

// RunFigure10 reproduces Figure 10: DCTCP vs DCTCP+hostCC, DDIO off.
func RunFigure10(s Scale) []CongestionRow {
	degrees := []float64{0, 1, 2, 3}
	rows := RunCongestionSweep(s, false, false, degrees)
	return append(rows, RunCongestionSweep(s, false, true, degrees)...)
}

// RunFigure14 reproduces Figure 14: as Figure 10 with DDIO enabled
// (hostCC then uses I_T = 50, §5.2).
func RunFigure14(s Scale) []CongestionRow {
	degrees := []float64{0, 1, 2, 3}
	rows := RunCongestionSweep(s, true, false, degrees)
	return append(rows, RunCongestionSweep(s, true, true, degrees)...)
}

// ---------------------------------------------------------------------------
// Figures 3 and 11: MTU and flow-count sweeps at 3x congestion.

// MTUFlowRow is one cell of the MTU / flow-count sweeps.
type MTUFlowRow struct {
	MTU    int
	Flows  int
	DDIO   bool
	HostCC bool
	M      Metrics
}

func (r MTUFlowRow) String() string {
	return fmt.Sprintf("mtu=%-5d flows=%-2d ddio=%-5v hostcc=%-5v tput=%6.1fG drop=%8.4f%%",
		r.MTU, r.Flows, r.DDIO, r.HostCC, r.M.ThroughputGbps, r.M.DropRatePct)
}

// RunMTUFlowSweep measures 3x host congestion across MTU sizes (at 4
// flows) and flow counts (at 4096 MTU), in parallel.
func RunMTUFlowSweep(s Scale, ddio, hostcc bool) []MTUFlowRow {
	type cell struct{ mtu, flows int }
	cells := []cell{
		{1500, 0}, {4096, 0}, {9000, 0}, // MTU sweep at default flows
		{0, 8}, {0, 16}, // flow sweep at default MTU (4 covered above)
	}
	return sweep.Map(len(cells), 0, func(i int) MTUFlowRow {
		opts := s.throughputOpts()
		if cells[i].mtu > 0 {
			opts.MTU = cells[i].mtu
		}
		if cells[i].flows > 0 {
			opts.Flows = cells[i].flows
		}
		opts.Degree = 3
		opts.DDIO = ddio
		opts.HostCC = hostcc
		tb := New(opts)
		tb.StartNetAppT()
		m := tb.RunWindow()
		return MTUFlowRow{MTU: opts.MTU, Flows: opts.Flows, DDIO: ddio, HostCC: hostcc, M: m}
	})
}

// RunFigure3 reproduces Figure 3: baseline impact worsens with MTU size
// and number of flows (DDIO off and on).
func RunFigure3(s Scale) []MTUFlowRow {
	rows := RunMTUFlowSweep(s, false, false)
	return append(rows, RunMTUFlowSweep(s, true, false)...)
}

// RunFigure11 reproduces Figure 11: hostCC holds its benefits across MTU
// sizes and flow counts.
func RunFigure11(s Scale) []MTUFlowRow {
	rows := RunMTUFlowSweep(s, false, false)
	return append(rows, RunMTUFlowSweep(s, false, true)...)
}

// ---------------------------------------------------------------------------
// Figures 4, 12, 15: RPC tail latency.

// LatencyRow is one whisker of the latency figures.
type LatencyRow struct {
	SizeBytes int
	Scenario  string // "uncongested", "congested", "congested+hostcc"
	DDIO      bool
	P50us     float64
	P90us     float64
	P99us     float64
	P999us    float64
	P9999us   float64
	MaxUs     float64
	Timeouts  int64
	Completed int
}

func (r LatencyRow) String() string {
	return fmt.Sprintf("size=%-6d %-17s p50=%8.1fus p99=%9.1fus p99.9=%10.1fus max=%10.1fus timeouts=%d n=%d",
		r.SizeBytes, r.Scenario, r.P50us, r.P99us, r.P999us, r.MaxUs, r.Timeouts, r.Completed)
}

// latencyScenario runs NetApp-L against one background configuration.
func latencyScenario(s Scale, size int, scenario string, ddio bool) LatencyRow {
	opts := DefaultOptions()
	opts.DDIO = ddio
	opts.MinRTO = s.LatencyMinRTO // 0 keeps the real 200 ms
	switch scenario {
	case "uncongested":
		// NetApp-T + NetApp-L, no MApp.
	case "congested":
		opts.Degree = 3
	case "congested+hostcc":
		opts.Degree = 3
		opts.HostCC = true
	default:
		panic("testbed: unknown latency scenario " + scenario)
	}
	tb := New(opts)
	tb.StartNetAppT()
	done := false
	l := tb.StartNetAppL(size, 0, nil)
	tb.E.RunUntil(s.LatencyWarmup)
	l.SetRecording(true)
	base := l.Completed()
	// Budget: a few ms per RPC on average plus slack for RTO tails. An
	// unlucky backoff cascade must not turn one whisker into billions of
	// simulated events; the row reports how many RPCs actually completed.
	deadline := tb.E.Now() + sim.Time(s.RPCCount)*3*sim.Millisecond + 500*sim.Millisecond
	for !done && tb.E.Now() < deadline {
		tb.E.RunFor(2 * sim.Millisecond)
		if l.Completed()-base >= s.RPCCount {
			done = true
		}
	}
	h := l.Latency
	return LatencyRow{
		SizeBytes: size,
		Scenario:  scenario,
		DDIO:      ddio,
		P50us:     h.Quantile(0.50) / 1000,
		P90us:     h.Quantile(0.90) / 1000,
		P99us:     h.Quantile(0.99) / 1000,
		P999us:    h.Quantile(0.999) / 1000,
		P9999us:   h.Quantile(0.9999) / 1000,
		MaxUs:     h.Max() / 1000,
		Timeouts:  l.Conn().Timeouts.Total(),
		Completed: int(h.Count()),
	}
}

// RunFigure4 reproduces Figure 4: baseline DCTCP RPC latency with and
// without host congestion (DDIO off). The whiskers run in parallel.
func RunFigure4(s Scale) []LatencyRow {
	scenarios := []string{"uncongested", "congested"}
	return sweep.Map2(len(s.RPCSizes), len(scenarios), 0, func(r, c int) LatencyRow {
		return latencyScenario(s, s.RPCSizes[r], scenarios[c], false)
	})
}

// RunFigure12 reproduces Figure 12: hostCC restores near-uncongested tail
// latency (DDIO off). The whiskers run in parallel.
func RunFigure12(s Scale) []LatencyRow {
	scenarios := []string{"uncongested", "congested", "congested+hostcc"}
	return sweep.Map2(len(s.RPCSizes), len(scenarios), 0, func(r, c int) LatencyRow {
		return latencyScenario(s, s.RPCSizes[r], scenarios[c], false)
	})
}

// RunFigure15 reproduces Figure 15: the DDIO-enabled latency results.
func RunFigure15(s Scale) []LatencyRow {
	scenarios := []string{"uncongested", "congested", "congested+hostcc"}
	return sweep.Map2(len(s.RPCSizes), len(scenarios), 0, func(r, c int) LatencyRow {
		return latencyScenario(s, s.RPCSizes[r], scenarios[c], true)
	})
}

// ---------------------------------------------------------------------------
// Figure 7: signal read latency CDFs.

// SignalLatencyCDF is one curve of Figure 7.
type SignalLatencyCDF struct {
	Congested bool
	ValuesUs  []float64
	Fractions []float64
	MeanUs    float64
	MaxUs     float64
}

// RunFigure7 reproduces Figure 7: MSR read latency is sub-µs and
// independent of host congestion.
func RunFigure7(s Scale) []SignalLatencyCDF {
	return sweep.Map(2, 0, func(i int) SignalLatencyCDF {
		congested := i == 1
		opts := s.throughputOpts()
		if congested {
			opts.Degree = 3
		}
		tb := New(opts)
		tb.StartNetAppT()
		tb.E.RunUntil(opts.Warmup + opts.Measure)
		vals, fracs := tb.HCC.ReadLatency.CDF()
		us := make([]float64, len(vals))
		for j, v := range vals {
			us[j] = v / 1000
		}
		return SignalLatencyCDF{
			Congested: congested,
			ValuesUs:  us,
			Fractions: fracs,
			MeanUs:    tb.HCC.ReadLatency.Mean() / 1000,
			MaxUs:     tb.HCC.ReadLatency.Max() / 1000,
		}
	})
}

// ---------------------------------------------------------------------------
// Figures 8, 18(b-d), 19: microscopic time series.

// Trace holds sampled signal series for one configuration.
type Trace struct {
	Label string
	IS    *stats.Series // IIO occupancy signal
	BS    *stats.Series // PCIe bandwidth signal (Gbps)
	Level *stats.Series // host-local response level
}

// traceRun samples hostCC's signals every µs for the window.
func traceRun(opts Options, label string, warmup, window sim.Time) Trace {
	tb := New(opts)
	tb.StartNetAppT()
	tb.E.RunUntil(warmup)
	rec := stats.NewRecorder(tb.E, sim.Microsecond)
	tr := Trace{
		Label: label,
		IS:    rec.Track("iio_occupancy", tb.HCC.IS),
		BS:    rec.Track("pcie_bw_gbps", func() float64 { return tb.HCC.BS().Gbps() }),
		Level: rec.Track("response_level", func() float64 { return float64(tb.Receiver.MBA.Level()) }),
	}
	tb.E.RunFor(window)
	rec.Stop()
	return tr
}

// RunFigure8 reproduces Figure 8: I_S and B_S over 1 ms without and with
// 3x host congestion (baseline DCTCP).
func RunFigure8(s Scale) []Trace {
	o1 := s.throughputOpts()
	o2 := s.throughputOpts()
	o2.Degree = 3
	return []Trace{
		traceRun(o1, "no-host-congestion", o1.Warmup, sim.Millisecond),
		traceRun(o2, "3x-host-congestion", o2.Warmup, sim.Millisecond),
	}
}

// AblationRow is one bar of Figure 18(a).
type AblationRow struct {
	Mode  core.Mode
	M     Metrics
	Trace Trace
}

func (r AblationRow) String() string {
	return fmt.Sprintf("mode=%-10s tput=%6.1fG drop=%8.4f%% IS=%5.1f BS=%6.1fG",
		r.Mode, r.M.ThroughputGbps, r.M.DropRatePct, r.M.AvgIS, r.M.AvgBSGbps)
}

// RunFigure18 reproduces Figure 18: each of hostCC's responses (ECN echo,
// host-local response) is necessary; together they give high throughput
// and low drops. Each mode also yields a 1 ms trace (Figs 18b-d).
func RunFigure18(s Scale) []AblationRow {
	var rows []AblationRow
	for _, mode := range []core.Mode{core.ModeEchoOnly, core.ModeLocalOnly, core.ModeFull} {
		opts := s.throughputOpts()
		opts.Degree = 3
		opts.HostCC = true
		opts.Mode = mode
		// The partial modes take longer to exit the startup transient
		// (without the echo, early recovery rounds suffer repeated RTO
		// backoff), so the ablation warms up longer.
		opts.Warmup = s.Warmup + 100*sim.Millisecond
		tb := New(opts)
		tb.StartNetAppT()
		m := tb.RunWindow()
		// Record the 1 ms trace from the same steady-state run.
		rec := stats.NewRecorder(tb.E, sim.Microsecond)
		tr := Trace{
			Label: mode.String(),
			IS:    rec.Track("iio_occupancy", tb.HCC.IS),
			BS:    rec.Track("pcie_bw_gbps", func() float64 { return tb.HCC.BS().Gbps() }),
			Level: rec.Track("response_level", func() float64 { return float64(tb.Receiver.MBA.Level()) }),
		}
		tb.E.RunFor(sim.Millisecond)
		rec.Stop()
		rows = append(rows, AblationRow{Mode: mode, M: m, Trace: tr})
	}
	return rows
}

// RunFigure19 reproduces Figure 19: steady-state hostCC over 250 µs —
// PCIe bandwidth hugs B_T while the response level oscillates (3<->4 on
// the paper's hardware) and I_S stays below I_T.
func RunFigure19(s Scale) Trace {
	opts := s.throughputOpts()
	opts.Degree = 3
	opts.HostCC = true
	return traceRun(opts, "steady-state", opts.Warmup+5*sim.Millisecond, 250*sim.Microsecond)
}

// ---------------------------------------------------------------------------
// Figure 9: MBA efficacy with hard-coded response levels.

// MBARow is one level of Figure 9.
type MBARow struct {
	Level        int
	DDIO         bool
	NetGbps      float64
	MAppTputGbps float64
	MemUtilNet   float64
	MemUtilMApp  float64
}

func (r MBARow) String() string {
	return fmt.Sprintf("level=%d ddio=%-5v net=%6.1fG mappTput=%6.1fG memNet=%.2f memMApp=%.2f",
		r.Level, r.DDIO, r.NetGbps, r.MAppTputGbps, r.MemUtilNet, r.MemUtilMApp)
}

// RunFigure9 reproduces Figure 9: NetApp-T and MApp throughput at each
// hard-coded host-local response level, 3x congestion, in parallel.
func RunFigure9(s Scale) []MBARow {
	return sweep.Map2(2, 5, 0, func(d, level int) MBARow {
		ddio := d == 1
		opts := s.throughputOpts()
		opts.DDIO = ddio
		opts.Degree = 3
		opts.FixedLevel = level
		tb := New(opts)
		tb.StartNetAppT()
		m := tb.RunWindow()
		return MBARow{
			Level:        level,
			DDIO:         ddio,
			NetGbps:      m.ThroughputGbps,
			MAppTputGbps: m.MAppTputGbps,
			MemUtilNet:   m.MemUtilNet,
			MemUtilMApp:  m.MemUtilMApp,
		}
	})
}

// ---------------------------------------------------------------------------
// Figure 13: incast (network congestion), with and without host congestion.

// IncastRow is one cell of Figure 13.
type IncastRow struct {
	FlowsTotal int
	Degree     float64
	HostCC     bool
	M          Metrics
}

func (r IncastRow) String() string {
	return fmt.Sprintf("incast=%-2d degree=%gx hostcc=%-5v tput=%6.1fG nicDrop=%8.4f%% swDrop=%8.4f%%",
		r.FlowsTotal, r.Degree, r.HostCC, r.M.ThroughputGbps, r.M.DropRatePct, r.M.SwitchDropPct)
}

// RunFigure13 reproduces Figure 13: two senders incast into one receiver;
// the degree of incast is the number of concurrent flows (4 -> 1x ...
// 10 -> 2.5x). Panel (a): no host congestion; panel (b): 3x.
func RunFigure13(s Scale) []IncastRow {
	type cell struct {
		degree float64
		hostcc bool
		flows  int
	}
	var cells []cell
	for _, degree := range []float64{0, 3} {
		for _, hostcc := range []bool{false, true} {
			for _, flows := range []int{4, 6, 8, 10} {
				cells = append(cells, cell{degree, hostcc, flows})
			}
		}
	}
	return sweep.Map(len(cells), 0, func(i int) IncastRow {
		c := cells[i]
		opts := s.throughputOpts()
		opts.Senders = 2
		opts.Flows = c.flows
		opts.Degree = c.degree
		opts.HostCC = c.hostcc
		tb := New(opts)
		tb.StartNetAppT()
		m := tb.RunWindow()
		return IncastRow{FlowsTotal: c.flows, Degree: c.degree, HostCC: c.hostcc, M: m}
	})
}

// ---------------------------------------------------------------------------
// Figures 16 and 17: sensitivity to hostCC's two parameters.

// SensitivityRow is one point of the B_T / I_T sweeps.
type SensitivityRow struct {
	BTGbps float64
	IT     float64
	M      Metrics
}

func (r SensitivityRow) String() string {
	return fmt.Sprintf("BT=%3.0fG IT=%3.0f tput=%6.1fG drop=%8.4f%% memNet=%.2f memMApp=%.2f",
		r.BTGbps, r.IT, r.M.ThroughputGbps, r.M.DropRatePct, r.M.MemUtilNet, r.M.MemUtilMApp)
}

// RunFigure16 reproduces Figure 16: hostCC across target bandwidths B_T.
func RunFigure16(s Scale) []SensitivityRow {
	return sweep.Map(10, 0, func(i int) SensitivityRow {
		bt := float64(i+1) * 10
		opts := s.throughputOpts()
		opts.Degree = 3
		opts.HostCC = true
		opts.BT = sim.Gbps(bt)
		tb := New(opts)
		tb.StartNetAppT()
		m := tb.RunWindow()
		return SensitivityRow{BTGbps: bt, IT: 70, M: m}
	})
}

// RunFigure17 reproduces Figure 17: hostCC across occupancy thresholds I_T.
func RunFigure17(s Scale) []SensitivityRow {
	its := []float64{70, 75, 80, 85, 90}
	return sweep.Map(len(its), 0, func(i int) SensitivityRow {
		opts := s.throughputOpts()
		opts.Degree = 3
		opts.HostCC = true
		opts.IT = its[i]
		tb := New(opts)
		tb.StartNetAppT()
		m := tb.RunWindow()
		return SensitivityRow{BTGbps: 80, IT: its[i], M: m}
	})
}

// RunNetAppTOnly is a convenience for examples: one throughput run.
func RunNetAppTOnly(opts Options) Metrics {
	tb := New(opts)
	tb.StartNetAppT()
	return tb.RunWindow()
}

var _ = apps.NetAppTPort // keep the apps dependency explicit

package testbed

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// LosslessStudyConfig parameterizes the lossless-fabric study: a PFC +
// DCQCN leaf–spine fabric under congestion-spreading load (MApp pressure
// at every receiver squeezes the NIC buffers, and on a lossless fabric
// the NICs' pause backpressure climbs the access links into the leaves,
// pausing innocent cross-rack flows). The study runs the identical load
// twice — hostCC off, then hostCC on — and reports per-arm pause-storm
// metrics and the victim NetApp-L flow's tail latency. The paper's
// claim, transplanted to RoCE-style fabrics: throttling the MApp at the
// host keeps the NIC buffer from filling, so the congestion spreading
// never starts.
type LosslessStudyConfig struct {
	// Leaves / Spines size the leaf–spine fabric (0 = 2 each).
	Leaves, Spines int
	// Senders / Receivers / Flows shape the load (0 = 8 senders, 2
	// receivers, one flow per sender).
	Senders   int
	Receivers int
	Flows     int

	Seed int64
	// Degree of MApp host congestion at every receiver (0 = 3x — the
	// squeeze that fills the lossless NIC buffer).
	Degree float64

	// RPCSize / RPCCount shape the victim NetApp-L flow (0 = 16 KiB,
	// 200 RPCs).
	RPCSize  int
	RPCCount int

	// Warmup / Measure bound the run (0 = 2 ms / 8 ms).
	Warmup  sim.Time
	Measure sim.Time

	// PauseWatchdog arms the PFC watchdog in both arms (0 = off).
	PauseWatchdog sim.Time
}

func (c LosslessStudyConfig) withDefaults() LosslessStudyConfig {
	if c.Leaves == 0 {
		c.Leaves = 2
	}
	if c.Spines == 0 {
		c.Spines = 2
	}
	if c.Senders == 0 {
		c.Senders = 8
	}
	if c.Receivers == 0 {
		c.Receivers = 2
	}
	if c.Flows == 0 {
		c.Flows = c.Senders
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Degree == 0 {
		c.Degree = 3
	}
	if c.RPCSize == 0 {
		c.RPCSize = 16 << 10
	}
	if c.RPCCount == 0 {
		c.RPCCount = 200
	}
	if c.Warmup == 0 {
		c.Warmup = 2 * sim.Millisecond
	}
	if c.Measure == 0 {
		c.Measure = 8 * sim.Millisecond
	}
	return c
}

// LosslessArm is one arm (hostCC off or on) of the lossless study.
type LosslessArm struct {
	HostCC bool

	// Aggregate NetApp-T goodput over the measurement window.
	ThroughputGbps float64

	// Pause-storm metrics, summed across every switch in the fabric:
	// pause frames emitted, output-port pause assertions (the storm
	// frequency), watchdog force-releases, and the total time the trunk
	// ports spent pause-gated (spreading that escaped the access links).
	PauseFrames      int64
	PauseAsserts     int64
	WatchdogReleases int64
	TrunkPausedUs    float64

	// Receiver-NIC lossless metrics: pauses asserted up the access link
	// (congestion starting to spread), headroom-exhaustion drops (the
	// lossless guarantee failing), and CNPs generated (DCQCN feedback).
	NICPauseAsserts  int64
	NICHeadroomDrops int64
	CNPs             int64

	// Victim NetApp-L tail latency (µs) over RPCCount recorded RPCs.
	VictimP50us     float64
	VictimP99us     float64
	VictimP999us    float64
	VictimCompleted int
}

// String renders one arm as a table row.
func (a LosslessArm) String() string {
	mode := "hostcc-off"
	if a.HostCC {
		mode = "hostcc-on"
	}
	return fmt.Sprintf(
		"%-10s %7.1f Gbps  pause: asserts=%-5d frames=%-5d wdog=%-3d trunk-paused=%8.1fus  nic: pauses=%-4d drops=%-3d cnps=%-5d  victim p50=%7.1fus p99=%8.1fus p99.9=%8.1fus n=%d",
		mode, a.ThroughputGbps,
		a.PauseAsserts, a.PauseFrames, a.WatchdogReleases, a.TrunkPausedUs,
		a.NICPauseAsserts, a.NICHeadroomDrops, a.CNPs,
		a.VictimP50us, a.VictimP99us, a.VictimP999us, a.VictimCompleted)
}

// LosslessStudyResult pairs the two arms.
type LosslessStudyResult struct {
	Off LosslessArm
	On  LosslessArm
}

// String renders the comparison, one arm per line.
func (r LosslessStudyResult) String() string {
	return r.Off.String() + "\n" + r.On.String()
}

// RunLosslessStudy executes both arms of the lossless study. Identical
// config, identical load; only Config.HostCC differs between arms.
func RunLosslessStudy(cfg LosslessStudyConfig) (LosslessStudyResult, error) {
	cfg = cfg.withDefaults()
	off, err := runLosslessArm(cfg, false)
	if err != nil {
		return LosslessStudyResult{}, err
	}
	on, err := runLosslessArm(cfg, true)
	if err != nil {
		return LosslessStudyResult{}, err
	}
	return LosslessStudyResult{Off: off, On: on}, nil
}

// runLosslessArm is one execution: lossless leaf–spine fabric, NetApp-T
// background load across the racks, MApp squeeze at every receiver, and
// one recorded NetApp-L victim flow.
func runLosslessArm(cfg LosslessStudyConfig, hostCC bool) (LosslessArm, error) {
	opts := DefaultOptions()
	opts.Seed = cfg.Seed
	opts.Lossless = true
	opts.PauseWatchdog = cfg.PauseWatchdog
	opts.Topology = fabric.Topology{Kind: fabric.TopoLeafSpine, Leaves: cfg.Leaves, Spines: cfg.Spines}
	opts.Senders = cfg.Senders
	opts.Receivers = cfg.Receivers
	opts.Flows = cfg.Flows
	opts.Degree = cfg.Degree
	opts.HostCC = hostCC
	opts.Warmup = cfg.Warmup
	opts.Measure = cfg.Measure
	// Pause storms park flows, not RTO backoff; keep recovery prompt.
	opts.MinRTO = sim.Millisecond
	if err := opts.Validate(); err != nil {
		return LosslessArm{}, err
	}

	tb := New(opts)
	tb.StartNetAppT()
	l := tb.StartNetAppL(cfg.RPCSize, 0, nil)

	tb.E.RunUntil(cfg.Warmup)
	l.SetRecording(true)
	tb.MarkWindow()
	deadline := tb.E.Now() + cfg.Measure
	for tb.E.Now() < deadline && int(l.Latency.Count()) < cfg.RPCCount {
		tb.E.RunFor(sim.Millisecond)
	}
	m := tb.Collect()

	arm := LosslessArm{HostCC: hostCC, ThroughputGbps: m.ThroughputGbps}
	for _, sw := range tb.Fabric.Switches {
		arm.PauseFrames += sw.PauseFrames.Total()
		arm.PauseAsserts += sw.PauseAsserts.Total()
		arm.WatchdogReleases += sw.WatchdogReleases.Total()
	}
	for _, tp := range tb.Fabric.TrunkPorts {
		arm.TrunkPausedUs += float64(tp.Sw.PortPausedFor(tp.Port)) / float64(sim.Microsecond)
	}
	for _, h := range tb.Receivers {
		arm.NICPauseAsserts += h.NIC.PauseAsserts.Total()
		arm.NICHeadroomDrops += h.NIC.HeadroomDrops.Total()
		arm.CNPs += h.NIC.CNPsSent.Total()
	}
	h := l.Latency
	arm.VictimP50us = h.Quantile(0.50) / 1000
	arm.VictimP99us = h.Quantile(0.99) / 1000
	arm.VictimP999us = h.Quantile(0.999) / 1000
	arm.VictimCompleted = int(h.Count())
	return arm, nil
}

// Sharded testbed construction: Config.Shards > 1 partitions the
// simulation across parallel engine shards synchronized by conservative
// trunk-delay lookahead (sim.ShardGroup). The shard map follows the
// existing rack striping: switch i (leaves first, then spines) runs on
// shard i%N, and every host runs on its rack's shard, so access links
// never cross shards and only inter-switch trunks become boundaries.
package testbed

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/host"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// swShardFor maps switch index to owning shard: round-robin, leaves
// first — leaves spread across shards exactly like rackFor spreads
// hosts across racks, and spines fill in behind them.
func swShardFor(n int) func(int) int {
	return func(i int) int { return i % n }
}

// shardHeapHint is eventHeapHint scoped to one shard: the same
// population model, counting only the hosts living on the shard, the
// flows with an endpoint there, and the stale-timer accumulation of its
// receivers. A flow's events split between its two endpoint shards but
// are counted fully on both — a bounded over-count that keeps the
// no-regrowth guarantee without modeling where each in-flight packet is.
func shardHeapHint(opts Config, tcfg transport.Config, shard int, swShard func(int) int) int {
	hostShard := func(i int) int { return swShard(rackFor(opts.Topology, i, opts.Receivers)) }
	hosts, receivers := 0, 0
	for i := 0; i < opts.Receivers+opts.Senders; i++ {
		if hostShard(i) != shard {
			continue
		}
		hosts++
		if i < opts.Receivers {
			receivers++
		}
	}
	flows := 0
	for f := 0; f < opts.Flows; f++ {
		rx := f % opts.Receivers
		tx := opts.Receivers + f%opts.Senders
		if hostShard(rx) == shard || hostShard(tx) == shard {
			flows++
		}
	}

	winPkts := tcfg.RcvWnd/tcfg.MSS + 1
	perFlow := 2*winPkts + 16

	rate := opts.LinkRate
	if rate == 0 {
		rate = sim.Gbps(100)
	}
	staleWindow := min(tcfg.MinRTO, opts.Warmup+opts.Measure)
	stalePkts := float64(rate) * staleWindow.Seconds() / float64(opts.MTU)
	stale := receivers * int(stalePkts)

	return 2048 + 64*hosts + flows*perFlow + stale
}

// newSharded builds the parallel testbed. The construction order matches
// New step for step (hosts, fabric, hostCC, MApp, faults, invariants,
// instruments) — only the engine each component lands on differs.
func newSharded(opts Options) *Testbed {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	n := opts.Shards
	swShard := swShardFor(n)
	hostShard := func(i int) int { return swShard(rackFor(opts.Topology, i, opts.Receivers)) }
	g := sim.NewShardGroup(opts.Seed, n)
	tb := &Testbed{E: g.Shard(0), Group: g, Opts: opts, Reg: telemetry.NewRegistry()}

	// One packet pool per shard: a pool is only ever touched by its own
	// shard (Put adopts packets allocated elsewhere).
	pools := make([]*packet.Pool, n)
	for i := range pools {
		pools[i] = packet.NewPool(1024)
	}

	tcfg := transport.DefaultConfig(opts.MTU)
	if opts.CC != nil {
		tcfg.CC = opts.CC
	} else if opts.Lossless {
		tcfg.CC = transport.NewDCQCN()
	}
	if opts.MinRTO > 0 {
		tcfg.MinRTO = opts.MinRTO
		tcfg.InitialRTO = opts.MinRTO
	}
	// Per-shard heaps pre-size from per-shard shape.
	for i := 0; i < n; i++ {
		g.Shard(i).Reserve(shardHeapHint(opts, tcfg, i, swShard))
	}

	mkHost := func(idx int, id packet.HostID) *host.Host {
		sh := hostShard(idx)
		hcfg := host.DefaultConfig(id, opts.MTU, opts.DDIO)
		hcfg.Transport = tcfg
		hcfg.Pool = pools[sh]
		if opts.LinkRate > 0 {
			hcfg.NIC.LineRate = opts.LinkRate
		}
		if opts.MBAWriteLatency > 0 {
			hcfg.MBA.WriteLatency = opts.MBAWriteLatency
		}
		if opts.Lossless {
			hcfg.NIC.PFC = nic.DefaultPFCConfig(hcfg.NIC.RxBufferBytes)
			hcfg.NIC.PFC.ResumeTimeout = opts.PauseWatchdog
		}
		if id == receiverID && opts.iommu != nil {
			hcfg.IOMMU = *opts.iommu
		}
		if id == receiverID && opts.mba != nil {
			hcfg.MBA = *opts.mba
		}
		return host.New(g.Shard(sh), hcfg)
	}

	for i := 0; i < opts.Receivers; i++ {
		tb.Receivers = append(tb.Receivers, mkHost(i, receiverID+packet.HostID(i)))
	}
	tb.Receiver = tb.Receivers[0]
	senderBase := receiverID + packet.HostID(opts.Receivers)
	for i := 0; i < opts.Senders; i++ {
		tb.Senders = append(tb.Senders, mkHost(opts.Receivers+i, senderBase+packet.HostID(i)))
	}

	lcfg := fabric.DefaultLinkConfig()
	lcfg.LossProb = opts.WireLossProb
	if opts.LinkRate > 0 {
		lcfg.Rate = opts.LinkRate
	}
	hosts := make([]*host.Host, 0, len(tb.Receivers)+len(tb.Senders))
	hosts = append(hosts, tb.Receivers...)
	hosts = append(hosts, tb.Senders...)
	ports := make([]fabric.HostPort, len(hosts))
	for i, h := range hosts {
		ports[i] = fabric.HostPort{
			ID:      h.ID(),
			Rack:    rackFor(opts.Topology, i, opts.Receivers),
			Deliver: h.ReceiveFromWire,
		}
		if opts.Lossless {
			ports[i].Pause = h.NIC.SetTxPaused
		}
	}
	topo := opts.Topology
	if opts.Lossless {
		swcfg := topo.Switch
		if swcfg == (fabric.SwitchConfig{}) {
			swcfg = fabric.DefaultSwitchConfig()
		}
		swcfg.PFC = fabric.DefaultPFCConfig(swcfg.PortBufferBytes)
		swcfg.PFC.ResumeTimeout = opts.PauseWatchdog
		topo.Switch = swcfg
	}
	fb, err := fabric.BuildSharded(g, topo, lcfg, ports, pools, swShard)
	if err != nil {
		panic(err) // Config.Validate rejects invalid shard/topology pairs up front
	}
	tb.Fabric = fb
	tb.Sw = fb.Switches[0]
	tb.Links = fb.Access
	tb.Trunks = fb.Trunks
	for i, h := range hosts {
		h.SetOutput(fb.HostSend(i))
	}
	if opts.Lossless {
		for i, h := range hosts {
			h.NIC.SetPauseUpstream(fb.HostPauser(i))
		}
	}

	ccfg := core.DefaultConfig(opts.DDIO)
	if opts.IT > 0 {
		ccfg.IT = opts.IT
	}
	if opts.BT > 0 {
		ccfg.BT = opts.BT
	}
	if opts.SignalWeightIS > 0 {
		ccfg.WeightIS = opts.SignalWeightIS
	}
	if opts.SampleInterval > 0 {
		ccfg.SampleInterval = opts.SampleInterval
	}
	ccfg.Mode = core.ModeOff
	if opts.HostCC {
		ccfg.Mode = core.ModeFull
		if opts.Mode != core.ModeFull {
			ccfg.Mode = opts.Mode
		}
	}
	ccfg.Watchdog = opts.Watchdog
	for i, r := range tb.Receivers {
		hcc := core.New(g.Shard(hostShard(i)), r.MSR, r.MBA, ccfg)
		r.AddReceiveHook(hcc.ReceiveHook())
		hcc.Start()
		tb.HCCs = append(tb.HCCs, hcc)
	}
	tb.HCC = tb.HCCs[0]

	if opts.Degree > 0 {
		for _, r := range tb.Receivers {
			r.StartMApp(opts.Degree)
		}
	}
	if opts.FixedLevel >= 0 {
		for _, r := range tb.Receivers {
			r.MBA.RequestLevel(opts.FixedLevel)
		}
	}

	// Fault injection: every shard arms the same plan against the seams
	// it owns (an injector ignores absent seams), so windows open and
	// close at identical virtual times everywhere with zero cross-shard
	// traffic, and event-level rolls draw from the owning shard's RNG.
	if opts.Faults != nil {
		rxShard := hostShard(0)
		for s := 0; s < n; s++ {
			var seams faults.Seams
			if s == rxShard {
				seams.MSR = tb.Receiver.MSR
				seams.MBA = tb.Receiver.MBA
				seams.NIC = tb.Receiver.NIC
				seams.PCIe = tb.Receiver.Link
				seams.MApp = tb.Receiver.MApp()
			}
			if opts.FaultTrunks {
				for i, l := range tb.Trunks {
					if fb.TrunkShards[i] == s {
						seams.Links = append(seams.Links, l)
					}
				}
			} else {
				for i, l := range tb.Links {
					if fb.AccessShards[i] == s {
						seams.Links = append(seams.Links, l)
					}
				}
			}
			if opts.Lossless {
				for i, sw := range fb.Switches {
					if fb.SwitchShards[i] == s {
						seams.Switches = append(seams.Switches, sw)
					}
				}
				for _, ti := range opts.StormTrunks {
					tp := fb.TrunkPorts[ti]
					if fb.SwitchShards[tp.From] == s {
						seams.Pause = append(seams.Pause, func(on bool) {
							tp.Sw.SetPortForcedPause(tp.Port, on)
						})
					}
				}
			}
			in := faults.MustNewInjector(g.Shard(s), *opts.Faults, seams)
			in.Arm()
			tb.Injectors = append(tb.Injectors, in)
		}
		tb.Injector = tb.Injectors[0]
	}

	if opts.Invariants {
		nic, link, mba := tb.Receiver.NIC, tb.Receiver.Link, tb.Receiver.MBA
		tb.Inv = core.NewInvariantChecker(g.Shard(hostShard(0)), ccfg.SampleInterval, core.InvariantProbes{
			NICArrivals:   func() int64 { return nic.Arrivals.Total() },
			NICDrops:      func() int64 { return nic.Drops.Total() },
			NICFaultDrops: func() int64 { return nic.FaultDrops.Total() },
			NICQueued:     nic.RxQueuedPackets,
			NICDMAStarted: func() int64 { return nic.DMAStarted.Total() },
			PCIeCredits: func() (int, int, int) {
				return link.Credits(), link.SequesteredCredits(), link.Config().CreditLines
			},
			MBALevel:  mba.Level,
			MBALevels: mba.NumLevels,
		})
		tb.Inv.Start()
	}

	for i, r := range tb.Receivers {
		r.RegisterInstruments(tb.Reg, receiverName(i))
		tb.HCCs[i].RegisterInstruments(tb.Reg, receiverName(i))
	}
	for i, s := range tb.Senders {
		s.RegisterInstruments(tb.Reg, fmt.Sprintf("sender%d", i+1))
	}
	for i, sw := range fb.Switches {
		sw.RegisterInstruments(tb.Reg, fb.SwitchName(i))
	}
	for i, l := range tb.Links {
		l.RegisterInstruments(tb.Reg, fmt.Sprintf("fabric/link%d", i))
	}
	for i, l := range tb.Trunks {
		l.RegisterInstruments(tb.Reg, fmt.Sprintf("fabric/trunk%d", i))
	}
	if opts.Lossless {
		for _, tp := range tb.Fabric.TrunkPorts {
			tp := tp
			tb.Reg.Gauge("fabric/pfc/"+tp.Name+"/paused-ns", "ns",
				"cumulative PFC pause time of this trunk transmit port",
				func() float64 { return float64(tp.Sw.PortPausedFor(tp.Port)) })
			tb.Reg.Gauge("fabric/pfc/"+tp.Name+"/queue-bytes", "bytes",
				"instantaneous queue depth behind this trunk port",
				func() float64 { return float64(tp.Sw.PortQueueBytes(tp.Port)) })
		}
	}

	// The fluid tier binds to the group: ticks run at coordinator
	// barriers with every shard quiesced, so the integrator may touch any
	// shard's seams and the twin connections safely.
	if opts.FluidBackground != nil {
		tb.buildFluid()
	}

	return tb
}

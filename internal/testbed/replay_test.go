package testbed

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// TestGoldenDigestDeterminism: two same-seed chaos runs must end in
// bit-identical component state — the combined digest and every
// per-component digest match. This is the strongest determinism check the
// repo has: it covers engine, RNG, every device model, transport, hostCC
// and the fault injector, not just the reported metrics.
func TestGoldenDigestDeterminism(t *testing.T) {
	scenarios := ChaosScenarios()
	if testing.Short() {
		scenarios = scenarios[:2]
	}
	for _, sc := range scenarios {
		t.Run(sc, func(t *testing.T) {
			run := func() ChaosResult {
				r, err := RunChaos(ChaosConfig{Scenario: sc, Seed: 13})
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			a, b := run(), run()
			if a.Digest == 0 {
				t.Fatal("final digest was never computed")
			}
			if a.Digest != b.Digest {
				if !reflect.DeepEqual(a.ComponentDigests, b.ComponentDigests) {
					for i := range a.ComponentDigests {
						if a.ComponentDigests[i] != b.ComponentDigests[i] {
							t.Fatalf("component %q digest diverged between same-seed runs: %#x vs %#x",
								a.ComponentDigests[i].Component, a.ComponentDigests[i].Hash, b.ComponentDigests[i].Hash)
						}
					}
				}
				t.Fatalf("combined digest diverged between same-seed runs: %#x vs %#x", a.Digest, b.Digest)
			}
		})
	}
}

// TestReplayFidelity: a run that wrote a checkpoint must replay to the
// same digest timeline and the same final state. Covers 3 seeds × 2 fault
// scenarios per the acceptance bar (1 × 1 in -short mode).
func TestReplayFidelity(t *testing.T) {
	seeds := []int64{7, 19, 101}
	// trunk-flap exercises checkpoint/resume of a multi-switch (leaf–
	// spine) testbed: the topology round-trips through checkpoint meta.
	scenarios := []string{"credit-stall", "link-flap", "trunk-flap"}
	if testing.Short() {
		seeds, scenarios = seeds[:1], scenarios[:1]
	}
	for _, sc := range scenarios {
		for _, seed := range seeds {
			t.Run(sc+"/"+string(rune('0'+seed%10)), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "run.ckpt")
				cfg := ChaosConfig{
					Scenario:        sc,
					Seed:            seed,
					DigestEvery:     500 * sim.Microsecond,
					CheckpointEvery: 100_000,
					CheckpointPath:  path,
				}
				orig, err := RunChaos(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if orig.Checkpoints == 0 {
					t.Fatal("no checkpoint written — lower CheckpointEvery")
				}
				if orig.Frames == 0 {
					t.Fatal("no digest frames recorded")
				}
				rep, err := ResumeChaos(path)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Verified {
					t.Fatalf("replay diverged from checkpoint: %v", rep.Divergence)
				}
				if rep.FramesChecked == 0 {
					t.Fatal("replay verified zero frames")
				}
				if rep.Result.Digest != orig.Digest {
					t.Fatalf("replayed final digest %#x != original %#x", rep.Result.Digest, orig.Digest)
				}
				if rep.Result.FinalGbps != orig.FinalGbps || rep.Result.Recovered != orig.Recovered {
					t.Fatalf("replayed metrics differ: %+v vs %+v", rep.Result, orig)
				}
			})
		}
	}
}

// TestSentinelCreditStallDeadlock: a PCIe credit-stall that never clears
// must be caught by the sentinel within bounded virtual time, classified
// as a deadlock with the credit loop named, and leave a loadable
// diagnostic snapshot behind.
func TestSentinelCreditStallDeadlock(t *testing.T) {
	const faultAt = 6 * sim.Millisecond
	const window = 500 * sim.Microsecond
	p := faults.Plan{Name: "wedge", Injections: []faults.Injection{
		// 50 ms stall: never clears within the run, so without the
		// sentinel the fault phase would grind through 50 ms of wedged
		// virtual time and "recover" only because the window ends.
		faults.OneShot(faults.PCIeStall, faultAt, 50*sim.Millisecond),
	}}
	snapPath := filepath.Join(t.TempDir(), "stall.ckpt")
	r, err := RunChaos(ChaosConfig{
		Plan:            &p,
		Seed:            7,
		FaultAt:         faultAt,
		FaultFor:        50 * sim.Millisecond,
		SentinelWindow:  window,
		SentinelPolicy:  sim.SentinelAbort,
		SnapshotOnStall: snapPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stall == nil {
		t.Fatal("sentinel never detected the wedged datapath")
	}
	// Bounded detection: the stall forms shortly after the fault opens and
	// must be declared within the window plus a few check periods.
	latest := faultAt + 3*window
	if r.Stall.DetectedAt > latest {
		t.Fatalf("stall detected at %v, want <= %v", r.Stall.DetectedAt, latest)
	}
	if r.Stall.Class != sim.StallDeadlock {
		t.Fatalf("classified %v, want deadlock\n%s", r.Stall.Class, r.Stall.Diagnostic)
	}
	want := []string{"pcie-credits", "iio-release"}
	if !reflect.DeepEqual(r.Stall.Cycle, want) {
		t.Fatalf("cycle = %v, want %v\n%s", r.Stall.Cycle, want, r.Stall.Diagnostic)
	}
	if !strings.Contains(r.Stall.Diagnostic, "WEDGED") {
		t.Fatalf("diagnostic does not render wedged nodes:\n%s", r.Stall.Diagnostic)
	}

	// The diagnostic snapshot must load and decompose into the full
	// component set for offline inspection.
	ck, err := snapshot.ReadFile(r.StallSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	order, blobs, err := snapshot.DecodeState(ck.State)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"engine", "rx/nic", "rx/pcie", "hostcc", "faults"} {
		if _, ok := blobs[name]; !ok {
			t.Fatalf("snapshot missing component %q (have %d components)", name, len(order))
		}
	}
	// A custom plan is not resumable; the error must say so rather than
	// replaying the wrong scenario.
	if _, err := ResumeChaos(r.StallSnapshot); err == nil || !strings.Contains(err.Error(), "custom") {
		t.Fatalf("resume of custom-plan snapshot: err = %v, want custom-plan rejection", err)
	}
}

// TestSentinelEscapeReclaimsCredits: under the escape policy, the same
// wedge is broken by force-reclaiming sequestered credits and the run
// keeps going (PFC-watchdog-style credit-timeout escape).
func TestSentinelEscapeReclaimsCredits(t *testing.T) {
	const faultAt = 6 * sim.Millisecond
	p := faults.Plan{Name: "wedge", Injections: []faults.Injection{
		faults.OneShot(faults.PCIeStall, faultAt, 2*sim.Millisecond),
	}}
	r, err := RunChaos(ChaosConfig{
		Plan:           &p,
		Seed:           7,
		FaultAt:        faultAt,
		FaultFor:       2 * sim.Millisecond,
		SentinelWindow: 500 * sim.Microsecond,
		SentinelPolicy: sim.SentinelEscape,
		// A 2 ms wedge costs more than the default 50-RTT budget to climb
		// back from; the point here is that the run survives and recovers
		// at all, not how fast.
		RecoveryRTTBudget: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stall == nil {
		t.Fatal("sentinel never detected the wedge")
	}
	if !r.Stall.Escaped {
		t.Fatal("escape policy did not reclaim anything")
	}
	if len(r.Violations) != 0 {
		t.Fatalf("forced reclaim broke credit accounting: %v", r.Violations)
	}
	if !r.Recovered {
		t.Fatalf("did not recover after escape: %s", r)
	}
}

// TestDivergenceDetectorPinpointsComponent: two different-seed runs must
// diverge, and FirstDivergence must name the first component (in datapath
// order) whose state digest differs — the "which counter went wrong
// first" answer the tentpole promises.
func TestDivergenceDetectorPinpointsComponent(t *testing.T) {
	run := func(seed int64) *snapshot.Timeline {
		_, tl, err := runChaos(ChaosConfig{
			Scenario:    "credit-stall",
			Seed:        seed,
			DigestEvery: 500 * sim.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}
	a, b := run(1), run(2)
	div, found := snapshot.FirstDivergence(a, b)
	if !found {
		t.Fatal("different seeds produced identical digest timelines")
	}
	if div.Component == "" || div.Component == "(frame shape)" {
		t.Fatalf("divergence did not name a component: %+v", div)
	}
	if div.AHash == div.BHash {
		t.Fatalf("divergence reports equal hashes: %+v", div)
	}
	if !strings.Contains(div.String(), "diverged at t=") {
		t.Fatalf("unexpected rendering: %s", div)
	}
	// Same seed, same recording config: no divergence.
	if d, found := snapshot.FirstDivergence(run(1), run(1)); found {
		t.Fatalf("same-seed timelines diverged: %s", d)
	}
}

// TestCheckpointResumeErrors: unreadable and meta-less files fail loudly.
func TestCheckpointResumeErrors(t *testing.T) {
	if _, err := ResumeChaos(filepath.Join(t.TempDir(), "absent.ckpt")); err == nil {
		t.Fatal("resume of missing file did not error")
	}
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeChaos(bad); err == nil {
		t.Fatal("resume of corrupt file did not error")
	}
}

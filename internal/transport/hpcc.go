package transport

import (
	"fmt"

	"repro/internal/sim"
)

// HPCCConfig parameterizes the HPCC-like controller (Li et al., SIGCOMM
// 2019). HPCC steers the sending rate directly from in-network telemetry:
// switches stamp per-hop utilization onto data packets, receivers echo
// the maximum back on ACKs, and the sender multiplicatively scales its
// rate by η/U once per RTT so the bottleneck link settles just below full
// utilization with near-empty queues. Crucially the *host* never stamps
// INT — when the bottleneck moves inside the receiving host, the fabric
// reports all-clear and only losses rein the sender in, which is exactly
// the blind spot the paper's host-CC argument targets.
type HPCCConfig struct {
	// LineRate caps the sending rate (and is the initial rate).
	LineRate sim.Rate
	// MinRate floors the sending rate.
	MinRate sim.Rate
	// Eta is the target utilization (HPCC: 0.95).
	Eta float64
	// AIRate is the per-update additive increase that keeps probing when
	// the multiplicative term saturates (HPCC: W_AI, here as a rate).
	AIRate sim.Rate
	// MaxScale bounds the per-update multiplicative factor η/U to
	// [1/MaxScale, MaxScale], so one noisy sample cannot collapse or
	// explode the rate (HPCC bounds the equivalent window update).
	MaxScale float64
	// UtilGain is the EWMA weight for new utilization samples (0,1].
	UtilGain float64
}

// DefaultHPCCConfig returns the parameter set for 100 Gbps.
func DefaultHPCCConfig() HPCCConfig {
	return HPCCConfig{
		LineRate: sim.Gbps(100),
		MinRate:  sim.Gbps(0.1),
		Eta:      0.95,
		AIRate:   sim.Gbps(1),
		MaxScale: 2,
		UtilGain: 0.5,
	}
}

// Validate reports the first invalid parameter.
func (c HPCCConfig) Validate() error {
	if c.LineRate <= 0 || c.MinRate <= 0 {
		return fmt.Errorf("transport: hpcc rates must be positive (line %v, min %v)",
			c.LineRate, c.MinRate)
	}
	if c.MinRate > c.LineRate {
		return fmt.Errorf("transport: hpcc MinRate %v must not exceed LineRate %v",
			c.MinRate, c.LineRate)
	}
	if c.Eta <= 0 || c.Eta >= 1 {
		return fmt.Errorf("transport: hpcc Eta %v outside (0,1)", c.Eta)
	}
	if c.AIRate < 0 {
		return fmt.Errorf("transport: hpcc AIRate %v must not be negative", c.AIRate)
	}
	if c.MaxScale <= 1 {
		return fmt.Errorf("transport: hpcc MaxScale %v must exceed 1", c.MaxScale)
	}
	if c.UtilGain <= 0 || c.UtilGain > 1 {
		return fmt.Errorf("transport: hpcc UtilGain %v outside (0,1]", c.UtilGain)
	}
	return nil
}

// hpcc is the sender-side HPCC-like rate machine. Pure rate pacing
// (Cwnd is effectively unbounded, like DCQCN): the INT feedback loop is
// the window.
type hpcc struct {
	cfg HPCCConfig

	rate sim.Rate
	u    float64 // EWMA of echoed max per-hop utilization
	seen bool    // at least one INT sample observed

	// Reference-window update: apply the multiplicative step once per
	// RTT (when the cumulative ACK passes the SndNxt recorded at the
	// last update), not on every ACK, to avoid compounding feedback for
	// packets sent before the previous adjustment took effect.
	nextUpdateSeq uint64
}

// NewHPCC returns an HPCC-like factory with default parameters.
func NewHPCC() CCFactory { return NewHPCCWithConfig(DefaultHPCCConfig()) }

// NewHPCCWithConfig returns an HPCC-like factory with explicit parameters.
func NewHPCCWithConfig(cfg HPCCConfig) CCFactory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return func(_ *sim.Engine, _ int) CongestionControl {
		return &hpcc{cfg: cfg, rate: cfg.LineRate}
	}
}

func (h *hpcc) Name() string { return "hpcc" }

// Cwnd is unbounded: rate pacing is the sole control.
func (h *hpcc) Cwnd() int { return 1 << 30 }

// PaceRate implements RatePacer.
func (h *hpcc) PaceRate() sim.Rate { return h.rate }

// Util returns the current utilization estimate (diagnostics and tests).
func (h *hpcc) Util() float64 { return h.u }

func (h *hpcc) clamp(r sim.Rate) sim.Rate {
	if r < h.cfg.MinRate {
		return h.cfg.MinRate
	}
	if r > h.cfg.LineRate {
		return h.cfg.LineRate
	}
	return r
}

func (h *hpcc) OnAck(ev AckEvent) {
	if ev.Bytes <= 0 {
		return
	}
	if ev.INTHops > 0 {
		if !h.seen {
			h.u = ev.INTUtil
			h.seen = true
		} else {
			h.u += h.cfg.UtilGain * (ev.INTUtil - h.u)
		}
	}
	if ev.AckSeq < h.nextUpdateSeq {
		return
	}
	h.nextUpdateSeq = ev.SndNxt

	if !h.seen {
		// No fabric telemetry yet: probe additively only.
		h.rate = h.clamp(h.rate + h.cfg.AIRate)
		return
	}
	// rate ← rate × clamp(η/U) + W_AI. A near-idle fabric (tiny U)
	// scales up by at most MaxScale per RTT; an overdriven hop scales
	// down by at most 1/MaxScale per RTT.
	scale := h.cfg.MaxScale
	if h.u > 0 {
		scale = h.cfg.Eta / h.u
	}
	if scale > h.cfg.MaxScale {
		scale = h.cfg.MaxScale
	}
	if scale < 1/h.cfg.MaxScale {
		scale = 1 / h.cfg.MaxScale
	}
	h.rate = h.clamp(sim.Rate(float64(h.rate)*scale) + h.cfg.AIRate)
}

// OnLoss halves the rate. Loss is HPCC's only signal of congestion the
// fabric cannot see — i.e. congestion inside the host, which never
// stamps INT.
func (h *hpcc) OnLoss(LossEvent) {
	h.rate = h.clamp(h.rate / 2)
}

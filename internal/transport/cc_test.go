package transport

import (
	"testing"

	"repro/internal/sim"
)

func TestRenoSlowStartToCongestionAvoidance(t *testing.T) {
	r := newReno(1000)
	r.ssthresh = 20_000
	start := r.Cwnd() // 10 MSS
	// Slow start: cwnd grows by acked bytes until ssthresh.
	r.OnAck(AckEvent{Bytes: 5000, AckSeq: 5000, SndNxt: 20000})
	if r.Cwnd() != start+5000 {
		t.Fatalf("slow start growth: %d", r.Cwnd())
	}
	r.OnAck(AckEvent{Bytes: 50_000, AckSeq: 60000, SndNxt: 80000})
	if r.Cwnd() != 20_000 {
		t.Fatalf("slow start must clamp at ssthresh: %d", r.Cwnd())
	}
	// Congestion avoidance: ~1 MSS per cwnd of acked bytes.
	before := r.Cwnd()
	r.OnAck(AckEvent{Bytes: before, AckSeq: 100_000, SndNxt: 120_000})
	if r.Cwnd() != before+1000 {
		t.Fatalf("CA growth: %d -> %d", before, r.Cwnd())
	}
	// Zero-byte ACKs are ignored.
	c := r.Cwnd()
	r.OnAck(AckEvent{Bytes: 0})
	if r.Cwnd() != c {
		t.Fatal("zero-byte ack changed cwnd")
	}
}

func TestDCTCPSingleReductionPerWindow(t *testing.T) {
	d := NewDCTCP()(nil, 1000).(*dctcp)
	d.cwnd = 100_000
	d.ssthresh = 100_000
	d.alpha = 0.5
	d.windowEnd = 0
	// First marked ACK crosses the window boundary: one reduction.
	d.OnAck(AckEvent{Bytes: 1000, Marked: true, AckSeq: 1000, SndNxt: 100_000})
	after := d.Cwnd()
	if after >= 100_000 {
		t.Fatalf("no reduction: %d", after)
	}
	// Further marked ACKs within the same window: no further reduction.
	d.OnAck(AckEvent{Bytes: 1000, Marked: true, AckSeq: 2000, SndNxt: 100_000})
	d.OnAck(AckEvent{Bytes: 1000, Marked: true, AckSeq: 3000, SndNxt: 100_000})
	if d.Cwnd() != after {
		t.Fatalf("multiple reductions in one window: %d -> %d", after, d.Cwnd())
	}
}

func TestDCTCPReductionProportionalToAlpha(t *testing.T) {
	// alpha near 0: tiny reduction. alpha near 1: halving.
	mild := NewDCTCP()(nil, 1000).(*dctcp)
	mild.cwnd, mild.ssthresh, mild.alpha = 100_000, 100_000, 0.1
	mild.OnAck(AckEvent{Bytes: 1000, Marked: true, AckSeq: 1000, SndNxt: 100_000})

	severe := NewDCTCP()(nil, 1000).(*dctcp)
	severe.cwnd, severe.ssthresh, severe.alpha = 100_000, 100_000, 1.0
	severe.OnAck(AckEvent{Bytes: 1000, Marked: true, AckSeq: 1000, SndNxt: 100_000})

	if mild.Cwnd() <= severe.Cwnd() {
		t.Fatalf("mild alpha cut more (%d) than severe (%d)", mild.Cwnd(), severe.Cwnd())
	}
	if severe.Cwnd() < 49_000 || severe.Cwnd() > 51_000 {
		t.Fatalf("alpha=1 should halve: %d", severe.Cwnd())
	}
	// alpha is EWMA-updated with the fully marked window (F=1) before the
	// reduction: 0.9375*0.1 + 0.0625 = 0.156 -> ~7.8% cut.
	if mild.Cwnd() < 91_000 {
		t.Fatalf("alpha=0.1 should cut ~8%%: %d", mild.Cwnd())
	}
}

func TestCubicTimeBasedGrowth(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewCubic()(e, 1000).(*cubic)
	c.cwnd, c.ssthresh = 80_000, 40_000
	c.OnLoss(LossFastRetransmit)
	w1 := c.Cwnd()
	// Feed identical ACK patterns at two different elapsed times; growth
	// must be larger later (cubic in time, not acks).
	seq := uint64(0)
	feed := func() int {
		before := c.Cwnd()
		for i := 0; i < 10; i++ {
			seq += 10_000
			c.OnAck(AckEvent{Bytes: 10_000, AckSeq: seq, SndNxt: seq + 10_000})
		}
		return c.Cwnd() - before
	}
	e.RunFor(10 * sim.Millisecond)
	g1 := feed()
	e.RunFor(300 * sim.Millisecond)
	g2 := feed()
	if g2 <= g1 {
		t.Fatalf("cubic growth not increasing with time: %d then %d (w after loss %d)", g1, g2, w1)
	}
}

func TestDelayCCValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive target did not panic")
		}
	}()
	NewDelayCC(0)
}

func TestDelayCCDecreaseRateLimited(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewDelayCC(100*sim.Microsecond)(e, 1000).(*delayCC)
	d.cwnd = 100_000
	// Two over-target ACKs back to back: only one decrease per RTT.
	d.OnAck(AckEvent{Bytes: 1000, RTT: 400 * sim.Microsecond})
	w := d.Cwnd()
	d.OnAck(AckEvent{Bytes: 1000, RTT: 400 * sim.Microsecond})
	if d.Cwnd() != w {
		t.Fatalf("second decrease within the same RTT: %d -> %d", w, d.Cwnd())
	}
	if w >= 100_000 {
		t.Fatal("no decrease on over-target RTT")
	}
	// Decrease magnitude is capped at 50%.
	if w < 50_000 {
		t.Fatalf("decrease exceeded cap: %d", w)
	}
}

func TestDelayCCLossResponses(t *testing.T) {
	e := sim.NewEngine(1)
	d := NewDelayCC(100*sim.Microsecond)(e, 1000).(*delayCC)
	d.cwnd = 100_000
	d.OnLoss(LossFastRetransmit)
	if d.Cwnd() != 50_000 {
		t.Fatalf("fast loss: %d", d.Cwnd())
	}
	d.OnLoss(LossTimeout)
	if d.Cwnd() != 1000 {
		t.Fatalf("timeout: %d", d.Cwnd())
	}
}

package transport

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestBBRConfigValidateRejects: every invalid field is caught with an
// identifying message (the testbed Validate convention).
func TestBBRConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*BBRConfig)
		want string
	}{
		{"zero-line-rate", func(c *BBRConfig) { c.LineRate = 0 }, "rates"},
		{"negative-init-rate", func(c *BBRConfig) { c.InitRate = -1 }, "rates"},
		{"zero-min-rate", func(c *BBRConfig) { c.MinRate = 0 }, "rates"},
		{"min-above-line", func(c *BBRConfig) { c.MinRate = c.LineRate * 2 }, "MinRate"},
		{"init-above-line", func(c *BBRConfig) { c.InitRate = c.LineRate * 2 }, "InitRate"},
		{"startup-gain-one", func(c *BBRConfig) { c.StartupGain = 1 }, "StartupGain"},
		{"drain-gain-one", func(c *BBRConfig) { c.DrainGain = 1 }, "DrainGain"},
		{"probe-up-below-one", func(c *BBRConfig) { c.ProbeUpGain = 0.9 }, "probe gains"},
		{"probe-down-above-one", func(c *BBRConfig) { c.ProbeDownGain = 1.1 }, "probe gains"},
		{"cycle-too-short", func(c *BBRConfig) { c.CycleLen = 1 }, "CycleLen"},
		{"zero-bw-window", func(c *BBRConfig) { c.BtlBwWindow = 0 }, "BtlBwWindow"},
		{"zero-rtprop-window", func(c *BBRConfig) { c.RTpropWindow = 0 }, "probe-RTT"},
		{"zero-probe-rtt", func(c *BBRConfig) { c.ProbeRTTDuration = 0 }, "probe-RTT"},
		{"probe-rtt-above-window", func(c *BBRConfig) { c.ProbeRTTDuration = c.RTpropWindow }, "ProbeRTTDuration"},
		{"zero-cwnd-gain", func(c *BBRConfig) { c.CwndGain = 0 }, "CwndGain"},
		{"full-bw-thresh-one", func(c *BBRConfig) { c.FullBwThresh = 1 }, "full-bandwidth"},
		{"zero-full-bw-rounds", func(c *BBRConfig) { c.FullBwRounds = 0 }, "full-bandwidth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultBBRConfig()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not identify %q", err, tc.want)
			}
		})
	}
	if err := DefaultBBRConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestBBRFactoryPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBBRWithConfig accepted an invalid config")
		}
	}()
	cfg := DefaultBBRConfig()
	cfg.CycleLen = 0
	NewBBRWithConfig(cfg)
}

func newTestBBR(e *sim.Engine) *bbr {
	return NewBBR()(e, 1500).(*bbr)
}

// ackRound feeds b one packet-timed round of ACKs at a fixed delivery
// rate and RTT, advancing the engine clock between ACKs.
func ackRound(e *sim.Engine, b *bbr, rate sim.Rate, rtt sim.Time, acks int) {
	const bytes = 64 << 10
	for i := 0; i < acks; i++ {
		e.RunUntil(e.Now() + rate.TimeFor(bytes))
		seq := b.nextRoundSeq // crossing it ends the round
		b.OnAck(AckEvent{
			Bytes:  bytes,
			RTT:    rtt,
			AckSeq: seq,
			SndNxt: seq + bytes,
			Flight: bytes,
		})
	}
}

// TestBBRStartupFindsBandwidthAndDrains: a bandwidth plateau must end
// startup within FullBwRounds rounds, pass through drain, and settle in
// probe-bw with the estimate at the plateau.
func TestBBRStartupFindsBandwidthAndDrains(t *testing.T) {
	e := sim.NewEngine(1)
	b := newTestBBR(e)
	cfg := DefaultBBRConfig()

	if b.State() != "startup" {
		t.Fatalf("fresh BBR in %q, want startup", b.State())
	}
	if b.Cwnd() != 1<<30 {
		t.Fatalf("Cwnd %d before any RTT sample, want unbounded", b.Cwnd())
	}
	if b.PaceRate() != sim.Rate(cfg.StartupGain*float64(cfg.InitRate)) {
		t.Fatalf("startup pace %v, want StartupGain × InitRate", b.PaceRate())
	}

	// Plateau at 25 Gbps: the max filter stops growing, startup must exit.
	plateau := sim.Gbps(25)
	for i := 0; i < cfg.FullBwRounds+2 && b.State() == "startup"; i++ {
		ackRound(e, b, plateau, 50*sim.Microsecond, 4)
	}
	if b.State() == "startup" {
		t.Fatalf("startup did not exit on a bandwidth plateau (state %q)", b.State())
	}
	got := b.BtlBw().Gbps()
	if got < 20 || got > 30 {
		t.Fatalf("BtlBw %.1f Gbps after plateau, want ≈25", got)
	}

	// Flight at one BDP ends drain.
	b.OnAck(AckEvent{Bytes: 1500, RTT: 50 * sim.Microsecond,
		AckSeq: b.nextRoundSeq - 1, SndNxt: b.nextRoundSeq + 1500, Flight: 0})
	if b.State() != "probe-bw" {
		t.Fatalf("state %q after drain completes, want probe-bw", b.State())
	}
	if b.Cwnd() >= 1<<30 {
		t.Fatal("Cwnd still unbounded with bandwidth and RTT estimates in hand")
	}
}

// TestBBRProbeRTTOnStaleEstimate: when no lower RTT sample arrives for
// RTpropWindow, the controller must dip into probe-rtt (pacing below the
// estimate) and come back out after ProbeRTTDuration.
func TestBBRProbeRTTOnStaleEstimate(t *testing.T) {
	e := sim.NewEngine(1)
	b := newTestBBR(e)
	cfg := DefaultBBRConfig()

	plateau := sim.Gbps(25)
	for i := 0; i < cfg.FullBwRounds+3; i++ {
		ackRound(e, b, plateau, 50*sim.Microsecond, 4)
	}

	// Age the estimate: higher RTT samples only, past the window.
	deadline := e.Now() + cfg.RTpropWindow + sim.Millisecond
	for e.Now() < deadline && b.State() != "probe-rtt" {
		ackRound(e, b, plateau, 90*sim.Microsecond, 1)
	}
	if b.State() != "probe-rtt" {
		t.Fatal("stale RTprop did not trigger probe-rtt")
	}
	if b.PaceRate() >= b.BtlBw() {
		t.Fatalf("probe-rtt pace %v not below the bandwidth estimate %v", b.PaceRate(), b.BtlBw())
	}

	// Exit after the dwell.
	deadline = e.Now() + 2*cfg.ProbeRTTDuration + sim.Millisecond
	for e.Now() < deadline && b.State() == "probe-rtt" {
		ackRound(e, b, plateau, 50*sim.Microsecond, 1)
	}
	if b.State() != "probe-bw" {
		t.Fatalf("state %q after probe-rtt dwell, want probe-bw", b.State())
	}
}

// TestBBRIdleRestartExpiresRTprop: a long ACK silence (a link flap's
// fault window) must expire the windowed-min RTprop filter. Before the
// fix the first post-idle sample could never raise the pinned minimum —
// probe-rtt refreshed the estimate's age but kept the stale value — so
// a path whose floor RTT rose during the outage kept a cwnd cap sized
// for the old path forever.
func TestBBRIdleRestartExpiresRTprop(t *testing.T) {
	e := sim.NewEngine(1)
	b := newTestBBR(e)
	cfg := DefaultBBRConfig()

	// Establish a 50 µs floor.
	for i := 0; i < cfg.FullBwRounds+3; i++ {
		ackRound(e, b, sim.Gbps(25), 50*sim.Microsecond, 4)
	}
	if b.RTprop() != 50*sim.Microsecond {
		t.Fatalf("RTprop %v before the flap, want 50µs", b.RTprop())
	}

	// Link flap: no ACKs for well over the RTprop window.
	e.RunUntil(e.Now() + 4*cfg.RTpropWindow)

	// The path came back slower: 200 µs floor. The first post-idle
	// samples must rebuild the filter at the new floor, not stay pinned.
	ackRound(e, b, sim.Gbps(25), 200*sim.Microsecond, 2)
	if b.RTprop() != 200*sim.Microsecond {
		t.Fatalf("RTprop %v after idle restart, want 200µs (stale minimum pinned)", b.RTprop())
	}
	// And the windowed min still works on the new path.
	ackRound(e, b, sim.Gbps(25), 180*sim.Microsecond, 1)
	if b.RTprop() != 180*sim.Microsecond {
		t.Fatalf("RTprop %v, want the post-restart min 180µs", b.RTprop())
	}
}

// TestBBRLossResponses: fast retransmit is not a signal; an RTO halves
// the bandwidth window.
func TestBBRLossResponses(t *testing.T) {
	e := sim.NewEngine(1)
	b := newTestBBR(e)
	cfg := DefaultBBRConfig()

	for i := 0; i < cfg.FullBwRounds+3; i++ {
		ackRound(e, b, sim.Gbps(25), 50*sim.Microsecond, 4)
	}
	before := b.BtlBw()
	b.OnLoss(LossFastRetransmit)
	if b.BtlBw() != before {
		t.Fatalf("fast retransmit moved the bandwidth estimate %v -> %v", before, b.BtlBw())
	}
	b.OnLoss(LossTimeout)
	if b.BtlBw() >= before {
		t.Fatalf("RTO did not cut the bandwidth estimate (still %v)", b.BtlBw())
	}
	if b.Name() != "bbr" {
		t.Fatalf("Name() = %q", b.Name())
	}
}

// TestBBRPacesConnection: plumbed into a live connection via the scheme
// registry, BBR must wire the RatePacer hook and deliver the transfer.
func TestBBRPacesConnection(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	s, err := SchemeByName("bbr")
	if err != nil {
		t.Fatal(err)
	}
	sender := pp.attach(1, testCfg(s.Factory()))
	receiver := pp.attach(2, testCfg(s.Factory()))
	var got int64
	receiver.Listen(5000, func(c *Conn) {
		c.OnData(func(n int) { got += int64(n) })
	})
	c := sender.Dial(2, 5000)
	if _, ok := c.cc.(*bbr); !ok {
		t.Fatalf("connection CC is %T, want *bbr", c.cc)
	}
	if c.ratePacer == nil {
		t.Fatal("connection did not wire BBR's RatePacer hook")
	}
	const total = 1 << 20
	c.Send(total)
	e.Run()
	if got != total {
		t.Fatalf("delivered %d of %d bytes under BBR pacing", got, total)
	}
}

package transport

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestHPCCConfigValidateRejects: every invalid field is caught with an
// identifying message (the testbed Validate convention).
func TestHPCCConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*HPCCConfig)
		want string
	}{
		{"zero-line-rate", func(c *HPCCConfig) { c.LineRate = 0 }, "rates"},
		{"zero-min-rate", func(c *HPCCConfig) { c.MinRate = 0 }, "rates"},
		{"min-above-line", func(c *HPCCConfig) { c.MinRate = c.LineRate * 2 }, "MinRate"},
		{"eta-zero", func(c *HPCCConfig) { c.Eta = 0 }, "Eta"},
		{"eta-one", func(c *HPCCConfig) { c.Eta = 1 }, "Eta"},
		{"negative-ai", func(c *HPCCConfig) { c.AIRate = -1 }, "AIRate"},
		{"max-scale-one", func(c *HPCCConfig) { c.MaxScale = 1 }, "MaxScale"},
		{"util-gain-zero", func(c *HPCCConfig) { c.UtilGain = 0 }, "UtilGain"},
		{"util-gain-above-one", func(c *HPCCConfig) { c.UtilGain = 1.5 }, "UtilGain"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultHPCCConfig()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not identify %q", err, tc.want)
			}
		})
	}
	if err := DefaultHPCCConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestHPCCFactoryPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHPCCWithConfig accepted an invalid config")
		}
	}()
	cfg := DefaultHPCCConfig()
	cfg.Eta = 2
	NewHPCCWithConfig(cfg)
}

func newTestHPCC() *hpcc {
	return NewHPCC()(nil, 1500).(*hpcc)
}

// intAck builds one round-ending ACK carrying an INT echo.
func intAck(h *hpcc, util float64, hops int) AckEvent {
	seq := h.nextUpdateSeq
	return AckEvent{Bytes: 64 << 10, AckSeq: seq, SndNxt: seq + 64<<10,
		INTUtil: util, INTHops: hops}
}

// TestHPCCOverdrivenHopDecreases: echoed utilization above η must pull
// the rate down, bounded by 1/MaxScale per update, and floor at MinRate.
func TestHPCCOverdrivenHopDecreases(t *testing.T) {
	h := newTestHPCC()
	cfg := DefaultHPCCConfig()
	if h.PaceRate() != cfg.LineRate {
		t.Fatalf("fresh HPCC rate %v, want line rate", h.PaceRate())
	}
	before := h.PaceRate()
	h.OnAck(intAck(h, 2.0, 1)) // hop at 2× capacity
	if h.PaceRate() >= before {
		t.Fatalf("rate %v did not drop on overdriven hop (was %v)", h.PaceRate(), before)
	}
	// Bounded multiplicative decrease: no single update below 1/MaxScale
	// of the previous rate (minus nothing — AI adds back a little).
	if min := sim.Rate(float64(before) / cfg.MaxScale); h.PaceRate() < min {
		t.Fatalf("rate %v fell below the per-update bound %v", h.PaceRate(), min)
	}
	// Sustained overload converges to the fixed point of
	// r ← r/MaxScale + AIRate (= 2×AIRate with the defaults): the
	// additive term keeps probing, so the rate never collapses to the
	// floor on telemetry alone.
	for i := 0; i < 200; i++ {
		h.OnAck(intAck(h, 5.0, 2))
	}
	fixed := sim.Rate(float64(cfg.AIRate) * cfg.MaxScale / (cfg.MaxScale - 1))
	if got := h.PaceRate(); got > fixed*1.01 || got < cfg.MinRate {
		t.Fatalf("sustained overload: rate %v, want convergence to ≈%v", got, fixed)
	}
}

// TestHPCCIdleFabricIncreases: echoed utilization below η must push the
// rate up toward (and cap at) line rate.
func TestHPCCIdleFabricIncreases(t *testing.T) {
	h := newTestHPCC()
	cfg := DefaultHPCCConfig()
	for i := 0; i < 100; i++ {
		h.OnAck(intAck(h, 3.0, 1))
	}
	low := h.PaceRate()
	for i := 0; i < 100 && h.PaceRate() < cfg.LineRate; i++ {
		h.OnAck(intAck(h, 0.1, 1))
	}
	if h.PaceRate() != cfg.LineRate {
		t.Fatalf("near-idle fabric: rate %v (from %v), want recovery to line rate", h.PaceRate(), low)
	}
}

// TestHPCCUtilEWMA: the utilization estimate seeds from the first sample
// and then smooths with UtilGain.
func TestHPCCUtilEWMA(t *testing.T) {
	h := newTestHPCC()
	cfg := DefaultHPCCConfig()
	h.OnAck(intAck(h, 0.8, 1))
	if h.Util() != 0.8 {
		t.Fatalf("first sample should seed the estimate: got %v", h.Util())
	}
	h.OnAck(AckEvent{Bytes: 1, INTUtil: 0.4, INTHops: 1})
	want := 0.8 + cfg.UtilGain*(0.4-0.8)
	if diff := h.Util() - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("EWMA after second sample = %v, want %v", h.Util(), want)
	}
}

// TestHPCCBlindWithoutINT: with no hop ever stamping (the host-bottleneck
// case), the controller only probes upward additively — and only loss
// reins it in. This is the paper's blind spot, reproduced.
func TestHPCCBlindWithoutINT(t *testing.T) {
	h := newTestHPCC()
	cfg := DefaultHPCCConfig()
	h.OnLoss(LossTimeout)
	if h.PaceRate() != cfg.LineRate/2 {
		t.Fatalf("rate %v after loss, want half", h.PaceRate())
	}
	before := h.PaceRate()
	h.OnAck(intAck(h, 0, 0)) // no INT echo at all
	if h.PaceRate() != before+cfg.AIRate {
		t.Fatalf("blind update moved rate %v -> %v, want additive +%v only",
			before, h.PaceRate(), cfg.AIRate)
	}
	if h.Cwnd() < 1<<29 {
		t.Fatalf("Cwnd %d should stay effectively unbounded (rate-based control)", h.Cwnd())
	}
	if h.Name() != "hpcc" {
		t.Fatalf("Name() = %q", h.Name())
	}
}

// TestHPCCPerRTTUpdates: mid-window ACKs fold into the EWMA but do not
// re-apply the multiplicative step until the reference window closes.
func TestHPCCPerRTTUpdates(t *testing.T) {
	h := newTestHPCC()
	h.OnAck(intAck(h, 2.0, 1)) // closes window, sets nextUpdateSeq
	after := h.PaceRate()
	// Mid-window ACK: below nextUpdateSeq, rate must not move.
	h.OnAck(AckEvent{Bytes: 1, AckSeq: h.nextUpdateSeq - 1, SndNxt: h.nextUpdateSeq + 100,
		INTUtil: 5.0, INTHops: 1})
	if h.PaceRate() != after {
		t.Fatalf("mid-window ACK moved the rate %v -> %v", after, h.PaceRate())
	}
	// Window boundary: now it applies.
	h.OnAck(intAck(h, 5.0, 1))
	if h.PaceRate() >= after {
		t.Fatal("rate did not drop when the reference window closed")
	}
}

// TestHPCCPacesConnection: plumbed into a live connection via the scheme
// registry, HPCC must wire the RatePacer hook and deliver the transfer.
func TestHPCCPacesConnection(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	s, err := SchemeByName("hpcc")
	if err != nil {
		t.Fatal(err)
	}
	sender := pp.attach(1, testCfg(s.Factory()))
	receiver := pp.attach(2, testCfg(s.Factory()))
	var got int64
	receiver.Listen(5000, func(c *Conn) {
		c.OnData(func(n int) { got += int64(n) })
	})
	c := sender.Dial(2, 5000)
	if _, ok := c.cc.(*hpcc); !ok {
		t.Fatalf("connection CC is %T, want *hpcc", c.cc)
	}
	if c.ratePacer == nil {
		t.Fatal("connection did not wire HPCC's RatePacer hook")
	}
	const total = 1 << 20
	c.Send(total)
	e.Run()
	if got != total {
		t.Fatalf("delivered %d of %d bytes under HPCC pacing", got, total)
	}
}

package transport

import "repro/internal/sim"

// delayCC is a Swift-style delay-based congestion controller (§6 discusses
// extending hostCC to delay-based protocols; hostCC's delay signal —
// host delay via Little's law on the IIO counters — can feed the same
// machinery). Each ACK compares its RTT sample against a target; the
// window grows additively below target and shrinks multiplicatively in
// proportion to the overshoot, clamped per RTT.
type delayCC struct {
	e   *sim.Engine
	mss int

	cwnd   int
	target sim.Time

	decreased    bool // a decrease has happened (disambiguates t=0)
	lastDecrease sim.Time
	acc          int
}

// NewDelayCC returns a delay-based factory targeting the given RTT.
func NewDelayCC(target sim.Time) CCFactory {
	if target <= 0 {
		panic("transport: non-positive delay target")
	}
	return func(e *sim.Engine, mss int) CongestionControl {
		return &delayCC{e: e, mss: mss, cwnd: 10 * mss, target: target}
	}
}

func (d *delayCC) Name() string { return "delay" }
func (d *delayCC) Cwnd() int    { return d.cwnd }

const (
	delayBetaMax = 0.5 // max multiplicative decrease per RTT
	delayAI      = 1.0 // additive increase in MSS per RTT
)

func (d *delayCC) OnAck(ev AckEvent) {
	if ev.Bytes <= 0 || ev.RTT <= 0 {
		return
	}
	if ev.RTT <= d.target {
		// Below target: additive increase (delayAI MSS per RTT).
		d.acc += ev.Bytes
		if d.acc >= d.cwnd {
			d.acc -= d.cwnd
			d.cwnd += int(delayAI * float64(d.mss))
		}
		return
	}
	// Above target: at most one multiplicative decrease per RTT,
	// proportional to overshoot.
	if d.decreased && d.e.Now()-d.lastDecrease < ev.RTT {
		return
	}
	d.decreased = true
	d.lastDecrease = d.e.Now()
	over := 1 - float64(d.target)/float64(ev.RTT)
	if over > delayBetaMax {
		over = delayBetaMax
	}
	d.cwnd = maxInt(int(float64(d.cwnd)*(1-over)), 2*d.mss)
	d.acc = 0
}

func (d *delayCC) OnLoss(l LossEvent) {
	if l == LossTimeout {
		d.cwnd = d.mss
		return
	}
	d.cwnd = maxInt(d.cwnd/2, 2*d.mss)
}

package transport

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestSchemeRegistry: the registry names the full scheme set in stable
// order, every factory builds a controller whose Name matches its
// registry entry, and only DCQCN is flagged lossless.
func TestSchemeRegistry(t *testing.T) {
	want := []string{"dctcp", "reno", "cubic", "dcqcn", "delay", "bbr", "hpcc"}
	got := Schemes()
	if len(got) != len(want) {
		t.Fatalf("Schemes() returned %d entries, want %d", len(got), len(want))
	}
	e := sim.NewEngine(1)
	for i, s := range got {
		if s.Name != want[i] {
			t.Fatalf("Schemes()[%d].Name = %q, want %q", i, s.Name, want[i])
		}
		cc := s.Factory()(e, 1500)
		if cc.Name() != s.Name {
			t.Fatalf("scheme %q built a controller named %q", s.Name, cc.Name())
		}
		if s.Lossless != (s.Name == "dcqcn") {
			t.Fatalf("scheme %q Lossless = %v", s.Name, s.Lossless)
		}
		if s.Summary == "" {
			t.Fatalf("scheme %q has no summary", s.Name)
		}
	}
}

func TestSchemeByName(t *testing.T) {
	s, err := SchemeByName("bbr")
	if err != nil || s.Name != "bbr" {
		t.Fatalf("SchemeByName(bbr) = %v, %v", s, err)
	}
	if _, err := SchemeByName("vegas"); err == nil {
		t.Fatal("SchemeByName(vegas) should fail")
	} else if !strings.Contains(err.Error(), "bbr") {
		t.Fatalf("unknown-scheme error should list the registry, got %v", err)
	}
}

// TestSchemesReturnsCopy: mutating the returned slice must not corrupt
// the registry.
func TestSchemesReturnsCopy(t *testing.T) {
	Schemes()[0].Name = "mangled"
	if s := Schemes()[0]; s.Name != "dctcp" {
		t.Fatalf("registry mutated through Schemes(): %q", s.Name)
	}
}

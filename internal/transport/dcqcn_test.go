package transport

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func newTestDCQCN(e *sim.Engine) *dcqcn {
	return NewDCQCN()(e, 1500).(*dcqcn)
}

// TestDCQCNDecreaseOnCNP: each CNP remembers the current rate as the
// recovery target, bumps alpha by the gain, and cuts the rate by
// alpha/2; sustained CNPs floor at MinRate, never zero.
func TestDCQCNDecreaseOnCNP(t *testing.T) {
	e := sim.NewEngine(1)
	d := newTestDCQCN(e)
	cfg := DefaultDCQCNConfig()

	if d.Rate() != cfg.LineRate || d.Alpha() != 0 {
		t.Fatalf("fresh DCQCN rate=%v alpha=%v, want line rate and zero", d.Rate(), d.Alpha())
	}
	d.OnCNP()
	if d.TargetRate() != cfg.LineRate {
		t.Fatalf("target %v, want the pre-decrease rate %v", d.TargetRate(), cfg.LineRate)
	}
	if d.Alpha() != cfg.Gain {
		t.Fatalf("alpha %v after first CNP, want the gain %v", d.Alpha(), cfg.Gain)
	}
	want := cfg.LineRate * sim.Rate(1-cfg.Gain/2)
	if d.Rate() != want {
		t.Fatalf("rate %v after first CNP, want %v", d.Rate(), want)
	}

	for i := 0; i < 5000; i++ {
		d.OnCNP()
	}
	if d.Rate() != cfg.MinRate {
		t.Fatalf("sustained CNPs: rate %v, want the MinRate floor %v", d.Rate(), cfg.MinRate)
	}
	if d.CNPs != 5001 {
		t.Fatalf("CNPs = %d, want 5001", d.CNPs)
	}
}

// TestDCQCNIncreaseLadder drives the byte and timer clocks through the
// full recovery ladder: fast recovery (halving toward the target, target
// untouched) for the first F events, additive increase once one clock
// passes F, hyper increase once both have.
func TestDCQCNIncreaseLadder(t *testing.T) {
	e := sim.NewEngine(1)
	d := newTestDCQCN(e)
	cfg := DefaultDCQCNConfig()

	// Push the rate well below line rate so the increase steps are
	// observable before the LineRate cap.
	for i := 0; i < 50; i++ {
		d.OnCNP()
	}
	if d.Rate() >= cfg.LineRate/2 {
		t.Fatalf("setup: rate %v still too close to line rate", d.Rate())
	}

	// Fast recovery: F-1 byte events halve rc toward rt without moving rt.
	rt := d.TargetRate()
	for i := 0; i < cfg.FastRecoverySteps-1; i++ {
		before := d.Rate()
		d.OnAck(AckEvent{Bytes: cfg.IncreaseBytes})
		if want := (rt + before) / 2; d.Rate() != want {
			t.Fatalf("fast recovery step %d: rate %v, want (rt+rc)/2 = %v", i, d.Rate(), want)
		}
		if d.TargetRate() != rt {
			t.Fatalf("fast recovery moved the target: %v -> %v", rt, d.TargetRate())
		}
	}

	// Event F on the byte clock: additive increase, rt += Rai.
	d.OnAck(AckEvent{Bytes: cfg.IncreaseBytes})
	if d.TargetRate() != rt+cfg.AIRate {
		t.Fatalf("additive increase: target %v, want %v + Rai %v", d.TargetRate(), rt, cfg.AIRate)
	}

	// Let the increase timer also reach F events; the next byte event has
	// both clocks past F and steps by the hyper rate.
	e.RunUntil(e.Now() + sim.Time(cfg.FastRecoverySteps)*cfg.IncreaseTimer + sim.Microsecond)
	rt = d.TargetRate()
	d.OnAck(AckEvent{Bytes: cfg.IncreaseBytes})
	if d.TargetRate() != rt+cfg.HyperAIRate {
		t.Fatalf("hyper increase: target %v, want %v + Rhai %v", d.TargetRate(), rt, cfg.HyperAIRate)
	}
}

// TestDCQCNRecoversToIdle: after congestion ends, the controller must
// climb back to line rate, decay alpha to noise, and then go
// event-silent — e.Run() terminating proves no timer rearms forever.
func TestDCQCNRecoversToIdle(t *testing.T) {
	e := sim.NewEngine(1)
	d := newTestDCQCN(e)
	cfg := DefaultDCQCNConfig()

	for i := 0; i < 10; i++ {
		d.OnCNP()
	}
	e.Run() // must terminate: recovery reaches idle and stops the timers
	if d.Rate() != cfg.LineRate {
		t.Fatalf("recovered rate %v, want line rate %v", d.Rate(), cfg.LineRate)
	}
	if d.Alpha() >= 1e-6 {
		t.Fatalf("alpha %v did not decay to noise", d.Alpha())
	}
}

// TestDCQCNOnLoss: loss on a lossless fabric (headroom exhaustion or an
// injected fault) is a stronger signal than any CNP — rate halves.
func TestDCQCNOnLoss(t *testing.T) {
	e := sim.NewEngine(1)
	d := newTestDCQCN(e)
	cfg := DefaultDCQCNConfig()
	d.OnLoss(LossTimeout)
	if d.Rate() != cfg.LineRate/2 {
		t.Fatalf("rate %v after loss, want half of line rate", d.Rate())
	}
	if d.Cwnd() < 1<<29 {
		t.Fatalf("Cwnd %d should stay effectively unbounded (rate-based control)", d.Cwnd())
	}
	if d.Name() != "dcqcn" {
		t.Fatalf("Name() = %q", d.Name())
	}
}

// TestDCQCNPacesConnection: plumbed into a live connection, DCQCN must
// wire its RatePacer/CNPReceiver hooks, consume FlagCNP packets as rate
// cuts, and still deliver the whole transfer.
func TestDCQCNPacesConnection(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	sender := pp.attach(1, testCfg(NewDCQCN()))
	receiver := pp.attach(2, testCfg(NewDCQCN()))
	var got int64
	receiver.Listen(5000, func(c *Conn) {
		c.OnData(func(n int) { got += int64(n) })
	})
	c := sender.Dial(2, 5000)
	d, ok := c.cc.(*dcqcn)
	if !ok {
		t.Fatalf("connection CC is %T, want *dcqcn", c.cc)
	}
	if c.ratePacer == nil || c.cnpSink == nil {
		t.Fatal("connection did not wire DCQCN's RatePacer/CNPReceiver hooks")
	}

	const total = 1 << 20
	c.Send(total)
	e.RunUntil(100 * sim.Microsecond)
	before := d.Rate()
	c.Receive(&packet.Packet{Flags: packet.FlagCNP})
	if d.CNPs != 1 {
		t.Fatalf("CNPs = %d after a FlagCNP delivery, want 1", d.CNPs)
	}
	if d.Rate() >= before {
		t.Fatalf("rate %v did not drop from %v on CNP", d.Rate(), before)
	}
	e.Run()
	if got != total {
		t.Fatalf("delivered %d of %d bytes under DCQCN pacing", got, total)
	}
}

package transport

import (
	"fmt"

	"repro/internal/sim"
)

// delayCCDefaultTarget is the registry's target delay for the "delay"
// scheme, matching the Swift-style operating point the repo's examples
// use (~3.4× the base fabric RTT of 44 µs).
const delayCCDefaultTarget = 150 * sim.Microsecond

// SchemeInfo describes one registered congestion-control scheme. The
// registry is the single naming authority: testbed configs, the crucible
// generator, the evaluation harness and the public hostcc API all resolve
// scheme names here.
type SchemeInfo struct {
	// Name is the canonical lower-case identifier ("dctcp", "bbr", ...).
	Name string
	// Summary is a one-line human-readable description.
	Summary string
	// Lossless marks schemes designed for a lossless (PFC) fabric.
	Lossless bool
	// Factory constructs the scheme's CCFactory with default parameters.
	Factory func() CCFactory
}

// schemes is the registry, in stable presentation order: the window-based
// schemes first (in historical order), then the rate-based ones.
var schemes = []SchemeInfo{
	{Name: "dctcp", Summary: "ECN-proportional AIMD (DCTCP, SIGCOMM 2010)", Factory: NewDCTCP},
	{Name: "reno", Summary: "New Reno AIMD (loss-based)", Factory: NewReno},
	{Name: "cubic", Summary: "CUBIC window growth (loss-based)", Factory: NewCubic},
	{Name: "dcqcn", Summary: "rate-based ECN/CNP control for RoCE (DCQCN, SIGCOMM 2015)", Lossless: true, Factory: NewDCQCN},
	{Name: "delay", Summary: "Swift-style delay-target AIMD (150 µs target)", Factory: func() CCFactory { return NewDelayCC(delayCCDefaultTarget) }},
	{Name: "bbr", Summary: "model-based rate control: bandwidth/RTprop probing (BBR-like)", Factory: NewBBR},
	{Name: "hpcc", Summary: "INT-telemetry rate control (HPCC-like, SIGCOMM 2019)", Factory: NewHPCC},
}

// Schemes returns all registered schemes in stable order. The slice is a
// copy; callers may reorder it freely.
func Schemes() []SchemeInfo {
	out := make([]SchemeInfo, len(schemes))
	copy(out, schemes)
	return out
}

// SchemeByName resolves a canonical scheme name.
func SchemeByName(name string) (SchemeInfo, error) {
	for _, s := range schemes {
		if s.Name == name {
			return s, nil
		}
	}
	return SchemeInfo{}, fmt.Errorf("transport: unknown congestion-control scheme %q (have %s)",
		name, SchemeNames())
}

// SchemeNames returns the registered names as a comma-separated list, in
// registry order — for error messages and usage strings.
func SchemeNames() string {
	s := ""
	for i, sc := range schemes {
		if i > 0 {
			s += ", "
		}
		s += sc.Name
	}
	return s
}

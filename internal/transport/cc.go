// Package transport implements a byte-stream reliable transport with
// pluggable congestion control, modeled on the Linux TCP machinery the
// paper evaluates: window-based sending, cumulative ACKs with duplicate-ACK
// fast retransmit, a minimum retransmission timeout of 200 ms (the source
// of the paper's P99.9 latency cliff), tail loss probes (which rescue
// multi-packet RPCs), and ECN echo.
//
// hostCC composes with the transport exactly as it does with Linux: it
// never touches transport state, it only CE-marks packets before delivery,
// and the transport's ECN machinery does the rest (§4.3).
package transport

import (
	"repro/internal/sim"
)

// AckEvent describes one cumulative ACK arrival to a congestion controller.
type AckEvent struct {
	Bytes  int      // newly acknowledged bytes
	Marked bool     // ECN-echo set on this ACK
	RTT    sim.Time // RTT sample carried by this ACK (0 if none)
	AckSeq uint64   // cumulative sequence acknowledged
	SndNxt uint64   // highest sequence sent so far
	Flight int      // bytes in flight after this ACK

	// INT telemetry echoed by the receiver: the maximum per-hop switch
	// utilization stamped on the data packets this ACK covers, and the
	// hop count of the stamping path. INTHops == 0 means no hop stamped
	// (host-internal paths never do — the paper's blind spot).
	INTUtil float64
	INTHops int
}

// LossEvent distinguishes how a loss was detected.
type LossEvent int

// Loss kinds.
const (
	LossFastRetransmit LossEvent = iota // triple duplicate ACK
	LossTimeout                         // retransmission timeout
)

// CongestionControl computes the congestion window. Implementations are
// per-connection and single-threaded (driven by the event loop).
type CongestionControl interface {
	// Name identifies the algorithm ("dctcp", "reno", ...).
	Name() string
	// OnAck processes a cumulative ACK.
	OnAck(ev AckEvent)
	// OnLoss processes a loss detection event.
	OnLoss(l LossEvent)
	// Cwnd returns the current congestion window in bytes.
	Cwnd() int
}

// CCFactory constructs a congestion controller for one connection.
type CCFactory func(e *sim.Engine, mss int) CongestionControl

// RatePacer is implemented by rate-based controllers (DCQCN): the
// connection paces transmissions at PaceRate instead of the
// PacingFactor × cwnd/SRTT window formula.
type RatePacer interface {
	PaceRate() sim.Rate
}

// CNPReceiver is implemented by controllers that consume congestion
// notification packets (DCQCN). The connection invokes OnCNP once per
// CNP arriving on its flow.
type CNPReceiver interface {
	OnCNP()
}

// RateSeeder is implemented by controllers that can be seeded from a
// fluid-model rate estimate when the hybrid tier promotes a flow to
// packet level: the window starts at the rate×RTT product instead of
// the initial window, so a promoted long flow does not re-run slow
// start against a queue the fluid model already measured.
type RateSeeder interface {
	SeedRate(rate sim.Rate, rtt sim.Time)
}

// reno implements TCP New Reno-style AIMD: slow start to ssthresh, then
// one MSS per RTT of additive increase; halve on loss.
type reno struct {
	mss      int
	cwnd     int
	ssthresh int
	acc      int // fractional congestion-avoidance accumulator
}

// NewReno returns a Reno congestion controller factory.
func NewReno() CCFactory {
	return func(_ *sim.Engine, mss int) CongestionControl {
		return newReno(mss)
	}
}

func newReno(mss int) *reno {
	return &reno{
		mss:      mss,
		cwnd:     10 * mss,
		ssthresh: 1 << 30,
	}
}

func (r *reno) Name() string { return "reno" }
func (r *reno) Cwnd() int    { return r.cwnd }

func (r *reno) OnAck(ev AckEvent) {
	if ev.Bytes <= 0 {
		return
	}
	if r.cwnd < r.ssthresh {
		// Slow start: grow by the bytes acknowledged.
		r.cwnd += ev.Bytes
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh
		}
		return
	}
	// Congestion avoidance: one MSS per cwnd of acknowledged bytes.
	r.acc += ev.Bytes
	if r.acc >= r.cwnd {
		r.acc -= r.cwnd
		r.cwnd += r.mss
	}
}

// SeedRate implements RateSeeder: the window jumps to the fluid rate's
// BDP and congestion avoidance takes over from there (ssthresh at the
// seeded window disables slow start — the fluid estimate already found
// the operating point; overshooting it would re-create the congestion
// the promotion reacted to).
func (r *reno) SeedRate(rate sim.Rate, rtt sim.Time) {
	w := int(rate.BytesIn(rtt))
	if w < 2*r.mss {
		w = 2 * r.mss
	}
	r.cwnd = w
	r.ssthresh = w
	r.acc = 0
}

func (r *reno) OnLoss(l LossEvent) {
	switch l {
	case LossFastRetransmit:
		r.ssthresh = maxInt(r.cwnd/2, 2*r.mss)
		r.cwnd = r.ssthresh
	case LossTimeout:
		r.ssthresh = maxInt(r.cwnd/2, 2*r.mss)
		r.cwnd = r.mss
	}
	r.acc = 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

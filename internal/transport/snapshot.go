package transport

import (
	"sort"

	"repro/internal/packet"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/stats"
)

// Snapshot encodes the endpoint and every connection, walking the
// connection map in sorted flow order for determinism. Connections created
// after the snapshot (or missing at restore) make the images incomparable —
// the registry's per-component restore surfaces that as a decode error.
func (ep *Endpoint) Snapshot(e *snapshot.Encoder) {
	e.U32(uint32(ep.nextPort))
	e.I64(ep.StrayPackets)
	flows := ep.sortedFlows()
	e.U32(uint32(len(flows)))
	for _, f := range flows {
		e.U64(uint64(f.Src))
		e.U64(uint64(f.Dst))
		e.U32(uint32(f.SrcPort))
		e.U32(uint32(f.DstPort))
		ep.cons[f].snapshot(e)
	}
}

// Restore reverses Snapshot for connections present under the same flow
// identifiers; connections only in the image are skipped (their state is
// replay-reconstructed).
func (ep *Endpoint) Restore(d *snapshot.Decoder) error {
	ep.nextPort = uint16(d.U32())
	ep.StrayPackets = d.I64()
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		var f packet.FlowID
		f.Src = packet.HostID(d.U64())
		f.Dst = packet.HostID(d.U64())
		f.SrcPort = uint16(d.U32())
		f.DstPort = uint16(d.U32())
		c := ep.cons[f]
		if c == nil {
			// Drain the blob positionally even without a live connection.
			var scratch Conn
			scratch.restore(d, false)
			continue
		}
		c.restore(d, true)
	}
	return d.Err()
}

func (ep *Endpoint) sortedFlows() []packet.FlowID {
	flows := make([]packet.FlowID, 0, len(ep.cons))
	for f := range ep.cons {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		a, b := flows[i], flows[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		return a.DstPort < b.DstPort
	})
	return flows
}

// snapshot encodes one connection's sender, receiver and timer state.
func (c *Conn) snapshot(e *snapshot.Encoder) {
	e.U64(c.sndUna)
	e.U64(c.sndNxt)
	e.I64(c.appQueue)
	e.Bool(c.infinite)
	e.U32(uint32(c.segs.Len()))
	for i := 0; i < c.segs.Len(); i++ {
		s := c.segs.At(i)
		e.U64(s.seq)
		e.Int(s.len)
		e.I64(int64(s.sentAt))
		e.Int(s.retx)
		e.Bool(s.sacked)
		e.Int(s.epoch)
	}
	e.Int(c.dupAcks)
	e.Bool(c.inRecovery)
	e.U64(c.recoverSeq)
	e.Int(c.recoveryEpoch)
	e.U64(c.highSacked)
	e.U64(c.lostBelow)
	e.I64(int64(c.srtt))
	e.I64(int64(c.rttvar))
	e.Int(c.rtoBackoff)
	e.Bool(c.tlpArmed)
	e.I64(int64(c.pacedUntil))
	c.rtoTimer.SnapshotState(e)
	c.tlpTimer.SnapshotState(e)
	c.ackTimer.SnapshotState(e)
	c.paceTimer.SnapshotState(e)
	e.U64(c.rcvNxt)
	e.U32(uint32(len(c.ooo)))
	for _, iv := range c.ooo {
		e.U64(iv.lo)
		e.U64(iv.hi)
	}
	e.U64(c.lastOOO.lo)
	e.U64(c.lastOOO.hi)
	e.I64(int64(c.lastEpochBump))
	e.Int(c.pendingAcks)
	e.Bool(c.ceSinceLastAck)
	e.Bool(c.lastCE)
	e.I64(int64(c.lastDataSentAt))
	e.Int(c.cc.Cwnd())
	c.Retransmits.Snapshot(e)
	c.Timeouts.Snapshot(e)
	c.TLPProbes.Snapshot(e)
	c.MarkedAcks.Snapshot(e)
	c.AckedBytes.Snapshot(e)
	c.DeliveredData.Snapshot(e)
}

// restore decodes one connection blob. With apply=false the bytes are
// consumed but discarded (used to skip connections absent at restore time).
func (c *Conn) restore(d *snapshot.Decoder, apply bool) {
	sndUna := d.U64()
	sndNxt := d.U64()
	appQueue := d.I64()
	infinite := d.Bool()
	nSegs := int(d.U32())
	var segs ring.Queue[*seg]
	for i := 0; i < nSegs && d.Err() == nil; i++ {
		segs.Push(&seg{
			seq:    d.U64(),
			len:    d.Int(),
			sentAt: sim.Time(d.I64()),
			retx:   d.Int(),
			sacked: d.Bool(),
			epoch:  d.Int(),
		})
	}
	dupAcks := d.Int()
	inRecovery := d.Bool()
	recoverSeq := d.U64()
	recoveryEpoch := d.Int()
	highSacked := d.U64()
	lostBelow := d.U64()
	srtt := sim.Time(d.I64())
	rttvar := sim.Time(d.I64())
	rtoBackoff := d.Int()
	tlpArmed := d.Bool()
	pacedUntil := sim.Time(d.I64())
	if apply && c.rtoTimer != nil {
		c.rtoTimer.RestoreState(d)
		c.tlpTimer.RestoreState(d)
		c.ackTimer.RestoreState(d)
		c.paceTimer.RestoreState(d)
	} else {
		for i := 0; i < 4; i++ {
			_ = d.Bool()
			_ = d.I64()
			_ = d.U64()
		}
	}
	rcvNxt := d.U64()
	nOOO := int(d.U32())
	var ooo []interval
	for i := 0; i < nOOO && d.Err() == nil; i++ {
		ooo = append(ooo, interval{lo: d.U64(), hi: d.U64()})
	}
	lastOOO := interval{lo: d.U64(), hi: d.U64()}
	lastEpochBump := sim.Time(d.I64())
	pendingAcks := d.Int()
	ceSinceLastAck := d.Bool()
	lastCE := d.Bool()
	lastDataSentAt := sim.Time(d.I64())
	_ = d.Int() // cwnd: digest-only (the CC module owns its state)
	if !apply {
		var scratch stats.Counter
		for i := 0; i < 6; i++ {
			_ = scratch.Restore(d)
		}
		return
	}
	c.sndUna, c.sndNxt = sndUna, sndNxt
	c.appQueue = appQueue
	c.infinite = infinite
	c.segs = segs
	c.dupAcks = dupAcks
	c.inRecovery = inRecovery
	c.recoverSeq = recoverSeq
	c.recoveryEpoch = recoveryEpoch
	c.highSacked = highSacked
	c.lostBelow = lostBelow
	c.srtt, c.rttvar = srtt, rttvar
	c.rtoBackoff = rtoBackoff
	c.tlpArmed = tlpArmed
	c.pacedUntil = pacedUntil
	c.rcvNxt = rcvNxt
	c.ooo = ooo
	c.lastOOO = lastOOO
	c.lastEpochBump = lastEpochBump
	c.pendingAcks = pendingAcks
	c.ceSinceLastAck = ceSinceLastAck
	c.lastCE = lastCE
	c.lastDataSentAt = lastDataSentAt
	_ = c.Retransmits.Restore(d)
	_ = c.Timeouts.Restore(d)
	_ = c.TLPProbes.Restore(d)
	_ = c.MarkedAcks.Restore(d)
	_ = c.AckedBytes.Restore(d)
	_ = c.DeliveredData.Restore(d)
}

// Fluid congestion-control twins: the coarse-tick rate laws the hybrid
// fluid/packet tier integrates for background flows. A twin is the ODE
// form of its packet-level controller — instead of reacting per ACK it
// advances a sending rate once per model RTT, responding to the mark
// and loss fractions its path's fluid queues produced over that window.
// Twins are stateless rate laws (per-flow state — rate, alpha — lives
// in the fluid network), so one twin instance serves a whole population.
package transport

import (
	"fmt"

	"repro/internal/sim"
)

// FluidCC advances one flow's rate by one RTT window. rate is bytes/sec;
// alpha is the flow's smoothed congestion estimate (DCTCP's α; unused
// twins return it unchanged); markFrac and lossFrac are the fractions
// of the window's ticks during which the path marked or overflowed.
type FluidCC interface {
	Name() string
	Advance(rate, alpha, markFrac, lossFrac float64) (newRate, newAlpha float64)
}

// fluidDCTCP mirrors the packet-level dctcp controller: α smoothed with
// gain g toward the observed mark fraction, one multiplicative decrease
// of α/2 per marked window, one MSS per RTT of additive increase
// otherwise. Loss (queue overflow) responds like Reno — halve — since
// drop-tail loss is the stronger signal.
type fluidDCTCP struct {
	g    float64
	incr float64 // additive increase per window, bytes/sec
}

// NewFluidDCTCP returns the DCTCP twin: gain g (0 selects the packet
// controller's default 1/16), additive increase of one mss per rtt.
func NewFluidDCTCP(g float64, mss int, rtt sim.Time) FluidCC {
	if g <= 0 || g > 1 {
		g = 1.0 / 16
	}
	return &fluidDCTCP{g: g, incr: aiPerWindow(mss, rtt)}
}

func (f *fluidDCTCP) Name() string { return "dctcp" }

func (f *fluidDCTCP) Advance(rate, alpha, markFrac, lossFrac float64) (float64, float64) {
	alpha = (1-f.g)*alpha + f.g*markFrac
	switch {
	case lossFrac > 0:
		rate *= 0.5
	case markFrac > 0:
		rate *= 1 - alpha/2
	default:
		rate += f.incr
	}
	return rate, alpha
}

// fluidReno mirrors the packet-level reno controller: AIMD on loss only
// (reno ignores ECN marks; against a marking switch it fills the buffer
// until drop-tail loss, and the fluid queue model reproduces exactly
// that overflow).
type fluidReno struct {
	incr float64
}

// NewFluidReno returns the Reno twin.
func NewFluidReno(mss int, rtt sim.Time) FluidCC {
	return &fluidReno{incr: aiPerWindow(mss, rtt)}
}

func (f *fluidReno) Name() string { return "reno" }

func (f *fluidReno) Advance(rate, alpha, _, lossFrac float64) (float64, float64) {
	if lossFrac > 0 {
		rate *= 0.5
	} else {
		rate += f.incr
	}
	return rate, alpha
}

// aiPerWindow converts "one mss per rtt of window growth" into a rate
// increment per RTT window: Δrate = mss/rtt.
func aiPerWindow(mss int, rtt sim.Time) float64 {
	if mss <= 0 {
		panic("transport: non-positive fluid MSS")
	}
	if rtt <= 0 {
		panic("transport: non-positive fluid RTT")
	}
	return float64(mss) / rtt.Seconds()
}

// FluidSchemeByName resolves a fluid twin by its packet scheme name.
func FluidSchemeByName(name string, mss int, rtt sim.Time) (FluidCC, error) {
	switch name {
	case "", "dctcp":
		return NewFluidDCTCP(0, mss, rtt), nil
	case "reno":
		return NewFluidReno(mss, rtt), nil
	}
	return nil, fmt.Errorf("transport: no fluid twin for scheme %q (have dctcp, reno)", name)
}

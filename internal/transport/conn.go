package transport

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config parameterizes connections.
type Config struct {
	// MSS is the maximum segment payload. With the paper's default 4K MTU
	// this is 4096-HeaderLen bytes of application payload per packet.
	MSS int
	// MinRTO is the minimum retransmission timeout. Linux's 200 ms
	// default is what makes packet drops catastrophic for RPC tail
	// latency (Figure 4: P99.9 inflation ≈ the RTO).
	MinRTO sim.Time
	// MaxRTO caps exponential backoff.
	MaxRTO sim.Time
	// InitialRTO applies before any RTT sample exists.
	InitialRTO sim.Time
	// TLP enables tail loss probes: with more than one packet in flight a
	// probe retransmission fires after ~2×SRTT, recovering tail drops
	// without waiting for the full RTO (§2.2).
	TLP bool
	// TLPMin is the minimum probe timeout.
	TLPMin sim.Time
	// DelayedAckCount acknowledges every Nth data packet (an ACK is sent
	// immediately whenever the CE state changes, per DCTCP).
	DelayedAckCount int
	// DelayedAckTimeout bounds how long an ACK may be delayed.
	DelayedAckTimeout sim.Time
	// ECN marks data packets ECT(0) and echoes CE via ECE.
	ECN bool
	// CC constructs the congestion controller (default DCTCP).
	CC CCFactory
	// MaxCwnd caps the congestion window in bytes.
	MaxCwnd int
	// RcvWnd is the peer's advertised receive window: in-flight data per
	// connection never exceeds it (static; window autotuning is not
	// modeled). This is what bounds in-host queueing when the receiver
	// CPU, not the network, is the bottleneck.
	RcvWnd int
	// PacingFactor enables TCP internal pacing (Linux ≥4.13): new data is
	// transmitted at PacingFactor × cwnd/SRTT instead of in window-sized
	// bursts. Zero disables pacing.
	PacingFactor float64
	// Pool recycles transmitted packets. Packets the connection sends are
	// acquired here and released by whichever component removes them from
	// the simulation (terminal receive delivery or a drop point). Nil
	// falls back to plain allocation.
	Pool *packet.Pool
}

// DefaultConfig returns the Linux-DCTCP-like configuration used throughout
// the evaluation, for a given MTU.
func DefaultConfig(mtu int) Config {
	if mtu <= packet.HeaderLen {
		panic("transport: MTU smaller than headers")
	}
	return Config{
		MSS:               mtu - packet.HeaderLen,
		MinRTO:            200 * sim.Millisecond,
		MaxRTO:            5 * sim.Second,
		InitialRTO:        200 * sim.Millisecond,
		TLP:               true,
		TLPMin:            500 * sim.Microsecond,
		DelayedAckCount:   2,
		DelayedAckTimeout: 500 * sim.Microsecond,
		ECN:               true,
		CC:                NewDCTCP(),
		MaxCwnd:           8 << 20,
		RcvWnd:            640 << 10,
		PacingFactor:      2.0,
	}
}

// Network is the packet output path (implemented by the host, or by test
// harnesses).
type Network interface {
	Transmit(p *packet.Packet)
}

// seg is one unacknowledged segment at the sender.
type seg struct {
	seq    uint64
	len    int
	sentAt sim.Time
	retx   int
	sacked bool // selectively acknowledged
	epoch  int  // recovery epoch of the last retransmission
}

// interval is a received out-of-order byte range.
type interval struct{ lo, hi uint64 }

// Conn is one bidirectional connection. Application payload is modeled as
// byte counts; sequence numbers, acknowledgment, retransmission and
// congestion control are fully simulated.
type Conn struct {
	e    *sim.Engine
	net  Network
	flow packet.FlowID
	cfg  Config
	cc   CongestionControl

	// ratePacer/cnpSink cache the cc's optional interfaces (DCQCN), so
	// the per-packet pacing path stays assertion-free.
	ratePacer RatePacer
	cnpSink   CNPReceiver

	pool *packet.Pool

	// Sender half.
	sndUna, sndNxt uint64
	appQueue       int64
	infinite       bool
	segs           ring.Queue[*seg]
	segFree        []*seg
	dupAcks        int
	inRecovery     bool
	recoverSeq     uint64
	recoveryEpoch  int
	highSacked     uint64
	lostBelow      uint64
	srtt, rttvar   sim.Time
	rtoBackoff     int
	rtoTimer       *sim.Timer
	tlpTimer       *sim.Timer
	tlpArmed       bool
	pacedUntil     sim.Time
	paceTimer      *sim.Timer

	// Receiver half.
	rcvNxt         uint64
	ooo            []interval
	lastOOO        interval // most recently touched out-of-order range
	lastEpochBump  sim.Time // last RACK-style epoch reopen
	pendingAcks    int
	ceSinceLastAck bool
	lastCE         bool
	lastDataSentAt sim.Time
	intMaxUtil     float64 // max INT stamp on data since the last ACK
	intMaxHops     uint8
	ackTimer       *sim.Timer
	onData         func(n int)

	// Counters.
	Retransmits   stats.Counter
	Timeouts      stats.Counter
	TLPProbes     stats.Counter
	MarkedAcks    stats.Counter
	AckedBytes    stats.Counter
	DeliveredData stats.Counter
}

func newConn(e *sim.Engine, net Network, flow packet.FlowID, cfg Config) *Conn {
	if cfg.MSS <= 0 {
		panic("transport: non-positive MSS")
	}
	cc := cfg.CC
	if cc == nil {
		cc = NewDCTCP()
	}
	c := &Conn{
		e:    e,
		net:  net,
		flow: flow,
		cfg:  cfg,
		cc:   cc(e, cfg.MSS),
		pool: cfg.Pool,
	}
	c.ratePacer, _ = c.cc.(RatePacer)
	c.cnpSink, _ = c.cc.(CNPReceiver)
	c.rtoTimer = sim.NewTimer(e, c.onRTO)
	c.tlpTimer = sim.NewTimer(e, c.onTLP)
	c.ackTimer = sim.NewTimer(e, func() { c.sendAck() })
	c.paceTimer = sim.NewTimer(e, func() { c.trySend() })
	return c
}

// Flow returns the connection's flow identifier (sender-side orientation).
func (c *Conn) Flow() packet.FlowID { return c.flow }

// CC returns the congestion controller (for diagnostics).
func (c *Conn) CC() CongestionControl { return c.cc }

// SRTT returns the smoothed RTT estimate.
func (c *Conn) SRTT() sim.Time { return c.srtt }

// OnData registers the application's in-order delivery callback.
func (c *Conn) OnData(fn func(n int)) { c.onData = fn }

// Send queues n application bytes for transmission.
func (c *Conn) Send(n int) {
	if n <= 0 {
		panic("transport: Send of non-positive byte count")
	}
	c.appQueue += int64(n)
	c.trySend()
}

// SetInfiniteSource makes the connection behave like a long flow with
// unbounded data (the NetApp-T / iperf model).
func (c *Conn) SetInfiniteSource(on bool) {
	c.infinite = on
	if on {
		c.trySend()
	}
}

// SeedRate forwards a fluid-model rate estimate to the congestion
// controller, if it supports seeding (the hybrid tier's promote path).
func (c *Conn) SeedRate(rate sim.Rate, rtt sim.Time) {
	if s, ok := c.cc.(RateSeeder); ok {
		s.SeedRate(rate, rtt)
	}
}

// Flight returns the bytes currently in flight.
func (c *Conn) Flight() int { return int(c.sndNxt - c.sndUna) }

// effCwnd applies the configured window caps (congestion window bounded
// by the peer's receive window).
func (c *Conn) effCwnd() int {
	w := c.cc.Cwnd()
	if c.cfg.MaxCwnd > 0 && w > c.cfg.MaxCwnd {
		w = c.cfg.MaxCwnd
	}
	if c.cfg.RcvWnd > 0 && w > c.cfg.RcvWnd {
		w = c.cfg.RcvWnd
	}
	return w
}

func (c *Conn) trySend() {
	for (c.appQueue > 0 || c.infinite) && c.Flight() < c.effCwnd() {
		if c.pacedUntil > c.e.Now() {
			// Pacing gate: resume when the pacer allows the next packet.
			if !c.paceTimer.Pending() {
				c.paceTimer.ResetAt(c.pacedUntil)
			}
			break
		}
		n := c.cfg.MSS
		if !c.infinite && int64(n) > c.appQueue {
			n = int(c.appQueue)
		}
		s := c.getSeg()
		*s = seg{seq: c.sndNxt, len: n}
		c.segs.Push(s)
		c.sndNxt += uint64(n)
		if !c.infinite {
			c.appQueue -= int64(n)
		}
		c.transmitSeg(s, false)
		c.advancePacer(n + packet.HeaderLen)
	}
	c.armTimers()
}

// advancePacer charges one transmitted packet against the pacing budget.
// A rate-based controller (DCQCN) paces at its own rate from the first
// packet; window-based controllers pace at PacingFactor × cwnd/SRTT, with
// the initial window going out unpaced before an RTT sample exists.
func (c *Conn) advancePacer(wire int) {
	if c.ratePacer != nil {
		c.pacedUntil = max(c.pacedUntil, c.e.Now()) + c.ratePacer.PaceRate().TimeFor(wire)
		return
	}
	if c.cfg.PacingFactor <= 0 || c.srtt == 0 {
		return
	}
	rate := sim.Rate(c.cfg.PacingFactor * float64(c.effCwnd()) / c.srtt.Seconds())
	c.pacedUntil = max(c.pacedUntil, c.e.Now()) + rate.TimeFor(wire)
}

// getSeg/putSeg recycle segment records through a per-connection free
// list, so long flows stop allocating once their window is warm.
func (c *Conn) getSeg() *seg {
	if n := len(c.segFree); n > 0 {
		s := c.segFree[n-1]
		c.segFree[n-1] = nil
		c.segFree = c.segFree[:n-1]
		return s
	}
	return &seg{}
}

func (c *Conn) putSeg(s *seg) {
	c.segFree = append(c.segFree, s)
}

func (c *Conn) transmitSeg(s *seg, retx bool) {
	s.sentAt = c.e.Now()
	if retx {
		s.retx++
		c.Retransmits.Inc()
	}
	p := c.pool.Get()
	p.Flow = c.flow
	p.Seq = s.seq
	p.Ack = c.rcvNxt
	p.Flags = packet.FlagACK
	p.PayloadLen = s.len
	p.SentAt = s.sentAt
	if c.cfg.ECN {
		p.ECN = packet.ECT0
	}
	c.net.Transmit(p)
}

// armTimers (re-)arms RTO and TLP based on current flight.
func (c *Conn) armTimers() {
	if c.Flight() == 0 {
		c.rtoTimer.Stop()
		c.tlpTimer.Stop()
		c.tlpArmed = false
		return
	}
	if !c.rtoTimer.Pending() {
		c.rtoTimer.Reset(c.rto())
	}
	// TLP arms only with more than one segment in flight: a single-packet
	// message that is lost produces no dupacks and no probe, and must wait
	// for the full RTO (§2.2). Once armed, the probe persists across
	// cumulative ACKs (Linux semantics), so losing only the tail of a
	// burst is still probed.
	if c.cfg.TLP && !c.inRecovery && c.segs.Len() > 1 && !c.tlpArmed {
		if pto := c.pto(); pto < c.rto() {
			c.tlpTimer.Reset(pto)
			c.tlpArmed = true
		}
	}
}

// pto is the probe timeout: ~2 SRTT plus a delayed-ACK allowance so a
// receiver holding an ACK does not trigger spurious probes.
func (c *Conn) pto() sim.Time {
	pto := 2 * c.srtt
	if pto < c.cfg.TLPMin {
		pto = c.cfg.TLPMin
	}
	return pto + c.cfg.DelayedAckTimeout
}

func (c *Conn) rto() sim.Time {
	base := c.cfg.InitialRTO
	if c.srtt > 0 {
		base = c.srtt + 4*c.rttvar
	}
	if base < c.cfg.MinRTO {
		base = c.cfg.MinRTO
	}
	for i := 0; i < c.rtoBackoff; i++ {
		base *= 2
		if base >= c.cfg.MaxRTO {
			return c.cfg.MaxRTO
		}
	}
	return base
}

// Receive processes an inbound packet for this connection (called by the
// endpoint demultiplexer after the host's receive hooks have run).
func (c *Conn) Receive(p *packet.Packet) {
	if p.Flags.Has(packet.FlagCNP) {
		// Congestion notification (DCQCN): consumed by the rate
		// controller, never by the byte stream. A CNP reaching a
		// non-DCQCN connection is ignored, as real NICs do for flows
		// without rate limiters.
		if c.cnpSink != nil {
			c.cnpSink.OnCNP()
		}
		return
	}
	if p.Flags.Has(packet.FlagACK) {
		c.handleAck(p)
	}
	if p.IsData() {
		c.handleData(p)
	}
}

func (c *Conn) handleAck(p *packet.Packet) {
	if p.Ack > c.sndNxt {
		return // acks data never sent; ignore
	}
	c.applySack(p.SACK)
	newly := int64(p.Ack) - int64(c.sndUna)
	if newly <= 0 {
		// Duplicate ACK: only pure ACKs with outstanding data count.
		if p.Ack == c.sndUna && c.Flight() > 0 && !p.IsData() {
			c.dupAcks++
			if c.dupAcks == 3 && !c.inRecovery {
				c.enterRecovery()
			} else if c.inRecovery {
				// RACK-style: dupacks still arriving a full RTT after the
				// last reopen mean retransmissions were lost too; open a
				// new epoch so they become eligible again.
				reo := c.srtt
				if reo < c.cfg.TLPMin {
					reo = c.cfg.TLPMin
				}
				if c.e.Now()-c.lastEpochBump > reo {
					c.lastEpochBump = c.e.Now()
					c.recoveryEpoch++
				}
				c.sackRetransmit()
			}
		}
		return
	}

	c.sndUna = p.Ack
	c.AckedBytes.Add(newly)
	c.dupAcks = 0
	c.rtoBackoff = 0
	for c.segs.Len() > 0 {
		s := c.segs.Peek()
		if s.seq+uint64(s.len) > c.sndUna {
			break
		}
		c.segs.Pop()
		c.putSeg(s)
	}

	var rtt sim.Time
	if p.EchoTS > 0 && p.EchoTS <= c.e.Now() {
		rtt = c.e.Now() - p.EchoTS
		c.updateRTT(rtt)
	}
	// Symmetric to the receive side: a non-ECN sender never negotiated
	// ECN, so an ECE from an asymmetric peer is noise, not a signal.
	marked := c.cfg.ECN && p.Flags.Has(packet.FlagECE)
	if marked {
		c.MarkedAcks.Inc()
	}

	if c.inRecovery {
		if p.Ack >= c.recoverSeq {
			c.inRecovery = false
		} else {
			// Partial ACK: keep repairing holes (SACK-guided).
			c.sackRetransmit()
		}
	}

	c.cc.OnAck(AckEvent{
		Bytes:   int(newly),
		Marked:  marked,
		RTT:     rtt,
		AckSeq:  p.Ack,
		SndNxt:  c.sndNxt,
		Flight:  c.Flight(),
		INTUtil: p.INTEchoUtil,
		INTHops: int(p.INTEchoHops),
	})

	// Fresh RTO for the new head of line. An armed probe is re-armed
	// relative to this ACK so it keeps covering the remaining tail
	// without firing spuriously mid-transfer.
	c.rtoTimer.Stop()
	if c.Flight() == 0 {
		c.tlpTimer.Stop()
		c.tlpArmed = false
	} else if c.tlpArmed {
		c.tlpTimer.Reset(c.pto())
	}
	c.trySend()
}

func (c *Conn) enterRecovery() {
	c.inRecovery = true
	c.recoverSeq = c.sndNxt
	c.recoveryEpoch++
	c.lastEpochBump = c.e.Now()
	c.cc.OnLoss(LossFastRetransmit)
	if c.segs.Len() > 0 && !c.sackRetransmit() {
		// No SACK information: classic fast retransmit of the head.
		s := c.segs.Peek()
		s.epoch = c.recoveryEpoch
		c.transmitSeg(s, true)
	}
}

// applySack marks segments covered by the ACK's SACK blocks.
func (c *Conn) applySack(blocks []packet.SackBlock) {
	for _, b := range blocks {
		if b.Hi > c.highSacked {
			c.highSacked = b.Hi
		}
		for i := 0; i < c.segs.Len(); i++ {
			s := c.segs.At(i)
			if !s.sacked && s.seq >= b.Lo && s.seq+uint64(s.len) <= b.Hi {
				s.sacked = true
			}
		}
	}
}

// sackRetransmit repairs holes during recovery (a simplified RFC 6675
// pipe algorithm): segments below the highest SACKed sequence that are
// neither SACKed nor already retransmitted this epoch are lost; retransmit
// them while the outstanding unsacked data fits the window. Reports
// whether anything was retransmitted.
func (c *Conn) sackRetransmit() bool {
	// pipe: bytes presumed in flight — segments that are not SACKed and
	// are either above the SACK frontier (not yet deemed lost) or already
	// retransmitted this epoch. Pacing retransmissions against this keeps
	// recovery ACK-clocked instead of re-bursting a full window into an
	// already overflowing buffer.
	pipe := 0
	for i := 0; i < c.segs.Len(); i++ {
		s := c.segs.At(i)
		if s.sacked {
			continue
		}
		if s.epoch == c.recoveryEpoch || (s.seq >= c.highSacked && s.seq >= c.lostBelow) {
			pipe += s.len
		}
	}
	sent := false
	for i := 0; i < c.segs.Len(); i++ {
		s := c.segs.At(i)
		if pipe >= c.effCwnd() {
			break
		}
		if s.sacked || s.epoch == c.recoveryEpoch || (s.seq >= c.highSacked && s.seq >= c.lostBelow) {
			continue
		}
		s.epoch = c.recoveryEpoch
		c.transmitSeg(s, true)
		pipe += s.len
		sent = true
	}
	return sent
}

func (c *Conn) onRTO() {
	if c.Flight() == 0 {
		return
	}
	c.Timeouts.Inc()
	c.cc.OnLoss(LossTimeout)
	c.rtoBackoff++
	c.inRecovery = true
	c.recoverSeq = c.sndNxt
	// RFC 6675 after a timeout: the whole flight is deemed lost, not just
	// the head. Without this, a flight wiped out in one event (link flap)
	// with no SACKs above it recovers one segment per backed-off RTO.
	// sackRetransmit re-sends the lost range ACK-clocked as cwnd reopens.
	c.lostBelow = c.sndNxt
	c.recoveryEpoch++
	c.lastEpochBump = c.e.Now()
	c.dupAcks = 0
	if c.segs.Len() > 0 {
		s := c.segs.Peek()
		s.epoch = c.recoveryEpoch
		c.transmitSeg(s, true)
	}
	c.rtoTimer.Reset(c.rto())
}

func (c *Conn) onTLP() {
	c.tlpArmed = false
	if c.Flight() == 0 || c.inRecovery {
		return
	}
	// Probe: retransmit the highest-sequence unacked segment.
	c.TLPProbes.Inc()
	if c.segs.Len() > 0 {
		c.transmitSeg(c.segs.At(c.segs.Len()-1), true)
	}
}

func (c *Conn) updateRTT(rtt sim.Time) {
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
		return
	}
	d := c.srtt - rtt
	if d < 0 {
		d = -d
	}
	c.rttvar = (3*c.rttvar + d) / 4
	c.srtt = (7*c.srtt + rtt) / 8
}

func (c *Conn) handleData(p *packet.Packet) {
	// A non-ECN endpoint must not interpret CE: without the gate, a CE
	// codepoint set upstream (hostCC's marker or an ECN switch facing an
	// asymmetric peer) latched ceSinceLastAck and every later ACK echoed
	// a stale ECE that nothing would ever consume.
	ce := c.cfg.ECN && p.ECN == packet.CE
	if ce {
		c.ceSinceLastAck = true
	}
	c.lastDataSentAt = p.SentAt
	// INT echo: remember the worst per-hop utilization reported since the
	// last ACK, so delayed ACKs carry the peak, not the latest sample.
	if p.INTHops > 0 {
		if p.INTUtil > c.intMaxUtil {
			c.intMaxUtil = p.INTUtil
		}
		if p.INTHops > c.intMaxHops {
			c.intMaxHops = p.INTHops
		}
	}

	switch {
	case p.End() <= c.rcvNxt:
		// Fully old (spurious retransmission): ack immediately.
		c.sendAck()
	case p.Seq > c.rcvNxt:
		// Out of order: store and send an immediate duplicate ACK.
		c.insertOOO(interval{p.Seq, p.End()})
		c.sendAck()
	default:
		// In order (possibly overlapping): advance and merge.
		old := c.rcvNxt
		c.rcvNxt = p.End()
		c.mergeOOO()
		delivered := int(c.rcvNxt - old)
		c.DeliveredData.Add(int64(delivered))
		if c.onData != nil && delivered > 0 {
			c.onData(delivered)
		}
		c.scheduleAck(ce)
	}
}

// scheduleAck implements delayed ACKs with DCTCP's rule: any change in the
// CE state forces an immediate ACK so marking feedback stays byte-accurate.
func (c *Conn) scheduleAck(ce bool) {
	c.pendingAcks++
	if ce != c.lastCE || c.pendingAcks >= c.cfg.DelayedAckCount {
		c.lastCE = ce
		c.sendAck()
		return
	}
	c.lastCE = ce
	if !c.ackTimer.Pending() {
		c.ackTimer.Reset(c.cfg.DelayedAckTimeout)
	}
}

func (c *Conn) sendAck() {
	c.pendingAcks = 0
	c.ackTimer.Stop()
	ack := c.pool.Get()
	ack.Flow = c.flow
	ack.Ack = c.rcvNxt
	ack.Flags = packet.FlagACK
	ack.EchoTS = c.lastDataSentAt
	// Report the most recently touched range first (as TCP does), so the
	// sender's repair frontier (highest SACKed sequence) advances even
	// when there are more holes than reportable blocks.
	if c.lastOOO.hi > c.lastOOO.lo && c.lastOOO.hi > c.rcvNxt {
		ack.SACK = append(ack.SACK, packet.SackBlock{Lo: c.lastOOO.lo, Hi: c.lastOOO.hi})
	}
	for i := len(c.ooo) - 1; i >= 0 && len(ack.SACK) < packet.MaxSackBlocks; i-- {
		iv := c.ooo[i]
		if iv == c.lastOOO {
			continue
		}
		ack.SACK = append(ack.SACK, packet.SackBlock{Lo: iv.lo, Hi: iv.hi})
	}
	if c.ceSinceLastAck {
		ack.Flags |= packet.FlagECE
	}
	c.ceSinceLastAck = false
	ack.INTEchoUtil = c.intMaxUtil
	ack.INTEchoHops = c.intMaxHops
	c.intMaxUtil = 0
	c.intMaxHops = 0
	c.net.Transmit(ack)
}

func (c *Conn) insertOOO(iv interval) {
	for i, x := range c.ooo {
		if iv.lo <= x.hi && x.lo <= iv.hi { // overlap: extend
			if iv.lo < x.lo {
				x.lo = iv.lo
			}
			if iv.hi > x.hi {
				x.hi = iv.hi
			}
			c.ooo[i] = x
			c.lastOOO = x
			return
		}
	}
	c.ooo = append(c.ooo, iv)
	c.lastOOO = iv
}

func (c *Conn) mergeOOO() {
	for {
		advanced := false
		for i := 0; i < len(c.ooo); i++ {
			iv := c.ooo[i]
			if iv.lo <= c.rcvNxt {
				if iv.hi > c.rcvNxt {
					c.rcvNxt = iv.hi
				}
				c.ooo = append(c.ooo[:i], c.ooo[i+1:]...)
				advanced = true
				break
			}
		}
		if !advanced {
			return
		}
	}
}

// ReceivedBytes returns in-order bytes delivered to the application.
func (c *Conn) ReceivedBytes() int64 { return c.DeliveredData.Total() }

func (c *Conn) String() string {
	return fmt.Sprintf("conn %v cc=%s cwnd=%d flight=%d una=%d nxt=%d",
		c.flow, c.cc.Name(), c.cc.Cwnd(), c.Flight(), c.sndUna, c.sndNxt)
}

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	if c.MSS <= 0 {
		return fmt.Errorf("transport: MSS %d must be positive", c.MSS)
	}
	if c.MinRTO <= 0 || c.MaxRTO < c.MinRTO || c.InitialRTO <= 0 {
		return fmt.Errorf("transport: bad RTO bounds (min %v, max %v, initial %v)", c.MinRTO, c.MaxRTO, c.InitialRTO)
	}
	if c.TLP && c.TLPMin <= 0 {
		return fmt.Errorf("transport: TLP requires a positive TLPMin, got %v", c.TLPMin)
	}
	if c.DelayedAckCount < 0 || c.DelayedAckTimeout < 0 {
		return fmt.Errorf("transport: negative delayed-ACK parameters")
	}
	if c.MaxCwnd <= 0 || c.RcvWnd <= 0 {
		return fmt.Errorf("transport: MaxCwnd %d and RcvWnd %d must be positive", c.MaxCwnd, c.RcvWnd)
	}
	if c.PacingFactor < 0 {
		return fmt.Errorf("transport: negative PacingFactor %v", c.PacingFactor)
	}
	return nil
}

package transport

import (
	"math/rand"

	"repro/internal/packet"
	"repro/internal/sim"
)

// pipe is a test network: a bidirectional path between two endpoints with
// configurable delay, bandwidth, loss and an ECN-marking queue. It lets
// transport behaviour be tested without the full host datapath.
type pipe struct {
	e *sim.Engine

	delay     sim.Time
	rate      sim.Rate // 0 = infinite
	lossProb  float64
	markAt    int // queue bytes above which ECT packets are CE-marked; 0 = off
	bufBytes  int // drop-tail queue cap; 0 = unbounded
	rng       *rand.Rand
	filter    func(*packet.Packet) bool // drop packet when true
	tap       func(*packet.Packet)      // observe every transmitted packet
	tapMutate func(*packet.Packet)      // mutate packets in flight (e.g. CE-mark)

	eps map[packet.HostID]*Endpoint

	busyUntil sim.Time
	qBytes    int

	dropped int
	marked  int
}

func newPipe(e *sim.Engine, delay sim.Time) *pipe {
	return &pipe{
		e:     e,
		delay: delay,
		rng:   rand.New(rand.NewSource(99)),
		eps:   make(map[packet.HostID]*Endpoint),
	}
}

func (pp *pipe) attach(id packet.HostID, cfg Config) *Endpoint {
	ep := NewEndpoint(pp.e, id, pp, cfg)
	pp.eps[id] = ep
	return ep
}

func (pp *pipe) Transmit(p *packet.Packet) {
	if pp.tap != nil {
		pp.tap(p)
	}
	if pp.tapMutate != nil {
		pp.tapMutate(p)
	}
	if pp.filter != nil && pp.filter(p) {
		pp.dropped++
		return
	}
	if pp.lossProb > 0 && pp.rng.Float64() < pp.lossProb {
		pp.dropped++
		return
	}
	if pp.bufBytes > 0 && pp.qBytes+p.WireLen() > pp.bufBytes {
		pp.dropped++
		return
	}
	if pp.markAt > 0 && pp.qBytes > pp.markAt && p.ECN == packet.ECT0 {
		p.ECN = packet.CE
		pp.marked++
	}
	var txDone sim.Time
	if pp.rate > 0 {
		start := max(pp.e.Now(), pp.busyUntil)
		txDone = start + pp.rate.TimeFor(p.WireLen())
		pp.busyUntil = txDone
		pp.qBytes += p.WireLen()
	} else {
		txDone = pp.e.Now()
	}
	pp.e.At(txDone+pp.delay, func() {
		if pp.rate > 0 {
			pp.qBytes -= p.WireLen()
		}
		dst, ok := pp.eps[p.Flow.Dst]
		if !ok {
			panic("pipe: unknown destination")
		}
		dst.Receive(p)
	})
}

// testCfg returns a config tuned for fast unit tests: short RTO so loss
// recovery completes within microseconds-scale sims.
func testCfg(cc CCFactory) Config {
	cfg := DefaultConfig(4096)
	cfg.MinRTO = 2 * sim.Millisecond
	cfg.InitialRTO = 2 * sim.Millisecond
	cfg.TLPMin = 200 * sim.Microsecond
	cfg.CC = cc
	return cfg
}

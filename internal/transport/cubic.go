package transport

import (
	"math"

	"repro/internal/sim"
)

// cubic implements CUBIC (the Linux default), provided as an additional
// baseline: hostCC integrates with any ECN- or loss-based protocol (§4.3).
// Window growth follows W(t) = C(t-K)^3 + Wmax in MSS units, with the
// standard beta = 0.7 multiplicative decrease.
type cubic struct {
	e   *sim.Engine
	mss int

	cwnd     int
	ssthresh int

	wMax       float64  // window before the last reduction, in MSS
	epochStart sim.Time // time of the last reduction
	k          float64  // time (s) to regain wMax
}

const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// NewCubic returns a CUBIC factory.
func NewCubic() CCFactory {
	return func(e *sim.Engine, mss int) CongestionControl {
		return &cubic{e: e, mss: mss, cwnd: 10 * mss, ssthresh: 1 << 30}
	}
}

func (c *cubic) Name() string { return "cubic" }
func (c *cubic) Cwnd() int    { return c.cwnd }

func (c *cubic) OnAck(ev AckEvent) {
	if ev.Bytes <= 0 {
		return
	}
	if c.cwnd < c.ssthresh {
		c.cwnd += ev.Bytes
		if c.cwnd > c.ssthresh {
			c.cwnd = c.ssthresh
		}
		return
	}
	if c.epochStart == 0 {
		// First congestion-avoidance ACK of this epoch.
		c.epochStart = c.e.Now()
		if c.wMax == 0 {
			c.wMax = float64(c.cwnd) / float64(c.mss)
			c.k = 0
		}
	}
	t := (c.e.Now() - c.epochStart).Seconds()
	target := cubicC*math.Pow(t-c.k, 3) + c.wMax // in MSS
	cur := float64(c.cwnd) / float64(c.mss)
	if target > cur {
		// Approach the cubic target over the next RTT's worth of ACKs.
		inc := (target - cur) / cur * float64(ev.Bytes)
		c.cwnd += int(inc)
	} else {
		// TCP-friendly floor: at least Reno-rate growth.
		c.cwnd += int(float64(c.mss) * float64(ev.Bytes) / float64(c.cwnd) * 0.3)
	}
}

func (c *cubic) OnLoss(l LossEvent) {
	c.wMax = float64(c.cwnd) / float64(c.mss)
	c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
	c.epochStart = 0
	c.ssthresh = maxInt(int(float64(c.cwnd)*cubicBeta), 2*c.mss)
	if l == LossTimeout {
		c.cwnd = c.mss
	} else {
		c.cwnd = c.ssthresh
	}
}

package transport

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Endpoint is the per-host transport layer: it demultiplexes inbound
// packets to connections and creates receiver-side connections for
// listening ports (no handshake is modeled; connections are implicitly
// established, which is sufficient for the evaluation workloads).
type Endpoint struct {
	e    *sim.Engine
	id   packet.HostID
	net  Network
	cfg  Config
	cons map[packet.FlowID]*Conn
	lis  map[uint16]func(*Conn)

	nextPort uint16

	// StrayPackets counts packets with no connection or listener.
	StrayPackets int64
}

// NewEndpoint creates the transport layer for host id.
func NewEndpoint(e *sim.Engine, id packet.HostID, net Network, cfg Config) *Endpoint {
	if net == nil {
		panic("transport: nil network")
	}
	return &Endpoint{
		e:        e,
		id:       id,
		net:      net,
		cfg:      cfg,
		cons:     make(map[packet.FlowID]*Conn),
		lis:      make(map[uint16]func(*Conn)),
		nextPort: 10000,
	}
}

// Config returns the endpoint's connection configuration.
func (ep *Endpoint) Config() Config { return ep.cfg }

// Dial creates a connection to dst:port from an ephemeral source port.
func (ep *Endpoint) Dial(dst packet.HostID, port uint16) *Conn {
	ep.nextPort++
	return ep.DialFrom(ep.nextPort, dst, port)
}

// DialFrom creates a connection with an explicit source port.
func (ep *Endpoint) DialFrom(srcPort uint16, dst packet.HostID, dstPort uint16) *Conn {
	flow := packet.FlowID{Src: ep.id, Dst: dst, SrcPort: srcPort, DstPort: dstPort}
	if _, dup := ep.cons[flow]; dup {
		panic(fmt.Sprintf("transport: duplicate connection %v", flow))
	}
	c := newConn(ep.e, ep.net, flow, ep.cfg)
	ep.cons[flow] = c
	return c
}

// DialWith creates a connection with a per-connection config override.
func (ep *Endpoint) DialWith(srcPort uint16, dst packet.HostID, dstPort uint16, cfg Config) *Conn {
	flow := packet.FlowID{Src: ep.id, Dst: dst, SrcPort: srcPort, DstPort: dstPort}
	if _, dup := ep.cons[flow]; dup {
		panic(fmt.Sprintf("transport: duplicate connection %v", flow))
	}
	c := newConn(ep.e, ep.net, flow, cfg)
	ep.cons[flow] = c
	return c
}

// Listen accepts inbound flows on port; accept is invoked once per new
// flow with the receiver-side connection.
func (ep *Endpoint) Listen(port uint16, accept func(*Conn)) {
	if _, dup := ep.lis[port]; dup {
		panic(fmt.Sprintf("transport: duplicate listener on port %d", port))
	}
	ep.lis[port] = accept
}

// Receive demultiplexes one packet (called from the host's receive path,
// after hooks such as hostCC's ECN marker have run).
func (ep *Endpoint) Receive(p *packet.Packet) {
	// A packet addressed flow A->B is processed by B's connection whose
	// flow identifier is B->A.
	key := p.Flow.Reverse()
	if c, ok := ep.cons[key]; ok {
		c.Receive(p)
		return
	}
	if accept, ok := ep.lis[p.Flow.DstPort]; ok && p.IsData() {
		c := newConn(ep.e, ep.net, key, ep.cfg)
		ep.cons[key] = c
		accept(c)
		c.Receive(p)
		return
	}
	ep.StrayPackets++
}

// Conns returns all connections in sorted flow order (diagnostics).
// The stable order keeps any sim-visible use — iterating connections to
// schedule work or fold non-commutative state — deterministic despite
// the map-backed connection table.
func (ep *Endpoint) Conns() []*Conn {
	out := make([]*Conn, 0, len(ep.cons))
	for _, f := range ep.sortedFlows() {
		out = append(out, ep.cons[f])
	}
	return out
}

// RegisterInstruments registers endpoint-wide transport metrics under
// prefix, aggregated over all connections at read time.
func (ep *Endpoint) RegisterInstruments(reg *telemetry.Registry, prefix string) {
	sum := func(read func(*Conn) int64) func() float64 {
		return func() float64 {
			var t int64
			for _, c := range ep.cons {
				t += read(c)
			}
			return float64(t)
		}
	}
	reg.Counter(prefix+"/transport/retransmits", "pkts", "retransmitted packets",
		sum(func(c *Conn) int64 { return c.Retransmits.Total() }))
	reg.Counter(prefix+"/transport/timeouts", "events", "retransmission timeouts fired",
		sum(func(c *Conn) int64 { return c.Timeouts.Total() }))
	reg.Counter(prefix+"/transport/marked-acks", "acks", "ACKs carrying ECN-echo",
		sum(func(c *Conn) int64 { return c.MarkedAcks.Total() }))
	reg.Counter(prefix+"/transport/acked-bytes", "bytes", "bytes cumulatively ACKed",
		sum(func(c *Conn) int64 { return c.AckedBytes.Total() }))
	reg.Counter(prefix+"/transport/delivered-bytes", "bytes", "payload bytes delivered in order",
		sum(func(c *Conn) int64 { return c.DeliveredData.Total() }))
}

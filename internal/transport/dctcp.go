package transport

import "repro/internal/sim"

// dctcp implements DCTCP (Alizadeh et al., SIGCOMM 2010), the congestion
// control protocol the paper evaluates hostCC with. It maintains an EWMA
// of the fraction of ECN-marked bytes per window,
//
//	alpha <- (1-g)*alpha + g*F,  g = 1/16
//
// and on a window containing marks reduces cwnd by alpha/2. Because hostCC
// echoes host congestion through the same ECN bits a switch would use, an
// unmodified DCTCP responds to host congestion at RTT granularity — the
// paper's third key idea (§3.3, §4.3).
type dctcp struct {
	reno // growth behaviour and loss response are Reno's

	g     float64
	alpha float64

	windowEnd   uint64 // next window boundary (snd_nxt at last update)
	ackedBytes  int
	markedBytes int
	sawMark     bool
}

// DCTCPGain is the default EWMA gain g.
const DCTCPGain = 1.0 / 16

// NewDCTCP returns a DCTCP factory with the default gain.
func NewDCTCP() CCFactory { return NewDCTCPWithGain(DCTCPGain) }

// NewDCTCPWithGain returns a DCTCP factory with a custom EWMA gain
// (used by ablation benchmarks).
func NewDCTCPWithGain(g float64) CCFactory {
	return func(_ *sim.Engine, mss int) CongestionControl {
		return &dctcp{reno: *newReno(mss), g: g}
	}
}

func (d *dctcp) Name() string { return "dctcp" }

// Alpha exposes the congestion estimate (diagnostics and tests).
func (d *dctcp) Alpha() float64 { return d.alpha }

func (d *dctcp) OnAck(ev AckEvent) {
	if ev.Bytes > 0 {
		d.ackedBytes += ev.Bytes
		if ev.Marked {
			d.markedBytes += ev.Bytes
			d.sawMark = true
		}
	}

	// Window rollover: one alpha update and at most one reduction per RTT.
	if ev.AckSeq >= d.windowEnd {
		if d.ackedBytes > 0 {
			f := float64(d.markedBytes) / float64(d.ackedBytes)
			d.alpha = (1-d.g)*d.alpha + d.g*f
		}
		if d.sawMark {
			cw := float64(d.cwnd) * (1 - d.alpha/2)
			d.cwnd = maxInt(int(cw), 2*d.mss)
			d.ssthresh = d.cwnd
		}
		d.windowEnd = ev.SndNxt
		d.ackedBytes, d.markedBytes, d.sawMark = 0, 0, false
		if d.windowEnd <= ev.AckSeq {
			// Nothing in flight: next window starts at the next send.
			d.windowEnd = ev.AckSeq + 1
		}
	}

	// Growth: DCTCP grows exactly like Reno between reductions, but a
	// marked window must not also grow.
	if !d.sawMark {
		d.reno.OnAck(ev)
	}
}

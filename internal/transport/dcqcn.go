package transport

import "repro/internal/sim"

// DCQCNConfig parameterizes the DCQCN rate controller (Zhu et al.,
// SIGCOMM 2015). The hardware algorithm's constants assume multi-second
// flows; the defaults here keep the same structure but are scaled so the
// full decrease → fast-recovery → additive → hyper-increase ladder is
// exercised inside the simulation's tens-of-milliseconds windows. Each
// field documents the hardware value it scales.
type DCQCNConfig struct {
	// LineRate is the starting and maximum rate (hardware: port rate).
	LineRate sim.Rate
	// MinRate floors multiplicative decrease (hardware: ~40 Mbps).
	MinRate sim.Rate
	// Gain is g in alpha <- (1-g)*alpha + g on CNP arrival and the decay
	// factor between CNPs (hardware: 1/256).
	Gain float64
	// AlphaTimer is the alpha-decay period when no CNPs arrive
	// (hardware: 55 µs).
	AlphaTimer sim.Time
	// IncreaseTimer drives time-based rate-increase events (hardware:
	// 300 µs... 1.5 ms depending on firmware).
	IncreaseTimer sim.Time
	// IncreaseBytes drives byte-counter rate-increase events (hardware:
	// 10 MB; scaled down so short flows reach the increase stages).
	IncreaseBytes int
	// FastRecoverySteps is F: increase events spent returning to the
	// target rate before additive increase begins (hardware: 5).
	FastRecoverySteps int
	// AIRate is the additive-increase step Rai (hardware: 40 Mbps;
	// scaled up for convergence inside short runs).
	AIRate sim.Rate
	// HyperAIRate is the hyper-increase step Rhai applied when both the
	// timer and byte counter have exhausted fast recovery.
	HyperAIRate sim.Rate
}

// DefaultDCQCNConfig returns the sim-scaled parameter set for 100 Gbps.
func DefaultDCQCNConfig() DCQCNConfig {
	return DCQCNConfig{
		LineRate:          sim.Gbps(100),
		MinRate:           sim.Gbps(0.1),
		Gain:              1.0 / 256,
		AlphaTimer:        55 * sim.Microsecond,
		IncreaseTimer:     300 * sim.Microsecond,
		IncreaseBytes:     1 << 20,
		FastRecoverySteps: 5,
		AIRate:            sim.Gbps(2),
		HyperAIRate:       sim.Gbps(10),
	}
}

// dcqcn is the sender-side DCQCN rate machine. Unlike the window-based
// controllers it does not meaningfully bound flight with Cwnd (the
// connection's receive window does that); it exposes its current rate
// through the RatePacer interface, which the connection's pacer uses in
// place of the cwnd/SRTT formula. CNPs arrive through OnCNP.
type dcqcn struct {
	e   *sim.Engine
	cfg DCQCNConfig

	rc    sim.Rate // current (sending) rate
	rt    sim.Rate // target rate remembered at the last decrease
	alpha float64

	byteAcc    int // bytes toward the next byte-counter event
	timerCount int // increase events from the timer since last CNP
	byteCount  int // increase events from the byte counter since last CNP

	alphaTimer *sim.Timer
	incTimer   *sim.Timer
	started    bool

	// CNPs counts rate-decrease events (diagnostics and figures).
	CNPs int64
}

// NewDCQCN returns a DCQCN factory with the sim-scaled defaults.
func NewDCQCN() CCFactory { return NewDCQCNWithConfig(DefaultDCQCNConfig()) }

// NewDCQCNWithConfig returns a DCQCN factory with explicit parameters.
func NewDCQCNWithConfig(cfg DCQCNConfig) CCFactory {
	return func(e *sim.Engine, _ int) CongestionControl {
		d := &dcqcn{e: e, cfg: cfg, rc: cfg.LineRate, rt: cfg.LineRate}
		d.alphaTimer = sim.NewTimer(e, d.onAlphaTimer)
		d.incTimer = sim.NewTimer(e, d.onIncreaseTimer)
		return d
	}
}

func (d *dcqcn) Name() string { return "dcqcn" }

// Cwnd is effectively unbounded: DCQCN regulates rate, not window, so
// flight is limited by the connection's receive window.
func (d *dcqcn) Cwnd() int { return 1 << 30 }

// PaceRate implements RatePacer: the connection paces at the DCQCN rate.
func (d *dcqcn) PaceRate() sim.Rate { return d.rc }

// Rate returns the current sending rate (diagnostics and tests).
func (d *dcqcn) Rate() sim.Rate { return d.rc }

// TargetRate returns the recovery target (diagnostics and tests).
func (d *dcqcn) TargetRate() sim.Rate { return d.rt }

// Alpha returns the congestion estimate (diagnostics and tests).
func (d *dcqcn) Alpha() float64 { return d.alpha }

// OnCNP applies the DCQCN rate decrease: remember the current rate as
// the recovery target, bump alpha, and cut the rate by alpha/2.
func (d *dcqcn) OnCNP() {
	d.CNPs++
	d.rt = d.rc
	d.alpha = (1-d.cfg.Gain)*d.alpha + d.cfg.Gain
	d.rc = d.rc * sim.Rate(1-d.alpha/2)
	if d.rc < d.cfg.MinRate {
		d.rc = d.cfg.MinRate
	}
	d.timerCount, d.byteCount, d.byteAcc = 0, 0, 0
	d.started = true
	d.alphaTimer.Reset(d.cfg.AlphaTimer)
	d.incTimer.Reset(d.cfg.IncreaseTimer)
}

// OnAck feeds the byte counter; acknowledged bytes are the only ACK
// signal DCQCN uses (ECN echo is consumed as CNPs at the NIC instead).
func (d *dcqcn) OnAck(ev AckEvent) {
	if !d.started || ev.Bytes <= 0 {
		return
	}
	d.byteAcc += ev.Bytes
	for d.byteAcc >= d.cfg.IncreaseBytes {
		d.byteAcc -= d.cfg.IncreaseBytes
		d.byteCount++
		d.increase()
	}
}

// OnLoss halves the rate defensively. DCQCN's fabric is lossless, so a
// loss here means headroom exhaustion or injected faults — congestion
// signals stronger than any CNP.
func (d *dcqcn) OnLoss(l LossEvent) {
	d.rt = d.rc
	d.rc = d.rc / 2
	if d.rc < d.cfg.MinRate {
		d.rc = d.cfg.MinRate
	}
}

func (d *dcqcn) onAlphaTimer() {
	d.alpha *= 1 - d.cfg.Gain
	if d.idle() {
		d.started = false
		d.incTimer.Stop()
		return // fully recovered: go event-silent until the next CNP
	}
	d.alphaTimer.Reset(d.cfg.AlphaTimer)
}

func (d *dcqcn) onIncreaseTimer() {
	d.timerCount++
	d.increase()
	if d.started {
		d.incTimer.Reset(d.cfg.IncreaseTimer)
	}
}

// idle reports full recovery: rate restored and congestion estimate
// decayed to noise.
func (d *dcqcn) idle() bool {
	return d.rc >= d.cfg.LineRate && d.alpha < 1e-6
}

// increase runs one rate-increase event. The stage is selected by how
// many events each clock has produced since the last CNP: fast recovery
// (halve toward the target) while both are below F, additive increase
// once either passes F, hyper increase once both have.
func (d *dcqcn) increase() {
	F := d.cfg.FastRecoverySteps
	switch {
	case d.timerCount >= F && d.byteCount >= F:
		d.rt += d.cfg.HyperAIRate
	case d.timerCount >= F || d.byteCount >= F:
		d.rt += d.cfg.AIRate
	}
	if d.rt > d.cfg.LineRate {
		d.rt = d.cfg.LineRate
	}
	d.rc = (d.rt + d.rc) / 2
	if d.rc > d.cfg.LineRate {
		d.rc = d.cfg.LineRate
	}
}

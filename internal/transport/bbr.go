package transport

import (
	"fmt"

	"repro/internal/sim"
)

// BBRConfig parameterizes the BBR-like rate controller (Cardwell et al.,
// ACM Queue 2016). BBR models the path with two estimates — bottleneck
// bandwidth (windowed max of delivery-rate samples) and round-trip
// propagation delay (windowed min of RTT samples) — and paces at a gain
// times the bandwidth estimate, cycling gains to probe for more bandwidth
// and periodically draining the pipe to re-measure the floor RTT. The
// hardware constants assume multi-second flows; the defaults here keep
// the same structure scaled so startup, drain, the probe-bandwidth cycle
// and probe-RTT are all exercised inside the simulation's
// tens-of-milliseconds windows. Each field documents the Linux value it
// scales.
type BBRConfig struct {
	// LineRate caps the pacing rate (hardware: port rate); it is also the
	// ceiling of the bandwidth estimate.
	LineRate sim.Rate
	// InitRate seeds the bandwidth estimate before any delivery-rate
	// sample exists (Linux derives it from the initial cwnd and first
	// RTT; a tenth of line rate lands in the same regime).
	InitRate sim.Rate
	// MinRate floors the pacing rate (Linux: ~1.2 Mbps).
	MinRate sim.Rate
	// StartupGain is the pacing gain while searching for the bandwidth
	// ceiling (Linux: 2/ln2 ≈ 2.885, doubling the rate each RTT).
	StartupGain float64
	// DrainGain empties the queue startup built (Linux: ln2/2 ≈ 0.347).
	DrainGain float64
	// ProbeUpGain / ProbeDownGain bound the probe-bandwidth gain cycle
	// (Linux: 1.25 / 0.75); the remaining CycleLen-2 phases cruise at 1.
	ProbeUpGain   float64
	ProbeDownGain float64
	// CycleLen is the number of phases per probe-bandwidth cycle, one
	// RTprop each (Linux: 8).
	CycleLen int
	// BtlBwWindow is how many packet-timed rounds the bandwidth max
	// filter remembers (Linux: 10).
	BtlBwWindow int
	// RTpropWindow bounds the age of the RTprop estimate; when it goes
	// stale the controller enters probe-RTT (hardware: 10 s).
	RTpropWindow sim.Time
	// ProbeRTTDuration is how long probe-RTT holds the rate down so the
	// queue drains and a floor RTT can be observed (hardware: 200 ms).
	ProbeRTTDuration sim.Time
	// CwndGain scales the flight cap: cwnd = CwndGain × BtlBw × RTprop
	// (Linux: 2).
	CwndGain float64
	// FullBwThresh / FullBwRounds end startup: if the bandwidth estimate
	// grows less than FullBwThresh× in FullBwRounds consecutive rounds,
	// the pipe is full (Linux: 1.25 / 3).
	FullBwThresh float64
	FullBwRounds int
}

// DefaultBBRConfig returns the sim-scaled parameter set for 100 Gbps.
func DefaultBBRConfig() BBRConfig {
	return BBRConfig{
		LineRate:         sim.Gbps(100),
		InitRate:         sim.Gbps(10),
		MinRate:          sim.Gbps(0.1),
		StartupGain:      2.885,
		DrainGain:        1 / 2.885,
		ProbeUpGain:      1.25,
		ProbeDownGain:    0.75,
		CycleLen:         8,
		BtlBwWindow:      10,
		RTpropWindow:     2500 * sim.Microsecond,
		ProbeRTTDuration: 100 * sim.Microsecond,
		CwndGain:         2,
		FullBwThresh:     1.25,
		FullBwRounds:     3,
	}
}

// Validate reports the first invalid parameter.
func (c BBRConfig) Validate() error {
	if c.LineRate <= 0 || c.InitRate <= 0 || c.MinRate <= 0 {
		return fmt.Errorf("transport: bbr rates must be positive (line %v, init %v, min %v)",
			c.LineRate, c.InitRate, c.MinRate)
	}
	if c.MinRate > c.LineRate || c.InitRate > c.LineRate {
		return fmt.Errorf("transport: bbr MinRate %v and InitRate %v must not exceed LineRate %v",
			c.MinRate, c.InitRate, c.LineRate)
	}
	if c.StartupGain <= 1 {
		return fmt.Errorf("transport: bbr StartupGain %v must exceed 1", c.StartupGain)
	}
	if c.DrainGain <= 0 || c.DrainGain >= 1 {
		return fmt.Errorf("transport: bbr DrainGain %v outside (0,1)", c.DrainGain)
	}
	if c.ProbeUpGain <= 1 || c.ProbeDownGain <= 0 || c.ProbeDownGain >= 1 {
		return fmt.Errorf("transport: bbr probe gains must straddle 1 (up %v, down %v)",
			c.ProbeUpGain, c.ProbeDownGain)
	}
	if c.CycleLen < 2 {
		return fmt.Errorf("transport: bbr CycleLen %d must be at least 2", c.CycleLen)
	}
	if c.BtlBwWindow <= 0 {
		return fmt.Errorf("transport: bbr BtlBwWindow %d must be positive", c.BtlBwWindow)
	}
	if c.RTpropWindow <= 0 || c.ProbeRTTDuration <= 0 {
		return fmt.Errorf("transport: bbr probe-RTT timing must be positive (window %v, duration %v)",
			c.RTpropWindow, c.ProbeRTTDuration)
	}
	if c.ProbeRTTDuration >= c.RTpropWindow {
		return fmt.Errorf("transport: bbr ProbeRTTDuration %v must be below RTpropWindow %v",
			c.ProbeRTTDuration, c.RTpropWindow)
	}
	if c.CwndGain <= 0 {
		return fmt.Errorf("transport: bbr CwndGain %v must be positive", c.CwndGain)
	}
	if c.FullBwThresh <= 1 || c.FullBwRounds <= 0 {
		return fmt.Errorf("transport: bbr full-bandwidth detection needs FullBwThresh > 1 and positive FullBwRounds (got %v, %d)",
			c.FullBwThresh, c.FullBwRounds)
	}
	return nil
}

// bbr phases.
const (
	bbrStartup = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

// bbr is the sender-side BBR-like rate machine. It exposes its pacing
// rate through RatePacer (like DCQCN) and additionally bounds flight
// through Cwnd at CwndGain × estimated BDP, so a stale bandwidth
// estimate cannot keep pouring data into a collapsed path.
type bbr struct {
	e   *sim.Engine
	cfg BBRConfig
	mss int

	state int

	// btlBw is a windowed max over per-round delivery-rate maxima;
	// roundMax accumulates the current round.
	bwWin    []sim.Rate // ring of per-round maxima, BtlBwWindow long
	bwRounds int        // rounds recorded (ring fill)
	roundMax sim.Rate

	// rtProp is the windowed min RTT and its observation time.
	rtProp   sim.Time
	rtPropAt sim.Time

	// Packet-timed rounds: a round ends when the cumulative ACK passes
	// the SndNxt recorded at the previous round end.
	nextRoundSeq uint64
	lastAckAt    sim.Time

	// Startup full-pipe detection.
	fullBw      sim.Rate
	fullBwCount int
	fullBwSeen  bool

	// Probe-bandwidth gain cycle.
	cycleIdx   int
	cycleStamp sim.Time

	// Probe-RTT bookkeeping.
	probeRTTDone sim.Time
	prevState    int
}

// NewBBR returns a BBR-like factory with the sim-scaled defaults.
func NewBBR() CCFactory { return NewBBRWithConfig(DefaultBBRConfig()) }

// NewBBRWithConfig returns a BBR-like factory with explicit parameters.
func NewBBRWithConfig(cfg BBRConfig) CCFactory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return func(e *sim.Engine, mss int) CongestionControl {
		return &bbr{
			e:     e,
			cfg:   cfg,
			mss:   mss,
			state: bbrStartup,
			bwWin: make([]sim.Rate, cfg.BtlBwWindow),
		}
	}
}

func (b *bbr) Name() string { return "bbr" }

// btlBw is the max of the per-round maxima still in the window, floored
// at InitRate until real samples exist.
func (b *bbr) btlBw() sim.Rate {
	var m sim.Rate
	n := b.bwRounds
	if n > len(b.bwWin) {
		n = len(b.bwWin)
	}
	for i := 0; i < n; i++ {
		if b.bwWin[i] > m {
			m = b.bwWin[i]
		}
	}
	if b.roundMax > m {
		m = b.roundMax
	}
	if m <= 0 {
		m = b.cfg.InitRate
	}
	if m > b.cfg.LineRate {
		m = b.cfg.LineRate
	}
	return m
}

// gain returns the pacing gain of the current state/phase.
func (b *bbr) gain() float64 {
	switch b.state {
	case bbrStartup:
		return b.cfg.StartupGain
	case bbrDrain:
		return b.cfg.DrainGain
	case bbrProbeRTT:
		return b.cfg.DrainGain
	}
	switch b.cycleIdx {
	case 0:
		return b.cfg.ProbeUpGain
	case 1:
		return b.cfg.ProbeDownGain
	}
	return 1
}

// PaceRate implements RatePacer: gain × bandwidth estimate, clamped.
func (b *bbr) PaceRate() sim.Rate {
	r := sim.Rate(b.gain() * float64(b.btlBw()))
	if r < b.cfg.MinRate {
		r = b.cfg.MinRate
	}
	if r > b.cfg.LineRate {
		r = b.cfg.LineRate
	}
	return r
}

// Cwnd bounds flight at CwndGain × BDP; unbounded before an RTT sample.
func (b *bbr) Cwnd() int {
	if b.rtProp <= 0 {
		return 1 << 30
	}
	bdp := float64(b.btlBw()) * b.rtProp.Seconds()
	w := int(b.cfg.CwndGain * bdp)
	if min := 4 * b.mss; w < min {
		w = min
	}
	return w
}

// State returns the current phase (diagnostics and tests): "startup",
// "drain", "probe-bw", "probe-rtt".
func (b *bbr) State() string {
	switch b.state {
	case bbrStartup:
		return "startup"
	case bbrDrain:
		return "drain"
	case bbrProbeRTT:
		return "probe-rtt"
	}
	return "probe-bw"
}

// BtlBw returns the bandwidth estimate (diagnostics and tests).
func (b *bbr) BtlBw() sim.Rate { return b.btlBw() }

// RTprop returns the propagation-delay estimate (diagnostics and tests).
func (b *bbr) RTprop() sim.Time { return b.rtProp }

func (b *bbr) OnAck(ev AckEvent) {
	if ev.Bytes <= 0 {
		return
	}
	now := b.e.Now()

	// Idle restart: an ACK silence longer than the RTprop window (a link
	// flap, a fault window, an app pause) invalidates the windowed min —
	// the path may have changed while no sample could observe it, and
	// probe-RTT only refreshes the estimate's age, never the pinned
	// minimum itself. Restart the filter from the first post-idle sample.
	idleRestart := b.lastAckAt > 0 && now-b.lastAckAt > b.cfg.RTpropWindow

	// Delivery-rate sample: acknowledged bytes over the inter-ACK gap.
	// With delayed ACKs the gap is the bottleneck's serialization time
	// for the acked bytes, so the sample tracks the bottleneck rate.
	if b.lastAckAt > 0 && now > b.lastAckAt && !idleRestart {
		bw := sim.Rate(float64(ev.Bytes) / (now - b.lastAckAt).Seconds())
		if bw > b.cfg.LineRate {
			bw = b.cfg.LineRate
		}
		if bw > b.roundMax {
			b.roundMax = bw
		}
	}
	b.lastAckAt = now

	// RTprop: windowed min, refreshed whenever an equal-or-lower sample
	// arrives, and rebuilt from scratch after an idle restart.
	if ev.RTT > 0 && (b.rtProp <= 0 || ev.RTT <= b.rtProp || idleRestart) {
		b.rtProp = ev.RTT
		b.rtPropAt = now
	}

	// Round accounting.
	if ev.AckSeq >= b.nextRoundSeq {
		b.nextRoundSeq = ev.SndNxt
		b.onRoundEnd()
	}

	b.advanceState(ev, now)
}

// onRoundEnd rolls the per-round bandwidth max into the window and runs
// startup's full-pipe detection.
func (b *bbr) onRoundEnd() {
	b.bwWin[b.bwRounds%len(b.bwWin)] = b.roundMax
	b.bwRounds++
	b.roundMax = 0

	if b.state == bbrStartup {
		bw := b.btlBw()
		if float64(bw) >= b.cfg.FullBwThresh*float64(b.fullBw) {
			b.fullBw = bw
			b.fullBwCount = 0
			return
		}
		b.fullBwCount++
		if b.fullBwCount >= b.cfg.FullBwRounds {
			b.fullBwSeen = true
			b.state = bbrDrain
		}
	}
}

// advanceState runs the drain → probe-bw handoff, the probe-bw gain
// cycle, and probe-RTT entry/exit.
func (b *bbr) advanceState(ev AckEvent, now sim.Time) {
	// Probe-RTT: enter from any state when the RTprop estimate goes
	// stale; exit after ProbeRTTDuration at drain gain.
	if b.state == bbrProbeRTT {
		if now >= b.probeRTTDone {
			b.rtPropAt = now // the drained floor is the freshest estimate
			b.state = b.prevState
			if b.state == bbrProbeBW {
				b.cycleIdx = 0
				b.cycleStamp = now
			}
		}
		return
	}
	if b.rtProp > 0 && now-b.rtPropAt > b.cfg.RTpropWindow {
		b.prevState = b.state
		if b.prevState == bbrDrain {
			b.prevState = bbrProbeBW
		}
		b.state = bbrProbeRTT
		b.probeRTTDone = now + b.cfg.ProbeRTTDuration
		return
	}

	switch b.state {
	case bbrDrain:
		// Drain until flight fits one BDP, then cruise.
		if b.rtProp > 0 && float64(ev.Flight) <= float64(b.btlBw())*b.rtProp.Seconds() {
			b.state = bbrProbeBW
			b.cycleIdx = 0
			b.cycleStamp = now
		}
	case bbrProbeBW:
		// Advance the gain cycle one phase per RTprop. The down phase
		// ends early once flight is back under a BDP (Linux semantics),
		// so the probe's queue is drained, not sustained.
		phase := b.rtProp
		if phase <= 0 {
			return
		}
		if b.cycleIdx == 1 && float64(ev.Flight) <= float64(b.btlBw())*b.rtProp.Seconds() {
			b.cycleIdx = 2
			b.cycleStamp = now
			return
		}
		if now-b.cycleStamp >= phase {
			b.cycleIdx = (b.cycleIdx + 1) % b.cfg.CycleLen
			b.cycleStamp = now
		}
	}
}

// OnLoss: BBR does not react to isolated fast retransmits (loss is not a
// congestion signal in its model), but an RTO means the path estimate is
// badly stale — halve the bandwidth window and restart the search.
func (b *bbr) OnLoss(l LossEvent) {
	if l != LossTimeout {
		return
	}
	n := b.bwRounds
	if n > len(b.bwWin) {
		n = len(b.bwWin)
	}
	for i := 0; i < n; i++ {
		b.bwWin[i] /= 2
	}
	b.roundMax /= 2
	if !b.fullBwSeen {
		return
	}
	b.state = bbrProbeBW
	b.cycleIdx = 2 // cruise; the halved estimate is the new baseline
	b.cycleStamp = b.e.Now()
}

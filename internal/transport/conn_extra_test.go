package transport

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
)

// jitterPipe delivers packets with random extra delay, causing reordering.
type jitterPipe struct {
	*pipe
	jitter sim.Time
}

func (jp *jitterPipe) Transmit(p *packet.Packet) {
	if jp.tap != nil {
		jp.tap(p)
	}
	d := jp.delay + sim.Time(jp.rng.Int63n(int64(jp.jitter)+1))
	jp.e.After(d, func() {
		dst, ok := jp.eps[p.Flow.Dst]
		if !ok {
			panic("jitterPipe: unknown destination")
		}
		dst.Receive(p)
	})
}

// Property: arbitrary reordering never corrupts the byte stream — all
// bytes delivered exactly once even when packets arrive out of order.
func TestDeliveryUnderReorderingProperty(t *testing.T) {
	f := func(seed int64, jitterUs uint8, sizeKB uint8) bool {
		e := sim.NewEngine(seed)
		base := newPipe(e, 5*sim.Microsecond)
		base.rng = rand.New(rand.NewSource(seed))
		jp := &jitterPipe{pipe: base, jitter: sim.Time(jitterUs%50+1) * sim.Microsecond}
		// Endpoints must transmit via the jitter pipe.
		sender := NewEndpoint(e, 1, jp, testCfg(NewDCTCP()))
		receiver := NewEndpoint(e, 2, jp, testCfg(NewDCTCP()))
		jp.eps[1] = sender
		jp.eps[2] = receiver
		var got int64
		receiver.Listen(5000, func(c *Conn) {
			c.OnData(func(n int) { got += int64(n) })
		})
		total := (int(sizeKB%128) + 1) * 1024
		sender.Dial(2, 5000).Send(total)
		e.RunUntil(30 * sim.Second)
		return got == int64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Fatal(err)
	}
}

func TestSACKRepairsBurstLossWithoutTimeout(t *testing.T) {
	// Drop a contiguous burst mid-window: SACK-guided recovery must
	// repair every hole without an RTO.
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	cfg := testCfg(NewDCTCP())
	sender := pp.attach(1, cfg)
	receiver := pp.attach(2, cfg)
	var got int64
	receiver.Listen(5000, func(c *Conn) {
		c.OnData(func(n int) { got += int64(n) })
	})
	c := sender.Dial(2, 5000)
	n := 0
	var maxSeq uint64
	pp.filter = func(p *packet.Packet) bool {
		if !p.IsData() {
			return false
		}
		if p.Seq < maxSeq {
			return false // retransmission: let it through
		}
		maxSeq = p.End()
		n++
		return n >= 10 && n < 18 // burst of 8 originals
	}
	total := 60 * cfg.MSS
	c.Send(total)
	e.RunUntil(cfg.MinRTO) // must finish before an RTO could help
	if got != int64(total) {
		t.Fatalf("delivered %d of %d before min RTO", got, total)
	}
	if c.Timeouts.Total() != 0 {
		t.Fatalf("burst repaired only via %d timeouts", c.Timeouts.Total())
	}
	if c.Retransmits.Total() < 8 {
		t.Fatalf("only %d retransmits for an 8-segment burst", c.Retransmits.Total())
	}
}

func TestPacingSpreadsTransmissions(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 50*sim.Microsecond)
	cfg := testCfg(NewDCTCP())
	cfg.PacingFactor = 2.0
	sender := pp.attach(1, cfg)
	receiver := pp.attach(2, cfg)
	receiver.Listen(5000, func(c *Conn) {})
	var sendTimes []sim.Time
	pp.tap = func(p *packet.Packet) {
		if p.IsData() {
			sendTimes = append(sendTimes, e.Now())
		}
	}
	c := sender.Dial(2, 5000)
	c.SetInfiniteSource(true)
	e.RunUntil(5 * sim.Millisecond)
	if c.SRTT() == 0 {
		t.Fatal("no RTT estimate")
	}
	// After the first RTT, gaps must respect the pacing rate: count how
	// many consecutive sends are (near-)simultaneous.
	bursty := 0
	for i := 1; i < len(sendTimes); i++ {
		if sendTimes[i]-sendTimes[i-1] < 100 && sendTimes[i] > 2*c.SRTT() {
			bursty++
		}
	}
	if frac := float64(bursty) / float64(len(sendTimes)); frac > 0.05 {
		t.Fatalf("%.1f%% of transmissions back-to-back despite pacing", frac*100)
	}

	// Unpaced control: bursts dominate.
	e2 := sim.NewEngine(1)
	pp2 := newPipe(e2, 50*sim.Microsecond)
	cfg2 := testCfg(NewDCTCP())
	cfg2.PacingFactor = 0
	s2 := pp2.attach(1, cfg2)
	r2 := pp2.attach(2, cfg2)
	r2.Listen(5000, func(c *Conn) {})
	var times2 []sim.Time
	pp2.tap = func(p *packet.Packet) {
		if p.IsData() {
			times2 = append(times2, e2.Now())
		}
	}
	c2 := s2.Dial(2, 5000)
	c2.SetInfiniteSource(true)
	e2.RunUntil(5 * sim.Millisecond)
	bursty2 := 0
	for i := 1; i < len(times2); i++ {
		if times2[i]-times2[i-1] < 100 && times2[i] > 2*c2.SRTT() {
			bursty2++
		}
	}
	if bursty2 == 0 {
		t.Fatal("unpaced control shows no bursts; test not discriminating")
	}
}

func TestFlightNeverExceedsReceiveWindow(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	pp.rate = sim.Gbps(10)
	cfg := testCfg(NewDCTCP())
	cfg.RcvWnd = 64 * 1024
	sender := pp.attach(1, cfg)
	receiver := pp.attach(2, cfg)
	receiver.Listen(5000, func(c *Conn) {})
	c := sender.Dial(2, 5000)
	c.SetInfiniteSource(true)
	maxFlight := 0
	tick := sim.NewTicker(e, 10*sim.Microsecond, func() {
		if c.Flight() > maxFlight {
			maxFlight = c.Flight()
		}
	})
	e.RunUntil(20 * sim.Millisecond)
	tick.Stop()
	// One MSS of overshoot is permitted by the send loop.
	if maxFlight > cfg.RcvWnd+cfg.MSS {
		t.Fatalf("flight %d exceeded rcvwnd %d", maxFlight, cfg.RcvWnd)
	}
	if maxFlight < cfg.RcvWnd/2 {
		t.Fatalf("flight %d never approached rcvwnd; window not exercised", maxFlight)
	}
}

func TestImmediateAckOnCEChange(t *testing.T) {
	// DCTCP's delayed-ACK rule: a change in CE state forces an immediate
	// ACK so marking feedback stays accurate.
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	cfg := testCfg(NewDCTCP())
	cfg.DelayedAckCount = 100 // delay aggressively unless CE changes
	cfg.DelayedAckTimeout = 10 * sim.Millisecond
	sender := pp.attach(1, cfg)
	receiver := pp.attach(2, cfg)
	receiver.Listen(5000, func(c *Conn) {})
	acks := 0
	pp.tap = func(p *packet.Packet) {
		if !p.IsData() && p.Flags.Has(packet.FlagACK) {
			acks++
		}
	}
	// Mark every 5th data packet CE: each on->off and off->on transition
	// must produce an immediate ACK.
	nData := 0
	pp.markAt = 0
	pp.filter = nil
	markNext := func(p *packet.Packet) {
		if p.IsData() {
			nData++
			if nData%5 == 0 && p.ECN == packet.ECT0 {
				p.ECN = packet.CE
			}
		}
	}
	pp.tapMutate = markNext
	c := sender.Dial(2, 5000)
	c.Send(40 * cfg.MSS)
	e.RunUntil(100 * sim.Millisecond)
	// 40 packets, a CE transition every ~5 packets: at least ~12 ACKs
	// despite DelayedAckCount=100.
	if acks < 10 {
		t.Fatalf("only %d ACKs; CE changes should force immediate ACKs", acks)
	}
}

func TestConnStringAndAccessors(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 10)
	ep := pp.attach(1, testCfg(NewDCTCP()))
	c := ep.DialFrom(99, 2, 5000)
	if c.Flow().SrcPort != 99 {
		t.Fatalf("flow = %v", c.Flow())
	}
	if c.CC().Name() != "dctcp" {
		t.Fatalf("cc = %s", c.CC().Name())
	}
	if s := c.String(); s == "" {
		t.Fatal("empty String()")
	}
	if c.ReceivedBytes() != 0 {
		t.Fatal("fresh conn has received bytes")
	}
	defer func() {
		if recover() == nil {
			t.Error("Send(0) did not panic")
		}
	}()
	c.Send(0)
}

// Property: the receiver reassembles any permutation of segments —
// rcvNxt reaches the total once every segment has been delivered,
// regardless of arrival order.
func TestReassemblyPermutationProperty(t *testing.T) {
	f := func(seed int64, nSegs uint8) bool {
		n := int(nSegs%20) + 1
		e := sim.NewEngine(seed)
		pp := newPipe(e, 1)
		pp.attach(1, testCfg(NewDCTCP())) // ACK sink
		ep := pp.attach(2, testCfg(NewDCTCP()))
		var got int64
		ep.Listen(5000, func(c *Conn) {
			c.OnData(func(k int) { got += int64(k) })
		})
		// Build n segments of 100B and deliver them in a random order.
		order := rand.New(rand.NewSource(seed)).Perm(n)
		for _, i := range order {
			ep.Receive(&packet.Packet{
				Flow:       packet.FlowID{Src: 1, Dst: 2, SrcPort: 9, DstPort: 5000},
				Seq:        uint64(i * 100),
				PayloadLen: 100,
				Flags:      packet.FlagACK,
			})
		}
		e.Run()
		return got == int64(n*100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Duplicate and overlapping segments must not double-deliver bytes.
func TestReassemblyDuplicatesAndOverlaps(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 1)
	pp.attach(1, testCfg(NewDCTCP())) // ACK sink
	ep := pp.attach(2, testCfg(NewDCTCP()))
	var got int64
	ep.Listen(5000, func(c *Conn) {
		c.OnData(func(k int) { got += int64(k) })
	})
	deliver := func(seq uint64, n int) {
		ep.Receive(&packet.Packet{
			Flow:       packet.FlowID{Src: 1, Dst: 2, SrcPort: 9, DstPort: 5000},
			Seq:        seq,
			PayloadLen: n,
			Flags:      packet.FlagACK,
		})
	}
	deliver(0, 100)
	deliver(0, 100)   // exact duplicate
	deliver(50, 100)  // overlaps delivered data
	deliver(200, 100) // gap
	deliver(100, 200) // covers the gap and overlaps the ooo range
	e.Run()
	if got != 300 {
		t.Fatalf("delivered %d bytes, want exactly 300", got)
	}
}

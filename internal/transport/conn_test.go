package transport

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
)

func TestBulkTransferDeliversAllBytes(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	sender := pp.attach(1, testCfg(NewDCTCP()))
	receiver := pp.attach(2, testCfg(NewDCTCP()))

	var got int64
	receiver.Listen(5000, func(c *Conn) {
		c.OnData(func(n int) { got += int64(n) })
	})
	c := sender.Dial(2, 5000)
	const total = 1 << 20
	c.Send(total)
	e.Run()
	if got != total {
		t.Fatalf("delivered %d of %d bytes", got, total)
	}
	if c.Retransmits.Total() != 0 || c.Timeouts.Total() != 0 {
		t.Fatalf("lossless path saw %d retransmits, %d timeouts",
			c.Retransmits.Total(), c.Timeouts.Total())
	}
}

// Property: for any loss rate up to 30% and any seed, every byte is
// delivered exactly once, in order.
func TestReliabilityUnderRandomLossProperty(t *testing.T) {
	f := func(seed int64, lossPct uint8, sizeKB uint8) bool {
		loss := float64(lossPct%31) / 100
		total := (int(sizeKB%64) + 1) * 1024
		e := sim.NewEngine(seed)
		pp := newPipe(e, 5*sim.Microsecond)
		pp.lossProb = loss
		pp.rng = rand.New(rand.NewSource(seed))
		sender := pp.attach(1, testCfg(NewDCTCP()))
		receiver := pp.attach(2, testCfg(NewDCTCP()))
		var got int64
		receiver.Listen(5000, func(c *Conn) {
			c.OnData(func(n int) { got += int64(n) })
		})
		c := sender.Dial(2, 5000)
		c.Send(total)
		e.RunUntil(60 * sim.Second) // plenty of RTO retries
		return got == int64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

func TestFastRetransmitOnTripleDupAck(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	cfg := testCfg(NewReno())
	cfg.TLP = false
	sender := pp.attach(1, cfg)
	receiver := pp.attach(2, cfg)
	var got int64
	receiver.Listen(5000, func(c *Conn) {
		c.OnData(func(n int) { got += int64(n) })
	})
	c := sender.Dial(2, 5000)

	// Drop exactly the 3rd data packet using a one-shot filter.
	n := 0
	origLoss := pp.lossProb
	_ = origLoss
	drop := func(p *packet.Packet) bool {
		if p.IsData() {
			n++
			return n == 3
		}
		return false
	}
	pp.filter = drop
	c.Send(40 * cfg.MSS)
	e.Run()
	if got != int64(40*cfg.MSS) {
		t.Fatalf("delivered %d", got)
	}
	if c.Timeouts.Total() != 0 {
		t.Fatalf("fast retransmit should have avoided the %d timeouts", c.Timeouts.Total())
	}
	if c.Retransmits.Total() == 0 {
		t.Fatal("no retransmission recorded")
	}
}

func TestSingleSegmentLossRequiresRTO(t *testing.T) {
	// A 1-segment message whose packet is lost can only recover via RTO
	// (no dupacks, no TLP with one segment in flight) — the reason small
	// RPCs suffer 200ms tails in Figure 4.
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	cfg := testCfg(NewDCTCP())
	sender := pp.attach(1, cfg)
	receiver := pp.attach(2, cfg)
	var gotAt sim.Time
	receiver.Listen(5000, func(c *Conn) {
		c.OnData(func(int) { gotAt = e.Now() })
	})
	c := sender.Dial(2, 5000)
	n := 0
	pp.filter = func(p *packet.Packet) bool {
		if p.IsData() {
			n++
			return n == 1
		}
		return false
	}
	c.Send(100) // single small segment
	e.Run()
	if c.Timeouts.Total() != 1 {
		t.Fatalf("timeouts = %d, want 1", c.Timeouts.Total())
	}
	if gotAt < cfg.MinRTO {
		t.Fatalf("recovered at %v, before the min RTO %v", gotAt, cfg.MinRTO)
	}
}

func TestTLPRecoversTailLossWithoutRTO(t *testing.T) {
	// Drop the LAST segment of a multi-segment burst: no dupacks arrive,
	// but TLP probes it after ~2 SRTT, far sooner than the RTO.
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	cfg := testCfg(NewDCTCP())
	sender := pp.attach(1, cfg)
	receiver := pp.attach(2, cfg)
	var got int64
	var doneAt sim.Time
	total := 5 * cfg.MSS
	receiver.Listen(5000, func(c *Conn) {
		c.OnData(func(n int) {
			got += int64(n)
			if got == int64(total) {
				doneAt = e.Now()
			}
		})
	})
	c := sender.Dial(2, 5000)
	n := 0
	pp.filter = func(p *packet.Packet) bool {
		if p.IsData() {
			n++
			return n == 5 // the tail segment
		}
		return false
	}
	c.Send(total)
	e.Run()
	if got != int64(total) {
		t.Fatalf("delivered %d of %d", got, total)
	}
	if c.TLPProbes.Total() == 0 {
		t.Fatal("no TLP probe fired")
	}
	if c.Timeouts.Total() != 0 {
		t.Fatalf("TLP should have avoided the RTO (timeouts=%d)", c.Timeouts.Total())
	}
	if doneAt >= cfg.MinRTO {
		t.Fatalf("recovery at %v not faster than min RTO %v", doneAt, cfg.MinRTO)
	}
}

func TestRTOExponentialBackoff(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	cfg := testCfg(NewDCTCP())
	sender := pp.attach(1, cfg)
	pp.attach(2, cfg)
	c := sender.Dial(2, 5000)
	pp.lossProb = 1.0 // blackout
	c.Send(100)
	e.RunUntil(40 * sim.Millisecond)
	// Timeouts at 2, 2+4, 2+4+8, 2+4+8+16ms... => 4 by t=40ms.
	if got := c.Timeouts.Total(); got < 3 || got > 5 {
		t.Fatalf("timeouts = %d in 40ms with 2ms base RTO, want ~4 (backoff)", got)
	}
}

func TestECNMarkEchoedAndSeenByCC(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	pp.rate = sim.Gbps(10) // create queueing
	pp.markAt = 3 * 4096   // mark above ~3 packets
	cfg := testCfg(NewDCTCP())
	sender := pp.attach(1, cfg)
	receiver := pp.attach(2, cfg)
	receiver.Listen(5000, func(c *Conn) {})
	c := sender.Dial(2, 5000)
	c.SetInfiniteSource(true)
	e.RunUntil(20 * sim.Millisecond)
	if pp.marked == 0 {
		t.Fatal("pipe never marked; test misconfigured")
	}
	if c.MarkedAcks.Total() == 0 {
		t.Fatal("no ECE-marked ACKs at the sender")
	}
	d := c.CC().(*dctcp)
	if d.Alpha() <= 0 {
		t.Fatal("DCTCP alpha stayed zero despite marks")
	}
	if d.Alpha() > 1 {
		t.Fatalf("alpha = %v out of range", d.Alpha())
	}
}

func TestDCTCPKeepsQueueShorterThanReno(t *testing.T) {
	run := func(cc CCFactory) int {
		e := sim.NewEngine(1)
		pp := newPipe(e, 10*sim.Microsecond)
		pp.rate = sim.Gbps(10)
		pp.markAt = 3 * 4096
		cfg := testCfg(cc)
		sender := pp.attach(1, cfg)
		receiver := pp.attach(2, cfg)
		receiver.Listen(5000, func(c *Conn) {})
		c := sender.Dial(2, 5000)
		c.SetInfiniteSource(true)
		maxQ := 0
		tick := sim.NewTicker(e, 50*sim.Microsecond, func() {
			if pp.qBytes > maxQ {
				maxQ = pp.qBytes
			}
		})
		e.RunUntil(30 * sim.Millisecond)
		tick.Stop()
		return maxQ
	}
	dq, rq := run(NewDCTCP()), run(NewReno())
	if dq >= rq {
		t.Fatalf("DCTCP max queue %d not below Reno %d", dq, rq)
	}
}

func TestThroughputReachesBottleneck(t *testing.T) {
	for _, cc := range []struct {
		name string
		f    CCFactory
	}{{"dctcp", NewDCTCP()}, {"reno", NewReno()}, {"cubic", NewCubic()}} {
		t.Run(cc.name, func(t *testing.T) {
			e := sim.NewEngine(1)
			pp := newPipe(e, 10*sim.Microsecond)
			pp.rate = sim.Gbps(10)
			// Mark above the path BDP (10Gbps x ~20us = 25KB) so the
			// window can cover the pipe, and cap the queue so loss-based
			// protocols get a loss signal instead of unbounded bloat.
			pp.markAt = 16 * 4096
			pp.bufBytes = 256 << 10
			cfg := testCfg(cc.f)
			sender := pp.attach(1, cfg)
			receiver := pp.attach(2, cfg)
			var got int64
			receiver.Listen(5000, func(c *Conn) {
				c.OnData(func(n int) { got += int64(n) })
			})
			sender.Dial(2, 5000).SetInfiniteSource(true)
			e.RunUntil(20 * sim.Millisecond)
			gbps := float64(got) * 8 / e.Now().Seconds() / 1e9
			if gbps < 7.5 {
				t.Fatalf("%s achieved %.2f Gbps of 10", cc.name, gbps)
			}
		})
	}
}

func TestDelayCCKeepsRTTNearTarget(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	pp.rate = sim.Gbps(10)
	target := 100 * sim.Microsecond
	cfg := testCfg(NewDelayCC(target))
	sender := pp.attach(1, cfg)
	receiver := pp.attach(2, cfg)
	receiver.Listen(5000, func(c *Conn) {})
	c := sender.Dial(2, 5000)
	c.SetInfiniteSource(true)
	e.RunUntil(50 * sim.Millisecond)
	if c.SRTT() > 3*target {
		t.Fatalf("srtt %v far above delay target %v", c.SRTT(), target)
	}
	if c.SRTT() == 0 {
		t.Fatal("no RTT samples")
	}
}

func TestBidirectionalRPC(t *testing.T) {
	// Client sends a request; server replies on the same connection.
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	cfg := testCfg(NewDCTCP())
	client := pp.attach(1, cfg)
	server := pp.attach(2, cfg)

	const reqSize, respSize = 32 * 1024, 1000
	server.Listen(5000, func(c *Conn) {
		var got int64
		c.OnData(func(n int) {
			got += int64(n)
			if got == reqSize {
				c.Send(respSize)
			}
		})
	})
	c := client.Dial(2, 5000)
	var gotResp int64
	var doneAt sim.Time
	c.OnData(func(n int) {
		gotResp += int64(n)
		if gotResp == respSize {
			doneAt = e.Now()
		}
	})
	c.Send(reqSize)
	e.Run()
	if gotResp != respSize {
		t.Fatalf("response bytes = %d", gotResp)
	}
	if doneAt <= 0 {
		t.Fatal("RPC never completed")
	}
}

func TestDelayedAcksReduceAckCount(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	cfg := testCfg(NewDCTCP())
	sender := pp.attach(1, cfg)
	receiver := pp.attach(2, cfg)
	receiver.Listen(5000, func(c *Conn) {})
	acks := 0
	pp.tap = func(p *packet.Packet) {
		if !p.IsData() && p.Flags.Has(packet.FlagACK) {
			acks++
		}
	}
	c := sender.Dial(2, 5000)
	c.Send(100 * cfg.MSS)
	e.Run()
	// ~100 data packets should generate roughly 50 ACKs (plus stragglers).
	if acks > 70 {
		t.Fatalf("%d ACKs for 100 data packets; delayed acks not working", acks)
	}
	if acks < 40 {
		t.Fatalf("only %d ACKs; suspiciously few", acks)
	}
}

func TestStrayPacketsCounted(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 1)
	ep := pp.attach(2, testCfg(NewDCTCP()))
	ep.Receive(&packet.Packet{
		Flow:       packet.FlowID{Src: 9, Dst: 2, SrcPort: 1, DstPort: 4242},
		PayloadLen: 100,
	})
	if ep.StrayPackets != 1 {
		t.Fatalf("stray packets = %d", ep.StrayPackets)
	}
}

func TestDialDuplicatePanics(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 1)
	ep := pp.attach(1, testCfg(NewDCTCP()))
	ep.DialFrom(100, 2, 5000)
	defer func() {
		if recover() == nil {
			t.Error("duplicate dial did not panic")
		}
	}()
	ep.DialFrom(100, 2, 5000)
}

func TestRenoHalvesOnLossAndSlowStartsOnRTO(t *testing.T) {
	r := newReno(1000)
	r.OnAck(AckEvent{Bytes: 10000, AckSeq: 10000, SndNxt: 20000})
	before := r.Cwnd()
	r.OnLoss(LossFastRetransmit)
	if r.Cwnd() >= before || r.Cwnd() < before/2-1000 {
		t.Fatalf("fast loss: cwnd %d -> %d", before, r.Cwnd())
	}
	r.OnLoss(LossTimeout)
	if r.Cwnd() != 1000 {
		t.Fatalf("timeout should reset cwnd to 1 MSS, got %d", r.Cwnd())
	}
}

func TestDCTCPAlphaTracksMarkingFraction(t *testing.T) {
	d := NewDCTCP()(nil, 1000).(*dctcp)
	// All bytes marked for many windows: alpha -> 1.
	seq := uint64(0)
	for i := 0; i < 200; i++ {
		seq += 10000
		d.OnAck(AckEvent{Bytes: 10000, Marked: true, AckSeq: seq, SndNxt: seq + 10000})
	}
	if d.Alpha() < 0.9 {
		t.Fatalf("alpha = %v after persistent marking, want ->1", d.Alpha())
	}
	// No marks for many windows: alpha -> 0.
	for i := 0; i < 400; i++ {
		seq += 10000
		d.OnAck(AckEvent{Bytes: 10000, Marked: false, AckSeq: seq, SndNxt: seq + 10000})
	}
	if d.Alpha() > 0.01 {
		t.Fatalf("alpha = %v after mark-free windows, want ->0", d.Alpha())
	}
}

func TestCubicRecoversTowardWmax(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewCubic()(e, 1000).(*cubic)
	c.cwnd = 100_000
	c.ssthresh = 50_000 // in CA
	c.OnLoss(LossFastRetransmit)
	after := c.Cwnd()
	if after >= 100_000 {
		t.Fatalf("no multiplicative decrease: %d", after)
	}
	// Feed ACKs over simulated time; window should grow back toward Wmax.
	seq := uint64(0)
	for i := 0; i < 200; i++ {
		e.After(5*sim.Millisecond, func() {
			seq += 10000
			c.OnAck(AckEvent{Bytes: 10000, AckSeq: seq, SndNxt: seq + 10000})
		})
		e.Run()
	}
	if c.Cwnd() <= after {
		t.Fatalf("cubic did not grow after loss: %d -> %d", after, c.Cwnd())
	}
}

package transport

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// TestNonECNReceiverNeverEchoesECE: an endpoint with ECN disabled must
// ignore CE marks on arriving data — it never latches the echo state,
// so its ACKs never carry ECE. The pre-fix receiver latched CE
// unconditionally (a stale-ECE bug): a non-ECN receiver paired with an
// ECN sender would echo marks it had no business reading, collapsing
// the sender's window from a signal the receiver never negotiated.
func TestNonECNReceiverNeverEchoesECE(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	pp.rate = sim.Gbps(10)
	pp.markAt = 3 * 4096

	scfg := testCfg(NewDCTCP()) // ECN on: data goes out ECT0 and gets marked
	rcfg := testCfg(NewDCTCP())
	rcfg.ECN = false

	sender := pp.attach(1, scfg)
	receiver := pp.attach(2, rcfg)
	receiver.Listen(5000, func(c *Conn) {})
	var eceAcks int
	pp.tap = func(p *packet.Packet) {
		if !p.IsData() && p.Flags.Has(packet.FlagECE) {
			eceAcks++
		}
	}
	c := sender.Dial(2, 5000)
	c.SetInfiniteSource(true)
	e.RunUntil(20 * sim.Millisecond)

	if pp.marked == 0 {
		t.Fatal("pipe never CE-marked; test misconfigured")
	}
	if eceAcks != 0 {
		t.Fatalf("non-ECN receiver echoed ECE on %d ACKs", eceAcks)
	}
	if got := c.MarkedAcks.Total(); got != 0 {
		t.Fatalf("sender counted %d marked ACKs from a non-ECN receiver", got)
	}
}

// TestNonECNSenderIgnoresStrayECE: an endpoint with ECN disabled must
// not feed ECE flags on arriving ACKs into its congestion control (a
// buggy or hostile peer setting ECE is noise, not signal). The pre-fix
// sender counted and acted on ECE regardless of its own configuration.
func TestNonECNSenderIgnoresStrayECE(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	pp.rate = sim.Gbps(10)

	scfg := testCfg(NewDCTCP())
	scfg.ECN = false
	rcfg := testCfg(NewDCTCP())

	sender := pp.attach(1, scfg)
	receiver := pp.attach(2, rcfg)
	receiver.Listen(5000, func(c *Conn) {})
	// Forge ECE onto every ACK in flight.
	pp.tapMutate = func(p *packet.Packet) {
		if !p.IsData() {
			p.Flags |= packet.FlagECE
		}
	}
	c := sender.Dial(2, 5000)
	c.SetInfiniteSource(true)
	e.RunUntil(20 * sim.Millisecond)

	if c.AckedBytes.Total() == 0 {
		t.Fatal("no progress; test misconfigured")
	}
	if got := c.MarkedAcks.Total(); got != 0 {
		t.Fatalf("non-ECN sender counted %d forged ECE ACKs as marks", got)
	}
	d := c.CC().(*dctcp)
	if d.Alpha() != 0 {
		t.Fatalf("forged ECE reached the CC: alpha = %v", d.Alpha())
	}
}

// TestECNDisabledSendsNotECT: with ECN off, data leaves NotECT so
// switches cannot CE-mark it (sanity companion to the asymmetric
// cases).
func TestECNDisabledSendsNotECT(t *testing.T) {
	e := sim.NewEngine(1)
	pp := newPipe(e, 10*sim.Microsecond)
	cfg := testCfg(NewDCTCP())
	cfg.ECN = false
	sender := pp.attach(1, cfg)
	receiver := pp.attach(2, cfg)
	receiver.Listen(5000, func(c *Conn) {})
	var ect int
	pp.tap = func(p *packet.Packet) {
		if p.IsData() && p.ECN != packet.NotECT {
			ect++
		}
	}
	c := sender.Dial(2, 5000)
	c.SetInfiniteSource(true)
	e.RunUntil(2 * sim.Millisecond)
	if c.AckedBytes.Total() == 0 {
		t.Fatal("no data acknowledged")
	}
	if ect != 0 {
		t.Fatalf("%d data packets left ECT with ECN disabled", ect)
	}
}

// Package cache models the last-level cache's DDIO region (Intel Data
// Direct I/O). With DDIO enabled the IIO writes inbound packet lines into
// a dedicated pool of LLC ways; if the CPU consumes a packet before its
// lines are evicted, the read hits cache and the DMA write never touches
// DRAM. Under memory pressure the pool overflows, lines are evicted to the
// memory controller — burning a cacheline of write bandwidth each and
// delaying the incoming IIO write until the eviction completes — and the
// system degenerates to the DDIO-disabled case (§2.1).
//
// The model tracks per-packet entries in FIFO insertion order. It is
// passive bookkeeping: the IIO orchestrates what the evictions cost
// (memory-controller traffic and added write latency).
package cache

import (
	"fmt"

	"math/rand"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// EntryID identifies an inserted packet's cache footprint.
type EntryID uint64

// Config parameterizes the DDIO pool.
type Config struct {
	// CapacityBytes is the size of the DDIO way pool (typically 2 of ~11
	// LLC ways on the paper's Cascade Lake parts ≈ 2.5 MB).
	CapacityBytes int
	// PollutionProb is the probability that an inserted entry is evicted
	// shortly after insertion by unrelated cache traffic, regardless of
	// pool occupancy. The LLC is shared across all cores, so "one cannot
	// guarantee a perfect cache hit rate" even with an idle memory system
	// (§2.2) — this is why DDIO-enabled memory bandwidth is non-zero at
	// 0x host congestion in Figure 2.
	PollutionProb float64
}

// DefaultConfig returns the calibrated DDIO configuration.
func DefaultConfig() Config {
	return Config{CapacityBytes: 2 << 20, PollutionProb: 0.10}
}

// Eviction describes lines forced out of the pool by an insertion.
type Eviction struct {
	Owner EntryID
	Bytes int
}

// DDIO is the direct-cache-access pool.
type DDIO struct {
	cfg Config
	rng *rand.Rand

	used    int
	order   []EntryID // FIFO of live entries: the live region is order[ordHead:]
	ordHead int       // dead prefix of order (evicted head entries)
	entries map[EntryID]int
	nextID  EntryID

	// evScratch backs the slice Insert returns, recycled across calls:
	// every inbound packet inserts, and eviction lists must not cost an
	// allocation each. The returned slice is valid until the next Insert.
	evScratch []Eviction

	inserted  stats.Counter // bytes inserted
	evicted   stats.Counter // bytes evicted before consumption
	hitBytes  stats.Counter
	missBytes stats.Counter

	pollutionFn func() float64
}

// New returns an empty DDIO pool.
func New(cfg Config, rng *rand.Rand) *DDIO {
	if cfg.CapacityBytes <= 0 {
		panic("cache: non-positive capacity")
	}
	if cfg.PollutionProb < 0 || cfg.PollutionProb > 1 {
		panic("cache: pollution probability out of [0,1]")
	}
	return &DDIO{cfg: cfg, rng: rng, entries: make(map[EntryID]int)}
}

// Insert records bytes written into the pool for a new packet entry and
// returns its ID plus any evictions needed to make room (oldest first).
// With probability PollutionProb the new entry itself is immediately
// counted as evicted (cache pollution by other cores).
func (d *DDIO) Insert(bytes int) (EntryID, []Eviction) {
	if bytes <= 0 {
		panic("cache: insert with non-positive size")
	}
	d.nextID++
	id := d.nextID
	d.inserted.Add(int64(bytes))

	prob := d.cfg.PollutionProb
	if d.pollutionFn != nil {
		prob = d.pollutionFn()
		if prob < 0 {
			prob = 0
		}
		if prob > 1 {
			prob = 1
		}
	}
	if d.rng != nil && d.rng.Float64() < prob {
		// Polluted: lines are pushed out by unrelated traffic right away.
		d.evicted.Add(int64(bytes))
		evs := append(d.evScratch[:0], Eviction{Owner: id, Bytes: bytes})
		d.evScratch = evs
		return id, evs
	}

	evs := d.evScratch[:0]
	for d.used+bytes > d.cfg.CapacityBytes && d.ordHead < len(d.order) {
		victim := d.order[d.ordHead]
		d.ordHead++
		vb := d.entries[victim]
		delete(d.entries, victim)
		d.used -= vb
		d.evicted.Add(int64(vb))
		evs = append(evs, Eviction{Owner: victim, Bytes: vb})
	}
	if d.used+bytes > d.cfg.CapacityBytes {
		// Entry bigger than the whole pool: it cannot be cached.
		d.evicted.Add(int64(bytes))
		evs = append(evs, Eviction{Owner: id, Bytes: bytes})
		d.evScratch = evs
		return id, evs
	}
	d.entries[id] = bytes
	d.appendOrder(id)
	d.used += bytes
	d.evScratch = evs
	return id, evs
}

// appendOrder pushes id onto the live FIFO, first compacting the dead
// prefix left by evictions when the backing array is full — so sustained
// insert/evict churn reuses the array instead of regrowing it.
func (d *DDIO) appendOrder(id EntryID) {
	if len(d.order) == cap(d.order) && d.ordHead > 0 {
		n := copy(d.order, d.order[d.ordHead:])
		d.order = d.order[:n]
		d.ordHead = 0
	}
	d.order = append(d.order, id)
}

// Consume is called when the CPU processes a packet. It reports whether
// the packet's lines were still cached (hit) and removes them if so.
func (d *DDIO) Consume(id EntryID, bytes int) (hit bool) {
	if _, ok := d.entries[id]; !ok {
		d.missBytes.Add(int64(bytes))
		return false
	}
	// Lazy removal from the FIFO: mark by deleting from the map; the
	// order slice is compacted as evictions walk it.
	d.used -= d.entries[id]
	delete(d.entries, id)
	for i := d.ordHead; i < len(d.order); i++ {
		if d.order[i] == id {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	d.hitBytes.Add(int64(bytes))
	return true
}

// SetPollutionFn replaces the static pollution probability with a dynamic
// provider. The LLC is shared: host-local traffic streaming through it
// displaces DDIO-resident lines, so eviction pressure must track the
// MApp's instantaneous bandwidth — including dropping again when hostCC
// backpressures the MApp (Figures 2, 9, 14 DDIO-enabled behaviour).
func (d *DDIO) SetPollutionFn(fn func() float64) { d.pollutionFn = fn }

// Used returns the bytes currently resident.
func (d *DDIO) Used() int { return d.used }

// Capacity returns the configured pool size.
func (d *DDIO) Capacity() int { return d.cfg.CapacityBytes }

// HitRate returns the byte-weighted consumption hit rate since start.
func (d *DDIO) HitRate() float64 {
	tot := d.hitBytes.Total() + d.missBytes.Total()
	if tot == 0 {
		return 0
	}
	return float64(d.hitBytes.Total()) / float64(tot)
}

// EvictionFraction returns evicted bytes / inserted bytes since start.
func (d *DDIO) EvictionFraction() float64 {
	if d.inserted.Total() == 0 {
		return 0
	}
	return float64(d.evicted.Total()) / float64(d.inserted.Total())
}

// Latencies for LLC access relative to DRAM; used by the IIO and the RX
// cores when the DDIO path applies.
const (
	// WriteLatency is the IIO-to-LLC write latency when no eviction is
	// needed — smaller than IIO-to-DRAM "by speed-of-light" (§2.1); this
	// is why idle IIO occupancy is ~45 with DDIO vs ~65 without (§5.2).
	WriteLatency sim.Time = 220 * sim.Nanosecond
	// ReadLatency is a CPU LLC hit (vs. a DRAM access).
	ReadLatency sim.Time = 40 * sim.Nanosecond
)

// RegisterInstruments registers the DDIO pool's metrics under prefix.
func (d *DDIO) RegisterInstruments(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/ddio/inserted", "bytes", "bytes inserted into the DDIO pool",
		func() float64 { return float64(d.inserted.Total()) })
	reg.Counter(prefix+"/ddio/evicted", "bytes", "bytes evicted before consumption",
		func() float64 { return float64(d.evicted.Total()) })
	reg.Counter(prefix+"/ddio/hit-bytes", "bytes", "bytes consumed out of the LLC",
		func() float64 { return float64(d.hitBytes.Total()) })
	reg.Counter(prefix+"/ddio/miss-bytes", "bytes", "bytes consumed from DRAM after eviction",
		func() float64 { return float64(d.missBytes.Total()) })
	reg.Gauge(prefix+"/ddio/used", "bytes", "bytes resident in the DDIO pool",
		func() float64 { return float64(d.Used()) })
}

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	if c.CapacityBytes <= 0 {
		return fmt.Errorf("cache: CapacityBytes %d must be positive", c.CapacityBytes)
	}
	if c.PollutionProb < 0 || c.PollutionProb > 1 {
		return fmt.Errorf("cache: PollutionProb %v outside [0,1]", c.PollutionProb)
	}
	return nil
}

package cache

import "repro/internal/snapshot"

// Snapshot encodes the pool contents. Entries are walked via the FIFO
// order slice, which lists every live entry exactly once, so the encoding
// is deterministic without sorting the map.
func (d *DDIO) Snapshot(e *snapshot.Encoder) {
	e.Int(d.used)
	e.U64(uint64(d.nextID))
	e.U32(uint32(len(d.order) - d.ordHead))
	for _, id := range d.order[d.ordHead:] {
		e.U64(uint64(id))
		e.Int(d.entries[id])
	}
	d.inserted.Snapshot(e)
	d.evicted.Snapshot(e)
	d.hitBytes.Snapshot(e)
	d.missBytes.Snapshot(e)
}

// Restore reverses Snapshot, rebuilding the entry map from the FIFO.
func (d *DDIO) Restore(dec *snapshot.Decoder) error {
	d.used = dec.Int()
	d.nextID = EntryID(dec.U64())
	n := int(dec.U32())
	d.order = d.order[:0]
	d.ordHead = 0
	d.entries = make(map[EntryID]int, n)
	for i := 0; i < n && dec.Err() == nil; i++ {
		id := EntryID(dec.U64())
		d.order = append(d.order, id)
		d.entries[id] = dec.Int()
	}
	if err := d.inserted.Restore(dec); err != nil {
		return err
	}
	if err := d.evicted.Restore(dec); err != nil {
		return err
	}
	if err := d.hitBytes.Restore(dec); err != nil {
		return err
	}
	return d.missBytes.Restore(dec)
}

package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTest(capacity int, pollution float64) *DDIO {
	return New(Config{CapacityBytes: capacity, PollutionProb: pollution}, rand.New(rand.NewSource(1)))
}

func TestInsertConsumeHit(t *testing.T) {
	d := newTest(10000, 0)
	id, evs := d.Insert(4000)
	if len(evs) != 0 {
		t.Fatalf("unexpected evictions: %v", evs)
	}
	if d.Used() != 4000 {
		t.Fatalf("used = %d", d.Used())
	}
	if !d.Consume(id, 4000) {
		t.Fatal("expected hit")
	}
	if d.Used() != 0 {
		t.Fatalf("used = %d after consume", d.Used())
	}
	if d.HitRate() != 1 {
		t.Fatalf("hit rate = %v", d.HitRate())
	}
}

func TestFIFOEviction(t *testing.T) {
	d := newTest(10000, 0)
	a, _ := d.Insert(4000)
	b, _ := d.Insert(4000)
	_, evs := d.Insert(4000) // needs 2000 more: evicts oldest (a)
	if len(evs) != 1 || evs[0].Owner != a || evs[0].Bytes != 4000 {
		t.Fatalf("evictions = %+v, want owner %d", evs, a)
	}
	if d.Consume(a, 4000) {
		t.Fatal("evicted entry should miss")
	}
	if !d.Consume(b, 4000) {
		t.Fatal("entry b should still hit")
	}
}

func TestOversizedEntryCannotBeCached(t *testing.T) {
	d := newTest(1000, 0)
	id, evs := d.Insert(5000)
	if len(evs) != 1 || evs[0].Owner != id {
		t.Fatalf("oversized insert should self-evict, got %+v", evs)
	}
	if d.Consume(id, 5000) {
		t.Fatal("oversized entry should miss")
	}
	if d.Used() != 0 {
		t.Fatalf("used = %d", d.Used())
	}
}

func TestPollutionEvictsImmediately(t *testing.T) {
	d := newTest(1<<20, 1.0) // always polluted
	id, evs := d.Insert(4000)
	if len(evs) != 1 || evs[0].Owner != id {
		t.Fatalf("polluted insert should evict itself, got %+v", evs)
	}
	if d.EvictionFraction() != 1 {
		t.Fatalf("eviction fraction = %v", d.EvictionFraction())
	}
}

func TestPollutionRateApproximate(t *testing.T) {
	d := newTest(1<<30, 0.1) // huge pool: only pollution evicts
	n := 20000
	for i := 0; i < n; i++ {
		d.Insert(64)
	}
	f := d.EvictionFraction()
	if f < 0.08 || f > 0.12 {
		t.Fatalf("eviction fraction = %v, want ~0.1", f)
	}
}

func TestDoubleConsumeMisses(t *testing.T) {
	d := newTest(10000, 0)
	id, _ := d.Insert(100)
	if !d.Consume(id, 100) {
		t.Fatal("first consume should hit")
	}
	if d.Consume(id, 100) {
		t.Fatal("second consume should miss")
	}
}

// Property: used bytes never exceed capacity and never go negative, under
// arbitrary insert/consume interleavings.
func TestOccupancyBoundsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		d := newTest(64*1024, 0.05)
		var live []EntryID
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := int(op/3) % len(live)
				d.Consume(live[i], 1024)
				live = append(live[:i], live[i+1:]...)
			} else {
				size := int(op%8192) + 1
				id, evs := d.Insert(size)
				gone := false
				for _, ev := range evs {
					for j, l := range live {
						if l == ev.Owner {
							live = append(live[:j], live[j+1:]...)
							break
						}
					}
					if ev.Owner == id {
						gone = true
					}
				}
				if !gone {
					live = append(live, id)
				}
			}
			if d.Used() < 0 || d.Used() > d.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no capacity":   {CapacityBytes: 0, PollutionProb: 0},
		"bad pollution": {CapacityBytes: 1, PollutionProb: 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			New(cfg, nil)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-size insert did not panic")
			}
		}()
		newTest(100, 0).Insert(0)
	}()
}

func TestHitRateMixed(t *testing.T) {
	d := newTest(8000, 0)
	a, _ := d.Insert(4000)
	b, _ := d.Insert(4000)
	d.Insert(4000) // evicts a
	d.Consume(a, 4000)
	d.Consume(b, 4000)
	if hr := d.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", hr)
	}
}

package faults

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Built-in scenarios: each is a Plan template parameterized by the fault
// window (open at `at`, clear at `at+dur`). They are the chaos suite's
// vocabulary and the vocabulary of `hostcc-bench -chaos <name>`.
var builtins = map[string]func(at, dur sim.Time) Plan{
	// msr-stale: the IIO counters stop counting — every read returns the
	// previous snapshot. hostCC's occupancy signal decays to zero and the
	// controller would hand all resources back to the MApp unless the
	// watchdog notices the frozen counters and falls back.
	"msr-stale": func(at, dur sim.Time) Plan {
		return Plan{Name: "msr-stale", Injections: []Injection{
			OneShot(MSRStale, at, dur),
		}}
	},
	// msr-fail: rdmsr faults outright; samples abort with ErrReadFailed.
	"msr-fail": func(at, dur sim.Time) Plan {
		return Plan{Name: "msr-fail", Injections: []Injection{
			OneShot(MSRFail, at, dur),
		}}
	},
	// msr-latency: 20 µs contention spikes on a third of reads — the
	// signal stays correct but arrives late and the sampling rate drops.
	"msr-latency": func(at, dur sim.Time) Plan {
		return Plan{Name: "msr-latency", Injections: []Injection{
			Probabilistic(MSRLatency, at, dur, 1.0/3).WithMagnitude(float64(20 * sim.Microsecond)),
		}}
	},
	// mba-drop: the hardware silently ignores every MBA level write; the
	// host-local response is frozen at its pre-fault level.
	"mba-drop": func(at, dur sim.Time) Plan {
		return Plan{Name: "mba-drop", Injections: []Injection{
			OneShot(MBADrop, at, dur),
		}}
	},
	// link-flap: every fabric link drops carrier for the window; all
	// in-flight traffic is lost and transports must recover by RTO.
	"link-flap": func(at, dur sim.Time) Plan {
		return Plan{Name: "link-flap", Injections: []Injection{
			OneShot(LinkFlap, at, dur),
		}}
	},
	// credit-stall: PCIe credit replenishment wedges; the NIC DMA engine
	// starves, the NIC buffer fills, and arrivals are shed at the only
	// loss point in the host network.
	"credit-stall": func(at, dur sim.Time) Plan {
		return Plan{Name: "credit-stall", Injections: []Injection{
			OneShot(PCIeStall, at, dur),
		}}
	},
	// nic-drop: the NIC sheds 30% of arriving packets (PHY-level burst
	// loss) — transport-visible loss without any host congestion.
	"nic-drop": func(at, dur sim.Time) Plan {
		return Plan{Name: "nic-drop", Injections: []Injection{
			Probabilistic(NICDrop, at, dur, 0.3),
		}}
	},
	// mapp-stall: the MApp parks (lock, page-fault storm) and later
	// resumes — the congestion the controller was throttling vanishes
	// and reappears.
	"mapp-stall": func(at, dur sim.Time) Plan {
		return Plan{Name: "mapp-stall", Injections: []Injection{
			OneShot(MAppStall, at, dur),
		}}
	},
	// mapp-burst: the MApp triples its issue aggressiveness — a sudden
	// phase change the host-local response must absorb.
	"mapp-burst": func(at, dur sim.Time) Plan {
		return Plan{Name: "mapp-burst", Injections: []Injection{
			OneShot(MAppBurst, at, dur).WithMagnitude(3),
		}}
	},
	// trunk-flap: the inter-switch trunk links drop carrier for the
	// window (the fabric partitions at the spine while host access links
	// stay up). Reuses the LinkFlap kind; the testbed aims the Links seam
	// at the trunks, so multi-switch topologies are required.
	"trunk-flap": func(at, dur sim.Time) Plan {
		return Plan{Name: "trunk-flap", Injections: []Injection{
			OneShot(LinkFlap, at, dur),
		}}
	},
	// storm: everything flaky at once — latency spikes on reads, a third
	// of MBA writes dropped, 10% NIC loss — none total, all overlapping.
	"storm": func(at, dur sim.Time) Plan {
		return Plan{Name: "storm", Injections: []Injection{
			Probabilistic(MSRLatency, at, dur, 0.25).WithMagnitude(float64(10 * sim.Microsecond)),
			Probabilistic(MBADrop, at, dur, 1.0/3),
			Probabilistic(NICDrop, at, dur, 0.1),
		}}
	},
	// pfc-storm: a malfunctioning peer holds PFC pause asserted on a
	// trunk pair for the window — the classic pause storm. Cross-rack
	// traffic freezes behind the paused trunks; the sentinel must name
	// the pause cycle and the fabric must drain when the storm clears.
	// Requires a lossless multi-switch testbed with pause targets armed.
	"pfc-storm": func(at, dur sim.Time) Plan {
		return Plan{Name: "pfc-storm", Injections: []Injection{
			OneShot(PauseStorm, at, dur),
		}}
	},
	// pause-loss: half of all PFC pause frames vanish in flight. A lost
	// XOFF costs headroom; a lost XON leaves the peer paused until the
	// PFC watchdog force-releases it — the storm mechanism §PFC
	// deployments guard against.
	"pause-loss": func(at, dur sim.Time) Plan {
		return Plan{Name: "pause-loss", Injections: []Injection{
			Probabilistic(PauseLoss, at, dur, 0.5),
		}}
	},
	// congestion-spread: the victim receiver's MApp goes 6x aggressive —
	// host congestion squeezes the NIC buffer, and on a lossless fabric
	// the NIC's pause backpressure spreads that one host's congestion up
	// the access link into the leaf, pausing innocent flows. The hostCC
	// experiment: with the controller on, the MApp is throttled before
	// the NIC fills and the spreading never starts.
	"congestion-spread": func(at, dur sim.Time) Plan {
		return Plan{Name: "congestion-spread", Injections: []Injection{
			OneShot(MAppBurst, at, dur).WithMagnitude(6),
		}}
	},
}

// ScenarioInfo is the registry entry of one named chaos scenario: the
// constraints a harness needs to run it somewhere legal. It is the single
// source of truth shared by `hostcc-bench -chaos` (which picks the natural
// topology and implies lossless operation from it) and the crucible
// generator (which must only draw scenarios valid for the testbed it
// rolls).
type ScenarioInfo struct {
	// Name is the Builtin key.
	Name string
	// Lossless marks scenarios that only make sense on a PFC fabric
	// (pause machinery is the injection target or the failure mode).
	Lossless bool
	// Topology is the natural topology kind name ("star", "leafspine");
	// harnesses without an explicit override should run the scenario
	// there.
	Topology string
	// Trunks marks scenarios whose link faults aim at the inter-switch
	// trunks, requiring a multi-switch topology.
	Trunks bool
}

// scenarioInfo holds the per-scenario constraints; every builtins key has
// an entry (enforced by a test). Scenarios not listed default to the
// lossy single-switch star.
var scenarioInfo = map[string]ScenarioInfo{
	"trunk-flap":        {Topology: "leafspine", Trunks: true},
	"pfc-storm":         {Lossless: true, Topology: "leafspine"},
	"pause-loss":        {Lossless: true, Topology: "leafspine"},
	"congestion-spread": {Lossless: true, Topology: "leafspine"},
}

// Scenarios returns the registry of named chaos scenarios, sorted by
// name. The listing is deterministic so seed-driven generators can index
// into it reproducibly.
func Scenarios() []ScenarioInfo {
	infos := make([]ScenarioInfo, 0, len(builtins))
	for _, name := range BuiltinNames() {
		info := scenarioInfo[name] // zero value: lossy star, host seams
		info.Name = name
		if info.Topology == "" {
			info.Topology = "star"
		}
		infos = append(infos, info)
	}
	return infos
}

// Builtin returns the named built-in scenario with its fault window
// opening at `at` and clearing at `at+dur`.
func Builtin(name string, at, dur sim.Time) (Plan, error) {
	mk, ok := builtins[name]
	if !ok {
		return Plan{}, fmt.Errorf("faults: unknown scenario %q (have %v)", name, BuiltinNames())
	}
	return mk(at, dur), nil
}

// BuiltinNames lists the built-in scenario names, sorted.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

package faults

import (
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Snapshot encodes the injector's window refcounts, per-kind parameters,
// transition log and injection counters (the plan itself is configuration).
func (in *Injector) Snapshot(e *snapshot.Encoder) {
	e.Bool(in.armed)
	// Per-kind state for the PFC kinds is appended only when the plan uses
	// them (in.ext), so recordings of legacy plans keep their byte layout.
	kinds := int(legacyKinds)
	if in.ext {
		kinds = int(numKinds)
	}
	for k := 0; k < kinds; k++ {
		e.Int(in.active[k])
		e.F64(in.prob[k])
		e.F64(in.mag[k])
		e.I64(in.Injected[k])
	}
	e.U32(uint32(len(in.Events)))
	for _, ev := range in.Events {
		e.I64(int64(ev.At))
		e.Int(int(ev.Kind))
		e.Bool(ev.Active)
	}
}

// Restore reverses Snapshot.
func (in *Injector) Restore(d *snapshot.Decoder) error {
	in.armed = d.Bool()
	kinds := int(legacyKinds)
	if in.ext {
		kinds = int(numKinds)
	}
	for k := 0; k < kinds; k++ {
		in.active[k] = d.Int()
		in.prob[k] = d.F64()
		in.mag[k] = d.F64()
		in.Injected[k] = d.I64()
	}
	n := int(d.U32())
	in.Events = in.Events[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		in.Events = append(in.Events, Event{
			At:     sim.Time(d.I64()),
			Kind:   Kind(d.Int()),
			Active: d.Bool(),
		})
	}
	return d.Err()
}

package faults

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/fabric"
	"repro/internal/msr"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/pcie"
	"repro/internal/sim"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"empty", Plan{Name: "empty"}, true},
		{"oneshot", Plan{Injections: []Injection{OneShot(MSRStale, 0, sim.Millisecond)}}, true},
		{"negative-at", Plan{Injections: []Injection{{Kind: MSRStale, At: -1}}}, false},
		{"bad-kind", Plan{Injections: []Injection{{Kind: Kind(99)}}}, false},
		{"bad-prob", Plan{Injections: []Injection{{Kind: NICDrop, Prob: 1.5}}}, false},
		{"period-under-duration", Plan{Injections: []Injection{
			{Kind: MSRStale, Duration: 10, Period: 5}}}, false},
		{"window-kind-no-duration", Plan{Injections: []Injection{
			{Kind: LinkFlap}}}, false},
		{"negative-count", Plan{Injections: []Injection{
			{Kind: MSRStale, Duration: sim.Millisecond, Period: 2 * sim.Millisecond, Count: -1}}}, false},
		{"windowed-negative-count", Plan{Injections: []Injection{
			Periodic(PCIeStall, 0, sim.Millisecond, 2*sim.Millisecond, -3)}}, false},
		{"burst-without-magnitude", Plan{Injections: []Injection{
			OneShot(MAppBurst, 0, sim.Millisecond)}}, false},
		{"burst-with-magnitude", Plan{Injections: []Injection{
			OneShot(MAppBurst, 0, sim.Millisecond).WithMagnitude(3)}}, true},
		{"windowed-negative-duration", Plan{Injections: []Injection{
			{Kind: PauseStorm, Duration: -sim.Millisecond}}}, false},
	}
	for _, c := range cases {
		if err := c.plan.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if Kind(99).String() != "unknown" {
		t.Errorf("out-of-range kind string = %q", Kind(99).String())
	}
}

func TestMSRStaleWindow(t *testing.T) {
	e := sim.NewEngine(1)
	f := msr.NewFile(e)
	counter := uint64(0)
	f.RegisterReader(msr.IIOOccupancy, func() uint64 { counter += 100; return counter })

	in := MustNewInjector(e, Plan{Injections: []Injection{
		OneShot(MSRStale, 10*sim.Microsecond, 10*sim.Microsecond),
	}}, Seams{MSR: f})
	in.Arm()

	var got []uint64
	read := func() {
		f.Read(msr.IIOOccupancy, func(v uint64, _ sim.Time, err error) {
			if err != nil {
				t.Fatalf("unexpected read error: %v", err)
			}
			got = append(got, v)
		})
	}
	// Before, inside, and after the window (reads take ~0.5-1.2 µs).
	e.At(0, read)
	e.At(15*sim.Microsecond, read)
	e.At(30*sim.Microsecond, read)
	e.Run()

	if len(got) != 3 {
		t.Fatalf("reads completed = %d, want 3", len(got))
	}
	if got[1] != got[0] {
		t.Errorf("in-window read %d should repeat pre-window snapshot %d", got[1], got[0])
	}
	if got[2] <= got[1] {
		t.Errorf("post-window read %d should advance past %d", got[2], got[1])
	}
	if in.Injected[MSRStale] != 1 {
		t.Errorf("stale injections = %d, want 1", in.Injected[MSRStale])
	}
}

func TestMSRFailWindow(t *testing.T) {
	e := sim.NewEngine(1)
	f := msr.NewFile(e)
	f.RegisterReader(msr.IIOOccupancy, func() uint64 { return 7 })
	in := MustNewInjector(e, Plan{Injections: []Injection{
		OneShot(MSRFail, 0, 5*sim.Microsecond),
	}}, Seams{MSR: f})
	in.Arm()
	var errs int
	e.At(sim.Microsecond, func() {
		f.Read(msr.IIOOccupancy, func(_ uint64, _ sim.Time, err error) {
			if err != nil {
				errs++
			}
		})
	})
	e.Run()
	if errs != 1 {
		t.Fatalf("in-window read did not fail")
	}
	if f.FailedReads != 1 {
		t.Errorf("FailedReads = %d, want 1", f.FailedReads)
	}
}

func TestMBADropWindow(t *testing.T) {
	e := sim.NewEngine(1)
	mba := cpu.NewMBA(e, nil, cpu.DefaultMBAConfig())
	in := MustNewInjector(e, Plan{Injections: []Injection{
		OneShot(MBADrop, 0, 100*sim.Microsecond),
	}}, Seams{MBA: mba})
	in.Arm()

	// Write issued inside the window: lost.
	e.At(sim.Microsecond, func() { mba.RequestLevel(2) })
	e.RunUntil(50 * sim.Microsecond)
	if mba.Level() != 0 {
		t.Fatalf("dropped write applied: level %d", mba.Level())
	}
	if mba.LostWrites != 1 {
		t.Fatalf("LostWrites = %d, want 1", mba.LostWrites)
	}
	// Retried after the window clears: applies normally.
	e.At(120*sim.Microsecond, func() { mba.RequestLevel(2) })
	e.Run()
	if mba.Level() != 2 {
		t.Fatalf("post-window write not applied: level %d", mba.Level())
	}
}

func TestLinkFlapAndPeriodic(t *testing.T) {
	e := sim.NewEngine(1)
	var delivered int
	l := fabric.NewLink(e, fabric.DefaultLinkConfig(), func(*packet.Packet) { delivered++ })
	in := MustNewInjector(e, Plan{Injections: []Injection{
		Periodic(LinkFlap, 10*sim.Microsecond, 10*sim.Microsecond, 30*sim.Microsecond, 2),
	}}, Seams{Links: []*fabric.Link{l}})
	in.Arm()

	mk := func() *packet.Packet {
		return &packet.Packet{Flow: packet.FlowID{Dst: 1}, PayloadLen: 100}
	}
	// Windows: [10,20) and [40,50) µs.
	for _, at := range []sim.Time{0, 15 * sim.Microsecond, 25 * sim.Microsecond, 45 * sim.Microsecond, 55 * sim.Microsecond} {
		e.At(at, func() { l.Send(mk()) })
	}
	e.Run()
	if delivered != 3 {
		t.Fatalf("delivered = %d, want 3 (two packets flapped away)", delivered)
	}
	if got := l.FlapDrops.Total(); got != 2 {
		t.Fatalf("FlapDrops = %d, want 2", got)
	}
	if len(in.Events) != 4 {
		t.Fatalf("window transitions = %d, want 4", len(in.Events))
	}
}

func TestPCIeStallWindow(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := pcie.DefaultConfig()
	var tlps int
	link := pcie.NewLink(e, cfg, func(t *pcie.TLP) { tlps++ })
	in := MustNewInjector(e, Plan{Injections: []Injection{
		OneShot(PCIeStall, sim.Microsecond, 10*sim.Microsecond),
	}}, Seams{PCIe: link})
	in.Arm()

	// Consume one TLP's credits before the stall engages.
	tlp := link.Segment(&packet.Packet{Flow: packet.FlowID{Dst: 1}, PayloadLen: 400})[0]
	if !link.TrySend(tlp) {
		t.Fatal("TrySend refused with a full pool")
	}
	consumed := tlp.Lines
	e.At(2*sim.Microsecond, func() {
		if !link.CreditStalled() {
			t.Error("stall window did not engage")
		}
		// Credits released mid-stall are sequestered, not pooled.
		before := link.Credits()
		link.ReleaseCredits(consumed)
		if link.Credits() != before {
			t.Errorf("stalled release leaked into the pool: %d -> %d", before, link.Credits())
		}
		if link.SequesteredCredits() != consumed {
			t.Errorf("sequestered = %d, want %d", link.SequesteredCredits(), consumed)
		}
	})
	e.Run()
	if link.CreditStalled() {
		t.Error("stall window did not clear")
	}
	if link.Credits() != cfg.CreditLines {
		t.Errorf("credits = %d, want full pool %d after stall clears", link.Credits(), cfg.CreditLines)
	}
}

func TestNICDropDeterministic(t *testing.T) {
	run := func(seed int64) int64 {
		e := sim.NewEngine(seed)
		link := pcie.NewLink(e, pcie.DefaultConfig(), func(*pcie.TLP) {})
		n := nic.New(e, nic.DefaultConfig(), link, nil)
		in := MustNewInjector(e, Plan{Injections: []Injection{
			Probabilistic(NICDrop, 0, sim.Millisecond, 0.3),
		}}, Seams{NIC: n})
		in.Arm()
		for i := 0; i < 200; i++ {
			at := sim.Time(i) * sim.Microsecond
			e.At(at, func() {
				n.Receive(&packet.Packet{Flow: packet.FlowID{Dst: 1}, PayloadLen: 1000})
			})
		}
		e.Run()
		return n.FaultDrops.Total()
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed, different drops: %d vs %d", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("drops = %d, want a strict subset of 200 at p=0.3", a)
	}
	if c := run(8); c == a {
		t.Logf("note: different seed gave same drop count %d (possible, not an error)", c)
	}
}

func TestBuiltinScenarios(t *testing.T) {
	for _, name := range BuiltinNames() {
		p, err := Builtin(name, sim.Millisecond, sim.Millisecond)
		if err != nil {
			t.Fatalf("Builtin(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", name, err)
		}
		if p.End() != 2*sim.Millisecond {
			t.Errorf("builtin %q End = %v, want 2ms", name, p.End())
		}
	}
	if _, err := Builtin("no-such", 0, 0); err == nil {
		t.Error("unknown scenario did not error")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("no-such-kind"); err == nil {
		t.Error("unknown kind name did not error")
	}
}

func TestScenariosRegistry(t *testing.T) {
	infos := Scenarios()
	if len(infos) != len(BuiltinNames()) {
		t.Fatalf("Scenarios() has %d entries, builtins %d", len(infos), len(BuiltinNames()))
	}
	byName := map[string]ScenarioInfo{}
	for i, info := range infos {
		if i > 0 && infos[i-1].Name >= info.Name {
			t.Errorf("Scenarios() not sorted: %q before %q", infos[i-1].Name, info.Name)
		}
		if info.Topology == "" {
			t.Errorf("scenario %q has no natural topology", info.Name)
		}
		if _, err := Builtin(info.Name, 0, sim.Millisecond); err != nil {
			t.Errorf("scenario %q not a builtin: %v", info.Name, err)
		}
		byName[info.Name] = info
	}
	// Every explicit constraint entry must name a real builtin (a renamed
	// scenario must not leave a stale constraint behind).
	for name := range scenarioInfo {
		if _, ok := byName[name]; !ok {
			t.Errorf("scenarioInfo entry %q is not a builtin", name)
		}
	}
	// Spot-check the constraints the chaos harness depends on.
	if !byName["pfc-storm"].Lossless || byName["pfc-storm"].Topology != "leafspine" {
		t.Errorf("pfc-storm constraints wrong: %+v", byName["pfc-storm"])
	}
	if !byName["trunk-flap"].Trunks || byName["trunk-flap"].Topology != "leafspine" {
		t.Errorf("trunk-flap constraints wrong: %+v", byName["trunk-flap"])
	}
	if byName["msr-stale"].Lossless || byName["msr-stale"].Topology != "star" || byName["msr-stale"].Trunks {
		t.Errorf("msr-stale constraints wrong: %+v", byName["msr-stale"])
	}
}

package faults

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/fabric"
	"repro/internal/msr"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// Seams collects the fault-injection attachment points of one testbed.
// Any field may be nil; injections targeting a missing seam are ignored
// (so one plan can run against differently-shaped testbeds).
type Seams struct {
	MSR   *msr.File
	MBA   *cpu.MBA
	NIC   *nic.NIC
	PCIe  *pcie.Link
	Links []*fabric.Link
	MApp  *cpu.MApp
	// Pause is the PauseStorm target list: each closure forces PFC pause
	// asserted (true) or released (false) on one fabric port, typically
	// built from fabric.TrunkPort entries.
	Pause []func(bool)
	// Switches is the PauseLoss seam: every switch whose pause frames may
	// be dropped in flight.
	Switches []*fabric.Switch
}

// Event records one window transition, for tests and diagnostics.
type Event struct {
	At     sim.Time
	Kind   Kind
	Active bool // true = window opened, false = window cleared
}

// Injector arms a Plan against a set of seams on one engine. Overlapping
// windows of the same kind are reference-counted; event-level faults
// (MSR, MBA, NIC) are drawn per event from the engine's seeded RNG.
type Injector struct {
	e    *sim.Engine
	plan Plan
	s    Seams

	active [numKinds]int     // refcount of open windows per kind
	prob   [numKinds]float64 // per-event probability while active
	mag    [numKinds]float64 // magnitude while active
	armed  bool
	// ext reports whether the plan uses any post-legacy kind; snapshots
	// append the extended per-kind state only then, so recordings of old
	// plans keep their original byte layout.
	ext bool

	// Events is the ordered log of window transitions.
	Events []Event
	// Injected counts event-level faults actually applied, per kind.
	Injected [numKinds]int64
}

// NewInjector binds a plan to seams. The plan is validated eagerly.
func NewInjector(e *sim.Engine, plan Plan, s Seams) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{e: e, plan: plan, s: s}
	for _, inj := range plan.Injections {
		if inj.Kind >= legacyKinds {
			in.ext = true
		}
	}
	return in, nil
}

// MustNewInjector is NewInjector, panicking on an invalid plan.
func MustNewInjector(e *sim.Engine, plan Plan, s Seams) *Injector {
	in, err := NewInjector(e, plan, s)
	if err != nil {
		panic(err)
	}
	return in
}

// Plan returns the armed plan.
func (in *Injector) Plan() Plan { return in.plan }

// Active reports whether any window of the given kind is open.
func (in *Injector) Active(k Kind) bool { return in.active[k] > 0 }

// Arm installs the event-level hooks and schedules every window of the
// plan. It must be called at most once.
func (in *Injector) Arm() {
	if in.armed {
		panic("faults: injector armed twice")
	}
	in.armed = true
	in.installHooks()
	for _, inj := range in.plan.Injections {
		in.schedule(inj)
	}
}

func (in *Injector) schedule(inj Injection) {
	starts := func(n int) sim.Time { return inj.At + sim.Time(n)*inj.Period }
	reps := 1
	if inj.Period > 0 {
		reps = inj.Count
	}
	window := func(n int) {
		in.e.At(starts(n), func() { in.open(inj) })
		in.e.At(starts(n)+inj.Duration, func() { in.close(inj) })
	}
	if inj.Period > 0 && reps == 0 {
		// Unbounded periodic: schedule each window as the previous one
		// clears, so the event queue never holds more than one ahead.
		var next func(n int)
		next = func(n int) {
			in.e.At(starts(n), func() { in.open(inj) })
			in.e.At(starts(n)+inj.Duration, func() {
				in.close(inj)
				next(n + 1)
			})
		}
		next(0)
		return
	}
	for n := 0; n < reps; n++ {
		window(n)
	}
}

func (in *Injector) open(inj Injection) {
	k := inj.Kind
	in.active[k]++
	in.prob[k] = inj.Prob
	in.mag[k] = inj.Magnitude
	in.Events = append(in.Events, Event{At: in.e.Now(), Kind: k, Active: true})
	if in.active[k] > 1 {
		return // window already in force
	}
	switch k {
	case LinkFlap:
		for _, l := range in.s.Links {
			l.SetDown(true)
		}
	case PCIeStall:
		if in.s.PCIe != nil {
			in.s.PCIe.SetStall(true)
		}
	case MAppStall:
		if in.s.MApp != nil {
			in.s.MApp.Stall()
		}
	case MAppBurst:
		if in.s.MApp != nil {
			in.s.MApp.SetBurst(inj.Magnitude)
		}
	case PauseStorm:
		for _, f := range in.s.Pause {
			f(true)
		}
	}
}

func (in *Injector) close(inj Injection) {
	k := inj.Kind
	if in.active[k] <= 0 {
		panic(fmt.Sprintf("faults: closing inactive window %v", k))
	}
	in.active[k]--
	in.Events = append(in.Events, Event{At: in.e.Now(), Kind: k, Active: false})
	if in.active[k] > 0 {
		return
	}
	switch k {
	case LinkFlap:
		for _, l := range in.s.Links {
			l.SetDown(false)
		}
	case PCIeStall:
		if in.s.PCIe != nil {
			in.s.PCIe.SetStall(false)
		}
	case MAppStall:
		if in.s.MApp != nil {
			in.s.MApp.Resume()
		}
	case MAppBurst:
		if in.s.MApp != nil {
			in.s.MApp.SetBurst(1)
		}
	case PauseStorm:
		for _, f := range in.s.Pause {
			f(false)
		}
	}
}

// roll decides one event-level fault while a window of kind k is open.
func (in *Injector) roll(k Kind) bool {
	if in.active[k] == 0 {
		return false
	}
	if p := in.prob[k]; p > 0 && p < 1 {
		if in.e.Rand().Float64() >= p {
			return false
		}
	}
	in.Injected[k]++
	return true
}

// installHooks attaches the per-event fault hooks to the seams present.
func (in *Injector) installHooks() {
	if in.s.MSR != nil {
		in.s.MSR.SetReadFault(func(msr.Address) msr.ReadFault {
			var f msr.ReadFault
			if in.roll(MSRLatency) {
				f.ExtraLatency = sim.Time(in.mag[MSRLatency])
			}
			if in.roll(MSRFail) {
				f.Fail = true
			} else if in.roll(MSRStale) {
				f.Stale = true
			}
			return f
		})
	}
	if in.s.MBA != nil {
		in.s.MBA.SetWriteFault(func() cpu.WriteFault {
			var f cpu.WriteFault
			if in.roll(MBADelay) {
				f.ExtraLatency = sim.Time(in.mag[MBADelay])
			}
			if in.roll(MBADrop) {
				f.Drop = true
			}
			return f
		})
	}
	if in.s.NIC != nil {
		in.s.NIC.SetRxFault(func(*packet.Packet) bool {
			return in.roll(NICDrop)
		})
	}
	for _, sw := range in.s.Switches {
		sw.SetPauseFault(func() bool {
			return in.roll(PauseLoss)
		})
	}
}

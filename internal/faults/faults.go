// Package faults is a deterministic, seed-driven fault-injection
// subsystem for the hostCC testbed. The paper's kernel module runs on
// real hardware where MSR reads stall or fail outright, MBA writes get
// silently ignored, links flap, and NICs shed packets under pressure;
// this package reproduces those failure modes through the explicit seams
// the hardware models expose (msr.File.SetReadFault, cpu.MBA.SetWriteFault,
// nic.NIC.SetRxFault, fabric.Link.SetDown, pcie.Link.SetStall,
// cpu.MApp.Stall/SetBurst) so that hostCC's control loop can be exercised
// against the conditions it was designed to tolerate.
//
// Faults are scheduled on the simulation engine's clock from a Plan — a
// small scenario DSL of one-shot, periodic, and probabilistic injectors —
// and all randomness is drawn from the engine's seeded RNG, so every
// chaos run is reproducible from (seed, plan).
package faults

import (
	"fmt"

	"repro/internal/sim"
)

// Kind identifies one class of injectable fault.
type Kind int

// Fault kinds, one per hardware seam.
const (
	// MSRStale makes MSR reads return the previous successful snapshot
	// (a counter that stopped counting). Magnitude: unused.
	MSRStale Kind = iota
	// MSRFail makes MSR reads complete with msr.ErrReadFailed.
	MSRFail
	// MSRLatency adds Magnitude nanoseconds to every MSR read
	// (interconnect contention spike, SMI storm).
	MSRLatency
	// MBADrop makes MBA MSR writes retire without taking effect.
	MBADrop
	// MBADelay adds Magnitude nanoseconds to every MBA write's retire
	// latency.
	MBADelay
	// NICDrop drops arriving packets at the NIC before buffer admission
	// (burst PHY loss). Probability applies per packet.
	NICDrop
	// LinkFlap takes every fabric link down for the window.
	LinkFlap
	// PCIeStall wedges PCIe credit replenishment for the window.
	PCIeStall
	// MAppStall parks all MApp cores for the window.
	MAppStall
	// MAppBurst scales MApp issue aggressiveness by Magnitude (>1).
	MAppBurst
	// PauseStorm forces PFC pause asserted on the targeted trunk ports
	// for the window (a malfunctioning peer emitting continuous pause
	// frames — the classic storm mechanism). Requires a lossless fabric
	// and a Seams.Pause target list.
	PauseStorm
	// PauseLoss drops PFC pause frames in flight with probability Prob —
	// a lost XON leaves the peer paused until the watchdog (if armed)
	// force-releases it. Applies per frame at every Seams.Switches entry.
	PauseLoss
	numKinds
)

// legacyKinds marks the end of the pre-PFC kind set. Injector snapshots
// encode per-kind state for these kinds unconditionally and for the PFC
// kinds only when the plan uses them, keeping old recordings
// byte-identical.
const legacyKinds = PauseStorm

var kindNames = [numKinds]string{
	"msr-stale", "msr-fail", "msr-latency", "mba-drop", "mba-delay",
	"nic-drop", "link-flap", "pcie-stall", "mapp-stall", "mapp-burst",
	"pause-storm", "pause-loss",
}

func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return "unknown"
	}
	return kindNames[k]
}

// ParseKind resolves a kind name ("pcie-stall", "nic-drop", ...) back to
// its Kind — the inverse of String, used by serialized scenario formats
// (crucible repro files) so fault plans survive a JSON round trip.
func ParseKind(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown kind %q", name)
}

// Injection is one scheduled fault: a Kind active over one or more
// windows. The zero Duration means the fault is active for a single
// instant only, which is meaningful solely for level-triggered kinds
// queried per event; window kinds (LinkFlap, PCIeStall, MAppStall,
// MAppBurst) need a positive Duration.
type Injection struct {
	Kind Kind
	// At is the window start, on the simulation clock.
	At sim.Time
	// Duration is the window length.
	Duration sim.Time
	// Period, when positive, repeats the window every Period after At.
	Period sim.Time
	// Count bounds the repetitions of a periodic injection (0 = one
	// window for one-shot; for periodic, 0 means unbounded).
	Count int
	// Prob is the per-event probability for event-triggered kinds (MSR
	// reads, MBA writes, NIC packets) while the window is active;
	// 0 means 1.0 (always).
	Prob float64
	// Magnitude is kind-specific: extra latency in nanoseconds for
	// MSRLatency/MBADelay, the issue-rate factor for MAppBurst.
	Magnitude float64
}

// OneShot returns a single fault window.
func OneShot(kind Kind, at, dur sim.Time) Injection {
	return Injection{Kind: kind, At: at, Duration: dur}
}

// Periodic returns a repeating fault window (count 0 = unbounded).
func Periodic(kind Kind, at, dur, period sim.Time, count int) Injection {
	return Injection{Kind: kind, At: at, Duration: dur, Period: period, Count: count}
}

// Probabilistic returns a window during which each event (read, write, or
// packet, per kind) faults independently with probability p.
func Probabilistic(kind Kind, at, dur sim.Time, p float64) Injection {
	return Injection{Kind: kind, At: at, Duration: dur, Prob: p}
}

// WithMagnitude sets the kind-specific magnitude.
func (i Injection) WithMagnitude(m float64) Injection {
	i.Magnitude = m
	return i
}

// Plan is a named fault scenario: a set of injections armed together.
type Plan struct {
	Name       string
	Injections []Injection
}

// Validate reports the first ill-formed injection in the plan.
func (p Plan) Validate() error {
	for n, inj := range p.Injections {
		if inj.Kind < 0 || inj.Kind >= numKinds {
			return fmt.Errorf("faults: injection %d: unknown kind %d", n, int(inj.Kind))
		}
		if inj.At < 0 || inj.Duration < 0 {
			return fmt.Errorf("faults: injection %d (%v): negative time", n, inj.Kind)
		}
		if inj.Period < 0 || (inj.Period > 0 && inj.Period <= inj.Duration) {
			return fmt.Errorf("faults: injection %d (%v): period must exceed duration", n, inj.Kind)
		}
		if inj.Count < 0 {
			return fmt.Errorf("faults: injection %d (%v): negative count %d", n, inj.Kind, inj.Count)
		}
		if inj.Prob < 0 || inj.Prob > 1 {
			return fmt.Errorf("faults: injection %d (%v): probability %v outside [0,1]", n, inj.Kind, inj.Prob)
		}
		if inj.Kind == MAppBurst && inj.Magnitude <= 1 {
			return fmt.Errorf("faults: injection %d: MAppBurst needs magnitude > 1", n)
		}
		switch inj.Kind {
		case LinkFlap, PCIeStall, MAppStall, MAppBurst, PauseStorm:
			if inj.Duration <= 0 {
				return fmt.Errorf("faults: injection %d (%v): window kind needs a positive duration", n, inj.Kind)
			}
		}
	}
	return nil
}

// End returns the instant the last window of the plan clears (periodic
// unbounded injections report the horizon of their first Count=0 window;
// callers running unbounded plans pick their own horizon).
func (p Plan) End() sim.Time {
	var end sim.Time
	for _, inj := range p.Injections {
		last := inj.At + inj.Duration
		if inj.Period > 0 && inj.Count > 0 {
			last = inj.At + sim.Time(inj.Count-1)*inj.Period + inj.Duration
		}
		if last > end {
			end = last
		}
	}
	return end
}

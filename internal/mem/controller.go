// Package mem models the memory interconnect: the memory controller and
// DRAM behind it. It is the congestion point of the paper — a saturated
// memory controller inflates IIO-to-memory latency (ℓm), which backs up
// into the IIO buffer, exhausts PCIe credits, and ultimately causes
// queueing and drops at the NIC (§2.1's "domino effect").
//
// The controller is an analytic FCFS rate server: each request's departure
// time is computed in O(1) as
//
//	dep = max(now, lastDeparture) + chargedSize/rate
//
// which yields the two properties §2.2 identifies as root causes of host
// congestion — load-proportional bandwidth sharing across requesters, and
// queueing latency that grows with total offered load — without simulating
// individual DRAM banks.
package mem

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Class labels the requester of a memory transaction, for bandwidth
// accounting (the memory-bandwidth-utilization panels of Figs 2, 9, 10...).
type Class int

// Traffic classes.
const (
	ClassIIO      Class = iota // NIC DMA writes issued by the IIO
	ClassEviction              // DDIO cache evictions
	ClassNetCopy               // CPU packet processing (copy to app buffers)
	ClassMApp                  // host-local application traffic (the MApp)
	ClassOther                 // anything else (RPC app work, etc.)
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassIIO:
		return "iio"
	case ClassEviction:
		return "eviction"
	case ClassNetCopy:
		return "netcopy"
	case ClassMApp:
		return "mapp"
	case ClassOther:
		return "other"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// CacheLine is the transfer granularity between IIO/LLC and the memory
// controller (§2.1, footnote 1).
const CacheLine = 64

// Config holds the memory-system parameters. Defaults follow the paper's
// testbed: DDR4 on two channels, 46.9 GBps theoretical capacity, with an
// effective saturation bandwidth below theoretical (§2.2, footnote 2).
type Config struct {
	// TheoreticalBW is the maximum theoretical memory bandwidth; the
	// denominator of every "memory bandwidth utilization" figure.
	TheoreticalBW sim.Rate
	// EffectiveBW is the service rate of the controller: achievable
	// bandwidth for a well-behaved streaming workload.
	EffectiveBW sim.Rate
	// BaseLatency is the unloaded DRAM access latency.
	BaseLatency sim.Time
	// WriteQueueBytes bounds the controller's write queue: an IIO write is
	// admitted (and its PCIe credit freed) only once the queue backlog
	// ahead of it has drained below this bound (§2.1, step 2).
	WriteQueueBytes int
	// WriteLoadFactor scales the bank-contention latency applied to
	// write-queue admission: under load, reads are prioritized by the
	// DRAM scheduler and queued writes drain slower, which is what
	// inflates IIO-to-memory admission latency (ℓm) and starves PCIe
	// credits (§2.1).
	WriteLoadFactor float64
	// LoadLatencyNs adds bank-contention latency that grows superlinearly
	// with concurrent hardware requests (weighted by Request.Weight):
	// extra = LoadLatencyNs × inFlight^1.5.
	// This reproduces DRAM access latency rising well before full
	// bandwidth saturation — the cause of the 1x "compute bottleneck"
	// regime in Figure 2 (§2.2).
	LoadLatencyNs float64
}

// DefaultConfig returns the paper-calibrated memory configuration.
func DefaultConfig() Config {
	return Config{
		TheoreticalBW:   sim.GBps(46.9),
		EffectiveBW:     sim.GBps(37.5),
		BaseLatency:     90 * sim.Nanosecond,
		WriteQueueBytes: 2 * 1024,
		LoadLatencyNs:   0.08,
		WriteLoadFactor: 2.0,
	}
}

// Request describes one memory transaction.
type Request struct {
	Size  int   // bytes moved
	Class Class // accounting class
	// Efficiency derates the service rate for this request's access
	// pattern (1.0 = streaming; <1 charges extra service time, modeling
	// bank conflicts / read-write turnarounds). Zero means 1.0.
	Efficiency float64
	// Weight is the number of concurrent hardware requests this batched
	// request stands for (a MApp core's request represents LFB ~ 11
	// outstanding cacheline accesses). It feeds the load-latency term;
	// zero means 1.
	Weight int
	// OnAdmit fires when the request is admitted into the controller
	// queue (IIO uses this to replenish PCIe credits). Optional.
	OnAdmit func()
	// OnComplete fires when the transaction finishes (data in DRAM /
	// data returned). Optional.
	OnComplete func(lat sim.Time)

	// AdmitCB/CompleteCB are the allocation-free equivalents of
	// OnAdmit/OnComplete: pre-registered handlers invoked with the
	// callback's own arguments. CompleteCB is dispatched as
	// (Arg0, uint64(lat)) — the measured latency replaces Arg1. When both
	// a closure and a Callback are set for the same notification, the
	// closure wins (they are alternatives, not a chain).
	AdmitCB    sim.Callback
	CompleteCB sim.Callback
}

// Controller is the shared memory controller.
type Controller struct {
	e   *sim.Engine
	cfg Config

	lastDep  sim.Time // analytic pipe state
	inFlight int      // weighted hardware requests outstanding

	meters  [NumClasses]stats.Meter
	recent  [NumClasses]rateTracker
	backlog stats.TimeWeighted // queued bytes over time (diagnostics)

	// completeH + comps carry per-request completion state through the
	// completion event without a closure per request.
	completeH sim.HandlerID
	comps     sim.Slots[completion]

	// Submitted counts all requests, for sanity checks.
	Submitted int64
}

// completion is the per-request state needed when the completion event
// fires.
type completion struct {
	weight    int
	size      int
	class     Class
	submitted sim.Time
	fn        func(lat sim.Time)
	cb        sim.Callback
}

// NewController creates a memory controller on engine e.
func NewController(e *sim.Engine, cfg Config) *Controller {
	if cfg.EffectiveBW <= 0 || cfg.TheoreticalBW <= 0 {
		panic("mem: non-positive bandwidth")
	}
	if cfg.WriteQueueBytes <= 0 {
		panic("mem: non-positive write queue")
	}
	c := &Controller{e: e, cfg: cfg}
	c.completeH = e.Handler(c.complete)
	return c
}

// complete is the completion event handler; arg0 is the completion slot.
func (c *Controller) complete(slot, _ uint64) {
	comp := c.comps.Take(slot)
	now := c.e.Now()
	c.inFlight -= comp.weight
	c.meters[comp.class].Add(int64(comp.size))
	c.recent[comp.class].add(now, float64(comp.size))
	lat := now - comp.submitted
	switch {
	case comp.fn != nil:
		comp.fn(lat)
	case comp.cb.Set():
		c.e.Dispatch(comp.cb.ID, comp.cb.Arg0, uint64(lat))
	}
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Submit enqueues a request. It computes the admission and completion
// times analytically and schedules the callbacks.
func (c *Controller) Submit(req Request) {
	if req.Size <= 0 {
		panic("mem: request with non-positive size")
	}
	eff := req.Efficiency
	if eff == 0 {
		eff = 1
	}
	if eff < 0 || eff > 1 {
		panic("mem: efficiency out of (0,1]")
	}
	w := req.Weight
	if w <= 0 {
		w = 1
	}
	now := c.e.Now()
	c.Submitted++
	c.inFlight += w

	charged := float64(req.Size) / eff
	service := c.cfg.EffectiveBW.TimeFor(int(charged))
	start := max(now, c.lastDep)
	dep := start + service
	c.lastDep = dep
	c.backlog.Set(now, float64(dep-now)*c.cfg.EffectiveBW.BytesPerSec()/1e9)

	// Admission: when the backlog ahead has drained below the write
	// queue bound. A request that fits immediately is admitted now.
	admit := max(now, dep-c.cfg.EffectiveBW.TimeFor(c.cfg.WriteQueueBytes)) +
		sim.Time(c.cfg.WriteLoadFactor*float64(c.loadLatency()))
	if req.OnAdmit != nil {
		c.e.At(admit, req.OnAdmit)
	} else if req.AdmitCB.Set() {
		c.e.Invoke(admit, req.AdmitCB)
	}

	complete := dep + c.cfg.BaseLatency + c.loadLatency()
	slot := c.comps.Put(completion{
		weight:    w,
		size:      req.Size,
		class:     req.Class,
		submitted: now,
		fn:        req.OnComplete,
		cb:        req.CompleteCB,
	})
	c.e.Schedule(complete, c.completeH, slot, 0)
}

// rateTracker estimates a class's recent bandwidth with exponential decay
// (~50 us horizon); unlike the windowed meters it needs no Mark calls, so
// consumers (e.g. the DDIO pollution model) can read it continuously.
type rateTracker struct {
	last sim.Time
	rate float64 // bytes/sec
}

const rateTrackerTau = 50 * sim.Microsecond

func (rt *rateTracker) add(now sim.Time, bytes float64) {
	rt.decay(now)
	rt.rate += bytes / rateTrackerTau.Seconds()
	rt.last = now
}

func (rt *rateTracker) decay(now sim.Time) {
	if dt := now - rt.last; dt > 0 {
		rt.rate *= math.Exp(-float64(dt) / float64(rateTrackerTau))
		rt.last = now
	}
}

// RecentRate returns the exponentially decayed recent bandwidth of a
// class (no measurement window required).
func (c *Controller) RecentRate(class Class) sim.Rate {
	rt := &c.recent[class]
	rt.decay(c.e.Now())
	return sim.Rate(rt.rate)
}

// loadLatency is the bank-contention latency at the current concurrency.
func (c *Controller) loadLatency() sim.Time {
	if c.cfg.LoadLatencyNs == 0 || c.inFlight == 0 {
		return 0
	}
	n := float64(c.inFlight)
	return sim.Time(c.cfg.LoadLatencyNs * n * math.Sqrt(n))
}

// QueueDelay returns the current time a newly arriving request would wait
// before service begins.
func (c *Controller) QueueDelay() sim.Time {
	d := c.lastDep - c.e.Now()
	if d < 0 {
		return 0
	}
	return d
}

// BacklogBytes returns the bytes currently queued awaiting service.
func (c *Controller) BacklogBytes() float64 {
	return c.cfg.EffectiveBW.BytesIn(c.QueueDelay())
}

// InFlight returns the number of submitted-but-incomplete requests.
func (c *Controller) InFlight() int { return c.inFlight }

// EstimateLatency predicts the completion latency a request of the given
// size would see if submitted now (queue wait + service + base + load).
func (c *Controller) EstimateLatency(size int) sim.Time {
	return c.QueueDelay() + c.cfg.EffectiveBW.TimeFor(size) + c.cfg.BaseLatency + c.loadLatency()
}

// MarkAll snapshots every class meter at time t (start of a measurement
// window).
func (c *Controller) MarkAll() {
	for i := range c.meters {
		c.meters[i].Mark(c.e.Now())
	}
}

// RateOf returns the average bandwidth of a class since its last mark.
func (c *Controller) RateOf(class Class) sim.Rate {
	return c.meters[class].RateSinceMark(c.e.Now())
}

// UtilizationOf returns a class's bandwidth since the last mark as a
// fraction of theoretical capacity — the y-axis of the paper's
// memory-bandwidth-utilization panels.
func (c *Controller) UtilizationOf(class Class) float64 {
	return float64(c.RateOf(class)) / float64(c.cfg.TheoreticalBW)
}

// TotalUtilization sums utilization across all classes.
func (c *Controller) TotalUtilization() float64 {
	var u float64
	for cl := Class(0); cl < NumClasses; cl++ {
		u += c.UtilizationOf(cl)
	}
	return u
}

// BytesOf returns the total bytes moved for a class since the last mark.
func (c *Controller) BytesOf(class Class) int64 {
	return c.meters[class].BytesSinceMark()
}

// RegisterInstruments registers the controller's metrics under prefix:
// per-class byte counters plus queueing/backlog/utilization gauges.
func (c *Controller) RegisterInstruments(reg *telemetry.Registry, prefix string) {
	for cl := Class(0); cl < NumClasses; cl++ {
		cl := cl
		reg.Counter(prefix+"/mem/bytes/"+cl.String(), "bytes",
			"bytes moved for the "+cl.String()+" class",
			func() float64 { return float64(c.meters[cl].Total()) })
	}
	reg.Gauge(prefix+"/mem/queue-delay", "ns", "current queueing delay at the controller",
		func() float64 { return float64(c.QueueDelay()) })
	reg.Gauge(prefix+"/mem/backlog", "bytes", "bytes admitted but not yet departed",
		func() float64 { return c.BacklogBytes() })
	reg.Gauge(prefix+"/mem/in-flight", "reqs", "requests currently in the controller",
		func() float64 { return float64(c.InFlight()) })
	reg.Gauge(prefix+"/mem/utilization", "frac", "total utilization vs theoretical bandwidth",
		func() float64 { return c.TotalUtilization() })
}

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	if c.TheoreticalBW <= 0 {
		return fmt.Errorf("mem: TheoreticalBW %v must be positive", c.TheoreticalBW)
	}
	if c.EffectiveBW <= 0 || c.EffectiveBW > c.TheoreticalBW {
		return fmt.Errorf("mem: EffectiveBW %v outside (0, TheoreticalBW]", c.EffectiveBW)
	}
	if c.BaseLatency < 0 {
		return fmt.Errorf("mem: negative BaseLatency %v", c.BaseLatency)
	}
	if c.WriteQueueBytes <= 0 {
		return fmt.Errorf("mem: WriteQueueBytes %d must be positive", c.WriteQueueBytes)
	}
	if c.WriteLoadFactor < 0 || c.LoadLatencyNs < 0 {
		return fmt.Errorf("mem: negative load factors (%v, %v)", c.WriteLoadFactor, c.LoadLatencyNs)
	}
	return nil
}

package mem

import (
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Snapshot encodes the analytic pipe state and per-class accounting.
func (c *Controller) Snapshot(e *snapshot.Encoder) {
	e.I64(int64(c.lastDep))
	e.Int(c.inFlight)
	e.I64(c.Submitted)
	for i := range c.meters {
		c.meters[i].Snapshot(e)
	}
	for i := range c.recent {
		e.I64(int64(c.recent[i].last))
		e.F64(c.recent[i].rate)
	}
	c.backlog.Snapshot(e)
}

// Restore reverses Snapshot.
func (c *Controller) Restore(d *snapshot.Decoder) error {
	c.lastDep = sim.Time(d.I64())
	c.inFlight = d.Int()
	c.Submitted = d.I64()
	for i := range c.meters {
		if err := c.meters[i].Restore(d); err != nil {
			return err
		}
	}
	for i := range c.recent {
		c.recent[i].last = sim.Time(d.I64())
		c.recent[i].rate = d.F64()
	}
	return c.backlog.Restore(d)
}

package mem

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testConfig() Config {
	return Config{
		TheoreticalBW:   sim.GBps(40),
		EffectiveBW:     sim.GBps(40),
		BaseLatency:     100,
		WriteQueueBytes: 4096,
	}
}

func TestUnloadedLatencyIsBasePlusService(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewController(e, testConfig())
	var lat sim.Time
	c.Submit(Request{Size: 4000, Class: ClassIIO, OnComplete: func(l sim.Time) { lat = l }})
	e.Run()
	// 4000B at 40GB/s = 100ns service + 100ns base.
	if lat != 200 {
		t.Fatalf("unloaded latency = %v, want 200ns", lat)
	}
}

func TestQueueingInflatesLatency(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewController(e, testConfig())
	var last sim.Time
	for i := 0; i < 10; i++ {
		c.Submit(Request{Size: 4000, Class: ClassMApp, OnComplete: func(l sim.Time) { last = l }})
	}
	e.Run()
	// 10 requests x 100ns service, FCFS: the last sees 1000ns + 100 base.
	if last != 1100 {
		t.Fatalf("10th request latency = %v, want 1100ns", last)
	}
}

func TestAdmissionGatedByWriteQueue(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewController(e, testConfig()) // 4096B queue = 102.4ns of service
	var admits []sim.Time
	for i := 0; i < 4; i++ {
		c.Submit(Request{Size: 4096, Class: ClassIIO, OnAdmit: func() { admits = append(admits, e.Now()) }})
	}
	e.Run()
	if len(admits) != 4 {
		t.Fatalf("got %d admits", len(admits))
	}
	// First fits in the queue immediately; later ones wait for drain.
	if admits[0] != 0 {
		t.Fatalf("first admit at %v, want 0", admits[0])
	}
	for i := 1; i < 4; i++ {
		if admits[i] <= admits[i-1] {
			t.Fatalf("admissions not strictly increasing: %v", admits)
		}
	}
	// Request i's departure is (i+1)*service; admission is dep - Wq/rate.
	svc := testConfig().EffectiveBW.TimeFor(4096)
	wantLast := 4*svc - svc // dep(3)=4*svc, minus 4096B drain time (=svc)
	if admits[3] != wantLast {
		t.Fatalf("4th admit at %v, want %v", admits[3], wantLast)
	}
}

func TestEfficiencyDeratesService(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewController(e, testConfig())
	var lat sim.Time
	c.Submit(Request{Size: 4000, Class: ClassMApp, Efficiency: 0.5, OnComplete: func(l sim.Time) { lat = l }})
	e.Run()
	// Charged as 8000B: 200ns service + 100 base.
	if lat != 300 {
		t.Fatalf("derated latency = %v, want 300ns", lat)
	}
}

func TestBandwidthConservation(t *testing.T) {
	// Offered load far above capacity: delivered bandwidth must not
	// exceed EffectiveBW.
	e := sim.NewEngine(1)
	c := NewController(e, testConfig())
	c.MarkAll()
	total := 0
	var pump func()
	pump = func() {
		if e.Now() >= 100*sim.Microsecond {
			return
		}
		c.Submit(Request{Size: 1024, Class: ClassMApp})
		c.Submit(Request{Size: 1024, Class: ClassIIO})
		total += 2048
		e.After(10, pump) // 204.8 GB/s offered
	}
	e.After(0, pump)
	e.RunUntil(100 * sim.Microsecond)
	got := sim.Rate(float64(c.BytesOf(ClassMApp)+c.BytesOf(ClassIIO)) / e.Now().Seconds())
	if got.GBps() > c.Config().EffectiveBW.GBps()*1.001 {
		t.Fatalf("delivered %v exceeds capacity %v", got, c.Config().EffectiveBW)
	}
	if got.GBps() < c.Config().EffectiveBW.GBps()*0.95 {
		t.Fatalf("delivered %v; saturated pipe should run near capacity", got)
	}
}

func TestProportionalSharing(t *testing.T) {
	// Two closed-loop requesters with 2:1 window ratio should get ~2:1
	// bandwidth when the pipe is saturated (the paper's observation that
	// memory bandwidth allocation is proportional to offered load).
	e := sim.NewEngine(1)
	c := NewController(e, testConfig())
	c.MarkAll()
	var runA, runB func()
	runA = func() {
		c.Submit(Request{Size: 2048, Class: ClassMApp, OnComplete: func(sim.Time) { runA() }})
	}
	runB = func() {
		c.Submit(Request{Size: 1024, Class: ClassIIO, OnComplete: func(sim.Time) { runB() }})
	}
	// A holds 4x2048, B holds 4x1024 outstanding.
	for i := 0; i < 4; i++ {
		runA()
		runB()
	}
	e.RunUntil(1 * sim.Millisecond)
	a, b := float64(c.BytesOf(ClassMApp)), float64(c.BytesOf(ClassIIO))
	ratio := a / b
	if math.Abs(ratio-2) > 0.15 {
		t.Fatalf("bandwidth ratio = %.3f, want ~2", ratio)
	}
}

func TestMetersAndUtilization(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := testConfig()
	cfg.TheoreticalBW = sim.GBps(50)
	c := NewController(e, cfg)
	c.MarkAll()
	c.Submit(Request{Size: 50_000, Class: ClassNetCopy})
	e.RunUntil(2 * sim.Microsecond)
	// 50KB over 2us = 25GB/s = 50% of 50GBps theoretical.
	if u := c.UtilizationOf(ClassNetCopy); math.Abs(u-0.5) > 0.01 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
	if tu := c.TotalUtilization(); math.Abs(tu-0.5) > 0.01 {
		t.Fatalf("total utilization = %v, want ~0.5", tu)
	}
	if c.BytesOf(ClassNetCopy) != 50_000 {
		t.Fatalf("BytesOf = %d", c.BytesOf(ClassNetCopy))
	}
	if c.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", c.InFlight())
	}
}

func TestEstimateLatencyTracksBacklog(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewController(e, testConfig())
	idle := c.EstimateLatency(1024)
	for i := 0; i < 100; i++ {
		c.Submit(Request{Size: 4096, Class: ClassMApp})
	}
	loaded := c.EstimateLatency(1024)
	if loaded <= idle {
		t.Fatalf("estimate did not grow under load: idle=%v loaded=%v", idle, loaded)
	}
	if c.QueueDelay() == 0 || c.BacklogBytes() == 0 {
		t.Fatal("backlog should be non-zero with 100 queued requests")
	}
	e.Run()
	if c.QueueDelay() != 0 {
		t.Fatalf("queue delay %v after drain", c.QueueDelay())
	}
}

// Property: completions never exceed capacity and latency is always at
// least service+base, for arbitrary request patterns.
func TestLatencyLowerBoundProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		e := sim.NewEngine(3)
		c := NewController(e, testConfig())
		ok := true
		for _, s := range sizes {
			size := int(s%8192) + 1
			minLat := testConfig().EffectiveBW.TimeFor(size) + testConfig().BaseLatency
			c.Submit(Request{Size: size, Class: ClassOther, OnComplete: func(l sim.Time) {
				if l < minLat {
					ok = false
				}
			}})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitValidation(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewController(e, testConfig())
	for name, req := range map[string]Request{
		"zero size":      {Size: 0},
		"negative size":  {Size: -5},
		"bad efficiency": {Size: 1, Efficiency: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			c.Submit(req)
		}()
	}
	for name, cfg := range map[string]Config{
		"no bw":    {EffectiveBW: 0, TheoreticalBW: 1, WriteQueueBytes: 1},
		"no queue": {EffectiveBW: 1, TheoreticalBW: 1, WriteQueueBytes: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewController %s did not panic", name)
				}
			}()
			NewController(e, cfg)
		}()
	}
}

func TestClassString(t *testing.T) {
	if ClassIIO.String() != "iio" || ClassMApp.String() != "mapp" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() == "" {
		t.Fatal("unknown class should still format")
	}
}

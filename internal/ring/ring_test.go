package ring

import "testing"

func TestFIFOOrder(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

func TestWrapAround(t *testing.T) {
	var q Queue[int]
	next, expect := 0, 0
	// Interleave pushes and pops so head/tail wrap many times within a
	// small backing array.
	for round := 0; round < 50; round++ {
		for i := 0; i < 5; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 4; i++ {
			if got := q.Pop(); got != expect {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		if got := q.Pop(); got != expect {
			t.Fatalf("drain: Pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d values, pushed %d", expect, next)
	}
}

func TestPeekAndAt(t *testing.T) {
	var q Queue[string]
	q.Push("a")
	q.Push("b")
	q.Push("c")
	if q.Peek() != "a" {
		t.Fatalf("Peek = %q", q.Peek())
	}
	if q.At(2) != "c" {
		t.Fatalf("At(2) = %q", q.At(2))
	}
	q.Pop()
	if q.At(1) != "c" {
		t.Fatalf("At(1) after Pop = %q", q.At(1))
	}
}

func TestReset(t *testing.T) {
	var q Queue[*int]
	v := 7
	q.Push(&v)
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d", q.Len())
	}
	q.Push(&v)
	if *q.Pop() != 7 {
		t.Fatal("queue unusable after Reset")
	}
}

func TestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty queue did not panic")
		}
	}()
	var q Queue[int]
	q.Pop()
}

func TestNoAllocSteadyState(t *testing.T) {
	var q Queue[int]
	// Prime to peak depth.
	for i := 0; i < 64; i++ {
		q.Push(i)
	}
	for q.Len() > 0 {
		q.Pop()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 64; i++ {
			q.Push(i)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push/Pop allocates %.1f/op, want 0", allocs)
	}
}

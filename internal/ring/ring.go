// Package ring provides a growable FIFO queue backed by a circular
// buffer. Device models previously popped with `q = q[1:]` and pushed
// with append, which leaks the consumed prefix until the next regrowth
// and reallocates the backing array over and over in steady state; the
// ring reuses one backing array forever once it reaches the queue's peak
// depth.
package ring

// Queue is a FIFO of T. The zero value is an empty queue ready for use.
type Queue[T any] struct {
	buf        []T
	head, tail int // tail is one past the last element when len > 0
	n          int
}

// Len reports the number of queued elements.
func (q *Queue[T]) Len() int { return q.n }

// Push appends v to the back of the queue.
func (q *Queue[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[q.tail] = v
	q.tail++
	if q.tail == len(q.buf) {
		q.tail = 0
	}
	q.n++
}

// Pop removes and returns the front element; it panics on an empty queue.
func (q *Queue[T]) Pop() T {
	if q.n == 0 {
		panic("ring: Pop from empty queue")
	}
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // don't retain pointers past their dequeue
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return v
}

// Peek returns the front element without removing it; it panics on an
// empty queue.
func (q *Queue[T]) Peek() T {
	if q.n == 0 {
		panic("ring: Peek of empty queue")
	}
	return q.buf[q.head]
}

// At returns the i-th element from the front (0 = front) without
// removing it.
func (q *Queue[T]) At(i int) T {
	if i < 0 || i >= q.n {
		panic("ring: At out of range")
	}
	j := q.head + i
	if j >= len(q.buf) {
		j -= len(q.buf)
	}
	return q.buf[j]
}

// Reset empties the queue, zeroing stored elements so no pointers are
// retained, while keeping the backing array for reuse.
func (q *Queue[T]) Reset() {
	var zero T
	for i := 0; i < q.n; i++ {
		j := q.head + i
		if j >= len(q.buf) {
			j -= len(q.buf)
		}
		q.buf[j] = zero
	}
	q.head, q.tail, q.n = 0, 0, 0
}

func (q *Queue[T]) grow() {
	newCap := len(q.buf) * 2
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]T, newCap)
	for i := 0; i < q.n; i++ {
		j := q.head + i
		if j >= len(q.buf) {
			j -= len(q.buf)
		}
		buf[i] = q.buf[j]
	}
	q.buf = buf
	q.head, q.tail = 0, q.n
	if q.tail == len(q.buf) {
		q.tail = 0
	}
}

package core

import (
	"testing"

	"repro/internal/sim"
)

func TestTargetBandwidthPolicyRegimes(t *testing.T) {
	p := TargetBandwidthPolicy{IT: 70, BTBytes: float64(sim.Gbps(84))}
	cases := []struct {
		name   string
		is, bs float64
		want   Action
	}{
		{"regime 1: idle host, target met", 40, float64(sim.Gbps(100)), Lower},
		{"regime 2: congested, target met", 90, float64(sim.Gbps(100)), Hold},
		{"regime 3: congested, below target", 90, float64(sim.Gbps(40)), Raise},
		{"regime 4: idle host, below target", 40, float64(sim.Gbps(40)), Hold},
	}
	for _, c := range cases {
		got := p.Decide(Signals{IS: c.is, BSBytes: c.bs, Level: 2, NumLevels: 5})
		if got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
	if p.Name() == "" {
		t.Error("empty policy name")
	}
}

func TestElasticPolicyHysteresis(t *testing.T) {
	p := ElasticPolicy{IT: 70, Headroom: 10}
	if got := p.Decide(Signals{IS: 80}); got != Raise {
		t.Errorf("above threshold: %v", got)
	}
	if got := p.Decide(Signals{IS: 65}); got != Hold {
		t.Errorf("inside hysteresis band: %v", got)
	}
	if got := p.Decide(Signals{IS: 50}); got != Lower {
		t.Errorf("below band: %v", got)
	}
}

func TestHostCCWithElasticPolicy(t *testing.T) {
	cfg := DefaultConfig(false)
	cfg.Policy = ElasticPolicy{IT: 70, Headroom: 15}
	e, fc, mba, h := newRig(t, cfg)
	// Persistent congestion: the elastic policy escalates regardless of
	// any bandwidth target.
	fc.setOcc(90)
	tk := fc.insertAtRate(sim.Gbps(100), sim.Microsecond) // above BT
	h.Start()
	e.RunUntil(400 * sim.Microsecond)
	if mba.Level() != 4 {
		t.Fatalf("elastic policy level = %d under congestion, want 4", mba.Level())
	}
	// Clear congestion: the level decays even though BS stays high.
	tk.Stop()
	fc.setOcc(20)
	fc.insertAtRate(sim.Gbps(100), sim.Microsecond)
	e.RunUntil(e.Now() + 400*sim.Microsecond)
	h.Stop()
	if mba.Level() != 0 {
		t.Fatalf("elastic policy level = %d after congestion cleared, want 0", mba.Level())
	}
}

func TestHostDelayLittlesLaw(t *testing.T) {
	cfg := DefaultConfig(false)
	e, fc, _, h := newRig(t, cfg)
	// Occupancy 65 lines at 103 Gbps: delay = 65*64B / 12.875GB/s = 323ns.
	fc.setOcc(65)
	fc.insertAtRate(sim.Gbps(103), sim.Microsecond)
	h.Start()
	e.RunUntil(3 * sim.Millisecond) // let the slow BS EWMA converge
	h.Stop()
	d := h.HostDelay()
	if d < 280 || d > 380 {
		t.Fatalf("host delay = %v, want ~323ns", d)
	}
}

func TestDelaySignalCongestionDetection(t *testing.T) {
	cfg := DefaultConfig(false)
	cfg.UseDelaySignal = true
	cfg.DT = 500 * sim.Nanosecond
	e, fc, _, h := newRig(t, cfg)
	fc.setOcc(65)
	fc.insertAtRate(sim.Gbps(103), sim.Microsecond)
	h.Start()
	e.RunUntil(3 * sim.Millisecond)
	if h.Congested() {
		t.Fatalf("delay %v below DT should not be congested", h.HostDelay())
	}
	// Occupancy spikes at the same bandwidth: delay rises above DT.
	fc.setOcc(200)
	e.RunUntil(e.Now() + 100*sim.Microsecond)
	h.Stop()
	if !h.Congested() {
		t.Fatalf("delay %v above DT should be congested", h.HostDelay())
	}
}

func TestDelaySignalRequiresDT(t *testing.T) {
	cfg := DefaultConfig(false)
	cfg.UseDelaySignal = true // DT left zero
	if err := cfg.Validate(); err == nil {
		t.Error("delay signal without DT passed Validate")
	}
	_, _, _, h := newRig(t, cfg)
	if h.Config().UseDelaySignal {
		t.Error("Sanitize left the delay signal enabled with DT = 0")
	}
}

func TestActionString(t *testing.T) {
	for a, s := range map[Action]string{Hold: "hold", Raise: "raise", Lower: "lower", Action(9): "unknown"} {
		if a.String() != s {
			t.Errorf("Action(%d) = %q, want %q", a, a.String(), s)
		}
	}
}

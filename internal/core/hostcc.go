// Package core implements hostCC, the paper's contribution: a congestion
// control architecture that handles host congestion alongside network
// fabric congestion (§3, §4). It embodies the three key ideas:
//
//  1. Host congestion signals: IIO occupancy (I_S) and PCIe bandwidth
//     (B_S), sampled from hardware counters at sub-µs granularity via MSR
//     reads that are off the NIC-to-memory datapath (§3.1, §4.1).
//
//  2. Sub-RTT host-local congestion response: a four-regime controller
//     (Figure 6) that allocates host resources between network traffic
//     and host-local traffic by adjusting Intel MBA throttle levels
//     (§3.2, §4.2).
//
//  3. Network resource allocation at RTT granularity: when the host is
//     congested, hostCC CE-marks inbound packets at the NetFilter hook
//     position, so the unmodified network congestion control protocol
//     (e.g. DCTCP) reduces the sender's rate exactly as it would for
//     switch congestion (§3.3, §4.3).
//
// The module interacts with the host only through the same interfaces the
// ~800 LOC Linux kernel module uses: MSR reads (with realistic latency),
// MBA MSR writes (22 µs), and a receive hook.
package core

import (
	"fmt"

	"repro/internal/msr"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Mode selects which hostCC responses are active; the ablation of
// Figure 18 exercises the partial modes.
type Mode int

// Modes.
const (
	// ModeFull runs both the host-local response and ECN echo (default).
	ModeFull Mode = iota
	// ModeEchoOnly only echoes host congestion to the network CC.
	ModeEchoOnly
	// ModeLocalOnly only runs the host-local MBA response.
	ModeLocalOnly
	// ModeOff disables hostCC (signals still sampled, for measurement).
	ModeOff
)

func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeEchoOnly:
		return "echo-only"
	case ModeLocalOnly:
		return "local-only"
	case ModeOff:
		return "off"
	}
	return "unknown"
}

// LevelController abstracts the host resource allocation mechanism
// (implemented by cpu.MBA). RequestLevel must tolerate repeated calls and
// account for its own write latency.
type LevelController interface {
	RequestLevel(l int)
	Level() int
	NumLevels() int
}

// Config holds hostCC's two parameters plus mechanism constants (§5:
// "hostCC has only two parameters B_T and I_T").
type Config struct {
	// IT is the IIO occupancy threshold: I_S > I_T indicates host
	// congestion. Default 70 with DDIO disabled; 50 enabled (§5, §5.2).
	IT float64
	// BT is the target network bandwidth (default 80 Gbps).
	BT sim.Rate
	// PCIeOverhead converts B_T into its on-PCIe equivalent: with 4K MTU
	// and default TLPs the measured B_S carries ~5% overhead (§5.4
	// compares B_S against 84 Gbps for B_T = 80 Gbps).
	PCIeOverhead float64
	// WeightIS and WeightBS are the signal EWMA weights (1/8 and 1/256;
	// §4.1 discusses the aggressiveness/delay trade-off).
	WeightIS float64
	WeightBS float64
	// SampleInterval is the signal sampling period. Two MSR reads cost
	// ~1.2 µs, so the default is 2 µs — still far below the ~44 µs RTT.
	SampleInterval sim.Time
	// Mode selects active responses.
	Mode Mode
	// Policy selects the host resource allocation policy; nil uses the
	// paper's TargetBandwidthPolicy built from IT and BT (§3.2 leaves
	// the policy pluggable).
	Policy Policy
	// UseDelaySignal switches congestion detection from the occupancy
	// threshold to the host-delay signal computed via Little's law
	// (ℓp + ℓm ≈ I_S × cacheline / B_S), the §3.1/§6 extension that
	// lets hostCC pair with delay-based protocols.
	UseDelaySignal bool
	// DT is the host-delay threshold when UseDelaySignal is set.
	DT sim.Time
	// Watchdog, when non-nil, arms the signal/actuation failsafe (see
	// watchdog.go). The zero WatchdogConfig selects all defaults.
	Watchdog *WatchdogConfig
}

// Validate reports the first invalid parameter of the configuration. New
// clamps these same parameters (see Sanitize), so an invalid Config is
// usable but silently differs from what was asked — callers that care
// should Validate first.
func (c Config) Validate() error {
	if c.SampleInterval <= 0 {
		return fmt.Errorf("core: SampleInterval %v must be positive (zero would busy-loop the event queue)", c.SampleInterval)
	}
	if c.IT <= 0 {
		return fmt.Errorf("core: IT %v must be positive", c.IT)
	}
	if c.BT <= 0 {
		return fmt.Errorf("core: BT %v must be positive", c.BT)
	}
	if c.WeightIS <= 0 || c.WeightIS > 1 {
		return fmt.Errorf("core: WeightIS %v outside (0,1]", c.WeightIS)
	}
	if c.WeightBS <= 0 || c.WeightBS > 1 {
		return fmt.Errorf("core: WeightBS %v outside (0,1]", c.WeightBS)
	}
	if c.PCIeOverhead < 1 {
		return fmt.Errorf("core: PCIeOverhead %v below 1", c.PCIeOverhead)
	}
	if c.UseDelaySignal && c.DT <= 0 {
		return fmt.Errorf("core: delay signal requires a positive DT, got %v", c.DT)
	}
	return nil
}

// Sanitize returns a copy with every invalid parameter clamped to its
// paper default, plus the validation error (nil when nothing needed
// clamping). A zero or negative SampleInterval would busy-loop the event
// queue; zero thresholds would pin the controller in one regime — New
// refuses to construct a module that does either.
func (c Config) Sanitize() (Config, error) {
	err := c.Validate()
	d := DefaultConfig(false)
	if c.SampleInterval <= 0 {
		c.SampleInterval = d.SampleInterval
	}
	if c.IT <= 0 {
		c.IT = d.IT
	}
	if c.BT <= 0 {
		c.BT = d.BT
	}
	if c.WeightIS <= 0 || c.WeightIS > 1 {
		c.WeightIS = d.WeightIS
	}
	if c.WeightBS <= 0 || c.WeightBS > 1 {
		c.WeightBS = d.WeightBS
	}
	if c.PCIeOverhead < 1 {
		c.PCIeOverhead = d.PCIeOverhead
	}
	if c.UseDelaySignal && c.DT <= 0 {
		c.UseDelaySignal = false
	}
	return c, err
}

// DefaultConfig returns the paper's default parameters.
func DefaultConfig(ddio bool) Config {
	it := 70.0
	if ddio {
		it = 50.0
	}
	return Config{
		IT:             it,
		BT:             sim.Gbps(80),
		PCIeOverhead:   1.05,
		WeightIS:       1.0 / 8,
		WeightBS:       1.0 / 256,
		SampleInterval: 2 * sim.Microsecond,
		Mode:           ModeFull,
	}
}

// HostCC is one host's congestion-control module.
type HostCC struct {
	e   *sim.Engine
	f   *msr.File
	mba LevelController
	cfg Config

	isEWMA *stats.EWMA
	bsEWMA *stats.EWMA

	lastROCC   uint64
	lastROCCAt sim.Time
	lastRINS   uint64
	lastRINSAt sim.Time
	seeded     bool

	running bool

	// wd is the signal/actuation failsafe (nil when not configured).
	wd *Watchdog

	// ReadLatency records every MSR read's latency (Figure 7).
	ReadLatency *stats.Histogram

	// Counters.
	MarkedPackets stats.Counter
	Samples       stats.Counter
	FailedSamples stats.Counter
	LevelRaises   stats.Counter
	LevelDrops    stats.Counter

	// Telemetry (nil when disabled): signal tracks, the CE-mark track,
	// and per-sample spans forming the decision audit (MSR read → level
	// change).
	tr        *telemetry.Tracer
	trIS      *telemetry.Track
	trBS      *telemetry.Track
	trMarked  *telemetry.Track
	sampleSeq uint64
}

// New creates a hostCC module reading signals from f and driving mba.
// Invalid Config parameters (zero or negative SampleInterval, IT, BT,
// weights) are clamped to the paper defaults — see Config.Sanitize; use
// Validate to detect them before construction.
func New(e *sim.Engine, f *msr.File, mba LevelController, cfg Config) *HostCC {
	if f == nil {
		panic("core: nil MSR file")
	}
	if cfg.Mode != ModeEchoOnly && cfg.Mode != ModeOff && mba == nil {
		panic("core: host-local response requires a level controller")
	}
	cfg, _ = cfg.Sanitize()
	if cfg.Policy == nil {
		cfg.Policy = TargetBandwidthPolicy{
			IT:      cfg.IT,
			BTBytes: float64(cfg.BT) * cfg.PCIeOverhead,
		}
	}
	h := &HostCC{
		e:           e,
		f:           f,
		mba:         mba,
		cfg:         cfg,
		isEWMA:      stats.NewEWMA(cfg.WeightIS),
		bsEWMA:      stats.NewEWMA(cfg.WeightBS),
		ReadLatency: stats.NewHistogram(30),
	}
	if cfg.Watchdog != nil {
		h.wd = newWatchdog(e, mba, *cfg.Watchdog)
	}
	return h
}

// SetTracer attaches the hostCC decision-audit telemetry (named under
// prefix): filtered-signal and CE-mark counter tracks, plus one span per
// signal sample covering MSR read through response. Call before Start.
func (h *HostCC) SetTracer(t *telemetry.Tracer, prefix string) {
	h.tr = t
	h.trIS = t.NewTrack(prefix+"/hostcc/is", "lines")
	h.trBS = t.NewTrack(prefix+"/hostcc/bs", "gbps")
	h.trMarked = t.NewTrack(prefix+"/hostcc/marked", "pkts")
}

// RegisterInstruments registers hostCC's metrics under prefix.
func (h *HostCC) RegisterInstruments(reg *telemetry.Registry, prefix string) {
	reg.Gauge(prefix+"/hostcc/is", "lines", "filtered IIO occupancy signal I_S",
		func() float64 { return h.IS() })
	reg.Gauge(prefix+"/hostcc/bs", "bytes/s", "filtered PCIe bandwidth signal B_S",
		func() float64 { return float64(h.BS()) })
	reg.Gauge(prefix+"/hostcc/level", "level", "current host-local response level",
		func() float64 { return float64(h.Level()) })
	reg.Counter(prefix+"/hostcc/samples", "samples", "signal samples completed",
		func() float64 { return float64(h.Samples.Total()) })
	reg.Counter(prefix+"/hostcc/failed-samples", "samples", "signal samples aborted by MSR read faults",
		func() float64 { return float64(h.FailedSamples.Total()) })
	reg.Counter(prefix+"/hostcc/level-raises", "events", "host-local response level raises",
		func() float64 { return float64(h.LevelRaises.Total()) })
	reg.Counter(prefix+"/hostcc/level-drops", "events", "host-local response level drops",
		func() float64 { return float64(h.LevelDrops.Total()) })
	reg.Counter(prefix+"/hostcc/marked", "pkts", "inbound packets CE-marked by the host",
		func() float64 { return float64(h.MarkedPackets.Total()) })
	reg.Histogram(prefix+"/hostcc/read-latency", "ns", "MSR read latency (Figure 7)",
		h.ReadLatency)
}

// Watchdog returns the failsafe, or nil when not configured.
func (h *HostCC) Watchdog() *Watchdog { return h.wd }

// Config returns the module configuration.
func (h *HostCC) Config() Config { return h.cfg }

// Start begins signal sampling and response.
func (h *HostCC) Start() {
	if h.running {
		panic("core: hostCC started twice")
	}
	h.running = true
	if h.wd != nil {
		h.wd.start()
	}
	h.sample()
}

// Stop halts sampling after the in-flight sample completes.
func (h *HostCC) Stop() {
	h.running = false
	if h.wd != nil {
		h.wd.stop()
	}
}

// sample performs one signal collection: two dependent MSR reads (ROCC,
// then RINS) with TSC timestamps, exactly as §4.1 describes. A failed
// read aborts the sample — no partial snapshot is folded into the signal
// state — and the failure is reported to the watchdog (when armed).
func (h *HostCC) sample() {
	if !h.running {
		return
	}
	id := h.sampleSeq
	h.sampleSeq++
	h.tr.RangeBegin(telemetry.HopSample, id, h.e.Now())
	h.f.Read(msr.IIOOccupancy, func(rocc uint64, lat sim.Time, err error) {
		h.ReadLatency.Add(float64(lat))
		if err != nil {
			h.sampleFailed(id)
			return
		}
		tRocc := h.f.ReadTSC()
		h.f.Read(msr.IIOInsertions, func(rins uint64, lat2 sim.Time, err error) {
			h.ReadLatency.Add(float64(lat2))
			if err != nil {
				h.sampleFailed(id)
				return
			}
			tRins := h.f.ReadTSC()
			h.ingest(rocc, tRocc, rins, tRins)
			h.tr.RangeEnd(telemetry.HopSample, id, h.e.Now(), "sampled")
			h.e.After(h.cfg.SampleInterval, h.sample)
		})
	})
}

// sampleFailed accounts one failed signal collection and keeps the
// sampling loop alive: the signal EWMAs are left untouched and the next
// sample is scheduled normally (the kernel module's rdmsr wrapper does
// the same — a fault is logged, the sample skipped).
func (h *HostCC) sampleFailed(id uint64) {
	h.FailedSamples.Inc()
	h.tr.RangeEnd(telemetry.HopSample, id, h.e.Now(), "read-failed")
	if h.wd != nil {
		h.wd.noteReadFailure()
	}
	h.e.After(h.cfg.SampleInterval, h.sample)
}

// ingest folds one counter snapshot into the signal EWMAs and triggers
// the response.
func (h *HostCC) ingest(rocc uint64, tRocc sim.Time, rins uint64, tRins sim.Time) {
	h.Samples.Inc()
	moved := !h.seeded || rocc != h.lastROCC || rins != h.lastRINS
	if h.seeded {
		if dt := tRocc - h.lastROCCAt; dt > 0 {
			// Average occupancy: ΔROCC / (Δt × F_IIO), §4.1.
			is := float64(rocc-h.lastROCC) / (dt.Seconds() * msr.FIIOHz)
			h.isEWMA.Update(is)
		}
		if dt := tRins - h.lastRINSAt; dt > 0 {
			// PCIe bandwidth: insertion rate × cacheline size.
			bs := float64(rins-h.lastRINS) * 64 / dt.Seconds()
			h.bsEWMA.Update(bs)
		}
	}
	h.lastROCC, h.lastROCCAt = rocc, tRocc
	h.lastRINS, h.lastRINSAt = rins, tRins
	h.seeded = true
	h.trIS.Set(h.e.Now(), h.isEWMA.Value())
	h.trBS.Set(h.e.Now(), h.bsEWMA.Value()*8/1e9)
	if h.wd != nil {
		// Counters that stop moving while the filtered bandwidth says
		// traffic was flowing are a stuck sensor, not an idle host.
		loaded := h.bsEWMA.Value() > h.wd.cfg.LoadFloorBytes
		h.wd.noteSample(moved, loaded)
	}
	h.respond()
}

// IS returns the filtered IIO occupancy signal.
func (h *HostCC) IS() float64 { return h.isEWMA.Value() }

// BS returns the filtered PCIe bandwidth signal (bytes/sec).
func (h *HostCC) BS() sim.Rate { return sim.Rate(h.bsEWMA.Value()) }

// HostDelay estimates the NIC-to-memory delay (ℓp + ℓm) from the two
// signals via Little's law: average occupancy divided by insertion rate
// (§3.1). Zero when no bandwidth signal is available yet.
func (h *HostCC) HostDelay() sim.Time {
	bs := h.bsEWMA.Value()
	if bs <= 0 {
		return 0
	}
	// IS lines × 64 bytes each, drained at bs bytes/sec.
	return sim.Time(h.isEWMA.Value() * 64 / bs * 1e9)
}

// Congested reports whether the host congestion signal exceeds its
// threshold (IIO occupancy > I_T, or host delay > D_T with the delay
// signal enabled).
func (h *HostCC) Congested() bool {
	if h.cfg.UseDelaySignal {
		return h.HostDelay() > h.cfg.DT
	}
	return h.IS() > h.cfg.IT
}

// targetBS is B_T expressed in on-PCIe bytes (incl. TLP overhead).
func (h *HostCC) targetBS() sim.Rate {
	return sim.Rate(float64(h.cfg.BT) * h.cfg.PCIeOverhead)
}

// BelowTarget reports whether network traffic is under its target
// bandwidth (B_S < B_T).
func (h *HostCC) BelowTarget() bool { return h.BS() < h.targetBS() }

// Level returns the current host-local response level.
func (h *HostCC) Level() int {
	if h.mba == nil {
		return 0
	}
	return h.mba.Level()
}

// respond applies the configured policy (by default the four regimes of
// Figure 6) to the current signals. While the watchdog is in fallback the
// policy is bypassed: its inputs are exactly the signals the watchdog
// distrusts, so the level stays pinned at the conservative fallback.
func (h *HostCC) respond() {
	if h.cfg.Mode == ModeOff || h.cfg.Mode == ModeEchoOnly || h.mba == nil {
		return
	}
	if h.wd != nil && h.wd.State() == WatchdogFallback {
		return
	}
	cur := h.mba.Level()
	act := h.cfg.Policy.Decide(Signals{
		IS:        h.IS(),
		BSBytes:   float64(h.BS()),
		Level:     cur,
		NumLevels: h.mba.NumLevels(),
	})
	switch act {
	case Raise:
		// Regime 3: reduce host-local traffic's resources (more
		// backpressure), in addition to the ECN echo.
		if cur+1 < h.mba.NumLevels() {
			h.requestLevel(cur + 1)
			h.LevelRaises.Inc()
		}
	case Lower:
		// Regime 1: network traffic met its target and the host is not
		// congested — return resources to host-local traffic.
		if cur > 0 {
			h.requestLevel(cur - 1)
			h.LevelDrops.Inc()
		}
	case Hold:
		// Regime 2 (congested, target met): echo only; level unchanged.
		// Regime 4 (not congested, below target): hold, letting network
		// traffic grow into the target before host-local traffic does.
	}
}

// requestLevel issues a level change and registers the intent with the
// watchdog for actuation read-back (a silently dropped MBA write is
// re-issued with backoff).
func (h *HostCC) requestLevel(l int) {
	if h.tr != nil {
		// The audit instant ties the decision to the signals it was made
		// on; the MBA's write span then shows when it took effect.
		h.tr.Instant(telemetry.HopMBAWrite, "hostcc-level-request", h.e.Now(),
			telemetry.KV{Key: "level", Val: float64(l)},
			telemetry.KV{Key: "is", Val: h.IS()},
			telemetry.KV{Key: "bs_gbps", Val: float64(h.BS()) * 8 / 1e9})
	}
	if h.wd != nil {
		h.wd.noteRequest(l)
	}
	h.mba.RequestLevel(l)
}

// ReceiveHook returns the NetFilter-position hook implementing the ECN
// echo: while the host congestion signal exceeds I_T, inbound ECT packets
// are CE-marked before transport delivery, exactly as a congested switch
// would mark them (§4.3). Packets already CE-marked by the fabric pass
// through unchanged.
func (h *HostCC) ReceiveHook() func(*packet.Packet) {
	return func(p *packet.Packet) {
		if h.cfg.Mode == ModeOff || h.cfg.Mode == ModeLocalOnly {
			return
		}
		if !p.IsData() || p.ECN != packet.ECT0 {
			return
		}
		if h.Congested() {
			p.ECN = packet.CE
			p.MarkedByHost = true
			h.MarkedPackets.Inc()
			h.trMarked.Set(h.e.Now(), float64(h.MarkedPackets.Total()))
		}
	}
}

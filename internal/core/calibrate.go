package core

import "repro/internal/sim"

// Calibration of the occupancy threshold. The paper picks I_T = 70 by
// measuring idle occupancy (~65 with DDIO off) and adding headroom, and
// I_T = 50 with DDIO enabled (idle ~45, §5.2). Hardware (and DDIO
// configuration) varies, so a deployment needs to repeat that measurement;
// Calibrate automates it: sample the uncongested occupancy signal for a
// window, then set I_T to the observed level times a margin factor.

// DefaultCalibrationMargin reproduces the paper's choices: 65×1.08 ≈ 70
// and 45×1.11 ≈ 50; 1.1 splits the difference.
const DefaultCalibrationMargin = 1.1

// Calibrate measures the occupancy signal for the given duration and then
// sets I_T = measured × margin (margin <= 0 uses the default). done, if
// non-nil, receives the chosen threshold. Sampling must already be
// running (Start), and the host should be carrying representative
// *uncongested* network traffic during the window.
func (h *HostCC) Calibrate(window sim.Time, margin float64, done func(it float64)) {
	if window <= 0 {
		panic("core: non-positive calibration window")
	}
	if margin <= 0 {
		margin = DefaultCalibrationMargin
	}
	if !h.running {
		panic("core: Calibrate requires a running sampler")
	}
	h.e.After(window, func() {
		it := h.isEWMA.Value() * margin
		if it > 0 {
			h.SetIT(it)
		}
		if done != nil {
			done(h.cfg.IT)
		}
	})
}

// SetIT replaces the occupancy threshold, updating the default policy if
// it is in use. Custom policies hold their own thresholds and are not
// touched.
func (h *HostCC) SetIT(it float64) {
	if it <= 0 {
		panic("core: non-positive I_T")
	}
	h.cfg.IT = it
	if p, ok := h.cfg.Policy.(TargetBandwidthPolicy); ok {
		p.IT = it
		h.cfg.Policy = p
	}
}

// IT returns the current occupancy threshold.
func (h *HostCC) IT() float64 { return h.cfg.IT }

package core

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestCalibrateSetsThresholdFromIdleOccupancy(t *testing.T) {
	cfg := DefaultConfig(false)
	e, fc, _, h := newRig(t, cfg)
	fc.setOcc(65) // DDIO-off idle occupancy
	fc.insertAtRate(sim.Gbps(103), sim.Microsecond)
	h.Start()
	var chosen float64
	h.Calibrate(500*sim.Microsecond, 1.08, func(it float64) { chosen = it })
	e.RunUntil(1 * sim.Millisecond)
	h.Stop()
	// 65 x 1.08 ~ 70.2: the paper's I_T.
	if math.Abs(chosen-70.2) > 2 {
		t.Fatalf("calibrated I_T = %.1f, want ~70", chosen)
	}
	if h.IT() != chosen {
		t.Fatalf("IT() = %.1f, chosen %.1f", h.IT(), chosen)
	}
	// The default policy picked up the new threshold: occupancy just
	// below it must not be congested.
	fc.setOcc(chosen - 3)
	e.RunUntil(e.Now() + 100*sim.Microsecond)
	if h.Congested() {
		t.Fatal("below calibrated threshold should not be congested")
	}
}

func TestCalibrateDDIOMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(true) // starts at IT=50
	e, fc, _, h := newRig(t, cfg)
	fc.setOcc(45) // DDIO-on idle occupancy
	fc.insertAtRate(sim.Gbps(103), sim.Microsecond)
	h.Start()
	var chosen float64
	h.Calibrate(500*sim.Microsecond, 0 /* default margin */, func(it float64) { chosen = it })
	e.RunUntil(1 * sim.Millisecond)
	h.Stop()
	// 45 x 1.1 ~ 49.5 ~ the paper's DDIO I_T of 50.
	if math.Abs(chosen-49.5) > 2 {
		t.Fatalf("calibrated DDIO I_T = %.1f, want ~50", chosen)
	}
}

func TestCalibrateValidation(t *testing.T) {
	cfg := DefaultConfig(false)
	_, _, _, h := newRig(t, cfg)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("calibrate without running sampler did not panic")
			}
		}()
		h.Calibrate(100, 1.1, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetIT(0) did not panic")
			}
		}()
		h.SetIT(0)
	}()
	h.Start()
	defer h.Stop()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero window did not panic")
			}
		}()
		h.Calibrate(0, 1.1, nil)
	}()
}

package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// WatchdogState is the failsafe state machine's position.
type WatchdogState int

// Watchdog states.
const (
	// WatchdogArmed: signals are healthy; the policy controls the level.
	WatchdogArmed WatchdogState = iota
	// WatchdogFallback: the signal path is untrustworthy (failed or
	// frozen MSR reads); the level is pinned at the conservative
	// fallback until the signal returns.
	WatchdogFallback
)

func (s WatchdogState) String() string {
	switch s {
	case WatchdogArmed:
		return "armed"
	case WatchdogFallback:
		return "fallback"
	}
	return "unknown"
}

// WatchdogConfig parameterizes the signal watchdog.
type WatchdogConfig struct {
	// StaleThreshold trips the watchdog when no healthy sample has
	// landed for this long (a wedged sampling loop, sustained read
	// failures). Default 50 µs — ~25 sample periods, ~1 RTT.
	StaleThreshold sim.Time
	// FailThreshold trips after this many consecutive failed MSR reads.
	// Default 8.
	FailThreshold int
	// FrozenThreshold trips after this many consecutive samples whose
	// raw counters did not move while the host was demonstrably loaded —
	// counters that stopped counting. Default 16.
	FrozenThreshold int
	// LoadFloorBytes gates frozen detection: counters are expected to
	// move only while the filtered PCIe bandwidth exceeds this (bytes/s).
	// Default 1 MB/s.
	LoadFloorBytes float64
	// FallbackLevel is the conservative MBA level pinned while blind;
	// -1 (and the zero value) select the strongest non-pause level
	// (NumLevels-2). Being conservative means over-throttling the MApp:
	// network traffic keeps its resources even though the congestion
	// signal is gone. Level 0 (no throttle) is not a valid fallback — it
	// would hand the blind period to the MApp.
	FallbackLevel int
	// RecoverySamples is the number of consecutive healthy samples
	// required to re-arm out of fallback. Default 8.
	RecoverySamples int
	// RetryBackoff is the initial delay before re-issuing an MBA level
	// write that did not take effect (read-back mismatch); it doubles up
	// to MaxRetryBackoff. Defaults 44 µs / 1 ms. It must exceed the MBA
	// write latency or healthy in-flight writes would be double-issued.
	RetryBackoff    sim.Time
	MaxRetryBackoff sim.Time
	// CheckInterval is the staleness/read-back poll period.
	// Default StaleThreshold/4.
	CheckInterval sim.Time
}

// DefaultWatchdogConfig returns the default failsafe parameters.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{
		StaleThreshold:  50 * sim.Microsecond,
		FailThreshold:   8,
		FrozenThreshold: 16,
		LoadFloorBytes:  1e6,
		FallbackLevel:   -1,
		RecoverySamples: 8,
		RetryBackoff:    44 * sim.Microsecond,
		MaxRetryBackoff: sim.Millisecond,
	}
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	d := DefaultWatchdogConfig()
	if c.StaleThreshold <= 0 {
		c.StaleThreshold = d.StaleThreshold
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = d.FailThreshold
	}
	if c.FrozenThreshold <= 0 {
		c.FrozenThreshold = d.FrozenThreshold
	}
	if c.LoadFloorBytes <= 0 {
		c.LoadFloorBytes = d.LoadFloorBytes
	}
	if c.FallbackLevel <= 0 {
		c.FallbackLevel = -1
	}
	if c.RecoverySamples <= 0 {
		c.RecoverySamples = d.RecoverySamples
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = d.RetryBackoff
	}
	if c.MaxRetryBackoff < c.RetryBackoff {
		c.MaxRetryBackoff = d.MaxRetryBackoff
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = c.StaleThreshold / 4
	}
	return c
}

// Watchdog is hostCC's failsafe: it cross-checks the signal path (MSR
// reads can fail, stall, or freeze) and the actuation path (MBA writes
// can be silently dropped), pinning the host-local response at a
// conservative level while blind and re-arming with bounded recovery once
// the signal returns. It exists because a congestion controller that
// trusts its sensors unconditionally turns a sensor fault into a
// congestion-control fault (§4.1's sampling loop and §4.2's MBA writes
// are exactly such sensors/actuators on real hardware).
type Watchdog struct {
	e   *sim.Engine
	cfg WatchdogConfig
	mba LevelController

	state        WatchdogState
	reason       string
	lastGoodAt   sim.Time
	consecFails  int
	consecFrozen int
	consecGood   int

	// Actuation read-back state.
	desired     int
	haveDesired bool
	backoff     sim.Time
	lastRetryAt sim.Time

	ticker *sim.Ticker

	// Trips counts Armed→Fallback transitions; Rearms the way back;
	// Retries counts MBA writes re-issued after read-back mismatch.
	Trips  stats.Counter
	Rearms stats.Counter
	// Retries counts re-issued MBA level writes.
	Retries stats.Counter
}

// newWatchdog creates the watchdog (started by HostCC.Start).
func newWatchdog(e *sim.Engine, mba LevelController, cfg WatchdogConfig) *Watchdog {
	return &Watchdog{
		e:          e,
		cfg:        cfg.withDefaults(),
		mba:        mba,
		lastGoodAt: e.Now(),
	}
}

// State returns the current failsafe state.
func (w *Watchdog) State() WatchdogState { return w.state }

// Reason describes what tripped the watchdog (empty while armed).
func (w *Watchdog) Reason() string { return w.reason }

// Config returns the effective (defaulted) configuration.
func (w *Watchdog) Config() WatchdogConfig { return w.cfg }

// FallbackLevel resolves the configured conservative level against the
// attached controller.
func (w *Watchdog) FallbackLevel() int {
	if w.mba == nil {
		return 0
	}
	n := w.mba.NumLevels()
	l := w.cfg.FallbackLevel
	if l < 0 {
		l = n - 2 // strongest non-pause level
	}
	if l < 0 {
		l = 0
	}
	if l >= n {
		l = n - 1
	}
	return l
}

func (w *Watchdog) start() {
	w.ticker = sim.NewTicker(w.e, w.cfg.CheckInterval, w.check)
}

func (w *Watchdog) stop() {
	if w.ticker != nil {
		w.ticker.Stop()
	}
}

// noteReadFailure records one failed MSR read (a whole sample aborted).
func (w *Watchdog) noteReadFailure() {
	w.consecFails++
	w.consecGood = 0
	if w.consecFails >= w.cfg.FailThreshold {
		w.trip("msr-read-failures")
	}
}

// noteSample records one completed sample. moved reports whether either
// raw counter advanced; loaded whether the host plausibly had traffic
// (so an idle host's flat counters are not mistaken for a fault).
func (w *Watchdog) noteSample(moved, loaded bool) {
	w.consecFails = 0
	if !moved && loaded {
		w.consecFrozen++
		w.consecGood = 0
		if w.consecFrozen >= w.cfg.FrozenThreshold {
			w.trip("counters-frozen")
		}
		return
	}
	w.consecFrozen = 0
	w.lastGoodAt = w.e.Now()
	w.consecGood++
	if w.state == WatchdogFallback && w.consecGood >= w.cfg.RecoverySamples {
		w.rearm()
	}
}

// noteRequest records the level the controller intends to be in force,
// for actuation read-back.
func (w *Watchdog) noteRequest(l int) {
	if !w.haveDesired || w.desired != l {
		w.desired = l
		w.haveDesired = true
		w.lastRetryAt = w.e.Now()
		w.backoff = w.cfg.RetryBackoff
	}
}

func (w *Watchdog) trip(reason string) {
	if w.state == WatchdogFallback {
		return
	}
	w.state = WatchdogFallback
	w.reason = reason
	w.consecGood = 0
	w.Trips.Inc()
	if w.mba != nil {
		fl := w.FallbackLevel()
		w.noteRequest(fl)
		w.mba.RequestLevel(fl)
	}
}

func (w *Watchdog) rearm() {
	w.state = WatchdogArmed
	w.reason = ""
	w.consecFrozen = 0
	w.consecFails = 0
	w.Rearms.Inc()
}

// check runs on the ticker: staleness detection (a wedged sampling loop
// produces no noteSample calls at all, so it must be time-driven) and
// MBA write read-back with exponential backoff.
func (w *Watchdog) check() {
	now := w.e.Now()
	if w.state == WatchdogArmed && now-w.lastGoodAt > w.cfg.StaleThreshold {
		w.trip("signal-stale")
	}
	if w.mba == nil || !w.haveDesired {
		return
	}
	if w.mba.Level() == w.desired {
		w.backoff = w.cfg.RetryBackoff
		w.lastRetryAt = now
		return
	}
	// The hardware is not at the requested level: either a write is
	// legitimately in flight (the backoff exceeds the write latency, so
	// one retry period absorbs that) or the write was silently dropped —
	// re-issue, backing off exponentially so a persistently deaf
	// mechanism is not hammered with 22 µs writes.
	if now-w.lastRetryAt >= w.backoff {
		w.lastRetryAt = now
		w.backoff = min(2*w.backoff, w.cfg.MaxRetryBackoff)
		w.Retries.Inc()
		w.mba.RequestLevel(w.desired)
	}
}

// Validate reports the first invalid parameter. Zero values are not
// errors — the watchdog fills them with defaults — so this catches only
// parameters no default can repair.
func (c WatchdogConfig) Validate() error {
	if c.StaleThreshold < 0 || c.CheckInterval < 0 {
		return fmt.Errorf("core: negative watchdog thresholds (stale %v, check %v)", c.StaleThreshold, c.CheckInterval)
	}
	if c.FailThreshold < 0 || c.FrozenThreshold < 0 || c.RecoverySamples < 0 {
		return fmt.Errorf("core: negative watchdog counts")
	}
	if c.LoadFloorBytes < 0 {
		return fmt.Errorf("core: negative LoadFloorBytes %v", c.LoadFloorBytes)
	}
	if c.FallbackLevel < -1 {
		return fmt.Errorf("core: FallbackLevel %d below -1", c.FallbackLevel)
	}
	if c.RetryBackoff < 0 || c.MaxRetryBackoff < 0 {
		return fmt.Errorf("core: negative watchdog backoff")
	}
	return nil
}

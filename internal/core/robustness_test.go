package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestModeString(t *testing.T) {
	cases := []struct {
		mode Mode
		want string
	}{
		{ModeFull, "full"},
		{ModeEchoOnly, "echo-only"},
		{ModeLocalOnly, "local-only"},
		{ModeOff, "off"},
		{Mode(42), "unknown"},
		{Mode(-1), "unknown"},
	}
	for _, c := range cases {
		if got := c.mode.String(); got != c.want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(c.mode), got, c.want)
		}
	}
}

// TestPolicyExactThresholds pins the paper policy's behavior exactly at
// its thresholds: both comparisons are strict (I_S > I_T, B_S < B_T), so
// sitting exactly on a threshold counts as "not congested" / "not below
// target" respectively.
func TestPolicyExactThresholds(t *testing.T) {
	p := TargetBandwidthPolicy{IT: 100, BTBytes: 1e9}
	cases := []struct {
		name   string
		is, bs float64
		want   Action
	}{
		{"regime 3: congested, below target", 101, 1e9 - 1, Raise},
		{"regime 1: idle, at target", 99, 1e9, Lower},
		{"regime 2: idle, below target", 99, 1e9 - 1, Hold},
		{"regime 4: congested, at target", 101, 1e9, Hold},
		// Exactly at both thresholds: IS == IT is not congested, BS == BT
		// is not below target — regime 1, Lower.
		{"IS == IT and BS == BT", 100, 1e9, Lower},
		{"IS == IT, below target", 100, 1e9 - 1, Hold},
		{"congested, BS == BT", 101, 1e9, Hold},
		{"just over both", 100.0001, 1e9 + 1, Hold},
	}
	for _, c := range cases {
		got := p.Decide(Signals{IS: c.is, BSBytes: c.bs, Level: 2, NumLevels: 8})
		if got != c.want {
			t.Errorf("%s: Decide(IS=%v, BS=%v) = %v, want %v", c.name, c.is, c.bs, got, c.want)
		}
	}
}

func TestWatchdogTripOnReadFailures(t *testing.T) {
	e := sim.NewEngine(1)
	mba := &fakeMBA{nLevels: 8}
	w := newWatchdog(e, mba, WatchdogConfig{FailThreshold: 3})
	for i := 0; i < 2; i++ {
		w.noteReadFailure()
	}
	if w.State() != WatchdogArmed {
		t.Fatal("tripped below FailThreshold")
	}
	w.noteReadFailure()
	if w.State() != WatchdogFallback {
		t.Fatal("did not trip at FailThreshold")
	}
	if w.Reason() != "msr-read-failures" {
		t.Errorf("reason = %q", w.Reason())
	}
	if mba.level != w.FallbackLevel() {
		t.Errorf("fallback level not requested: mba at %d, want %d", mba.level, w.FallbackLevel())
	}
	if w.FallbackLevel() != 6 { // NumLevels-2
		t.Errorf("FallbackLevel = %d, want 6", w.FallbackLevel())
	}
}

// TestWatchdogRearm exercises the full trip → recover → re-arm cycle,
// including the reset of recovery progress by an intervening bad sample.
func TestWatchdogRearm(t *testing.T) {
	e := sim.NewEngine(1)
	mba := &fakeMBA{nLevels: 8}
	w := newWatchdog(e, mba, WatchdogConfig{FailThreshold: 2, RecoverySamples: 3})

	w.noteReadFailure()
	w.noteReadFailure()
	if w.State() != WatchdogFallback {
		t.Fatal("did not trip")
	}

	// Two good samples, then a failure: recovery progress must reset.
	w.noteSample(true, true)
	w.noteSample(true, true)
	w.noteReadFailure()
	w.noteSample(true, true)
	w.noteSample(true, true)
	if w.State() != WatchdogFallback {
		t.Fatal("re-armed early: bad sample should reset recovery progress")
	}
	w.noteSample(true, true)
	if w.State() != WatchdogArmed {
		t.Fatal("did not re-arm after RecoverySamples consecutive good samples")
	}
	if w.Reason() != "" {
		t.Errorf("reason not cleared on re-arm: %q", w.Reason())
	}
	if w.Trips.Total() != 1 || w.Rearms.Total() != 1 {
		t.Errorf("trips=%d rearms=%d, want 1/1", w.Trips.Total(), w.Rearms.Total())
	}

	// A second trip after re-arm requires a fresh run of failures.
	w.noteReadFailure()
	if w.State() != WatchdogArmed {
		t.Fatal("single failure after re-arm tripped")
	}
	w.noteReadFailure()
	if w.State() != WatchdogFallback || w.Trips.Total() != 2 {
		t.Fatal("second trip not recorded")
	}
}

func TestWatchdogFrozenCounters(t *testing.T) {
	e := sim.NewEngine(1)
	mba := &fakeMBA{nLevels: 8}
	w := newWatchdog(e, mba, WatchdogConfig{FrozenThreshold: 4})

	// Flat counters while idle never trip.
	for i := 0; i < 20; i++ {
		w.noteSample(false, false)
	}
	if w.State() != WatchdogArmed {
		t.Fatal("idle flat counters tripped the watchdog")
	}
	// Flat counters under load do.
	for i := 0; i < 4; i++ {
		w.noteSample(false, true)
	}
	if w.State() != WatchdogFallback {
		t.Fatal("frozen counters under load did not trip")
	}
	if w.Reason() != "counters-frozen" {
		t.Errorf("reason = %q", w.Reason())
	}
}

func TestWatchdogStaleTrip(t *testing.T) {
	e := sim.NewEngine(1)
	mba := &fakeMBA{nLevels: 8}
	w := newWatchdog(e, mba, WatchdogConfig{StaleThreshold: 40 * sim.Microsecond})
	w.start()
	defer w.stop()
	// No samples arrive at all: the time-driven check must trip.
	e.RunUntil(200 * sim.Microsecond)
	if w.State() != WatchdogFallback {
		t.Fatal("wedged sampling loop not detected")
	}
	if w.Reason() != "signal-stale" {
		t.Errorf("reason = %q", w.Reason())
	}
}

// deafMBA swallows the first request entirely (a silently dropped MBA
// write) and honors later ones.
type deafMBA struct {
	level    int
	requests int
}

func (m *deafMBA) RequestLevel(l int) {
	m.requests++
	if m.requests == 1 {
		return // dropped on the floor
	}
	m.level = l
}
func (m *deafMBA) Level() int     { return m.level }
func (m *deafMBA) NumLevels() int { return 8 }

func TestWatchdogReadBackRetry(t *testing.T) {
	e := sim.NewEngine(1)
	mba := &deafMBA{}
	w := newWatchdog(e, mba, WatchdogConfig{
		RetryBackoff:   50 * sim.Microsecond,
		CheckInterval:  10 * sim.Microsecond,
		StaleThreshold: sim.Second, // keep staleness out of this test
	})
	w.start()
	defer w.stop()
	e.At(0, func() {
		w.noteRequest(5)
		mba.RequestLevel(5) // swallowed
	})
	e.RunUntil(sim.Millisecond)
	if mba.Level() != 5 {
		t.Fatalf("read-back retry did not recover the dropped write: level %d", mba.Level())
	}
	if w.Retries.Total() == 0 {
		t.Fatal("no retries counted")
	}
	if mba.requests > 3 {
		t.Errorf("retry storm: %d requests for one dropped write", mba.requests)
	}
}

func TestInvariantChecker(t *testing.T) {
	e := sim.NewEngine(1)
	arrivals, drops, queued, dma := int64(10), int64(2), 3, int64(5)
	avail, seq, cap := 8, 0, 16
	level := 4
	probes := InvariantProbes{
		NICArrivals:   func() int64 { return arrivals },
		NICDrops:      func() int64 { return drops },
		NICQueued:     func() int { return queued },
		NICDMAStarted: func() int64 { return dma },
		PCIeCredits:   func() (int, int, int) { return avail, seq, cap },
		MBALevel:      func() int { return level },
		MBALevels:     func() int { return 8 },
	}
	c := NewInvariantChecker(e, 10*sim.Microsecond, probes)
	var got []string
	c.OnViolation = func(msg string) { got = append(got, msg) }
	c.Start()
	e.RunUntil(35 * sim.Microsecond)
	if len(got) != 0 {
		t.Fatalf("healthy state violated: %v", got)
	}
	if c.Checks.Total() < 3 {
		t.Fatalf("checks = %d, want >= 3", c.Checks.Total())
	}

	// Break each invariant in turn.
	arrivals = 11 // one packet unaccounted for
	c.Check()
	arrivals = 10
	seq = 20 // credits out of thin air
	c.Check()
	seq = 0
	level = 8 // out of range
	c.Check()
	level = 4
	c.Stop()
	if len(got) != 3 {
		t.Fatalf("violations = %d (%v), want 3", len(got), got)
	}
	for i, want := range []string{"packet conservation", "pcie credit overflow", "mba level"} {
		if !strings.Contains(got[i], want) {
			t.Errorf("violation %d = %q, want mention of %q", i, got[i], want)
		}
	}

	// Default handler panics.
	c2 := NewInvariantChecker(e, sim.Microsecond, probes)
	arrivals = 99
	defer func() {
		if recover() == nil {
			t.Error("default OnViolation did not panic")
		}
	}()
	c2.Check()
}

package core

import (
	"testing"

	"repro/internal/msr"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/stats"
)

// fakeCounters drive the MSR registers with programmable occupancy and
// insertion rates.
type fakeCounters struct {
	e   *sim.Engine
	occ stats.TimeWeighted // occupancy in lines
	ins uint64             // cumulative lines inserted
}

func (fc *fakeCounters) setOcc(lines float64) { fc.occ.Set(fc.e.Now(), lines) }
func (fc *fakeCounters) rocc() uint64 {
	return uint64(fc.occ.Integral(fc.e.Now()) / msr.TickNanos)
}

// insertAtRate schedules RINS growth equivalent to the given PCIe rate.
func (fc *fakeCounters) insertAtRate(r sim.Rate, every sim.Time) *sim.Ticker {
	lines := uint64(r.BytesIn(every) / 64)
	return sim.NewTicker(fc.e, every, func() { fc.ins += lines })
}

// fakeMBA records level requests instantly.
type fakeMBA struct {
	level   int
	nLevels int
	history []int
}

func (m *fakeMBA) RequestLevel(l int) { m.level = l; m.history = append(m.history, l) }
func (m *fakeMBA) Level() int         { return m.level }
func (m *fakeMBA) NumLevels() int     { return m.nLevels }

func newRig(t *testing.T, cfg Config) (*sim.Engine, *fakeCounters, *fakeMBA, *HostCC) {
	t.Helper()
	e := sim.NewEngine(1)
	fc := &fakeCounters{e: e}
	f := msr.NewFile(e)
	f.RegisterReader(msr.IIOOccupancy, fc.rocc)
	f.RegisterReader(msr.IIOInsertions, func() uint64 { return fc.ins })
	mba := &fakeMBA{nLevels: 5}
	h := New(e, f, mba, cfg)
	return e, fc, mba, h
}

func TestSignalsTrackCounters(t *testing.T) {
	cfg := DefaultConfig(false)
	e, fc, _, h := newRig(t, cfg)
	fc.setOcc(80)
	tk := fc.insertAtRate(sim.Gbps(100), sim.Microsecond)
	h.Start()
	e.RunUntil(500 * sim.Microsecond)
	tk.Stop()
	h.Stop()
	if is := h.IS(); is < 75 || is > 85 {
		t.Fatalf("IS = %.1f, want ~80", is)
	}
	if bs := h.BS().Gbps(); bs < 90 || bs > 110 {
		t.Fatalf("BS = %.1f Gbps, want ~100", bs)
	}
	if !h.Congested() {
		t.Fatal("IS=80 > IT=70 should report congestion")
	}
	if h.BelowTarget() {
		t.Fatal("BS=100G above BT=80G should not be below target")
	}
	if h.Samples.Total() == 0 {
		t.Fatal("no samples recorded")
	}
}

func TestRegime3RaisesLevelAndRegime1Lowers(t *testing.T) {
	cfg := DefaultConfig(false)
	e, fc, mba, h := newRig(t, cfg)
	// Regime 3: congested (IS>IT) and below target (BS<BT).
	fc.setOcc(90)
	tk := fc.insertAtRate(sim.Gbps(40), sim.Microsecond)
	h.Start()
	e.RunUntil(300 * sim.Microsecond)
	if mba.Level() != 4 {
		t.Fatalf("level = %d under regime 3, want escalation to 4", mba.Level())
	}
	if h.LevelRaises.Total() == 0 {
		t.Fatal("no raises counted")
	}
	// Regime 1: not congested, target met -> level should fall back.
	tk.Stop()
	fc.setOcc(40)
	tk2 := fc.insertAtRate(sim.Gbps(100), sim.Microsecond)
	e.RunUntil(4 * sim.Millisecond) // BS EWMA (1/256) needs time
	tk2.Stop()
	h.Stop()
	if mba.Level() != 0 {
		t.Fatalf("level = %d under regime 1, want decay to 0", mba.Level())
	}
	if h.LevelDrops.Total() == 0 {
		t.Fatal("no drops counted")
	}
}

func TestRegime2And4HoldLevel(t *testing.T) {
	// Regime 2: congested but target met -> echo only, level unchanged.
	cfg := DefaultConfig(false)
	e, fc, mba, h := newRig(t, cfg)
	mba.level = 2
	fc.setOcc(90)
	tk := fc.insertAtRate(sim.Gbps(100), sim.Microsecond)
	h.Start()
	e.RunUntil(1 * sim.Millisecond)
	tk.Stop()
	h.Stop()
	if mba.Level() != 2 {
		t.Fatalf("regime 2 changed level to %d", mba.Level())
	}

	// Regime 4: not congested, below target -> hold.
	e2, fc2, mba2, h2 := newRig(t, cfg)
	mba2.level = 2
	fc2.setOcc(30)
	tk2 := fc2.insertAtRate(sim.Gbps(40), sim.Microsecond)
	h2.Start()
	e2.RunUntil(1 * sim.Millisecond)
	tk2.Stop()
	h2.Stop()
	if mba2.Level() != 2 {
		t.Fatalf("regime 4 changed level to %d", mba2.Level())
	}
}

func TestReceiveHookMarksOnlyWhenCongested(t *testing.T) {
	cfg := DefaultConfig(false)
	e, fc, _, h := newRig(t, cfg)
	hook := h.ReceiveHook()

	fc.setOcc(90)
	fc.insertAtRate(sim.Gbps(100), sim.Microsecond)
	h.Start()
	e.RunUntil(200 * sim.Microsecond)

	p := &packet.Packet{ECN: packet.ECT0, PayloadLen: 1000}
	hook(p)
	if p.ECN != packet.CE || !p.MarkedByHost {
		t.Fatal("congested host should CE-mark ECT data")
	}
	if h.MarkedPackets.Total() != 1 {
		t.Fatalf("marked = %d", h.MarkedPackets.Total())
	}

	// Already-CE packets and non-ECT packets are untouched.
	ce := &packet.Packet{ECN: packet.CE, PayloadLen: 1000}
	hook(ce)
	if ce.MarkedByHost {
		t.Fatal("already-marked packet should pass through")
	}
	plain := &packet.Packet{ECN: packet.NotECT, PayloadLen: 1000}
	hook(plain)
	if plain.ECN != packet.NotECT {
		t.Fatal("non-ECT packet must not be marked")
	}
	ackOnly := &packet.Packet{ECN: packet.ECT0, Flags: packet.FlagACK}
	hook(ackOnly)
	if ackOnly.ECN == packet.CE {
		t.Fatal("pure ACK must not be marked")
	}

	// Uncongested: no marking.
	fc.setOcc(10)
	e.RunUntil(e.Now() + 300*sim.Microsecond)
	h.Stop()
	q := &packet.Packet{ECN: packet.ECT0, PayloadLen: 1000}
	hook(q)
	if q.ECN == packet.CE {
		t.Fatalf("uncongested host marked a packet (IS=%.1f)", h.IS())
	}
}

func TestModesGateResponses(t *testing.T) {
	// Echo-only: never touches MBA.
	cfg := DefaultConfig(false)
	cfg.Mode = ModeEchoOnly
	e, fc, mba, h := newRig(t, cfg)
	fc.setOcc(90)
	fc.insertAtRate(sim.Gbps(40), sim.Microsecond)
	h.Start()
	e.RunUntil(500 * sim.Microsecond)
	h.Stop()
	if len(mba.history) != 0 {
		t.Fatalf("echo-only mode changed MBA level: %v", mba.history)
	}
	p := &packet.Packet{ECN: packet.ECT0, PayloadLen: 100}
	h.ReceiveHook()(p)
	if p.ECN != packet.CE {
		t.Fatal("echo-only mode should still mark")
	}

	// Local-only: never marks.
	cfg2 := DefaultConfig(false)
	cfg2.Mode = ModeLocalOnly
	e2, fc2, mba2, h2 := newRig(t, cfg2)
	fc2.setOcc(90)
	fc2.insertAtRate(sim.Gbps(40), sim.Microsecond)
	h2.Start()
	e2.RunUntil(500 * sim.Microsecond)
	h2.Stop()
	if mba2.Level() == 0 {
		t.Fatal("local-only mode should drive MBA")
	}
	p2 := &packet.Packet{ECN: packet.ECT0, PayloadLen: 100}
	h2.ReceiveHook()(p2)
	if p2.ECN == packet.CE {
		t.Fatal("local-only mode must not mark")
	}
}

func TestSampleCadenceAndReadLatencies(t *testing.T) {
	cfg := DefaultConfig(false)
	cfg.SampleInterval = 2 * sim.Microsecond
	e, fc, _, h := newRig(t, cfg)
	fc.setOcc(50)
	h.Start()
	e.RunUntil(1 * sim.Millisecond)
	h.Stop()
	// Each sample costs ~1.2us of reads + 2us interval => ~300 samples/ms.
	n := h.Samples.Total()
	if n < 250 || n > 450 {
		t.Fatalf("samples in 1ms = %d, want ~300", n)
	}
	// Two reads per sample (one sample may be mid-flight at stop time).
	if got := h.ReadLatency.Count(); got < 2*n || got > 2*n+1 {
		t.Fatalf("read latencies %d for %d samples", got, n)
	}
	// Figure 7's claim: reads are sub-1.2us regardless of congestion.
	if h.ReadLatency.Max() > 1200 {
		t.Fatalf("max read latency %v ns", h.ReadLatency.Max())
	}
}

func TestEWMAWeightsDifferentTimescales(t *testing.T) {
	// IS (1/8) must react to a step far faster than BS (1/256).
	cfg := DefaultConfig(false)
	e, fc, _, h := newRig(t, cfg)
	fc.setOcc(20)
	tk := fc.insertAtRate(sim.Gbps(20), sim.Microsecond)
	h.Start()
	e.RunUntil(2 * sim.Millisecond)
	// Step both signals up.
	fc.setOcc(90)
	tk.Stop()
	fc.insertAtRate(sim.Gbps(100), sim.Microsecond)
	e.RunUntil(e.Now() + 30*sim.Microsecond) // ~10 samples
	isProgress := (h.IS() - 20) / 70
	bsProgress := (h.BS().Gbps() - 20) / 80
	h.Stop()
	if isProgress < 0.5 {
		t.Fatalf("IS progressed only %.2f after step", isProgress)
	}
	if bsProgress > isProgress/2 {
		t.Fatalf("BS (%.2f) should lag IS (%.2f)", bsProgress, isProgress)
	}
}

func TestValidation(t *testing.T) {
	e := sim.NewEngine(1)
	f := msr.NewFile(e)
	// Missing hardware is a programmer error and still panics.
	panics := map[string]func(){
		"nil msr": func() { New(e, nil, &fakeMBA{nLevels: 5}, DefaultConfig(false)) },
		"nil mba": func() { New(e, f, nil, DefaultConfig(false)) },
	}
	for name, fn := range panics {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	// Bad numeric parameters are clamped to defaults instead of panicking
	// (Validate reports them; Sanitize repairs them).
	d := DefaultConfig(false)
	clamped := map[string]struct {
		mutate func(*Config)
		check  func(Config) bool
	}{
		"bad weights": {func(c *Config) { c.WeightIS = 0 }, func(c Config) bool { return c.WeightIS == d.WeightIS }},
		"bad sample":  {func(c *Config) { c.SampleInterval = 0 }, func(c Config) bool { return c.SampleInterval == d.SampleInterval }},
		"bad IT":      {func(c *Config) { c.IT = -1 }, func(c Config) bool { return c.IT == d.IT }},
		"bad BT":      {func(c *Config) { c.BT = -1 }, func(c Config) bool { return c.BT == d.BT }},
	}
	for name, tc := range clamped {
		c := DefaultConfig(false)
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted invalid config", name)
		}
		h := New(e, f, &fakeMBA{nLevels: 5}, c)
		if !tc.check(h.Config()) {
			t.Errorf("%s: New did not clamp to default (%+v)", name, h.Config())
		}
	}
	// Echo-only mode tolerates a nil controller.
	cfg := DefaultConfig(false)
	cfg.Mode = ModeEchoOnly
	if h := New(e, f, nil, cfg); h.Level() != 0 {
		t.Fatal("nil controller should report level 0")
	}
}

func TestSenderGuardRespondsToStarvation(t *testing.T) {
	e := sim.NewEngine(1)
	mba := &fakeMBA{nLevels: 5}
	var tx int64
	backlog := 0
	g := NewSenderGuard(e, mba, DefaultSenderGuardConfig(), func() int64 { return tx }, func() int { return backlog })

	// Starved: low tx rate, large backlog.
	backlog = 1 << 20
	tick := sim.NewTicker(e, sim.Microsecond, func() { tx += 1000 }) // 1GB/s = 8Gbps
	e.RunUntil(500 * sim.Microsecond)
	if mba.Level() == 0 {
		t.Fatal("starved sender should raise the response level")
	}
	// Recovered: target met.
	tick.Stop()
	sim.NewTicker(e, sim.Microsecond, func() { tx += 12_000 }) // 96Gbps
	backlog = 0
	e.RunUntil(e.Now() + 2*sim.Millisecond)
	g.Stop()
	if mba.Level() != 0 {
		t.Fatalf("recovered sender should drop to level 0, got %d", mba.Level())
	}
	if g.Rate().Gbps() < 50 {
		t.Fatalf("rate estimate %.1f too low", g.Rate().Gbps())
	}
}

package core

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// probesFor builds a full probe set over mutable counters so each test
// case can violate exactly one law.
type probeState struct {
	arrivals, drops, faultDrops, dma int64
	queued                           int
	avail, seq, cap                  int
	level, levels                    int
}

func (s *probeState) probes() InvariantProbes {
	return InvariantProbes{
		NICArrivals:   func() int64 { return s.arrivals },
		NICDrops:      func() int64 { return s.drops },
		NICFaultDrops: func() int64 { return s.faultDrops },
		NICQueued:     func() int { return s.queued },
		NICDMAStarted: func() int64 { return s.dma },
		PCIeCredits:   func() (int, int, int) { return s.avail, s.seq, s.cap },
		MBALevel:      func() int { return s.level },
		MBALevels:     func() int { return s.levels },
	}
}

// consistent returns a state satisfying every invariant.
func consistent() probeState {
	return probeState{
		arrivals: 100, drops: 10, faultDrops: 5, queued: 25, dma: 60,
		avail: 8, seq: 2, cap: 10,
		level: 3, levels: 5,
	}
}

func TestInvariantCheckerViolationPaths(t *testing.T) {
	cases := map[string]struct {
		mutate func(*probeState)
		want   string // substring of the violation message
	}{
		"packet-conservation": {
			mutate: func(s *probeState) { s.dma-- },
			want:   "packet conservation",
		},
		"negative-credits": {
			mutate: func(s *probeState) { s.avail = -1 },
			want:   "pcie credits negative",
		},
		"credit-overflow": {
			mutate: func(s *probeState) { s.avail = s.cap + 1 },
			want:   "pcie credit overflow",
		},
		"mba-level-high": {
			mutate: func(s *probeState) { s.level = s.levels },
			want:   "mba level",
		},
		"mba-level-negative": {
			mutate: func(s *probeState) { s.level = -1 },
			want:   "mba level",
		},
	}
	for name, tc := range cases {
		e := sim.NewEngine(1)
		s := consistent()
		tc.mutate(&s)
		c := NewInvariantChecker(e, sim.Millisecond, s.probes())
		var got []string
		c.OnViolation = func(msg string) { got = append(got, msg) }
		c.Check()
		if len(got) != 1 {
			t.Errorf("%s: %d violations via OnViolation, want 1: %v", name, len(got), got)
			continue
		}
		if !strings.Contains(got[0], tc.want) {
			t.Errorf("%s: violation %q does not mention %q", name, got[0], tc.want)
		}
		// The violation is also recorded even with the handler overridden.
		if len(c.Violations) != 1 || c.Violations[0] != got[0] {
			t.Errorf("%s: Violations log %v does not match handler", name, c.Violations)
		}
		if c.Checks.Total() != 1 {
			t.Errorf("%s: Checks = %d, want 1", name, c.Checks.Total())
		}
	}
}

func TestInvariantCheckerDefaultPanics(t *testing.T) {
	e := sim.NewEngine(1)
	s := consistent()
	s.queued++ // break conservation
	c := NewInvariantChecker(e, sim.Millisecond, s.probes())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("violation with no OnViolation handler must panic")
		}
		if !strings.Contains(r.(string), "packet conservation") {
			t.Fatalf("panic %v does not name the broken law", r)
		}
	}()
	c.Check()
}

func TestInvariantCheckerCleanAndPartialProbes(t *testing.T) {
	e := sim.NewEngine(1)
	s := consistent()
	c := NewInvariantChecker(e, sim.Millisecond, s.probes())
	c.OnViolation = func(msg string) { t.Errorf("clean state violated: %s", msg) }
	c.Check()

	// Nil probes disable their invariants — a partially instrumented
	// testbed audits what it can.
	empty := NewInvariantChecker(e, sim.Millisecond, InvariantProbes{})
	empty.Check()
	if empty.Checks.Total() != 1 || len(empty.Violations) != 0 {
		t.Fatalf("probe-less checker: checks=%d violations=%v", empty.Checks.Total(), empty.Violations)
	}
}

func TestInvariantCheckerPeriodicAudit(t *testing.T) {
	e := sim.NewEngine(1)
	s := consistent()
	c := NewInvariantChecker(e, 100*sim.Microsecond, s.probes())
	c.Start()
	e.RunUntil(sim.Millisecond)
	c.Stop()
	if n := c.Checks.Total(); n < 9 {
		t.Fatalf("periodic audit ran %d times over 1ms at 100µs, want >= 9", n)
	}
	// Stop halts auditing.
	before := c.Checks.Total()
	e.RunUntil(2 * sim.Millisecond)
	if c.Checks.Total() != before {
		t.Fatal("checker audited after Stop")
	}
}

// The sender guard must keep re-asserting its response while the MBA
// write path is faulted (the hardware silently eats level writes), and
// the response must land once the fault clears — the trip/re-arm cycle
// under the mba-drop chaos scenario, tested against the real cpu.MBA
// write machinery rather than a fake.
func TestSenderGuardTripAndRearmUnderWriteFaults(t *testing.T) {
	e := sim.NewEngine(1)
	mba := cpu.NewMBA(e, nil, cpu.DefaultMBAConfig())

	var tx int64
	backlog := 1 << 20 // deep transmit queue: starvation evidence
	g := NewSenderGuard(e, mba, DefaultSenderGuardConfig(),
		func() int64 { return tx }, func() int { return backlog })
	sim.NewTicker(e, sim.Microsecond, func() { tx += 1000 }) // 8 Gbps, far below target

	// Phase 1: every MBA write dropped. The guard trips (requests a
	// raise) every sample, the hardware eats each one, and the applied
	// level must not move.
	dropAll := true
	mba.SetWriteFault(func() cpu.WriteFault { return cpu.WriteFault{Drop: dropAll} })
	e.RunUntil(500 * sim.Microsecond)
	if mba.Level() != 0 {
		t.Fatalf("dropped writes applied a level: %d", mba.Level())
	}
	if g.LevelRaises.Total() == 0 {
		t.Fatal("starved guard never tripped")
	}
	if mba.LostWrites == 0 {
		t.Fatal("write fault never engaged")
	}
	raisesDuringFault := g.LevelRaises.Total()

	// Phase 2: fault clears. The guard's next trip must land and the
	// response level must finally rise.
	dropAll = false
	e.RunUntil(sim.Millisecond)
	if mba.Level() == 0 {
		t.Fatal("guard did not re-arm the response after the fault cleared")
	}
	if g.LevelRaises.Total() <= raisesDuringFault {
		t.Fatal("guard stopped retrying after the fault window")
	}

	// Phase 3: starvation ends (target met, queue drained) — the guard
	// hands the resources back down to level 0.
	sim.NewTicker(e, sim.Microsecond, func() { tx += 12_000 }) // +96 Gbps
	backlog = 0
	e.RunUntil(3 * sim.Millisecond)
	g.Stop()
	if mba.Level() != 0 {
		t.Fatalf("recovered sender should drop to level 0, got %d", mba.Level())
	}
	if g.LevelDrops.Total() == 0 {
		t.Fatal("guard never recorded a level drop")
	}
}

package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Snapshot encodes the hostCC signal filters, sampler cursors, counters and
// (when armed) the watchdog state machine.
func (h *HostCC) Snapshot(e *snapshot.Encoder) {
	h.isEWMA.Snapshot(e)
	h.bsEWMA.Snapshot(e)
	e.U64(h.lastROCC)
	e.I64(int64(h.lastROCCAt))
	e.U64(h.lastRINS)
	e.I64(int64(h.lastRINSAt))
	e.Bool(h.seeded)
	e.Bool(h.running)
	h.ReadLatency.Snapshot(e)
	h.MarkedPackets.Snapshot(e)
	h.Samples.Snapshot(e)
	h.FailedSamples.Snapshot(e)
	h.LevelRaises.Snapshot(e)
	h.LevelDrops.Snapshot(e)
	e.Bool(h.wd != nil)
	if h.wd != nil {
		h.wd.snapshot(e)
	}
}

// Restore reverses Snapshot. The watchdog presence must match the snapshot
// (same testbed shape).
func (h *HostCC) Restore(d *snapshot.Decoder) error {
	if err := h.isEWMA.Restore(d); err != nil {
		return err
	}
	if err := h.bsEWMA.Restore(d); err != nil {
		return err
	}
	h.lastROCC = d.U64()
	h.lastROCCAt = sim.Time(d.I64())
	h.lastRINS = d.U64()
	h.lastRINSAt = sim.Time(d.I64())
	h.seeded = d.Bool()
	h.running = d.Bool()
	if err := h.ReadLatency.Restore(d); err != nil {
		return err
	}
	if err := h.MarkedPackets.Restore(d); err != nil {
		return err
	}
	if err := h.Samples.Restore(d); err != nil {
		return err
	}
	if err := h.FailedSamples.Restore(d); err != nil {
		return err
	}
	if err := h.LevelRaises.Restore(d); err != nil {
		return err
	}
	if err := h.LevelDrops.Restore(d); err != nil {
		return err
	}
	hadWD := d.Bool()
	if hadWD != (h.wd != nil) {
		return fmt.Errorf("core: snapshot watchdog presence %v does not match module %v", hadWD, h.wd != nil)
	}
	if h.wd != nil {
		return h.wd.restore(d)
	}
	return d.Err()
}

func (w *Watchdog) snapshot(e *snapshot.Encoder) {
	e.Int(int(w.state))
	e.Str(w.reason)
	e.I64(int64(w.lastGoodAt))
	e.Int(w.consecFails)
	e.Int(w.consecFrozen)
	e.Int(w.consecGood)
	e.Int(w.desired)
	e.Bool(w.haveDesired)
	e.I64(int64(w.backoff))
	e.I64(int64(w.lastRetryAt))
	w.Trips.Snapshot(e)
	w.Rearms.Snapshot(e)
	w.Retries.Snapshot(e)
}

func (w *Watchdog) restore(d *snapshot.Decoder) error {
	w.state = WatchdogState(d.Int())
	w.reason = d.Str()
	w.lastGoodAt = sim.Time(d.I64())
	w.consecFails = d.Int()
	w.consecFrozen = d.Int()
	w.consecGood = d.Int()
	w.desired = d.Int()
	w.haveDesired = d.Bool()
	w.backoff = sim.Time(d.I64())
	w.lastRetryAt = sim.Time(d.I64())
	if err := w.Trips.Restore(d); err != nil {
		return err
	}
	if err := w.Rearms.Restore(d); err != nil {
		return err
	}
	return w.Retries.Restore(d)
}

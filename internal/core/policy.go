package core

// The hostCC architecture deliberately does not dictate the host resource
// allocation policy (§3.2): "just like different network resource
// allocation mechanisms use different network allocation policies, we
// envision hostCC to embody various host resource allocation policies."
// This file defines the policy interface and two implementations:
//
//   - TargetBandwidthPolicy — the paper's policy: a fixed target network
//     bandwidth B_T and the four-regime response of Figure 6.
//   - ElasticPolicy — an adaptive policy that forgoes a fixed target and
//     instead holds the host just below the congestion threshold,
//     maximizing host-local throughput subject to zero host queueing.

// Signals is the policy input: the filtered host congestion signals and
// the current response level.
type Signals struct {
	// IS is the filtered IIO occupancy.
	IS float64
	// BSBytes is the filtered PCIe bandwidth in bytes/sec.
	BSBytes float64
	// Level is the currently applied host-local response level.
	Level int
	// NumLevels is the number of available levels.
	NumLevels int
}

// Action is a policy decision about the host-local response level.
type Action int

// Policy decisions.
const (
	Hold Action = iota
	Raise
	Lower
)

func (a Action) String() string {
	switch a {
	case Hold:
		return "hold"
	case Raise:
		return "raise"
	case Lower:
		return "lower"
	}
	return "unknown"
}

// Policy decides the host-local response from the congestion signals.
// Implementations must be pure decision logic: mechanism (MBA writes, ECN
// echo) stays in HostCC.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Decide returns the level action for the current signals.
	Decide(s Signals) Action
}

// TargetBandwidthPolicy is the paper's policy (Figure 6): given threshold
// I_T and target bandwidth B_T, raise the level under regime 3 (host
// congested, network below target), lower it under regime 1 (host idle,
// network at target), hold otherwise.
type TargetBandwidthPolicy struct {
	// IT is the occupancy threshold.
	IT float64
	// BTBytes is the target network bandwidth in bytes/sec, already
	// adjusted for PCIe overhead.
	BTBytes float64
}

// Name implements Policy.
func (TargetBandwidthPolicy) Name() string { return "target-bandwidth" }

// Decide implements Policy.
func (p TargetBandwidthPolicy) Decide(s Signals) Action {
	congested := s.IS > p.IT
	below := s.BSBytes < p.BTBytes
	switch {
	case congested && below:
		return Raise // regime 3
	case !congested && !below:
		return Lower // regime 1
	default:
		return Hold // regimes 2 and 4
	}
}

// ElasticPolicy has no bandwidth target: it treats the occupancy
// threshold as the only constraint, backpressuring host-local traffic
// exactly enough to keep the host out of congestion and releasing
// resources whenever there is headroom. Compared to the paper's policy it
// gives network traffic whatever it asks for (up to the host's capacity)
// and host-local traffic everything else.
type ElasticPolicy struct {
	// IT is the occupancy threshold to stay below.
	IT float64
	// Headroom is the hysteresis band: the level is lowered only when
	// occupancy falls below IT - Headroom, avoiding oscillation around
	// the threshold.
	Headroom float64
}

// Name implements Policy.
func (ElasticPolicy) Name() string { return "elastic" }

// Decide implements Policy.
func (p ElasticPolicy) Decide(s Signals) Action {
	switch {
	case s.IS > p.IT:
		return Raise
	case s.IS < p.IT-p.Headroom:
		return Lower
	default:
		return Hold
	}
}

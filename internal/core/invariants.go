package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// InvariantProbes supplies the datapath counters the checker audits. Any
// nil probe disables its invariant, so a checker can be wired against a
// partially instrumented testbed.
type InvariantProbes struct {
	// NIC packet conservation: every arrival is either dropped (buffer
	// full or injected fault), still buffered, or had its DMA initiated.
	NICArrivals   func() int64
	NICDrops      func() int64
	NICFaultDrops func() int64
	NICQueued     func() int
	NICDMAStarted func() int64

	// PCIe credit accounting: available plus sequestered (fault-stalled)
	// credits never exceed the pool, and never go negative.
	PCIeCredits func() (avail, sequestered, cap int)

	// MBA level bounds.
	MBALevel  func() int
	MBALevels func() int
}

// InvariantChecker audits conservation laws of the host datapath while a
// simulation runs — chiefly under fault injection, where a bug in a fault
// seam (a lost credit, a double-counted packet) would otherwise corrupt
// the model silently and make every chaos result meaningless. A violation
// calls OnViolation; the default panics, because a model that broke its
// own accounting cannot produce trustworthy numbers from that point on.
type InvariantChecker struct {
	e     *sim.Engine
	every sim.Time
	p     InvariantProbes

	ticker *sim.Ticker

	// OnViolation handles a violated invariant (default: panic).
	OnViolation func(string)
	// Violations records every violation message (also when OnViolation
	// is overridden).
	Violations []string
	// Checks counts completed audit passes.
	Checks stats.Counter
}

// NewInvariantChecker creates a checker auditing every `every` of
// simulated time once started.
func NewInvariantChecker(e *sim.Engine, every sim.Time, p InvariantProbes) *InvariantChecker {
	if every <= 0 {
		panic("core: non-positive invariant check interval")
	}
	return &InvariantChecker{e: e, every: every, p: p}
}

// Start begins periodic auditing.
func (c *InvariantChecker) Start() {
	if c.ticker != nil {
		panic("core: invariant checker started twice")
	}
	c.ticker = sim.NewTicker(c.e, c.every, func() { c.Check() })
}

// Stop halts periodic auditing.
func (c *InvariantChecker) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

// Check runs one audit pass immediately.
func (c *InvariantChecker) Check() {
	c.Checks.Inc()
	if c.p.NICArrivals != nil && c.p.NICDrops != nil && c.p.NICQueued != nil && c.p.NICDMAStarted != nil {
		arr := c.p.NICArrivals()
		drops := c.p.NICDrops()
		var faultDrops int64
		if c.p.NICFaultDrops != nil {
			faultDrops = c.p.NICFaultDrops()
		}
		queued := int64(c.p.NICQueued())
		dma := c.p.NICDMAStarted()
		if arr != drops+faultDrops+queued+dma {
			c.violate(fmt.Sprintf(
				"packet conservation: arrivals %d != drops %d + fault-drops %d + queued %d + dma-started %d",
				arr, drops, faultDrops, queued, dma))
		}
	}
	if c.p.PCIeCredits != nil {
		avail, seq, cap := c.p.PCIeCredits()
		if avail < 0 || seq < 0 {
			c.violate(fmt.Sprintf("pcie credits negative: avail %d sequestered %d", avail, seq))
		}
		if avail+seq > cap {
			c.violate(fmt.Sprintf("pcie credit overflow: avail %d + sequestered %d > cap %d", avail, seq, cap))
		}
	}
	if c.p.MBALevel != nil && c.p.MBALevels != nil {
		l, n := c.p.MBALevel(), c.p.MBALevels()
		if l < 0 || l >= n {
			c.violate(fmt.Sprintf("mba level %d outside [0,%d)", l, n))
		}
	}
}

func (c *InvariantChecker) violate(msg string) {
	msg = fmt.Sprintf("invariant violated at %v: %s", c.e.Now(), msg)
	c.Violations = append(c.Violations, msg)
	if c.OnViolation != nil {
		c.OnViolation(msg)
		return
	}
	panic("core: " + msg)
}

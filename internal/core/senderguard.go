package core

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// SenderGuard is the sender-side host-local congestion response (§3.2):
// it ensures outbound network traffic is not starved of host resources by
// host-local traffic, at sub-RTT granularity. It watches the transmit
// rate and the NIC transmit backlog; when the sender cannot sustain the
// target bandwidth while a backlog accumulates — the signature of
// host-local traffic crowding out transmit DMA reads — it raises the
// host-local response level, and it returns resources once the target is
// met again.
type SenderGuard struct {
	e   *sim.Engine
	mba LevelController
	cfg SenderGuardConfig

	txBytes func() int64 // cumulative transmitted bytes
	backlog func() int   // NIC transmit queue depth in bytes

	lastBytes int64
	lastAt    sim.Time
	rate      *stats.EWMA
	ticker    *sim.Ticker

	// LevelRaises / LevelDrops count response actions.
	LevelRaises stats.Counter
	LevelDrops  stats.Counter
}

// SenderGuardConfig parameterizes the guard.
type SenderGuardConfig struct {
	// BT is the target transmit bandwidth.
	BT sim.Rate
	// BacklogThreshold is the transmit queue depth treated as starvation
	// evidence when the rate is below target.
	BacklogThreshold int
	// SampleInterval is the response period.
	SampleInterval sim.Time
	// Weight is the transmit-rate EWMA weight.
	Weight float64
}

// DefaultSenderGuardConfig returns defaults matching the receiver side.
func DefaultSenderGuardConfig() SenderGuardConfig {
	return SenderGuardConfig{
		BT:               sim.Gbps(80),
		BacklogThreshold: 64 * 1024,
		SampleInterval:   2 * sim.Microsecond,
		Weight:           1.0 / 64,
	}
}

// NewSenderGuard creates a guard reading the transmit side via the two
// probes. It is started immediately.
func NewSenderGuard(e *sim.Engine, mba LevelController, cfg SenderGuardConfig, txBytes func() int64, backlog func() int) *SenderGuard {
	if mba == nil {
		panic("core: SenderGuard requires a level controller")
	}
	if txBytes == nil || backlog == nil {
		panic("core: SenderGuard requires probes")
	}
	if cfg.SampleInterval <= 0 {
		panic("core: non-positive sample interval")
	}
	g := &SenderGuard{
		e:       e,
		mba:     mba,
		cfg:     cfg,
		txBytes: txBytes,
		backlog: backlog,
		rate:    stats.NewEWMA(cfg.Weight),
		lastAt:  e.Now(),
	}
	g.ticker = sim.NewTicker(e, cfg.SampleInterval, g.tick)
	return g
}

// Stop halts the guard.
func (g *SenderGuard) Stop() { g.ticker.Stop() }

// Rate returns the filtered transmit rate.
func (g *SenderGuard) Rate() sim.Rate { return sim.Rate(g.rate.Value()) }

func (g *SenderGuard) tick() {
	now := g.e.Now()
	cur := g.txBytes()
	if dt := now - g.lastAt; dt > 0 {
		g.rate.Update(float64(cur-g.lastBytes) / dt.Seconds())
	}
	g.lastBytes, g.lastAt = cur, now

	starved := g.Rate() < g.cfg.BT && g.backlog() > g.cfg.BacklogThreshold
	lvl := g.mba.Level()
	switch {
	case starved:
		if lvl+1 < g.mba.NumLevels() {
			g.mba.RequestLevel(lvl + 1)
			g.LevelRaises.Inc()
		}
	case g.Rate() >= g.cfg.BT || g.backlog() == 0:
		if lvl > 0 {
			g.mba.RequestLevel(lvl - 1)
			g.LevelDrops.Inc()
		}
	}
}

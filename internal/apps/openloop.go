package apps

import (
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// NetAppLOpenPort is the well-known port of the open-loop latency app.
const NetAppLOpenPort = 5003

// NetAppLOpen is an open-loop variant of the latency application:
// requests arrive as a Poisson process at a configured rate and pipeline
// on one connection, rather than waiting for the previous response
// (closed loop). Open-loop measurement exposes queueing collapse —
// latency grows without bound once the system cannot keep up — which the
// closed-loop netperf-style NetApp-L hides.
type NetAppLOpen struct {
	e    *sim.Engine
	conn *connRef

	size     int
	respSize int
	rate     float64 // requests per second

	pending []sim.Time // start time of each in-flight request (FIFO)
	respBuf int

	recording bool

	// Latency holds completion times in nanoseconds.
	Latency *stats.Histogram
	// Issued and Completed count requests.
	Issued    stats.Counter
	Completed stats.Counter
}

// connRef defers connection use until construction is complete.
type connRef struct{ send func(int) }

// NewNetAppLOpen creates the open-loop app issuing size-byte requests at
// the given rate (requests/second) from client to server.
func NewNetAppLOpen(e *sim.Engine, client, server *host.Host, size int, rate float64) *NetAppLOpen {
	if size <= 0 {
		panic("apps: non-positive RPC size")
	}
	if rate <= 0 {
		panic("apps: non-positive arrival rate")
	}
	l := &NetAppLOpen{
		e:        e,
		size:     size,
		respSize: 64,
		rate:     rate,
		Latency:  stats.NewHistogram(30),
	}
	server.EP.Listen(NetAppLOpenPort, func(c *transport.Conn) {
		reqGot := 0
		c.OnData(func(n int) {
			reqGot += n
			for reqGot >= l.size {
				reqGot -= l.size
				c.Send(l.respSize)
			}
		})
	})
	conn := client.EP.DialFrom(31000, server.ID(), NetAppLOpenPort)
	conn.OnData(l.onResponse)
	l.conn = &connRef{send: conn.Send}
	return l
}

// Start begins the Poisson arrival process.
func (l *NetAppLOpen) Start() { l.scheduleNext() }

// SetRecording controls whether completions are recorded.
func (l *NetAppLOpen) SetRecording(on bool) { l.recording = on }

// InFlight returns the number of outstanding requests.
func (l *NetAppLOpen) InFlight() int { return len(l.pending) }

func (l *NetAppLOpen) scheduleNext() {
	gap := sim.Time(l.e.Rand().ExpFloat64() / l.rate * 1e9)
	if gap < 1 {
		gap = 1
	}
	l.e.After(gap, func() {
		l.issue()
		l.scheduleNext()
	})
}

func (l *NetAppLOpen) issue() {
	l.Issued.Inc()
	l.pending = append(l.pending, l.e.Now())
	l.conn.send(l.size)
}

func (l *NetAppLOpen) onResponse(n int) {
	l.respBuf += n
	for l.respBuf >= l.respSize && len(l.pending) > 0 {
		l.respBuf -= l.respSize
		start := l.pending[0]
		l.pending = l.pending[1:]
		l.Completed.Inc()
		if l.recording {
			l.Latency.Add(float64(l.e.Now() - start))
		}
	}
}

package apps

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/host"
	"repro/internal/sim"
)

// rig builds sender+receiver joined by a switch, as the testbed does.
func rig(t *testing.T) (*sim.Engine, *host.Host, *host.Host) {
	t.Helper()
	e := sim.NewEngine(1)
	recv := host.New(e, host.DefaultConfig(1, 4096, false))
	send := host.New(e, host.DefaultConfig(2, 4096, false))
	sw := fabric.NewSwitch(e, fabric.DefaultSwitchConfig())
	for _, h := range []*host.Host{recv, send} {
		up := fabric.NewLink(e, fabric.DefaultLinkConfig(), sw.Inject)
		h.SetOutput(up.Send)
		down := fabric.NewLink(e, fabric.DefaultLinkConfig(), h.ReceiveFromWire)
		sw.AttachPort(h.ID(), down)
	}
	return e, send, recv
}

func TestNetAppTSaturatesUncongestedLink(t *testing.T) {
	e, send, recv := rig(t)
	app := NewNetAppT(e, []*host.Host{send}, recv, 4)
	e.RunUntil(8 * sim.Millisecond)
	app.MarkWindow()
	e.RunUntil(20 * sim.Millisecond)
	gbps := app.Throughput().Gbps()
	// Goodput ceiling is 100G x 4026/4096 = 98.3.
	if gbps < 93 || gbps > 99 {
		t.Fatalf("NetApp-T goodput = %.1f Gbps, want ~98", gbps)
	}
	if app.Retransmits() != 0 {
		t.Fatalf("uncongested NetApp-T saw %d retransmits", app.Retransmits())
	}
	if len(app.Conns()) != 4 {
		t.Fatalf("conns = %d", len(app.Conns()))
	}
}

func TestNetAppTSingleFlowIsCoreBound(t *testing.T) {
	// One flow is steered to one RX core; DCTCP needs 4 cores to reach
	// line rate (§2.2), so a single flow must achieve well under 98G.
	e, send, recv := rig(t)
	app := NewNetAppT(e, []*host.Host{send}, recv, 1)
	e.RunUntil(8 * sim.Millisecond)
	app.MarkWindow()
	e.RunUntil(20 * sim.Millisecond)
	gbps := app.Throughput().Gbps()
	if gbps > 70 {
		t.Fatalf("single flow got %.1f Gbps; should be core-bound well below line rate", gbps)
	}
	if gbps < 15 {
		t.Fatalf("single flow got %.1f Gbps; suspiciously low", gbps)
	}
}

func TestNetAppLClosedLoop(t *testing.T) {
	e, send, recv := rig(t)
	done := false
	l := NewNetAppL(e, send, recv, 2048, 50, func() { done = true })
	l.SetRecording(true)
	l.Start()
	e.RunUntil(100 * sim.Millisecond)
	if !done {
		t.Fatalf("completed %d of 50 RPCs", l.Completed())
	}
	if l.Latency.Count() != 50 {
		t.Fatalf("recorded %d latencies", l.Latency.Count())
	}
	// Uncongested RPC: ~2.5 RTTs incl. datapath; must be well under 1ms.
	if p50 := l.Latency.Quantile(0.5); p50 > 500_000 || p50 < 20_000 {
		t.Fatalf("P50 = %.1fus, want tens of microseconds", p50/1000)
	}
}

func TestNetAppLWarmupNotRecorded(t *testing.T) {
	e, send, recv := rig(t)
	l := NewNetAppL(e, send, recv, 128, 0, nil)
	l.Start()
	e.RunUntil(5 * sim.Millisecond)
	if l.Completed() == 0 {
		t.Fatal("no RPCs completed")
	}
	if l.Latency.Count() != 0 {
		t.Fatal("latencies recorded before SetRecording(true)")
	}
	l.SetRecording(true)
	before := l.Completed()
	e.RunUntil(10 * sim.Millisecond)
	if got := l.Latency.Count(); got != int64(l.Completed()-before) {
		t.Fatalf("recorded %d, completed %d new", got, l.Completed()-before)
	}
}

func TestNetAppLLargeRPCSpansSegments(t *testing.T) {
	e, send, recv := rig(t)
	l := NewNetAppL(e, send, recv, 32768, 10, nil)
	l.SetRecording(true)
	l.Start()
	e.RunUntil(50 * sim.Millisecond)
	if l.Completed() < 10 {
		t.Fatalf("completed %d of 10 32KB RPCs", l.Completed())
	}
}

func TestAppValidation(t *testing.T) {
	e, send, recv := rig(t)
	for name, fn := range map[string]func(){
		"zero flows":   func() { NewNetAppT(e, []*host.Host{send}, recv, 0) },
		"no senders":   func() { NewNetAppT(e, nil, recv, 4) },
		"zero rpc len": func() { NewNetAppL(e, send, recv, 0, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestOpenLoopLowLoad(t *testing.T) {
	e, send, recv := rig(t)
	l := NewNetAppLOpen(e, send, recv, 2048, 10_000) // 10K RPC/s, trivial load
	l.SetRecording(true)
	l.Start()
	e.RunUntil(20 * sim.Millisecond)
	if l.Completed.Total() < 100 {
		t.Fatalf("completed %d RPCs at 10K/s over 20ms", l.Completed.Total())
	}
	// At trivial load, open-loop latency ~ base RTT, bounded.
	if p99 := l.Latency.Quantile(0.99); p99 > 500_000 {
		t.Fatalf("p99 = %.0fus at trivial load", p99/1000)
	}
	if l.InFlight() > 5 {
		t.Fatalf("in-flight %d at trivial load", l.InFlight())
	}
}

func TestOpenLoopOverloadGrowsQueue(t *testing.T) {
	// Offered load beyond what one flow/core can carry: in-flight and
	// latency must grow (the open-loop collapse closed-loop hides).
	e, send, recv := rig(t)
	l := NewNetAppLOpen(e, send, recv, 32768, 200_000) // 32KB x 200K/s = 52Gbps on one flow
	l.SetRecording(true)
	l.Start()
	e.RunUntil(20 * sim.Millisecond)
	if l.InFlight() < 50 {
		t.Fatalf("in-flight %d; overload should queue", l.InFlight())
	}
	if p50 := l.Latency.Quantile(0.5); p50 < 500_000 {
		t.Fatalf("p50 = %.0fus; overload should inflate latency", p50/1000)
	}
}

func TestOpenLoopValidation(t *testing.T) {
	e, send, recv := rig(t)
	for name, fn := range map[string]func(){
		"zero size": func() { NewNetAppLOpen(e, send, recv, 0, 100) },
		"zero rate": func() { NewNetAppLOpen(e, send, recv, 100, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

package apps

import (
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/transport"
)

// FluidPort is the well-known port of the fluid background population's
// promotable twin connections.
const FluidPort = 5003

// fluidTwinSrcPort bases the twins' source ports, clear of NetApp-T's
// 20000+i and NetApp-L's 30000 ranges.
const fluidTwinSrcPort = 40000

// FluidTwins owns the packet-level twin connections of promotable fluid
// background flows: twin i is pre-dialed sender[i%S] → receiver[i%R] at
// build time and sits idle until the fluid tier promotes its flow. On
// promote the twin starts as an infinite source with its congestion
// window seeded from the fluid rate; on demote it stops and reports the
// goodput it measured while promoted, which becomes the flow's fluid
// rate again. Promote/demote run at coarse-tick time — in a sharded
// testbed that is a coordinator barrier with every shard quiesced, so
// touching any twin's connection is safe.
type FluidTwins struct {
	rtt        sim.Time
	clock      func() sim.Time
	conns      []*transport.Conn
	promotedAt []sim.Time
}

// NewFluidTwins pre-dials count twin connections. rtt seeds promoted
// windows (rate × rtt); clock reads simulation time for demote-rate
// measurement (pass the testbed's Now).
func NewFluidTwins(senders, receivers []*host.Host, count int, rtt sim.Time, clock func() sim.Time) *FluidTwins {
	if count <= 0 {
		panic("apps: FluidTwins needs at least one twin")
	}
	if len(senders) == 0 || len(receivers) == 0 {
		panic("apps: FluidTwins needs senders and receivers")
	}
	if rtt <= 0 {
		panic("apps: non-positive twin RTT")
	}
	for _, r := range receivers {
		r.EP.Listen(FluidPort, func(*transport.Conn) {})
	}
	ft := &FluidTwins{rtt: rtt, clock: clock, promotedAt: make([]sim.Time, count)}
	for i := 0; i < count; i++ {
		s := senders[i%len(senders)]
		r := receivers[i%len(receivers)]
		ft.conns = append(ft.conns, s.EP.DialFrom(uint16(fluidTwinSrcPort+i), r.ID(), FluidPort))
	}
	return ft
}

// Count returns the number of twins.
func (ft *FluidTwins) Count() int { return len(ft.conns) }

// Conn returns twin i's sender-side connection.
func (ft *FluidTwins) Conn(i int) *transport.Conn { return ft.conns[i] }

// Promote starts twin i at packet level, seeded with the fluid rate.
func (ft *FluidTwins) Promote(i int, rate sim.Rate) {
	c := ft.conns[i]
	c.SeedRate(rate, ft.rtt)
	c.AckedBytes.Mark()
	ft.promotedAt[i] = ft.clock()
	c.SetInfiniteSource(true)
}

// Demote stops twin i and returns the goodput it sustained while
// promoted (0 when nothing was acknowledged yet — the fluid tier floors
// the rate it adopts).
func (ft *FluidTwins) Demote(i int) sim.Rate {
	c := ft.conns[i]
	c.SetInfiniteSource(false)
	elapsed := ft.clock() - ft.promotedAt[i]
	if elapsed <= 0 {
		return 0
	}
	return sim.Rate(float64(c.AckedBytes.SinceMark()) / elapsed.Seconds())
}

// DeliveredBytes sums acknowledged bytes across twins (the promoted
// population's packet-level goodput). Read at quiesced points only.
func (ft *FluidTwins) DeliveredBytes() int64 {
	var n int64
	for _, c := range ft.conns {
		n += c.AckedBytes.Total()
	}
	return n
}

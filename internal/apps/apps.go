// Package apps implements the three evaluation workloads (§2.2):
//
//   - NetApp-T: iperf-like throughput application — long flows, one per
//     sender/receiver core pair.
//   - NetApp-L: netperf-like latency application — closed-loop RPCs of a
//     configurable size, measuring completion-time percentiles.
//   - MApp: MLC-like host-local memory traffic (provided by
//     host.StartMApp; this package only re-exports the knob).
package apps

import (
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// NetAppTPort is the well-known port of the throughput application.
const NetAppTPort = 5001

// NetAppLPort is the well-known port of the latency application.
const NetAppLPort = 5002

// NetAppT runs long flows from one or more senders to a receiver.
// Receiver-side accounting is kept per receiver (netTRx) so that in a
// sharded testbed each receiver's delivery callbacks touch only state
// owned by its own shard; the aggregate views (Throughput, FlowShares)
// are read at quiesced points only.
type NetAppT struct {
	e     *sim.Engine
	conns []*transport.Conn
	rx    []*netTRx
}

// netTRx is one receiver's delivery accounting, owned by that
// receiver's shard.
type netTRx struct {
	conns     []*transport.Conn
	delivered stats.Meter
}

// NewNetAppT creates the throughput app with flows spread round-robin
// over the senders, and starts them (infinite sources). Flows use
// distinct source ports, so the receiver steers each to its own RX core.
func NewNetAppT(e *sim.Engine, senders []*host.Host, receiver *host.Host, flows int) *NetAppT {
	return NewNetAppTAcross(e, senders, []*host.Host{receiver}, flows)
}

// NewNetAppTAcross is NewNetAppT over multiple receivers: flow i runs
// sender[i%S] → receiver[i%R], producing a cross-rack traffic matrix in
// multi-rack topologies. With one receiver it is exactly NewNetAppT.
func NewNetAppTAcross(e *sim.Engine, senders, receivers []*host.Host, flows int) *NetAppT {
	if flows <= 0 {
		panic("apps: NetAppT needs at least one flow")
	}
	if len(senders) == 0 {
		panic("apps: NetAppT needs at least one sender")
	}
	if len(receivers) == 0 {
		panic("apps: NetAppT needs at least one receiver")
	}
	t := &NetAppT{e: e}
	for _, r := range receivers {
		rx := &netTRx{}
		t.rx = append(t.rx, rx)
		r.EP.Listen(NetAppTPort, func(c *transport.Conn) {
			rx.conns = append(rx.conns, c)
			c.OnData(func(n int) { rx.delivered.Add(int64(n)) })
		})
	}
	for i := 0; i < flows; i++ {
		s := senders[i%len(senders)]
		r := receivers[i%len(receivers)]
		c := s.EP.DialFrom(uint16(20000+i), r.ID(), NetAppTPort)
		c.SetInfiniteSource(true)
		t.conns = append(t.conns, c)
	}
	return t
}

// Conns returns the sender-side connections.
func (t *NetAppT) Conns() []*transport.Conn { return t.conns }

// MarkWindow begins a throughput measurement window.
func (t *NetAppT) MarkWindow() {
	now := t.e.Now()
	for _, rx := range t.rx {
		rx.delivered.Mark(now)
		for _, c := range rx.conns {
			c.DeliveredData.Mark()
		}
	}
}

// FlowShares returns each flow's delivered bytes since the last mark,
// for fairness analysis (Jain's index).
func (t *NetAppT) FlowShares() []float64 {
	var shares []float64
	for _, rx := range t.rx {
		for _, c := range rx.conns {
			shares = append(shares, float64(c.DeliveredData.SinceMark()))
		}
	}
	return shares
}

// Throughput returns application goodput since the last mark.
func (t *NetAppT) Throughput() sim.Rate {
	now := t.e.Now()
	var r sim.Rate
	for _, rx := range t.rx {
		r += rx.delivered.RateSinceMark(now)
	}
	return r
}

// DeliveredBytes returns total receiver-side delivered bytes.
func (t *NetAppT) DeliveredBytes() int64 {
	var n int64
	for _, rx := range t.rx {
		n += rx.delivered.Total()
	}
	return n
}

// Retransmits sums retransmissions across flows.
func (t *NetAppT) Retransmits() int64 {
	var n int64
	for _, c := range t.conns {
		n += c.Retransmits.Total()
	}
	return n
}

// NetAppL issues closed-loop RPCs: the client sends a Size-byte request
// through the (possibly congested) receiver datapath; the server replies
// with a small response. Latency is request-send to response-received —
// the netperf TCP_RR measurement of Figures 4, 12 and 15.
type NetAppL struct {
	e    *sim.Engine
	conn *transport.Conn

	size     int
	respSize int
	maxCount int

	startAt   sim.Time
	respGot   int
	completed int
	recording bool

	// Latency holds completion times in nanoseconds.
	Latency *stats.Histogram

	onDone func()
}

// NewNetAppL creates the latency app between client and server hosts.
// maxCount bounds the total RPCs issued (0 = unbounded); onDone fires
// when maxCount completes.
func NewNetAppL(e *sim.Engine, client, server *host.Host, size int, maxCount int, onDone func()) *NetAppL {
	if size <= 0 {
		panic("apps: non-positive RPC size")
	}
	l := &NetAppL{
		e:        e,
		size:     size,
		respSize: 64,
		maxCount: maxCount,
		Latency:  stats.NewHistogram(30),
		onDone:   onDone,
	}
	server.EP.Listen(NetAppLPort, func(c *transport.Conn) {
		reqGot := 0
		c.OnData(func(n int) {
			reqGot += n
			for reqGot >= l.size {
				reqGot -= l.size
				c.Send(l.respSize)
			}
		})
	})
	l.conn = client.EP.DialFrom(30000, server.ID(), NetAppLPort)
	l.conn.OnData(func(n int) { l.onResponse(n) })
	return l
}

// Start issues the first RPC.
func (l *NetAppL) Start() { l.issue() }

// SetRecording controls whether completions are recorded (off during
// warmup).
func (l *NetAppL) SetRecording(on bool) { l.recording = on }

// Completed returns the number of finished RPCs.
func (l *NetAppL) Completed() int { return l.completed }

// Conn exposes the client connection (timeout diagnostics).
func (l *NetAppL) Conn() *transport.Conn { return l.conn }

func (l *NetAppL) issue() {
	if l.maxCount > 0 && l.completed >= l.maxCount {
		if l.onDone != nil {
			l.onDone()
		}
		return
	}
	l.startAt = l.e.Now()
	l.respGot = 0
	l.conn.Send(l.size)
}

func (l *NetAppL) onResponse(n int) {
	l.respGot += n
	if l.respGot < l.respSize {
		return
	}
	l.completed++
	if l.recording {
		l.Latency.Add(float64(l.e.Now() - l.startAt))
	}
	l.issue()
}

package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Chrome-trace export: the Timeline renders as Trace Event Format JSON
// (the format chrome://tracing and ui.perfetto.dev load natively).
// Spans become "X" complete events on one thread track per hop, counter
// tracks become "C" events, instants become "i" events. Timestamps are
// microseconds (the format's unit), emitted with nanosecond precision.

// chromeEvent is one Trace Event Format entry.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// tracePid is the single synthetic process all events belong to.
const tracePid = 1

func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// WriteChromeTrace writes the timeline as Trace Event Format JSON.
func (tl *Timeline) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		// Encoder writes a trailing newline, which is valid inside a JSON
		// array and keeps the output diffable.
		return enc.Encode(ev)
	}

	// Process + thread naming so the hop tracks are labelled.
	if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: tracePid,
		Args: map[string]any{"name": "hostcc"}}); err != nil {
		return err
	}
	for h := Hop(0); h < hopCount; h++ {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: tracePid,
			Tid: int(h) + 1, Args: map[string]any{"name": h.String()}}); err != nil {
			return err
		}
	}

	for i := range tl.Spans {
		s := &tl.Spans[i]
		dur := usec(s.End - s.Begin)
		args := map[string]any{}
		if s.Pkt {
			args["flow"] = flowLabel(s.Flow)
			args["seq"] = s.Seq
		} else {
			args["id"] = s.Seq
		}
		if s.Cause != "" {
			args["cause"] = s.Cause
		}
		if err := emit(chromeEvent{
			Name: s.Hop.String(), Ph: "X", Ts: usec(s.Begin), Dur: &dur,
			Pid: tracePid, Tid: int(s.Hop) + 1, Args: args,
		}); err != nil {
			return err
		}
	}

	for _, in := range tl.Instants {
		var args map[string]any
		if len(in.Args) > 0 {
			args = make(map[string]any, len(in.Args))
			for _, kv := range in.Args {
				args[kv.Key] = kv.Val
			}
		}
		if err := emit(chromeEvent{
			Name: in.Name, Ph: "i", Ts: usec(in.At),
			Pid: tracePid, Tid: int(in.Hop) + 1, S: "t", Args: args,
		}); err != nil {
			return err
		}
	}

	for _, tk := range tl.Tracks {
		key := tk.Unit
		if key == "" {
			key = "value"
		}
		for i := range tk.Times {
			if err := emit(chromeEvent{
				Name: tk.Name, Ph: "C", Ts: usec(tk.Times[i]),
				Pid: tracePid, Args: map[string]any{key: tk.Values[i]},
			}); err != nil {
				return err
			}
		}
	}

	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func flowLabel(f packet.FlowID) string {
	return fmt.Sprintf("%d:%d>%d:%d", f.Src, f.SrcPort, f.Dst, f.DstPort)
}

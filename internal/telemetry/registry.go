// Package telemetry is the unified observability layer over the
// simulator: a registry of named instruments that every device model
// registers into, and a structured event tracer that records
// packet-lifecycle spans (per-hop residence with stall cause) and
// on-change counter tracks, exportable as Chrome-trace/Perfetto JSON.
//
// Two invariants shape the design (see DESIGN.md "Telemetry"):
//
//   - Zero disabled-path cost. Components hold a nil *Tracer / nil *Track
//     by default; every hot-path hook is a single nil check. The registry
//     is pull-based — registration stores closures, reads happen only
//     when a consumer asks — so registering instruments costs nothing
//     per event.
//
//   - No perturbation. Telemetry only reads simulation state from within
//     existing event handlers; it never schedules events, draws random
//     numbers, or mutates the datapath, so event order, RNG streams and
//     state digests are bit-identical with telemetry on or off.
package telemetry

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Kind classifies an instrument.
type Kind int

// Instrument kinds.
const (
	// KindCounter is a monotonically non-decreasing event or quantity
	// count (arrivals, drops, bytes).
	KindCounter Kind = iota
	// KindGauge is an instantaneous value (queue depth, credits, level).
	KindGauge
	// KindHistogram is a latency/size distribution.
	KindHistogram
	// KindSeries is a time-weighted running value (occupancy averages).
	KindSeries
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindSeries:
		return "series"
	}
	return "unknown"
}

// Instrument is one named, readable metric. Scalar kinds read through a
// closure; histograms expose the underlying distribution.
type Instrument struct {
	Name string
	Kind Kind
	Unit string
	Help string

	read func() float64
	hist *stats.Histogram
}

// Value returns the instrument's current scalar value. For histograms it
// returns the observation count (use Histogram for quantiles).
func (i *Instrument) Value() float64 {
	if i.hist != nil {
		return float64(i.hist.Count())
	}
	return i.read()
}

// Histogram returns the underlying distribution, or nil for scalar kinds.
func (i *Instrument) Histogram() *stats.Histogram { return i.hist }

// Registry is a catalogue of instruments, keyed by slash-separated names
// ("receiver/nic/drops"). A nil *Registry is valid and ignores all
// registrations, so components register unconditionally.
type Registry struct {
	by    map[string]*Instrument
	order []*Instrument
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]*Instrument)}
}

func (r *Registry) add(i *Instrument) {
	if r == nil {
		return
	}
	if _, dup := r.by[i.Name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate instrument %q", i.Name))
	}
	r.by[i.Name] = i
	r.order = append(r.order, i)
}

// Counter registers a monotonic counter read through fn.
func (r *Registry) Counter(name, unit, help string, fn func() float64) {
	r.add(&Instrument{Name: name, Kind: KindCounter, Unit: unit, Help: help, read: fn})
}

// Gauge registers an instantaneous value read through fn.
func (r *Registry) Gauge(name, unit, help string, fn func() float64) {
	r.add(&Instrument{Name: name, Kind: KindGauge, Unit: unit, Help: help, read: fn})
}

// Series registers a time-weighted running value read through fn.
func (r *Registry) Series(name, unit, help string, fn func() float64) {
	r.add(&Instrument{Name: name, Kind: KindSeries, Unit: unit, Help: help, read: fn})
}

// Histogram registers a distribution instrument over h.
func (r *Registry) Histogram(name, unit, help string, h *stats.Histogram) {
	r.add(&Instrument{Name: name, Kind: KindHistogram, Unit: unit, Help: help, hist: h,
		read: func() float64 { return float64(h.Count()) }})
}

// Get returns the named instrument.
func (r *Registry) Get(name string) (*Instrument, bool) {
	if r == nil {
		return nil, false
	}
	i, ok := r.by[name]
	return i, ok
}

// Each calls fn for every instrument in registration order.
func (r *Registry) Each(fn func(*Instrument)) {
	if r == nil {
		return
	}
	for _, i := range r.order {
		fn(i)
	}
}

// Names returns all instrument names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.order))
	for _, i := range r.order {
		out = append(out, i.Name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered instruments.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.order)
}

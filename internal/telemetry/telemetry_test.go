package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/packet"
	"repro/internal/stats"
)

func TestRegistryRegisterAndRead(t *testing.T) {
	r := NewRegistry()
	v := 0.0
	r.Counter("a/events", "count", "events so far", func() float64 { return v })
	r.Gauge("a/depth", "pkts", "queue depth", func() float64 { return 3 })
	h := stats.NewHistogram(30)
	h.Add(5)
	r.Histogram("a/delay", "ns", "queueing delay", h)

	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	i, ok := r.Get("a/events")
	if !ok || i.Kind != KindCounter {
		t.Fatalf("Get: %v %v", ok, i)
	}
	v = 7
	if i.Value() != 7 {
		t.Fatalf("counter read %v", i.Value())
	}
	if hi, _ := r.Get("a/delay"); hi.Histogram() == nil || hi.Value() != 1 {
		t.Fatalf("histogram instrument: %v", hi)
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "a/delay" {
		t.Fatalf("names = %v", names)
	}
	seen := 0
	r.Each(func(*Instrument) { seen++ })
	if seen != 3 {
		t.Fatalf("Each visited %d", seen)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Gauge("x", "", "", func() float64 { return 0 })
	r.Gauge("x", "", "", func() float64 { return 0 })
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x", "", "", func() float64 { return 0 })
	r.Gauge("y", "", "", nil)
	if r.Len() != 0 || r.Names() != nil {
		t.Fatal("nil registry retained something")
	}
	if _, ok := r.Get("x"); ok {
		t.Fatal("nil registry Get returned ok")
	}
	r.Each(func(*Instrument) { t.Fatal("nil registry Each visited") })
}

func testPkt(seq uint64) *packet.Packet {
	return &packet.Packet{
		Flow: packet.FlowID{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20},
		Seq:  seq, PayloadLen: 1000,
	}
}

func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	p := testPkt(100)
	tr.PacketSpanBegin(HopNICQueue, p, 10)
	tr.PacketSpanEnd(HopNICQueue, p, 35, "pcie-credits")
	// End without Begin: ignored.
	tr.PacketSpanEnd(HopCPU, p, 50, "")
	// Range span.
	tr.RangeBegin(HopMBAWrite, 1, 100)
	tr.RangeEnd(HopMBAWrite, 1, 122, "applied")

	tl := tr.Timeline()
	if len(tl.Spans) != 2 {
		t.Fatalf("spans = %d", len(tl.Spans))
	}
	s := tl.Spans[0]
	if s.Hop != HopNICQueue || s.Begin != 10 || s.End != 35 || s.Cause != "pcie-credits" || !s.Pkt {
		t.Fatalf("span 0: %+v", s)
	}
	if r := tl.Spans[1]; r.Pkt || r.Seq != 1 || r.End-r.Begin != 22 {
		t.Fatalf("range span: %+v", r)
	}
}

func TestTracerSpanDropDiscards(t *testing.T) {
	tr := NewTracer()
	p := testPkt(7)
	tr.PacketSpanBegin(HopNICQueue, p, 1)
	tr.PacketSpanDrop(HopNICQueue, p)
	tr.PacketSpanEnd(HopNICQueue, p, 9, "")
	if n := len(tr.Timeline().Spans); n != 0 {
		t.Fatalf("dropped span recorded: %d", n)
	}
}

func TestTracerSpanCap(t *testing.T) {
	tr := NewTracer()
	tr.SetMaxSpans(2)
	for i := uint64(0); i < 5; i++ {
		tr.RangeBegin(HopSample, i, 0)
		tr.RangeEnd(HopSample, i, 1, "")
	}
	tl := tr.Timeline()
	if len(tl.Spans) != 2 || tl.Dropped != 3 {
		t.Fatalf("spans=%d dropped=%d", len(tl.Spans), tl.Dropped)
	}
}

func TestTrackCoalescing(t *testing.T) {
	tr := NewTracer()
	tk := tr.NewTrack("iio/occupancy", "lines")
	tk.Set(0, 5)
	tk.Set(10, 5) // unchanged value: coalesced
	tk.Set(20, 8)
	tk.Set(20, 9) // same timestamp: overwritten
	if len(tk.Values) != 2 || tk.Values[1] != 9 || tk.Times[1] != 20 {
		t.Fatalf("track: times=%v values=%v", tk.Times, tk.Values)
	}
}

func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	var tk *Track
	p := testPkt(1)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.PacketSpanBegin(HopNICQueue, p, 5)
		tr.PacketSpanEnd(HopNICQueue, p, 9, "cause")
		tr.PacketSpanDrop(HopIIOMem, p)
		tr.RangeBegin(HopSample, 3, 1)
		tr.RangeEnd(HopSample, 3, 2, "")
		tk.Set(7, 3.5)
		if tr.NewTrack("x", "") != nil {
			t.Fatal("nil tracer returned a live track")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled-path telemetry allocated %.1f/op", allocs)
	}
}

func TestChromeTraceOutput(t *testing.T) {
	tr := NewTracer()
	p := testPkt(4096)
	tr.PacketSpanBegin(HopNICQueue, p, 1000)
	tr.PacketSpanEnd(HopNICQueue, p, 3500, "rx-descriptors")
	tr.Instant(HopNICQueue, "nic-drop", 4000, KV{"bytes", 1040})
	tk := tr.NewTrack("receiver/iio/occupancy", "lines")
	tk.Set(0, 65)
	tk.Set(2000, 93)

	var buf bytes.Buffer
	if err := tr.Timeline().WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	var sawSpan, sawCounter, sawInstant, sawMeta bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			sawSpan = true
			if ev.Name != "nic-queue" || ev.Ts != 1.0 || ev.Dur != 2.5 {
				t.Fatalf("span event: %+v", ev)
			}
			if ev.Args["cause"] != "rx-descriptors" || ev.Args["seq"] != float64(4096) {
				t.Fatalf("span args: %v", ev.Args)
			}
		case "C":
			sawCounter = true
			if ev.Name != "receiver/iio/occupancy" || ev.Args["lines"] == nil {
				t.Fatalf("counter event: %+v", ev)
			}
		case "i":
			sawInstant = true
			if ev.Args["bytes"] != float64(1040) {
				t.Fatalf("instant args: %v", ev.Args)
			}
		case "M":
			sawMeta = true
		}
	}
	if !sawSpan || !sawCounter || !sawInstant || !sawMeta {
		t.Fatalf("missing event kinds: span=%v counter=%v instant=%v meta=%v",
			sawSpan, sawCounter, sawInstant, sawMeta)
	}
}

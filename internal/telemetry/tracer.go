package telemetry

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// Hop identifies one stage of the receive datapath (or one control-plane
// activity) that packets/operations reside in; each hop renders as one
// Perfetto thread track of spans.
type Hop uint8

// Hops, in datapath order.
const (
	// HopNICQueue is NIC buffer residence: wire arrival → DMA start.
	HopNICQueue Hop = iota
	// HopIIOMem is DMA + memory-system residence: first TLP processed →
	// packet visible to the CPU.
	HopIIOMem
	// HopCPU is rx-core residence: enqueue → protocol processing done.
	HopCPU
	// HopMBAWrite is one MBA MSR write in flight (actuation latency).
	HopMBAWrite
	// HopSample is one hostCC signal sample (the two chained MSR reads).
	HopSample
	// HopPause is one PFC pause range: a switch port (or NIC tx path)
	// held paused by priority flow control, assert → release.
	HopPause

	hopCount
)

func (h Hop) String() string {
	switch h {
	case HopNICQueue:
		return "nic-queue"
	case HopIIOMem:
		return "iio-mem"
	case HopCPU:
		return "cpu-rx"
	case HopMBAWrite:
		return "mba-write"
	case HopSample:
		return "hostcc-sample"
	case HopPause:
		return "pfc-pause"
	}
	return "unknown"
}

// Span is one completed residence interval.
type Span struct {
	Hop   Hop
	Flow  packet.FlowID // zero for non-packet (range) spans
	Seq   uint64        // packet Seq, or the range id
	Begin sim.Time
	End   sim.Time
	Cause string // why the span took as long as it did ("" = unremarkable)
	Pkt   bool   // packet span vs control-plane range
}

// Instant is one point event (a drop, a decision).
type Instant struct {
	Hop  Hop
	Name string
	At   sim.Time
	Args []KV
}

// KV is one numeric annotation on an instant event.
type KV struct {
	Key string
	Val float64
}

// spanKey identifies an open span. Packet spans key on (hop, flow, seq):
// within one hop a packet's begin and end bracket a live packet, and two
// live packets of one flow never share a Seq. Range spans reuse Seq as an
// opaque id with the zero FlowID.
type spanKey struct {
	hop  Hop
	flow packet.FlowID
	seq  uint64
}

// DefaultMaxSpans bounds tracer memory; beyond it new spans are counted
// but not retained (see Tracer.Dropped).
const DefaultMaxSpans = 1 << 20

// Tracer records spans, instants and counter tracks. A nil *Tracer is
// valid: every method is a no-op costing one nil check and zero
// allocations, which is how the disabled path stays free. All recording
// is synchronous — called from existing event handlers — so enabling a
// tracer never changes the event schedule.
type Tracer struct {
	open     map[spanKey]sim.Time
	spans    []Span
	instants []Instant
	tracks   []*Track
	maxSpans int

	// Dropped counts spans discarded after the maxSpans cap was hit.
	Dropped int64
}

// NewTracer creates an enabled tracer.
func NewTracer() *Tracer {
	return &Tracer{open: make(map[spanKey]sim.Time), maxSpans: DefaultMaxSpans}
}

// SetMaxSpans overrides the retained-span cap (0 restores the default).
func (t *Tracer) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultMaxSpans
	}
	t.maxSpans = n
}

// PacketSpanBegin opens hop residence for p at time at. A second Begin
// for the same (hop, packet) restarts the span.
func (t *Tracer) PacketSpanBegin(hop Hop, p *packet.Packet, at sim.Time) {
	if t == nil {
		return
	}
	t.open[spanKey{hop, p.Flow, p.Seq}] = at
}

// PacketSpanEnd closes hop residence for p. An End without a matching
// Begin is ignored (a packet already in flight when tracing started).
func (t *Tracer) PacketSpanEnd(hop Hop, p *packet.Packet, at sim.Time, cause string) {
	if t == nil {
		return
	}
	t.closeSpan(spanKey{hop, p.Flow, p.Seq}, at, cause, true)
}

// PacketSpanDrop discards an open span without recording it (the packet
// left the hop abnormally and an instant event tells that story instead).
func (t *Tracer) PacketSpanDrop(hop Hop, p *packet.Packet) {
	if t == nil {
		return
	}
	delete(t.open, spanKey{hop, p.Flow, p.Seq})
}

// RangeBegin opens a non-packet span (an MBA write, a signal sample)
// identified by id within hop.
func (t *Tracer) RangeBegin(hop Hop, id uint64, at sim.Time) {
	if t == nil {
		return
	}
	t.open[spanKey{hop: hop, seq: id}] = at
}

// RangeEnd closes a non-packet span.
func (t *Tracer) RangeEnd(hop Hop, id uint64, at sim.Time, cause string) {
	if t == nil {
		return
	}
	t.closeSpan(spanKey{hop: hop, seq: id}, at, cause, false)
}

func (t *Tracer) closeSpan(k spanKey, at sim.Time, cause string, pkt bool) {
	begin, ok := t.open[k]
	if !ok {
		return
	}
	delete(t.open, k)
	if len(t.spans) >= t.maxSpans {
		t.Dropped++
		return
	}
	t.spans = append(t.spans, Span{
		Hop: k.hop, Flow: k.flow, Seq: k.seq,
		Begin: begin, End: at, Cause: cause, Pkt: pkt,
	})
}

// Instant records a point event. Callers must guard with their own nil
// check when building kv arguments, so the disabled path never constructs
// the variadic slice.
func (t *Tracer) Instant(hop Hop, name string, at sim.Time, kv ...KV) {
	if t == nil {
		return
	}
	if len(t.instants) >= t.maxSpans {
		t.Dropped++
		return
	}
	var args []KV
	if len(kv) > 0 {
		args = append(args, kv...)
	}
	t.instants = append(t.instants, Instant{Hop: hop, Name: name, At: at, Args: args})
}

// Track is one counter timeline (IIO occupancy, MBA level, credits…),
// appended to on state change. A nil *Track ignores Set with a single nil
// check — components hold nil tracks when telemetry is off.
type Track struct {
	Name   string
	Unit   string
	Times  []sim.Time
	Values []float64
}

// NewTrack registers a counter track. On a nil tracer it returns nil,
// which is itself a valid (no-op) track.
func (t *Tracer) NewTrack(name, unit string) *Track {
	if t == nil {
		return nil
	}
	tk := &Track{Name: name, Unit: unit}
	t.tracks = append(t.tracks, tk)
	return tk
}

// Set appends a point at time at. Consecutive points with an unchanged
// value are coalesced, and a new value at an already-recorded timestamp
// overwrites it (tracks are piecewise-constant).
func (tk *Track) Set(at sim.Time, v float64) {
	if tk == nil {
		return
	}
	if n := len(tk.Values); n > 0 {
		if tk.Values[n-1] == v {
			return
		}
		if tk.Times[n-1] == at {
			tk.Values[n-1] = v
			return
		}
	}
	tk.Times = append(tk.Times, at)
	tk.Values = append(tk.Values, v)
}

// Timeline freezes the tracer's recordings for export. Open spans are
// left out (they have no end); the tracer remains usable afterwards.
func (t *Tracer) Timeline() *Timeline {
	if t == nil {
		return nil
	}
	return &Timeline{
		Spans:    t.spans,
		Instants: t.instants,
		Tracks:   t.tracks,
		Dropped:  t.Dropped,
	}
}

// Timeline is a frozen recording, ready for export.
type Timeline struct {
	Spans    []Span
	Instants []Instant
	Tracks   []*Track
	Dropped  int64
}

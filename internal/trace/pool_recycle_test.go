package trace

import (
	"bytes"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// TestCaptureDoesNotAliasRecycledPackets drives captured packets through
// a packet.Pool recycle: after a captured packet is Put and its memory is
// reused for an unrelated packet, the log's records must still read as
// originally captured. This is the contract that lets the datapath hand
// pooled packets to a capture hook and recycle them immediately after.
func TestCaptureDoesNotAliasRecycledPackets(t *testing.T) {
	e := sim.NewEngine(1)
	pool := packet.NewPool(4)
	l := NewPacketLog(e, 16)

	const rounds = 12
	for i := 0; i < rounds; i++ {
		p := pool.Get()
		p.Flow = packet.FlowID{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20}
		p.Seq = uint64(i * 1000)
		p.PayloadLen = 1000
		p.ECN = packet.ECT0
		l.Capture(p)
		// Recycle and immediately scribble over the same memory via a
		// fresh Get — with a 4-slot pool this reuses recent packets.
		pool.Put(p)
		q := pool.Get()
		q.Seq = 0xDEAD
		q.ECN = packet.CE
		q.PayloadLen = 1
		pool.Put(q)
	}

	recs := l.Records()
	if len(recs) != rounds {
		t.Fatalf("retained %d records, want %d", len(recs), rounds)
	}
	for i, r := range recs {
		if r.Pkt.Seq != uint64(i*1000) || r.Pkt.ECN != packet.ECT0 || r.Pkt.PayloadLen != 1000 {
			t.Fatalf("record %d aliased recycled memory: seq=%d ecn=%v len=%d",
				i, r.Pkt.Seq, r.Pkt.ECN, r.Pkt.PayloadLen)
		}
	}
}

// TestWraparoundRoundTripUnderRecycling combines both hazards: the ring
// wraps (overwriting oldest records) while the source packets are being
// pool-recycled, then the log is serialized and parsed back. The parsed
// records must match the retained window exactly, in capture order.
func TestWraparoundRoundTripUnderRecycling(t *testing.T) {
	e := sim.NewEngine(1)
	pool := packet.NewPool(2)
	const capacity = 5
	l := NewPacketLog(e, capacity)

	const total = 13
	for i := 0; i < total; i++ {
		at := sim.Time(i * 10)
		e.At(at, func() {
			p := pool.Get()
			p.Flow = packet.FlowID{Src: 3, Dst: 4, SrcPort: 7, DstPort: 8}
			p.Seq = uint64(i)
			p.Ack = uint64(i * 2)
			p.PayloadLen = 100 + i
			p.Flags = packet.FlagACK
			l.Capture(p)
			pool.Put(p)
		})
	}
	e.Run()

	if l.Captured != total || l.Len() != capacity {
		t.Fatalf("captured=%d len=%d", l.Captured, l.Len())
	}

	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	parsed, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(parsed) != capacity {
		t.Fatalf("parsed %d records, want %d", len(parsed), capacity)
	}
	for i, r := range parsed {
		wantSeq := uint64(total - capacity + i)
		if r.Pkt.Seq != wantSeq {
			t.Fatalf("parsed[%d].Seq = %d, want %d (oldest-first order)", i, r.Pkt.Seq, wantSeq)
		}
		if want := sim.Time(wantSeq * 10); r.At != want {
			t.Fatalf("parsed[%d].At = %v, want %v", i, r.At, want)
		}
		if r.Pkt.PayloadLen != 100+int(wantSeq) || r.Pkt.Ack != wantSeq*2 {
			t.Fatalf("parsed[%d] header mismatch: %+v", i, r.Pkt)
		}
	}
}

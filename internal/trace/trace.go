// Package trace provides packet capture for the simulated network: a
// bounded in-memory log of wire-format packet records that can be
// attached to any point of the datapath (host receive hooks, fabric
// links), serialized to an io.Writer, and parsed back. It is the
// simulator's analogue of tcpdump, built on the packet package's wire
// codec.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Record is one captured packet with its capture timestamp.
type Record struct {
	At  sim.Time
	Pkt *packet.Packet
}

// PacketLog is a bounded ring of captured packets.
type PacketLog struct {
	e    *sim.Engine
	cap  int
	ring []Record
	next int
	full bool

	// Captured counts all packets ever captured (including overwritten).
	Captured int64
}

// NewPacketLog creates a log retaining the most recent capacity packets.
func NewPacketLog(e *sim.Engine, capacity int) *PacketLog {
	if capacity <= 0 {
		panic("trace: non-positive capacity")
	}
	return &PacketLog{e: e, cap: capacity, ring: make([]Record, 0, capacity)}
}

// Capture records one packet (cloned, so later mutation by the datapath
// does not alter the log).
func (l *PacketLog) Capture(p *packet.Packet) {
	l.Captured++
	r := Record{At: l.e.Now(), Pkt: p.Clone()}
	if len(l.ring) < l.cap {
		l.ring = append(l.ring, r)
		return
	}
	l.ring[l.next] = r
	l.next = (l.next + 1) % l.cap
	l.full = true
}

// Hook returns a capture function usable as a host receive hook.
func (l *PacketLog) Hook() func(*packet.Packet) { return l.Capture }

// Records returns the retained packets in capture order.
func (l *PacketLog) Records() []Record {
	if !l.full {
		return append([]Record(nil), l.ring...)
	}
	out := make([]Record, 0, l.cap)
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Len returns the number of retained packets.
func (l *PacketLog) Len() int { return len(l.ring) }

// magic identifies a serialized packet log stream.
var magic = [4]byte{'H', 'C', 'P', '1'}

// WriteTo serializes the retained records: a 4-byte magic, then for each
// record an 8-byte timestamp followed by the wire-format header.
func (l *PacketLog) WriteTo(w io.Writer) (int64, error) {
	var n int64
	m, err := w.Write(magic[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	var ts [8]byte
	buf := make([]byte, packet.WireHeaderLen)
	for _, r := range l.Records() {
		binary.BigEndian.PutUint64(ts[:], uint64(r.At))
		m, err = w.Write(ts[:])
		n += int64(m)
		if err != nil {
			return n, err
		}
		if _, err := packet.MarshalHeader(r.Pkt, buf); err != nil {
			return n, err
		}
		m, err = w.Write(buf)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ErrBadStream reports a malformed serialized log.
var ErrBadStream = errors.New("trace: malformed packet log stream")

// Read parses a stream produced by WriteTo.
func Read(r io.Reader) ([]Record, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadStream
	}
	var out []Record
	var ts [8]byte
	buf := make([]byte, packet.WireHeaderLen)
	for {
		if _, err := io.ReadFull(r, ts[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("trace: reading timestamp: %w", err)
		}
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("trace: truncated record: %w", err)
		}
		p, err := packet.ParseHeader(buf)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		out = append(out, Record{At: sim.Time(binary.BigEndian.Uint64(ts[:])), Pkt: p})
	}
}

// Summary aggregates a capture for quick inspection.
type Summary struct {
	Packets  int
	Data     int
	Acks     int
	CEMarked int
	Bytes    int64
	First    sim.Time
	Last     sim.Time
}

// Summarize computes aggregate statistics over records.
func Summarize(recs []Record) Summary {
	var s Summary
	for i, r := range recs {
		s.Packets++
		s.Bytes += int64(r.Pkt.WireLen())
		if r.Pkt.IsData() {
			s.Data++
		} else if r.Pkt.Flags.Has(packet.FlagACK) {
			s.Acks++
		}
		if r.Pkt.ECN == packet.CE {
			s.CEMarked++
		}
		if i == 0 {
			s.First = r.At
		}
		s.Last = r.At
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("%d pkts (%d data, %d acks, %d CE) %dB over %v",
		s.Packets, s.Data, s.Acks, s.CEMarked, s.Bytes, s.Last-s.First)
}

package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func pkt(seq uint64, data int, ecn packet.ECN) *packet.Packet {
	return &packet.Packet{
		Flow:       packet.FlowID{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20},
		Seq:        seq,
		Flags:      packet.FlagACK,
		ECN:        ecn,
		PayloadLen: data,
	}
}

func TestCaptureAndRecords(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewPacketLog(e, 100)
	e.At(10, func() { l.Capture(pkt(0, 1000, packet.ECT0)) })
	e.At(20, func() { l.Capture(pkt(1000, 1000, packet.CE)) })
	e.Run()
	recs := l.Records()
	if len(recs) != 2 || l.Len() != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].At != 10 || recs[1].At != 20 {
		t.Fatalf("timestamps: %v %v", recs[0].At, recs[1].At)
	}
	if recs[1].Pkt.ECN != packet.CE {
		t.Fatal("packet fields lost")
	}
}

func TestCaptureClones(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewPacketLog(e, 10)
	p := pkt(0, 500, packet.ECT0)
	l.Capture(p)
	p.ECN = packet.CE // datapath mutates after capture (e.g. hostCC)
	if l.Records()[0].Pkt.ECN != packet.ECT0 {
		t.Fatal("capture did not clone; later mutation leaked into the log")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewPacketLog(e, 3)
	for i := 0; i < 5; i++ {
		l.Capture(pkt(uint64(i*1000), 1000, packet.ECT0))
	}
	recs := l.Records()
	if len(recs) != 3 {
		t.Fatalf("retained %d, want 3", len(recs))
	}
	if recs[0].Pkt.Seq != 2000 || recs[2].Pkt.Seq != 4000 {
		t.Fatalf("wrong retention order: %d..%d", recs[0].Pkt.Seq, recs[2].Pkt.Seq)
	}
	if l.Captured != 5 {
		t.Fatalf("captured = %d", l.Captured)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewPacketLog(e, 100)
	e.At(5, func() {
		l.Capture(pkt(0, 4026, packet.ECT0))
		ack := &packet.Packet{
			Flow:  packet.FlowID{Src: 2, Dst: 1, SrcPort: 20, DstPort: 10},
			Ack:   4026,
			Flags: packet.FlagACK | packet.FlagECE,
			SACK:  []packet.SackBlock{{Lo: 8052, Hi: 12078}},
		}
		l.Capture(ack)
	})
	e.Run()

	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records", len(recs))
	}
	if recs[0].At != 5 || recs[0].Pkt.PayloadLen != 4026 {
		t.Fatalf("record 0: %+v", recs[0])
	}
	if len(recs[1].Pkt.SACK) != 1 || recs[1].Pkt.SACK[0].Hi != 12078 {
		t.Fatalf("SACK lost: %+v", recs[1].Pkt.SACK)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a capture")); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteString("short")
	if _, err := Read(&buf); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestSummarize(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewPacketLog(e, 10)
	e.At(100, func() { l.Capture(pkt(0, 1000, packet.ECT0)) })
	e.At(200, func() { l.Capture(pkt(1000, 1000, packet.CE)) })
	e.At(300, func() {
		l.Capture(&packet.Packet{Flow: packet.FlowID{Src: 2, Dst: 1}, Flags: packet.FlagACK, Ack: 2000})
	})
	e.Run()
	s := Summarize(l.Records())
	if s.Packets != 3 || s.Data != 2 || s.Acks != 1 || s.CEMarked != 1 {
		t.Fatalf("summary: %+v", s)
	}
	if s.Last-s.First != 200 {
		t.Fatalf("span: %v", s.Last-s.First)
	}
	if !strings.Contains(s.String(), "3 pkts") {
		t.Fatalf("string: %q", s.String())
	}
}

func TestValidation(t *testing.T) {
	e := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewPacketLog(e, 0)
}

package host

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/transport"
)

// loopback wires two hosts back-to-back with a fixed-delay wire (no
// switch), enough to exercise the full receive datapath end to end.
func loopback(t *testing.T, ddio bool) (*sim.Engine, *Host, *Host) {
	t.Helper()
	e := sim.NewEngine(1)
	a := New(e, DefaultConfig(1, 4096, ddio))
	b := New(e, DefaultConfig(2, 4096, ddio))
	wire := func(dst *Host) func(*packet.Packet) {
		return func(p *packet.Packet) {
			e.After(5*sim.Microsecond, func() { dst.ReceiveFromWire(p) })
		}
	}
	a.SetOutput(wire(b))
	b.SetOutput(wire(a))
	return e, a, b
}

func TestEndToEndTransferThroughDatapath(t *testing.T) {
	e, a, b := loopback(t, false)
	var got int64
	b.EP.Listen(5000, func(c *transport.Conn) {
		c.OnData(func(n int) { got += int64(n) })
	})
	c := a.EP.Dial(2, 5000)
	const total = 512 * 1024
	c.Send(total)
	e.RunUntil(50 * sim.Millisecond)
	if got != total {
		t.Fatalf("delivered %d of %d through the host datapath", got, total)
	}
	// Data crossed the receiver's memory controller.
	if b.MC.Submitted == 0 {
		t.Fatal("no memory traffic at the receiver")
	}
	if b.IIO.RINS() == 0 {
		t.Fatal("no IIO insertions recorded")
	}
	if b.Rx.Processed() == 0 {
		t.Fatal("no packets processed by RX cores")
	}
}

func TestReceiveHooksRunBeforeTransport(t *testing.T) {
	e, a, b := loopback(t, false)
	var hookSeq []uint64
	b.AddReceiveHook(func(p *packet.Packet) {
		if p.IsData() {
			hookSeq = append(hookSeq, p.Seq)
		}
	})
	var gotData bool
	b.EP.Listen(5000, func(c *transport.Conn) {
		c.OnData(func(int) {
			gotData = true
			if len(hookSeq) == 0 {
				t.Error("transport delivery before receive hook")
			}
		})
	})
	a.EP.Dial(2, 5000).Send(1000)
	e.RunUntil(10 * sim.Millisecond)
	if !gotData || len(hookSeq) == 0 {
		t.Fatalf("gotData=%v hooks=%d", gotData, len(hookSeq))
	}
}

func TestHookCanMarkCE(t *testing.T) {
	// A hook that marks every data packet CE must cause ECE on ACKs and
	// DCTCP alpha growth at the sender — the hostCC echo mechanism.
	e, a, b := loopback(t, false)
	b.AddReceiveHook(func(p *packet.Packet) {
		if p.IsData() && p.ECN == packet.ECT0 {
			p.ECN = packet.CE
		}
	})
	b.EP.Listen(5000, func(c *transport.Conn) {})
	c := a.EP.Dial(2, 5000)
	c.SetInfiniteSource(true)
	e.RunUntil(20 * sim.Millisecond)
	if c.MarkedAcks.Total() == 0 {
		t.Fatal("no ECE feedback despite CE-marking hook")
	}
}

func TestMAppLifecycle(t *testing.T) {
	e, a, _ := loopback(t, false)
	if a.MApp() != nil {
		t.Fatal("MApp should be nil before start")
	}
	a.MarkWindow()
	ma := a.StartMApp(1)
	e.RunUntil(1 * sim.Millisecond)
	if ma.Cores() != 8 {
		t.Fatalf("1x MApp cores = %d, want 8", ma.Cores())
	}
	if a.MC.RateOf(mem.ClassMApp).GBps() < 5 {
		t.Fatalf("MApp bandwidth %.1f too low", a.MC.RateOf(mem.ClassMApp).GBps())
	}
	defer func() {
		if recover() == nil {
			t.Error("second StartMApp did not panic")
		}
	}()
	a.StartMApp(1)
}

func TestDDIOLowersIIOResidency(t *testing.T) {
	// Average IIO residency per line = ΔROCC/ΔRINS IIO clock ticks. The
	// LLC write path is faster than DRAM, so residency must drop with
	// DDIO enabled (the reason idle occupancy is ~45 vs ~65, §5.2).
	run := func(ddio bool) float64 {
		e, a, b := loopback(t, ddio)
		b.EP.Listen(5000, func(c *transport.Conn) {})
		c := a.EP.Dial(2, 5000)
		c.SetInfiniteSource(true)
		e.RunUntil(5 * sim.Millisecond)
		r1, i1 := b.IIO.ROCC(), b.IIO.RINS()
		e.RunUntil(8 * sim.Millisecond)
		return float64(b.IIO.ROCC()-r1) / float64(b.IIO.RINS()-i1)
	}
	off, on := run(false), run(true)
	if on >= off {
		t.Fatalf("DDIO residency %.2f ticks/line should be below DDIO-off %.2f", on, off)
	}
}

func TestDynamicPollutionTracksMApp(t *testing.T) {
	e, _, b := loopback(t, true)
	// Idle: pollution near base.
	base := b.Cfg.Cache.PollutionProb
	id, evs := b.DDIO.Insert(64)
	_ = id
	_ = evs
	b.StartMApp(3)
	e.RunUntil(2 * sim.Millisecond)
	// With a 3x MApp running, the pollution function must be well above
	// base; sample it via repeated insertions.
	evicted := 0
	for i := 0; i < 200; i++ {
		_, evs := b.DDIO.Insert(64)
		if len(evs) > 0 {
			evicted++
		}
	}
	frac := float64(evicted) / 200
	if frac < base+0.2 {
		t.Fatalf("pollution fraction %.2f under 3x MApp; want well above base %.2f", frac, base)
	}
}

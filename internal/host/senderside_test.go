package host

import (
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/transport"
)

// TestSenderSideGuardPreventsTxStarvation exercises the sender half of
// §3.2: host-local traffic on the SENDER can starve transmit DMA reads;
// the sender-side response detects the starved transmit path and
// backpressures the local MApp until the target rate is restored.
func TestSenderSideGuardPreventsTxStarvation(t *testing.T) {
	run := func(withGuard bool) float64 {
		e := sim.NewEngine(1)
		scfg := DefaultConfig(1, 4096, false)
		scfg.NIC.TxBlockingReads = true // transmit waits for memory reads
		sender := New(e, scfg)
		receiver := New(e, DefaultConfig(2, 4096, false))
		wire := func(dst *Host) func(*packet.Packet) {
			return func(p *packet.Packet) {
				e.After(5*sim.Microsecond, func() { dst.ReceiveFromWire(p) })
			}
		}
		sender.SetOutput(wire(receiver))
		receiver.SetOutput(wire(sender))

		// Heavy host-local traffic on the sender.
		sender.StartMApp(3)

		if withGuard {
			gcfg := core.DefaultSenderGuardConfig()
			gcfg.BT = sim.Gbps(60)
			core.NewSenderGuard(e, sender.MBA, gcfg,
				func() int64 { return sender.NIC.TxSent.Total() * 4096 },
				sender.NIC.TxQueuedBytes)
		}

		var got int64
		receiver.EP.Listen(5000, func(c *transport.Conn) {
			c.OnData(func(n int) { got += int64(n) })
		})
		for i := 0; i < 4; i++ {
			c := sender.EP.DialFrom(uint16(100+i), 2, 5000)
			c.SetInfiniteSource(true)
		}
		e.RunUntil(5 * sim.Millisecond)
		start := got
		t0 := e.Now()
		e.RunUntil(15 * sim.Millisecond)
		return float64(got-start) * 8 / (e.Now() - t0).Seconds() / 1e9
	}

	without, with := run(false), run(true)
	if with <= without*1.1 {
		t.Fatalf("sender guard gave %.1f Gbps vs %.1f without; no starvation relief", with, without)
	}
	t.Logf("sender-side: %.1f Gbps without guard, %.1f with", without, with)
}

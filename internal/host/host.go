// Package host composes the full host network of Figure 1 — NIC, PCIe,
// IIO, optional DDIO cache, memory controller, RX cores — together with
// the MSR register file, the MBA control plane, and the transport layer.
//
// The receive path mirrors the Linux datapath the paper instruments:
//
//	wire → NIC buffer → DMA (PCIe credits) → IIO → LLC/DRAM
//	     → RX core processing → receive hooks (NetFilter equivalent,
//	       where hostCC marks CE) → transport → application
package host

import (
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/iio"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/msr"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Config assembles the component configurations of one host.
type Config struct {
	ID        packet.HostID
	DDIO      bool
	Mem       mem.Config
	Cache     cache.Config
	NIC       nic.Config
	PCIe      pcie.Config
	IIO       iio.Config
	Rx        cpu.RxConfig
	MBA       cpu.MBAConfig
	Transport transport.Config
	// IOMMU optionally puts DMA address translation on the receive path
	// (disabled by default, as in the paper's evaluation; see §6).
	IOMMU iommu.Config
	// Pool is the shared packet pool for this host's datapath (nil keeps
	// plain allocation). The testbed hands every host the SAME pool:
	// sender transports acquire the packets that the receiver's rx path
	// eventually releases, so per-host pools would drain asymmetrically.
	Pool *packet.Pool
}

// DefaultConfig returns the paper-calibrated host for a given MTU.
func DefaultConfig(id packet.HostID, mtu int, ddio bool) Config {
	return Config{
		ID:        id,
		DDIO:      ddio,
		Mem:       mem.DefaultConfig(),
		Cache:     cache.DefaultConfig(),
		NIC:       nic.DefaultConfig(),
		PCIe:      pcie.DefaultConfig(),
		IIO:       iio.DefaultConfig(),
		Rx:        cpu.DefaultRxConfig(),
		MBA:       cpu.DefaultMBAConfig(),
		Transport: transport.DefaultConfig(mtu),
	}
}

// ReceiveHook observes (and may mutate) packets after CPU processing and
// before transport delivery — the NetFilter ip_recv hook position hostCC
// uses for ECN marking (§4.3).
type ReceiveHook func(*packet.Packet)

// Host is one fully composed server.
type Host struct {
	E   *sim.Engine
	Cfg Config

	MC    *mem.Controller
	DDIO  *cache.DDIO  // nil when disabled
	IOMMU *iommu.IOMMU // nil when disabled
	MSR   *msr.File
	MBA   *cpu.MBA
	NIC   *nic.NIC
	IIO   *iio.IIO
	Link  *pcie.Link
	Rx    *cpu.RxPool
	EP    *transport.Endpoint

	mapp  *cpu.MApp
	hooks []ReceiveHook
}

// New builds a host on engine e.
func New(e *sim.Engine, cfg Config) *Host {
	h := &Host{E: e, Cfg: cfg}
	h.MC = mem.NewController(e, cfg.Mem)
	h.MSR = msr.NewFile(e)
	h.MBA = cpu.NewMBA(e, h.MSR, cfg.MBA)
	if cfg.DDIO {
		h.DDIO = cache.New(cfg.Cache, e.Rand())
		// LLC pollution tracks host-local traffic intensity: MApp lines
		// streaming through the shared cache displace DDIO-resident
		// packet lines, so eviction probability rises with MApp
		// bandwidth (§2.2) and falls again when hostCC throttles it.
		base := cfg.Cache.PollutionProb
		h.DDIO.SetPollutionFn(func() float64 {
			frac := float64(h.MC.RecentRate(mem.ClassMApp)) / float64(sim.GBps(22))
			return base + 0.9*frac*frac
		})
	}
	h.IIO = iio.New(e, cfg.IIO, h.MC, h.DDIO, h.MSR, h.onDelivery)
	if cfg.IOMMU.Enabled {
		h.IOMMU = iommu.New(e, h.MC, cfg.IOMMU)
		h.IIO.SetIOMMU(h.IOMMU)
	}
	h.Link = pcie.NewLink(e, cfg.PCIe, h.IIO.OnTLP)
	h.IIO.SetLink(h.Link)
	h.NIC = nic.New(e, cfg.NIC, h.Link, h.MC)
	h.Rx = cpu.NewRxPool(e, h.MC, h.DDIO, cfg.Rx, h.deliverUp)
	h.Rx.SetOnDone(func(*packet.Packet) { h.NIC.ReleaseDescriptor() })
	if cfg.Pool != nil {
		h.NIC.SetPool(cfg.Pool)
		h.Rx.SetPool(cfg.Pool)
		h.Cfg.Transport.Pool = cfg.Pool
		cfg.Transport.Pool = cfg.Pool
	}
	h.EP = transport.NewEndpoint(e, cfg.ID, h, cfg.Transport)
	return h
}

// ID returns the host identifier.
func (h *Host) ID() packet.HostID { return h.Cfg.ID }

// onDelivery receives DMA-complete packets from the IIO and queues them
// for CPU processing.
func (h *Host) onDelivery(p *packet.Packet, entry cache.EntryID, hasEntry bool) {
	h.Rx.Enqueue(cpu.RxWork{Pkt: p, Entry: entry, HasEntry: hasEntry})
}

// deliverUp runs the receive hook chain, then the transport demux.
func (h *Host) deliverUp(p *packet.Packet) {
	for _, hook := range h.hooks {
		hook(p)
	}
	h.EP.Receive(p)
}

// AddReceiveHook appends a hook at the NetFilter position.
func (h *Host) AddReceiveHook(hook ReceiveHook) {
	if hook == nil {
		panic("host: nil receive hook")
	}
	h.hooks = append(h.hooks, hook)
}

// Transmit implements transport.Network: packets leave via the NIC.
func (h *Host) Transmit(p *packet.Packet) { h.NIC.Transmit(p) }

// ReceiveFromWire is the fabric's delivery target.
func (h *Host) ReceiveFromWire(p *packet.Packet) { h.NIC.Receive(p) }

// SetOutput attaches the NIC transmit side to a fabric link.
func (h *Host) SetOutput(out func(*packet.Packet)) { h.NIC.SetOutput(out) }

// StartMApp launches host-local memory traffic at the given degree of
// host congestion (8 cores per 1x, §2.2) under MBA control.
func (h *Host) StartMApp(degree float64) *cpu.MApp {
	if h.mapp != nil {
		panic("host: MApp already started")
	}
	h.mapp = cpu.NewMApp(h.E, h.MC, h.MBA, cpu.DefaultMAppConfig(degree))
	if h.mapp.Cores() > 0 {
		h.mapp.Start()
	}
	return h.mapp
}

// MApp returns the host-local traffic generator, if started.
func (h *Host) MApp() *cpu.MApp { return h.mapp }

// MarkWindow begins a measurement window on all host-level meters.
func (h *Host) MarkWindow() {
	h.NIC.MarkWindow()
	h.MC.MarkAll()
}

// RegisterSnapshots registers every snapshottable component of this host
// with reg, named prefix+"/<component>" in datapath order (wire to app).
// The IOMMU model keeps no mutable scalar state worth imaging and is
// excluded.
func (h *Host) RegisterSnapshots(reg *snapshot.Registry, prefix string) {
	reg.Register(prefix+"/nic", h.NIC)
	reg.Register(prefix+"/pcie", h.Link)
	reg.Register(prefix+"/iio", h.IIO)
	if h.DDIO != nil {
		reg.Register(prefix+"/ddio", h.DDIO)
	}
	reg.Register(prefix+"/mem", h.MC)
	reg.Register(prefix+"/msr", h.MSR)
	reg.Register(prefix+"/mba", h.MBA)
	reg.Register(prefix+"/rx", h.Rx)
	if h.mapp != nil {
		reg.Register(prefix+"/mapp", h.mapp)
	}
	reg.Register(prefix+"/transport", h.EP)
}

// RegisterInstruments registers every component's telemetry instruments
// with reg, named under prefix in datapath order (wire to app).
func (h *Host) RegisterInstruments(reg *telemetry.Registry, prefix string) {
	h.NIC.RegisterInstruments(reg, prefix)
	h.Link.RegisterInstruments(reg, prefix)
	h.IIO.RegisterInstruments(reg, prefix)
	if h.DDIO != nil {
		h.DDIO.RegisterInstruments(reg, prefix)
	}
	if h.IOMMU != nil {
		h.IOMMU.RegisterInstruments(reg, prefix)
	}
	h.MC.RegisterInstruments(reg, prefix)
	h.MBA.RegisterInstruments(reg, prefix)
	h.Rx.RegisterInstruments(reg, prefix)
	h.EP.RegisterInstruments(reg, prefix)
}

// AttachTracer attaches the packet-lifecycle tracer and counter tracks to
// every component of this host, with tracks named under prefix.
func (h *Host) AttachTracer(t *telemetry.Tracer, prefix string) {
	h.NIC.SetTracer(t)
	h.Link.SetTracer(t, prefix)
	h.IIO.SetTracer(t, prefix)
	h.Rx.SetTracer(t)
	h.MBA.SetTracer(t, prefix)
}

// Validate reports the first invalid parameter across the host's
// component configurations.
func (c Config) Validate() error {
	for _, v := range []interface{ Validate() error }{
		c.Mem, c.Cache, c.NIC, c.PCIe, c.IIO, c.Rx, c.MBA, c.Transport, c.IOMMU,
	} {
		if err := v.Validate(); err != nil {
			return err
		}
	}
	return nil
}

package host_test

// Datapath benchmarks: a minimal sender→receiver pair driven by one
// long flow, without hostCC or the MApp (their periodic samplers are
// closure-scheduled and would hide the datapath's allocation behavior).
// These are the before/after numbers for the allocation-free rewrite:
// every per-event and per-packet-hop structure on this path (events,
// packets, TLPs, segments, queue entries) is recycled, so a warm run
// must not allocate.

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/host"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/transport"
)

// pair is a two-host testbed reduced to the pure datapath.
type pair struct {
	e    *sim.Engine
	send *host.Host
	recv *host.Host
	pool *packet.Pool
}

func newPair(seed int64, mtu int, ddio bool) *pair {
	e := sim.NewEngine(seed)
	e.Reserve(8192)
	pool := packet.NewPool(1024)

	mk := func(id packet.HostID) *host.Host {
		cfg := host.DefaultConfig(id, mtu, ddio)
		cfg.Transport.MinRTO = 4 * sim.Millisecond
		cfg.Transport.InitialRTO = 4 * sim.Millisecond
		cfg.Pool = pool
		return host.New(e, cfg)
	}
	p := &pair{e: e, recv: mk(1), send: mk(2), pool: pool}

	lcfg := fabric.DefaultLinkConfig()
	up := fabric.NewLink(e, lcfg, p.recv.ReceiveFromWire)
	up.SetPool(pool)
	p.send.SetOutput(up.Send)
	down := fabric.NewLink(e, lcfg, p.send.ReceiveFromWire)
	down.SetPool(pool)
	p.recv.SetOutput(down.Send)
	return p
}

func (p *pair) startFlow() {
	p.recv.EP.Listen(9000, func(*transport.Conn) {})
	c := p.send.EP.DialFrom(20000, p.recv.ID(), 9000)
	c.SetInfiniteSource(true)
}

// BenchmarkDatapathStream runs the warm steady-state receive path —
// transport → NIC → PCIe → IIO → memory → RX cores → transport — and
// reports simulated events and packets per wall-second.
func BenchmarkDatapathStream(b *testing.B) {
	benchStream(b, false)
}

// BenchmarkDatapathStreamDDIO is the same path through the DDIO cache
// model (LLC writes, occupancy accounting, eviction probability).
func BenchmarkDatapathStreamDDIO(b *testing.B) {
	benchStream(b, true)
}

func benchStream(b *testing.B, ddio bool) {
	p := newPair(42, 4096, ddio)
	p.startFlow()
	p.e.RunFor(4 * sim.Millisecond) // warm: cwnd open, pools populated
	start := p.e.Processed
	arrivals := p.recv.NIC.Arrivals.Total()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.e.RunFor(100 * sim.Microsecond)
	}
	b.StopTimer()
	ev := float64(p.e.Processed-start) / float64(b.N)
	b.ReportMetric(ev, "events/op")
	b.ReportMetric(float64(p.recv.NIC.Arrivals.Total()-arrivals)/float64(b.N), "packets/op")
}

// TestDatapathZeroAllocSteadyState is the rewrite's end-to-end guard: a
// warm two-host stream must process events without allocating. The pool
// debug builds (-race, -tags packetdebug) add provenance bookkeeping, so
// the exact-zero assertion applies to production builds only.
func TestDatapathZeroAllocSteadyState(t *testing.T) {
	if packet.PoolDebugEnabled {
		t.Skip("pool provenance instrumentation allocates by design")
	}
	p := newPair(42, 4096, false)
	p.startFlow()
	p.e.RunFor(8 * sim.Millisecond)
	allocs := testing.AllocsPerRun(20, func() {
		p.e.RunFor(100 * sim.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("steady-state datapath allocates %.1f per 100µs slice; want 0", allocs)
	}
}

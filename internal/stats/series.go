package stats

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Series is a named time series of (time, value) points; the deep-dive
// figures (8, 18, 19) are plotted from these.
type Series struct {
	Name   string
	Times  []sim.Time
	Values []float64
}

// Append adds one point; times must be nondecreasing.
func (s *Series) Append(t sim.Time, v float64) {
	if n := len(s.Times); n > 0 && t < s.Times[n-1] {
		panic("stats: Series time went backwards")
	}
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// At returns the last value recorded at or before t (0 if none).
func (s *Series) At(t sim.Time) float64 {
	i := sort.Search(len(s.Times), func(i int) bool { return s.Times[i] > t })
	if i == 0 {
		return 0
	}
	return s.Values[i-1]
}

// MinMax returns the extremes of the recorded values.
func (s *Series) MinMax() (lo, hi float64) {
	if len(s.Values) == 0 {
		return 0, 0
	}
	lo, hi = s.Values[0], s.Values[0]
	for _, v := range s.Values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Mean returns the arithmetic mean of recorded values.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// FractionAbove reports the fraction of points with value > threshold.
func (s *Series) FractionAbove(threshold float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	n := 0
	for _, v := range s.Values {
		if v > threshold {
			n++
		}
	}
	return float64(n) / float64(len(s.Values))
}

// WriteCSV writes "time_us,value" rows, for offline plotting.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time_us,%s\n", s.Name); err != nil {
		return err
	}
	for i := range s.Times {
		if _, err := fmt.Fprintf(w, "%.3f,%g\n", s.Times[i].Micros(), s.Values[i]); err != nil {
			return err
		}
	}
	return nil
}

// Recorder samples a set of named probes on a fixed tick and accumulates
// one Series per probe.
type Recorder struct {
	ticker *sim.Ticker
	probes []probe
}

type probe struct {
	series *Series
	fn     func() float64
}

// NewRecorder creates a recorder ticking every interval.
func NewRecorder(e *sim.Engine, interval sim.Time) *Recorder {
	r := &Recorder{}
	r.ticker = sim.NewTicker(e, interval, func() {
		now := e.Now()
		for _, p := range r.probes {
			p.series.Append(now, p.fn())
		}
	})
	return r
}

// Track registers a probe and returns its series.
func (r *Recorder) Track(name string, fn func() float64) *Series {
	s := &Series{Name: name}
	r.probes = append(r.probes, probe{series: s, fn: fn})
	return s
}

// Stop halts sampling.
func (r *Recorder) Stop() { r.ticker.Stop() }

package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(1.0 / 8)
	for i := 0; i < 200; i++ {
		e.Update(42)
	}
	if e.Value() != 42 {
		t.Fatalf("EWMA of constant = %v, want 42", e.Value())
	}
}

func TestEWMAFirstSampleSeeds(t *testing.T) {
	e := NewEWMA(1.0 / 256)
	e.Update(100)
	if e.Value() != 100 {
		t.Fatalf("first sample should seed: got %v", e.Value())
	}
}

func TestEWMAWeightControlsReactionSpeed(t *testing.T) {
	fast, slow := NewEWMA(1.0/8), NewEWMA(1.0/256)
	fast.Update(0)
	slow.Update(0)
	for i := 0; i < 8; i++ {
		fast.Update(100)
		slow.Update(100)
	}
	if fast.Value() <= slow.Value() {
		t.Fatalf("fast EWMA (%v) should react faster than slow (%v)", fast.Value(), slow.Value())
	}
}

// Property: EWMA output always stays within the range of its inputs.
func TestEWMABoundedProperty(t *testing.T) {
	f := func(samples []float64, wRaw uint8) bool {
		w := (float64(wRaw%255) + 1) / 256
		e := NewEWMA(w)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				continue
			}
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
			e.Update(s)
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMABadWeightPanics(t *testing.T) {
	for _, w := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", w)
				}
			}()
			NewEWMA(w)
		}()
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(v)
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", got)
	}
	if got := w.Stddev(); math.Abs(got-2.138) > 0.01 {
		t.Fatalf("stddev = %v, want ~2.138", got)
	}
}

func TestHistogramQuantilesCloseToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := NewHistogram(30)
	var raw []float64
	for i := 0; i < 50000; i++ {
		// Heavy-tailed latency-like distribution.
		v := math.Exp(rng.NormFloat64()*1.5 + 4)
		h.Add(v)
		raw = append(raw, v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := h.Quantile(q)
		want := ExactQuantile(raw, q)
		relErr := math.Abs(got-want) / want
		if relErr > 0.06 {
			t.Errorf("q=%v: hist=%.4g exact=%.4g relErr=%.3f", q, got, want, relErr)
		}
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram(30)
	for _, v := range []float64{3, 1, 2} {
		h.Add(v)
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 3 {
		t.Fatalf("extremes: q0=%v q1=%v, want 1 and 3", h.Quantile(0), h.Quantile(1))
	}
	if h.Mean() != 2 {
		t.Fatalf("mean = %v, want 2", h.Mean())
	}
	if h.Count() != 3 {
		t.Fatalf("count = %v, want 3", h.Count())
	}
}

func TestHistogramEmptyAndZeros(t *testing.T) {
	h := NewHistogram(30)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Add(0)
	h.Add(0)
	h.Add(10)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("median of {0,0,10} = %v, want 0", got)
	}
}

// Property: quantiles are monotone in q.
func TestHistogramMonotoneQuantiles(t *testing.T) {
	f := func(vals []uint32) bool {
		h := NewHistogram(30)
		for _, v := range vals {
			h.Add(float64(v % 1000000))
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(30)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	vals, fracs := h.CDF()
	if len(vals) == 0 || len(vals) != len(fracs) {
		t.Fatal("CDF shape mismatch")
	}
	if fracs[len(fracs)-1] != 1 {
		t.Fatalf("CDF should end at 1, got %v", fracs[len(fracs)-1])
	}
	for i := 1; i < len(fracs); i++ {
		if fracs[i] < fracs[i-1] || vals[i] < vals[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestHistogramPercentilesOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := NewHistogram(30)
	for i := 0; i < 10000; i++ {
		h.Add(rng.Float64() * 1e6)
	}
	p := h.Percentiles()
	for i := 1; i < len(p); i++ {
		if p[i] < p[i-1] {
			t.Fatalf("percentiles out of order: %v", p)
		}
	}
	if !strings.Contains(h.String(), "n=10000") {
		t.Errorf("String() = %q", h.String())
	}
}

func TestMeterRates(t *testing.T) {
	var m Meter
	m.Add(1000)
	m.Mark(1000) // t=1us
	m.Add(12500)
	// 12500 bytes over 1us = 12.5GB/s = 100Gbps.
	if got := m.RateSinceMark(2000).Gbps(); math.Abs(got-100) > 0.01 {
		t.Fatalf("rate = %vGbps, want 100", got)
	}
	if m.BytesSinceMark() != 12500 {
		t.Fatalf("BytesSinceMark = %d", m.BytesSinceMark())
	}
	if m.Total() != 13500 {
		t.Fatalf("Total = %d", m.Total())
	}
	if m.RateSinceMark(1000) != 0 {
		t.Fatal("zero window should report zero rate")
	}
}

func TestCounterMark(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Mark()
	c.Add(3)
	if c.SinceMark() != 3 || c.Total() != 8 {
		t.Fatalf("SinceMark=%d Total=%d", c.SinceMark(), c.Total())
	}
}

func TestTimeWeightedAverage(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 10)   // 10 for [0,100)
	tw.Set(100, 20) // 20 for [100,200)
	i1 := tw.Integral(100)
	i2 := tw.Integral(200)
	if avg := AverageBetween(i1, i2, 100, 200); avg != 20 {
		t.Fatalf("avg over [100,200] = %v, want 20", avg)
	}
	if avg := AverageBetween(0, i2, 0, 200); avg != 15 {
		t.Fatalf("avg over [0,200] = %v, want 15", avg)
	}
	if tw.Value() != 20 {
		t.Fatalf("instantaneous = %v, want 20", tw.Value())
	}
}

func TestSeriesBasics(t *testing.T) {
	s := &Series{Name: "iio"}
	s.Append(10, 65)
	s.Append(20, 93)
	s.Append(30, 70)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.At(25) != 93 {
		t.Fatalf("At(25) = %v, want 93", s.At(25))
	}
	if s.At(5) != 0 {
		t.Fatalf("At(5) = %v, want 0", s.At(5))
	}
	lo, hi := s.MinMax()
	if lo != 65 || hi != 93 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	if got := s.Mean(); math.Abs(got-76) > 1e-9 {
		t.Fatalf("Mean = %v, want 76", got)
	}
	if got := s.FractionAbove(69); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("FractionAbove = %v", got)
	}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "time_us,iio\n") {
		t.Fatalf("CSV header: %q", sb.String())
	}
}

func TestRecorderSamplesProbes(t *testing.T) {
	e := sim.NewEngine(1)
	r := NewRecorder(e, 10)
	v := 0.0
	s := r.Track("v", func() float64 { return v })
	e.At(15, func() { v = 7 })
	e.At(45, func() { r.Stop() })
	e.Run()
	// Ticks at 10 (v=0), 20,30,40 (v=7).
	if s.Len() != 4 {
		t.Fatalf("series len = %d, want 4", s.Len())
	}
	if s.Values[0] != 0 || s.Values[1] != 7 {
		t.Fatalf("values = %v", s.Values)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{10, 10, 10, 10}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: %v", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("one hog: %v", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Fatalf("empty: %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Fatalf("all zero: %v", got)
	}
	mid := JainIndex([]float64{3, 1, 1, 1})
	if mid <= 0.25 || mid >= 1 {
		t.Fatalf("mixed shares: %v", mid)
	}
}

package stats

import "repro/internal/sim"

// Meter accumulates byte counts over simulated time and reports average
// rates over arbitrary windows. Experiments use one meter per traffic
// class (network throughput, per-class memory bandwidth).
type Meter struct {
	total int64
	marks []mark // measurement window marks
}

type mark struct {
	at    sim.Time
	total int64
}

// Add records n bytes at the current instant.
func (m *Meter) Add(n int64) { m.total += n }

// Total returns all bytes recorded so far.
func (m *Meter) Total() int64 { return m.total }

// Mark snapshots the counter at time t; RateSince measures between marks.
func (m *Meter) Mark(t sim.Time) {
	m.marks = append(m.marks, mark{at: t, total: m.total})
}

// RateSinceMark returns the average rate between the most recent mark and
// time now. With no mark it measures from time zero.
func (m *Meter) RateSinceMark(now sim.Time) sim.Rate {
	var base mark
	if len(m.marks) > 0 {
		base = m.marks[len(m.marks)-1]
	}
	dt := now - base.at
	if dt <= 0 {
		return 0
	}
	return sim.Rate(float64(m.total-base.total) / dt.Seconds())
}

// BytesSinceMark returns bytes accumulated since the most recent mark.
func (m *Meter) BytesSinceMark() int64 {
	if len(m.marks) == 0 {
		return m.total
	}
	return m.total - m.marks[len(m.marks)-1].total
}

// Counter is a labelled event counter with Mark support, used for packet
// and drop accounting where rates are reported as ratios over a window.
//
// The accumulation API mirrors Meter's: Add records a quantity (bytes,
// lines), Inc records one event. Mark differs deliberately — Meter.Mark
// takes a timestamp because rate computation needs one; Counter windows
// are pure differences, so Counter.Mark takes none.
type Counter struct {
	total int64
	mark  int64
}

// Inc records one event.
func (c *Counter) Inc() { c.total++ }

// Add records n events (or n units — lines, bytes — for quantity
// counters), mirroring Meter.Add.
func (c *Counter) Add(n int64) { c.total += n }

// Total returns the all-time count.
func (c *Counter) Total() int64 { return c.total }

// Mark snapshots the counter for windowed measurement.
func (c *Counter) Mark() { c.mark = c.total }

// SinceMark returns the count accumulated since the last Mark.
func (c *Counter) SinceMark() int64 { return c.total - c.mark }

// TimeWeighted integrates a piecewise-constant value over time, yielding
// time-averaged occupancies (exactly what the IIO ROCC register does: a
// cumulative occupancy count incremented at the IIO clock).
type TimeWeighted struct {
	val      float64
	last     sim.Time
	integral float64 // sum of val*dt, in value-nanoseconds
}

// Set updates the current value at time t, accumulating the previous value
// over the elapsed interval.
func (tw *TimeWeighted) Set(t sim.Time, v float64) {
	if t < tw.last {
		panic("stats: TimeWeighted time went backwards")
	}
	tw.integral += tw.val * float64(t-tw.last)
	tw.last = t
	tw.val = v
}

// Value returns the current instantaneous value.
func (tw *TimeWeighted) Value() float64 { return tw.val }

// Integral returns the integral of the value up to time t
// (in value-nanoseconds).
func (tw *TimeWeighted) Integral(t sim.Time) float64 {
	if t < tw.last {
		panic("stats: TimeWeighted time went backwards")
	}
	return tw.integral + tw.val*float64(t-tw.last)
}

// AverageBetween returns the time-averaged value over [t1, t2] given the
// integrals sampled at those instants.
func AverageBetween(i1, i2 float64, t1, t2 sim.Time) float64 {
	if t2 <= t1 {
		return 0
	}
	return (i2 - i1) / float64(t2-t1)
}

package stats

import (
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Snapshot helpers for the measurement primitives. Configuration that is
// fixed at construction time (EWMA weight, histogram bucket density) is not
// encoded: snapshots capture run state, and Restore targets an identically
// configured instance.

// Snapshot encodes the meter's total and marks.
func (m *Meter) Snapshot(e *snapshot.Encoder) {
	e.I64(m.total)
	e.U32(uint32(len(m.marks)))
	for _, mk := range m.marks {
		e.I64(int64(mk.at))
		e.I64(mk.total)
	}
}

// Restore reverses Snapshot.
func (m *Meter) Restore(d *snapshot.Decoder) error {
	m.total = d.I64()
	n := int(d.U32())
	m.marks = m.marks[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		m.marks = append(m.marks, mark{at: sim.Time(d.I64()), total: d.I64()})
	}
	return d.Err()
}

// Snapshot encodes the counter.
func (c *Counter) Snapshot(e *snapshot.Encoder) {
	e.I64(c.total)
	e.I64(c.mark)
}

// Restore reverses Snapshot.
func (c *Counter) Restore(d *snapshot.Decoder) error {
	c.total = d.I64()
	c.mark = d.I64()
	return d.Err()
}

// Snapshot encodes the integrator state.
func (tw *TimeWeighted) Snapshot(e *snapshot.Encoder) {
	e.F64(tw.val)
	e.I64(int64(tw.last))
	e.F64(tw.integral)
}

// Restore reverses Snapshot.
func (tw *TimeWeighted) Restore(d *snapshot.Decoder) error {
	tw.val = d.F64()
	tw.last = sim.Time(d.I64())
	tw.integral = d.F64()
	return d.Err()
}

// Snapshot encodes the filter value (the weight is configuration).
func (e *EWMA) Snapshot(enc *snapshot.Encoder) {
	enc.F64(e.v)
	enc.Bool(e.started)
}

// Restore reverses Snapshot.
func (e *EWMA) Restore(d *snapshot.Decoder) error {
	e.v = d.F64()
	e.started = d.Bool()
	return d.Err()
}

// Snapshot encodes the histogram contents (bucket density is configuration).
func (h *Histogram) Snapshot(e *snapshot.Encoder) {
	e.I64(h.n)
	e.F64(h.min)
	e.F64(h.max)
	e.F64(h.sum)
	e.I64(h.zero)
	e.U32(uint32(len(h.counts)))
	for _, c := range h.counts {
		e.I64(c)
	}
}

// Restore reverses Snapshot.
func (h *Histogram) Restore(d *snapshot.Decoder) error {
	h.n = d.I64()
	h.min = d.F64()
	h.max = d.F64()
	h.sum = d.F64()
	h.zero = d.I64()
	n := int(d.U32())
	h.counts = h.counts[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		h.counts = append(h.counts, d.I64())
	}
	return d.Err()
}

// Package stats provides the measurement primitives shared by the
// simulator and the hostCC module: exponentially weighted moving
// averages (the paper's congestion-signal filters), log-bucketed latency
// histograms (tail latency figures), windowed rate meters (throughput and
// memory-bandwidth figures), and time-series recorders (the microscopic
// behaviour figures 8, 18 and 19).
package stats

import "math"

// EWMA is an exponentially weighted moving average
//
//	v <- (1-w)*v + w*sample
//
// hostCC uses w = 1/8 for IIO occupancy and w = 1/256 for PCIe bandwidth
// (§4.1); DCTCP uses g = 1/16 for its fraction-marked estimate.
type EWMA struct {
	w       float64
	v       float64
	started bool
}

// NewEWMA returns an EWMA with weight w in (0, 1].
func NewEWMA(w float64) *EWMA {
	if w <= 0 || w > 1 {
		panic("stats: EWMA weight must be in (0,1]")
	}
	return &EWMA{w: w}
}

// Update folds a sample into the average. The first sample initializes the
// average directly, matching how the kernel module seeds its filters.
func (e *EWMA) Update(sample float64) {
	if !e.started {
		e.v = sample
		e.started = true
		return
	}
	e.v = (1-e.w)*e.v + e.w*sample
}

// Value returns the current average (zero before any update).
func (e *EWMA) Value() float64 { return e.v }

// Started reports whether any sample has been folded in.
func (e *EWMA) Started() bool { return e.started }

// Weight returns the configured weight.
func (e *EWMA) Weight() float64 { return e.w }

// Reset clears the average.
func (e *EWMA) Reset() { e.v = 0; e.started = false }

// Mean is a simple running mean with count, for summary metrics.
type Mean struct {
	sum float64
	n   int64
}

// Add folds in one sample.
func (m *Mean) Add(v float64) { m.sum += v; m.n++ }

// Value returns the mean, or 0 with no samples.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Count returns the number of samples.
func (m *Mean) Count() int64 { return m.n }

// Sum returns the sum of samples.
func (m *Mean) Sum() float64 { return m.sum }

// Welford tracks mean and variance online (used by calibration tests to
// check signal stability claims).
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds in one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Count returns the number of samples.
func (w *Welford) Count() int64 { return w.n }

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// JainIndex computes Jain's fairness index over a set of allocations:
// (Σx)² / (n·Σx²), 1.0 = perfectly fair, 1/n = maximally unfair. Used to
// check that competing NetApp-T flows share the bottleneck fairly.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

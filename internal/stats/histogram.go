package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a log-bucketed histogram of non-negative values, built for
// latency distributions spanning nanoseconds to seconds (the paper's
// Figure 4 spans 10 µs to >1 s). Buckets grow geometrically, giving a
// bounded relative quantile error (~2.4% with the default 30 buckets per
// decade) at O(1) insert cost.
type Histogram struct {
	perDecade int
	base      float64 // log growth factor: 10^(1/perDecade)
	counts    []int64
	n         int64
	min, max  float64
	sum       float64
	zero      int64 // values <= 0 land here
}

// NewHistogram returns a histogram with the given buckets per decade
// (30 is a good default).
func NewHistogram(perDecade int) *Histogram {
	if perDecade <= 0 {
		panic("stats: perDecade must be positive")
	}
	return &Histogram{
		perDecade: perDecade,
		base:      math.Pow(10, 1/float64(perDecade)),
		min:       math.Inf(1),
		max:       math.Inf(-1),
	}
}

func (h *Histogram) bucketOf(v float64) int {
	// bucket i covers [base^i, base^(i+1)); shift so v=1 lands at index
	// offset. We offset by a large constant so sub-1 values stay in range.
	const offset = 600 // covers down to 10^-20
	i := int(math.Floor(math.Log(v)/math.Log(h.base))) + offset
	if i < 0 {
		i = 0
	}
	return i
}

func (h *Histogram) valueOf(bucket int) float64 {
	const offset = 600
	// Return the geometric midpoint of the bucket.
	return math.Pow(h.base, float64(bucket-offset)+0.5)
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if v <= 0 {
		h.zero++
		return
	}
	i := h.bucketOf(v)
	if i >= len(h.counts) {
		grown := make([]int64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Mean returns the mean of observations (exact, not bucketed).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min and Max return exact extremes.
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact maximum observation.
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (q in [0,1]) with bounded relative error.
// The exact min and max are returned for q=0 and q=1.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank <= h.zero {
		return 0
	}
	seen := h.zero
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := h.valueOf(i)
			// Clamp into the exact observed range to avoid bucket
			// midpoints exceeding the true extremes.
			return math.Min(math.Max(v, h.min), h.max)
		}
	}
	return h.Max()
}

// Percentiles is shorthand for common tail percentiles
// {P50, P90, P99, P99.9, P99.99} — the whiskers in Figures 4, 12 and 15.
func (h *Histogram) Percentiles() [5]float64 {
	return [5]float64{
		h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99),
		h.Quantile(0.999), h.Quantile(0.9999),
	}
}

// CDF returns (value, cumulative fraction) points for plotting, one per
// non-empty bucket (used for the Figure 7 measurement-latency CDFs).
func (h *Histogram) CDF() (values, fractions []float64) {
	if h.n == 0 {
		return nil, nil
	}
	cum := h.zero
	if h.zero > 0 {
		values = append(values, 0)
		fractions = append(fractions, float64(cum)/float64(h.n))
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		values = append(values, h.valueOf(i))
		fractions = append(fractions, float64(cum)/float64(h.n))
	}
	return values, fractions
}

func (h *Histogram) String() string {
	p := h.Percentiles()
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p99=%.3g p999=%.3g max=%.3g",
		h.n, h.Mean(), p[0], p[2], p[3], h.Max())
}

// ExactQuantile computes a quantile over a raw sample slice; used in tests
// to validate the histogram's bucketed estimates.
func ExactQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

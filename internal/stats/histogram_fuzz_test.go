package stats

import (
	"math"
	"testing"
)

// FuzzHistogramQuantile checks the histogram's core contract on arbitrary
// inputs: quantiles stay inside the exact observed range, are monotone in
// q, hit the exact extremes at q=0/1, and match the exact quantile within
// the bucketing's relative error for positive samples.
func FuzzHistogramQuantile(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 0.5)
	f.Add(0.0, 0.0, 0.0, 0.99)
	f.Add(1e-30, 1e30, 1.0, 0.9) // far outside the offset window
	f.Add(math.MaxFloat64, 1.0, 2.0, 1.0)
	f.Fuzz(func(t *testing.T, a, b, c, q float64) {
		// The histogram is documented for non-negative values (latencies);
		// negative samples fold into the zero bucket and report as 0,
		// which legitimately breaks monotonicity against the exact max.
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Skip()
			}
		}
		if math.IsNaN(q) {
			t.Skip()
		}
		samples := []float64{a, b, c}
		h := NewHistogram(30)
		for _, v := range samples {
			h.Add(v)
		}
		got := h.Quantile(q)
		lo, hi := math.Min(a, math.Min(b, c)), math.Max(a, math.Max(b, c))
		// Quantiles never escape the exact observed range, widened to
		// include 0 because non-positive samples are folded into the zero
		// bucket and report as 0.
		if got < math.Min(lo, 0) || got > math.Max(hi, 0) {
			t.Fatalf("Quantile(%v) = %v outside observed [%v, %v]", q, got, lo, hi)
		}
		if q <= 0 && got != lo {
			t.Fatalf("Quantile(0) = %v, want exact min %v", got, lo)
		}
		if q >= 1 && got != hi {
			t.Fatalf("Quantile(1) = %v, want exact max %v", got, hi)
		}
		// Monotonicity in q.
		if q2 := math.Min(q+0.25, 1); q >= 0 && q <= 1 {
			if h.Quantile(q2) < got {
				t.Fatalf("Quantile(%v)=%v > Quantile(%v)=%v — not monotone",
					q, got, q2, h.Quantile(q2))
			}
		}
	})
}

// TestHistogramEdgeBuckets exercises values at and beyond the bucket
// index clamp: bucketOf offsets by 600 (covering down to 10^-20), so
// anything smaller must clamp into bucket 0 rather than index negatively,
// and enormous values must grow the bucket slice rather than panic.
func TestHistogramEdgeBuckets(t *testing.T) {
	h := NewHistogram(30)
	tiny := []float64{1e-300, 1e-25, 1e-21, 1e-20}
	for _, v := range tiny {
		h.Add(v)
	}
	if h.Count() != int64(len(tiny)) {
		t.Fatalf("count = %d", h.Count())
	}
	// All tiny values collapse toward bucket 0; quantiles must stay
	// within the exact range, not report a bucket midpoint above max.
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if v := h.Quantile(q); v < h.Min() || v > h.Max() {
			t.Fatalf("tiny-value Quantile(%v) = %g outside [%g, %g]", q, v, h.Min(), h.Max())
		}
	}

	h2 := NewHistogram(30)
	h2.Add(1e308) // near MaxFloat64: forces a very large bucket index
	h2.Add(1)
	if v := h2.Quantile(1); v != 1e308 {
		t.Fatalf("max quantile = %g", v)
	}
	// The low quantile lands in the bucket holding 1; the midpoint is
	// clamped to the exact range, so it sits within one bucket of 1.
	if v := h2.Quantile(0.25); v < 1 || v > math.Pow(10, 1.0/30) {
		t.Fatalf("low quantile = %g, want within the first bucket above 1", v)
	}
}

// TestHistogramBucketBoundaries places samples exactly on bucket
// boundaries (powers of the growth base), where float rounding in
// log-space is most likely to misclassify, and checks the relative-error
// bound against exact quantiles.
func TestHistogramBucketBoundaries(t *testing.T) {
	const perDecade = 30
	base := math.Pow(10, 1.0/perDecade)
	h := NewHistogram(perDecade)
	var samples []float64
	for i := -60; i <= 60; i++ {
		v := math.Pow(base, float64(i))
		samples = append(samples, v)
		h.Add(v)
	}
	// One bucket spans a factor of base, so a midpoint estimate is off by
	// at most sqrt(base) relatively; allow one extra bucket of slack for
	// boundary rounding.
	maxRel := base*math.Sqrt(base) - 1
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got, want := h.Quantile(q), ExactQuantile(samples, q)
		if rel := math.Abs(got-want) / want; rel > maxRel {
			t.Errorf("Quantile(%v) = %g, exact %g, rel err %.3f > %.3f",
				q, got, want, rel, maxRel)
		}
	}
}

// TestCounterAddIncEquivalence pins the Counter API contract introduced
// when the Meter/Counter asymmetry was fixed: Inc() is one event, Add(n)
// is n, and both feed the same windowed totals.
func TestCounterAddIncEquivalence(t *testing.T) {
	var a, b Counter
	for i := 0; i < 7; i++ {
		a.Inc()
	}
	b.Add(7)
	if a.Total() != b.Total() {
		t.Fatalf("Inc()x7 = %d, Add(7) = %d", a.Total(), b.Total())
	}
	a.Mark()
	a.Add(3)
	if a.SinceMark() != 3 {
		t.Fatalf("SinceMark = %d", a.SinceMark())
	}
}

package snapshot

import (
	"path/filepath"
	"testing"
)

func TestEncoderDecoderRoundTrip(t *testing.T) {
	var e Encoder
	e.U32(7)
	e.U64(1 << 60)
	e.I64(-42)
	e.Int(12345)
	e.F64(3.14159)
	e.Bool(true)
	e.Bool(false)
	e.Str("hello")
	e.Raw([]byte{1, 2, 3})

	d := NewDecoder(e.Bytes())
	if got := d.U32(); got != 7 {
		t.Errorf("U32 = %d", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != 12345 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool mismatch")
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	raw := d.Raw()
	if len(raw) != 3 || raw[0] != 1 || raw[2] != 3 {
		t.Errorf("Raw = %v", raw)
	}
	if d.Err() != nil {
		t.Fatalf("decode error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining = %d", d.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // short read
	if d.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// Every subsequent accessor must return zero values, not panic.
	if d.U32() != 0 || d.I64() != 0 || d.Str() != "" || d.Bool() {
		t.Error("accessors after error must return zero values")
	}
}

// fakeComp is a trivial Snapshotter for registry tests.
type fakeComp struct {
	a int64
	b float64
}

func (f *fakeComp) Snapshot(e *Encoder) { e.I64(f.a); e.F64(f.b) }
func (f *fakeComp) Restore(d *Decoder) error {
	f.a = d.I64()
	f.b = d.F64()
	return d.Err()
}

func TestRegistryRoundTripAndDigests(t *testing.T) {
	r := NewRegistry()
	c1 := &fakeComp{a: 1, b: 2.5}
	c2 := &fakeComp{a: -7, b: 0}
	r.Register("alpha", c1)
	r.Register("beta", c2)

	img := r.EncodeAll()
	d1 := r.Digests()

	// Mutate, then restore from the image: state and digests must revert.
	c1.a, c2.b = 99, 99
	if d2 := r.Digests(); Combined(d2) == Combined(d1) {
		t.Fatal("digest did not change after mutation")
	}
	if err := r.RestoreAll(img); err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	if c1.a != 1 || c2.b != 0 {
		t.Errorf("restore did not revert state: %+v %+v", c1, c2)
	}
	if d3 := r.Digests(); Combined(d3) != Combined(d1) {
		t.Error("digest after restore differs from original")
	}

	// The image must re-encode identically (deterministic encoding).
	if string(r.EncodeAll()) != string(img) {
		t.Error("re-encoded image differs")
	}
}

func TestFirstDivergence(t *testing.T) {
	mk := func(hashes ...uint64) Frame {
		f := Frame{At: 1000, Events: 5}
		names := []string{"engine", "pcie", "nic"}
		for i, h := range hashes {
			f.Digests = append(f.Digests, Digest{Component: names[i], Hash: h})
		}
		return f
	}
	a := &Timeline{Frames: []Frame{mk(1, 2, 3), mk(4, 5, 6)}}
	b := &Timeline{Frames: []Frame{mk(1, 2, 3), mk(4, 9, 6)}}
	div, ok := FirstDivergence(a, b)
	if !ok {
		t.Fatal("expected divergence")
	}
	if div.Component != "pcie" || div.FrameIndex != 1 {
		t.Errorf("got %+v", div)
	}
	if _, ok := FirstDivergence(a, a); ok {
		t.Error("identical timelines must not diverge")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Register("x", &fakeComp{a: 42, b: 1.5})
	ck := &Checkpoint{
		Meta:        map[string]string{"scenario": "storm", "seed": "7"},
		VirtualTime: 83_000_000,
		Events:      123456,
		Timeline: Timeline{Frames: []Frame{
			{At: 1_000_000, Events: 10, Digests: []Digest{{Component: "x", Hash: 0xdead}}},
		}},
		State: r.EncodeAll(),
	}
	path := filepath.Join(t.TempDir(), "ck.snap")
	if err := ck.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Get("scenario") != "storm" || got.Get("seed") != "7" {
		t.Errorf("meta = %v", got.Meta)
	}
	if got.VirtualTime != ck.VirtualTime || got.Events != ck.Events {
		t.Errorf("position = %d/%d", got.VirtualTime, got.Events)
	}
	if got.Timeline.Len() != 1 || got.Timeline.Frames[0].Digests[0].Hash != 0xdead {
		t.Errorf("timeline = %+v", got.Timeline)
	}
	order, blobs, err := DecodeState(got.State)
	if err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	if len(order) != 1 || order[0].Component != "x" || len(blobs["x"]) == 0 {
		t.Errorf("state = %v", order)
	}

	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Error("expected error for missing file")
	}
}

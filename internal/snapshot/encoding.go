// Package snapshot provides a versioned, deterministic binary encoding of
// simulation component state, per-component digests for divergence
// detection, and a checkpoint file format for replaying chaos runs.
//
// Design constraints (see DESIGN.md "Checkpoint/replay runtime"):
//
//   - Determinism: the same component state always encodes to the same
//     bytes. All fields are fixed-width little-endian; map-backed state is
//     encoded in sorted key order by its owner.
//   - Leaf package: only the standard library, so every model package
//     (sim, stats, nic, pcie, ...) can implement Snapshotter without an
//     import cycle.
//   - Restore is for offline inspection, round-trip verification and
//     divergence tooling. Live resumption is replay-based (the event queue
//     holds closures, which have no serializable form): a checkpoint
//     records enough metadata to re-execute the run deterministically and
//     verify per-frame digests along the way.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder builds a deterministic binary image. All integers are
// little-endian fixed width; strings are u32-length-prefixed UTF-8.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded image.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded size so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U32 appends a fixed-width uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a fixed-width uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends a fixed-width int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 as its IEEE-754 bits.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Raw appends a length-prefixed byte blob.
func (e *Encoder) Raw(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder reads an Encoder image back. Errors are sticky: after the first
// short read every accessor returns the zero value, and Err reports the
// failure, so component Restore methods can decode unconditionally and
// check once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps an encoded image.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("snapshot: truncated image (want %d bytes at offset %d of %d)", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U32 reads a uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded as int64.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := int(d.U32())
	if d.err != nil {
		return ""
	}
	return string(d.take(n))
}

// Raw reads a length-prefixed byte blob.
func (d *Decoder) Raw() []byte {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

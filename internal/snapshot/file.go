package snapshot

import (
	"fmt"
	"os"
	"sort"
)

// Checkpoint file framing.
const (
	fileMagic   = "HCCCKPT1"
	fileVersion = 1
)

// Checkpoint is one on-disk snapshot of a run: enough metadata to
// re-execute it deterministically (Meta carries the run configuration),
// the digest timeline recorded up to the capture instant (for verified
// replay), and the full component state image (for inspection and
// divergence diagnosis).
type Checkpoint struct {
	// Meta is the run configuration as flat key/value strings
	// (scenario, seed, ... — written by the testbed, read by resume).
	Meta map[string]string
	// VirtualTime and Events locate the capture instant.
	VirtualTime int64
	Events      uint64
	// Timeline holds the digest frames recorded before (and including)
	// the capture instant.
	Timeline Timeline
	// State is a Registry.EncodeAll image of every component.
	State []byte
}

// Get returns a Meta value ("" when absent).
func (c *Checkpoint) Get(key string) string {
	if c.Meta == nil {
		return ""
	}
	return c.Meta[key]
}

// Encode serializes the checkpoint.
func (c *Checkpoint) Encode() []byte {
	var e Encoder
	e.buf = append(e.buf, fileMagic...)
	e.U32(fileVersion)
	keys := make([]string, 0, len(c.Meta))
	for k := range c.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Str(k)
		e.Str(c.Meta[k])
	}
	e.I64(c.VirtualTime)
	e.U64(c.Events)
	c.Timeline.encode(&e)
	e.Raw(c.State)
	return e.Bytes()
}

// Decode parses a checkpoint image.
func Decode(img []byte) (*Checkpoint, error) {
	d := NewDecoder(img)
	if string(d.take(len(fileMagic))) != fileMagic {
		return nil, fmt.Errorf("snapshot: not a checkpoint file (bad magic)")
	}
	if v := d.U32(); v != fileVersion {
		return nil, fmt.Errorf("snapshot: unsupported checkpoint version %d (want %d)", v, fileVersion)
	}
	c := &Checkpoint{Meta: make(map[string]string)}
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		k := d.Str()
		c.Meta[k] = d.Str()
	}
	c.VirtualTime = d.I64()
	c.Events = d.U64()
	c.Timeline = decodeTimeline(d)
	c.State = d.Raw()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after checkpoint", d.Remaining())
	}
	return c, nil
}

// WriteFile atomically writes the checkpoint to path (write to a temp
// file in the same directory, then rename), so a crash mid-write never
// leaves a truncated snapshot.
func (c *Checkpoint) WriteFile(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, c.Encode(), 0o644); err != nil {
		return fmt.Errorf("snapshot: write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: rename %s: %w", path, err)
	}
	return nil
}

// ReadFile loads a checkpoint from disk.
func ReadFile(path string) (*Checkpoint, error) {
	img, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read %s: %w", path, err)
	}
	c, err := Decode(img)
	if err != nil {
		return nil, fmt.Errorf("snapshot: decode %s: %w", path, err)
	}
	return c, nil
}

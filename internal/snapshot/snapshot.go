package snapshot

import (
	"fmt"
	"hash/fnv"
)

// Snapshotter is implemented by every stateful simulation component. The
// contract:
//
//   - Snapshot must be deterministic: identical component state encodes to
//     identical bytes (map iteration must be sorted by the implementation).
//   - Snapshot must not mutate the component or the simulation.
//   - Restore reverses Snapshot for the component's scalar state. State
//     that lives in the engine's event queue (pending callbacks) has no
//     serializable form; Restore reconstitutes fields for inspection and
//     round-trip verification, and implementations must reject snapshots
//     they cannot fully honor. Live resumption is replay-based — see the
//     package comment.
type Snapshotter interface {
	Snapshot(*Encoder)
	Restore(*Decoder) error
}

// Digest is one component's state hash at an instant.
type Digest struct {
	Component string
	Hash      uint64
}

// Registry holds a testbed's components in a fixed, named order. The
// registration order defines the encoding layout, so two runs comparing
// digests must register identically (same testbed shape).
type Registry struct {
	names  []string
	byName map[string]Snapshotter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Snapshotter)}
}

// Register adds a named component. Duplicate names panic: a silently
// shadowed component would make digests lie about what they cover.
func (r *Registry) Register(name string, s Snapshotter) {
	if s == nil {
		panic("snapshot: registering nil Snapshotter")
	}
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("snapshot: duplicate component %q", name))
	}
	r.names = append(r.names, name)
	r.byName[name] = s
}

// Names returns the registered component names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.names...)
}

// Component returns a registered component, or nil.
func (r *Registry) Component(name string) Snapshotter { return r.byName[name] }

// stateMagic identifies a Registry.EncodeAll image.
const stateMagic = "HCSSTAT1"

// EncodeAll serializes every component into one versioned image.
func (r *Registry) EncodeAll() []byte {
	var e Encoder
	e.buf = append(e.buf, stateMagic...)
	e.U32(uint32(len(r.names)))
	for _, name := range r.names {
		var ce Encoder
		r.byName[name].Snapshot(&ce)
		e.Str(name)
		e.Raw(ce.Bytes())
	}
	return e.Bytes()
}

// DecodeState splits an EncodeAll image into named component blobs,
// preserving order. It validates the header but not the blobs.
func DecodeState(img []byte) ([]Digest, map[string][]byte, error) {
	d := NewDecoder(img)
	if string(d.take(len(stateMagic))) != stateMagic {
		return nil, nil, fmt.Errorf("snapshot: bad state magic")
	}
	n := int(d.U32())
	order := make([]Digest, 0, n)
	blobs := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		name := d.Str()
		blob := d.Raw()
		if d.Err() != nil {
			return nil, nil, d.Err()
		}
		order = append(order, Digest{Component: name, Hash: HashBytes(blob)})
		blobs[name] = blob
	}
	return order, blobs, d.Err()
}

// RestoreAll decodes an EncodeAll image back into the registered
// components. Every component in the image must be registered under the
// same name and accept its blob.
func (r *Registry) RestoreAll(img []byte) error {
	order, blobs, err := DecodeState(img)
	if err != nil {
		return err
	}
	if len(order) != len(r.names) {
		return fmt.Errorf("snapshot: image has %d components, registry has %d", len(order), len(r.names))
	}
	for i, dg := range order {
		if dg.Component != r.names[i] {
			return fmt.Errorf("snapshot: component %d is %q in image, %q in registry", i, dg.Component, r.names[i])
		}
		dec := NewDecoder(blobs[dg.Component])
		if err := r.byName[dg.Component].Restore(dec); err != nil {
			return fmt.Errorf("snapshot: restore %q: %w", dg.Component, err)
		}
		if err := dec.Err(); err != nil {
			return fmt.Errorf("snapshot: restore %q: %w", dg.Component, err)
		}
		if dec.Remaining() != 0 {
			return fmt.Errorf("snapshot: restore %q left %d undecoded bytes", dg.Component, dec.Remaining())
		}
	}
	return nil
}

// HashBytes is the digest function: FNV-1a 64.
func HashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Digests hashes every component's current encoding, in registration
// order.
func (r *Registry) Digests() []Digest {
	out := make([]Digest, 0, len(r.names))
	for _, name := range r.names {
		var e Encoder
		r.byName[name].Snapshot(&e)
		out = append(out, Digest{Component: name, Hash: HashBytes(e.Bytes())})
	}
	return out
}

// Combined folds a digest list into a single order-sensitive hash (the
// one-number summary used by the golden-digest tests).
func Combined(ds []Digest) uint64 {
	h := fnv.New64a()
	var tmp [8]byte
	for _, d := range ds {
		h.Write([]byte(d.Component))
		for i := 0; i < 8; i++ {
			tmp[i] = byte(d.Hash >> (8 * i))
		}
		h.Write(tmp[:])
	}
	return h.Sum64()
}

package snapshot

import "fmt"

// Frame is one periodic digest sample: every component's state hash at a
// virtual instant.
type Frame struct {
	At      int64 // virtual time, nanoseconds
	Events  uint64
	Digests []Digest
}

// Timeline is an ordered sequence of frames from one run. Two runs are
// comparable only if they recorded with the same period and the same
// registry layout.
type Timeline struct {
	Frames []Frame
}

// Append adds one frame.
func (t *Timeline) Append(f Frame) { t.Frames = append(t.Frames, f) }

// Len returns the number of frames.
func (t *Timeline) Len() int { return len(t.Frames) }

// Divergence identifies the first component whose digest differs between
// two runs — the "pcie credit counter diverged at t=83ms" answer.
type Divergence struct {
	Component  string
	At         int64 // virtual time of the first divergent frame
	Events     uint64
	FrameIndex int
	AHash      uint64
	BHash      uint64
}

func (d Divergence) String() string {
	return fmt.Sprintf("component %q diverged at t=%.3fms (frame %d, %d events): %#x vs %#x",
		d.Component, float64(d.At)/1e6, d.FrameIndex, d.Events, d.AHash, d.BHash)
}

// FirstDivergence scans two timelines frame by frame and returns the
// first component whose digest differs (within the first differing frame,
// components are checked in registration order, which follows the
// datapath, so the earliest listed divergent component is the most
// upstream one). ok is false when the common prefix is identical.
func FirstDivergence(a, b *Timeline) (Divergence, bool) {
	n := min(len(a.Frames), len(b.Frames))
	for i := 0; i < n; i++ {
		fa, fb := a.Frames[i], b.Frames[i]
		m := min(len(fa.Digests), len(fb.Digests))
		for j := 0; j < m; j++ {
			da, db := fa.Digests[j], fb.Digests[j]
			if da.Component != db.Component {
				return Divergence{
					Component:  da.Component + "|" + db.Component,
					At:         fa.At,
					Events:     fa.Events,
					FrameIndex: i,
					AHash:      da.Hash,
					BHash:      db.Hash,
				}, true
			}
			if da.Hash != db.Hash {
				return Divergence{
					Component:  da.Component,
					At:         fa.At,
					Events:     fa.Events,
					FrameIndex: i,
					AHash:      da.Hash,
					BHash:      db.Hash,
				}, true
			}
		}
		if len(fa.Digests) != len(fb.Digests) {
			return Divergence{
				Component:  "(frame shape)",
				At:         fa.At,
				FrameIndex: i,
			}, true
		}
	}
	return Divergence{}, false
}

func (t *Timeline) encode(e *Encoder) {
	e.U32(uint32(len(t.Frames)))
	for _, f := range t.Frames {
		e.I64(f.At)
		e.U64(f.Events)
		e.U32(uint32(len(f.Digests)))
		for _, d := range f.Digests {
			e.Str(d.Component)
			e.U64(d.Hash)
		}
	}
}

func decodeTimeline(d *Decoder) Timeline {
	var t Timeline
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		f := Frame{At: d.I64(), Events: d.U64()}
		m := int(d.U32())
		for j := 0; j < m && d.Err() == nil; j++ {
			f.Digests = append(f.Digests, Digest{Component: d.Str(), Hash: d.U64()})
		}
		t.Frames = append(t.Frames, f)
	}
	return t
}

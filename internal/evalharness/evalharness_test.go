package evalharness

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestConfigValidateRejects: every invalid axis or parameter is caught
// with an identifying message.
func TestConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"unknown-scheme", func(c *Config) { c.Schemes = []string{"vegas"} }, "vegas"},
		{"unknown-topology", func(c *Config) { c.Topologies = []string{"torus"} }, "torus"},
		{"unknown-workload", func(c *Config) { c.Workloads = []string{"shuffle"} }, "shuffle"},
		{"unknown-arm", func(c *Config) { c.Arms = []string{"maybe"} }, "arm"},
		{"empty-axis", func(c *Config) { c.Schemes = []string{} }, "empty matrix axis"},
		{"negative-warmup", func(c *Config) { c.Warmup = -sim.Millisecond }, "Warmup"},
		{"negative-measure", func(c *Config) { c.Measure = -sim.Millisecond }, "Warmup"},
		{"sample-above-measure", func(c *Config) {
			c.Measure = sim.Millisecond
			c.SampleEvery = 2 * sim.Millisecond
		}, "SampleEvery"},
		{"negative-digest-every", func(c *Config) { c.DigestEvery = -1 }, "DigestEvery"},
		{"tol-too-big", func(c *Config) { c.ConvergenceTol = 1 }, "ConvergenceTol"},
		{"negative-rpc-size", func(c *Config) { c.RPCSize = -1 }, "RPCSize"},
		{"negative-workers", func(c *Config) { c.Workers = -1 }, "Workers"},
		{"negative-shards", func(c *Config) { c.Shards = -2 }, "Shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var cfg Config
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not identify %q", err, tc.want)
			}
		})
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config (all defaults) rejected: %v", err)
	}
}

// TestCellSpecValidateRejects: the per-cell spec rejects unknown names.
func TestCellSpecValidateRejects(t *testing.T) {
	good := CellSpec{Scheme: "dctcp", Topology: "star", Workload: "fanin"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for name, spec := range map[string]CellSpec{
		"scheme":   {Scheme: "vegas", Topology: "star", Workload: "fanin"},
		"topology": {Scheme: "dctcp", Topology: "torus", Workload: "fanin"},
		"workload": {Scheme: "dctcp", Topology: "star", Workload: "shuffle"},
	} {
		if spec.Validate() == nil {
			t.Fatalf("invalid %s accepted", name)
		}
	}
}

// miniConfig is a cheap two-scheme, one-pane matrix used by the
// behavioral tests.
func miniConfig() Config {
	return Config{
		Schemes:    []string{"dctcp", "bbr"},
		Topologies: []string{"star"},
		Workloads:  []string{"hostbound"},
		Warmup:     500 * sim.Microsecond,
		// Long enough for the victim flow to complete RPCs even when the
		// host-bottleneck arm drives it into MinRTO recovery.
		Measure: 4 * sim.Millisecond,
	}
}

// TestRunMiniMatrix: the matrix runner produces one verified cell per
// spec in deterministic order, pairs the arms, and ranks the pane.
func TestRunMiniMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed cells; skipped in -short")
	}
	rep, err := Run(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 { // 2 schemes × 1 topo × 1 workload × 2 arms
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	wantOrder := []CellSpec{
		{Scheme: "dctcp", Topology: "star", Workload: "hostbound", HostCC: false},
		{Scheme: "dctcp", Topology: "star", Workload: "hostbound", HostCC: true},
		{Scheme: "bbr", Topology: "star", Workload: "hostbound", HostCC: false},
		{Scheme: "bbr", Topology: "star", Workload: "hostbound", HostCC: true},
	}
	for i, c := range rep.Cells {
		w := wantOrder[i]
		if c.Scheme != w.Scheme || c.HostCC != w.HostCC {
			t.Fatalf("cell %d is %s/hostcc=%v, want %s/hostcc=%v",
				i, c.Scheme, c.HostCC, w.Scheme, w.HostCC)
		}
		if !c.Verified {
			t.Fatalf("cell %d not replay-verified", i)
		}
		if c.GoodputGbps <= 0 {
			t.Fatalf("cell %d reports no goodput", i)
		}
		if c.Jain <= 0 || c.Jain > 1 {
			t.Fatalf("cell %d Jain %v outside (0,1]", i, c.Jain)
		}
		if c.VictimRPCs <= 0 {
			t.Fatalf("cell %d recorded no victim RPCs", i)
		}
		if c.HostCC && c.GoodputVsOffPct == 0 {
			t.Fatalf("cell %d (on arm) has no vs-off comparison", i)
		}
		// Both arms of one scheme share a seed (paired comparison).
		if i%2 == 1 && c.Seed != rep.Cells[i-1].Seed {
			t.Fatalf("arms of %s use different seeds", c.Scheme)
		}
	}
	if len(rep.Rankings) != 1 {
		t.Fatalf("got %d rankings, want 1", len(rep.Rankings))
	}
	r := rep.Rankings[0]
	if len(r.Off) != 2 || len(r.On) != 2 {
		t.Fatalf("ranking arms incomplete: off=%v on=%v", r.Off, r.On)
	}

	// The report is a pure function of the cells: markdown and JSON are
	// non-empty and carry every scheme.
	md := rep.Markdown()
	for _, s := range []string{"dctcp", "bbr", "### star / hostbound", "Scheme ranking"} {
		if !strings.Contains(md, s) {
			t.Fatalf("markdown missing %q", s)
		}
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestRunDeterministic: two executions of the same matrix render
// byte-identical reports (the eval-smoke gate, in-process).
func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed cells; skipped in -short")
	}
	cfg := miniConfig()
	cfg.Schemes = []string{"hpcc"}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Markdown() != b.Markdown() {
		t.Fatal("two runs of the same matrix rendered different reports")
	}
}

// TestRunRejectsInvalid: Run surfaces validation errors instead of
// running a partial matrix.
func TestRunRejectsInvalid(t *testing.T) {
	if _, err := Run(Config{Schemes: []string{"vegas"}}); err == nil {
		t.Fatal("Run accepted an unknown scheme")
	}
}

// Package evalharness runs the congestion-control evaluation matrix:
// scheme × topology × workload × hostCC arm, every cell a full testbed
// experiment (CoCo-Beholder's matrix shape over this repo's testbed).
// Each cell reports fairness (Jain's index over per-flow shares),
// convergence time of the aggregate goodput, the P99.9 tail latency of a
// victim RPC flow, and goodput — with the hostCC-on arm additionally
// compared against its hostCC-off twin. Cells are independent
// simulations, so the matrix fans out on the sweep worker pool, and each
// cell is replay-verified (run twice, digest timelines compared frame by
// frame) unless verification is disabled.
package evalharness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/testbed"
	"repro/internal/transport"
)

// Workload names a canned traffic shape for one matrix axis.
//
//   - "fanin": 4 senders × 8 flows into one receiver, no MApp — classic
//     network fan-in; the bottleneck is the switch port.
//   - "hostbound": 1 sender × 4 flows into a receiver squeezed by a 3×
//     MApp — the paper's host-bottleneck regime; the fabric is idle and
//     every congestion signal must come from inside the host.
type workloadShape struct {
	Senders, Flows int
	Degree         float64
}

var workloadShapes = map[string]workloadShape{
	"fanin":     {Senders: 4, Flows: 8, Degree: 0},
	"hostbound": {Senders: 1, Flows: 4, Degree: 3},
}

// Config parameterizes the evaluation matrix. Zero values select the
// documented defaults (the testbed convention).
type Config struct {
	// Schemes are transport scheme-registry names (nil = every
	// registered scheme).
	Schemes []string
	// Topologies are fabric topology names (nil = star + leafspine).
	Topologies []string
	// Workloads name traffic shapes (nil = fanin + hostbound).
	Workloads []string
	// Arms selects the hostCC axis: "off", "on" (nil = both).
	Arms []string

	// Seed derives every cell's seed (sweep.SeedFor; 0 = 42). The two
	// arms of one scheme/topology/workload share a seed, so their loads
	// are identical and the arm comparison is paired.
	Seed int64

	// Warmup / Measure bound each cell (0 = 1 ms / 4 ms).
	Warmup  sim.Time
	Measure sim.Time
	// SampleEvery is the goodput sampling period for the convergence
	// series (0 = 100 µs).
	SampleEvery sim.Time
	// DigestEvery is the replay-verification digest period (0 = 1 ms).
	DigestEvery sim.Time

	// ConvergenceTol is the stability band around the settled goodput
	// within which samples count as converged (0 = 0.25).
	ConvergenceTol float64

	// RPCSize shapes the victim NetApp-L flow (0 = 16 KiB).
	RPCSize int

	// Workers bounds concurrent cells (0 = NumCPU).
	Workers int
	// Shards partitions multi-switch cells across engine shards
	// (0/1 = serial; star cells always run serial).
	Shards int
	// NoVerify skips the run-twice replay verification (halves the cost;
	// the report then carries Verified=false cells).
	NoVerify bool
}

func (c Config) withDefaults() Config {
	if c.Schemes == nil {
		for _, s := range transport.Schemes() {
			c.Schemes = append(c.Schemes, s.Name)
		}
	}
	if c.Topologies == nil {
		c.Topologies = []string{"star", "leafspine"}
	}
	if c.Workloads == nil {
		c.Workloads = []string{"fanin", "hostbound"}
	}
	if c.Arms == nil {
		c.Arms = []string{"off", "on"}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Warmup == 0 {
		c.Warmup = sim.Millisecond
	}
	if c.Measure == 0 {
		c.Measure = 4 * sim.Millisecond
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 100 * sim.Microsecond
	}
	if c.DigestEvery == 0 {
		c.DigestEvery = sim.Millisecond
	}
	if c.ConvergenceTol == 0 {
		c.ConvergenceTol = 0.25
	}
	if c.RPCSize == 0 {
		c.RPCSize = 16 << 10
	}
	return c
}

// Validate reports the first invalid parameter (after defaulting, the
// testbed convention: validate what would actually run).
func (c Config) Validate() error {
	c = c.withDefaults()
	for _, name := range c.Schemes {
		if _, err := transport.SchemeByName(name); err != nil {
			return fmt.Errorf("evalharness: %w", err)
		}
	}
	for _, name := range c.Topologies {
		if _, err := fabric.ParseTopologyKind(name); err != nil {
			return fmt.Errorf("evalharness: %w", err)
		}
	}
	for _, name := range c.Workloads {
		if _, ok := workloadShapes[name]; !ok {
			return fmt.Errorf("evalharness: unknown workload %q (have fanin, hostbound)", name)
		}
	}
	for _, arm := range c.Arms {
		if arm != "off" && arm != "on" {
			return fmt.Errorf("evalharness: unknown arm %q (have off, on)", arm)
		}
	}
	if len(c.Schemes) == 0 || len(c.Topologies) == 0 || len(c.Workloads) == 0 || len(c.Arms) == 0 {
		return fmt.Errorf("evalharness: empty matrix axis")
	}
	if c.Warmup <= 0 || c.Measure <= 0 {
		return fmt.Errorf("evalharness: Warmup %v and Measure %v must be positive", c.Warmup, c.Measure)
	}
	if c.SampleEvery <= 0 || c.SampleEvery > c.Measure {
		return fmt.Errorf("evalharness: SampleEvery %v outside (0, Measure %v]", c.SampleEvery, c.Measure)
	}
	if c.DigestEvery <= 0 {
		return fmt.Errorf("evalharness: DigestEvery %v must be positive", c.DigestEvery)
	}
	if c.ConvergenceTol <= 0 || c.ConvergenceTol >= 1 {
		return fmt.Errorf("evalharness: ConvergenceTol %v outside (0,1)", c.ConvergenceTol)
	}
	if c.RPCSize <= 0 {
		return fmt.Errorf("evalharness: RPCSize %d must be positive", c.RPCSize)
	}
	if c.Workers < 0 {
		return fmt.Errorf("evalharness: negative Workers %d", c.Workers)
	}
	if c.Shards < 0 {
		return fmt.Errorf("evalharness: negative Shards %d", c.Shards)
	}
	return nil
}

// CellSpec identifies one matrix cell.
type CellSpec struct {
	Scheme   string `json:"scheme"`
	Topology string `json:"topology"`
	Workload string `json:"workload"`
	HostCC   bool   `json:"hostcc"`
	Seed     int64  `json:"seed"`
}

// Validate reports the first invalid field.
func (s CellSpec) Validate() error {
	if _, err := transport.SchemeByName(s.Scheme); err != nil {
		return fmt.Errorf("evalharness: cell: %w", err)
	}
	if _, err := fabric.ParseTopologyKind(s.Topology); err != nil {
		return fmt.Errorf("evalharness: cell: %w", err)
	}
	if _, ok := workloadShapes[s.Workload]; !ok {
		return fmt.Errorf("evalharness: cell: unknown workload %q", s.Workload)
	}
	return nil
}

// CellResult is one cell's measurements.
type CellResult struct {
	CellSpec

	// GoodputGbps is NetApp-T goodput over the measurement window.
	GoodputGbps float64 `json:"goodput_gbps"`
	// GoodputVsOffPct compares this (hostCC-on) cell against its paired
	// off arm: 100 × (on − off) / off. Zero for off cells.
	GoodputVsOffPct float64 `json:"goodput_vs_off_pct,omitempty"`
	// Jain is Jain's fairness index over per-flow delivered bytes.
	Jain float64 `json:"jain"`
	// ConvergenceUs is how long after flow start the aggregate goodput
	// settled into the ±tol band around its final value (-1: never).
	ConvergenceUs float64 `json:"convergence_us"`
	// VictimP999Us is the victim RPC flow's P99.9 completion time (µs).
	VictimP999Us float64 `json:"victim_p999_us"`
	// VictimRPCs counts completed victim RPCs in the window.
	VictimRPCs int `json:"victim_rpcs"`
	// Retx / Timeouts aggregate NetApp-T loss recovery activity.
	Retx     int64 `json:"retx"`
	Timeouts int64 `json:"timeouts"`

	// Digest is the combined component digest at end of run; Verified
	// reports that a second run reproduced the digest timeline exactly.
	Digest   uint64 `json:"digest"`
	Verified bool   `json:"verified"`
}

// cellConfig compiles one cell into a testbed configuration.
func cellConfig(spec CellSpec, cfg Config) (testbed.Config, error) {
	scheme, err := transport.SchemeByName(spec.Scheme)
	if err != nil {
		return testbed.Config{}, err
	}
	kind, err := fabric.ParseTopologyKind(spec.Topology)
	if err != nil {
		return testbed.Config{}, err
	}
	shape, ok := workloadShapes[spec.Workload]
	if !ok {
		return testbed.Config{}, fmt.Errorf("evalharness: unknown workload %q", spec.Workload)
	}

	opts := testbed.DefaultConfig()
	opts.Seed = spec.Seed
	opts.Topology = fabric.Topology{Kind: kind}
	opts.Senders = shape.Senders
	opts.Receivers = 1
	opts.Flows = shape.Flows
	opts.Degree = shape.Degree
	opts.CC = scheme.Factory()
	if scheme.Lossless {
		// DCQCN runs on its native lossless fabric, watchdog armed (a
		// wedged pause is a known failure mode, not a CC property).
		opts.Lossless = true
		opts.PauseWatchdog = 150 * sim.Microsecond
	}
	opts.HostCC = spec.HostCC
	if spec.HostCC {
		wd := core.DefaultWatchdogConfig()
		opts.Watchdog = &wd
	}
	opts.Warmup = cfg.Warmup
	opts.Measure = cfg.Measure
	// Tail drops must recover inside the affordable horizon, as in every
	// other study runner.
	opts.MinRTO = sim.Millisecond
	if cfg.Shards > 1 && kind != fabric.TopoStar {
		opts.Shards = cfg.Shards
	}
	return opts, opts.Validate()
}

// runCell executes one cell once and returns its result plus the digest
// timeline for replay verification.
func runCell(spec CellSpec, cfg Config) (CellResult, *snapshot.Timeline, error) {
	opts, err := cellConfig(spec, cfg)
	if err != nil {
		return CellResult{}, nil, err
	}
	tb := testbed.New(opts)
	defer tb.Close()

	tb.StartNetAppT()
	victim := tb.StartNetAppL(cfg.RPCSize, 0, nil)

	// Digest recorder (replay verification) and goodput series
	// (convergence estimation). Both run on the coordinator in sharded
	// mode, reading quiesced global state.
	reg := tb.Registry()
	timeline := &snapshot.Timeline{}
	recording := true
	tb.Every(cfg.DigestEvery, func() {
		if !recording {
			return
		}
		timeline.Append(snapshot.Frame{
			At:      int64(tb.Now()),
			Events:  tb.Processed(),
			Digests: reg.Digests(),
		})
	})
	var series []float64
	var lastBytes int64
	tb.Every(cfg.SampleEvery, func() {
		if !recording {
			return
		}
		b := tb.NetT.DeliveredBytes()
		series = append(series, sim.Rate(float64(b-lastBytes)/cfg.SampleEvery.Seconds()).Gbps())
		lastBytes = b
	})

	tb.RunUntil(cfg.Warmup)
	victim.SetRecording(true)
	tb.MarkWindow()
	tb.RunFor(cfg.Measure)
	m := tb.Collect()

	for _, h := range tb.HCCs {
		h.Stop()
	}
	recording = false

	res := CellResult{
		CellSpec:     spec,
		GoodputGbps:  m.ThroughputGbps,
		Jain:         stats.JainIndex(tb.NetT.FlowShares()),
		VictimP999Us: victim.Latency.Quantile(0.999) / 1000,
		VictimRPCs:   int(victim.Latency.Count()),
		Retx:         m.NetRetx,
		Timeouts:     m.NetTimeouts,
		Digest:       snapshot.Combined(reg.Digests()),
	}
	if idx := ConvergenceIndex(series, cfg.ConvergenceTol); idx >= 0 {
		res.ConvergenceUs = float64(idx) * cfg.SampleEvery.Micros()
	} else {
		res.ConvergenceUs = -1
	}
	return res, timeline, nil
}

// runCellVerified runs one cell, then (unless disabled) replays it and
// fails loudly on any digest divergence — every reported number comes
// from a reproducible simulation.
func runCellVerified(spec CellSpec, cfg Config) (CellResult, error) {
	res, tl, err := runCell(spec, cfg)
	if err != nil {
		return CellResult{}, err
	}
	if cfg.NoVerify {
		return res, nil
	}
	res2, tl2, err := runCell(spec, cfg)
	if err != nil {
		return CellResult{}, fmt.Errorf("evalharness: replay: %w", err)
	}
	if div, found := snapshot.FirstDivergence(tl, tl2); found {
		return CellResult{}, fmt.Errorf("evalharness: cell %s/%s/%s replay diverged: %s",
			spec.Scheme, spec.Topology, spec.Workload, div)
	}
	if res2.Digest != res.Digest {
		return CellResult{}, fmt.Errorf("evalharness: cell %s/%s/%s replay final digest %#016x != %#016x",
			spec.Scheme, spec.Topology, spec.Workload, res2.Digest, res.Digest)
	}
	res.Verified = true
	return res, nil
}

// Run executes the full matrix and assembles the report. Cell order in
// the report is deterministic (topology-major, then workload, scheme,
// arm) regardless of the parallel execution order.
func Run(cfg Config) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	cfg = cfg.withDefaults()

	var specs []CellSpec
	group := 0 // one seed per scheme/topology/workload, shared by both arms
	for _, topo := range cfg.Topologies {
		for _, wl := range cfg.Workloads {
			for _, scheme := range cfg.Schemes {
				seed := sweep.SeedFor(cfg.Seed, group)
				group++
				for _, arm := range cfg.Arms {
					specs = append(specs, CellSpec{
						Scheme:   scheme,
						Topology: topo,
						Workload: wl,
						HostCC:   arm == "on",
						Seed:     seed,
					})
				}
			}
		}
	}

	type cellOut struct {
		res CellResult
		err error
	}
	outs := sweep.Map(len(specs), cfg.Workers, func(i int) cellOut {
		res, err := runCellVerified(specs[i], cfg)
		return cellOut{res, err}
	})
	rep := Report{
		Seed:      cfg.Seed,
		WarmupUs:  cfg.Warmup.Micros(),
		MeasureUs: cfg.Measure.Micros(),
	}
	for i, out := range outs {
		if out.err != nil {
			return Report{}, fmt.Errorf("evalharness: cell %d (%s/%s/%s hostcc=%v): %w",
				i, specs[i].Scheme, specs[i].Topology, specs[i].Workload, specs[i].HostCC, out.err)
		}
		rep.Cells = append(rep.Cells, out.res)
	}
	rep.finish()
	return rep, nil
}

package evalharness

// ConvergenceIndex locates where a goodput series settles: the settled
// value is the mean of the series' last quarter (at least one sample),
// and the convergence index is the earliest position from which every
// later sample stays inside the ±tol×settled band. Returns -1 when the
// series never settles (some sample inside the final quarter still
// escapes the band), 0 for an all-equal non-zero series, and 0 for a
// single non-zero sample. A series that never carried any goodput at
// all (every sample zero) reports -1 — "never converged" — rather than
// instant convergence: a dead flow has not settled, it never started. A
// settled value of zero with earlier non-zero samples converges at the
// point the series went (and stayed) zero.
//
// Pure function — the unit it returns is a sample index; callers scale
// by their sampling period.
func ConvergenceIndex(series []float64, tol float64) int {
	n := len(series)
	if n == 0 {
		return -1
	}
	allZero := true
	for _, v := range series {
		if v != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return -1
	}
	q := n - n/4
	if q == n {
		q = n - 1
	}
	var settled float64
	for _, v := range series[q:] {
		settled += v
	}
	settled /= float64(n - q)

	lo := settled * (1 - tol)
	hi := settled * (1 + tol)
	// Scan backward for the last out-of-band sample; convergence starts
	// just after it.
	for i := n - 1; i >= 0; i-- {
		if series[i] < lo || series[i] > hi {
			if i == n-1 {
				return -1
			}
			return i + 1
		}
	}
	return 0
}

package evalharness

import (
	"testing"

	"repro/internal/stats"
)

// TestConvergenceIndexKnownAnswers: the convergence estimator as a pure
// function, against hand-computed answers.
func TestConvergenceIndexKnownAnswers(t *testing.T) {
	cases := []struct {
		name   string
		series []float64
		tol    float64
		want   int
	}{
		{"empty", nil, 0.25, -1},
		{"single-sample", []float64{50}, 0.25, 0},
		{"all-equal", []float64{40, 40, 40, 40, 40, 40, 40, 40}, 0.25, 0},
		// Slow start then plateau at 80: the last quarter (80,80) sets
		// the band [60,100]; 10 and 40 escape it, 70 onward does not.
		{"ramp-then-plateau", []float64{10, 40, 70, 75, 80, 80, 80, 80}, 0.25, 2},
		// Oscillation that never settles into the band.
		{"never-settles", []float64{10, 90, 10, 90, 10, 90, 10, 90}, 0.25, -1},
		// A late dip out of the band restarts convergence after it.
		{"late-dip", []float64{80, 80, 80, 20, 80, 80, 80, 80}, 0.25, 4},
		// Tight tolerance rejects what a loose one accepts: the ±5% band
		// around 80 is [76,84], so 75 is still outside it.
		{"tight-tol", []float64{70, 75, 80, 80, 80, 80, 80, 80}, 0.05, 2},
		// An all-zero goodput series never carried traffic: it must
		// report "never converged", not instant convergence (the dead
		// flow in a starved cell would otherwise look perfectly settled).
		{"all-zero", []float64{0, 0, 0, 0}, 0.25, -1},
		{"single-zero-sample", []float64{0}, 0.25, -1},
		// Zero settled value with a live prefix: the band is a point;
		// the series converges where it went (and stayed) zero.
		{"dies-to-zero", []float64{50, 50, 0, 0, 0, 0, 0, 0}, 0.25, 2},
		// A zero tail that resumes inside the final quarter never
		// settles.
		{"flatline-then-resume", []float64{0, 0, 0, 0, 0, 0, 0, 90}, 0.25, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ConvergenceIndex(tc.series, tc.tol); got != tc.want {
				t.Fatalf("ConvergenceIndex(%v, %v) = %d, want %d", tc.series, tc.tol, got, tc.want)
			}
		})
	}
}

// TestJainKnownAnswers: the fairness metric the harness reports, against
// hand-computed answers — including the all-equal ⇒ 1.0 and single-flow
// edge cases.
func TestJainKnownAnswers(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"single-flow", []float64{123}, 1.0},
		{"all-equal", []float64{5, 5, 5, 5}, 1.0},
		{"empty", nil, 0},
		// Degenerate series must not divide by zero: zero allocations
		// carry no fairness information, so the index reports 0.
		{"all-zero", []float64{0, 0, 0}, 0},
		{"single-zero", []float64{0}, 0},
		// (1+3)² / (2·(1+9)) = 16/20.
		{"two-flow-skew", []float64{1, 3}, 0.8},
		// One flow hogging: (4)²/(4·16) → 1/4 with three starved flows.
		{"starvation", []float64{4, 0, 0, 0}, 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := stats.JainIndex(tc.xs)
			if diff := got - tc.want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("JainIndex(%v) = %v, want %v", tc.xs, got, tc.want)
			}
		})
	}
}

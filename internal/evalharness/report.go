package evalharness

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Ranking orders the schemes of one topology × workload pane by goodput,
// separately for each hostCC arm. OrderingChanged is the paper's
// qualitative claim made checkable: hostCC re-ranks the schemes.
type Ranking struct {
	Topology string `json:"topology"`
	Workload string `json:"workload"`
	// Off / On list scheme names, best goodput first.
	Off []string `json:"off,omitempty"`
	On  []string `json:"on,omitempty"`
	// OrderingChanged reports Off ≠ On (only meaningful when both arms
	// ran).
	OrderingChanged bool `json:"ordering_changed"`
}

// Report is the full matrix outcome: per-cell measurements plus the
// per-pane scheme rankings derived from them.
type Report struct {
	Seed      int64        `json:"seed"`
	WarmupUs  float64      `json:"warmup_us"`
	MeasureUs float64      `json:"measure_us"`
	Cells     []CellResult `json:"cells"`
	Rankings  []Ranking    `json:"rankings"`
}

// finish derives the cross-cell fields: paired-arm goodput deltas and
// per-pane rankings. Cells is already in deterministic matrix order.
func (r *Report) finish() {
	// Pair each on cell with its off twin.
	type paneKey struct{ topo, wl string }
	off := map[CellSpec]float64{}
	for _, c := range r.Cells {
		if !c.HostCC {
			k := c.CellSpec
			k.HostCC = false
			off[k] = c.GoodputGbps
		}
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		if !c.HostCC {
			continue
		}
		k := c.CellSpec
		k.HostCC = false
		if base, ok := off[k]; ok && base > 0 {
			c.GoodputVsOffPct = 100 * (c.GoodputGbps - base) / base
		}
	}

	// Rankings per pane, preserving the matrix's pane order.
	var order []paneKey
	panes := map[paneKey][]CellResult{}
	for _, c := range r.Cells {
		k := paneKey{c.Topology, c.Workload}
		if _, ok := panes[k]; !ok {
			order = append(order, k)
		}
		panes[k] = append(panes[k], c)
	}
	r.Rankings = nil
	for _, k := range order {
		rank := Ranking{Topology: k.topo, Workload: k.wl}
		for _, hostCC := range []bool{false, true} {
			var cells []CellResult
			for _, c := range panes[k] {
				if c.HostCC == hostCC {
					cells = append(cells, c)
				}
			}
			// Stable on goodput desc; scheme name breaks exact ties so
			// the ranking is a pure function of the measurements.
			sort.SliceStable(cells, func(i, j int) bool {
				if cells[i].GoodputGbps != cells[j].GoodputGbps {
					return cells[i].GoodputGbps > cells[j].GoodputGbps
				}
				return cells[i].Scheme < cells[j].Scheme
			})
			names := make([]string, len(cells))
			for i, c := range cells {
				names[i] = c.Scheme
			}
			if hostCC {
				rank.On = names
			} else {
				rank.Off = names
			}
		}
		if len(rank.Off) > 0 && len(rank.On) > 0 {
			rank.OrderingChanged = !equalStrings(rank.Off, rank.On)
		}
		r.Rankings = append(r.Rankings, rank)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// JSON renders the machine-readable report (BENCH_evalharness.json).
func (r Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Markdown renders the deterministic report: one table per topology ×
// workload pane, cells in matrix order, plus the ranking summary. Every
// number (and each cell's digest) is a pure function of the simulation,
// so two runs of the same matrix produce byte-identical output.
func (r Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## CC evaluation matrix (seed %d, warmup %.0f µs, measure %.0f µs)\n",
		r.Seed, r.WarmupUs, r.MeasureUs)
	b.WriteString("\nEvery cell is one replay-verified testbed run; `vs-off` compares the\nhostCC-on arm against its identically-seeded off twin. Convergence is\nthe time for aggregate goodput to settle into its ±25% band (−1: never\nsettled); the victim columns are a concurrent 16 KiB RPC flow.\n")

	type paneKey struct{ topo, wl string }
	var order []paneKey
	panes := map[paneKey][]CellResult{}
	for _, c := range r.Cells {
		k := paneKey{c.Topology, c.Workload}
		if _, ok := panes[k]; !ok {
			order = append(order, k)
		}
		panes[k] = append(panes[k], c)
	}
	for _, k := range order {
		fmt.Fprintf(&b, "\n### %s / %s\n\n", k.topo, k.wl)
		b.WriteString("| scheme | hostcc | goodput (Gbps) | vs-off | Jain | converge (µs) | victim P99.9 (µs) | RPCs | retx | RTOs | digest | verified |\n")
		b.WriteString("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---|---|\n")
		for _, c := range panes[k] {
			arm, vsOff := "off", "—"
			if c.HostCC {
				arm = "on"
				vsOff = fmt.Sprintf("%+.1f%%", c.GoodputVsOffPct)
			}
			verified := "no"
			if c.Verified {
				verified = "yes"
			}
			fmt.Fprintf(&b, "| %s | %s | %.2f | %s | %.3f | %.0f | %.1f | %d | %d | %d | `%016x` | %s |\n",
				c.Scheme, arm, c.GoodputGbps, vsOff, c.Jain, c.ConvergenceUs,
				c.VictimP999Us, c.VictimRPCs, c.Retx, c.Timeouts, c.Digest, verified)
		}
	}

	b.WriteString("\n### Scheme ranking by goodput\n\n")
	b.WriteString("| topology | workload | hostcc off | hostcc on | ordering changed |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, rank := range r.Rankings {
		changed := "no"
		if rank.OrderingChanged {
			changed = "**yes**"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
			rank.Topology, rank.Workload,
			strings.Join(rank.Off, " > "), strings.Join(rank.On, " > "), changed)
	}
	return b.String()
}

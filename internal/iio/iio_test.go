package iio

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/msr"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// datapath wires NIC -> PCIe -> IIO -> memory controller, the receiver
// half of Figure 1, and feeds it a fixed-rate packet stream.
type datapath struct {
	e         *sim.Engine
	mc        *mem.Controller
	io        *IIO
	link      *pcie.Link
	n         *nic.NIC
	f         *msr.File
	delivered int
}

func newDatapath(t *testing.T, ddioOn bool) *datapath {
	t.Helper()
	e := sim.NewEngine(1)
	mc := mem.NewController(e, mem.DefaultConfig())
	f := msr.NewFile(e)
	var d *cache.DDIO
	if ddioOn {
		d = cache.New(cache.DefaultConfig(), e.Rand())
	}
	dp := &datapath{e: e, mc: mc, f: f}
	dp.io = New(e, DefaultConfig(), mc, d, f, func(p *packet.Packet, _ cache.EntryID, _ bool) {
		dp.delivered++
		dp.n.ReleaseDescriptor()
	})
	dp.link = pcie.NewLink(e, pcie.DefaultConfig(), dp.io.OnTLP)
	dp.io.SetLink(dp.link)
	dp.n = nic.New(e, nic.DefaultConfig(), dp.link, nil)
	return dp
}

// feed injects packets at the given network rate for the given duration.
func (dp *datapath) feed(rate sim.Rate, pktBytes int, dur sim.Time) {
	gap := rate.TimeFor(pktBytes)
	end := dp.e.Now() + dur
	var next func()
	seq := uint64(0)
	next = func() {
		if dp.e.Now() >= end {
			return
		}
		p := &packet.Packet{
			Flow:       packet.FlowID{Src: 1, Dst: 2, SrcPort: 100, DstPort: 5000},
			Seq:        seq,
			PayloadLen: pktBytes - packet.HeaderLen,
		}
		seq += uint64(p.PayloadLen)
		dp.n.Receive(p)
		dp.e.After(gap, next)
	}
	dp.e.After(0, next)
}

// avgOccupancy measures mean IIO occupancy over a window via the ROCC
// counter, exactly as hostCC does (§4.1).
func (dp *datapath) avgOccupancy(window sim.Time) float64 {
	r1, t1 := dp.io.ROCC(), dp.e.Now()
	dp.e.RunUntil(t1 + window)
	r2, t2 := dp.io.ROCC(), dp.e.Now()
	return float64(r2-r1) / ((t2 - t1).Seconds() * msr.FIIOHz)
}

func TestIdleOccupancyMatchesPaper(t *testing.T) {
	// At 100 Gbps with an uncontended memory system, average IIO occupancy
	// should sit near 65 lines (Figure 8a) and PCIe bandwidth near
	// 103 Gbps including TLP overheads.
	dp := newDatapath(t, false)
	dp.feed(sim.Gbps(100), 4096+packet.HeaderLen, 3*sim.Millisecond)
	dp.e.RunUntil(1 * sim.Millisecond) // warm up
	r1, t1 := dp.io.RINS(), dp.e.Now()
	occ := dp.avgOccupancy(1 * sim.Millisecond)
	r2, t2 := dp.io.RINS(), dp.e.Now()
	if occ < 55 || occ > 75 {
		t.Errorf("idle IIO occupancy = %.1f lines, want ~65", occ)
	}
	bs := float64(r2-r1) * 64 * 8 / (t2 - t1).Seconds() / 1e9
	if bs < 98 || bs < 100.0 && bs > 108 || bs > 108 {
		t.Errorf("PCIe bandwidth = %.1f Gbps, want ~103", bs)
	}
	if dp.n.Drops.Total() != 0 {
		t.Errorf("unexpected drops without congestion: %d", dp.n.Drops.Total())
	}
}

func TestIdleOccupancyLowerWithDDIO(t *testing.T) {
	// DDIO shortens ℓm, so idle occupancy drops to ~45 (§5.2).
	dp := newDatapath(t, true)
	dp.feed(sim.Gbps(100), 4096+packet.HeaderLen, 3*sim.Millisecond)
	dp.e.RunUntil(1 * sim.Millisecond)
	occ := dp.avgOccupancy(1 * sim.Millisecond)
	if occ < 35 || occ > 58 {
		t.Errorf("DDIO idle occupancy = %.1f lines, want ~45", occ)
	}
}

func TestCongestionSaturatesOccupancyAndDrops(t *testing.T) {
	// With a 3x MApp hammering the memory controller — plus the CPU copy
	// traffic every delivered packet generates in the full system — the
	// IIO should push toward the credit cap (~93 lines), PCIe bandwidth
	// should fall well below offered load, and the NIC should drop
	// packets (Figure 8b).
	dp := newDatapath(t, false)
	dp.io.out = func(p *packet.Packet, _ cache.EntryID, _ bool) {
		dp.delivered++
		// CPU consumption: ~1.1x of the packet in copies (posted).
		dp.mc.Submit(mem.Request{Size: p.WireLen() * 11 / 10, Class: mem.ClassNetCopy})
		dp.n.ReleaseDescriptor()
	}
	ma := cpu.NewMApp(dp.e, dp.mc, nil, cpu.DefaultMAppConfig(3))
	ma.Start()
	dp.feed(sim.Gbps(100), 4096+packet.HeaderLen, 6*sim.Millisecond)
	dp.e.RunUntil(2 * sim.Millisecond)
	r1, t1 := dp.io.RINS(), dp.e.Now()
	occ := dp.avgOccupancy(3 * sim.Millisecond)
	r2, t2 := dp.io.RINS(), dp.e.Now()
	bs := float64(r2-r1) * 64 * 8 / (t2 - t1).Seconds() / 1e9

	if occ < 75 {
		t.Errorf("congested IIO occupancy = %.1f lines, want near the 93 cap", occ)
	}
	if occ > 93.5 {
		t.Errorf("occupancy %.1f exceeds the credit cap", occ)
	}
	if bs > 85 {
		t.Errorf("congested PCIe bandwidth = %.1f Gbps; should degrade well below 105", bs)
	}
	if dp.n.Drops.Total() == 0 {
		t.Error("expected NIC drops under host congestion")
	}
	t.Logf("congested: occ=%.1f bs=%.1fGbps drops=%d/%d", occ, bs, dp.n.Drops.Total(), dp.n.Arrivals.Total())
}

func TestOccupancyNeverExceedsCreditCap(t *testing.T) {
	dp := newDatapath(t, false)
	ma := cpu.NewMApp(dp.e, dp.mc, nil, cpu.DefaultMAppConfig(3))
	ma.Start()
	dp.feed(sim.Gbps(100), 4096+packet.HeaderLen, 2*sim.Millisecond)
	cap := pcie.DefaultConfig().CreditLines
	for dp.e.Step() {
		if dp.io.Occupancy() > cap {
			t.Fatalf("occupancy %d exceeds credit cap %d", dp.io.Occupancy(), cap)
		}
		if dp.e.Now() > 2*sim.Millisecond {
			break
		}
	}
}

func TestROCCIsCumulativeAndMonotone(t *testing.T) {
	dp := newDatapath(t, false)
	dp.feed(sim.Gbps(50), 4096+packet.HeaderLen, 1*sim.Millisecond)
	var prev uint64
	for i := 0; i < 10; i++ {
		dp.e.RunFor(100 * sim.Microsecond)
		cur := dp.io.ROCC()
		if cur < prev {
			t.Fatalf("ROCC went backwards: %d -> %d", prev, cur)
		}
		prev = cur
	}
	if prev == 0 {
		t.Fatal("ROCC never advanced")
	}
}

func TestMSRRegistration(t *testing.T) {
	dp := newDatapath(t, false)
	if !dp.f.Has(msr.IIOOccupancy) || !dp.f.Has(msr.IIOInsertions) {
		t.Fatal("IIO counters not registered with MSR file")
	}
	dp.feed(sim.Gbps(100), 4096+packet.HeaderLen, 100*sim.Microsecond)
	var rocc uint64
	dp.f.Read(msr.IIOOccupancy, func(v uint64, _ sim.Time, _ error) { rocc = v })
	dp.e.Run()
	if rocc == 0 {
		t.Fatal("MSR read of ROCC returned 0 after traffic")
	}
}

func TestAllPacketsDeliveredWithoutCongestion(t *testing.T) {
	dp := newDatapath(t, false)
	dp.feed(sim.Gbps(80), 4096+packet.HeaderLen, 1*sim.Millisecond)
	dp.e.Run()
	if int64(dp.delivered) != dp.n.Arrivals.Total() {
		t.Fatalf("delivered %d of %d arrivals", dp.delivered, dp.n.Arrivals.Total())
	}
}

func TestDDIOEvictionChargesMemoryBandwidth(t *testing.T) {
	// Force a tiny DDIO pool: every insertion evicts, so eviction class
	// traffic must appear at the memory controller.
	e := sim.NewEngine(1)
	mc := mem.NewController(e, mem.DefaultConfig())
	d := cache.New(cache.Config{CapacityBytes: 8192, PollutionProb: 0}, e.Rand())
	var delivered int
	var n *nic.NIC
	io := New(e, DefaultConfig(), mc, d, nil, func(*packet.Packet, cache.EntryID, bool) {
		delivered++
		n.ReleaseDescriptor()
	})
	link := pcie.NewLink(e, pcie.DefaultConfig(), io.OnTLP)
	io.SetLink(link)
	n = nic.New(e, nic.DefaultConfig(), link, nil)
	mc.MarkAll()
	for i := 0; i < 50; i++ {
		e.After(sim.Time(i)*sim.Microsecond, func() {
			n.Receive(&packet.Packet{PayloadLen: 4096})
		})
	}
	e.Run()
	if delivered != 50 {
		t.Fatalf("delivered %d of 50", delivered)
	}
	if mc.BytesOf(mem.ClassEviction) == 0 {
		t.Fatal("no eviction traffic despite overflowing DDIO pool")
	}
	if got := mc.BytesOf(mem.ClassIIO); got != 0 {
		t.Fatalf("DDIO-on path should not move IIO-class bytes, got %d", got)
	}
}

func TestDeliveryLatencyReasonable(t *testing.T) {
	// One 4KB packet through an idle datapath should reach the CPU in
	// roughly ℓp + serialization + ℓm + write completion ≈ 1-2 µs.
	dp := newDatapath(t, false)
	var at sim.Time
	dp.io.out = func(p *packet.Packet, _ cache.EntryID, _ bool) {
		at = dp.e.Now()
		dp.n.ReleaseDescriptor()
	}
	dp.n.Receive(&packet.Packet{PayloadLen: 4096})
	dp.e.Run()
	if at <= 0 || at > 3*sim.Microsecond {
		t.Fatalf("idle delivery latency = %v, want ~1-2us", at)
	}
	if math.Abs(float64(dp.io.Occupancy())) != 0 {
		t.Fatalf("occupancy %d after drain", dp.io.Occupancy())
	}
}

func TestIOMMUGatePreservesOrderAndDelays(t *testing.T) {
	// With an IOMMU whose IOTLB thrashes, delivery is slower but strictly
	// in order, and IIO occupancy stays low (the §6 blind spot).
	run := func(withIOMMU bool) (sim.Time, float64, []uint64) {
		dp := newDatapath(t, false)
		var seqs []uint64
		dp.io.out = func(p *packet.Packet, _ cache.EntryID, _ bool) {
			seqs = append(seqs, p.Seq)
			dp.n.ReleaseDescriptor()
		}
		if withIOMMU {
			cfg := iommu.DefaultConfig()
			cfg.IOTLBEntries = 8
			cfg.WorkingSetPages = 64
			dp.io.SetIOMMU(iommu.New(dp.e, dp.mc, cfg))
		}
		dp.feed(sim.Gbps(100), 4096+packet.HeaderLen, 500*sim.Microsecond)
		dp.e.RunUntil(400 * sim.Microsecond)
		occ := dp.avgOccupancy(100 * sim.Microsecond)
		dp.e.Run()
		return dp.e.Now(), occ, seqs
	}
	tOff, occOff, seqOff := run(false)
	tOn, occOn, seqOn := run(true)
	if tOn <= tOff {
		t.Fatalf("IOMMU path (%v) should finish later than without (%v)", tOn, tOff)
	}
	if occOn >= occOff {
		t.Fatalf("IIO occupancy with IOMMU (%.1f) should be BELOW without (%.1f): the blind spot", occOn, occOff)
	}
	if len(seqOn) == 0 || len(seqOn) > len(seqOff) {
		t.Fatalf("deliveries: %d with IOMMU vs %d without", len(seqOn), len(seqOff))
	}
	for i := 1; i < len(seqOn); i++ {
		if seqOn[i] <= seqOn[i-1] {
			t.Fatal("IOMMU gate reordered deliveries")
		}
	}
}

func TestROCCAverageFormulaMatchesHostCCComputation(t *testing.T) {
	// The ROCC counter must satisfy the paper's formula:
	// IS = (ROCC(t2)-ROCC(t1)) / ((t2-t1) * F_IIO) — verify against a
	// known occupancy square wave.
	dp := newDatapath(t, false)
	e := dp.e
	// Hold occupancy at 10 lines for 1us, then 30 lines for 3us, via the
	// internal setter (white-box).
	e.At(0, func() { dp.io.setOcc(10) })
	e.At(1000, func() { dp.io.setOcc(30) })
	e.At(4000, func() { dp.io.setOcc(0) })
	e.RunUntil(4000)
	r2 := dp.io.ROCC()
	// Integral: 10*1000 + 30*3000 = 100000 line-ns -> /2ns ticks = 50000.
	if r2 != 50000 {
		t.Fatalf("ROCC = %d, want 50000", r2)
	}
	avg := float64(r2) / ((4 * sim.Microsecond).Seconds() * msr.FIIOHz)
	if math.Abs(avg-25) > 1e-9 {
		t.Fatalf("average occupancy = %v, want 25", avg)
	}
}

// Package iio models the Integrated IO controller: the other end of the
// PCIe interconnect, which turns arriving TLPs into memory-system writes
// and replenishes PCIe credits as those writes are issued (§2.1).
//
// The IIO is where hostCC's congestion signal lives: buffer occupancy
// rises immediately — and only — when the memory controller is congested,
// giving accurate time, location and reason (§3.1). The IIO maintains the
// two hardware counters hostCC samples:
//
//   - ROCC: cumulative occupancy, incremented once per IIO clock tick
//     (500 MHz), so (ΔROCC)/(Δt·F_IIO) is average occupancy, and
//   - RINS: cumulative line insertions, so ΔRINS·64B/Δt is PCIe bandwidth.
package iio

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/msr"
	"repro/internal/packet"
	"repro/internal/pcie"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Config parameterizes the IIO.
type Config struct {
	// PipelineLatency is the fixed IIO processing + transfer time before
	// a buffered write is issued to the memory controller. With an idle
	// memory controller this is the whole of ℓm (residence in the IIO
	// buffer), putting idle IIO occupancy at R×ℓm ≈ 65 lines for a
	// ~103 Gbps PCIe stream (§3.1, Figure 8a). Memory congestion adds
	// write-queue admission delay on top — that is how occupancy climbs
	// toward the credit cap in Figure 8b.
	PipelineLatency sim.Time
}

// DefaultConfig returns the paper-calibrated IIO.
func DefaultConfig() Config {
	return Config{PipelineLatency: 290 * sim.Nanosecond}
}

// Delivery is invoked once a packet's last write has completed and the
// packet is visible to the CPU; the host wires it to the RX core pool.
type Delivery func(pkt *packet.Packet, entry cache.EntryID, hasEntry bool)

// IIO is the integrated IO controller of one host.
type IIO struct {
	e    *sim.Engine
	cfg  Config
	mc   *mem.Controller
	ddio *cache.DDIO // nil = DDIO disabled
	link *pcie.Link
	out  Delivery

	occLines int
	occ      stats.TimeWeighted
	rins     uint64

	// Telemetry (nil when disabled): per-packet DMA+memory residence
	// spans and the on-change IIO occupancy track — the paper's
	// congestion signal, as a Perfetto counter timeline.
	tr    *telemetry.Tracer
	trOcc *telemetry.Track

	// Optional IOMMU on the DMA path: writes are gated on address
	// translation, which happens *before* the transaction enters the IIO
	// buffer — the blind spot §6 discusses (IOMMU congestion does not
	// show up in IIO occupancy).
	mmu      *iommu.IOMMU
	gateBusy bool
	pending  ring.Queue[*pcie.TLP]

	// Handler-table plumbing (see DESIGN.md "Performance"): releaseH
	// replenishes credits when a write is admitted; submitH issues the
	// buffered write after the pipeline latency; deliverH hands a finished
	// packet to the CPU; ddioDoneH/ddioGateH drive the DDIO write path.
	releaseH  sim.HandlerID
	submitH   sim.HandlerID
	deliverH  sim.HandlerID
	ddioDoneH sim.HandlerID
	ddioGateH sim.HandlerID
	reqs      sim.Slots[mem.Request]
	delivs    sim.Slots[delivery]
	ddioOps   sim.Slots[ddioOp]

	// Per-packet DMA state; TLPs of a packet arrive in order from the
	// single DMA engine, so only the in-progress packet needs state.
	curPkt      *packet.Packet
	curEntry    cache.EntryID
	curHasEntry bool
	evictGate   bool // first write must wait for an eviction's admission
	evictBytes  int
}

// New creates the IIO and registers its counters with the MSR file.
func New(e *sim.Engine, cfg Config, mc *mem.Controller, ddio *cache.DDIO, f *msr.File, out Delivery) *IIO {
	if mc == nil {
		panic("iio: nil memory controller")
	}
	if out == nil {
		panic("iio: nil delivery")
	}
	io := &IIO{e: e, cfg: cfg, mc: mc, ddio: ddio, out: out}
	io.releaseH = e.Handler(io.release)
	io.submitH = e.Handler(io.submit)
	io.deliverH = e.Handler(io.deliverDone)
	io.ddioDoneH = e.Handler(io.ddioDone)
	io.ddioGateH = e.Handler(io.ddioGateOpen)
	if f != nil {
		f.RegisterReader(msr.IIOOccupancy, io.ROCC)
		f.RegisterReader(msr.IIOInsertions, io.RINS)
	}
	return io
}

// SetLink attaches the PCIe link whose credits this IIO replenishes (the
// link is constructed after the IIO because it delivers into it).
func (io *IIO) SetLink(l *pcie.Link) { io.link = l }

// SetIOMMU enables DMA address translation in front of the IIO buffer.
func (io *IIO) SetIOMMU(u *iommu.IOMMU) { io.mmu = u }

// SetTracer attaches packet spans plus the occupancy counter track,
// named under prefix.
func (io *IIO) SetTracer(t *telemetry.Tracer, prefix string) {
	io.tr = t
	io.trOcc = t.NewTrack(prefix+"/iio/occupancy", "lines")
	io.trOcc.Set(io.e.Now(), float64(io.occLines))
}

// RegisterInstruments registers the IIO's metrics under prefix.
func (io *IIO) RegisterInstruments(reg *telemetry.Registry, prefix string) {
	reg.Gauge(prefix+"/iio/occupancy", "lines", "instantaneous buffer occupancy",
		func() float64 { return float64(io.occLines) })
	reg.Counter(prefix+"/iio/rocc", "line-ticks", "cumulative occupancy counter (ROCC)",
		func() float64 { return float64(io.ROCC()) })
	reg.Counter(prefix+"/iio/rins", "lines", "cumulative line insertions (RINS)",
		func() float64 { return float64(io.rins) })
}

// delivery is the state needed to hand a finished packet to the CPU.
type delivery struct {
	pkt      *packet.Packet
	entry    cache.EntryID
	hasEntry bool
}

// ddioOp is one in-flight DDIO write (credit lines plus delivery state).
type ddioOp struct {
	lines int
	last  bool
	d     delivery
}

// release is the write-admission handler: return lines (arg0) of IIO
// buffer space and PCIe credits.
func (io *IIO) release(lines, _ uint64) {
	io.setOcc(io.occLines - int(lines))
	io.link.ReleaseCredits(int(lines))
}

// submit issues a buffered write to the memory controller; arg0 is the
// request's slot.
func (io *IIO) submit(slot, _ uint64) {
	io.mc.Submit(io.reqs.Take(slot))
}

// deliverDone fires on a packet's final write completion; arg0 is the
// delivery slot.
func (io *IIO) deliverDone(slot, _ uint64) {
	d := io.delivs.Take(slot)
	io.tr.PacketSpanEnd(telemetry.HopIIOMem, d.pkt, io.e.Now(), "dram-write")
	io.out(d.pkt, d.entry, d.hasEntry)
}

// OnTLP receives one TLP from the PCIe link. With an IOMMU attached, the
// TLP first clears address translation (holding its PCIe credits but not
// yet counting as IIO occupancy); TLPs arriving mid-translation queue in
// order behind it.
func (io *IIO) OnTLP(t *pcie.TLP) {
	if io.gateBusy {
		io.pending.Push(t)
		return
	}
	io.admit(t)
}

// admit runs the translation gate for packet-leading TLPs, then processes.
func (io *IIO) admit(t *pcie.TLP) {
	if t.First && io.mmu != nil {
		io.gateBusy = true
		pages := (t.Pkt.WireLen() + io.mmu.Config().PageBytes - 1) / io.mmu.Config().PageBytes
		io.translatePages(pages, func() {
			io.gateBusy = false
			io.processTLP(t)
			io.drainPending()
		})
		return
	}
	io.processTLP(t)
}

// translatePages resolves n buffer pages sequentially.
func (io *IIO) translatePages(n int, done func()) {
	if n == 0 {
		done()
		return
	}
	io.mmu.Translate(io.mmu.NextBufferPage(), func() {
		io.translatePages(n-1, done)
	})
}

func (io *IIO) drainPending() {
	for io.pending.Len() > 0 && !io.gateBusy {
		io.admit(io.pending.Pop())
	}
}

// processTLP performs the IIO's buffer and write-path work for one TLP.
func (io *IIO) processTLP(t *pcie.TLP) {
	io.rins += uint64(t.Lines)
	io.setOcc(io.occLines + t.Lines)

	if t.First {
		io.tr.PacketSpanBegin(telemetry.HopIIOMem, t.Pkt, io.e.Now())
		io.startPacket(t.Pkt)
	}

	if io.ddio != nil && io.curHasEntry {
		io.ddioWrite(t)
		return
	}

	// DDIO disabled — or the packet's lines were evicted on insertion
	// (LLC pollution / oversize), in which case they are DRAM-bound and
	// take the same memory-controller path, charged as eviction traffic.
	// The IIO pipeline adds fixed latency before the write is issued; the
	// credit is replenished when the write is admitted to the controller
	// queue (§2.1 step 4); the packet is delivered to the CPU when its
	// final write completes.
	class := mem.ClassIIO
	if io.ddio != nil {
		class = mem.ClassEviction
	}
	req := mem.Request{
		Size:    t.DataBytes,
		Class:   class,
		AdmitCB: sim.Callback{ID: io.releaseH, Arg0: uint64(t.Lines)},
	}
	if t.Last {
		req.CompleteCB = sim.Callback{
			ID:   io.deliverH,
			Arg0: io.delivs.Put(delivery{pkt: t.Pkt, entry: io.curEntry, hasEntry: io.curHasEntry}),
		}
	}
	io.link.ReleaseTLP(t) // all fields consumed; recycle the transaction
	io.e.ScheduleAfter(io.cfg.PipelineLatency, io.submitH, io.reqs.Put(req), 0)
}

// startPacket sets up DDIO bookkeeping for a new packet's DMA.
func (io *IIO) startPacket(p *packet.Packet) {
	io.curPkt = p
	io.curHasEntry = false
	io.evictGate = false
	io.evictBytes = 0
	if io.ddio == nil {
		return
	}
	entry, evs := io.ddio.Insert(p.WireLen())
	io.curEntry = entry
	io.curHasEntry = true
	for _, ev := range evs {
		io.evictBytes += ev.Bytes
		if ev.Owner == entry {
			// The new entry itself was evicted (pollution or oversize):
			// the CPU will take the DRAM path for this packet.
			io.curHasEntry = false
		}
	}
	io.evictGate = io.evictBytes > 0
}

// ddioWrite handles the DDIO-enabled write path for one TLP: LLC writes
// are fast and bypass the memory controller unless an eviction must first
// make room — in which case the write (and its credit) waits for the
// eviction to be admitted, and the eviction burns memory write bandwidth
// (§2.1). Under memory congestion this is the mechanism that drags the
// DDIO-enabled case back to DDIO-disabled behaviour.
func (io *IIO) ddioWrite(t *pcie.TLP) {
	// Capture the packet's cache state now: by the time the deferred
	// write completes, the next packet's DMA may already have begun.
	if t.Pkt != io.curPkt {
		panic("iio: TLP arrived out of packet order")
	}
	op := ddioOp{
		lines: t.Lines,
		last:  t.Last,
		d:     delivery{pkt: t.Pkt, entry: io.curEntry, hasEntry: io.curHasEntry},
	}
	first, evictGate, evictBytes := t.First, io.evictGate, io.evictBytes
	io.link.ReleaseTLP(t) // all fields consumed; recycle the transaction
	slot := io.ddioOps.Put(op)
	if first && evictGate {
		io.mc.Submit(mem.Request{
			Size:    evictBytes,
			Class:   mem.ClassEviction,
			AdmitCB: sim.Callback{ID: io.ddioGateH, Arg0: slot},
		})
		return
	}
	io.ddioGateOpen(slot, 0)
}

// ddioGateOpen starts the LLC write once any gating eviction has been
// admitted; arg0 is the ddioOp slot.
func (io *IIO) ddioGateOpen(slot, _ uint64) {
	io.e.ScheduleAfter(cache.WriteLatency, io.ddioDoneH, slot, 0)
}

// ddioDone fires when the LLC write finishes; arg0 is the ddioOp slot.
func (io *IIO) ddioDone(slot, _ uint64) {
	op := io.ddioOps.Take(slot)
	io.setOcc(io.occLines - op.lines)
	io.link.ReleaseCredits(op.lines)
	if op.last {
		io.tr.PacketSpanEnd(telemetry.HopIIOMem, op.d.pkt, io.e.Now(), "llc-write")
		io.out(op.d.pkt, op.d.entry, op.d.hasEntry)
	}
}

func (io *IIO) setOcc(lines int) {
	if lines < 0 {
		panic("iio: negative occupancy")
	}
	io.occLines = lines
	io.occ.Set(io.e.Now(), float64(lines))
	io.trOcc.Set(io.e.Now(), float64(lines))
}

// Occupancy returns the instantaneous buffer occupancy in lines.
func (io *IIO) Occupancy() int { return io.occLines }

// ROCC returns the cumulative occupancy counter: the integral of
// occupancy sampled at the IIO clock (one count per occupied line per
// 2 ns tick).
func (io *IIO) ROCC() uint64 {
	return uint64(io.occ.Integral(io.e.Now()) / msr.TickNanos)
}

// RINS returns the cumulative line-insertion counter.
func (io *IIO) RINS() uint64 { return io.rins }

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	if c.PipelineLatency < 0 {
		return fmt.Errorf("iio: negative PipelineLatency %v", c.PipelineLatency)
	}
	return nil
}

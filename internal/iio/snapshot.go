package iio

import (
	"repro/internal/cache"
	"repro/internal/snapshot"
)

// Snapshot encodes the IIO's buffer and per-packet DMA state. The pending
// TLP queue (IOMMU gate) is encoded by length and line counts — digest
// coverage — and replay-reconstructed on resume.
func (io *IIO) Snapshot(e *snapshot.Encoder) {
	e.Int(io.occLines)
	io.occ.Snapshot(e)
	e.U64(io.rins)
	e.Bool(io.gateBusy)
	e.U32(uint32(io.pending.Len()))
	for i := 0; i < io.pending.Len(); i++ {
		t := io.pending.At(i)
		e.Int(t.Lines)
	}
	e.Bool(io.curPkt != nil)
	e.U64(uint64(io.curEntry))
	e.Bool(io.curHasEntry)
	e.Bool(io.evictGate)
	e.Int(io.evictBytes)
}

// Restore reverses Snapshot for the scalar state.
func (io *IIO) Restore(d *snapshot.Decoder) error {
	io.occLines = d.Int()
	if err := io.occ.Restore(d); err != nil {
		return err
	}
	io.rins = d.U64()
	io.gateBusy = d.Bool()
	np := int(d.U32())
	for i := 0; i < np && d.Err() == nil; i++ {
		_ = d.Int() // pending TLP lines: digest-only
	}
	_ = d.Bool() // in-progress packet presence: digest-only
	io.curEntry = cache.EntryID(d.U64())
	io.curHasEntry = d.Bool()
	io.evictGate = d.Bool()
	io.evictBytes = d.Int()
	return d.Err()
}

// Package msr models the model-specific-register interface through which
// hostCC observes the host (§4.1). Hardware counters — IIO occupancy
// (ROCC) and IIO insertions (RINS) — are exposed as cumulative registers;
// reading one costs ~600 ns, reading the TSC costs ~2 ns. Crucially, MSR
// reads execute on the processor interconnect, outside the NIC-to-memory
// datapath, so their latency is independent of host congestion — the
// property Figure 7 demonstrates and the reason IIO occupancy is usable
// as a congestion signal at all.
package msr

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrReadFailed is reported by Read when the register access itself fails
// (on real hardware: a GP fault from rdmsr, a hung PECI transaction, or an
// uncore counter that stopped responding). Callers must distinguish a
// failed read from a merely slow one: a slow read still carries a valid
// counter snapshot, a failed read carries nothing.
var ErrReadFailed = errors.New("msr: register read failed")

// Address identifies a model-specific register.
type Address uint32

// Registers modeled in this reproduction.
const (
	// IIOOccupancy (ROCC) accumulates IIO buffer occupancy once per IIO
	// clock tick; average occupancy over [t1,t2] is
	// (ROCC(t2)-ROCC(t1)) / ((t2-t1) * F_IIO).
	IIOOccupancy Address = 0x0C00
	// IIOInsertions (RINS) counts cachelines inserted into the IIO; the
	// insertion rate times the cacheline size is PCIe bandwidth.
	IIOInsertions Address = 0x0C01
	// MBAThrottle selects the MBA throttle level for the MApp
	// class-of-service (see internal/cpu; writes take ~22 µs).
	MBAThrottle Address = 0x0D50
)

// FIIOHz is the IIO clock frequency (500 MHz on the paper's servers).
const FIIOHz = 500e6

// TickNanos is the IIO clock period in nanoseconds.
const TickNanos = 2

// Latency model constants for register access (§4.1).
const (
	TSCReadLatency  = 2 * sim.Nanosecond
	readLatencyBase = 450 * sim.Nanosecond
	readLatencyMean = 130 * sim.Nanosecond // exponential tail above base
	readLatencyMax  = 1200 * sim.Nanosecond
)

// ReadFault perturbs one register read (fault injection). The zero value
// is a healthy read.
type ReadFault struct {
	// ExtraLatency is added to the modeled read latency (interconnect
	// contention spike, SMI storm).
	ExtraLatency sim.Time
	// Stale makes the read return the value of the previous successful
	// read of the same register instead of a fresh snapshot (a counter
	// that stopped counting, or a cached PECI response).
	Stale bool
	// Fail makes the read complete with ErrReadFailed and no value.
	Fail bool
}

// File is the register file: a set of addressed counters with modeled
// access latency.
type File struct {
	e       *sim.Engine
	readers map[Address]func() uint64
	writers map[Address]writer

	// readFault, when set, is consulted on every Read (fault injection;
	// see internal/faults). It must be deterministic given engine state.
	readFault func(Address) ReadFault
	lastRead  map[Address]uint64 // last successfully returned values

	// FailedReads counts reads that completed with ErrReadFailed.
	FailedReads int64
	// StaleReads counts reads that returned a stale snapshot.
	StaleReads int64
}

type writer struct {
	latency sim.Time
	fn      func(uint64)
}

// NewFile returns an empty register file.
func NewFile(e *sim.Engine) *File {
	return &File{
		e:        e,
		readers:  make(map[Address]func() uint64),
		writers:  make(map[Address]writer),
		lastRead: make(map[Address]uint64),
	}
}

// SetReadFault installs the read-fault hook (nil removes it). The hook is
// invoked once per Read, before the read is scheduled.
func (f *File) SetReadFault(fn func(Address) ReadFault) { f.readFault = fn }

// RegisterReader attaches a counter provider to an address.
func (f *File) RegisterReader(addr Address, fn func() uint64) {
	if _, dup := f.readers[addr]; dup {
		panic(fmt.Sprintf("msr: duplicate reader for %#x", uint32(addr)))
	}
	f.readers[addr] = fn
}

// RegisterWriter attaches a write handler with a given write latency.
func (f *File) RegisterWriter(addr Address, latency sim.Time, fn func(uint64)) {
	if _, dup := f.writers[addr]; dup {
		panic(fmt.Sprintf("msr: duplicate writer for %#x", uint32(addr)))
	}
	f.writers[addr] = writer{latency: latency, fn: fn}
}

// readLatency draws one MSR read latency. The distribution is a base plus
// an exponential tail, matching the ~0.45–1.2 µs range of Figure 7, and
// does not depend on any datapath state.
func (f *File) readLatency() sim.Time {
	lat := readLatencyBase + sim.Time(f.e.Rand().ExpFloat64()*float64(readLatencyMean))
	if lat > readLatencyMax {
		lat = readLatencyMax
	}
	return lat
}

// Read samples the register and invokes done with the value and the read's
// modeled latency once the read retires. The value is captured at retire
// time (the counter keeps counting while the read executes). err is nil
// for a healthy read and ErrReadFailed when the access itself failed — a
// failed read carries no value and callers must not fold val into any
// signal state.
func (f *File) Read(addr Address, done func(val uint64, lat sim.Time, err error)) {
	fn, ok := f.readers[addr]
	if !ok {
		panic(fmt.Sprintf("msr: read of unregistered register %#x", uint32(addr)))
	}
	var fault ReadFault
	if f.readFault != nil {
		fault = f.readFault(addr)
	}
	lat := f.readLatency() + fault.ExtraLatency
	f.e.After(lat, func() {
		switch {
		case fault.Fail:
			f.FailedReads++
			done(0, lat, ErrReadFailed)
		case fault.Stale:
			f.StaleReads++
			done(f.lastRead[addr], lat, nil)
		default:
			v := fn()
			f.lastRead[addr] = v
			done(v, lat, nil)
		}
	})
}

// Write stores val to the register, invoking done (optional) when the
// write retires. MBA writes take ~22 µs (§4.2); ordinary MSR writes <1 µs.
func (f *File) Write(addr Address, val uint64, done func()) {
	w, ok := f.writers[addr]
	if !ok {
		panic(fmt.Sprintf("msr: write to unregistered register %#x", uint32(addr)))
	}
	f.e.After(w.latency, func() {
		w.fn(val)
		if done != nil {
			done()
		}
	})
}

// ReadTSC returns the current timestamp counter as simulated time. The
// ~2 ns cost is negligible and not modeled as an event; callers sampling
// at sub-µs granularity account for it via the MSR read latency instead.
func (f *File) ReadTSC() sim.Time { return f.e.Now() }

// Has reports whether a reader is registered at addr.
func (f *File) Has(addr Address) bool {
	_, ok := f.readers[addr]
	return ok
}

package msr

import (
	"sort"

	"repro/internal/snapshot"
)

// Snapshot encodes the register file's read-side state. The lastRead map
// is walked in sorted address order for determinism.
func (f *File) Snapshot(e *snapshot.Encoder) {
	addrs := make([]Address, 0, len(f.lastRead))
	for a := range f.lastRead {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	e.U32(uint32(len(addrs)))
	for _, a := range addrs {
		e.U32(uint32(a))
		e.U64(f.lastRead[a])
	}
	e.I64(f.FailedReads)
	e.I64(f.StaleReads)
}

// Restore reverses Snapshot.
func (f *File) Restore(d *snapshot.Decoder) error {
	n := int(d.U32())
	f.lastRead = make(map[Address]uint64, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		a := Address(d.U32())
		f.lastRead[a] = d.U64()
	}
	f.FailedReads = d.I64()
	f.StaleReads = d.I64()
	return d.Err()
}

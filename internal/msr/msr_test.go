package msr

import (
	"testing"

	"repro/internal/sim"
)

func TestReadReturnsCounterValueAtRetire(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFile(e)
	counter := uint64(10)
	f.RegisterReader(IIOOccupancy, func() uint64 { return counter })
	// Counter advances while the read is in flight; the read must observe
	// the retire-time value.
	e.At(100, func() { counter = 99 })
	var got uint64
	var lat sim.Time
	f.Read(IIOOccupancy, func(v uint64, l sim.Time, _ error) { got, lat = v, l })
	e.Run()
	if got != 99 {
		t.Fatalf("read value = %d, want retire-time 99", got)
	}
	if lat < readLatencyBase || lat > readLatencyMax {
		t.Fatalf("latency %v outside [%v, %v]", lat, readLatencyBase, readLatencyMax)
	}
}

func TestReadLatencyDistribution(t *testing.T) {
	e := sim.NewEngine(7)
	f := NewFile(e)
	f.RegisterReader(IIOInsertions, func() uint64 { return 0 })
	var lats []sim.Time
	var issue func()
	issue = func() {
		f.Read(IIOInsertions, func(_ uint64, l sim.Time, _ error) {
			lats = append(lats, l)
			if len(lats) < 2000 {
				issue()
			}
		})
	}
	issue()
	e.Run()
	var sum sim.Time
	for _, l := range lats {
		if l < readLatencyBase || l > readLatencyMax {
			t.Fatalf("latency %v out of range", l)
		}
		sum += l
	}
	mean := float64(sum) / float64(len(lats))
	// Mean should be near base + tail mean (~580ns), clipped slightly.
	if mean < 500 || mean > 680 {
		t.Fatalf("mean read latency = %.0fns, want ~580ns", mean)
	}
}

func TestWriteLatencyAndValue(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFile(e)
	var applied uint64
	var appliedAt sim.Time
	f.RegisterWriter(MBAThrottle, 22*sim.Microsecond, func(v uint64) {
		applied = v
		appliedAt = e.Now()
	})
	doneAt := sim.Time(-1)
	f.Write(MBAThrottle, 3, func() { doneAt = e.Now() })
	e.Run()
	if applied != 3 {
		t.Fatalf("applied = %d", applied)
	}
	if appliedAt != 22*sim.Microsecond || doneAt != appliedAt {
		t.Fatalf("applied at %v, done at %v, want 22us", appliedAt, doneAt)
	}
}

func TestUnregisteredAccessPanics(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFile(e)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("read of unregistered register did not panic")
			}
		}()
		f.Read(Address(0xFFFF), func(uint64, sim.Time, error) {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("write to unregistered register did not panic")
			}
		}()
		f.Write(Address(0xFFFF), 0, nil)
	}()
	f.RegisterReader(IIOOccupancy, func() uint64 { return 0 })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate reader registration did not panic")
			}
		}()
		f.RegisterReader(IIOOccupancy, func() uint64 { return 0 })
	}()
}

func TestTSCAndHas(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFile(e)
	e.At(12345, func() {
		if f.ReadTSC() != 12345 {
			t.Errorf("TSC = %v", f.ReadTSC())
		}
	})
	e.Run()
	if f.Has(IIOOccupancy) {
		t.Error("Has reported unregistered register")
	}
	f.RegisterReader(IIOOccupancy, func() uint64 { return 0 })
	if !f.Has(IIOOccupancy) {
		t.Error("Has missed registered register")
	}
}

package fabric

import "repro/internal/sim"

// FluidTap couples one packet-tier capacity — a serializing Link or a
// switch output port — to the fluid-flow tier. Conservation at the seam
// works in both directions through it:
//
//   - The fluid integrator reads the packet tier's offered load
//     (TakePacketBytes, reset per tick) and folds it into the resource's
//     demand, so fluid flows back off when packet flows burst.
//   - The integrator writes back the fluid background (SetBackground):
//     the fluid rate is debited from the serializer — packets see the
//     residual capacity — and the fluid queue share joins the port's
//     instantaneous queue depth in the ECN-mark and INT-stamp views, so
//     packet flows see the congestion the background causes.
//
// A tap is inert until SetBackground installs a non-zero rate or queue:
// with both zero the serializer and marking arithmetic is bit-identical
// to an untapped port, which is what keeps fluid-off golden digests
// byte-identical. Tap state is transient per tick and derived from the
// fluid network's snapshotted state, so it is not separately encoded.
type FluidTap struct {
	capacity sim.Rate
	floor    sim.Rate // capacity the packet tier always keeps
	rate     sim.Rate // fluid background demand currently debited
	qBytes   int      // fluid queue share seen by ECN/INT
	pktBytes int64    // packet bytes offered since the last take
	pktQueue func() int
}

// fluidFloorDiv sets the capacity floor reserved for the packet tier:
// even a saturating fluid background leaves 1/fluidFloorDiv of the line
// rate to packets, so promoted foreground flows can always make
// progress (the fluid model sees their bytes as demand and backs off).
const fluidFloorDiv = 10

func newFluidTap(capacity sim.Rate, pktQueue func() int) *FluidTap {
	floor := capacity / fluidFloorDiv
	if floor <= 0 {
		floor = 1
	}
	return &FluidTap{capacity: capacity, floor: floor, pktQueue: pktQueue}
}

// Capacity returns the tapped serializer's line rate.
func (t *FluidTap) Capacity() sim.Rate { return t.capacity }

// TakePacketBytes returns the packet bytes offered to the tapped
// serializer since the previous call, and resets the counter. The fluid
// integrator calls it once per coarse tick.
func (t *FluidTap) TakePacketBytes() int64 {
	n := t.pktBytes
	t.pktBytes = 0
	return n
}

// PacketQueueBytes returns the tapped port's instantaneous packet queue
// depth (zero for plain links, which queue in the NIC).
func (t *FluidTap) PacketQueueBytes() int {
	if t.pktQueue == nil {
		return 0
	}
	return t.pktQueue()
}

// SetBackground installs the fluid background demand: rate is debited
// from the serializer, qBytes joins the ECN/INT queue view.
func (t *FluidTap) SetBackground(rate sim.Rate, qBytes int) {
	if rate < 0 {
		rate = 0
	}
	if qBytes < 0 {
		qBytes = 0
	}
	t.rate = rate
	t.qBytes = qBytes
}

// effRate is the capacity left to the packet tier.
func (t *FluidTap) effRate() sim.Rate {
	eff := t.capacity - t.rate
	if eff < t.floor {
		eff = t.floor
	}
	return eff
}

// FluidTap attaches (or returns) the link's fluid seam. Use for links
// that serialize in Send — host uplinks; switch downlinks and trunks
// serialize in their output port, tap those via Switch.FluidTap.
func (l *Link) FluidTap() *FluidTap {
	if l.fluid == nil {
		l.fluid = newFluidTap(l.cfg.Rate, nil)
	}
	return l.fluid
}

// HostFluidTaps returns host i's access seams: the up link (which
// serializes in Link.Send, driven by the NIC) and the switch output
// port toward the host (which serializes the down direction). i indexes
// the build's hosts slice.
func (f *Fabric) HostFluidTaps(i int) (up, down *FluidTap) {
	ref := f.hostPorts[i]
	return f.Access[2*i].FluidTap(), ref.sw.FluidTap(ref.port)
}

// FluidTap attaches (or returns) the fluid seam of output port p.
func (s *Switch) FluidTap(p PortID) *FluidTap {
	o := s.ports[p]
	if o.fluid == nil {
		o.fluid = newFluidTap(o.link.cfg.Rate, func() int { return o.qBytes })
	}
	return o.fluid
}

// Package fabric models the network between hosts: rate/latency links and
// an output-queued switch with drop-tail buffering and ECN marking. This
// is the "classical" congestion point; hostCC's claim is that congestion
// signals must also come from inside the host, and Figure 13 exercises
// both points at once.
package fabric

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// LinkConfig parameterizes one unidirectional link.
type LinkConfig struct {
	Rate  sim.Rate // serialization rate
	Delay sim.Time // propagation delay
	// LossProb drops each packet independently with this probability
	// (failure injection: corrupted frames / FCS errors). Zero for the
	// lossless datacenter links of the evaluation.
	LossProb float64
}

// DefaultLinkConfig returns a 100 Gbps link with propagation chosen so the
// end-to-end base RTT lands near the paper's ~44 µs (the MBA write of
// 22 µs is "2x smaller than our network RTT", §4.2).
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{Rate: sim.Gbps(100), Delay: 9 * sim.Microsecond}
}

// Link is a serializing link (lossless unless LossProb is set).
type Link struct {
	e         *sim.Engine
	cfg       LinkConfig
	busyUntil sim.Time
	deliver   func(*packet.Packet)
	down      bool // fault injection: link flapped down

	// deliverH + inflight carry packets through propagation-delay events
	// without per-packet closures; pool (optional) receives packets the
	// link loses to injected faults.
	deliverH sim.HandlerID
	inflight sim.Slots[*packet.Packet]
	pool     *packet.Pool

	// bnd, when set (BindBoundary), carries delivered packets across a
	// shard boundary instead of scheduling on the local engine: the link
	// is then a trunk between shards and its propagation delay is the
	// boundary's lookahead contribution. Serialization, loss rolls and
	// counters stay on the owning (transmitting) shard.
	bnd *sim.Boundary

	// fluid, when set (FluidTap), couples the link to the fluid-flow
	// tier: the background rate is debited from the serializer and the
	// packet bytes offered are counted for the fluid integrator. Nil —
	// the common case — leaves Send's arithmetic untouched.
	fluid *FluidTap

	Bytes stats.Meter
	// Corrupted counts packets dropped by injected wire loss.
	Corrupted stats.Counter
	// FlapDrops counts packets lost while the link was flapped down.
	FlapDrops stats.Counter
}

// NewLink creates a link delivering packets via deliver.
func NewLink(e *sim.Engine, cfg LinkConfig, deliver func(*packet.Packet)) *Link {
	if cfg.Rate <= 0 {
		panic("fabric: non-positive link rate")
	}
	if deliver == nil {
		panic("fabric: nil deliver")
	}
	l := &Link{e: e, cfg: cfg, deliver: deliver}
	l.deliverH = e.Handler(l.deliverEvent)
	return l
}

// SetPool directs packets lost by the link back to pool (nil disables
// recycling).
func (l *Link) SetPool(pool *packet.Pool) { l.pool = pool }

// BindBoundary makes the link a shard boundary from src to dst in g:
// delivery crosses the boundary at the packet's normal arrival time and
// the link's propagation delay is exported as the boundary's lookahead.
// The link's deliver function then runs on the destination shard.
func (l *Link) BindBoundary(g *sim.ShardGroup, src, dst int) {
	if l.bnd != nil {
		panic("fabric: link already bound to a boundary")
	}
	l.bnd = g.Connect(src, dst, l.cfg.Delay, func(_, _ uint64, payload any) {
		l.deliver(payload.(*packet.Packet))
	})
}

// deliverEvent fires when a packet finishes propagating; arg0 is its slot.
func (l *Link) deliverEvent(slot, _ uint64) {
	l.deliver(l.inflight.Take(slot))
}

// Send serializes and propagates one packet. Queueing happens in the
// switch (output queues) or the NIC; the link itself drops only under
// injected wire loss.
func (l *Link) Send(p *packet.Packet) {
	start := max(l.e.Now(), l.busyUntil)
	var done sim.Time
	if l.fluid != nil {
		l.fluid.pktBytes += int64(p.WireLen())
		done = start + l.fluid.effRate().TimeFor(p.WireLen())
	} else {
		done = start + l.cfg.Rate.TimeFor(p.WireLen())
	}
	l.busyUntil = done
	l.Bytes.Add(int64(p.WireLen()))
	if l.lost() {
		l.pool.Put(p)
		return // serialized, then discarded by the receiver's FCS check
	}
	if l.bnd != nil {
		l.bnd.Send(done+l.cfg.Delay, 0, 0, p)
		return
	}
	l.e.Schedule(done+l.cfg.Delay, l.deliverH, l.inflight.Put(p), 0)
}

func (l *Link) lost() bool {
	if l.down {
		l.FlapDrops.Inc()
		return true
	}
	if l.cfg.LossProb > 0 && l.e.Rand().Float64() < l.cfg.LossProb {
		l.Corrupted.Inc()
		return true
	}
	return false
}

// SetDown flaps the link (fault injection): while down, every packet
// handed to the link is lost — the signal is gone, so frames in flight at
// flap time are lost by the receiver's loss-of-signal squelch too, which
// this model folds into the send-time check. Flapping affects only loss,
// not serialization state.
func (l *Link) SetDown(down bool) { l.down = down }

// IsDown reports whether the link is flapped down.
func (l *Link) IsDown() bool { return l.down }

// RegisterInstruments registers the link's metrics under prefix.
func (l *Link) RegisterInstruments(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/bytes", "bytes", "bytes serialized onto the link",
		func() float64 { return float64(l.Bytes.Total()) })
	reg.Counter(prefix+"/corrupted", "pkts", "packets dropped by injected wire loss",
		func() float64 { return float64(l.Corrupted.Total()) })
	reg.Counter(prefix+"/flap-drops", "pkts", "packets lost while the link was flapped down",
		func() float64 { return float64(l.FlapDrops.Total()) })
}

// QueuedTime reports how long a packet sent now would wait to serialize.
func (l *Link) QueuedTime() sim.Time {
	d := l.busyUntil - l.e.Now()
	if d < 0 {
		return 0
	}
	return d
}

// SwitchConfig parameterizes the switch.
type SwitchConfig struct {
	// PortBufferBytes is the per-output-port buffer (drop-tail).
	PortBufferBytes int
	// ECNThresholdBytes is the instantaneous queue depth above which
	// ECN-capable packets are marked CE (DCTCP-style marking, K).
	ECNThresholdBytes int
	// PFC enables priority flow control (lossless mode): per-ingress
	// occupancy accounting with XOFF/XON pause thresholds instead of
	// drop-tail for PFC-tracked ingresses. See PFCConfig.
	PFC PFCConfig
	// INTBaseRTT normalizes the queue term of the INT utilization stamp:
	// a port reports u = busy + qBytes/(rate × INTBaseRTT), the HPCC
	// per-hop signal. Zero selects the fabric's base RTT default (44 µs);
	// stamping itself is always on — it is stateless and free when no
	// scheme consumes it.
	INTBaseRTT sim.Time
}

// intDefaultBaseRTT is the default INT normalization window, matching the
// fabric's ~44 µs base RTT (DefaultLinkConfig).
const intDefaultBaseRTT = 44 * sim.Microsecond

// DefaultSwitchConfig returns DCTCP-appropriate marking for 100 Gbps.
func DefaultSwitchConfig() SwitchConfig {
	return SwitchConfig{
		PortBufferBytes:   1 << 20,
		ECNThresholdBytes: 80 * 1024,
	}
}

// PortID indexes one output port of a Switch, in attach order.
type PortID int32

// noRoute marks an unrouted destination in the forwarding table.
const noRoute PortID = -1

// trunkKeyBase offsets the snapshot keys of trunk ports so they can never
// collide with host IDs.
const trunkKeyBase uint64 = 1 << 32

// Switch is an output-queued switch: one queue + serializer per attached
// output port. Host-facing ports are attached with AttachPort, trunk
// ports toward other switches with AttachTrunk; the static forwarding
// table (SetRoute) maps destination hosts onto ports. Both tables are
// slices — the hot path and the snapshot encoder never iterate a map.
type Switch struct {
	e      *sim.Engine
	cfg    SwitchConfig
	ports  []*outPort // attach order
	routes []PortID   // dense, indexed by destination HostID
	trunks int        // trunk ports attached so far

	// Drops and Marks count switch-level drops and CE marks.
	Drops stats.Counter
	Marks stats.Counter

	// PFC state (populated only when cfg.PFC.Enabled). HeadroomDrops
	// counts packets lost despite PFC — headroom provisioned too small
	// for the in-flight data (also counted in Drops). PauseFrames and
	// PauseLost count pause frames emitted and lost to injected faults;
	// PauseAsserts counts output-port pause transitions into the paused
	// state; WatchdogReleases counts forced releases by the PFC watchdog.
	HeadroomDrops    stats.Counter
	PauseFrames      stats.Counter
	PauseLost        stats.Counter
	PauseAsserts     stats.Counter
	WatchdogReleases stats.Counter
	ingresses        []*Ingress
	pauseFault       func() bool

	// tr, when set before AttachPort, gives every port a queue-depth
	// counter track plus a switch-wide CE-mark track.
	tr      *telemetry.Tracer
	trMarks *telemetry.Track
	prefix  string
}

// qent is one queued packet plus the PFC ingress it arrived on (nil when
// the ingress is not PFC-tracked).
type qent struct {
	p  *packet.Packet
	ig *Ingress
}

type outPort struct {
	sw     *Switch
	link   *Link
	queue  ring.Queue[qent]
	qBytes int
	busy   bool
	name   string

	// key identifies the port in snapshots: the host ID for host-facing
	// ports, trunkKeyBase+n for the n-th trunk port.
	key uint64

	// PFC pause state: paused is protocol pause (XOFF from downstream),
	// forced is injected pause (storm fault); the union gates the pump.
	// pauseGen invalidates stale watchdog timers across transitions.
	paused      bool
	forced      bool
	pauseGen    uint64
	pausedAt    sim.Time
	pausedTotal sim.Time
	trPauseID   uint64

	// trQueue records the port's queue depth over time (nil when disabled).
	trQueue *telemetry.Track

	// intRefBytes normalizes the INT queue term: rate × INTBaseRTT.
	intRefBytes float64

	// fluid, when set (Switch.FluidTap), couples the port to the
	// fluid-flow tier: background rate debits the serializer, the fluid
	// queue share joins the ECN/INT queue view, and offered packet
	// bytes are counted for the integrator. Nil leaves every hot-path
	// computation bit-identical.
	fluid *FluidTap

	// doneH fires when the port serializer finishes serFlight (the port
	// serializes one packet at a time, so no slot table is needed).
	doneH     sim.HandlerID
	serFlight *packet.Packet
}

// NewSwitch creates an empty switch.
func NewSwitch(e *sim.Engine, cfg SwitchConfig) *Switch {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Switch{e: e, cfg: cfg}
}

// SetTracer attaches counter tracks for per-port queue depth and CE
// marks, named under prefix. Must be called before AttachPort so the
// port tracks exist from the start.
func (s *Switch) SetTracer(t *telemetry.Tracer, prefix string) {
	s.tr = t
	s.prefix = prefix
	s.trMarks = t.NewTrack(prefix+"/marks", "pkts")
}

// RegisterInstruments registers the switch's metrics under prefix. PFC
// instruments appear only when PFC is enabled, keeping the non-lossless
// metric namespace unchanged.
func (s *Switch) RegisterInstruments(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/drops", "pkts", "packets dropped at full output queues",
		func() float64 { return float64(s.Drops.Total()) })
	reg.Counter(prefix+"/marks", "pkts", "packets CE-marked at the ECN threshold",
		func() float64 { return float64(s.Marks.Total()) })
	reg.Gauge(prefix+"/int/max-util", "util", "max per-port INT utilization (busy + queue/(rate×baseRTT))",
		func() float64 { return s.MaxINTUtil() })
	if s.cfg.PFC.Enabled {
		reg.Counter(prefix+"/pfc/pause-frames", "frames", "PFC pause frames emitted (XOFF and XON)",
			func() float64 { return float64(s.PauseFrames.Total()) })
		reg.Counter(prefix+"/pfc/pause-lost", "frames", "pause frames lost to injected faults",
			func() float64 { return float64(s.PauseLost.Total()) })
		reg.Counter(prefix+"/pfc/pause-asserts", "events", "output-port transitions into the paused state",
			func() float64 { return float64(s.PauseAsserts.Total()) })
		reg.Counter(prefix+"/pfc/watchdog-releases", "events", "pauses force-released by the PFC watchdog",
			func() float64 { return float64(s.WatchdogReleases.Total()) })
		reg.Counter(prefix+"/pfc/headroom-drops", "pkts", "packets lost despite PFC (headroom exhausted)",
			func() float64 { return float64(s.HeadroomDrops.Total()) })
		reg.Gauge(prefix+"/pfc/xoff-occupancy", "bytes", "buffered bytes across PFC ingresses",
			func() float64 { return float64(s.IngressOccupancy()) })
	}
}

// AttachPort connects the output port toward host id over the given link
// and routes the host's packets to it.
func (s *Switch) AttachPort(id packet.HostID, link *Link) PortID {
	if s.routeFor(id) != noRoute {
		panic(fmt.Sprintf("fabric: duplicate port for host %d", id))
	}
	p := s.attach(link, uint64(id), fmt.Sprintf("port%d", id))
	s.SetRoute(id, p)
	return p
}

// AttachTrunk connects an output port toward another switch over the
// given link (whose deliver function is typically the peer's Inject).
// Trunk ports get the same drop-tail buffering and ECN marking as host
// ports; route destinations onto the returned PortID with SetRoute.
func (s *Switch) AttachTrunk(link *Link) PortID {
	p := s.attach(link, trunkKeyBase+uint64(s.trunks), fmt.Sprintf("trunk%d", s.trunks))
	s.trunks++
	return p
}

func (s *Switch) attach(link *Link, key uint64, name string) PortID {
	o := &outPort{sw: s, link: link, key: key, name: name}
	o.doneH = s.e.Handler(o.serDone)
	baseRTT := s.cfg.INTBaseRTT
	if baseRTT == 0 {
		baseRTT = intDefaultBaseRTT
	}
	o.intRefBytes = float64(link.cfg.Rate) * baseRTT.Seconds()
	if s.tr != nil {
		o.trQueue = s.tr.NewTrack(fmt.Sprintf("%s/%s/queue", s.prefix, name), "bytes")
		o.trQueue.Set(s.e.Now(), 0)
		o.trPauseID = pauseRangeID(s.prefix, name)
	}
	s.ports = append(s.ports, o)
	return PortID(len(s.ports) - 1)
}

// SetRoute directs packets for destination host id onto port (static
// forwarding table entry).
func (s *Switch) SetRoute(id packet.HostID, port PortID) {
	if int(port) < 0 || int(port) >= len(s.ports) {
		panic(fmt.Sprintf("fabric: route to unattached port %d", port))
	}
	for int(id) >= len(s.routes) {
		s.routes = append(s.routes, noRoute)
	}
	s.routes[id] = port
}

func (s *Switch) routeFor(id packet.HostID) PortID {
	if int(id) >= len(s.routes) {
		return noRoute
	}
	return s.routes[id]
}

// Inject delivers a packet into the switch (from an ingress link).
func (s *Switch) Inject(p *packet.Packet) {
	port := s.routeFor(p.Flow.Dst)
	if port == noRoute {
		panic(fmt.Sprintf("fabric: no route to host %d", p.Flow.Dst))
	}
	s.ports[port].enqueue(p)
}

func (o *outPort) enqueue(p *packet.Packet) { o.enqueueFrom(nil, p) }

func (o *outPort) enqueueFrom(ig *Ingress, p *packet.Packet) {
	if o.fluid != nil {
		// Offered load, counted before admission: drops are demand too,
		// and the fluid integrator must see the pressure that caused them.
		o.fluid.pktBytes += int64(p.WireLen())
	}
	if ig != nil {
		// Lossless admission: the ingress quota (XOFF + headroom), not
		// the output queue, bounds buffering. A failed admit means the
		// headroom was provisioned too small for the in-flight data.
		if !ig.admit(p.WireLen()) {
			o.sw.Drops.Inc()
			o.sw.HeadroomDrops.Inc()
			o.link.pool.Put(p)
			return
		}
	} else if o.qBytes+p.WireLen() > o.sw.cfg.PortBufferBytes {
		o.sw.Drops.Inc()
		o.link.pool.Put(p)
		return
	}
	// DCTCP marking: mark on instantaneous queue depth at enqueue.
	// PFC does not replace ECN — DCQCN's CNPs are generated from exactly
	// these marks; pause frames are the backstop, not the signal. The
	// fluid tier's queue share joins the depth the marker sees, so
	// packet flows react to congestion the background causes.
	ecnQ := o.qBytes
	if o.fluid != nil {
		ecnQ += o.fluid.qBytes
	}
	if ecnQ > o.sw.cfg.ECNThresholdBytes && p.ECN == packet.ECT0 {
		p.ECN = packet.CE
		o.sw.Marks.Inc()
		o.sw.trMarks.Set(o.sw.e.Now(), float64(o.sw.Marks.Total()))
	}
	// INT stamp (HPCC feedback): fold this hop's utilization into the
	// packet's running max. Stateless — derived from the same qBytes/busy
	// the snapshot already encodes — so it cannot perturb digests. Only
	// data packets are stamped (receivers echo on ACKs; stamping the
	// reverse path would be dead weight).
	if p.IsData() {
		if u := o.intUtil(); u > p.INTUtil {
			p.INTUtil = u
		}
		if p.INTHops < 255 {
			p.INTHops++
		}
	}
	o.queue.Push(qent{p: p, ig: ig})
	o.qBytes += p.WireLen()
	o.trQueue.Set(o.sw.e.Now(), float64(o.qBytes))
	o.pump()
}

// intUtil is this port's instantaneous INT utilization: 1 while the
// serializer is busy plus the queue depth in units of rate × baseRTT
// (the stateless reduction of HPCC's txRate/B + qlen/(B·T) signal).
func (o *outPort) intUtil() float64 {
	q := o.qBytes
	if o.fluid != nil {
		q += o.fluid.qBytes
	}
	util := float64(q) / o.intRefBytes
	if o.busy {
		util++
	}
	return util
}

func (o *outPort) pump() {
	if o.busy || o.paused || o.forced || o.queue.Len() == 0 {
		return
	}
	o.busy = true
	ent := o.queue.Pop()
	p := ent.p
	o.qBytes -= p.WireLen()
	o.trQueue.Set(o.sw.e.Now(), float64(o.qBytes))
	if ent.ig != nil {
		ent.ig.release(p.WireLen())
	}
	// Hold the serializer for the packet's own transmission time, then
	// hand it to the link (which adds propagation). A fluid background
	// debits the serializer: packets see the residual capacity.
	o.serFlight = p
	rate := o.link.cfg.Rate
	if o.fluid != nil {
		rate = o.fluid.effRate()
	}
	o.sw.e.ScheduleAfter(rate.TimeFor(p.WireLen()), o.doneH, 0, 0)
}

// serDone fires when the port serializer finishes its packet.
func (o *outPort) serDone(_, _ uint64) {
	p := o.serFlight
	o.serFlight = nil
	o.link.deliver2(p)
	o.busy = false
	o.pump()
}

// deliver2 propagates a packet that has already been serialized by the
// switch port (avoids double serialization).
func (l *Link) deliver2(p *packet.Packet) {
	l.Bytes.Add(int64(p.WireLen()))
	if l.lost() {
		l.pool.Put(p)
		return
	}
	if l.bnd != nil {
		l.bnd.Send(l.e.Now()+l.cfg.Delay, 0, 0, p)
		return
	}
	l.e.ScheduleAfter(l.cfg.Delay, l.deliverH, l.inflight.Put(p), 0)
}

// QueueBytes returns the current queue depth toward host id.
func (s *Switch) QueueBytes(id packet.HostID) int {
	if p := s.routeFor(id); p != noRoute {
		return s.ports[p].qBytes
	}
	return 0
}

// PortQueueBytes returns the queue depth of one output port (trunk
// instrumentation).
func (s *Switch) PortQueueBytes(p PortID) int { return s.ports[p].qBytes }

// MaxINTUtil returns the highest instantaneous INT utilization across
// the switch's output ports — the per-hop congestion signal HPCC-style
// senders receive, exported as a telemetry gauge.
func (s *Switch) MaxINTUtil() float64 {
	var m float64
	for _, o := range s.ports {
		if u := o.intUtil(); u > m {
			m = u
		}
	}
	return m
}

// Validate reports the first invalid link parameter.
func (c LinkConfig) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("fabric: link Rate %v must be positive", c.Rate)
	}
	if c.Delay < 0 {
		return fmt.Errorf("fabric: negative link Delay %v", c.Delay)
	}
	if c.LossProb < 0 || c.LossProb > 1 {
		return fmt.Errorf("fabric: LossProb %v outside [0,1]", c.LossProb)
	}
	return nil
}

// Validate reports the first invalid switch parameter.
func (c SwitchConfig) Validate() error {
	if c.PortBufferBytes <= 0 {
		return fmt.Errorf("fabric: PortBufferBytes %d must be positive", c.PortBufferBytes)
	}
	// A zero or negative mark threshold would CE-mark every ECT packet
	// (DCTCP collapses to one-segment windows); a threshold at or above
	// the buffer can never mark before drop-tail loss. Both are
	// misconfigurations, not policies.
	if c.ECNThresholdBytes <= 0 {
		return fmt.Errorf("fabric: ECNThresholdBytes %d must be positive", c.ECNThresholdBytes)
	}
	if c.ECNThresholdBytes >= c.PortBufferBytes {
		return fmt.Errorf("fabric: ECNThresholdBytes %d must be below PortBufferBytes %d",
			c.ECNThresholdBytes, c.PortBufferBytes)
	}
	if c.INTBaseRTT < 0 {
		return fmt.Errorf("fabric: negative INTBaseRTT %v", c.INTBaseRTT)
	}
	return c.PFC.Validate(c.PortBufferBytes)
}
